// Quickstart: partition a small circuit for IDDQ testability in ~30 lines.
//
//   $ ./quickstart
//
// Loads the ISCAS85 C17 netlist (from .bench text, as you would load your
// own file with netlist::read_bench_file), runs the complete synthesis flow
// of Wunderlich et al. (ED&TC 1995), and prints the resulting BIC-sensor
// partition with its cost breakdown.
#include <iostream>

#include "core/flow.hpp"
#include "library/cell_library.hpp"
#include "netlist/bench_io.hpp"
#include "partition/partition_io.hpp"

int main() {
  using namespace iddq;

  // Any combinational .bench netlist works here.
  const auto netlist = netlist::read_bench_text(R"(
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
)",
                                                "c17");

  const auto library = lib::default_library();

  core::FlowConfig config;          // paper defaults: d=10, r=200mV,
  config.es.seed = 1;               // weights 9/1e5/1/1/10
  const auto result = core::run_flow(netlist, library, config);

  std::cout << "circuit: " << netlist.name() << " ("
            << netlist.logic_gate_count() << " gates)\n";
  std::cout << "planned modules: " << result.plan.module_count
            << " (leakage bound: " << result.plan.k_min_leakage << ")\n\n";

  std::cout << "best partition found by the evolution strategy:\n";
  part::write_partition(std::cout, netlist, result.evolution.partition);

  std::cout << "\ncosts: sensor area = " << result.evolution.sensor_area
            << " units, delay overhead = "
            << result.evolution.delay_overhead * 100.0
            << "%, test-time overhead = "
            << result.evolution.test_overhead * 100.0 << "%\n";
  for (std::size_t m = 0; m < result.evolution.modules.size(); ++m) {
    const auto& mod = result.evolution.modules[m];
    std::cout << "module " << m << ": " << mod.gates << " gates, iDD_max "
              << mod.idd_max_ua << " uA, Rs " << mod.rs_kohm
              << " kOhm, discriminability " << mod.discriminability << "\n";
  }
  return 0;
}
