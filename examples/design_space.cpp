// Design-space exploration: rail-perturbation limit r and discriminability d.
//
//   $ ./design_space
//
// The two constraints of section 2 are knobs a designer actually owns:
//   r  (mV)  — how much virtual-ground bounce the noise budget tolerates
//              (paper: "typically very stringent, between 100mV and 300mV")
//   d        — required IDDQ_th / IDDQ_nd margin (paper: "a typical value
//              is 10")
// This example sweeps both on one circuit and prints the resulting module
// counts, sensor areas, and delay overheads — the Speed-Area-Testability
// design space the paper's cost function navigates. Output is also written
// as CSV for plotting.
#include <iostream>

#include "core/flow_engine.hpp"
#include "library/cell_library.hpp"
#include "netlist/gen/iscas_profiles.hpp"
#include "report/table.hpp"

int main() {
  using namespace iddq;
  const auto nl = netlist::gen::make_iscas_like("c2670");
  const auto library = lib::default_library();

  report::TextTable table({"r [mV]", "d", "K", "sensor area", "delay ovh",
                           "test ovh"});

  for (const double r_mv : {100.0, 200.0, 300.0}) {
    for (const double d_min : {5.0, 10.0, 20.0}) {
      // Each (r, d) point is its own engine: the constraints live in the
      // precomputed EvalContext. The optimizer itself is a registry spec —
      // swap "evolution" for any other method to sweep it instead.
      core::FlowEngineConfig config;
      config.sensor.r_max_mv = r_mv;
      config.sensor.d_min = d_min;
      config.optimizers.es.max_generations = 100;
      config.optimizers.es.stall_generations = 25;
      core::FlowEngine engine(nl, library, config);
      core::FlowEngine::RunOptions opts;
      opts.seed = 42;
      const auto result = engine.run_method("evolution", opts);
      table.add_row({report::format_fixed(r_mv, 0),
                     report::format_fixed(d_min, 0),
                     std::to_string(result.module_count),
                     report::format_eng(result.sensor_area),
                     report::format_pct(result.delay_overhead),
                     report::format_pct(result.test_overhead)});
    }
  }

  std::cout << "=== design space: rail limit r x discriminability d ("
            << nl.name() << ") ===\n\n";
  table.print(std::cout);
  std::cout << "\nCSV:\n" << table.to_csv();
  std::cout <<
      "\nreading: tightening r (less bounce allowed) forces stronger bypass\n"
      "switches -> more area and less delay degradation; raising d caps the\n"
      "leakage per module -> more modules, more detection circuitry.\n";
  return 0;
}
