// Bringing your own technology: custom cell library, text round-trip.
//
//   $ ./custom_library
//
// The estimators read nothing but the cell library's electrical
// characterization (section 3: "a target cell library fully characterized at
// electrical level is assumed available"). This example builds a faster,
// lower-leakage technology programmatically, saves and reloads it through
// the text format, and compares the synthesis results against the default
// 1995 library on the same netlist.
#include <iostream>
#include <sstream>

#include "core/flow.hpp"
#include "library/cell_library.hpp"
#include "library/lib_io.hpp"
#include "netlist/gen/iscas_profiles.hpp"
#include "report/table.hpp"

namespace {

iddq::lib::CellLibrary make_fast_library() {
  using namespace iddq;
  // Derive a hypothetical half-micron shrink from the default library:
  // 40% faster, 60% lower leakage, 45% smaller, proportionally lower
  // capacitances.
  const auto base = lib::default_library();
  lib::CellLibrary fast("cmos5v-shrink", base.vdd_mv());
  for (const auto& type : base.cell_types()) {
    lib::CellParams p = base.params(type);
    p.delay_ps *= 0.6;
    p.ileak_na *= 0.4;
    p.area *= 0.55;
    p.cin_ff *= 0.7;
    p.cout_ff *= 0.7;
    p.cvr_ff *= 0.7;
    p.rg_kohm = p.delay_ps / (0.6931471805599453 * p.cout_ff);
    p.ipeak_ua = 0.75 * base.vdd_mv() / p.rg_kohm;
    fast.add(type, p);
  }
  return fast;
}

}  // namespace

int main() {
  using namespace iddq;

  // Build, serialize, reload: the round-trip is what a user would do with
  // a library file on disk.
  const auto fast = make_fast_library();
  const std::string text = lib::to_library_string(fast);
  const auto reloaded = lib::read_library_text(text, "reloaded");
  std::cout << "custom library '" << reloaded.name() << "': "
            << reloaded.size() << " cells, vdd " << reloaded.vdd_mv()
            << " mV (round-tripped through the text format, "
            << text.size() << " bytes)\n\n";

  const auto nl = netlist::gen::make_iscas_like("c1908");
  const auto default_lib = lib::default_library();
  report::TextTable table({"library", "K", "sensor area", "delay ovh",
                           "test ovh", "D_nominal [ns]"});
  for (const auto* library : {&default_lib, &reloaded}) {
    core::FlowConfig config;
    config.es.max_generations = 100;
    config.es.stall_generations = 25;
    config.es.seed = 42;
    const auto result = core::run_flow(nl, *library, config);
    const part::EvalContext ctx(nl, *library, config.sensor, config.weights);
    table.add_row({library->name(),
                   std::to_string(result.evolution.module_count),
                   report::format_eng(result.evolution.sensor_area),
                   report::format_pct(result.evolution.delay_overhead),
                   report::format_pct(result.evolution.test_overhead),
                   report::format_fixed(ctx.d_nominal_ps / 1000.0, 2)});
  }
  table.print(std::cout);
  std::cout <<
      "\nreading: the lower-leakage shrink needs fewer modules for the same\n"
      "d >= 10 (leakage cap binds later) and its smaller peak currents allow\n"
      "weaker bypass switches -> less sensor area.\n";
  return 0;
}
