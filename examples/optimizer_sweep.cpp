// Multi-method, multi-circuit sweep through the BatchRunner.
//
//   $ ./optimizer_sweep [jobs]        default 1 worker thread
//
// Fans the registry methods {evolution, annealing, random, standard} out
// over several builtin circuits on a thread pool. Per-task seeds derive
// from the task index alone, so any jobs value produces the same table —
// run with 1 and 4 and diff the output to see for yourself.
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "core/batch_runner.hpp"
#include "library/cell_library.hpp"
#include "report/table.hpp"

int main(int argc, char** argv) {
  using namespace iddq;
  const std::size_t jobs =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 1;

  const std::vector<std::string> circuits{"c17", "c1908", "c2670", "c3540"};
  const std::vector<std::string> methods{"evolution", "annealing", "random",
                                         "standard"};

  const auto library = lib::default_library();
  core::FlowEngineConfig config;
  config.optimizers.es.max_generations = 80;
  config.optimizers.es.stall_generations = 25;

  const core::BatchRunner runner(library, config);
  const auto items = runner.run(circuits, methods, /*base_seed=*/42, jobs);

  report::TextTable table(
      {"circuit", "method", "K", "cost", "sensor area", "evals", "feasible"});
  for (const auto& item : items) {
    if (!item.ok()) {
      std::cerr << item.circuit << ": " << item.error << "\n";
      continue;
    }
    for (const auto& m : item.methods)
      table.add_row({item.circuit, m.method, std::to_string(m.module_count),
                     report::format_fixed(m.fitness.cost, 1),
                     report::format_eng(m.sensor_area),
                     std::to_string(m.evaluations),
                     m.fitness.feasible() ? "yes" : "NO"});
  }
  std::cout << "=== optimizer sweep (" << jobs << " job"
            << (jobs == 1 ? "" : "s") << ") ===\n\n";
  table.print(std::cout);
  std::cout << "\nthe table is byte-identical for any jobs value: per-task\n"
               "seeds depend on the task index, never on thread timing.\n";
  return 0;
}
