// Why partition at all? Defect-detection with and without BIC partitioning.
//
//   $ ./defect_coverage
//
// Injects random bridging defects and gate-oxide shorts into a benchmark
// circuit and simulates the IDDQ test twice:
//   * monolithic: one current measurement for the whole CUT (off-chip style)
//   * partitioned: one BIC sensor per module from the synthesis flow
// With a realistic threshold the whole-chip fault-free leakage already
// swamps small defect currents (the discriminability problem of section 1);
// per-module sensors restore the margin and the coverage.
#include <iostream>

#include "core/flow.hpp"
#include "library/cell_library.hpp"
#include "netlist/gen/random_dag.hpp"
#include "report/table.hpp"
#include "sim/iddq_sim.hpp"

int main() {
  using namespace iddq;
  // An ASIC-scale block: 9000 gates leak ~2 uA in total — already above the
  // 1.5 uA detection threshold, which is precisely the regime the paper's
  // introduction describes ("non defective IDDQ currents of large circuits
  // can be larger than 1 uA").
  const auto nl = netlist::gen::make_random_dag(
      netlist::gen::DagProfile::basic("asic9k", 9000, 30, 2024));
  const auto library = lib::default_library();

  // Partition via the paper's flow (reduced budget: this is a demo).
  core::FlowConfig config;
  config.es.max_generations = 60;
  config.es.stall_generations = 20;
  config.es.seed = 7;
  const auto flow = core::run_flow(nl, library, config);
  const auto& partitioned = flow.evolution.partition;

  // Monolithic "partition": every gate in one module.
  std::vector<std::vector<netlist::GateId>> one(1);
  for (const auto g : nl.logic_gates()) one[0].push_back(g);
  const auto monolithic = part::Partition::from_groups(nl, one);

  // Fault list and patterns.
  Rng rng(99);
  const auto faults = sim::random_faults(nl, 300, 150, rng);
  Rng pat_rng(5);
  const auto patterns = sim::random_patterns(nl, 512, pat_rng);

  // Threshold: the sensor spec's IDDQ_th. The monolithic circuit's
  // fault-free leakage sits above it, so a single measurement cannot
  // discriminate; each module of the partition leaks <= IDDQ_th / d.
  sim::IddqSimConfig sim_cfg;
  sim_cfg.iddq_th_ua = config.sensor.iddq_th_ua;
  const sim::IddqSimulator simulator(nl, library, sim_cfg);

  const double total_leak =
      simulator.fault_free_module_current(monolithic)[0];
  std::cout << "circuit: " << nl.name() << ", fault-free IDDQ = "
            << total_leak << " uA, threshold = " << sim_cfg.iddq_th_ua
            << " uA\n";
  std::cout << "=> monolithic measurement "
            << (total_leak > sim_cfg.iddq_th_ua
                    ? "CANNOT discriminate (leakage above threshold)"
                    : "can still discriminate")
            << "\n\n";

  const auto cov_mono = simulator.coverage(monolithic, faults, patterns);
  const auto cov_part = simulator.coverage(partitioned, faults, patterns);

  report::TextTable table({"configuration", "sensors", "faults", "detected",
                           "coverage"});
  table.add_row({"monolithic (off-chip style)", "1",
                 std::to_string(cov_mono.total),
                 std::to_string(cov_mono.detected),
                 report::format_pct(cov_mono.coverage())});
  table.add_row({"BIC-partitioned (this flow)",
                 std::to_string(partitioned.module_count()),
                 std::to_string(cov_part.total),
                 std::to_string(cov_part.detected),
                 report::format_pct(cov_part.coverage())});
  table.print(std::cout);

  std::cout << "\nnote: the monolithic row counts a defect as detected only\n"
               "if its current raises the *total* IDDQ above threshold --\n"
               "with the fault-free floor already above IDDQ_th, every\n"
               "vector fails and no defect is distinguishable; the paper's\n"
               "partitioning restores per-module discriminability d >= 10.\n";
  return 0;
}
