// Full synthesis flow on a benchmark-scale circuit.
//
//   $ ./iddq_flow [circuit]        circuit in {c1908, c2670, c3540, c5315,
//                                              c6288, c7552}, default c1908
//
// Demonstrates the complete pipeline a downstream user would run: circuit
// statistics, module-size planning, evolution-based partitioning with
// convergence trace, the standard-partitioning comparison, and a per-module
// electrical report (sensor sizing, time constants, settle times).
#include <iostream>
#include <string>

#include "core/flow.hpp"
#include "library/cell_library.hpp"
#include "netlist/gen/iscas_profiles.hpp"
#include "netlist/stats.hpp"
#include "report/table.hpp"

int main(int argc, char** argv) {
  using namespace iddq;
  const std::string name = argc > 1 ? argv[1] : "c1908";

  const auto nl = netlist::gen::make_iscas_like(name);
  netlist::print_stats(std::cout, nl);

  const auto library = lib::default_library();
  core::FlowConfig config;
  config.es.max_generations = 250;
  config.es.stall_generations = 50;
  config.es.seed = 42;
  config.es.record_trace = true;

  const auto result = core::run_flow(nl, library, config);

  std::cout << "\nsize plan: K = " << result.plan.module_count
            << " (leakage lower bound " << result.plan.k_min_leakage
            << "), target module size " << result.plan.target_module_size
            << "\n";
  std::cout << "evolution: " << result.es_detail.generations
            << " generations, " << result.es_detail.evaluations
            << " evaluations\n";
  if (!result.es_detail.trace.empty()) {
    std::cout << "cost trace: ";
    const auto& trace = result.es_detail.trace;
    for (std::size_t i = 0; i < trace.size();
         i += std::max<std::size_t>(1, trace.size() / 8))
      std::cout << trace[i].best.cost << " ";
    std::cout << "-> " << result.evolution.fitness.cost << "\n";
  }

  std::cout << "\nmethod comparison:\n";
  report::TextTable cmp({"method", "sensor area", "delay ovh", "test ovh",
                         "cost"});
  for (const auto* m : {&result.evolution, &result.standard}) {
    cmp.add_row({m->method, report::format_eng(m->sensor_area),
                 report::format_pct(m->delay_overhead),
                 report::format_pct(m->test_overhead),
                 report::format_fixed(m->fitness.cost, 1)});
  }
  cmp.print(std::cout);
  std::cout << "standard partitioning needs "
            << report::format_pct(result.standard_area_overhead_pct(), true)
            << " more BIC-sensor area.\n";

  std::cout << "\nper-module electrical report (evolution result):\n";
  report::TextTable mods({"module", "gates", "iDD_max [uA]", "Rs [kOhm]",
                          "Cs [fF]", "tau [ps]", "settle [ps]", "area",
                          "S(M)", "d(M)"});
  for (std::size_t m = 0; m < result.evolution.modules.size(); ++m) {
    const auto& r = result.evolution.modules[m];
    mods.add_row({std::to_string(m), std::to_string(r.gates),
                  report::format_fixed(r.idd_max_ua, 0),
                  report::format_fixed(r.rs_kohm, 4),
                  report::format_fixed(r.cs_ff, 0),
                  report::format_fixed(r.tau_ps, 1),
                  report::format_fixed(r.settle_ps, 0),
                  report::format_eng(r.area),
                  report::format_eng(r.separation),
                  report::format_fixed(r.discriminability, 1)});
  }
  mods.print(std::cout);
  return 0;
}
