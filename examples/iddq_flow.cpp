// Full synthesis flow on a benchmark-scale circuit, method by method.
//
//   $ ./iddq_flow [circuit] [method ...]
//       circuit in {c17, c1908, c2670, c3540, c5315, c6288, c7552} or a
//       .bench path, default c1908; methods are registry specs, default
//       "evolution annealing standard"
//
// Demonstrates the registry-driven pipeline a downstream user would run:
// circuit statistics, module-size planning, any set of optimizers from the
// OptimizerRegistry (with a convergence trace for the evolution strategy),
// and a per-module electrical report for the best method.
#include <iostream>
#include <string>
#include <vector>

#include "core/flow_engine.hpp"
#include "core/optimizer_registry.hpp"
#include "library/cell_library.hpp"
#include "netlist/circuit_loader.hpp"
#include "netlist/stats.hpp"
#include "report/table.hpp"

int main(int argc, char** argv) {
  using namespace iddq;
  const std::string name = argc > 1 ? argv[1] : "c1908";
  std::vector<std::string> methods;
  for (int i = 2; i < argc; ++i) methods.emplace_back(argv[i]);
  if (methods.empty()) methods = {"evolution", "annealing", "standard"};

  const auto nl = netlist::load_circuit(name);
  netlist::print_stats(std::cout, nl);

  const auto library = lib::default_library();
  core::FlowEngineConfig config;
  config.optimizers.es.max_generations = 250;
  config.optimizers.es.stall_generations = 50;
  core::FlowEngine engine(nl, library, config);

  const auto& plan = engine.plan();
  std::cout << "\nsize plan: K = " << plan.module_count
            << " (leakage lower bound " << plan.k_min_leakage
            << "), target module size " << plan.target_module_size << "\n";

  std::vector<core::MethodResult> results;
  results.reserve(methods.size());
  for (std::size_t i = 0; i < methods.size(); ++i) {
    core::FlowEngine::RunOptions opts;
    opts.seed = 42;
    opts.record_trace = true;
    // Paper section 5: the standard baseline clusters at the sizes the
    // first optimizer discovered.
    if (methods[i] == "standard" && !results.empty())
      opts.start = &results.front().partition;
    results.push_back(engine.run_method(methods[i], opts));
    const auto& r = results.back();
    std::cout << r.method << ": " << r.iterations << " iterations, "
              << r.evaluations << " evaluations\n";
    if (!r.trace.empty()) {
      std::cout << "  cost trace: ";
      for (std::size_t t = 0; t < r.trace.size();
           t += std::max<std::size_t>(1, r.trace.size() / 8))
        std::cout << r.trace[t].best.cost << " ";
      std::cout << "-> " << r.fitness.cost << "\n";
    }
  }

  std::cout << "\nmethod comparison:\n";
  report::TextTable cmp(
      {"method", "sensor area", "delay ovh", "test ovh", "cost"});
  const core::MethodResult* best = &results.front();
  for (const auto& m : results) {
    if (m.fitness < best->fitness) best = &m;
    cmp.add_row({m.method, report::format_eng(m.sensor_area),
                 report::format_pct(m.delay_overhead),
                 report::format_pct(m.test_overhead),
                 report::format_fixed(m.fitness.cost, 1)});
  }
  cmp.print(std::cout);

  std::cout << "\nper-module electrical report (" << best->method
            << " result):\n";
  report::TextTable mods({"module", "gates", "iDD_max [uA]", "Rs [kOhm]",
                          "Cs [fF]", "tau [ps]", "settle [ps]", "area",
                          "S(M)", "d(M)"});
  for (std::size_t m = 0; m < best->modules.size(); ++m) {
    const auto& r = best->modules[m];
    mods.add_row({std::to_string(m), std::to_string(r.gates),
                  report::format_fixed(r.idd_max_ua, 0),
                  report::format_fixed(r.rs_kohm, 4),
                  report::format_fixed(r.cs_ff, 0),
                  report::format_fixed(r.tau_ps, 1),
                  report::format_fixed(r.settle_ps, 0),
                  report::format_eng(r.area),
                  report::format_eng(r.separation),
                  report::format_fixed(r.discriminability, 1)});
  }
  mods.print(std::cout);
  return 0;
}
