// Coverage vs pattern budget: what a partition buys at different test
// lengths.
//
//   $ ./coverage_sweep
//
// The Table-1 flow scores partitions by proxies (sensor area, delay and
// test overheads). This example grades them by the thing the proxies stand
// in for: measured IDDQ fault coverage (docs/coverage.md). For one circuit
// it partitions with the evolution and standard methods, then sweeps the
// random-pattern budget and reports, per (method, budget) point, the
// fault coverage and the set-cover minimized suite size — the classic
// coverage-vs-test-time trade-off, plus the monolithic single-sensor
// baseline that motivates partitioning in the first place.
#include <iostream>
#include <string>
#include <vector>

#include "core/flow.hpp"
#include "library/cell_library.hpp"
#include "netlist/gen/random_dag.hpp"
#include "partition/partition.hpp"
#include "report/table.hpp"
#include "sim/coverage.hpp"

int main() {
  using namespace iddq;
  // Large enough that the whole-chip leakage swamps the threshold (the
  // discriminability problem of paper section 1): the monolithic row then
  // shows 0% while the partitioned rows climb with the pattern budget.
  const auto nl = netlist::gen::make_random_dag(
      netlist::gen::DagProfile::basic("asic9k", 9000, 30, 2024));
  const auto library = lib::default_library();

  core::FlowConfig flow_config;
  flow_config.es.max_generations = 60;
  flow_config.es.stall_generations = 20;
  flow_config.es.seed = 7;
  const auto flow = core::run_flow(nl, library, flow_config);

  // Monolithic baseline: every gate in one module, one sensor.
  std::vector<std::vector<netlist::GateId>> one(1);
  for (const auto g : nl.logic_gates()) one[0].push_back(g);
  const auto monolithic = part::Partition::from_groups(nl, one);

  struct Point {
    std::string label;
    const part::Partition* partition;
  };
  const std::vector<Point> points{
      {"monolithic", &monolithic},
      {"evolution", &flow.evolution.partition},
      {"standard", &flow.standard.partition},
  };

  std::cout << "circuit: " << nl.name() << ", "
            << nl.logic_gate_count() << " gates\n"
            << "fault model: mixed (scaled bridges + gate-oxide shorts), "
               "seed 1\n\n";

  report::TextTable table({"partition", "modules", "patterns", "coverage",
                           "minimized suite"});
  for (const std::size_t budget : {32u, 128u, 512u}) {
    // One engine per budget: same fault list every time (same seed), so
    // rows differ only in the pattern suite length.
    sim::CoverageConfig cc;
    cc.fault_model = sim::FaultModelSpec::parse("mixed");
    cc.patterns = budget;
    cc.minimize = true;
    cc.sim.iddq_th_ua = flow_config.sensor.iddq_th_ua;
    const sim::CoverageEngine engine(nl, library, cc);

    for (const auto& point : points) {
      const auto report = engine.score(*point.partition);
      table.add_row(
          {point.label, std::to_string(point.partition->module_count()),
           std::to_string(report.patterns_supplied),
           report::format_pct(report.coverage_pct(), /*already_pct=*/true),
           std::to_string(report.patterns_minimized) + " patterns"});
    }
  }
  table.print(std::cout);

  std::cout <<
      "\nnotes:\n"
      "  * the monolithic sensor never discriminates: its fault-free\n"
      "    leakage already exceeds IDDQ_th, so every defect hides (the\n"
      "    paper's case for partitioning).\n"
      "  * the minimized suite detects exactly the same faults as the\n"
      "    full suite (greedy set cover) -- test time shrinks, coverage\n"
      "    does not.\n"
      "  * diminishing returns with budget: random patterns activate the\n"
      "    easy defects quickly; the tail needs directed patterns.\n";
  return 0;
}
