#!/usr/bin/env python3
"""Compare two bench_table1 --json files (ROADMAP perf-trajectory item).

    tools/bench_compare.py BASELINE.json FRESH.json [--max-slowdown-pct N]

Checks, in order:

  1. Comparability: both files must be the same bench with the same
     `fast` budget and `seconds_kind` (per_circuit vs sweep_offset rows
     time different things; threads may differ — rows are thread-
     invariant by the determinism contract, which is exactly what this
     script verifies).
  2. Row identity: every row field except the wall-clock `seconds` must
     match the baseline EXACTLY (bit-for-bit after the 17-significant-
     digit JSON round trip). Any drift — a changed cost, a missing
     circuit, a new row — fails the script: optimizer results must never
     change by accident.
  3. Optional wall clock: with --max-slowdown-pct N, fail when the fresh
     `total_seconds` exceeds the baseline by more than N percent. Off by
     default because wall clock is only comparable on the same host; CI
     uses a generous bound to catch order-of-magnitude regressions, not
     scheduler noise.

Exit code 0 = comparable + identical rows (+ acceptable wall clock);
1 = drift or regression; 2 = usage / unreadable input.
"""

import argparse
import json
import sys

TIMING_ROW_FIELDS = {"seconds"}
# "coverage" is only emitted by --coverage runs, and "tier" only by
# non-default --tier runs, so legacy baselines (no field) and default
# runs stay mutually comparable, while a graded run never diffs against
# an ungraded one and a BIG-tier run never diffs against table1.
COMPARABILITY_FIELDS = ("bench", "tier", "fast", "seconds_kind", "coverage")


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, json.JSONDecodeError) as err:
        print(f"bench_compare: cannot read {path}: {err}", file=sys.stderr)
        sys.exit(2)


def main():
    parser = argparse.ArgumentParser(
        description="Diff the rows of two bench_table1 --json files."
    )
    parser.add_argument("baseline")
    parser.add_argument("fresh")
    parser.add_argument(
        "--max-slowdown-pct",
        type=float,
        default=None,
        metavar="N",
        help="fail when fresh total_seconds exceeds baseline by more than "
        "N%% (default: timing not enforced)",
    )
    args = parser.parse_args()

    base = load(args.baseline)
    fresh = load(args.fresh)

    for field in COMPARABILITY_FIELDS:
        if base.get(field) != fresh.get(field):
            print(
                f"bench_compare: not comparable: {field!r} differs "
                f"({base.get(field)!r} vs {fresh.get(field)!r})",
                file=sys.stderr,
            )
            return 1

    base_rows = base.get("rows", [])
    fresh_rows = fresh.get("rows", [])
    drift = 0
    if len(base_rows) != len(fresh_rows):
        print(
            f"ROW DRIFT: row count {len(base_rows)} -> {len(fresh_rows)}",
            file=sys.stderr,
        )
        drift += 1
    for i, (a, b) in enumerate(zip(base_rows, fresh_rows)):
        keys = sorted(set(a) | set(b))
        for key in keys:
            if key in TIMING_ROW_FIELDS:
                continue
            if key not in a or key not in b or a[key] != b[key]:
                name = a.get("circuit", b.get("circuit", f"row {i}"))
                print(
                    f"ROW DRIFT: {name}.{key}: "
                    f"{a.get(key, '<missing>')!r} -> {b.get(key, '<missing>')!r}",
                    file=sys.stderr,
                )
                drift += 1
    if drift:
        print(f"bench_compare: FAILED ({drift} drifting fields)", file=sys.stderr)
        return 1

    base_s = base.get("total_seconds", 0.0)
    fresh_s = fresh.get("total_seconds", 0.0)
    ratio = fresh_s / base_s if base_s > 0 else float("inf")
    print(
        f"rows identical ({len(base_rows)} circuits); total_seconds "
        f"{base_s:.3f} -> {fresh_s:.3f} ({ratio:.2f}x baseline)"
    )
    if args.max_slowdown_pct is not None and base_s > 0:
        limit = 1.0 + args.max_slowdown_pct / 100.0
        if ratio > limit:
            print(
                f"bench_compare: FAILED: {ratio:.2f}x exceeds the "
                f"{limit:.2f}x slowdown bound",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
