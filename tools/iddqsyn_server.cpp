// iddqsyn_server — long-running job server for the BIC-sensor flow.
//
// Speaks the line-delimited JSON job protocol (docs/server.md) and fans
// submitted (circuit, method-set) sweeps out over a JobService worker
// pool, streaming MethodResult rows back as they complete. Repeated jobs
// are served from the shared content-addressed ResultCache when
// --cache-dir is given, so a sweep server amortizes every run it has ever
// done.
//
// Usage:
//   iddqsyn_server [options]
//
// Options:
//   --pipe            serve exactly one session on stdin/stdout (default;
//                     handy under a test harness or an ssh pipe)
//   --socket PATH     listen on a unix-domain socket instead; one session
//                     per connection, concurrently
//   --listen H:P      listen on a TCP host:port instead (port 0 picks an
//                     ephemeral port, announced on stderr); same protocol
//                     bytes as the unix-socket path
//   --workers N       JobService worker threads (default: hardware
//                     concurrency)
//   --threads N       intra-job parallelism: one shared ExecutorPool for
//                     ES/tabu candidate evaluation and portfolio racing
//                     across ALL workers (default 1 = serial; results are
//                     byte-identical for any N)
//   --max-queue N     reject submits once N jobs are queued (protocol
//                     `error` event; default 0 = unbounded)
//   --session-queue N  per-session outbound event-queue bound (default
//                     1024; 0 = unbounded). Overflow drops oldest progress
//                     ticks; a must-deliver overflow disconnects the
//                     session with a protocol `error` (docs/server.md)
//   --max-jobs-per-session N  reject submits that would put more than N of
//                     one session's jobs in flight (default 0 = unlimited)
//   --cache-idle-evict SEC  evict in-memory cache entries idle for SEC
//                     seconds (disk entries reload transparently)
//   --cache-dir DIR   content-addressed result cache (docs/caching.md)
//   --cache-resident N  cap the cache's in-memory map at N entries; older
//                     entries spill to disk and reload on demand
//   --coverage        grade every result row by measured IDDQ fault
//                     coverage (docs/coverage.md); rows gain coverage
//                     fields in the protocol stream
//   --fault-model SPEC  injected fault population: mixed | bridges |
//                     shorts | bridges=N[,shorts=M] (default mixed)
//   --patterns N      test patterns per coverage run (default 256)
//   --minimize-patterns  greedy set-cover pattern minimization
//   --lib FILE        cell library (default: built-in 5V CMOS)
//   --rail MV         virtual-rail perturbation limit r (default 200)
//   --disc D          required discriminability d (default 10)
//   --generations N   ES generation cap (default 350)
//   --help            this text
//
// A client "shutdown" op stops the whole server (pipe mode: ends the
// session); EOF on a connection ends only that session. Determinism: a
// sweep submitted with seed S is byte-identical to `iddqsyn --jobs N
// --seed S` over the same circuits/methods — per-shard seeds derive from
// the shard index, never from scheduling.
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <iostream>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/job_protocol.hpp"
#include "core/job_service.hpp"
#include "core/result_cache.hpp"
#include "library/cell_library.hpp"
#include "library/lib_io.hpp"
#include "sim/coverage.hpp"
#include "support/error.hpp"
#include "support/executor.hpp"
#include "support/fault_plan.hpp"
#include "support/strings.hpp"
#include "support/transport.hpp"

namespace {

using namespace iddq;

struct ServerOptions {
  std::optional<std::string> socket_path;  // nullopt = pipe mode
  /// TCP endpoint (--listen host:port); wins over --socket when both are
  /// given last.
  std::optional<std::pair<std::string, std::uint16_t>> listen;
  std::size_t workers = 0;       // 0 = hardware concurrency
  std::size_t threads = 0;       // 0 = IDDQ_THREADS default
  std::size_t max_queue = 0;     // 0 = unbounded
  std::size_t session_queue = 1024;      // 0 = unbounded
  std::size_t max_jobs_per_session = 0;  // 0 = unlimited
  std::size_t job_timeout_ms = 0;        // 0 = no default deadline
  std::size_t drain_timeout_ms = 0;      // 0 = drain waits unbounded
  std::size_t cache_idle_evict_sec = 0;  // 0 = disabled
  std::optional<std::string> cache_dir;
  std::size_t cache_resident = 0;          // 0 = unbounded residency
  bool coverage = false;
  std::string fault_model = "mixed";
  std::size_t patterns = 256;
  bool minimize_patterns = false;
  std::optional<std::string> lib_path;
  double rail_mv = 200.0;
  double disc = 10.0;
  std::size_t generations = 350;
};

void print_usage(std::ostream& os) {
  os << "usage: iddqsyn_server [options]\n"
        "  --pipe           one session on stdin/stdout (default)\n"
        "  --socket PATH    listen on a unix-domain socket\n"
        "  --listen H:P     listen on a TCP host:port (port 0 = ephemeral, "
        "announced on stderr)\n"
        "  --workers N      worker threads (default: hardware concurrency)\n"
        "  --threads N      shared intra-job thread pool (default 1; "
        "results identical for any N)\n"
        "  --max-queue N    reject submits past N queued jobs (default 0 = "
        "unbounded)\n"
        "  --session-queue N  per-session event-queue bound (default 1024; "
        "0 = unbounded)\n"
        "  --max-jobs-per-session N  per-session in-flight job quota "
        "(default 0 = unlimited)\n"
        "  --job-timeout-ms N  default per-job deadline: a job past N ms of "
        "wall clock fails with reason \"timeout\" (submit deadline_ms "
        "overrides; default 0 = none)\n"
        "  --drain-timeout-ms N  graceful-drain bound: on shutdown/SIGTERM "
        "finish in-flight jobs for up to N ms, then cancel the rest "
        "(default 0 = wait for them)\n"
        "  --cache-idle-evict SEC  evict in-memory cache entries idle for "
        "SEC seconds\n"
        "  --cache-dir DIR  content-addressed result cache "
        "(docs/caching.md)\n"
        "  --cache-resident N  cap in-memory cache entries at N (older "
        "entries spill to disk)\n"
        "  --coverage       grade rows by measured IDDQ fault coverage "
        "(docs/coverage.md)\n"
        "  --fault-model SPEC  mixed | bridges | shorts | "
        "bridges=N[,shorts=M] (default mixed)\n"
        "  --patterns N     test patterns per coverage run (default 256)\n"
        "  --minimize-patterns  greedy set-cover pattern minimization\n"
        "  --lib FILE       cell library file (default: built-in 5V CMOS)\n"
        "  --rail MV        rail perturbation limit r in mV (default 200)\n"
        "  --disc D         required discriminability d (default 10)\n"
        "  --generations N  ES generation cap (default 350)\n"
        "protocol: docs/server.md (line-delimited JSON; submit/cancel/"
        "stats/shutdown)\n";
}

std::optional<ServerOptions> parse(int argc, char** argv) {
  ServerOptions opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto need_value =
        [&](const char* flag) -> std::optional<std::string> {
      if (i + 1 >= argc) {
        std::cerr << "iddqsyn_server: " << flag << " needs a value\n";
        return std::nullopt;
      }
      return std::string(argv[++i]);
    };
    if (arg == "--help" || arg == "-h") {
      print_usage(std::cout);
      std::exit(0);
    } else if (arg == "--pipe") {
      opts.socket_path.reset();
      opts.listen.reset();
    } else if (arg == "--socket") {
      const auto v = need_value("--socket");
      if (!v) return std::nullopt;
      opts.socket_path = *v;
      opts.listen.reset();
    } else if (arg == "--listen") {
      const auto v = need_value("--listen");
      if (!v) return std::nullopt;
      // Unlike --submit, --listen is TCP-only, so port 0 (ephemeral) is
      // meaningful here and parsed by hand.
      const auto colon = v->rfind(':');
      std::size_t port = 65536;
      if (colon == std::string::npos || colon == 0 ||
          !str::parse_size(v->substr(colon + 1), port) || port > 65535) {
        std::cerr << "iddqsyn_server: --listen needs host:port (port 0 = "
                     "ephemeral)\n";
        return std::nullopt;
      }
      opts.listen = {v->substr(0, colon), static_cast<std::uint16_t>(port)};
      opts.socket_path.reset();
    } else if (arg == "--workers") {
      const auto v = need_value("--workers");
      if (!v || !str::parse_size(*v, opts.workers) || opts.workers == 0) {
        std::cerr << "iddqsyn_server: --workers must be >= 1\n";
        return std::nullopt;
      }
    } else if (arg == "--threads") {
      const auto v = need_value("--threads");
      if (!v || !str::parse_size(*v, opts.threads) || opts.threads == 0) {
        std::cerr << "iddqsyn_server: --threads must be >= 1\n";
        return std::nullopt;
      }
    } else if (arg == "--max-queue") {
      const auto v = need_value("--max-queue");
      // 0 is the documented default: unbounded.
      if (!v || !str::parse_size(*v, opts.max_queue)) {
        std::cerr << "iddqsyn_server: --max-queue must be an integer >= 0\n";
        return std::nullopt;
      }
    } else if (arg == "--session-queue") {
      const auto v = need_value("--session-queue");
      // 0 = unbounded (the pre-queue semantics).
      if (!v || !str::parse_size(*v, opts.session_queue)) {
        std::cerr
            << "iddqsyn_server: --session-queue must be an integer >= 0\n";
        return std::nullopt;
      }
    } else if (arg == "--max-jobs-per-session") {
      const auto v = need_value("--max-jobs-per-session");
      // 0 = unlimited.
      if (!v || !str::parse_size(*v, opts.max_jobs_per_session)) {
        std::cerr << "iddqsyn_server: --max-jobs-per-session must be an "
                     "integer >= 0\n";
        return std::nullopt;
      }
    } else if (arg == "--job-timeout-ms") {
      const auto v = need_value("--job-timeout-ms");
      // 0 = no default deadline (per-submit deadline_ms still honored).
      if (!v || !str::parse_size(*v, opts.job_timeout_ms)) {
        std::cerr
            << "iddqsyn_server: --job-timeout-ms must be an integer >= 0\n";
        return std::nullopt;
      }
    } else if (arg == "--drain-timeout-ms") {
      const auto v = need_value("--drain-timeout-ms");
      // 0 = unbounded drain (wait for every in-flight job).
      if (!v || !str::parse_size(*v, opts.drain_timeout_ms)) {
        std::cerr
            << "iddqsyn_server: --drain-timeout-ms must be an integer >= 0\n";
        return std::nullopt;
      }
    } else if (arg == "--cache-idle-evict") {
      const auto v = need_value("--cache-idle-evict");
      if (!v || !str::parse_size(*v, opts.cache_idle_evict_sec) ||
          opts.cache_idle_evict_sec == 0) {
        std::cerr << "iddqsyn_server: --cache-idle-evict must be >= 1 "
                     "second\n";
        return std::nullopt;
      }
    } else if (arg == "--cache-dir") {
      const auto v = need_value("--cache-dir");
      if (!v) return std::nullopt;
      opts.cache_dir = *v;
    } else if (arg == "--cache-resident") {
      const auto v = need_value("--cache-resident");
      if (!v || !str::parse_size(*v, opts.cache_resident) ||
          opts.cache_resident == 0) {
        std::cerr << "iddqsyn_server: --cache-resident must be >= 1\n";
        return std::nullopt;
      }
    } else if (arg == "--coverage") {
      opts.coverage = true;
    } else if (arg == "--fault-model") {
      const auto v = need_value("--fault-model");
      if (!v) return std::nullopt;
      opts.fault_model = *v;
    } else if (arg == "--patterns") {
      const auto v = need_value("--patterns");
      if (!v || !str::parse_size(*v, opts.patterns) || opts.patterns == 0) {
        std::cerr << "iddqsyn_server: --patterns must be >= 1\n";
        return std::nullopt;
      }
    } else if (arg == "--minimize-patterns") {
      opts.minimize_patterns = true;
    } else if (arg == "--lib") {
      const auto v = need_value("--lib");
      if (!v) return std::nullopt;
      opts.lib_path = *v;
    } else if (arg == "--rail") {
      const auto v = need_value("--rail");
      if (!v || !str::parse_double(*v, opts.rail_mv) || opts.rail_mv <= 0) {
        std::cerr << "iddqsyn_server: --rail must be > 0 mV\n";
        return std::nullopt;
      }
    } else if (arg == "--disc") {
      const auto v = need_value("--disc");
      if (!v || !str::parse_double(*v, opts.disc) || opts.disc <= 0) {
        std::cerr << "iddqsyn_server: --disc must be > 0\n";
        return std::nullopt;
      }
    } else if (arg == "--generations") {
      const auto v = need_value("--generations");
      if (!v || !str::parse_size(*v, opts.generations) ||
          opts.generations == 0) {
        std::cerr << "iddqsyn_server: --generations must be >= 1\n";
        return std::nullopt;
      }
    } else {
      std::cerr << "iddqsyn_server: unknown option '" << arg << "'\n";
      return std::nullopt;
    }
  }
  if (opts.coverage) {
    try {
      (void)sim::FaultModelSpec::parse(opts.fault_model);
    } catch (const Error& e) {
      std::cerr << "iddqsyn_server: " << e.what() << "\n";
      return std::nullopt;
    }
  }
  return opts;
}

// SIGTERM → graceful drain (docs/robustness.md): the handler may only
// touch async-signal-safe state, so it flips an atomic and closes the
// listener fd (atomic exchange + shutdown/close), which unblocks the
// accept loop; everything else happens on normal threads.
std::atomic<support::SocketListener*> g_signal_listener{nullptr};

extern "C" void handle_sigterm(int /*signum*/) {
  if (auto* listener = g_signal_listener.exchange(nullptr))
    listener->close();
}

int serve_listener(core::JobService& service,
                   support::SocketListener& listener,
                   core::JobProtocolOptions protocol_options,
                   std::atomic<bool>& draining) {
  // Tests (and `--listen host:0` deployments) parse the endpoint — which
  // carries the kernel-assigned port — from this line.
  std::cerr << "iddqsyn_server: listening on " << listener.endpoint()
            << "\n";

  g_signal_listener.store(&listener);
  (void)std::signal(SIGTERM, handle_sigterm);

  std::atomic<bool> shutdown_requested{false};
  std::mutex threads_mutex;
  std::vector<std::thread> sessions;
  // Live session channels, so drain can stop their blocked read loops.
  std::mutex conns_mutex;
  std::vector<std::weak_ptr<support::FdChannel>> conns;

  while (auto channel = listener.accept()) {
    std::shared_ptr<support::FdChannel> conn = std::move(channel);
    {
      const std::scoped_lock lock(conns_mutex);
      std::erase_if(conns,
                    [](const auto& weak) { return weak.expired(); });
      conns.push_back(conn);
    }
    std::thread session([&service, &listener, &shutdown_requested, conn,
                         protocol_options] {
      core::JobProtocolSession protocol(service, *conn, protocol_options);
      if (protocol.run()) {
        // A client-requested shutdown stops the whole server: closing
        // the listener unblocks accept() in the main thread.
        shutdown_requested.store(true);
        listener.close();
      }
    });
    const std::scoped_lock lock(threads_mutex);
    sessions.push_back(std::move(session));
  }
  // Accept loop over — client shutdown op or SIGTERM. Enter drain mode
  // (new submits already rejected by any session that checks the flag)
  // and stop every session's blocked read so each finishes its in-flight
  // jobs bounded by --drain-timeout-ms, flushes, and says bye.
  g_signal_listener.store(nullptr);
  draining.store(true);
  {
    const std::scoped_lock lock(conns_mutex);
    for (const auto& weak : conns)
      if (const auto conn = weak.lock()) conn->shutdown_read();
  }
  {
    const std::scoped_lock lock(threads_mutex);
    for (auto& t : sessions)
      if (t.joinable()) t.join();
  }
  std::cerr << "iddqsyn_server: "
            << (shutdown_requested.load() ? "shutdown requested by client"
                                          : "drained (signal or listener "
                                            "closed)")
            << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Settle the IDDQ_FAULT_PLAN env check up front: a malformed plan must
  // abort at startup, not at the first transport or cache hook.
  (void)support::FaultPlan::active();
  const auto opts = parse(argc, argv);
  if (!opts) {
    print_usage(std::cerr);
    return 1;
  }
  try {
    const auto library = opts->lib_path
                             ? lib::read_library_file(*opts->lib_path)
                             : lib::default_library();

    core::JobServiceConfig config;
    config.workers = opts->workers > 0
                         ? opts->workers
                         : std::max(1u, std::thread::hardware_concurrency());
    config.flow.sensor.r_max_mv = opts->rail_mv;
    config.flow.sensor.d_min = opts->disc;
    config.flow.optimizers.es.max_generations = opts->generations;
    config.flow.coverage.enabled = opts->coverage;
    config.flow.coverage.fault_model = opts->fault_model;
    config.flow.coverage.patterns = opts->patterns;
    config.flow.coverage.minimize = opts->minimize_patterns;

    // One ExecutorPool shared by every worker's optimizer runs: total
    // fan-out stays bounded by workers + threads - 1 instead of
    // multiplying, and results are byte-identical for any --threads.
    support::ExecutorPool pool(
        support::ExecutorPool::from_option(opts->threads));
    config.flow.pool = &pool;

    std::optional<core::ResultCache> cache;
    if (opts->cache_dir) {
      cache.emplace(*opts->cache_dir);
      if (opts->cache_resident > 0)
        cache->set_max_resident(opts->cache_resident);
      if (opts->cache_idle_evict_sec > 0)
        cache->set_idle_deadline(
            std::chrono::seconds(opts->cache_idle_evict_sec));
      config.flow.cache = &*cache;
      std::cerr << "iddqsyn_server: cache " << *opts->cache_dir << " ("
                << cache->size() << " entries";
      if (cache->corrupt_lines() > 0)
        std::cerr << ", " << cache->corrupt_lines() << " corrupt lines";
      std::cerr << ")\n";
    }

    core::JobService service(library, std::move(config));

    core::SessionTrafficStats traffic;
    core::JobProtocolOptions protocol_options;
    protocol_options.max_queue = opts->max_queue;
    protocol_options.session_queue = opts->session_queue;
    protocol_options.max_jobs_per_session = opts->max_jobs_per_session;
    protocol_options.traffic = &traffic;
    protocol_options.default_deadline_ms = opts->job_timeout_ms;
    protocol_options.drain_timeout_ms = opts->drain_timeout_ms;
    std::atomic<bool> draining{false};
    protocol_options.draining = &draining;
    if (opts->listen) {
      support::TcpSocketListener listener(opts->listen->first,
                                          opts->listen->second);
      return serve_listener(service, listener, protocol_options, draining);
    }
    if (opts->socket_path) {
      support::UnixSocketListener listener(*opts->socket_path);
      return serve_listener(service, listener, protocol_options, draining);
    }

    support::StreamChannel channel(std::cin, std::cout);
    core::JobProtocolSession session(service, channel, protocol_options);
    (void)session.run();
    return 0;
  } catch (const Error& e) {
    std::cerr << "iddqsyn_server: " << e.what() << "\n";
    return 2;
  }
}
