// iddqsyn_cluster — cluster front-end for the BIC-sensor job protocol
// (docs/cluster.md).
//
// Speaks the same line-delimited JSON session protocol as iddqsyn_server
// (docs/server.md) on its client side, but runs no flow itself: every
// submitted sweep is split into per-circuit shards, consistent-hashed over
// the configured `--backend` servers (cache affinity: the routing key is
// the run-key fingerprint, so repeat traffic lands on warm ResultCaches),
// and the per-backend event streams are merged back into one session
// stream that is byte-identical to what a single direct server — or
// `iddqsyn --jobs N` — would have produced. Backends that die mid-sweep
// are failed over: their shards retry on ring successors with bounded
// backoff, and rows stay identical because each shard's base seed is
// shipped with it as data.
//
// Usage:
//   iddqsyn_cluster --backend ENDPOINT [--backend ENDPOINT ...] [options]
//
// Options:
//   --backend E      backend endpoint (host:port or unix socket path);
//                    repeat once per backend — at least one required
//   --pipe           serve exactly one session on stdin/stdout (default)
//   --socket PATH    listen on a unix-domain socket instead
//   --listen H:P     listen on a TCP host:port (port 0 = ephemeral,
//                    announced on stderr)
//   --replicas N     virtual nodes per backend on the hash ring
//                    (default 64)
//   --retry N        dispatch attempts per shard before it fails
//                    (default 3)
//   --backoff-ms MS  base retry backoff, doubled per attempt, 16x cap
//                    (default 200)
//   --session-queue N  per-session outbound event-queue bound
//                    (default 1024; 0 = unbounded), same overflow policy
//                    as the server (docs/server.md, "Backpressure")
//   --lib FILE       cell library (default: built-in 5V CMOS) — feeds the
//                    routing fingerprint; must match the backends' library
//                    for cache affinity (results never depend on it)
//   --help           this text
//
// The front-end holds no result state: `stats` and `ping` fan out to every
// backend and return an aggregate (summed counters + per_backend array).
// A client "shutdown" op stops the front-end only — backends keep running.
#include <atomic>
#include <cstdint>
#include <iostream>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cluster/cluster_client.hpp"
#include "core/event_writer.hpp"
#include "core/job_event.hpp"
#include "library/cell_library.hpp"
#include "library/fingerprint.hpp"
#include "library/lib_io.hpp"
#include "support/error.hpp"
#include "support/fault_plan.hpp"
#include "support/json.hpp"
#include "support/strings.hpp"
#include "support/transport.hpp"

namespace {

using namespace iddq;
using json::JsonWriter;

struct ClusterToolOptions {
  std::vector<std::string> backends;
  std::optional<std::string> socket_path;  // nullopt = pipe mode
  std::optional<std::pair<std::string, std::uint16_t>> listen;
  cluster::ClusterOptions cluster;
  std::size_t session_queue = 1024;  // 0 = unbounded
  std::optional<std::string> lib_path;
};

void print_usage(std::ostream& os) {
  os << "usage: iddqsyn_cluster --backend ENDPOINT [--backend ...] "
        "[options]\n"
        "  --backend E      backend endpoint (host:port or unix socket "
        "path); repeatable\n"
        "  --pipe           one session on stdin/stdout (default)\n"
        "  --socket PATH    listen on a unix-domain socket\n"
        "  --listen H:P     listen on a TCP host:port (port 0 = ephemeral, "
        "announced on stderr)\n"
        "  --replicas N     virtual nodes per backend on the hash ring "
        "(default 64)\n"
        "  --retry N        dispatch attempts per shard (default 3)\n"
        "  --backoff-ms MS  base retry backoff in ms (default 200; actual "
        "sleeps use deterministic decorrelated jitter)\n"
        "  --heartbeat-ms MS  probe every backend each MS ms and run the "
        "per-backend circuit breaker (default 0 = off; "
        "docs/robustness.md)\n"
        "  --breaker-threshold N  consecutive probe failures that open a "
        "backend's breaker (default 3)\n"
        "  --breaker-cooldown-ms MS  open-breaker cooldown before a "
        "half-open re-probe (default 1000)\n"
        "  --session-queue N  per-session event-queue bound (default 1024; "
        "0 = unbounded)\n"
        "  --lib FILE       cell library for the routing fingerprint "
        "(default: built-in)\n"
        "protocol: docs/cluster.md and docs/server.md (line-delimited "
        "JSON)\n";
}

std::optional<ClusterToolOptions> parse(int argc, char** argv) {
  ClusterToolOptions opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto need_value =
        [&](const char* flag) -> std::optional<std::string> {
      if (i + 1 >= argc) {
        std::cerr << "iddqsyn_cluster: " << flag << " needs a value\n";
        return std::nullopt;
      }
      return std::string(argv[++i]);
    };
    if (arg == "--help" || arg == "-h") {
      print_usage(std::cout);
      std::exit(0);
    } else if (arg == "--backend") {
      const auto v = need_value("--backend");
      if (!v) return std::nullopt;
      opts.backends.push_back(*v);
    } else if (arg == "--pipe") {
      opts.socket_path.reset();
      opts.listen.reset();
    } else if (arg == "--socket") {
      const auto v = need_value("--socket");
      if (!v) return std::nullopt;
      opts.socket_path = *v;
      opts.listen.reset();
    } else if (arg == "--listen") {
      const auto v = need_value("--listen");
      if (!v) return std::nullopt;
      const auto colon = v->rfind(':');
      std::size_t port = 65536;
      if (colon == std::string::npos || colon == 0 ||
          !str::parse_size(v->substr(colon + 1), port) || port > 65535) {
        std::cerr << "iddqsyn_cluster: --listen needs host:port (port 0 = "
                     "ephemeral)\n";
        return std::nullopt;
      }
      opts.listen = {v->substr(0, colon), static_cast<std::uint16_t>(port)};
      opts.socket_path.reset();
    } else if (arg == "--replicas") {
      const auto v = need_value("--replicas");
      if (!v || !str::parse_size(*v, opts.cluster.ring_replicas) ||
          opts.cluster.ring_replicas == 0) {
        std::cerr << "iddqsyn_cluster: --replicas must be >= 1\n";
        return std::nullopt;
      }
    } else if (arg == "--retry") {
      const auto v = need_value("--retry");
      if (!v || !str::parse_size(*v, opts.cluster.max_attempts) ||
          opts.cluster.max_attempts == 0) {
        std::cerr << "iddqsyn_cluster: --retry must be >= 1\n";
        return std::nullopt;
      }
    } else if (arg == "--backoff-ms") {
      const auto v = need_value("--backoff-ms");
      if (!v || !str::parse_size(*v, opts.cluster.backoff_ms)) {
        std::cerr
            << "iddqsyn_cluster: --backoff-ms must be an integer >= 0\n";
        return std::nullopt;
      }
    } else if (arg == "--heartbeat-ms") {
      const auto v = need_value("--heartbeat-ms");
      // 0 = no heartbeat thread (breaker never trips).
      if (!v || !str::parse_size(*v, opts.cluster.heartbeat_ms)) {
        std::cerr
            << "iddqsyn_cluster: --heartbeat-ms must be an integer >= 0\n";
        return std::nullopt;
      }
    } else if (arg == "--breaker-threshold") {
      const auto v = need_value("--breaker-threshold");
      if (!v || !str::parse_size(*v, opts.cluster.breaker_threshold) ||
          opts.cluster.breaker_threshold == 0) {
        std::cerr << "iddqsyn_cluster: --breaker-threshold must be >= 1\n";
        return std::nullopt;
      }
    } else if (arg == "--breaker-cooldown-ms") {
      const auto v = need_value("--breaker-cooldown-ms");
      if (!v || !str::parse_size(*v, opts.cluster.breaker_cooldown_ms) ||
          opts.cluster.breaker_cooldown_ms == 0) {
        std::cerr
            << "iddqsyn_cluster: --breaker-cooldown-ms must be >= 1\n";
        return std::nullopt;
      }
    } else if (arg == "--session-queue") {
      const auto v = need_value("--session-queue");
      if (!v || !str::parse_size(*v, opts.session_queue)) {
        std::cerr
            << "iddqsyn_cluster: --session-queue must be an integer >= 0\n";
        return std::nullopt;
      }
    } else if (arg == "--lib") {
      const auto v = need_value("--lib");
      if (!v) return std::nullopt;
      opts.lib_path = *v;
    } else {
      std::cerr << "iddqsyn_cluster: unknown option '" << arg << "'\n";
      return std::nullopt;
    }
  }
  if (opts.backends.empty()) {
    std::cerr << "iddqsyn_cluster: at least one --backend is required\n";
    return std::nullopt;
  }
  return opts;
}

/// One client connection: reads ops, relays sweeps through the shared
/// ClusterClient, and streams merged events back through a non-blocking
/// SessionEventWriter — the same backpressure contract as a direct server
/// session (docs/server.md, "Backpressure").
class ClusterSession {
 public:
  ClusterSession(cluster::ClusterClient& client,
                 support::LineChannel& channel, std::size_t session_queue)
      : client_(&client), channel_(&channel), session_queue_(session_queue) {}

  /// Serves until EOF or a shutdown op; drains in-flight sweeps before
  /// returning. Returns true on a client-requested shutdown.
  bool run() {
    bool shutdown_requested = false;
    core::SessionEventWriter writer(
        *channel_, session_queue_, [this] { on_overflow_disconnect(); },
        JsonWriter()
            .field("event", "error")
            .field("message",
                   "event queue overflow: client not reading; session "
                   "disconnected")
            .str());
    writer_ = &writer;

    writer.post(JsonWriter()
                    .field("event", "hello")
                    .field("protocol", std::uint64_t{1})
                    .field("backends", client_->backend_count())
                    .str(),
                core::EventDeliveryClass::must_deliver);

    std::string line;
    while (!writer.disconnected() && channel_->read_line(line)) {
      if (str::trim(line).empty()) continue;
      if (handle_line(line)) {
        shutdown_requested = true;
        break;
      }
    }
    drain();
    if (shutdown_requested && !writer.disconnected())
      send(JsonWriter().field("event", "bye").str());
    writer.flush();
    writer_ = nullptr;
    return shutdown_requested;
  }

 private:
  bool handle_line(const std::string& line) {
    const auto request = json::JsonValue::parse(line);
    if (!request || !request->is_object()) {
      send_error("malformed request: not a JSON object");
      return false;
    }
    const std::string op = request->get_string("op");
    if (op == "shutdown") return true;
    if (op == "stats") {
      // Aggregated across backends; blocks this session's read loop (not
      // the event stream) for at most the stats timeout.
      send(client_->stats_line());
      return false;
    }
    if (op == "ping") {
      send(client_->ping_line());
      return false;
    }
    if (op == "cancel") {
      const std::string id = request->get_string("id");
      std::shared_ptr<cluster::ClusterSweep> sweep;
      {
        const std::scoped_lock lock(mutex_);
        const auto it = sweeps_.find(id);
        if (it != sweeps_.end()) sweep = it->second;
      }
      if (sweep == nullptr || sweep->finished()) {
        send_error("cancel: unknown sweep id '" + id + "'");
        return false;
      }
      client_->cancel(sweep);
      return false;
    }
    if (op == "submit") {
      handle_submit(*request);
      return false;
    }
    send_error("unknown op '" + op + "'");
    return false;
  }

  void handle_submit(const json::JsonValue& request) {
    cluster::SweepRequest sweep_request;
    sweep_request.id = request.get_string("id");
    if (sweep_request.id.empty())
      sweep_request.id = "job-" + std::to_string(++auto_id_);
    if (const json::JsonValue* circuits = request.find("circuits")) {
      for (const auto& c : circuits->items())
        if (c.is_string()) sweep_request.circuits.push_back(c.as_string());
    } else if (const json::JsonValue* one = request.find("circuit")) {
      if (one->is_string())
        sweep_request.circuits.push_back(one->as_string());
    }
    if (const json::JsonValue* methods = request.find("methods")) {
      sweep_request.methods.clear();
      for (const auto& m : methods->items())
        if (m.is_string()) sweep_request.methods.push_back(m.as_string());
    }
    sweep_request.seed = request.get_u64("seed", 1);
    if (const json::JsonValue* seeds = request.find("seeds")) {
      for (const auto& s : seeds->items()) {
        std::uint64_t value = 0;
        if (!s.as_u64(value)) {
          send_error("submit: \"seeds\" must be an array of unsigned "
                     "64-bit integers",
                     sweep_request.id);
          return;
        }
        sweep_request.seeds.push_back(value);
      }
    }
    sweep_request.budget =
        static_cast<std::size_t>(request.get_u64("budget", 0));
    sweep_request.use_cache = request.get_bool("cache", true);
    sweep_request.priority =
        static_cast<int>(request.get_double("priority", 0.0));
    sweep_request.deadline_ms =
        static_cast<std::size_t>(request.get_u64("deadline_ms", 0));
    if (sweep_request.circuits.empty()) {
      send_error("submit: needs \"circuits\" (or \"circuit\")",
                 sweep_request.id);
      return;
    }
    if (sweep_request.methods.empty()) {
      send_error("submit: needs at least one method", sweep_request.id);
      return;
    }
    if (!sweep_request.seeds.empty() &&
        sweep_request.seeds.size() != sweep_request.circuits.size()) {
      send_error("submit: \"seeds\" must have one entry per circuit (" +
                     std::to_string(sweep_request.seeds.size()) +
                     " seeds for " +
                     std::to_string(sweep_request.circuits.size()) +
                     " circuits)",
                 sweep_request.id);
      return;
    }
    {
      const std::scoped_lock lock(mutex_);
      const auto it = sweeps_.find(sweep_request.id);
      if (it != sweeps_.end() && !it->second->finished()) {
        send_error("submit: sweep id '" + sweep_request.id +
                       "' is still active",
                   sweep_request.id);
        return;
      }
    }
    // The same accepted bytes a direct server answers with; emitted
    // before dispatch so the client sees it ahead of any backend event.
    send(JsonWriter()
             .field("event", "accepted")
             .field("id", sweep_request.id)
             .field("jobs", sweep_request.circuits.size())
             .str());
    auto sweep = client_->submit_sweep(
        sweep_request, [this](const std::string& event_line, bool droppable) {
          send(event_line, droppable
                               ? core::EventDeliveryClass::droppable
                               : core::EventDeliveryClass::must_deliver);
        });
    const std::scoped_lock lock(mutex_);
    sweeps_[sweep->id()] = std::move(sweep);
  }

  void send(const std::string& json_line,
            core::EventDeliveryClass cls =
                core::EventDeliveryClass::must_deliver) {
    if (writer_ != nullptr) (void)writer_->post(json_line, cls);
  }

  void send_error(const std::string& message, const std::string& id = "") {
    JsonWriter w;
    w.field("event", "error");
    if (!id.empty()) w.field("id", id);
    w.field("message", message);
    send(std::move(w).str());
  }

  void on_overflow_disconnect() {
    channel_->shutdown_read();
    // A disconnected client never sees the remaining results; cancelling
    // the sweeps propagates to the backends and frees their workers.
    std::vector<std::shared_ptr<cluster::ClusterSweep>> active;
    {
      const std::scoped_lock lock(mutex_);
      for (const auto& [id, sweep] : sweeps_) active.push_back(sweep);
    }
    for (const auto& sweep : active) client_->cancel(sweep);
  }

  /// EOF and shutdown both drain, mirroring the direct server: every
  /// sweep reaches sweep_done (failover and attempt bounds guarantee
  /// termination even with dead backends) before the session ends.
  void drain() {
    std::vector<std::shared_ptr<cluster::ClusterSweep>> active;
    {
      const std::scoped_lock lock(mutex_);
      for (const auto& [id, sweep] : sweeps_) active.push_back(sweep);
    }
    for (const auto& sweep : active) sweep->wait();
  }

  cluster::ClusterClient* client_;
  support::LineChannel* channel_;
  std::size_t session_queue_;
  std::mutex mutex_;  // guards sweeps_
  std::unordered_map<std::string, std::shared_ptr<cluster::ClusterSweep>>
      sweeps_;
  std::uint64_t auto_id_ = 0;
  core::SessionEventWriter* writer_ = nullptr;
};

int serve_listener(cluster::ClusterClient& client,
                   support::SocketListener& listener,
                   std::size_t session_queue) {
  // Tests (and `--listen host:0` deployments) parse the endpoint — which
  // carries the kernel-assigned port — from this line.
  std::cerr << "iddqsyn_cluster: listening on " << listener.endpoint()
            << "\n";

  std::atomic<bool> shutdown_requested{false};
  std::mutex threads_mutex;
  std::vector<std::thread> sessions;

  while (auto channel = listener.accept()) {
    std::shared_ptr<support::FdChannel> conn = std::move(channel);
    std::thread session(
        [&client, &listener, &shutdown_requested, conn, session_queue] {
          ClusterSession protocol(client, *conn, session_queue);
          if (protocol.run()) {
            shutdown_requested.store(true);
            listener.close();
          }
        });
    const std::scoped_lock lock(threads_mutex);
    sessions.push_back(std::move(session));
  }
  {
    const std::scoped_lock lock(threads_mutex);
    for (auto& t : sessions)
      if (t.joinable()) t.join();
  }
  std::cerr << "iddqsyn_cluster: "
            << (shutdown_requested.load() ? "shutdown requested by client"
                                          : "listener closed")
            << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Settle the IDDQ_FAULT_PLAN env check up front: a malformed plan must
  // abort at startup, not at the first transport or cache hook.
  (void)support::FaultPlan::active();
  const auto opts = parse(argc, argv);
  if (!opts) {
    print_usage(std::cerr);
    return 1;
  }
  try {
    const auto library = opts->lib_path
                             ? lib::read_library_file(*opts->lib_path)
                             : lib::default_library();
    cluster::ClusterClient client(opts->backends,
                                  lib::library_fingerprint(library),
                                  opts->cluster);
    std::cerr << "iddqsyn_cluster: " << client.backend_count()
              << " backend(s) on the ring\n";

    if (opts->listen) {
      support::TcpSocketListener listener(opts->listen->first,
                                          opts->listen->second);
      return serve_listener(client, listener, opts->session_queue);
    }
    if (opts->socket_path) {
      support::UnixSocketListener listener(*opts->socket_path);
      return serve_listener(client, listener, opts->session_queue);
    }

    support::StreamChannel channel(std::cin, std::cout);
    ClusterSession session(client, channel, opts->session_queue);
    (void)session.run();
    return 0;
  } catch (const Error& e) {
    std::cerr << "iddqsyn_cluster: " << e.what() << "\n";
    return 2;
  }
}
