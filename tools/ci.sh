#!/usr/bin/env sh
# Tier-1 verification, runnable locally and from CI:
#   configure + build (warnings-as-errors for src/) + full ctest.
#
#   $ tools/ci.sh [build-dir]        default build dir: build-ci
#
# Server smoke (what the CI server-smoke job runs): build only the job
# server, start it in pipe mode, submit a builtin-circuit job, and assert
# a result row streams back.
#
#   $ tools/ci.sh smoke [build-dir]  default build dir: build-smoke
set -eu

MODE="full"
if [ "${1:-}" = "smoke" ]; then
  MODE="smoke"
  shift
fi

JOBS="$(nproc 2>/dev/null || echo 2)"
ROOT="$(dirname "$0")/.."

if [ "$MODE" = "smoke" ]; then
  BUILD_DIR="${1:-build-smoke}"
  cmake -B "$BUILD_DIR" -S "$ROOT" -DIDDQ_WERROR=ON -DIDDQ_BUILD_TESTS=OFF \
    -DIDDQ_BUILD_BENCHES=OFF -DIDDQ_BUILD_EXAMPLES=OFF
  cmake --build "$BUILD_DIR" -j "$JOBS" --target iddqsyn_server
  OUT="$BUILD_DIR/server_smoke_out.txt"
  printf '%s\n%s\n' \
    '{"op":"submit","id":"smoke","circuits":["c17"],"methods":["random","standard"],"seed":42}' \
    '{"op":"shutdown"}' \
    | "$BUILD_DIR/iddqsyn_server" --pipe --workers 2 > "$OUT"
  grep -q '"event":"row"' "$OUT"
  grep -q '"event":"sweep_done","id":"smoke","ok":1' "$OUT"
  grep -q '"event":"bye"' "$OUT"
  echo "server smoke OK"
  exit 0
fi

BUILD_DIR="${1:-build-ci}"
cmake -B "$BUILD_DIR" -S "$ROOT" -DIDDQ_WERROR=ON
cmake --build "$BUILD_DIR" -j "$JOBS"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"
