#!/usr/bin/env sh
# Tier-1 verification, runnable locally and from CI:
#   configure + build (warnings-as-errors for src/) + full ctest.
#
#   $ tools/ci.sh [build-dir]        default build dir: build-ci
set -eu

BUILD_DIR="${1:-build-ci}"
JOBS="$(nproc 2>/dev/null || echo 2)"

cmake -B "$BUILD_DIR" -S "$(dirname "$0")/.." -DIDDQ_WERROR=ON
cmake --build "$BUILD_DIR" -j "$JOBS"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"
