#!/usr/bin/env sh
# Tier-1 verification, runnable locally and from CI:
#   configure + build (warnings-as-errors for src/) + full ctest.
#
#   $ tools/ci.sh [build-dir]          default build dir: build-ci
#
# Threaded tier-1 leg (the CI matrix leg): the same full ctest with
# IDDQ_THREADS=2, which makes every FlowEngine-based test evaluate ES
# descendants / tabu candidates / portfolio members on a 2-thread
# ExecutorPool — results must stay byte-identical, so every pinned
# determinism test doubles as a threading regression test.
#
#   $ tools/ci.sh threads [build-dir]  default build dir: build-ci
#
# ThreadSanitizer leg: rebuild the support + core test binaries with
# -fsanitize=thread and run the parallelism-relevant suites (executor,
# optimizers, job queue/service/protocol) threaded.
#
#   $ tools/ci.sh tsan [build-dir]     default build dir: build-tsan
#
# Server smoke (what the CI server-smoke job runs): build only the job
# server, start it in pipe mode, submit a builtin-circuit job, and assert
# a result row streams back.
#
#   $ tools/ci.sh smoke [build-dir]    default build dir: build-smoke
#
# Bench-row regression gate (the CI bench-compare job): run the FAST
# Table-1 sweep threaded and diff its rows against the committed
# BENCH_table1.json with tools/bench_compare.py — optimizer results must
# be byte-identical to the baseline at any thread count; wall clock is
# reported but not enforced (CI hosts differ from the baseline host).
#
#   $ tools/ci.sh bench [build-dir]    default build dir: build-bench
#
# Coverage smoke (the CI coverage-smoke job): build the CLI, run the
# coverage-graded FAST sweep with set-cover minimization at
# IDDQ_THREADS=2, and diff the summary rows byte-for-byte against the
# committed golden file tests/golden/coverage_smoke.txt — the
# fault-grade coverage numbers are part of the determinism contract.
#
#   $ tools/ci.sh coverage-smoke [build-dir]  default: build-coverage
set -eu

MODE="full"
case "${1:-}" in
  smoke|threads|tsan|bench|coverage-smoke)
    MODE="$1"
    shift
    ;;
esac

JOBS="$(nproc 2>/dev/null || echo 2)"
ROOT="$(dirname "$0")/.."

if [ "$MODE" = "smoke" ]; then
  BUILD_DIR="${1:-build-smoke}"
  cmake -B "$BUILD_DIR" -S "$ROOT" -DIDDQ_WERROR=ON -DIDDQ_BUILD_TESTS=OFF \
    -DIDDQ_BUILD_BENCHES=OFF -DIDDQ_BUILD_EXAMPLES=OFF
  cmake --build "$BUILD_DIR" -j "$JOBS" --target iddqsyn_server
  OUT="$BUILD_DIR/server_smoke_out.txt"
  printf '%s\n%s\n' \
    '{"op":"submit","id":"smoke","circuits":["c17"],"methods":["random","standard"],"seed":42}' \
    '{"op":"shutdown"}' \
    | "$BUILD_DIR/iddqsyn_server" --pipe --workers 2 --threads 2 \
      --max-queue 16 > "$OUT"
  grep -q '"event":"row"' "$OUT"
  grep -q '"event":"sweep_done","id":"smoke","ok":1' "$OUT"
  grep -q '"event":"bye"' "$OUT"
  echo "server smoke OK"
  exit 0
fi

if [ "$MODE" = "bench" ]; then
  BUILD_DIR="${1:-build-bench}"
  cmake -B "$BUILD_DIR" -S "$ROOT" -DIDDQ_WERROR=ON -DIDDQ_BUILD_TESTS=OFF \
    -DIDDQ_BUILD_EXAMPLES=OFF
  cmake --build "$BUILD_DIR" -j "$JOBS" --target bench_table1_main
  IDDQSYN_BENCH_FAST=1 "$BUILD_DIR/bench_table1_main" --threads 2 \
    --json "$BUILD_DIR/BENCH_fresh.json"
  python3 "$ROOT/tools/bench_compare.py" "$ROOT/BENCH_table1.json" \
    "$BUILD_DIR/BENCH_fresh.json"
  echo "bench rows OK"
  exit 0
fi

if [ "$MODE" = "coverage-smoke" ]; then
  BUILD_DIR="${1:-build-coverage}"
  cmake -B "$BUILD_DIR" -S "$ROOT" -DIDDQ_WERROR=ON -DIDDQ_BUILD_TESTS=OFF \
    -DIDDQ_BUILD_BENCHES=OFF -DIDDQ_BUILD_EXAMPLES=OFF
  cmake --build "$BUILD_DIR" -j "$JOBS" --target iddqsyn
  OUT="$BUILD_DIR/coverage_smoke_out.txt"
  IDDQ_THREADS=2 "$BUILD_DIR/iddqsyn" --quiet --generations 12 \
    --method evolution,standard --coverage --fault-model mixed \
    --patterns 64 --minimize-patterns c17 ila8x4 ila16x8 > "$OUT"
  diff -u "$ROOT/tests/golden/coverage_smoke.txt" "$OUT"
  echo "coverage smoke OK"
  exit 0
fi

if [ "$MODE" = "tsan" ]; then
  BUILD_DIR="${1:-build-tsan}"
  cmake -B "$BUILD_DIR" -S "$ROOT" -DIDDQ_BUILD_BENCHES=OFF \
    -DIDDQ_BUILD_EXAMPLES=OFF \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-omit-frame-pointer" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread"
  cmake --build "$BUILD_DIR" -j "$JOBS" \
    --target iddq_tests_support iddq_tests_core
  # The parallelism surface: executor pool, the parallel optimizers and
  # their invariance pins, and the job queue/service/protocol stack.
  IDDQ_THREADS=2 "$BUILD_DIR/iddq_tests_support" \
    --gtest_filter='Executor.*'
  IDDQ_THREADS=2 "$BUILD_DIR/iddq_tests_core" \
    --gtest_filter='ParallelInvariance.*:Evolution.*:Tabu.*:Portfolio.*:JobQueue.*:JobService.*:JobProtocol.*'
  echo "tsan OK"
  exit 0
fi

BUILD_DIR="${1:-build-ci}"
cmake -B "$BUILD_DIR" -S "$ROOT" -DIDDQ_WERROR=ON
cmake --build "$BUILD_DIR" -j "$JOBS"
if [ "$MODE" = "threads" ]; then
  IDDQ_THREADS=2 ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"
else
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"
fi
