#!/usr/bin/env sh
# Tier-1 verification, runnable locally and from CI:
#   configure + build (warnings-as-errors for src/) + full ctest.
#
#   $ tools/ci.sh [build-dir]          default build dir: build-ci
#
# Threaded tier-1 leg (the CI matrix leg): the same full ctest with
# IDDQ_THREADS=2, which makes every FlowEngine-based test evaluate ES
# descendants / tabu candidates / portfolio members on a 2-thread
# ExecutorPool — results must stay byte-identical, so every pinned
# determinism test doubles as a threading regression test.
#
#   $ tools/ci.sh threads [build-dir]  default build dir: build-ci
#
# ThreadSanitizer leg: rebuild the support + core test binaries with
# -fsanitize=thread and run the parallelism-relevant suites (executor,
# optimizers, job queue/service/protocol) threaded.
#
#   $ tools/ci.sh tsan [build-dir]     default build dir: build-tsan
#
# Server smoke (what the CI server-smoke job runs): build only the job
# server, start it in pipe mode, submit a builtin-circuit job, and assert
# a result row streams back.
#
#   $ tools/ci.sh smoke [build-dir]    default build dir: build-smoke
#
# Bench-row regression gate (the CI bench-compare job): run the FAST
# Table-1 sweep threaded and diff its rows against the committed
# BENCH_table1.json with tools/bench_compare.py — optimizer results must
# be byte-identical to the baseline at any thread count; wall clock is
# reported but not enforced (CI hosts differ from the baseline host).
#
#   $ tools/ci.sh bench [build-dir]    default build dir: build-bench
#
# Coverage smoke (the CI coverage-smoke job): build the CLI, run the
# coverage-graded FAST sweep with set-cover minimization at
# IDDQ_THREADS=2, and diff the summary rows byte-for-byte against the
# committed golden file tests/golden/coverage_smoke.txt — the
# fault-grade coverage numbers are part of the determinism contract.
#
#   $ tools/ci.sh coverage-smoke [build-dir]  default: build-coverage
#
# Big-circuit smoke (the CI big-smoke job): build the bench, run the
# BIG-tier sweep restricted to the ~10k-gate big_dag10k at FAST budget
# with IDDQ_THREADS=2, and diff the rows against the committed golden
# tests/golden/BENCH_big_smoke.json — the large-circuit scaling path
# obeys the same byte-identity contract as the Table-1 tier, at a
# wall-clock cost CI can afford (~2 s of sweep).
#
#   $ tools/ci.sh big-smoke [build-dir]  default: build-bench
#
# Traffic stress (the CI stress job): start a TCP server, run three
# concurrent submit clients — one deliberately slow (--stall-ms) so the
# per-session event queue absorbs a non-draining reader — and diff every
# client's row stream against the direct-engine rows from the iddqsyn
# binary at the same seed. A stalled reader must neither corrupt nor
# block anyone's results.
#
#   $ tools/ci.sh stress [build-dir]   default build dir: build-stress
#
# Cluster leg (the CI cluster job): start three TCP backends and an
# iddqsyn_cluster front-end over them, run a sweep through the front-end
# with one backend killed mid-sweep, and diff the client's rows
# byte-for-byte against the direct single-process engine at the same seed
# (IDDQ_THREADS=2). Also exercises the remote --cache-stats path against
# the front-end's aggregated stats.
#
#   $ tools/ci.sh cluster [build-dir]  default build dir: build-cluster
#
# Chaos leg (the CI chaos job, docs/robustness.md): three backends under
# a deterministic IDDQ_FAULT_PLAN — one drops every accepted session
# after 4 event lines, one stalls a write — behind a heartbeat-probing
# front-end. The sweep's surviving rows must diff byte-identical against
# the direct engine; a --deadline-ms 1 submit must fail with a timeout;
# the aggregated stats books must balance (submitted == completed +
# failed + cancelled, timeouts >= 1); and a SIGTERM'd server must drain
# gracefully within its --drain-timeout-ms bound.
#
#   $ tools/ci.sh chaos [build-dir]    default build dir: build-chaos
set -eu

MODE="full"
case "${1:-}" in
  smoke|threads|tsan|bench|big-smoke|coverage-smoke|stress|cluster|chaos)
    MODE="$1"
    shift
    ;;
esac

JOBS="$(nproc 2>/dev/null || echo 2)"
ROOT="$(dirname "$0")/.."

if [ "$MODE" = "smoke" ]; then
  BUILD_DIR="${1:-build-smoke}"
  cmake -B "$BUILD_DIR" -S "$ROOT" -DIDDQ_WERROR=ON -DIDDQ_BUILD_TESTS=OFF \
    -DIDDQ_BUILD_BENCHES=OFF -DIDDQ_BUILD_EXAMPLES=OFF
  cmake --build "$BUILD_DIR" -j "$JOBS" --target iddqsyn_server
  OUT="$BUILD_DIR/server_smoke_out.txt"
  printf '%s\n%s\n' \
    '{"op":"submit","id":"smoke","circuits":["c17"],"methods":["random","standard"],"seed":42}' \
    '{"op":"shutdown"}' \
    | "$BUILD_DIR/iddqsyn_server" --pipe --workers 2 --threads 2 \
      --max-queue 16 > "$OUT"
  grep -q '"event":"row"' "$OUT"
  grep -q '"event":"sweep_done","id":"smoke","ok":1' "$OUT"
  grep -q '"event":"bye"' "$OUT"
  echo "server smoke OK"
  exit 0
fi

if [ "$MODE" = "bench" ]; then
  BUILD_DIR="${1:-build-bench}"
  cmake -B "$BUILD_DIR" -S "$ROOT" -DIDDQ_WERROR=ON -DIDDQ_BUILD_TESTS=OFF \
    -DIDDQ_BUILD_EXAMPLES=OFF
  cmake --build "$BUILD_DIR" -j "$JOBS" --target bench_table1_main
  IDDQSYN_BENCH_FAST=1 "$BUILD_DIR/bench_table1_main" --threads 2 \
    --json "$BUILD_DIR/BENCH_fresh.json"
  python3 "$ROOT/tools/bench_compare.py" "$ROOT/BENCH_table1.json" \
    "$BUILD_DIR/BENCH_fresh.json"
  echo "bench rows OK"
  exit 0
fi

if [ "$MODE" = "big-smoke" ]; then
  BUILD_DIR="${1:-build-bench}"
  cmake -B "$BUILD_DIR" -S "$ROOT" -DIDDQ_WERROR=ON -DIDDQ_BUILD_TESTS=OFF \
    -DIDDQ_BUILD_EXAMPLES=OFF
  cmake --build "$BUILD_DIR" -j "$JOBS" --target bench_table1_main
  IDDQSYN_BENCH_FAST=1 IDDQ_THREADS=2 "$BUILD_DIR/bench_table1_main" \
    --tier big --only big_dag10k --json "$BUILD_DIR/BENCH_big_fresh.json"
  python3 "$ROOT/tools/bench_compare.py" \
    "$ROOT/tests/golden/BENCH_big_smoke.json" \
    "$BUILD_DIR/BENCH_big_fresh.json"
  echo "big smoke OK"
  exit 0
fi

if [ "$MODE" = "coverage-smoke" ]; then
  BUILD_DIR="${1:-build-coverage}"
  cmake -B "$BUILD_DIR" -S "$ROOT" -DIDDQ_WERROR=ON -DIDDQ_BUILD_TESTS=OFF \
    -DIDDQ_BUILD_BENCHES=OFF -DIDDQ_BUILD_EXAMPLES=OFF
  cmake --build "$BUILD_DIR" -j "$JOBS" --target iddqsyn
  OUT="$BUILD_DIR/coverage_smoke_out.txt"
  IDDQ_THREADS=2 "$BUILD_DIR/iddqsyn" --quiet --generations 12 \
    --method evolution,standard --coverage --fault-model mixed \
    --patterns 64 --minimize-patterns c17 ila8x4 ila16x8 > "$OUT"
  diff -u "$ROOT/tests/golden/coverage_smoke.txt" "$OUT"
  echo "coverage smoke OK"
  exit 0
fi

if [ "$MODE" = "stress" ]; then
  BUILD_DIR="${1:-build-stress}"
  cmake -B "$BUILD_DIR" -S "$ROOT" -DIDDQ_WERROR=ON -DIDDQ_BUILD_TESTS=OFF \
    -DIDDQ_BUILD_BENCHES=OFF -DIDDQ_BUILD_EXAMPLES=OFF
  cmake --build "$BUILD_DIR" -j "$JOBS" --target iddqsyn iddqsyn_server

  SWEEP="c1908 c2670"
  METHODS="evolution,standard"
  # shellcheck disable=SC2086
  IDDQ_THREADS=2 "$BUILD_DIR/iddqsyn" --quiet --threads 2 \
    --method "$METHODS" --seed 42 $SWEEP \
    | sort > "$BUILD_DIR/stress_golden.txt"

  "$BUILD_DIR/iddqsyn_server" --listen 127.0.0.1:0 --workers 2 \
    --threads 2 --session-queue 64 2> "$BUILD_DIR/stress_server_err.txt" &
  SERVER_PID=$!
  trap 'kill $SERVER_PID 2>/dev/null || true' EXIT INT TERM
  PORT=""
  i=0
  while [ $i -lt 100 ]; do
    PORT=$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' \
             "$BUILD_DIR/stress_server_err.txt")
    [ -n "$PORT" ] && break
    sleep 0.1
    i=$((i + 1))
  done
  [ -n "$PORT" ] || { echo "stress: server never reported its port"; exit 1; }

  # Client 3 submits, then refuses to read for 4s: its events pile up in
  # the bounded per-session queue while the healthy clients stream.
  # shellcheck disable=SC2086
  timeout 600 "$BUILD_DIR/iddqsyn" --submit "127.0.0.1:$PORT" \
    --method "$METHODS" --seed 42 $SWEEP > "$BUILD_DIR/stress_c1.txt" &
  C1=$!
  # shellcheck disable=SC2086
  timeout 600 "$BUILD_DIR/iddqsyn" --submit "127.0.0.1:$PORT" \
    --method "$METHODS" --seed 42 $SWEEP > "$BUILD_DIR/stress_c2.txt" &
  C2=$!
  # shellcheck disable=SC2086
  timeout 600 "$BUILD_DIR/iddqsyn" --submit "127.0.0.1:$PORT" \
    --stall-ms 4000 \
    --method "$METHODS" --seed 42 $SWEEP > "$BUILD_DIR/stress_c3.txt" &
  C3=$!
  wait $C1
  wait $C2
  wait $C3
  kill $SERVER_PID 2>/dev/null || true
  wait $SERVER_PID 2>/dev/null || true
  trap - EXIT INT TERM

  # Every client — including the one that stalled — got the exact
  # direct-engine rows (completion order differs; sort before diffing).
  for c in 1 2 3; do
    sort "$BUILD_DIR/stress_c$c.txt" > "$BUILD_DIR/stress_c$c.sorted.txt"
    diff -u "$BUILD_DIR/stress_golden.txt" "$BUILD_DIR/stress_c$c.sorted.txt"
  done
  echo "traffic stress OK"
  exit 0
fi

if [ "$MODE" = "cluster" ]; then
  BUILD_DIR="${1:-build-cluster}"
  cmake -B "$BUILD_DIR" -S "$ROOT" -DIDDQ_WERROR=ON -DIDDQ_BUILD_TESTS=OFF \
    -DIDDQ_BUILD_BENCHES=OFF -DIDDQ_BUILD_EXAMPLES=OFF
  cmake --build "$BUILD_DIR" -j "$JOBS" \
    --target iddqsyn iddqsyn_server iddqsyn_cluster

  SWEEP="c17 c1908 c2670 ila16x8 ila24x6 ila12x12"
  METHODS="evolution,standard"
  # shellcheck disable=SC2086
  IDDQ_THREADS=2 "$BUILD_DIR/iddqsyn" --quiet --threads 2 \
    --method "$METHODS" --seed 42 $SWEEP \
    | sort > "$BUILD_DIR/cluster_golden.txt"

  # Three backends on kernel-assigned ports, each with its own cache.
  BACKENDS=""
  PIDS=""
  for i in 1 2 3; do
    "$BUILD_DIR/iddqsyn_server" --listen 127.0.0.1:0 --workers 2 \
      --threads 2 --cache-dir "$BUILD_DIR/cluster_cache$i" \
      2> "$BUILD_DIR/cluster_s$i.err" &
    PIDS="$PIDS $!"
  done
  # shellcheck disable=SC2064
  trap "kill $PIDS \$CLUSTER_PID 2>/dev/null || true" EXIT INT TERM
  for i in 1 2 3; do
    EP=""
    j=0
    while [ $j -lt 100 ]; do
      EP=$(sed -n 's/.*listening on \(127\.0\.0\.1:[0-9]*\)$/\1/p' \
             "$BUILD_DIR/cluster_s$i.err")
      [ -n "$EP" ] && break
      sleep 0.1
      j=$((j + 1))
    done
    [ -n "$EP" ] || { echo "cluster: backend $i never reported its port"; exit 1; }
    BACKENDS="$BACKENDS --backend $EP"
  done

  # shellcheck disable=SC2086
  "$BUILD_DIR/iddqsyn_cluster" --listen 127.0.0.1:0 $BACKENDS \
    2> "$BUILD_DIR/cluster_front.err" &
  CLUSTER_PID=$!
  CPORT=""
  j=0
  while [ $j -lt 100 ]; do
    CPORT=$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' \
              "$BUILD_DIR/cluster_front.err")
    [ -n "$CPORT" ] && break
    sleep 0.1
    j=$((j + 1))
  done
  [ -n "$CPORT" ] || { echo "cluster: front-end never reported its port"; exit 1; }

  # The sweep runs through the front-end while backend 1 is killed
  # mid-flight: its shards must fail over to ring successors and the
  # merged rows must still be byte-identical to the direct engine.
  # shellcheck disable=SC2086
  IDDQ_THREADS=2 timeout 600 "$BUILD_DIR/iddqsyn" \
    --submit "127.0.0.1:$CPORT" --method "$METHODS" --seed 42 $SWEEP \
    > "$BUILD_DIR/cluster_rows_raw.txt" &
  CLIENT=$!
  sleep 1
  VICTIM=$(echo $PIDS | cut -d' ' -f1)
  kill "$VICTIM" 2>/dev/null || true
  wait $CLIENT
  sort "$BUILD_DIR/cluster_rows_raw.txt" > "$BUILD_DIR/cluster_rows.txt"
  diff -u "$BUILD_DIR/cluster_golden.txt" "$BUILD_DIR/cluster_rows.txt"

  # Remote cache inspection through the front-end: the aggregate must
  # report the ring scope (the killed backend shows up as dead).
  "$BUILD_DIR/iddqsyn" --cache-stats - --submit "127.0.0.1:$CPORT" \
    > "$BUILD_DIR/cluster_cache_stats.txt"
  grep -q "across 2/3 backends" "$BUILD_DIR/cluster_cache_stats.txt"

  kill $PIDS $CLUSTER_PID 2>/dev/null || true
  trap - EXIT INT TERM
  echo "cluster OK"
  exit 0
fi

if [ "$MODE" = "chaos" ]; then
  BUILD_DIR="${1:-build-chaos}"
  cmake -B "$BUILD_DIR" -S "$ROOT" -DIDDQ_WERROR=ON -DIDDQ_BUILD_TESTS=OFF \
    -DIDDQ_BUILD_BENCHES=OFF -DIDDQ_BUILD_EXAMPLES=OFF
  cmake --build "$BUILD_DIR" -j "$JOBS" \
    --target iddqsyn iddqsyn_server iddqsyn_cluster

  SWEEP="c17 c1908 c2670 ila16x8 ila24x6 ila12x12"
  METHODS="evolution,standard"
  # shellcheck disable=SC2086
  IDDQ_THREADS=2 "$BUILD_DIR/iddqsyn" --quiet --threads 2 \
    --method "$METHODS" --seed 42 $SWEEP \
    | sort > "$BUILD_DIR/chaos_golden.txt"

  # Three backends: #1 drops every accepted session after 4 event lines,
  # #2 stalls one write per session for 1.5s, #3 is clean. The plans are
  # seeded and deterministic (docs/robustness.md).
  BACKENDS=""
  PIDS=""
  CLUSTER_PID=""
  DRAIN_PID=""
  for i in 1 2 3; do
    PLAN=""
    [ $i -eq 1 ] && PLAN="drop-after=accept@4"
    [ $i -eq 2 ] && PLAN="stall-write=accept@3@1500"
    IDDQ_FAULT_PLAN="$PLAN" "$BUILD_DIR/iddqsyn_server" \
      --listen 127.0.0.1:0 --workers 2 --threads 2 \
      2> "$BUILD_DIR/chaos_s$i.err" &
    PIDS="$PIDS $!"
  done
  # shellcheck disable=SC2064
  trap "kill $PIDS \$CLUSTER_PID \$DRAIN_PID 2>/dev/null || true" EXIT INT TERM
  for i in 1 2 3; do
    EP=""
    j=0
    while [ $j -lt 100 ]; do
      EP=$(sed -n 's/.*listening on \(127\.0\.0\.1:[0-9]*\)$/\1/p' \
             "$BUILD_DIR/chaos_s$i.err")
      [ -n "$EP" ] && break
      sleep 0.1
      j=$((j + 1))
    done
    [ -n "$EP" ] || { echo "chaos: backend $i never reported its port"; exit 1; }
    BACKENDS="$BACKENDS --backend $EP"
  done

  # Heartbeat-probing front-end: the dropping backend's channel death is
  # detected by probes, its breaker flaps open, and dispatch routes
  # around it; retries use deterministic decorrelated jitter.
  # shellcheck disable=SC2086
  "$BUILD_DIR/iddqsyn_cluster" --listen 127.0.0.1:0 $BACKENDS \
    --heartbeat-ms 100 --retry 5 --backoff-ms 50 \
    2> "$BUILD_DIR/chaos_front.err" &
  CLUSTER_PID=$!
  CPORT=""
  j=0
  while [ $j -lt 100 ]; do
    CPORT=$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' \
              "$BUILD_DIR/chaos_front.err")
    [ -n "$CPORT" ] && break
    sleep 0.1
    j=$((j + 1))
  done
  [ -n "$CPORT" ] || { echo "chaos: front-end never reported its port"; exit 1; }

  # The surviving rows must be byte-identical to the direct engine even
  # though backend 1 keeps dying and backend 2 keeps stalling.
  # shellcheck disable=SC2086
  IDDQ_THREADS=2 timeout 600 "$BUILD_DIR/iddqsyn" \
    --submit "127.0.0.1:$CPORT" --method "$METHODS" --seed 42 $SWEEP \
    > "$BUILD_DIR/chaos_rows_raw.txt"
  sort "$BUILD_DIR/chaos_rows_raw.txt" > "$BUILD_DIR/chaos_rows.txt"
  diff -u "$BUILD_DIR/chaos_golden.txt" "$BUILD_DIR/chaos_rows.txt"

  # A 1ms deadline must expire: the client exits 2 with a timeout error
  # and the backend books it as failed/"reason":"timeout" — a normal
  # terminal, never failed over.
  RC=0
  timeout 600 "$BUILD_DIR/iddqsyn" --submit "127.0.0.1:$CPORT" \
    --deadline-ms 1 --method evolution --seed 777 c2670 \
    > "$BUILD_DIR/chaos_deadline_out.txt" \
    2> "$BUILD_DIR/chaos_deadline_err.txt" || RC=$?
  [ "$RC" -eq 2 ] || {
    echo "chaos: deadline client exited $RC, want 2"
    cat "$BUILD_DIR/chaos_deadline_err.txt"
    exit 1
  }
  grep -q "timeout" "$BUILD_DIR/chaos_deadline_err.txt"

  # The books must balance: aggregated across the ring, every submitted
  # job reached a terminal (completed + failed + cancelled == submitted)
  # and at least one of them timed out. Cancels are cooperative, so poll.
  timeout 120 python3 - "$CPORT" <<'PYEOF'
import json, socket, sys, time

port = int(sys.argv[1])
deadline = time.time() + 90
last = None
while time.time() < deadline:
    stats = None
    try:
        with socket.create_connection(("127.0.0.1", port), timeout=10) as s:
            f = s.makefile("rw", encoding="utf-8", newline="\n")
            f.write(json.dumps({"op": "stats"}) + "\n")
            f.flush()
            for line in f:
                ev = json.loads(line)
                if ev.get("event") == "stats":
                    stats = ev
                    break
    except OSError:
        stats = None
    if stats is not None:
        last = stats
        balanced = (
            stats["submitted"]
            == stats["completed"] + stats["failed"] + stats["cancelled"]
        )
        if balanced and stats["submitted"] > 0 and stats.get("timeouts", 0) >= 1:
            print("chaos stats OK: " + json.dumps(last))
            sys.exit(0)
    time.sleep(1)
print("chaos: stats never balanced: " + json.dumps(last), file=sys.stderr)
sys.exit(1)
PYEOF

  # Graceful drain: SIGTERM a standalone server mid-sweep. It must stop
  # accepting, finish or cancel in-flight work within --drain-timeout-ms,
  # say goodbye to its session, and exit on its own.
  "$BUILD_DIR/iddqsyn_server" --listen 127.0.0.1:0 --workers 2 \
    --threads 2 --drain-timeout-ms 2000 2> "$BUILD_DIR/chaos_drain.err" &
  DRAIN_PID=$!
  DPORT=""
  j=0
  while [ $j -lt 100 ]; do
    DPORT=$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' \
              "$BUILD_DIR/chaos_drain.err")
    [ -n "$DPORT" ] && break
    sleep 0.1
    j=$((j + 1))
  done
  [ -n "$DPORT" ] || { echo "chaos: drain server never reported its port"; exit 1; }
  timeout 600 "$BUILD_DIR/iddqsyn" --submit "127.0.0.1:$DPORT" \
    --method "$METHODS" --seed 999 c1908 c2670 ila24x6 \
    > "$BUILD_DIR/chaos_drain_client.txt" 2>&1 &
  DRAIN_CLIENT=$!
  sleep 1
  kill -TERM "$DRAIN_PID"
  j=0
  while kill -0 "$DRAIN_PID" 2>/dev/null; do
    if [ $j -ge 300 ]; then
      echo "chaos: drained server never exited"
      exit 1
    fi
    sleep 0.1
    j=$((j + 1))
  done
  wait "$DRAIN_PID" 2>/dev/null || true
  wait "$DRAIN_CLIENT" 2>/dev/null || true
  grep -q "drained" "$BUILD_DIR/chaos_drain.err"

  kill $PIDS $CLUSTER_PID 2>/dev/null || true
  trap - EXIT INT TERM
  echo "chaos OK"
  exit 0
fi

if [ "$MODE" = "tsan" ]; then
  BUILD_DIR="${1:-build-tsan}"
  cmake -B "$BUILD_DIR" -S "$ROOT" -DIDDQ_BUILD_BENCHES=OFF \
    -DIDDQ_BUILD_EXAMPLES=OFF \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-omit-frame-pointer" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread"
  cmake --build "$BUILD_DIR" -j "$JOBS" \
    --target iddq_tests_support iddq_tests_core
  # The parallelism surface: executor pool, TCP transport, the parallel
  # optimizers and their invariance pins, the job queue/service/protocol
  # stack, and the per-session event writer + fault-injection layer.
  IDDQ_THREADS=2 "$BUILD_DIR/iddq_tests_support" \
    --gtest_filter='Executor.*:Transport.*'
  IDDQ_THREADS=2 "$BUILD_DIR/iddq_tests_core" \
    --gtest_filter='ParallelInvariance.*:Evolution.*:Tabu.*:Portfolio.*:JobQueue.*:JobService.*:JobProtocol.*:EventWriter.*:FaultInjection.*'
  echo "tsan OK"
  exit 0
fi

BUILD_DIR="${1:-build-ci}"
cmake -B "$BUILD_DIR" -S "$ROOT" -DIDDQ_WERROR=ON
cmake --build "$BUILD_DIR" -j "$JOBS"
if [ "$MODE" = "threads" ]; then
  IDDQ_THREADS=2 ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"
else
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"
fi
