#!/usr/bin/env sh
# Checks that docs/methods.md and the optimizer registry cannot drift:
#  * every name printed by `iddqsyn --list-methods` has a `## `name``
#    section in docs/methods.md;
#  * every `## `name`` section (except the `portfolio:` spec family)
#    names a registered optimizer;
#  * every coverage flag the CLI's --help advertises is documented in
#    docs/coverage.md (same drift guard, different page).
#
#   $ tools/check_docs.sh path/to/iddqsyn
set -eu

exe="$1"
docs="$(dirname "$0")/../docs/methods.md"
[ -f "$docs" ] || { echo "check_docs: $docs not found"; exit 1; }

names="$("$exe" --list-methods | sed -n 's/^registered optimizers: *//p')"
[ -n "$names" ] || { echo "check_docs: --list-methods printed no names"; exit 1; }

status=0
for name in $names; do
  if ! grep -q "^## \`$name\`" "$docs"; then
    echo "check_docs: docs/methods.md is missing a section for '$name'"
    status=1
  fi
done

for doc in $(sed -n 's/^## `\([a-z:+]*\)`.*/\1/p' "$docs"); do
  case "$doc" in
    portfolio:*|portfolio:) continue ;;  # spec family, not a registry name
  esac
  if ! printf '%s\n' $names | grep -qx "$doc"; then
    echo "check_docs: docs/methods.md documents '$doc', which is not registered"
    status=1
  fi
done

coverage_docs="$(dirname "$0")/../docs/coverage.md"
[ -f "$coverage_docs" ] || {
  echo "check_docs: $coverage_docs not found"; exit 1; }
for flag in --coverage --fault-model --patterns --minimize-patterns \
    --cache-resident; do
  if ! grep -q -e "$flag" "$coverage_docs" \
      && ! grep -q -e "$flag" "$(dirname "$0")/../docs/caching.md"; then
    echo "check_docs: '$flag' is undocumented (docs/coverage.md, docs/caching.md)"
    status=1
  fi
done

# The server's transport + traffic-hardening surface must be documented
# in docs/server.md (and surfaced in the README flag table).
server_docs="$(dirname "$0")/../docs/server.md"
readme="$(dirname "$0")/../README.md"
[ -f "$server_docs" ] || {
  echo "check_docs: $server_docs not found"; exit 1; }
for flag in --listen --submit --session-queue --max-jobs-per-session \
    --cache-idle-evict; do
  if ! grep -q -e "$flag" "$server_docs"; then
    echo "check_docs: '$flag' is undocumented in docs/server.md"
    status=1
  fi
  if ! grep -q -e "$flag" "$readme"; then
    echo "check_docs: '$flag' is missing from the README flag table"
    status=1
  fi
done

# The Pareto reporting mode lives with the coverage docs it depends on.
for flag in --pareto; do
  if ! grep -q -e "$flag" "$coverage_docs"; then
    echo "check_docs: '$flag' is undocumented in docs/coverage.md"
    status=1
  fi
  if ! grep -q -e "$flag" "$readme"; then
    echo "check_docs: '$flag' is missing from the README flag table"
    status=1
  fi
done

# The bench tiers (bench_table1_main --tier/--only) must be documented
# in the README's bench section and docs/architecture.md's big-circuit
# scaling section.
arch_docs="$(dirname "$0")/../docs/architecture.md"
[ -f "$arch_docs" ] || {
  echo "check_docs: $arch_docs not found"; exit 1; }
for flag in --tier --only; do
  if ! grep -q -e "$flag" "$readme"; then
    echo "check_docs: '$flag' is missing from the README bench section"
    status=1
  fi
done
if ! grep -q -e "--tier big" "$arch_docs"; then
  echo "check_docs: '--tier big' is undocumented in docs/architecture.md"
  status=1
fi

# The cluster front-end's routing/failover knobs must be documented in
# docs/cluster.md (and surfaced in the README flag table).
cluster_docs="$(dirname "$0")/../docs/cluster.md"
[ -f "$cluster_docs" ] || {
  echo "check_docs: $cluster_docs not found"; exit 1; }
for flag in --backend --replicas --retry --backoff-ms; do
  if ! grep -q -e "$flag" "$cluster_docs"; then
    echo "check_docs: '$flag' is undocumented in docs/cluster.md"
    status=1
  fi
  if ! grep -q -e "$flag" "$readme"; then
    echo "check_docs: '$flag' is missing from the README flag table"
    status=1
  fi
done

# The robustness surface (deadlines, breaker, drain) must be documented
# in docs/robustness.md, cross-linked from its home page, and surfaced
# in the README flag table.
robustness_docs="$(dirname "$0")/../docs/robustness.md"
[ -f "$robustness_docs" ] || {
  echo "check_docs: $robustness_docs not found"; exit 1; }
for flag in --job-timeout-ms --drain-timeout-ms --heartbeat-ms \
    --breaker-threshold --breaker-cooldown-ms; do
  if ! grep -q -e "$flag" "$robustness_docs"; then
    echo "check_docs: '$flag' is undocumented in docs/robustness.md"
    status=1
  fi
  if ! grep -q -e "$flag" "$readme"; then
    echo "check_docs: '$flag' is missing from the README flag table"
    status=1
  fi
done
for flag in --job-timeout-ms --drain-timeout-ms; do
  if ! grep -q -e "$flag" "$server_docs"; then
    echo "check_docs: '$flag' is undocumented in docs/server.md"
    status=1
  fi
done
for flag in --heartbeat-ms --breaker-threshold --breaker-cooldown-ms; do
  if ! grep -q -e "$flag" "$cluster_docs"; then
    echo "check_docs: '$flag' is undocumented in docs/cluster.md"
    status=1
  fi
done
if ! grep -q "IDDQ_FAULT_PLAN" "$robustness_docs"; then
  echo "check_docs: IDDQ_FAULT_PLAN grammar is missing from docs/robustness.md"
  status=1
fi

[ "$status" -eq 0 ] && echo "check_docs: docs match the CLI surface"
exit $status
