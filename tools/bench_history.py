#!/usr/bin/env python3
"""Walk git history, rebuild bench_table1 at each commit, collect timings.

    tools/bench_history.py [--max-commits N] [--csv FILE] [--json FILE]
                           [--rev-range RANGE] [--build-root DIR]

For each commit on the current branch (newest first, bounded by
--max-commits, default 8), the script:

  1. creates a detached `git worktree` of that commit under --build-root
     (default: a temp directory; removed afterwards),
  2. configures and builds ONLY the bench_table1_main target there
     (benches on, tests/examples off, so old commits build fast),
  3. runs the FAST sweep (IDDQSYN_BENCH_FAST=1) with --json and collects
     `total_seconds` plus the row count,
  4. emits one record per commit as JSON (default: stdout) and/or CSV.

Commits that predate the bench target, fail to build, or fail to run are
reported with `"status": "skipped"` and a one-line reason — a history walk
must tolerate the repo's own past. Wall clocks from one host ARE
comparable across commits (same machine, same flags), which is the point:
this is the perf-trajectory companion to tools/bench_compare.py's
row-identity gate.

Exit code 0 when at least one commit produced a timing; 1 otherwise;
2 on usage errors.
"""

import argparse
import json
import os
import shutil
import subprocess
import sys
import tempfile

BENCH_TARGET = "bench_table1_main"


def run(cmd, **kwargs):
    return subprocess.run(
        cmd, capture_output=True, text=True, check=False, **kwargs
    )


def git(repo, *args):
    return run(["git", "-C", repo] + list(args))


def list_commits(repo, rev_range, max_commits):
    proc = git(repo, "rev-list", "--first-parent", rev_range)
    if proc.returncode != 0:
        print(
            f"bench_history: git rev-list failed: {proc.stderr.strip()}",
            file=sys.stderr,
        )
        sys.exit(2)
    commits = proc.stdout.split()
    return commits[:max_commits]


def commit_meta(repo, sha):
    proc = git(repo, "show", "-s", "--format=%h\x1f%cI\x1f%s", sha)
    short, date, subject = proc.stdout.strip().split("\x1f", 2)
    return {"commit": short, "date": date, "subject": subject}


def bench_one(repo, sha, build_root, jobs):
    """Returns (record, reason); reason is None on success."""
    worktree = os.path.join(build_root, f"wt_{sha[:12]}")
    build_dir = os.path.join(build_root, f"build_{sha[:12]}")
    try:
        proc = git(repo, "worktree", "add", "--detach", worktree, sha)
        if proc.returncode != 0:
            return None, f"worktree add failed: {proc.stderr.strip()}"

        proc = run(
            [
                "cmake", "-B", build_dir, "-S", worktree,
                "-DIDDQ_BUILD_TESTS=OFF", "-DIDDQ_BUILD_EXAMPLES=OFF",
                "-DIDDQ_BUILD_BENCHES=ON",
            ]
        )
        if proc.returncode != 0:
            return None, "cmake configure failed"

        proc = run(
            ["cmake", "--build", build_dir, "-j", str(jobs), "--target",
             BENCH_TARGET]
        )
        if proc.returncode != 0:
            return None, f"no buildable {BENCH_TARGET} at this commit"

        bench = os.path.join(build_dir, BENCH_TARGET)
        json_path = os.path.join(build_dir, "bench_history_row.json")
        env = dict(os.environ, IDDQSYN_BENCH_FAST="1")
        proc = run([bench, "--json", json_path], env=env)
        if proc.returncode != 0:
            return None, f"bench run failed: {proc.stderr.strip()[:200]}"

        try:
            with open(json_path, "r", encoding="utf-8") as handle:
                doc = json.load(handle)
        except (OSError, json.JSONDecodeError) as err:
            return None, f"unreadable bench json: {err}"
        return {
            "total_seconds": doc.get("total_seconds"),
            "rows": len(doc.get("rows", [])),
            "fast": doc.get("fast"),
            "threads": doc.get("threads"),
        }, None
    finally:
        git(repo, "worktree", "remove", "--force", worktree)
        shutil.rmtree(build_dir, ignore_errors=True)


def main():
    parser = argparse.ArgumentParser(
        description="Per-commit bench_table1 total_seconds history."
    )
    parser.add_argument("--max-commits", type=int, default=8, metavar="N")
    parser.add_argument("--rev-range", default="HEAD", metavar="RANGE",
                        help="rev-list range to walk (default: HEAD)")
    parser.add_argument("--csv", metavar="FILE",
                        help="also write records as CSV")
    parser.add_argument("--json", metavar="FILE",
                        help="write records as JSON here instead of stdout")
    parser.add_argument("--build-root", metavar="DIR",
                        help="keep worktrees/builds under DIR "
                        "(default: temp dir, removed afterwards)")
    parser.add_argument("--jobs", type=int,
                        default=os.cpu_count() or 2, metavar="N")
    args = parser.parse_args()
    if args.max_commits < 1:
        print("bench_history: --max-commits must be >= 1", file=sys.stderr)
        return 2

    repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    commits = list_commits(repo, args.rev_range, args.max_commits)

    own_root = args.build_root is None
    build_root = args.build_root or tempfile.mkdtemp(prefix="bench_history_")
    os.makedirs(build_root, exist_ok=True)

    records = []
    try:
        for sha in commits:
            record = commit_meta(repo, sha)
            print(
                f"bench_history: {record['commit']} {record['subject'][:60]}",
                file=sys.stderr,
            )
            timing, reason = bench_one(repo, sha, build_root, args.jobs)
            if timing is None:
                record.update({"status": "skipped", "reason": reason})
                print(f"  skipped: {reason}", file=sys.stderr)
            else:
                record.update({"status": "ok", **timing})
                print(
                    f"  total_seconds={timing['total_seconds']:.3f} "
                    f"rows={timing['rows']}",
                    file=sys.stderr,
                )
            records.append(record)
    finally:
        if own_root:
            shutil.rmtree(build_root, ignore_errors=True)

    doc = json.dumps(records, indent=2)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(doc + "\n")
    else:
        print(doc)
    if args.csv:
        import csv

        fields = ["commit", "date", "subject", "status", "reason",
                  "total_seconds", "rows", "fast", "threads"]
        with open(args.csv, "w", encoding="utf-8", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=fields,
                                    extrasaction="ignore")
            writer.writeheader()
            for record in records:
                writer.writerow(record)

    return 0 if any(r["status"] == "ok" for r in records) else 1


if __name__ == "__main__":
    sys.exit(main())
