#!/usr/bin/env python3
"""Walk git history, rebuild bench_table1 at each commit, collect timings.

    tools/bench_history.py [--max-commits N] [--csv FILE] [--json FILE]
                           [--rev-range RANGE] [--build-root DIR]
                           [--plot FILE.svg] [--from-json FILE]
                           [--tier table1|big]

For each commit on the current branch (newest first, bounded by
--max-commits, default 8), the script:

  1. creates a detached `git worktree` of that commit under --build-root
     (default: a temp directory; removed afterwards),
  2. configures and builds ONLY the bench_table1_main target there
     (benches on, tests/examples off, so old commits build fast),
  3. runs the FAST sweep (IDDQSYN_BENCH_FAST=1) with --json and collects
     `total_seconds` plus the row count — `--tier big` records the
     BIG-ladder sweep instead (the flag is only passed to the bench for
     non-default tiers, so table1 walks still reach commits that predate
     `--tier`; commits without BIG support report as skipped),
  4. emits one record per commit as JSON (default: stdout) and/or CSV.

Commits that predate the bench target, fail to build, or fail to run are
reported with `"status": "skipped"` and a one-line reason — a history walk
must tolerate the repo's own past. Wall clocks from one host ARE
comparable across commits (same machine, same flags), which is the point:
this is the perf-trajectory companion to tools/bench_compare.py's
row-identity gate.

`--plot FILE.svg` renders the per-commit total_seconds trajectory as a
standalone SVG line chart (stdlib only — no matplotlib in the container).
`--from-json FILE` skips the history walk and plots/re-emits records
collected by an earlier run, so plotting needs no rebuilds.

Exit code 0 when at least one commit produced a timing; 1 otherwise;
2 on usage errors.
"""

import argparse
import json
import os
import shutil
import subprocess
import sys
import tempfile

BENCH_TARGET = "bench_table1_main"


def run(cmd, **kwargs):
    return subprocess.run(
        cmd, capture_output=True, text=True, check=False, **kwargs
    )


def git(repo, *args):
    return run(["git", "-C", repo] + list(args))


def list_commits(repo, rev_range, max_commits):
    proc = git(repo, "rev-list", "--first-parent", rev_range)
    if proc.returncode != 0:
        print(
            f"bench_history: git rev-list failed: {proc.stderr.strip()}",
            file=sys.stderr,
        )
        sys.exit(2)
    commits = proc.stdout.split()
    return commits[:max_commits]


def commit_meta(repo, sha):
    proc = git(repo, "show", "-s", "--format=%h\x1f%cI\x1f%s", sha)
    short, date, subject = proc.stdout.strip().split("\x1f", 2)
    return {"commit": short, "date": date, "subject": subject}


def bench_one(repo, sha, build_root, jobs, tier):
    """Returns (record, reason); reason is None on success."""
    worktree = os.path.join(build_root, f"wt_{sha[:12]}")
    build_dir = os.path.join(build_root, f"build_{sha[:12]}")
    try:
        proc = git(repo, "worktree", "add", "--detach", worktree, sha)
        if proc.returncode != 0:
            return None, f"worktree add failed: {proc.stderr.strip()}"

        proc = run(
            [
                "cmake", "-B", build_dir, "-S", worktree,
                "-DIDDQ_BUILD_TESTS=OFF", "-DIDDQ_BUILD_EXAMPLES=OFF",
                "-DIDDQ_BUILD_BENCHES=ON",
            ]
        )
        if proc.returncode != 0:
            return None, "cmake configure failed"

        proc = run(
            ["cmake", "--build", build_dir, "-j", str(jobs), "--target",
             BENCH_TARGET]
        )
        if proc.returncode != 0:
            return None, f"no buildable {BENCH_TARGET} at this commit"

        bench = os.path.join(build_dir, BENCH_TARGET)
        json_path = os.path.join(build_dir, "bench_history_row.json")
        env = dict(os.environ, IDDQSYN_BENCH_FAST="1")
        cmd = [bench, "--json", json_path]
        if tier != "table1":
            cmd += ["--tier", tier]
        proc = run(cmd, env=env)
        if proc.returncode != 0:
            return None, f"bench run failed: {proc.stderr.strip()[:200]}"

        try:
            with open(json_path, "r", encoding="utf-8") as handle:
                doc = json.load(handle)
        except (OSError, json.JSONDecodeError) as err:
            return None, f"unreadable bench json: {err}"
        return {
            "total_seconds": doc.get("total_seconds"),
            "rows": len(doc.get("rows", [])),
            "fast": doc.get("fast"),
            "tier": doc.get("tier", "table1"),
            "threads": doc.get("threads"),
        }, None
    finally:
        git(repo, "worktree", "remove", "--force", worktree)
        shutil.rmtree(build_dir, ignore_errors=True)


def plot_svg(records, path):
    """Writes a standalone SVG line chart of total_seconds per commit.

    Records come newest-first (rev-list order); the chart plots
    oldest-left. Skipped commits are left out of the line but keep their
    slot on the x axis, so gaps in history stay visible.
    """
    width, height = 800, 360
    margin_left, margin_right, margin_top, margin_bottom = 70, 20, 40, 70
    plot_w = width - margin_left - margin_right
    plot_h = height - margin_top - margin_bottom

    ordered = list(reversed(records))
    timed = [r for r in ordered if r.get("status") == "ok"
             and isinstance(r.get("total_seconds"), (int, float))]
    y_max = max((r["total_seconds"] for r in timed), default=1.0)
    y_max = y_max * 1.1 or 1.0  # headroom; avoid a zero-height scale
    slots = max(len(ordered), 1)

    def x_of(index):
        if slots == 1:
            return margin_left + plot_w / 2.0
        return margin_left + plot_w * index / (slots - 1)

    def y_of(seconds):
        return margin_top + plot_h * (1.0 - seconds / y_max)

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">',
        '<style>text{font:12px sans-serif;fill:#333}'
        '.axis{stroke:#888;stroke-width:1}'
        '.grid{stroke:#ddd;stroke-width:1}'
        '.line{stroke:#1f77b4;stroke-width:2;fill:none}'
        '.pt{fill:#1f77b4}</style>',
        f'<text x="{width / 2:.0f}" y="20" text-anchor="middle">'
        'bench_table1 total_seconds per commit</text>',
        f'<line class="axis" x1="{margin_left}" y1="{margin_top}" '
        f'x2="{margin_left}" y2="{margin_top + plot_h}"/>',
        f'<line class="axis" x1="{margin_left}" y1="{margin_top + plot_h}" '
        f'x2="{margin_left + plot_w}" y2="{margin_top + plot_h}"/>',
    ]
    for tick in range(5):
        seconds = y_max * tick / 4.0
        y = y_of(seconds)
        parts.append(
            f'<line class="grid" x1="{margin_left}" y1="{y:.1f}" '
            f'x2="{margin_left + plot_w}" y2="{y:.1f}"/>'
        )
        parts.append(
            f'<text x="{margin_left - 8}" y="{y + 4:.1f}" '
            f'text-anchor="end">{seconds:.1f}s</text>'
        )

    points = []
    for index, record in enumerate(ordered):
        if record.get("status") != "ok":
            continue
        seconds = record.get("total_seconds")
        if not isinstance(seconds, (int, float)):
            continue
        points.append((x_of(index), y_of(seconds), record, seconds))
    if points:
        coords = " ".join(f"{x:.1f},{y:.1f}" for x, y, _, _ in points)
        parts.append(f'<polyline class="line" points="{coords}"/>')
    for x, y, record, seconds in points:
        parts.append(f'<circle class="pt" cx="{x:.1f}" cy="{y:.1f}" r="3">'
                     f"<title>{record['commit']}: {seconds:.3f}s</title>"
                     "</circle>")
    for index, record in enumerate(ordered):
        x = x_of(index)
        y = margin_top + plot_h + 14
        parts.append(
            f'<text x="{x:.1f}" y="{y}" text-anchor="middle" '
            f'transform="rotate(45 {x:.1f} {y})">{record["commit"]}</text>'
        )
    parts.append("</svg>")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("\n".join(parts) + "\n")


def main():
    parser = argparse.ArgumentParser(
        description="Per-commit bench_table1 total_seconds history."
    )
    parser.add_argument("--max-commits", type=int, default=8, metavar="N")
    parser.add_argument("--rev-range", default="HEAD", metavar="RANGE",
                        help="rev-list range to walk (default: HEAD)")
    parser.add_argument("--csv", metavar="FILE",
                        help="also write records as CSV")
    parser.add_argument("--json", metavar="FILE",
                        help="write records as JSON here instead of stdout")
    parser.add_argument("--build-root", metavar="DIR",
                        help="keep worktrees/builds under DIR "
                        "(default: temp dir, removed afterwards)")
    parser.add_argument("--jobs", type=int,
                        default=os.cpu_count() or 2, metavar="N")
    parser.add_argument("--plot", metavar="FILE.svg",
                        help="render total_seconds per commit as an SVG "
                        "line chart (stdlib only)")
    parser.add_argument("--from-json", metavar="FILE",
                        help="plot/re-emit records from an earlier run's "
                        "--json output instead of walking history")
    parser.add_argument("--tier", choices=["table1", "big"],
                        default="table1",
                        help="bench tier to sweep at each commit "
                        "(default: table1; 'big' runs the 10k-100k-gate "
                        "ladder and is skipped by commits that predate it)")
    args = parser.parse_args()
    if args.max_commits < 1:
        print("bench_history: --max-commits must be >= 1", file=sys.stderr)
        return 2

    if args.from_json:
        try:
            with open(args.from_json, "r", encoding="utf-8") as handle:
                records = json.load(handle)
        except (OSError, json.JSONDecodeError) as err:
            print(f"bench_history: unreadable --from-json: {err}",
                  file=sys.stderr)
            return 2
        if not isinstance(records, list):
            print("bench_history: --from-json must hold a record array",
                  file=sys.stderr)
            return 2
    else:
        repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        commits = list_commits(repo, args.rev_range, args.max_commits)

        own_root = args.build_root is None
        build_root = (args.build_root
                      or tempfile.mkdtemp(prefix="bench_history_"))
        os.makedirs(build_root, exist_ok=True)

        records = []
        try:
            for sha in commits:
                record = commit_meta(repo, sha)
                print(
                    f"bench_history: {record['commit']} "
                    f"{record['subject'][:60]}",
                    file=sys.stderr,
                )
                timing, reason = bench_one(repo, sha, build_root,
                                           args.jobs, args.tier)
                if timing is None:
                    record.update({"status": "skipped", "reason": reason})
                    print(f"  skipped: {reason}", file=sys.stderr)
                else:
                    record.update({"status": "ok", **timing})
                    print(
                        f"  total_seconds={timing['total_seconds']:.3f} "
                        f"rows={timing['rows']}",
                        file=sys.stderr,
                    )
                records.append(record)
        finally:
            if own_root:
                shutil.rmtree(build_root, ignore_errors=True)

    if args.plot:
        plot_svg(records, args.plot)
        print(f"bench_history: plot written to {args.plot}",
              file=sys.stderr)

    doc = json.dumps(records, indent=2)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(doc + "\n")
    else:
        print(doc)
    if args.csv:
        import csv

        fields = ["commit", "date", "subject", "status", "reason",
                  "total_seconds", "rows", "fast", "tier", "threads"]
        with open(args.csv, "w", encoding="utf-8", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=fields,
                                    extrasaction="ignore")
            writer.writeheader()
            for record in records:
                writer.writerow(record)

    return 0 if any(r["status"] == "ok" for r in records) else 1


if __name__ == "__main__":
    sys.exit(main())
