// iddqsyn — command-line driver for the BIC-sensor partitioning flow.
//
// Usage:
//   iddqsyn [options] <circuit> [<circuit> ...]
//
//   <circuit>             path to an ISCAS85 .bench file, or one of the
//                         built-in generators: c17, c1908, c2670, c3540,
//                         c5315, c6288, c7552, or a parametric family: an
//                         AND-EXOR iterative logic array ila<R>x<C> (2..256
//                         rows, 1..256 columns, e.g. ila8x8), a layered
//                         random DAG big_dag<N>k (1..128 thousand gates,
//                         e.g. big_dag10k), or an array multiplier mult<N>
//                         (width 2..64, e.g. mult64)
//
// Options:
//   --method NAMES        comma-separated optimizer specs from the registry
//                         (default: evolution,standard). Specs may compose
//                         stages with '+', e.g. evolution+greedy, or race a
//                         list on a shared budget with portfolio:, e.g.
//                         portfolio:evolution,annealing. Because portfolio
//                         specs contain commas, use ';' to separate methods
//                         when mixing them: --method "evolution;portfolio:
//                         evolution,annealing".
//   --jobs N              run circuits on N worker threads (default 1);
//                         results are identical for any N
//   --threads N           intra-run parallelism (default 1, or the
//                         IDDQ_THREADS environment variable): evaluate ES
//                         descendants and tabu candidate sets, and race
//                         portfolio members, on a shared N-thread pool;
//                         results are byte-identical for any N
//   --cache-dir DIR       content-addressed result cache: look up every
//                         (circuit, method, seed, budget) point in DIR
//                         before running it and store new results there
//                         (see docs/caching.md); prints hit/miss stats to
//                         stderr at the end (including corrupt-line counts
//                         when the cache file has degraded)
//   --no-cache            disable the cache even when --cache-dir is given
//   --cache-stats DIR     inspect DIR/results.jsonl (entries, duplicate
//                         keys, corrupt lines, hit-age histogram) and exit.
//                         With --submit ENDPOINT the DIR is ignored (pass
//                         "-"): the cache counters of the remote server —
//                         or the aggregate of an iddqsyn_cluster front-end
//                         — are fetched over the protocol's stats op
//   --cache-compact DIR   rewrite DIR/results.jsonl keeping only the last
//                         row per key, and exit
//   --pareto              after the summary rows, print each circuit's
//                         Pareto frontier over (relative sensor-area
//                         overhead, measured fault coverage) across the
//                         requested methods; needs --coverage
//                         (docs/coverage.md)
//   --submit ENDPOINT     client mode: send the job to an iddqsyn_server
//                         instead of running locally; ENDPOINT is a unix
//                         socket path, or host:port for a --listen TCP
//                         server (anything whose last ':'-suffix is a
//                         valid port parses as TCP). Rows stream back as
//                         they complete (docs/server.md)
//   --stall-ms N          (--submit only) sleep N ms after submitting
//                         before reading any events — a deliberately slow
//                         reader for backpressure tests and the stress
//                         harness (tools/ci.sh stress)
//   --progress            stream optimizer progress to stderr (live per-
//                         generation/per-step ticks)
//   --list-methods        print the registered optimizer names and exit
//   -o FILE               write the first method's partition to FILE
//                         (single-circuit runs only)
//   --lib FILE            load a cell library (default: built-in 5V CMOS)
//   --rail MV             virtual-rail perturbation limit r (default 200)
//   --disc D              required discriminability d (default 10)
//   --seed N              base seed (default 42); per-circuit/method seeds
//                         are derived deterministically from it
//   --generations N       ES generation cap (default 350, must be >= 1)
//   --retime              run partition-aware wave retiming afterwards
//                         (single-circuit runs only)
//   --quiet               only print the summary rows
//   --help                this text
//
// One summary row is printed per (circuit, method) pair, in argument order.
// Exit code 0 on success, 1 on bad usage, 2 on flow errors.
#include <chrono>
#include <fstream>
#include <iostream>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/batch_runner.hpp"
#include "core/flow_engine.hpp"
#include "core/result_cache.hpp"
#include "core/resynth.hpp"
#include "library/cell_library.hpp"
#include "library/lib_io.hpp"
#include "netlist/circuit_loader.hpp"
#include "netlist/stats.hpp"
#include "partition/partition_io.hpp"
#include "report/pareto.hpp"
#include "report/table.hpp"
#include "sim/coverage.hpp"
#include "support/error.hpp"
#include "support/executor.hpp"
#include "support/json.hpp"
#include "support/rng.hpp"
#include "support/strings.hpp"
#include "support/transport.hpp"

namespace {

using namespace iddq;

struct CliOptions {
  std::vector<std::string> circuits;
  std::vector<std::string> methods{"evolution", "standard"};
  std::size_t jobs = 1;
  std::size_t threads = 0;  // 0 = IDDQ_THREADS default (1 when unset)
  std::optional<std::string> cache_dir;
  bool no_cache = false;
  std::size_t cache_resident = 0;  // 0 = unbounded residency
  std::optional<std::string> cache_stats_dir;
  std::optional<std::string> cache_compact_dir;
  bool coverage = false;
  std::string fault_model = "mixed";
  std::size_t patterns = 256;
  bool minimize_patterns = false;
  bool pareto = false;
  std::optional<std::string> submit_socket;
  std::size_t stall_ms = 0;  // test hook: delay before draining events
  std::size_t deadline_ms = 0;  // per-job deadline shipped with the submit
  bool progress = false;
  std::optional<std::string> output_path;
  std::optional<std::string> lib_path;
  double rail_mv = 200.0;
  double disc = 10.0;
  std::uint64_t seed = 42;
  std::size_t generations = 350;
  bool retime = false;
  bool quiet = false;
};

void print_usage(std::ostream& os) {
  os << "usage: iddqsyn [options] <circuit.bench | c17 | c1908 | c2670 | "
        "c3540 | c5315 | c6288 | c7552 | ila<R>x<C> | big_dag<N>k | "
        "mult<N>> [<circuit> ...]\n"
        "  --method NAMES   comma-separated optimizer specs "
        "(default: evolution,standard)\n"
        "  --jobs N         worker threads over circuits (default 1)\n"
        "  --threads N      intra-run thread pool (default 1 or "
        "IDDQ_THREADS; identical results for any N)\n"
        "  --cache-dir DIR  content-addressed result cache (docs/caching.md)\n"
        "  --no-cache       disable the cache even with --cache-dir\n"
        "  --cache-resident N   cap in-memory cache entries (LRU eviction "
        "to disk; default 0 = unbounded)\n"
        "  --cache-stats DIR    inspect DIR/results.jsonl and exit\n"
        "  --cache-compact DIR  drop shadowed cache rows and exit\n"
        "  --coverage       grade each row's partition by measured IDDQ "
        "fault coverage (docs/coverage.md)\n"
        "  --fault-model M  coverage fault model: mixed | bridges | shorts "
        "| bridges=N[,shorts=M] (default mixed)\n"
        "  --patterns N     coverage test patterns (default 256)\n"
        "  --minimize-patterns  greedy set-cover pattern minimization\n"
        "  --pareto         print each circuit's (area overhead, fault "
        "coverage) Pareto frontier; needs --coverage\n"
        "  --submit ENDPOINT  send the job to an iddqsyn_server (unix "
        "socket path, or host:port for TCP)\n"
        "  --stall-ms N     (--submit only) sleep N ms before reading "
        "events — a deliberately slow reader for stress tests\n"
        "  --deadline-ms N  (--submit only) per-job deadline: jobs past N "
        "ms of wall clock fail with reason \"timeout\"\n"
        "  --progress       stream optimizer progress to stderr\n"
        "  --list-methods   print registered optimizer names and exit\n"
        "  -o FILE          write the first method's partition to FILE "
        "(one circuit only)\n"
        "  --lib FILE       cell library file (default: built-in 5V CMOS)\n"
        "  --rail MV        rail perturbation limit r in mV (default 200, "
        "> 0)\n"
        "  --disc D         required discriminability d (default 10, > 0)\n"
        "  --seed N         base seed (default 42)\n"
        "  --generations N  ES generation cap (default 350, >= 1)\n"
        "  --retime         partition-aware wave retiming (one circuit "
        "only)\n"
        "  --quiet          summary rows only\n";
}

void print_methods(std::ostream& os) {
  os << "registered optimizers:";
  for (const auto& name : core::OptimizerRegistry::global().names())
    os << ' ' << name;
  os << "\ncompose polish stages with '+', e.g. evolution+greedy\n"
        "race methods on a shared budget with 'portfolio:', e.g. "
        "portfolio:evolution,annealing\n";
}

std::optional<CliOptions> parse(int argc, char** argv) {
  CliOptions opts;
  bool fault_model_set = false;
  bool patterns_set = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto need_value = [&](const char* flag) -> std::optional<std::string> {
      if (i + 1 >= argc) {
        std::cerr << "iddqsyn: " << flag << " needs a value\n";
        return std::nullopt;
      }
      return std::string(argv[++i]);
    };
    if (arg == "--help" || arg == "-h") {
      print_usage(std::cout);
      std::exit(0);
    } else if (arg == "--list-methods") {
      print_methods(std::cout);
      std::exit(0);
    } else if (arg == "--method") {
      const auto v = need_value("--method");
      if (!v) return std::nullopt;
      opts.methods.clear();
      // Portfolio specs contain commas, so ';' separates methods when
      // present; a ';'-free value containing a portfolio is one spec.
      std::vector<std::string_view> pieces;
      if (v->find(';') != std::string::npos)
        pieces = str::split(*v, ';');
      else if (v->find("portfolio:") != std::string::npos)
        pieces.push_back(str::trim(*v));
      else
        pieces = str::split(*v, ',');
      for (const auto piece : pieces)
        if (!piece.empty()) opts.methods.emplace_back(piece);
      if (opts.methods.empty()) {
        std::cerr << "iddqsyn: --method needs at least one name\n";
        return std::nullopt;
      }
    } else if (arg == "--jobs") {
      const auto v = need_value("--jobs");
      if (!v || !str::parse_size(*v, opts.jobs) || opts.jobs == 0) {
        std::cerr << "iddqsyn: --jobs must be a positive integer\n";
        return std::nullopt;
      }
    } else if (arg == "--threads") {
      const auto v = need_value("--threads");
      if (!v || !str::parse_size(*v, opts.threads) || opts.threads == 0) {
        std::cerr << "iddqsyn: --threads must be a positive integer\n";
        return std::nullopt;
      }
    } else if (arg == "--cache-dir") {
      const auto v = need_value("--cache-dir");
      if (!v) return std::nullopt;
      opts.cache_dir = *v;
    } else if (arg == "--no-cache") {
      opts.no_cache = true;
    } else if (arg == "--cache-resident") {
      const auto v = need_value("--cache-resident");
      if (!v || !str::parse_size(*v, opts.cache_resident) ||
          opts.cache_resident == 0) {
        std::cerr << "iddqsyn: --cache-resident must be >= 1\n";
        return std::nullopt;
      }
    } else if (arg == "--coverage") {
      opts.coverage = true;
    } else if (arg == "--fault-model") {
      const auto v = need_value("--fault-model");
      if (!v) return std::nullopt;
      opts.fault_model = *v;
      fault_model_set = true;
    } else if (arg == "--patterns") {
      const auto v = need_value("--patterns");
      if (!v || !str::parse_size(*v, opts.patterns) || opts.patterns == 0) {
        std::cerr << "iddqsyn: --patterns must be >= 1\n";
        return std::nullopt;
      }
      patterns_set = true;
    } else if (arg == "--minimize-patterns") {
      opts.minimize_patterns = true;
    } else if (arg == "--pareto") {
      opts.pareto = true;
    } else if (arg == "--cache-stats") {
      const auto v = need_value("--cache-stats");
      if (!v) return std::nullopt;
      opts.cache_stats_dir = *v;
    } else if (arg == "--cache-compact") {
      const auto v = need_value("--cache-compact");
      if (!v) return std::nullopt;
      opts.cache_compact_dir = *v;
    } else if (arg == "--submit") {
      const auto v = need_value("--submit");
      if (!v) return std::nullopt;
      opts.submit_socket = *v;
    } else if (arg == "--stall-ms") {
      const auto v = need_value("--stall-ms");
      if (!v || !str::parse_size(*v, opts.stall_ms)) {
        std::cerr << "iddqsyn: --stall-ms must be an integer >= 0\n";
        return std::nullopt;
      }
    } else if (arg == "--deadline-ms") {
      const auto v = need_value("--deadline-ms");
      if (!v || !str::parse_size(*v, opts.deadline_ms) ||
          opts.deadline_ms == 0) {
        std::cerr << "iddqsyn: --deadline-ms must be >= 1\n";
        return std::nullopt;
      }
    } else if (arg == "--progress") {
      opts.progress = true;
    } else if (arg == "-o") {
      const auto v = need_value("-o");
      if (!v) return std::nullopt;
      opts.output_path = *v;
    } else if (arg == "--lib") {
      const auto v = need_value("--lib");
      if (!v) return std::nullopt;
      opts.lib_path = *v;
    } else if (arg == "--rail") {
      const auto v = need_value("--rail");
      if (!v || !str::parse_double(*v, opts.rail_mv)) return std::nullopt;
      if (opts.rail_mv <= 0.0) {
        std::cerr << "iddqsyn: --rail must be > 0 mV (got " << *v << ")\n";
        return std::nullopt;
      }
    } else if (arg == "--disc") {
      const auto v = need_value("--disc");
      if (!v || !str::parse_double(*v, opts.disc)) return std::nullopt;
      if (opts.disc <= 0.0) {
        std::cerr << "iddqsyn: --disc must be > 0 (got " << *v << ")\n";
        return std::nullopt;
      }
    } else if (arg == "--seed") {
      const auto v = need_value("--seed");
      std::size_t seed = 0;
      if (!v || !str::parse_size(*v, seed)) return std::nullopt;
      opts.seed = seed;
    } else if (arg == "--generations") {
      const auto v = need_value("--generations");
      if (!v || !str::parse_size(*v, opts.generations) ||
          opts.generations == 0) {
        std::cerr << "iddqsyn: --generations must be >= 1\n";
        return std::nullopt;
      }
    } else if (arg == "--retime") {
      opts.retime = true;
    } else if (arg == "--quiet") {
      opts.quiet = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "iddqsyn: unknown option '" << arg << "'\n";
      return std::nullopt;
    } else {
      opts.circuits.push_back(arg);
    }
  }
  // Cache-maintenance commands run without circuits and skip the rest of
  // the validation. (--cache-stats with --submit inspects a remote
  // server's cache over the protocol instead of a local directory.)
  if (opts.cache_stats_dir || opts.cache_compact_dir) return opts;
  if (opts.circuits.empty()) {
    std::cerr << "iddqsyn: at least one circuit argument expected\n";
    return std::nullopt;
  }
  if (opts.circuits.size() > 1 && (opts.output_path || opts.retime)) {
    std::cerr << "iddqsyn: -o/--retime need exactly one circuit\n";
    return std::nullopt;
  }
  if (opts.submit_socket && (opts.output_path || opts.retime)) {
    std::cerr << "iddqsyn: -o/--retime do not work in --submit mode\n";
    return std::nullopt;
  }
  if (opts.deadline_ms > 0 && !opts.submit_socket) {
    std::cerr << "iddqsyn: --deadline-ms only works in --submit mode\n";
    return std::nullopt;
  }
  if (opts.stall_ms > 0 && !opts.submit_socket) {
    std::cerr << "iddqsyn: --stall-ms only works in --submit mode\n";
    return std::nullopt;
  }
  if (opts.submit_socket && opts.threads > 0) {
    std::cerr << "iddqsyn: --threads has no effect in --submit mode "
                 "(set --threads on the server)\n";
    return std::nullopt;
  }
  if (!opts.coverage &&
      (fault_model_set || patterns_set || opts.minimize_patterns)) {
    std::cerr << "iddqsyn: --fault-model/--patterns/--minimize-patterns "
                 "need --coverage\n";
    return std::nullopt;
  }
  if (opts.submit_socket && opts.coverage) {
    std::cerr << "iddqsyn: --coverage has no effect in --submit mode "
                 "(enable coverage on the server)\n";
    return std::nullopt;
  }
  if (opts.pareto && opts.submit_socket) {
    std::cerr << "iddqsyn: --pareto does not work in --submit mode (run "
                 "it on locally printed rows)\n";
    return std::nullopt;
  }
  if (opts.pareto && !opts.coverage) {
    std::cerr << "iddqsyn: --pareto needs --coverage (the frontier's "
                 "coverage axis comes from fault grading)\n";
    return std::nullopt;
  }
  if (opts.coverage) {
    // Validate the spec grammar up front, like the method specs below.
    try {
      (void)sim::FaultModelSpec::parse(opts.fault_model);
    } catch (const Error& e) {
      std::cerr << "iddqsyn: " << e.what() << "\n";
      return std::nullopt;
    }
  }
  // Validate method specs up front so typos report the registry's names
  // instead of failing mid-batch.
  for (const auto& spec : opts.methods) {
    try {
      (void)core::OptimizerRegistry::global().make(spec);
    } catch (const Error& e) {
      std::cerr << "iddqsyn: " << e.what() << "\n";
      return std::nullopt;
    }
  }
  return opts;
}

void print_method_row(std::ostream& os, const std::string& circuit,
                      const core::MethodResult& r) {
  os << circuit << ": method=" << r.method << " K=" << r.module_count
     << " cost=" << report::format_fixed(r.fitness.cost, 1)
     << " sensor_area=" << report::format_eng(r.sensor_area)
     << " delay_ovh=" << report::format_pct(r.delay_overhead)
     << " test_ovh=" << report::format_pct(r.test_overhead)
     << " evals=" << r.evaluations
     << " feasible=" << (r.fitness.feasible() ? "yes" : "NO");
  if (r.has_coverage)
    os << " cov=" << report::format_pct(r.fault_coverage_pct,
                                        /*already_pct=*/true)
       << " faults=" << r.faults_detected << "/" << r.faults_total
       << " patterns=" << r.patterns_minimized << "/" << r.patterns_used;
  os << "\n";
}

// --pareto: one frontier per circuit over (relative sensor-area overhead,
// measured fault coverage). Overhead is relative to the cheapest graded
// row of the SAME circuit — the frontier compares methods against each
// other, not against an absolute area scale that differs per circuit.
void print_pareto_front(std::ostream& os, const std::string& circuit,
                        const std::vector<core::MethodResult>& rows) {
  std::vector<report::ParetoPoint> points;
  double min_area = 0.0;
  for (const auto& r : rows) {
    if (!r.has_coverage || r.sensor_area <= 0.0) continue;
    if (points.empty() || r.sensor_area < min_area)
      min_area = r.sensor_area;
    points.push_back({r.method, r.sensor_area, r.fault_coverage_pct});
  }
  if (points.empty()) return;
  for (auto& p : points)
    p.area_overhead_pct = (p.area_overhead_pct / min_area - 1.0) * 100.0;
  for (const std::size_t i : report::pareto_front(points)) {
    os << circuit << ": pareto method=" << points[i].label << " area_ovh="
       << report::format_pct(points[i].area_overhead_pct,
                             /*already_pct=*/true)
       << " cov="
       << report::format_pct(points[i].coverage_pct, /*already_pct=*/true)
       << "\n";
  }
}

// Retiming + partition writing only apply to single-circuit runs; they act
// on the first method's partition, matching the historical CLI.
int finish_single_circuit(const CliOptions& opts, const core::BatchItem& item,
                          const lib::CellLibrary& library) {
  if (!opts.output_path && !opts.retime) return 0;  // nothing left to do
  const auto nl = netlist::load_circuit(opts.circuits.front());
  auto partition = item.methods.front().partition;
  const netlist::Netlist* final_nl = &nl;
  netlist::Netlist retimed_nl;  // populated only with --retime
  if (opts.retime) {
    std::vector<std::vector<netlist::GateId>> groups(
        partition.module_count());
    for (std::uint32_t m = 0; m < partition.module_count(); ++m) {
      const auto gates = partition.module(m);
      groups[m].assign(gates.begin(), gates.end());
    }
    auto rt = core::retime_for_iddq_partitioned(nl, library, groups);
    retimed_nl = std::move(rt.netlist);
    partition = part::Partition::from_groups(retimed_nl, rt.groups);
    final_nl = &retimed_nl;
    if (!opts.quiet)
      std::cout << "retiming: " << rt.buffers_added
                << " buffers, sum-of-peaks "
                << report::format_fixed(rt.sum_peak_before_ua / 1000.0, 1)
                << " -> "
                << report::format_fixed(rt.sum_peak_after_ua / 1000.0, 1)
                << " mA\n";
  }
  if (opts.output_path) {
    std::ofstream out(*opts.output_path);
    if (!out) throw Error("cannot open '" + *opts.output_path + "'");
    part::write_partition(out, *final_nl, partition);
    if (!opts.quiet)
      std::cout << "partition written to " << *opts.output_path << "\n";
  }
  return 0;
}

// --cache-stats / --cache-compact: maintenance over a sweep directory's
// results.jsonl, no circuits involved.
int run_cache_maintenance(const CliOptions& opts) {
  if (opts.cache_compact_dir) {
    const auto r = core::compact_cache_file(*opts.cache_compact_dir);
    std::cout << "cache-compact: kept " << r.kept << " rows, dropped "
              << r.dropped_duplicates << " shadowed + " << r.dropped_corrupt
              << " corrupt\n";
  }
  if (opts.cache_stats_dir) {
    const auto s = core::inspect_cache_file(*opts.cache_stats_dir);
    std::cout << "cache-stats: " << s.unique_keys << " entries in "
              << s.total_lines << " rows (" << s.duplicate_lines
              << " shadowed, " << s.corrupt_lines << " corrupt)\n";
    for (std::size_t b = 0; b < s.age_histogram.size(); ++b) {
      if (s.age_histogram[b] == 0) continue;
      std::cout << "  last write " << (std::size_t{1} << b) << ".."
                << ((std::size_t{2} << b) - 1)
                << " rows from end: " << s.age_histogram[b] << " entries\n";
    }
  }
  return 0;
}

// --cache-stats - --submit ENDPOINT: fetch a remote server's (or cluster
// front-end's) cache counters over the protocol's stats op. The local
// variant reads a directory this process can see; a --listen server's
// cache lives on another host, where only the protocol reaches it.
int run_remote_cache_stats(const CliOptions& opts) {
  const auto channel = support::connect_endpoint(*opts.submit_socket);
  if (!channel->write_line(json::JsonWriter().field("op", "stats").str()))
    throw Error("server connection lost during stats request");
  std::string line;
  while (channel->read_line(line)) {
    const auto event = json::JsonValue::parse(line);
    if (!event || !event->is_object()) continue;
    if (event->get_string("event") != "stats") continue;  // hello etc.
    std::cout << "cache-stats: " << *opts.submit_socket << ": ";
    if (event->find("cache_entries") == nullptr) {
      std::cout << "no cache configured (server runs without "
                   "--cache-dir)\n";
      return 0;
    }
    std::cout << event->get_u64("cache_entries") << " entries, "
              << event->get_u64("cache_hits") << " hits, "
              << event->get_u64("cache_misses") << " misses";
    // Cluster front-ends aggregate across their ring; surface the scope.
    if (const json::JsonValue* backends = event->find("backends"))
      if (std::uint64_t n = 0; backends->as_u64(n))
        std::cout << " across " << event->get_u64("backends_alive") << "/"
                  << n << " backends";
    std::cout << "\n";
    return 0;
  }
  throw Error("server connection ended before answering stats");
}

// --submit: client mode against an iddqsyn_server. Rows stream back (and
// print) in completion order, interleaved across circuits — that, not
// argument order, is the point of the server path. The endpoint is a TCP
// host:port when its last ':'-suffix parses as a port, a unix socket path
// otherwise; the protocol bytes are identical either way.
int run_submit_client(const CliOptions& opts) {
  const auto tcp = support::parse_host_port(*opts.submit_socket);
  const auto channel = tcp ? support::connect_tcp(tcp->first, tcp->second)
                           : support::connect_unix_socket(*opts.submit_socket);

  json::JsonWriter circuits(json::JsonWriter::Kind::Array);
  for (const auto& c : opts.circuits) circuits.element(std::string_view(c));
  json::JsonWriter methods(json::JsonWriter::Kind::Array);
  for (const auto& m : opts.methods) methods.element(std::string_view(m));
  json::JsonWriter submit;
  submit.field("op", "submit")
      .field("id", "cli")
      .field_raw("circuits", circuits.str())
      .field_raw("methods", methods.str())
      .field("seed", opts.seed)
      .field("cache", !opts.no_cache);
  if (opts.deadline_ms > 0)
    submit.field("deadline_ms",
                 static_cast<std::uint64_t>(opts.deadline_ms));
  if (!channel->write_line(submit.str()))
    throw Error("server connection lost during submit");

  // Deliberately stop draining: events pile up in the server's bounded
  // per-session queue, exercising its backpressure policy.
  if (opts.stall_ms > 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(opts.stall_ms));

  bool failed = false;
  bool sweep_complete = false;
  std::string line;
  while (channel->read_line(line)) {
    const auto event = json::JsonValue::parse(line);
    if (!event || !event->is_object()) continue;
    const std::string kind = event->get_string("event");
    if (kind == "row") {
      std::cout << event->get_string("circuit")
                << ": method=" << event->get_string("method")
                << " K=" << event->get_u64("modules")
                << " cost="
                << report::format_fixed(event->get_double("cost"), 1)
                << " sensor_area="
                << report::format_eng(event->get_double("sensor_area"))
                << " delay_ovh="
                << report::format_pct(event->get_double("delay_overhead"))
                << " test_ovh="
                << report::format_pct(event->get_double("test_overhead"))
                << " evals=" << event->get_u64("evaluations") << " feasible="
                << (event->get_bool("feasible", false) ? "yes" : "NO");
      // Coverage columns appear only when the server grades them; the
      // printed row then matches the direct CLI's byte for byte.
      if (event->find("fault_coverage_pct") != nullptr)
        std::cout << " cov="
                  << report::format_pct(
                         event->get_double("fault_coverage_pct"),
                         /*already_pct=*/true)
                  << " faults=" << event->get_u64("faults_detected") << "/"
                  << event->get_u64("faults_total")
                  << " patterns=" << event->get_u64("patterns_minimized")
                  << "/" << event->get_u64("patterns_used");
      std::cout << "\n";
    } else if (kind == "failed") {
      failed = true;
      std::cerr << "iddqsyn: " << event->get_string("circuit") << ": "
                << event->get_string("error") << "\n";
    } else if (kind == "error") {
      failed = true;
      std::cerr << "iddqsyn: server: " << event->get_string("message")
                << "\n";
    } else if (kind == "progress" && opts.progress) {
      std::cerr << "[progress] " << event->get_string("circuit") << " "
                << event->get_string("method")
                << ": iter=" << event->get_u64("iteration")
                << " evals=" << event->get_u64("evaluations") << " cost="
                << report::format_fixed(event->get_double("cost"), 1)
                << "\n";
    } else if (kind == "sweep_done") {
      sweep_complete = true;
      break;  // closing the connection ends the session, not the server
    }
  }
  if (!sweep_complete) {
    // A dead/restarted server must not look like a successful sweep.
    std::cerr << "iddqsyn: server connection ended before the sweep "
                 "completed\n";
    failed = true;
  }
  return failed ? 2 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = parse(argc, argv);
  if (!opts) {
    print_usage(std::cerr);
    return 1;
  }
  try {
    if (opts->cache_stats_dir && opts->submit_socket)
      return run_remote_cache_stats(*opts);
    if (opts->cache_stats_dir || opts->cache_compact_dir)
      return run_cache_maintenance(*opts);
    if (opts->submit_socket) return run_submit_client(*opts);

    const auto library = opts->lib_path
                             ? lib::read_library_file(*opts->lib_path)
                             : lib::default_library();

    core::FlowEngineConfig config;
    config.sensor.r_max_mv = opts->rail_mv;
    config.sensor.d_min = opts->disc;
    config.optimizers.es.max_generations = opts->generations;
    config.coverage.enabled = opts->coverage;
    config.coverage.fault_model = opts->fault_model;
    config.coverage.patterns = opts->patterns;
    config.coverage.minimize = opts->minimize_patterns;

    // One pool shared by all --jobs workers (bounded fan-out); declared
    // before the runner so it outlives every optimizer run.
    support::ExecutorPool pool(
        support::ExecutorPool::from_option(opts->threads));
    config.pool = &pool;

    std::optional<core::ResultCache> cache;
    if (opts->cache_dir && !opts->no_cache) {
      cache.emplace(*opts->cache_dir);
      if (opts->cache_resident > 0)
        cache->set_max_resident(opts->cache_resident);
      config.cache = &*cache;
    }
    if (opts->progress) {
      // Worker threads report concurrently; serialize the ticker lines.
      static std::mutex progress_mutex;
      config.on_progress = [](const core::OptimizerProgress& p) {
        const std::scoped_lock lock(progress_mutex);
        std::cerr << "[progress] " << p.method << ": iter=" << p.iteration
                  << " evals=" << p.evaluations
                  << " cost=" << report::format_fixed(p.best.cost, 1)
                  << (p.best.feasible() ? "" : " (infeasible)") << "\n";
      };
    }

    const core::BatchRunner runner(library, config);
    const auto items =
        runner.run(opts->circuits, opts->methods, opts->seed, opts->jobs);

    bool failed = false;
    for (const auto& item : items) {
      if (!item.ok()) {
        failed = true;
        std::cerr << "iddqsyn: " << item.circuit << ": " << item.error
                  << "\n";
        continue;
      }
      if (!opts->quiet)
        std::cout << item.circuit << ": K=" << item.plan.module_count
                  << " planned (leakage bound " << item.plan.k_min_leakage
                  << ", target module size " << item.plan.target_module_size
                  << ")\n";
      for (const auto& r : item.methods)
        print_method_row(std::cout, item.circuit, r);
      if (opts->pareto) print_pareto_front(std::cout, item.circuit, item.methods);
    }
    if (cache) {
      const auto hits = cache->hits();
      const auto misses = cache->misses();
      const auto total = hits + misses;
      std::cerr << "cache: " << hits << " hits, " << misses << " misses";
      if (total > 0)
        std::cerr << " ("
                  << report::format_pct(
                         static_cast<double>(hits) /
                             static_cast<double>(total) * 100.0,
                         /*already_pct=*/true)
                  << " hit rate, " << cache->size() << " entries, "
                  << cache->resident_size() << " resident)";
      if (cache->disk_hits() > 0 || cache->evictions() > 0)
        std::cerr << " [residency: " << cache->evictions() << " evictions, "
                  << cache->disk_hits() << " disk reloads]";
      // A silently-degraded cache file (truncated writes, foreign
      // content) would otherwise only show up as a slow sweep.
      if (cache->corrupt_lines() > 0)
        std::cerr << " [" << cache->corrupt_lines()
                  << " corrupt lines ignored; run --cache-compact]";
      std::cerr << "\n";
    }
    if (failed) return 2;

    if (opts->circuits.size() == 1)
      return finish_single_circuit(*opts, items.front(), library);
    return 0;
  } catch (const Error& e) {
    std::cerr << "iddqsyn: " << e.what() << "\n";
    return 2;
  }
}
