// iddqsyn — command-line driver for the BIC-sensor partitioning flow.
//
// Usage:
//   iddqsyn [options] <circuit>
//
//   <circuit>             path to an ISCAS85 .bench file, or one of the
//                         built-in generators: c17, c1908, c2670, c3540,
//                         c5315, c6288, c7552
//
// Options:
//   -o FILE               write the resulting partition to FILE
//   --lib FILE            load a cell library (default: built-in 5V CMOS)
//   --rail MV             virtual-rail perturbation limit r (default 200)
//   --disc D              required discriminability d (default 10)
//   --seed N              evolution-strategy seed (default 42)
//   --generations N       ES generation cap (default 350)
//   --retime              run partition-aware wave retiming afterwards
//   --quiet               only print the summary line
//   --help                this text
//
// Exit code 0 on success, 1 on bad usage, 2 on flow errors.
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "core/flow.hpp"
#include "core/resynth.hpp"
#include "library/cell_library.hpp"
#include "library/lib_io.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/gen/c17.hpp"
#include "netlist/gen/iscas_profiles.hpp"
#include "netlist/stats.hpp"
#include "partition/partition_io.hpp"
#include "report/table.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"

namespace {

using namespace iddq;

struct CliOptions {
  std::string circuit;
  std::optional<std::string> output_path;
  std::optional<std::string> lib_path;
  double rail_mv = 200.0;
  double disc = 10.0;
  std::uint64_t seed = 42;
  std::size_t generations = 350;
  bool retime = false;
  bool quiet = false;
};

void print_usage(std::ostream& os) {
  os << "usage: iddqsyn [options] <circuit.bench | c17 | c1908 | c2670 | "
        "c3540 | c5315 | c6288 | c7552>\n"
        "  -o FILE          write the partition to FILE\n"
        "  --lib FILE       cell library file (default: built-in 5V CMOS)\n"
        "  --rail MV        rail perturbation limit r in mV (default 200)\n"
        "  --disc D         required discriminability d (default 10)\n"
        "  --seed N         evolution seed (default 42)\n"
        "  --generations N  ES generation cap (default 350)\n"
        "  --retime         partition-aware wave retiming after the flow\n"
        "  --quiet          summary line only\n";
}

std::optional<CliOptions> parse(int argc, char** argv) {
  CliOptions opts;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto need_value = [&](const char* flag) -> std::optional<std::string> {
      if (i + 1 >= argc) {
        std::cerr << "iddqsyn: " << flag << " needs a value\n";
        return std::nullopt;
      }
      return std::string(argv[++i]);
    };
    if (arg == "--help" || arg == "-h") {
      print_usage(std::cout);
      std::exit(0);
    } else if (arg == "-o") {
      const auto v = need_value("-o");
      if (!v) return std::nullopt;
      opts.output_path = *v;
    } else if (arg == "--lib") {
      const auto v = need_value("--lib");
      if (!v) return std::nullopt;
      opts.lib_path = *v;
    } else if (arg == "--rail") {
      const auto v = need_value("--rail");
      if (!v || !str::parse_double(*v, opts.rail_mv)) return std::nullopt;
    } else if (arg == "--disc") {
      const auto v = need_value("--disc");
      if (!v || !str::parse_double(*v, opts.disc)) return std::nullopt;
    } else if (arg == "--seed") {
      const auto v = need_value("--seed");
      std::size_t seed = 0;
      if (!v || !str::parse_size(*v, seed)) return std::nullopt;
      opts.seed = seed;
    } else if (arg == "--generations") {
      const auto v = need_value("--generations");
      if (!v || !str::parse_size(*v, opts.generations)) return std::nullopt;
    } else if (arg == "--retime") {
      opts.retime = true;
    } else if (arg == "--quiet") {
      opts.quiet = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "iddqsyn: unknown option '" << arg << "'\n";
      return std::nullopt;
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.size() != 1) {
    std::cerr << "iddqsyn: exactly one circuit argument expected\n";
    return std::nullopt;
  }
  opts.circuit = positional[0];
  return opts;
}

netlist::Netlist load_circuit(const std::string& spec) {
  const std::string lower = str::to_lower(spec);
  if (lower == "c17") return netlist::gen::make_c17();
  for (const auto name : netlist::gen::table1_circuit_names())
    if (lower == name) return netlist::gen::make_iscas_like(name);
  return netlist::read_bench_file(spec);
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = parse(argc, argv);
  if (!opts) {
    print_usage(std::cerr);
    return 1;
  }
  try {
    const auto nl = load_circuit(opts->circuit);
    const auto library = opts->lib_path
                             ? lib::read_library_file(*opts->lib_path)
                             : lib::default_library();
    if (!opts->quiet) netlist::print_stats(std::cout, nl);

    core::FlowConfig config;
    config.sensor.r_max_mv = opts->rail_mv;
    config.sensor.d_min = opts->disc;
    config.es.seed = opts->seed;
    config.es.max_generations = opts->generations;
    const auto result = core::run_flow(nl, library, config);

    auto partition = result.evolution.partition;
    const netlist::Netlist* final_nl = &nl;
    netlist::Netlist retimed_nl;  // populated only with --retime
    if (opts->retime) {
      std::vector<std::vector<netlist::GateId>> groups(
          partition.module_count());
      for (std::uint32_t m = 0; m < partition.module_count(); ++m) {
        const auto gates = partition.module(m);
        groups[m].assign(gates.begin(), gates.end());
      }
      auto rt = core::retime_for_iddq_partitioned(nl, library, groups);
      retimed_nl = std::move(rt.netlist);
      partition = part::Partition::from_groups(retimed_nl, rt.groups);
      final_nl = &retimed_nl;
      if (!opts->quiet)
        std::cout << "retiming: " << rt.buffers_added
                  << " buffers, sum-of-peaks "
                  << report::format_fixed(rt.sum_peak_before_ua / 1000.0, 1)
                  << " -> "
                  << report::format_fixed(rt.sum_peak_after_ua / 1000.0, 1)
                  << " mA\n";
    }

    std::cout << nl.name() << ": K=" << partition.module_count()
              << " sensor_area=" << report::format_eng(result.evolution.sensor_area)
              << " delay_ovh=" << report::format_pct(result.evolution.delay_overhead)
              << " test_ovh=" << report::format_pct(result.evolution.test_overhead)
              << " vs_standard=+"
              << report::format_pct(result.standard_area_overhead_pct(), true)
              << " feasible="
              << (result.evolution.fitness.feasible() ? "yes" : "NO") << "\n";

    if (opts->output_path) {
      std::ofstream out(*opts->output_path);
      if (!out) throw Error("cannot open '" + *opts->output_path + "'");
      part::write_partition(out, *final_nl, partition);
      if (!opts->quiet)
        std::cout << "partition written to " << *opts->output_path << "\n";
    }
    return 0;
  } catch (const Error& e) {
    std::cerr << "iddqsyn: " << e.what() << "\n";
    return 2;
  }
}
