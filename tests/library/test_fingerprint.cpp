#include "library/fingerprint.hpp"

#include <gtest/gtest.h>

namespace iddq::lib {
namespace {

CellParams params(double delay) {
  CellParams p;
  p.delay_ps = delay;
  p.ipeak_ua = 100.0;
  p.ileak_na = 1.0;
  p.cin_ff = 2.0;
  p.cout_ff = 4.0;
  p.rg_kohm = 5.0;
  p.cvr_ff = 3.0;
  p.area = 10.0;
  return p;
}

TEST(LibraryFingerprint, DefaultLibraryIsStable) {
  EXPECT_EQ(library_fingerprint(default_library()),
            library_fingerprint(default_library()));
}

TEST(LibraryFingerprint, RegistrationOrderIrrelevant) {
  CellLibrary a("a");
  a.add({netlist::GateKind::kNand, 2}, params(100.0));
  a.add({netlist::GateKind::kNor, 3}, params(150.0));
  CellLibrary b("b");  // same content, different name and insertion order
  b.add({netlist::GateKind::kNor, 3}, params(150.0));
  b.add({netlist::GateKind::kNand, 2}, params(100.0));
  EXPECT_EQ(library_fingerprint(a), library_fingerprint(b));
}

TEST(LibraryFingerprint, ParameterChangesHash) {
  CellLibrary a("l");
  a.add({netlist::GateKind::kNand, 2}, params(100.0));
  CellLibrary b("l");
  b.add({netlist::GateKind::kNand, 2}, params(101.0));
  EXPECT_NE(library_fingerprint(a), library_fingerprint(b));
}

TEST(LibraryFingerprint, ExtraCellChangesHash) {
  CellLibrary a("l");
  a.add({netlist::GateKind::kNand, 2}, params(100.0));
  CellLibrary b("l");
  b.add({netlist::GateKind::kNand, 2}, params(100.0));
  b.add({netlist::GateKind::kNand, 3}, params(100.0));
  EXPECT_NE(library_fingerprint(a), library_fingerprint(b));
}

TEST(LibraryFingerprint, VddChangesHash) {
  CellLibrary a("l", 5000.0);
  a.add({netlist::GateKind::kNand, 2}, params(100.0));
  CellLibrary b("l", 3300.0);
  b.add({netlist::GateKind::kNand, 2}, params(100.0));
  EXPECT_NE(library_fingerprint(a), library_fingerprint(b));
}

}  // namespace
}  // namespace iddq::lib
