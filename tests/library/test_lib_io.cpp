#include "library/lib_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "support/error.hpp"

namespace iddq::lib {
namespace {

constexpr const char* kTinyLib = R"(
# test library
library demo
vdd_mv 3300
cell nand 2
  delay_ps 260
  ipeak_ua 230
  ileak_na 0.2
  cin_ff 6
  cout_ff 15
  rg_kohm 25
  cvr_ff 3.5
  area 8
end
cell not 1
  delay_ps 180
  ipeak_ua 300
  ileak_na 0.12
  cin_ff 6
  cout_ff 12
  rg_kohm 21
  cvr_ff 2.5
  area 4
end
)";

TEST(LibIo, ParsesHeaderAndCells) {
  const CellLibrary lib = read_library_text(kTinyLib);
  EXPECT_EQ(lib.name(), "demo");
  EXPECT_DOUBLE_EQ(lib.vdd_mv(), 3300.0);
  EXPECT_EQ(lib.size(), 2u);
  const auto& p = lib.params(CellType{netlist::GateKind::kNand, 2});
  EXPECT_DOUBLE_EQ(p.delay_ps, 260.0);
  EXPECT_DOUBLE_EQ(p.cvr_ff, 3.5);
}

TEST(LibIo, RoundTripPreservesEverything) {
  const CellLibrary original = default_library();
  const CellLibrary reparsed = read_library_text(to_library_string(original));
  EXPECT_EQ(reparsed.name(), original.name());
  EXPECT_DOUBLE_EQ(reparsed.vdd_mv(), original.vdd_mv());
  EXPECT_EQ(reparsed.size(), original.size());
  for (const auto& type : original.cell_types()) {
    const auto& a = original.params(type);
    const auto& b = reparsed.params(type);
    EXPECT_NEAR(a.delay_ps, b.delay_ps, 1e-6 * a.delay_ps);
    EXPECT_NEAR(a.ipeak_ua, b.ipeak_ua, 1e-6 * a.ipeak_ua);
    EXPECT_NEAR(a.ileak_na, b.ileak_na, 1e-6 * a.ileak_na);
    EXPECT_NEAR(a.rg_kohm, b.rg_kohm, 1e-6 * a.rg_kohm);
    EXPECT_NEAR(a.area, b.area, 1e-6 * a.area);
  }
}

TEST(LibIo, RejectsUnknownAttribute) {
  EXPECT_THROW((void)read_library_text(R"(
library x
cell nand 2
  frobnication 3
end
)"),
               ParseError);
}

TEST(LibIo, RejectsUnterminatedCell) {
  EXPECT_THROW((void)read_library_text(R"(
library x
cell nand 2
  delay_ps 100
)"),
               ParseError);
}

TEST(LibIo, RejectsNestedCell) {
  EXPECT_THROW((void)read_library_text(R"(
library x
cell nand 2
cell nor 2
end
)"),
               ParseError);
}

TEST(LibIo, RejectsBadKind) {
  EXPECT_THROW((void)read_library_text("cell frob 2\nend\n"), ParseError);
}

TEST(LibIo, RejectsIncompleteCellParams) {
  // Missing most attributes -> CellLibrary::add validation fails.
  EXPECT_THROW((void)read_library_text(R"(
library x
cell nand 2
  delay_ps 100
end
)"),
               ParseError);
}

TEST(LibIo, RejectsVddAfterCells) {
  EXPECT_THROW((void)read_library_text(R"(
library x
cell nand 2
  delay_ps 260
  ipeak_ua 230
  ileak_na 0.2
  cin_ff 6
  cout_ff 15
  rg_kohm 25
  cvr_ff 3.5
  area 8
end
vdd_mv 3300
)"),
               ParseError);
}

TEST(LibIo, MissingFileThrows) {
  EXPECT_THROW((void)read_library_file("/nonexistent/lib.txt"), Error);
}

TEST(LibIo, FileRoundTrip) {
  const CellLibrary original = default_library();
  const std::string path = ::testing::TempDir() + "iddqsyn_lib.txt";
  {
    std::ofstream out(path);
    ASSERT_TRUE(out.is_open());
    write_library(out, original);
  }
  const CellLibrary reloaded = read_library_file(path);
  EXPECT_EQ(reloaded.size(), original.size());
  EXPECT_DOUBLE_EQ(reloaded.vdd_mv(), original.vdd_mv());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace iddq::lib
