#include "library/cell_library.hpp"

#include <gtest/gtest.h>

#include "netlist/gen/c17.hpp"
#include "netlist/gen/random_dag.hpp"
#include "support/error.hpp"

namespace iddq::lib {
namespace {

TEST(CellLibrary, DefaultLibraryCoversCommonCells) {
  const CellLibrary lib = default_library();
  EXPECT_TRUE(lib.has(CellType{netlist::GateKind::kNot, 1}));
  EXPECT_TRUE(lib.has(CellType{netlist::GateKind::kBuf, 1}));
  for (const auto kind :
       {netlist::GateKind::kAnd, netlist::GateKind::kNand,
        netlist::GateKind::kOr, netlist::GateKind::kNor,
        netlist::GateKind::kXor, netlist::GateKind::kXnor}) {
    for (std::uint8_t fanin = 2; fanin <= 9; ++fanin)
      EXPECT_TRUE(lib.has(CellType{kind, fanin}))
          << to_string(CellType{kind, fanin});
  }
}

TEST(CellLibrary, DefaultLibraryIsSelfConsistent) {
  const CellLibrary lib = default_library();
  constexpr double kLn2 = 0.6931471805599453;
  for (const auto& type : lib.cell_types()) {
    const CellParams& p = lib.params(type);
    // D ~ ln2 * Rg * Cg by construction.
    EXPECT_NEAR(p.delay_ps, kLn2 * p.rg_kohm * p.cout_ff, 1e-6)
        << to_string(type);
    // ipeak ~ 0.75 * VDD / Rg.
    EXPECT_NEAR(p.ipeak_ua, 0.75 * lib.vdd_mv() / p.rg_kohm, 1e-6);
    EXPECT_GT(p.ileak_na, 0.0);
    EXPECT_GT(p.area, 0.0);
  }
}

TEST(CellLibrary, FaninScalingIsMonotone) {
  const CellLibrary lib = default_library();
  for (std::uint8_t fanin = 3; fanin <= 9; ++fanin) {
    const auto& small =
        lib.params(CellType{netlist::GateKind::kNand,
                            static_cast<std::uint8_t>(fanin - 1)});
    const auto& large = lib.params(CellType{netlist::GateKind::kNand, fanin});
    EXPECT_GT(large.delay_ps, small.delay_ps);
    EXPECT_GT(large.area, small.area);
    EXPECT_GT(large.ileak_na, small.ileak_na);
  }
}

TEST(CellLibrary, MissingCellThrows) {
  const CellLibrary lib = default_library();
  EXPECT_THROW((void)lib.params(CellType{netlist::GateKind::kNand, 15}),
               LookupError);
}

TEST(CellLibrary, AddRejectsNonPositiveParams) {
  CellLibrary lib("t", 5000.0);
  CellParams p;  // all zero
  EXPECT_THROW(lib.add(CellType{netlist::GateKind::kNand, 2}, p), Error);
}

TEST(CellLibrary, AddRejectsInputPads) {
  CellLibrary lib("t", 5000.0);
  CellParams p;
  p.delay_ps = p.cout_ff = p.rg_kohm = p.area = p.ipeak_ua = p.ileak_na = 1.0;
  EXPECT_THROW(lib.add(CellType{netlist::GateKind::kInput, 1}, p), Error);
}

TEST(CellLibrary, AddReplacesExisting) {
  CellLibrary lib("t", 5000.0);
  CellParams p;
  p.delay_ps = p.cout_ff = p.rg_kohm = p.area = p.ipeak_ua = p.ileak_na = 1.0;
  lib.add(CellType{netlist::GateKind::kNand, 2}, p);
  p.area = 42.0;
  lib.add(CellType{netlist::GateKind::kNand, 2}, p);
  EXPECT_EQ(lib.size(), 1u);
  EXPECT_DOUBLE_EQ(lib.params(CellType{netlist::GateKind::kNand, 2}).area,
                   42.0);
}

TEST(BindCells, BindsEveryLogicGate) {
  const auto nl = netlist::gen::make_c17();
  const CellLibrary lib = default_library();
  const auto bound = bind_cells(nl, lib);
  ASSERT_EQ(bound.size(), nl.gate_count());
  for (const auto id : nl.logic_gates()) EXPECT_GT(bound[id].delay_ps, 0.0);
}

TEST(BindCells, InputsGetZeroParams) {
  const auto nl = netlist::gen::make_c17();
  const auto bound = bind_cells(nl, default_library());
  for (const auto id : nl.primary_inputs()) {
    EXPECT_DOUBLE_EQ(bound[id].delay_ps, 0.0);
    EXPECT_DOUBLE_EQ(bound[id].ileak_na, 0.0);
  }
}

TEST(BindCells, ThrowsOnMissingCell) {
  CellLibrary lib("tiny", 5000.0);
  CellParams p;
  p.delay_ps = p.cout_ff = p.rg_kohm = p.area = p.ipeak_ua = p.ileak_na = 1.0;
  lib.add(CellType{netlist::GateKind::kNot, 1}, p);  // NAND2 missing
  const auto nl = netlist::gen::make_c17();
  EXPECT_THROW((void)bind_cells(nl, lib), LookupError);
}

TEST(CellType, ToStringFormat) {
  EXPECT_EQ(to_string(CellType{netlist::GateKind::kNand, 3}), "nand3");
  EXPECT_EQ(to_string(CellType{netlist::GateKind::kNot, 1}), "not");
}

}  // namespace
}  // namespace iddq::lib
