#include "report/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "support/error.hpp"

namespace iddq::report {
namespace {

TEST(Table, PrintAlignsColumns) {
  TextTable t({"circuit", "area"});
  t.add_row({"c17", "1.0E+5"});
  t.add_row({"c7552", "5.65E+6"});
  std::ostringstream os;
  t.print(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("circuit"), std::string::npos);
  EXPECT_NE(text.find("c7552"), std::string::npos);
  // Header rule present.
  EXPECT_NE(text.find("---"), std::string::npos);
}

TEST(Table, MarkdownShape) {
  TextTable t({"a", "b"});
  t.add_row({"1", "2"});
  const std::string md = t.to_markdown();
  EXPECT_NE(md.find("| a | b |"), std::string::npos);
  EXPECT_NE(md.find("|---|---|"), std::string::npos);
  EXPECT_NE(md.find("| 1 | 2 |"), std::string::npos);
}

TEST(Table, CsvEscapesSpecials) {
  TextTable t({"name", "note"});
  t.add_row({"x,y", "say \"hi\""});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, RowArityEnforced) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(Table, Counts) {
  TextTable t({"a"});
  EXPECT_EQ(t.column_count(), 1u);
  EXPECT_EQ(t.row_count(), 0u);
  t.add_row({"x"});
  EXPECT_EQ(t.row_count(), 1u);
}

TEST(Format, EngineeringNotationLikePaper) {
  EXPECT_EQ(format_eng(1.08e6), "1.08E+6");
  EXPECT_EQ(format_eng(5.67e5), "5.67E+5");
  EXPECT_EQ(format_eng(5.94e-2), "5.94E-2");
}

TEST(Format, Percentages) {
  EXPECT_EQ(format_pct(0.306), "30.6%");
  EXPECT_EQ(format_pct(14.5, /*already_pct=*/true), "14.5%");
}

TEST(Format, Fixed) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(2.0, 0), "2");
}

}  // namespace
}  // namespace iddq::report
