// Pareto frontier over (area overhead down, coverage up) — the --pareto
// satellite's kernel (report/pareto.hpp).
#include "report/pareto.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace iddq::report {
namespace {

ParetoPoint pt(const char* label, double overhead, double coverage) {
  return ParetoPoint{label, overhead, coverage};
}

TEST(Pareto, DominatesRequiresStrictImprovementSomewhere) {
  EXPECT_TRUE(dominates(pt("a", 1.0, 95.0), pt("b", 2.0, 90.0)));
  EXPECT_TRUE(dominates(pt("a", 1.0, 95.0), pt("b", 1.0, 90.0)));
  EXPECT_TRUE(dominates(pt("a", 1.0, 95.0), pt("b", 2.0, 95.0)));
  // Equal points do not dominate each other; neither do trade-offs.
  EXPECT_FALSE(dominates(pt("a", 1.0, 95.0), pt("b", 1.0, 95.0)));
  EXPECT_FALSE(dominates(pt("a", 1.0, 90.0), pt("b", 2.0, 95.0)));
  EXPECT_FALSE(dominates(pt("b", 2.0, 95.0), pt("a", 1.0, 90.0)));
}

TEST(Pareto, FrontKeepsOnlyNonDominatedSortedByOverhead) {
  const std::vector<ParetoPoint> points{
      pt("cheap", 0.0, 90.0),     // frontier: cheapest
      pt("mid", 1.0, 95.0),       // frontier: pays 1% for +5 coverage
      pt("dominated", 2.0, 94.0), // mid beats it on both axes
      pt("best", 3.0, 99.0),      // frontier: highest coverage
  };
  const auto front = pareto_front(points);
  EXPECT_EQ(front, (std::vector<std::size_t>{0, 1, 3}));
}

TEST(Pareto, EqualCoverageAtHigherCostIsDominated) {
  const std::vector<ParetoPoint> points{pt("a", 1.0, 95.0),
                                        pt("b", 2.0, 95.0)};
  EXPECT_EQ(pareto_front(points), (std::vector<std::size_t>{0}));
}

TEST(Pareto, CoordinateDuplicatesAllSurvive) {
  // Two methods landing on the same (overhead, coverage) point are both
  // worth reporting — neither strictly improves on the other.
  const std::vector<ParetoPoint> points{pt("a", 1.0, 95.0),
                                        pt("twin", 1.0, 95.0),
                                        pt("worse", 2.0, 90.0)};
  EXPECT_EQ(pareto_front(points), (std::vector<std::size_t>{0, 1}));
}

TEST(Pareto, FrontIsPermutationInvariantForDistinctPoints) {
  std::vector<ParetoPoint> points{
      pt("p0", 3.0, 99.0), pt("p1", 0.0, 90.0), pt("p2", 1.0, 95.0),
      pt("p3", 2.0, 94.0), pt("p4", 0.5, 80.0),
  };
  std::vector<std::string> want;
  {
    const auto front = pareto_front(points);
    for (const auto i : front) want.push_back(points[i].label);
  }
  std::sort(points.begin(), points.end(),
            [](const ParetoPoint& a, const ParetoPoint& b) {
              return a.label < b.label;
            });
  std::vector<std::string> got;
  for (const auto i : pareto_front(points)) got.push_back(points[i].label);
  EXPECT_EQ(got, want);
}

TEST(Pareto, NegativeAndEmptyInputsAreHandled) {
  EXPECT_TRUE(pareto_front({}).empty());
  // A single point — even with "odd" coordinates — is its own frontier.
  const std::vector<ParetoPoint> one{pt("only", -1.0, -5.0)};
  EXPECT_EQ(pareto_front(one), (std::vector<std::size_t>{0}));
}

}  // namespace
}  // namespace iddq::report
