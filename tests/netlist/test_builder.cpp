#include "netlist/builder.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace iddq::netlist {
namespace {

Netlist tiny() {
  NetlistBuilder b("tiny");
  const auto a = b.add_input("a");
  const auto c = b.add_input("c");
  const auto g = b.add_gate(GateKind::kNand, "g", {a, c});
  const auto h = b.add_gate(GateKind::kNot, "h", {g});
  b.mark_output(h);
  return std::move(b).build();
}

TEST(Builder, BuildsValidNetlist) {
  const Netlist nl = tiny();
  EXPECT_EQ(nl.name(), "tiny");
  EXPECT_EQ(nl.gate_count(), 4u);
  EXPECT_EQ(nl.logic_gate_count(), 2u);
  EXPECT_EQ(nl.primary_inputs().size(), 2u);
  EXPECT_EQ(nl.primary_outputs().size(), 1u);
}

TEST(Builder, FanoutsMirrorFanins) {
  const Netlist nl = tiny();
  const auto a = nl.at("a");
  const auto g = nl.at("g");
  const auto h = nl.at("h");
  ASSERT_EQ(nl.gate(a).fanouts.size(), 1u);
  EXPECT_EQ(nl.gate(a).fanouts[0], g);
  ASSERT_EQ(nl.gate(g).fanouts.size(), 1u);
  EXPECT_EQ(nl.gate(g).fanouts[0], h);
  EXPECT_TRUE(nl.gate(h).fanouts.empty());
}

TEST(Builder, FindAndAt) {
  const Netlist nl = tiny();
  EXPECT_TRUE(nl.find("g").has_value());
  EXPECT_FALSE(nl.find("nope").has_value());
  EXPECT_THROW((void)nl.at("nope"), LookupError);
}

TEST(Builder, IsPrimaryOutput) {
  const Netlist nl = tiny();
  EXPECT_TRUE(nl.is_primary_output(nl.at("h")));
  EXPECT_FALSE(nl.is_primary_output(nl.at("g")));
}

TEST(Builder, LogicGatesExcludeInputs) {
  const Netlist nl = tiny();
  for (const GateId id : nl.logic_gates())
    EXPECT_TRUE(is_logic(nl.gate(id).kind));
}

TEST(Builder, RejectsDuplicateNames) {
  NetlistBuilder b("dup");
  b.add_input("x");
  EXPECT_THROW(b.add_input("x"), Error);
}

TEST(Builder, RejectsUnaryGateWithTwoFanins) {
  NetlistBuilder b("bad");
  const auto x = b.add_input("x");
  const auto y = b.add_input("y");
  EXPECT_THROW(b.add_gate(GateKind::kNot, "n", {x, y}), Error);
}

TEST(Builder, RejectsBinaryGateWithOneFanin) {
  NetlistBuilder b("bad");
  const auto x = b.add_input("x");
  EXPECT_THROW(b.add_gate(GateKind::kNand, "n", {x}), Error);
}

TEST(Builder, RejectsSelfLoop) {
  NetlistBuilder b("bad");
  b.add_input("x");
  const auto g = b.declare_gate(GateKind::kNot, "g");
  EXPECT_THROW(b.set_fanins(g, {g}), Error);
}

TEST(Builder, RejectsMissingOutputs) {
  NetlistBuilder b("noout");
  const auto x = b.add_input("x");
  b.add_gate(GateKind::kNot, "n", {x});
  EXPECT_THROW((void)std::move(b).build(), Error);
}

TEST(Builder, RejectsUnconnectedDeclaredGate) {
  NetlistBuilder b("dangling");
  const auto x = b.add_input("x");
  const auto g = b.add_gate(GateKind::kNot, "g", {x});
  b.declare_gate(GateKind::kNand, "never_wired");
  b.mark_output(g);
  EXPECT_THROW((void)std::move(b).build(), Error);
}

TEST(Builder, RejectsDoubleConnection) {
  NetlistBuilder b("twice");
  const auto x = b.add_input("x");
  const auto g = b.declare_gate(GateKind::kNot, "g");
  b.set_fanins(g, {x});
  EXPECT_THROW(b.set_fanins(g, {x}), Error);
}

TEST(Builder, MarkOutputIsIdempotent) {
  NetlistBuilder b("idem");
  const auto x = b.add_input("x");
  const auto g = b.add_gate(GateKind::kNot, "g", {x});
  b.mark_output(g);
  b.mark_output(g);
  const Netlist nl = std::move(b).build();
  EXPECT_EQ(nl.primary_outputs().size(), 1u);
}

TEST(Builder, GateKindRoundTrip) {
  for (const auto kind :
       {GateKind::kBuf, GateKind::kNot, GateKind::kAnd, GateKind::kNand,
        GateKind::kOr, GateKind::kNor, GateKind::kXor, GateKind::kXnor}) {
    GateKind parsed{};
    ASSERT_TRUE(gate_kind_from_string(to_string(kind), parsed));
    EXPECT_EQ(parsed, kind);
  }
}

TEST(Builder, GateKindAliases) {
  GateKind k{};
  EXPECT_TRUE(gate_kind_from_string("BUFF", k));
  EXPECT_EQ(k, GateKind::kBuf);
  EXPECT_TRUE(gate_kind_from_string("INV", k));
  EXPECT_EQ(k, GateKind::kNot);
  EXPECT_FALSE(gate_kind_from_string("DFF", k));
}

}  // namespace
}  // namespace iddq::netlist
