#include <gtest/gtest.h>

#include "netlist/gen/array_cut.hpp"
#include "netlist/gen/c17.hpp"
#include "netlist/gen/iscas_profiles.hpp"
#include "netlist/gen/random_dag.hpp"
#include "netlist/levelize.hpp"
#include "netlist/stats.hpp"
#include "support/error.hpp"

namespace iddq::netlist::gen {
namespace {

TEST(C17, ExactStructure) {
  const Netlist nl = make_c17();
  EXPECT_EQ(nl.name(), "c17");
  EXPECT_EQ(nl.primary_inputs().size(), 5u);
  EXPECT_EQ(nl.primary_outputs().size(), 2u);
  EXPECT_EQ(nl.logic_gate_count(), 6u);
  for (const GateId id : nl.logic_gates()) {
    EXPECT_EQ(nl.gate(id).kind, GateKind::kNand);
    EXPECT_EQ(nl.gate(id).fanins.size(), 2u);
  }
}

TEST(RandomDag, ExactGateCountAndDepth) {
  for (const std::uint64_t seed : {1ull, 2ull, 77ull}) {
    const auto profile = DagProfile::basic("t", 200, 15, seed);
    const Netlist nl = make_random_dag(profile);
    EXPECT_EQ(nl.logic_gate_count(), 200u);
    EXPECT_EQ(levelize(nl).max_depth, 15u);
  }
}

TEST(RandomDag, Deterministic) {
  const auto profile = DagProfile::basic("t", 150, 12, 5);
  const Netlist a = make_random_dag(profile);
  const Netlist b = make_random_dag(profile);
  ASSERT_EQ(a.gate_count(), b.gate_count());
  for (GateId id = 0; id < a.gate_count(); ++id) {
    EXPECT_EQ(a.gate(id).kind, b.gate(id).kind);
    EXPECT_EQ(a.gate(id).fanins, b.gate(id).fanins);
  }
}

TEST(RandomDag, DifferentSeedsDiffer) {
  const Netlist a = make_random_dag(DagProfile::basic("t", 150, 12, 5));
  const Netlist b = make_random_dag(DagProfile::basic("t", 150, 12, 6));
  bool any_difference = a.gate_count() != b.gate_count();
  for (GateId id = 0; !any_difference && id < a.gate_count(); ++id)
    any_difference = a.gate(id).fanins != b.gate(id).fanins ||
                     a.gate(id).kind != b.gate(id).kind;
  EXPECT_TRUE(any_difference);
}

TEST(RandomDag, EveryInputDrivesSomething) {
  const Netlist nl = make_random_dag(DagProfile::basic("t", 300, 18, 9));
  for (const GateId id : nl.primary_inputs())
    EXPECT_FALSE(nl.gate(id).fanouts.empty())
        << "dangling input " << nl.gate(id).name;
}

TEST(RandomDag, AllSinksAreOutputs) {
  const Netlist nl = make_random_dag(DagProfile::basic("t", 300, 18, 13));
  for (const GateId id : nl.logic_gates())
    if (nl.gate(id).fanouts.empty())
      EXPECT_TRUE(nl.is_primary_output(id));
}

TEST(RandomDag, RejectsInfeasibleProfiles) {
  auto p = DagProfile::basic("t", 5, 10, 1);  // depth > gates
  EXPECT_THROW((void)make_random_dag(p), Error);
  p = DagProfile::basic("t", 50, 5, 1);
  p.kind_weights = {};  // all zero
  EXPECT_THROW((void)make_random_dag(p), Error);
}

TEST(IscasProfiles, Table1NamesComplete) {
  const auto names = table1_circuit_names();
  ASSERT_EQ(names.size(), 6u);
  EXPECT_EQ(names[0], "c1908");
  EXPECT_EQ(names[5], "c7552");
}

TEST(IscasProfiles, PublishedSizes) {
  const struct {
    const char* name;
    std::size_t inputs, gates, depth;
  } expected[] = {
      {"c1908", 33, 880, 40},  {"c2670", 233, 1193, 32},
      {"c3540", 50, 1669, 47}, {"c5315", 178, 2307, 49},
      {"c7552", 207, 3512, 43},
  };
  for (const auto& e : expected) {
    const auto p = iscas_profile(e.name);
    EXPECT_EQ(p.inputs, e.inputs) << e.name;
    EXPECT_EQ(p.gates, e.gates) << e.name;
    EXPECT_EQ(p.depth, e.depth) << e.name;
  }
}

TEST(IscasProfiles, GeneratedCircuitsMatchProfiles) {
  const Netlist nl = make_iscas_like("c2670");
  EXPECT_EQ(nl.logic_gate_count(), 1193u);
  EXPECT_EQ(nl.primary_inputs().size(), 233u);
  EXPECT_EQ(levelize(nl).max_depth, 32u);
}

TEST(IscasProfiles, C6288IsStructural) {
  EXPECT_THROW((void)iscas_profile("c6288"), LookupError);
  const Netlist nl = make_iscas_like("c6288");
  EXPECT_EQ(nl.primary_inputs().size(), 32u);
  EXPECT_EQ(nl.primary_outputs().size(), 32u);
  // ~2400 gates, depth ~120: the published C6288 shape.
  EXPECT_NEAR(static_cast<double>(nl.logic_gate_count()), 2406.0, 60.0);
  EXPECT_NEAR(static_cast<double>(levelize(nl).max_depth), 124.0, 10.0);
}

TEST(IscasProfiles, UnknownNameThrows) {
  EXPECT_THROW((void)make_iscas_like("c9999"), LookupError);
}

TEST(IscasProfiles, CaseInsensitive) {
  const Netlist nl = make_iscas_like("C1908");
  EXPECT_EQ(nl.logic_gate_count(), 880u);
}

TEST(ArrayCut, StructureAndDepths) {
  const auto cut = make_array_cut(4, 6);
  EXPECT_EQ(cut.netlist.logic_gate_count(), 24u);
  const auto lv = levelize(cut.netlist);
  for (std::size_t r = 0; r < 4; ++r)
    for (std::size_t c = 0; c < 6; ++c)
      EXPECT_EQ(lv.depth[cut.cell[r][c]], c + 1)
          << "cell " << r << "," << c;
}

TEST(ArrayCut, ThreeCellTypesCycle) {
  const auto cut = make_array_cut(2, 6);
  const auto& nl = cut.netlist;
  EXPECT_EQ(nl.gate(cut.cell[0][0]).kind, GateKind::kNand);
  EXPECT_EQ(nl.gate(cut.cell[0][1]).kind, GateKind::kNor);
  EXPECT_EQ(nl.gate(cut.cell[0][2]).kind, GateKind::kAnd);
  EXPECT_EQ(nl.gate(cut.cell[0][3]).kind, GateKind::kNand);
}

TEST(ArrayCut, RowBandPartitionGroupsRows) {
  const auto cut = make_array_cut(6, 4);
  const auto groups = row_band_partition(cut, 3);
  ASSERT_EQ(groups.size(), 3u);
  for (const auto& g : groups) EXPECT_EQ(g.size(), 8u);  // 2 rows x 4 cols
}

TEST(ArrayCut, ColumnBandPartitionGroupsColumns) {
  const auto cut = make_array_cut(6, 4);
  const auto groups = column_band_partition(cut, 2);
  ASSERT_EQ(groups.size(), 2u);
  for (const auto& g : groups) EXPECT_EQ(g.size(), 12u);  // 6 rows x 2 cols
}

TEST(ArrayCut, PartitionsCoverAllCells) {
  const auto cut = make_array_cut(5, 7);
  for (const auto& groups :
       {row_band_partition(cut, 5), column_band_partition(cut, 7)}) {
    std::size_t total = 0;
    for (const auto& g : groups) total += g.size();
    EXPECT_EQ(total, 35u);
  }
}

}  // namespace
}  // namespace iddq::netlist::gen
