#include "netlist/gen/multiplier.hpp"

#include <gtest/gtest.h>

#include "netlist/levelize.hpp"
#include "sim/logic_sim.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace iddq::netlist::gen {
namespace {

std::uint64_t multiply_via_netlist(const Netlist& nl, std::uint64_t a,
                                   std::uint64_t b, std::size_t n) {
  sim::LogicSim simulator(nl);
  std::vector<bool> in(2 * n);
  for (std::size_t i = 0; i < n; ++i) {
    in[i] = (a >> i) & 1;
    in[n + i] = (b >> i) & 1;
  }
  const auto values = simulator.run_single(in);
  std::uint64_t p = 0;
  const auto outs = nl.primary_outputs();
  for (std::size_t w = 0; w < outs.size(); ++w)
    if (values[outs[w]]) p |= std::uint64_t{1} << w;
  return p;
}

class MultiplierWidth : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MultiplierWidth, MultipliesCorrectlyOnRandomOperands) {
  const std::size_t n = GetParam();
  const Netlist nl = make_multiplier(n);
  Rng rng(1234 + n);
  for (int trial = 0; trial < 100; ++trial) {
    const std::uint64_t a = rng.below(std::uint64_t{1} << n);
    const std::uint64_t b = rng.below(std::uint64_t{1} << n);
    ASSERT_EQ(multiply_via_netlist(nl, a, b, n), a * b)
        << n << "x" << n << ": " << a << " * " << b;
  }
}

TEST_P(MultiplierWidth, EdgeOperands) {
  const std::size_t n = GetParam();
  const Netlist nl = make_multiplier(n);
  const std::uint64_t maxv = (std::uint64_t{1} << n) - 1;
  for (const auto [a, b] : {std::pair<std::uint64_t, std::uint64_t>{0, 0},
                            {0, maxv},
                            {maxv, 0},
                            {1, maxv},
                            {maxv, maxv}}) {
    EXPECT_EQ(multiply_via_netlist(nl, a, b, n), a * b);
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, MultiplierWidth,
                         ::testing::Values(2, 3, 4, 5, 8, 16));

TEST(Multiplier, C6288LikeShape) {
  const Netlist nl = make_multiplier(16, "c6288");
  EXPECT_EQ(nl.name(), "c6288");
  EXPECT_EQ(nl.primary_inputs().size(), 32u);
  EXPECT_EQ(nl.primary_outputs().size(), 32u);
  EXPECT_GT(nl.logic_gate_count(), 2300u);
  EXPECT_LT(nl.logic_gate_count(), 2500u);
  const auto depth = levelize(nl).max_depth;
  EXPECT_GT(depth, 110u);
  EXPECT_LT(depth, 135u);
}

TEST(Multiplier, MostlyNorCells) {
  const Netlist nl = make_multiplier(16);
  std::size_t nor_count = 0;
  for (const GateId id : nl.logic_gates())
    if (nl.gate(id).kind == GateKind::kNor) ++nor_count;
  // The adder array is NOR-only (like the real C6288); only the partial
  // products (AND) and half-adder sums (NOT) differ.
  EXPECT_GT(nor_count, nl.logic_gate_count() * 8 / 10);
}

TEST(Multiplier, RejectsBadWidths) {
  EXPECT_THROW((void)make_multiplier(1), Error);
  EXPECT_THROW((void)make_multiplier(65), Error);
}

TEST(Multiplier, DefaultNameEncodesWidth) {
  EXPECT_EQ(make_multiplier(4).name(), "mult4x4");
}

}  // namespace
}  // namespace iddq::netlist::gen
