#include "netlist/graph.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "netlist/builder.hpp"
#include "netlist/gen/c17.hpp"
#include "netlist/gen/random_dag.hpp"

namespace iddq::netlist {
namespace {

TEST(Graph, UndirectedAdjacencyIsSymmetric) {
  const Netlist nl = gen::make_c17();
  const UndirectedGraph g(nl);
  for (GateId u = 0; u < g.vertex_count(); ++u) {
    for (const GateId v : g.neighbors(u)) {
      const auto back = g.neighbors(v);
      EXPECT_TRUE(std::find(back.begin(), back.end(), u) != back.end())
          << u << " -> " << v << " not mirrored";
    }
  }
}

TEST(Graph, NeighborsAreSortedAndUnique) {
  const Netlist nl =
      gen::make_random_dag(gen::DagProfile::basic("rand", 120, 10, 11));
  const UndirectedGraph g(nl);
  for (GateId u = 0; u < g.vertex_count(); ++u) {
    const auto adj = g.neighbors(u);
    EXPECT_TRUE(std::is_sorted(adj.begin(), adj.end()));
    EXPECT_TRUE(std::adjacent_find(adj.begin(), adj.end()) == adj.end());
  }
}

TEST(Graph, EdgeCountConsistent) {
  const Netlist nl = gen::make_c17();
  const UndirectedGraph g(nl);
  std::size_t degree_sum = 0;
  for (GateId u = 0; u < g.vertex_count(); ++u)
    degree_sum += g.neighbors(u).size();
  EXPECT_EQ(degree_sum, 2 * g.edge_count());
}

TEST(Graph, C17Neighbors) {
  const Netlist nl = gen::make_c17();
  const UndirectedGraph g(nl);
  // Gate 16 connects to: 2 (fanin), 11 (fanin), 22, 23 (fanouts).
  const auto adj = g.neighbors(nl.at("16"));
  EXPECT_EQ(adj.size(), 4u);
}

TEST(Graph, BfsDistancesOnC17) {
  const Netlist nl = gen::make_c17();
  const UndirectedGraph g(nl);
  const auto dist = bfs_within(g, nl.at("10"), 10);
  EXPECT_EQ(dist[nl.at("10")], 0u);
  EXPECT_EQ(dist[nl.at("22")], 1u);   // direct fanout
  EXPECT_EQ(dist[nl.at("16")], 2u);   // via 22
  EXPECT_EQ(dist[nl.at("1")], 1u);    // via its input
  EXPECT_EQ(dist[nl.at("11")], 2u);   // via shared input 3
}

TEST(Graph, BfsRadiusCutsOff) {
  const Netlist nl = gen::make_c17();
  const UndirectedGraph g(nl);
  const auto dist = bfs_within(g, nl.at("10"), 1);
  EXPECT_EQ(dist[nl.at("22")], 1u);
  EXPECT_EQ(dist[nl.at("16")], kUnreached);  // distance 2 > radius 1
}

TEST(Graph, BfsUnreachableStaysUnreached) {
  // Two disconnected components.
  NetlistBuilder b("two");
  const auto a = b.add_input("a");
  const auto c = b.add_input("c");
  const auto x = b.add_gate(GateKind::kNot, "x", {a});
  const auto y = b.add_gate(GateKind::kNot, "y", {c});
  b.mark_output(x);
  b.mark_output(y);
  const Netlist nl = std::move(b).build();
  const UndirectedGraph g(nl);
  const auto dist = bfs_within(g, x, 100);
  EXPECT_EQ(dist[y], kUnreached);
  EXPECT_EQ(dist[c], kUnreached);
}

}  // namespace
}  // namespace iddq::netlist
