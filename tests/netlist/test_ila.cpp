#include "netlist/gen/ila.hpp"

#include <gtest/gtest.h>

#include "sim/logic_sim.hpp"
#include "support/error.hpp"

namespace iddq::netlist::gen {
namespace {

TEST(IlaGenerator, TiledStructureHasExpectedShape) {
  const auto ila = make_and_exor_ila(4, 6);
  // rows*cols ANDs + (rows-1)*cols accumulator XORs.
  EXPECT_EQ(ila.netlist.logic_gate_count(), 4u * 6u + 3u * 6u);
  EXPECT_EQ(ila.netlist.primary_inputs().size(), 6u + 4u);
  EXPECT_EQ(ila.netlist.primary_outputs().size(), 6u);
  ASSERT_EQ(ila.and_cell.size(), 4u);
  ASSERT_EQ(ila.sum_cell.size(), 4u);
  for (std::size_t r = 0; r < 4; ++r) {
    ASSERT_EQ(ila.and_cell[r].size(), 6u);
    for (std::size_t c = 0; c < 6; ++c) {
      EXPECT_EQ(ila.netlist.gate(ila.and_cell[r][c]).kind, GateKind::kAnd);
      if (r == 0)
        EXPECT_EQ(ila.sum_cell[0][c], ila.and_cell[0][c]);
      else
        EXPECT_EQ(ila.netlist.gate(ila.sum_cell[r][c]).kind, GateKind::kXor);
    }
  }
}

TEST(IlaGenerator, BroadcastLinesHaveRegularFanout) {
  // The regular-structure property the generator exists for: every x line
  // feeds a whole column (fanout = rows), every y line a whole row
  // (fanout = cols) — high-fanout tiling the random DAGs cannot produce.
  const auto ila = make_and_exor_ila(5, 3);
  const auto& nl = ila.netlist;
  for (std::size_t c = 0; c < 3; ++c)
    EXPECT_EQ(nl.gate(nl.at("x" + std::to_string(c))).fanout_count(), 5u);
  for (std::size_t r = 0; r < 5; ++r)
    EXPECT_EQ(nl.gate(nl.at("y" + std::to_string(r))).fanout_count(), 3u);
}

TEST(IlaGenerator, ComputesColumnwiseAndParity) {
  // Functional pin: output s_{R-1}_c = x[c] AND parity(y) for every input
  // combination of a 3x2 array (5 inputs -> 32 vectors).
  const auto ila = make_and_exor_ila(3, 2);
  const auto& nl = ila.netlist;
  const sim::LogicSim simulator(nl);
  for (unsigned v = 0; v < 32; ++v) {
    // Input order follows declaration: x0, x1, y0, y1, y2.
    const bool x0 = (v >> 0) & 1;
    const bool x1 = (v >> 1) & 1;
    const bool y0 = (v >> 2) & 1;
    const bool y1 = (v >> 3) & 1;
    const bool y2 = (v >> 4) & 1;
    const auto values = simulator.run_single({x0, x1, y0, y1, y2});
    const bool parity = (y0 != y1) != y2;
    EXPECT_EQ(values[ila.sum_cell[2][0]], x0 && parity) << "vector " << v;
    EXPECT_EQ(values[ila.sum_cell[2][1]], x1 && parity) << "vector " << v;
  }
}

TEST(IlaGenerator, RejectsDegenerateShapes) {
  EXPECT_THROW((void)make_and_exor_ila(1, 4), Error);
  EXPECT_THROW((void)make_and_exor_ila(2, 0), Error);
}

}  // namespace
}  // namespace iddq::netlist::gen
