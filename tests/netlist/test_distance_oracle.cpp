#include "netlist/distance_oracle.hpp"

#include <gtest/gtest.h>

#include "netlist/gen/c17.hpp"
#include "netlist/gen/random_dag.hpp"
#include "netlist/graph.hpp"

namespace iddq::netlist {
namespace {

TEST(DistanceOracle, MatchesBfsWithinRadius) {
  const Netlist nl =
      gen::make_random_dag(gen::DagProfile::basic("rand", 100, 10, 21));
  const std::uint32_t rho = 4;
  const DistanceOracle oracle(nl, rho);
  const UndirectedGraph graph(nl);
  for (GateId a = 0; a < nl.gate_count(); ++a) {
    const auto dist = bfs_within(graph, a, rho);
    for (GateId b = 0; b < nl.gate_count(); ++b) {
      if (a == b) continue;
      const std::uint32_t expected =
          (dist[b] == kUnreached || dist[b] >= rho) ? rho : dist[b];
      ASSERT_EQ(oracle.separation(a, b), expected)
          << "a=" << a << " b=" << b;
    }
  }
}

TEST(DistanceOracle, SeparationIsSymmetric) {
  const Netlist nl = gen::make_c17();
  const DistanceOracle oracle(nl, 5);
  for (GateId a = 0; a < nl.gate_count(); ++a)
    for (GateId b = a + 1; b < nl.gate_count(); ++b)
      EXPECT_EQ(oracle.separation(a, b), oracle.separation(b, a));
}

TEST(DistanceOracle, AdjacentGatesHaveSeparationOne) {
  const Netlist nl = gen::make_c17();
  const DistanceOracle oracle(nl, 5);
  for (const GateId id : nl.logic_gates())
    for (const GateId f : nl.gate(id).fanins)
      EXPECT_EQ(oracle.separation(id, f), 1u);
}

TEST(DistanceOracle, SaturatesAtRho) {
  const Netlist nl = gen::make_c17();
  const DistanceOracle oracle(nl, 2);
  // 10 to 19: 10-22-16-19 or 10-1?-...: shortest is 3 hops (10,22,16,19)
  // or via inputs; with rho=2 everything >= 2 saturates.
  EXPECT_EQ(oracle.separation(nl.at("10"), nl.at("19")), 2u);
}

TEST(DistanceOracle, RhoOneStoresNothing) {
  const Netlist nl = gen::make_c17();
  const DistanceOracle oracle(nl, 1);
  EXPECT_EQ(oracle.entry_count(), 0u);
  EXPECT_EQ(oracle.separation(nl.at("10"), nl.at("22")), 1u);  // saturated
}

TEST(DistanceOracle, NearListsExcludeSelfAndAreSorted) {
  const Netlist nl =
      gen::make_random_dag(gen::DagProfile::basic("rand", 80, 8, 31));
  const DistanceOracle oracle(nl, 4);
  for (GateId g = 0; g < nl.gate_count(); ++g) {
    GateId prev = kNoGate;
    for (const auto& e : oracle.near(g)) {
      EXPECT_NE(e.gate, g);
      EXPECT_GE(e.distance, 1u);
      EXPECT_LT(e.distance, 4u);
      if (prev != kNoGate) EXPECT_GT(e.gate, prev);
      prev = e.gate;
    }
  }
}

}  // namespace
}  // namespace iddq::netlist
