#include "netlist/bench_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "netlist/gen/c17.hpp"
#include "support/error.hpp"

namespace iddq::netlist {
namespace {

constexpr const char* kC17Text = R"(
# ISCAS85 c17
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
)";

TEST(BenchIo, ParsesC17) {
  const Netlist nl = read_bench_text(kC17Text, "c17");
  EXPECT_EQ(nl.primary_inputs().size(), 5u);
  EXPECT_EQ(nl.primary_outputs().size(), 2u);
  EXPECT_EQ(nl.logic_gate_count(), 6u);
  EXPECT_EQ(nl.gate(nl.at("22")).kind, GateKind::kNand);
}

TEST(BenchIo, ParsedC17MatchesGenerator) {
  const Netlist parsed = read_bench_text(kC17Text, "c17");
  const Netlist generated = gen::make_c17();
  EXPECT_EQ(parsed.gate_count(), generated.gate_count());
  for (const GateId id : generated.logic_gates()) {
    const auto& g = generated.gate(id);
    const GateId pid = parsed.at(g.name);
    EXPECT_EQ(parsed.gate(pid).kind, g.kind);
    EXPECT_EQ(parsed.gate(pid).fanins.size(), g.fanins.size());
  }
}

TEST(BenchIo, ForwardReferencesResolve) {
  const Netlist nl = read_bench_text(R"(
INPUT(a)
OUTPUT(y)
y = NOT(z)
z = BUF(a)
)",
                                     "fwd");
  EXPECT_EQ(nl.gate(nl.at("y")).fanins[0], nl.at("z"));
}

TEST(BenchIo, OutputBeforeDefinition) {
  const Netlist nl = read_bench_text(R"(
OUTPUT(y)
INPUT(a)
y = NOT(a)
)",
                                     "out-first");
  EXPECT_TRUE(nl.is_primary_output(nl.at("y")));
}

TEST(BenchIo, CommentsAndBlankLinesIgnored)
{
  const Netlist nl = read_bench_text(R"(
# full comment line
INPUT(a)   # trailing comment

OUTPUT(y)
y = NOT(a)
)",
                                     "comments");
  EXPECT_EQ(nl.logic_gate_count(), 1u);
}

TEST(BenchIo, RejectsUndefinedSignal) {
  EXPECT_THROW(
      (void)read_bench_text("INPUT(a)\nOUTPUT(y)\ny = AND(a, ghost)\n", "bad"),
      ParseError);
}

TEST(BenchIo, RejectsUndefinedOutput) {
  EXPECT_THROW(
      (void)read_bench_text("INPUT(a)\nOUTPUT(ghost)\ny = NOT(a)\n", "bad"),
      ParseError);
}

TEST(BenchIo, RejectsDoubleDefinition) {
  EXPECT_THROW((void)read_bench_text(
                   "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\ny = BUF(a)\n", "bad"),
               ParseError);
}

TEST(BenchIo, RejectsDff) {
  try {
    (void)read_bench_text("INPUT(a)\nOUTPUT(q)\nq = DFF(a)\n", "seq");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("DFF"), std::string::npos);
  }
}

TEST(BenchIo, RejectsUnknownKind) {
  EXPECT_THROW(
      (void)read_bench_text("INPUT(a)\nOUTPUT(y)\ny = FROB(a, a)\n", "bad"),
      ParseError);
}

TEST(BenchIo, RejectsMalformedLine) {
  EXPECT_THROW((void)read_bench_text("INPUT(a)\nOUTPUT(y)\ny equals NOT(a)\n",
                                     "bad"),
               ParseError);
}

TEST(BenchIo, ParseErrorCarriesLineNumber) {
  try {
    (void)read_bench_text("INPUT(a)\nOUTPUT(y)\ny = NOT()\n", "lined");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 3u);
  }
}

TEST(BenchIo, RoundTripPreservesStructure) {
  const Netlist original = gen::make_c17();
  const std::string text = to_bench_string(original);
  const Netlist reparsed = read_bench_text(text, "c17");
  EXPECT_EQ(reparsed.gate_count(), original.gate_count());
  EXPECT_EQ(reparsed.primary_outputs().size(),
            original.primary_outputs().size());
  for (const GateId id : original.logic_gates()) {
    const auto& g = original.gate(id);
    const auto& r = reparsed.gate(reparsed.at(g.name));
    EXPECT_EQ(r.kind, g.kind);
    ASSERT_EQ(r.fanins.size(), g.fanins.size());
    for (std::size_t i = 0; i < g.fanins.size(); ++i)
      EXPECT_EQ(reparsed.gate(r.fanins[i]).name,
                original.gate(g.fanins[i]).name);
  }
}

TEST(BenchIo, ReadFileErrorsOnMissingPath) {
  EXPECT_THROW((void)read_bench_file("/nonexistent/foo.bench"), Error);
}

TEST(BenchIo, FileRoundTrip) {
  const Netlist original = gen::make_c17();
  const std::string path = ::testing::TempDir() + "iddqsyn_c17.bench";
  {
    std::ofstream out(path);
    ASSERT_TRUE(out.is_open());
    write_bench(out, original);
  }
  const Netlist reloaded = read_bench_file(path);
  EXPECT_EQ(reloaded.name(), "iddqsyn_c17");  // name derives from the stem
  EXPECT_EQ(reloaded.gate_count(), original.gate_count());
  EXPECT_EQ(reloaded.primary_outputs().size(),
            original.primary_outputs().size());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace iddq::netlist
