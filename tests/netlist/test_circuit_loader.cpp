#include "netlist/circuit_loader.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "support/error.hpp"

namespace iddq::netlist {
namespace {

TEST(CircuitLoader, BuiltinNamesAreTheTenGenerators) {
  const auto names = builtin_circuit_names();
  ASSERT_EQ(names.size(), 10u);
  EXPECT_EQ(names.front(), "big_dag10k");
  for (const auto& name : names) EXPECT_TRUE(is_builtin_circuit(name));
}

TEST(CircuitLoader, IlaNamesAreParametric) {
  EXPECT_TRUE(is_builtin_circuit("ila8x8"));
  EXPECT_TRUE(is_builtin_circuit("ILA2x1"));
  EXPECT_TRUE(is_builtin_circuit("ila16x4"));
  EXPECT_FALSE(is_builtin_circuit("ila8"));      // no dimensions
  EXPECT_FALSE(is_builtin_circuit("ila8x"));     // missing cols
  EXPECT_FALSE(is_builtin_circuit("ilaAxB"));    // not digits
  EXPECT_FALSE(is_builtin_circuit("ila8x8x8"));  // extra dimension
}

TEST(CircuitLoader, LoadsIlaWithRequestedShape) {
  // rows*cols ANDs + (rows-1)*cols XORs.
  const auto nl = load_circuit("ila4x3");
  EXPECT_EQ(nl.logic_gate_count(), 4u * 3u + 3u * 3u);
  EXPECT_EQ(nl.primary_inputs().size(), 3u + 4u);
  EXPECT_EQ(load_circuit("ILA2x1").logic_gate_count(), 3u);
}

TEST(CircuitLoader, IlaDimensionBoundsAreEnforced) {
  for (const char* bad : {"ila1x4", "ila0x0", "ila257x2", "ila4x999"}) {
    try {
      (void)load_circuit(bad);
      FAIL() << "expected Error for " << bad;
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find("ILA dimensions"),
                std::string::npos)
          << bad;
    }
  }
}

TEST(CircuitLoader, BigDagAndMultNamesAreParametric) {
  EXPECT_TRUE(is_builtin_circuit("big_dag10k"));
  EXPECT_TRUE(is_builtin_circuit("BIG_DAG30K"));
  EXPECT_TRUE(is_builtin_circuit("mult64"));
  EXPECT_TRUE(is_builtin_circuit("Mult8"));
  EXPECT_FALSE(is_builtin_circuit("big_dag10"));   // missing the 'k'
  EXPECT_FALSE(is_builtin_circuit("big_dagk"));    // no digits
  EXPECT_FALSE(is_builtin_circuit("big_dagxk"));   // not digits
  EXPECT_FALSE(is_builtin_circuit("mult"));        // no width
  EXPECT_FALSE(is_builtin_circuit("mult16x16"));   // internal name, not spec
}

TEST(CircuitLoader, LoadsBigDagWithRequestedGateCount) {
  const auto nl = load_circuit("big_dag1k");
  EXPECT_EQ(nl.logic_gate_count(), 1000u);
  EXPECT_EQ(nl.name(), "big_dag1k");
  // Deterministic: the same spec always yields the same netlist.
  const auto again = load_circuit("BIG_DAG1K");
  ASSERT_EQ(again.logic_gate_count(), nl.logic_gate_count());
  for (std::size_t g = 0; g < nl.gate_count(); ++g) {
    ASSERT_EQ(nl.gate(g).kind, again.gate(g).kind);
    ASSERT_EQ(nl.gate(g).fanins, again.gate(g).fanins);
  }
  // Distinct sizes get distinct seeds, not a truncation of one another.
  EXPECT_EQ(load_circuit("big_dag2k").logic_gate_count(), 2000u);
}

TEST(CircuitLoader, LoadsMultiplierWithRequestedWidth) {
  const auto nl = load_circuit("mult4");
  EXPECT_EQ(nl.primary_inputs().size(), 8u);
  EXPECT_EQ(nl.primary_outputs().size(), 8u);
  EXPECT_GT(nl.logic_gate_count(), 4u * 4u);  // pp array + adder cells
}

TEST(CircuitLoader, BigDagAndMultBoundsAreEnforced) {
  for (const char* bad : {"big_dag0k", "big_dag129k", "big_dag1000k"}) {
    try {
      (void)load_circuit(bad);
      FAIL() << "expected Error for " << bad;
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find("big_dag size must be 1..128"),
                std::string::npos)
          << bad;
    }
  }
  for (const char* bad : {"mult1", "mult65", "mult999"}) {
    try {
      (void)load_circuit(bad);
      FAIL() << "expected Error for " << bad;
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find("mult width must be 2..64"),
                std::string::npos)
          << bad;
    }
  }
}

TEST(CircuitLoader, LoadsBuiltinsCaseInsensitively) {
  const auto lower = load_circuit("c17");
  const auto upper = load_circuit("C17");
  EXPECT_EQ(lower.logic_gate_count(), 6u);
  EXPECT_EQ(upper.logic_gate_count(), 6u);
  EXPECT_GT(load_circuit("c1908").logic_gate_count(), 100u);
}

TEST(CircuitLoader, UnknownBuiltinLikeNameListsValidBuiltins) {
  try {
    (void)load_circuit("c432");
    FAIL() << "expected Error";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unknown builtin circuit 'c432'"), std::string::npos);
    EXPECT_NE(what.find("c17"), std::string::npos);
    EXPECT_NE(what.find("c7552"), std::string::npos);
    EXPECT_NE(what.find("big_dag10k"), std::string::npos);
    EXPECT_NE(what.find("mult64"), std::string::npos);
  }
}

TEST(CircuitLoader, MissingFilePathReportsFileError) {
  try {
    (void)load_circuit("does/not/exist.bench");
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("cannot open"), std::string::npos);
  }
}

TEST(CircuitLoader, LoadsBenchFiles) {
  const std::string path = "circuit_loader_test.bench";
  {
    std::ofstream out(path);
    out << "INPUT(1)\nINPUT(2)\nOUTPUT(3)\n3 = NAND(1, 2)\n";
  }
  const auto nl = load_circuit(path);
  EXPECT_EQ(nl.logic_gate_count(), 1u);
  std::remove(path.c_str());
}

TEST(CircuitLoader, IsBuiltinRejectsNonBuiltins) {
  EXPECT_FALSE(is_builtin_circuit("c432"));
  EXPECT_FALSE(is_builtin_circuit("foo.bench"));
  EXPECT_TRUE(is_builtin_circuit("C6288"));
}

}  // namespace
}  // namespace iddq::netlist
