#include "netlist/levelize.hpp"

#include <gtest/gtest.h>

#include "netlist/builder.hpp"
#include "netlist/gen/c17.hpp"
#include "netlist/gen/random_dag.hpp"

namespace iddq::netlist {
namespace {

TEST(Levelize, TopologicalOrderRespectsEdges) {
  const Netlist nl = gen::make_c17();
  const auto order = topological_order(nl);
  ASSERT_EQ(order.size(), nl.gate_count());
  std::vector<std::size_t> position(nl.gate_count());
  for (std::size_t i = 0; i < order.size(); ++i) position[order[i]] = i;
  for (GateId id = 0; id < nl.gate_count(); ++id)
    for (const GateId f : nl.gate(id).fanins)
      EXPECT_LT(position[f], position[id]);
}

TEST(Levelize, C17Depths) {
  const Netlist nl = gen::make_c17();
  const auto lv = levelize(nl);
  EXPECT_EQ(lv.depth[nl.at("1")], 0u);
  EXPECT_EQ(lv.depth[nl.at("10")], 1u);
  EXPECT_EQ(lv.depth[nl.at("11")], 1u);
  EXPECT_EQ(lv.depth[nl.at("16")], 2u);
  EXPECT_EQ(lv.depth[nl.at("19")], 2u);
  EXPECT_EQ(lv.depth[nl.at("22")], 3u);
  EXPECT_EQ(lv.depth[nl.at("23")], 3u);
  EXPECT_EQ(lv.max_depth, 3u);
}

TEST(Levelize, MinDepthDiffersOnReconvergence) {
  // y's paths: a -> y (short) and a -> m -> y (long).
  NetlistBuilder b("reconv");
  const auto a = b.add_input("a");
  const auto m = b.add_gate(GateKind::kNot, "m", {a});
  const auto y = b.add_gate(GateKind::kNand, "y", {a, m});
  b.mark_output(y);
  const Netlist nl = std::move(b).build();
  const auto lv = levelize(nl);
  EXPECT_EQ(lv.min_depth[y], 1u);
  EXPECT_EQ(lv.depth[y], 2u);
}

TEST(Levelize, IsAcyclicTrueForBuilderOutput) {
  EXPECT_TRUE(is_acyclic(gen::make_c17()));
}

TEST(Levelize, DepthIsMonotoneAlongEdges) {
  const Netlist nl =
      gen::make_random_dag(gen::DagProfile::basic("rand", 150, 12, 3));
  const auto lv = levelize(nl);
  for (GateId id = 0; id < nl.gate_count(); ++id)
    for (const GateId f : nl.gate(id).fanins)
      EXPECT_LT(lv.depth[f], lv.depth[id]);
}

TEST(Levelize, InputsAtDepthZero) {
  const Netlist nl =
      gen::make_random_dag(gen::DagProfile::basic("rand", 80, 8, 5));
  const auto lv = levelize(nl);
  for (const GateId id : nl.primary_inputs()) {
    EXPECT_EQ(lv.depth[id], 0u);
    EXPECT_EQ(lv.min_depth[id], 0u);
  }
}

}  // namespace
}  // namespace iddq::netlist
