#include "netlist/fingerprint.hpp"

#include <gtest/gtest.h>

#include "netlist/builder.hpp"
#include "netlist/gen/c17.hpp"
#include "netlist/gen/random_dag.hpp"

namespace iddq::netlist {
namespace {

Netlist tiny(std::string_view name, std::string_view prefix,
             GateKind top_kind = GateKind::kNand, bool extra_output = false) {
  NetlistBuilder b(name);
  const auto i1 = b.add_input(std::string(prefix) + "1");
  const auto i2 = b.add_input(std::string(prefix) + "2");
  const auto g1 =
      b.add_gate(GateKind::kNand, std::string(prefix) + "g1", {i1, i2});
  const auto g2 = b.add_gate(top_kind, std::string(prefix) + "g2", {g1, i2});
  b.mark_output(g2);
  if (extra_output) b.mark_output(g1);
  return std::move(b).build();
}

TEST(StructuralFingerprint, SameCircuitBuiltTwiceMatches) {
  EXPECT_EQ(structural_fingerprint(gen::make_c17()),
            structural_fingerprint(gen::make_c17()));
  const auto profile = gen::DagProfile::basic("fp", 150, 10, 3);
  EXPECT_EQ(structural_fingerprint(gen::make_random_dag(profile)),
            structural_fingerprint(gen::make_random_dag(profile)));
}

TEST(StructuralFingerprint, NamesAreExcluded) {
  // Content-addressing: two structurally identical netlists share cache
  // entries even when every label differs.
  EXPECT_EQ(structural_fingerprint(tiny("a", "x")),
            structural_fingerprint(tiny("b", "y")));
}

TEST(StructuralFingerprint, GateKindChangesHash) {
  EXPECT_NE(structural_fingerprint(tiny("a", "x", GateKind::kNand)),
            structural_fingerprint(tiny("a", "x", GateKind::kNor)));
}

TEST(StructuralFingerprint, OutputSetChangesHash) {
  EXPECT_NE(structural_fingerprint(tiny("a", "x", GateKind::kNand, false)),
            structural_fingerprint(tiny("a", "x", GateKind::kNand, true)));
}

TEST(StructuralFingerprint, WiringChangesHash) {
  NetlistBuilder b("w");
  const auto i1 = b.add_input("1");
  const auto i2 = b.add_input("2");
  const auto g1 = b.add_gate(GateKind::kNand, "g1", {i1, i2});
  const auto g2 = b.add_gate(GateKind::kNand, "g2", {i1, g1});  // vs {g1, i2}
  b.mark_output(g2);
  EXPECT_NE(structural_fingerprint(std::move(b).build()),
            structural_fingerprint(tiny("a", "x")));
}

TEST(StructuralFingerprint, DistinctCircuitsDiffer) {
  const auto a = gen::make_random_dag(gen::DagProfile::basic("a", 120, 8, 1));
  const auto b = gen::make_random_dag(gen::DagProfile::basic("b", 120, 8, 2));
  EXPECT_NE(structural_fingerprint(a), structural_fingerprint(b));
}

}  // namespace
}  // namespace iddq::netlist
