#include "netlist/stats.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "netlist/gen/c17.hpp"
#include "netlist/gen/iscas_profiles.hpp"

namespace iddq::netlist {
namespace {

TEST(Stats, C17ByHand) {
  const auto s = compute_stats(gen::make_c17());
  EXPECT_EQ(s.inputs, 5u);
  EXPECT_EQ(s.outputs, 2u);
  EXPECT_EQ(s.logic_gates, 6u);
  EXPECT_EQ(s.max_depth, 3u);
  EXPECT_DOUBLE_EQ(s.avg_fanin, 2.0);  // all NAND2
  EXPECT_EQ(s.by_kind[static_cast<std::size_t>(GateKind::kNand)], 6u);
  EXPECT_EQ(s.by_kind[static_cast<std::size_t>(GateKind::kInput)], 5u);
  // Gate 3 drives 10 and 11; gate 16 drives 22 and 23; max fanout = 2.
  EXPECT_EQ(s.max_fanout, 2u);
}

TEST(Stats, KindCountsSumToGateCount) {
  const auto nl = gen::make_iscas_like("c1908");
  const auto s = compute_stats(nl);
  std::size_t sum = 0;
  for (const auto c : s.by_kind) sum += c;
  EXPECT_EQ(sum, nl.gate_count());
}

TEST(Stats, FanoutConservation) {
  // Total fanout endpoints == total fanin endpoints.
  const auto nl = gen::make_iscas_like("c2670");
  std::size_t fanins = 0;
  std::size_t fanouts = 0;
  for (const auto& g : nl.gates()) {
    fanins += g.fanins.size();
    fanouts += g.fanouts.size();
  }
  EXPECT_EQ(fanins, fanouts);
  const auto s = compute_stats(nl);
  EXPECT_NEAR(s.avg_fanout * static_cast<double>(nl.gate_count()),
              static_cast<double>(fanouts), 1e-6);
}

TEST(Stats, PrintIncludesHeadlineNumbers) {
  std::ostringstream os;
  print_stats(os, gen::make_c17());
  const std::string text = os.str();
  EXPECT_NE(text.find("c17"), std::string::npos);
  EXPECT_NE(text.find("5 PI"), std::string::npos);
  EXPECT_NE(text.find("6 gates"), std::string::npos);
  EXPECT_NE(text.find("nand=6"), std::string::npos);
}

}  // namespace
}  // namespace iddq::netlist
