// The three ring properties the cluster relies on (hash_ring.hpp):
// determinism across instances, minimal disruption on node removal, and
// rough spread across virtual nodes. successors() is additionally the
// failover order, so its distinctness and stability are pinned here.
#include "cluster/hash_ring.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "support/hash.hpp"

namespace iddq::cluster {
namespace {

std::uint64_t key_of(std::uint64_t i) {
  Hash64 h;
  h.mix_string("ring-test-key");
  h.mix_u64(i);
  return h.value();
}

TEST(HashRing, OwnerIsIndependentOfInsertionOrder) {
  // Two front-ends configured with the same --backend list in different
  // orders must route identically — placement is a pure function of the
  // node SET and the key.
  HashRing forward(64), reverse(64);
  const std::vector<std::string> nodes{"hosta:9000", "hostb:9000",
                                       "hostc:9000", "hostd:9000"};
  for (const auto& n : nodes) forward.add(n);
  for (auto it = nodes.rbegin(); it != nodes.rend(); ++it) reverse.add(*it);

  for (std::uint64_t i = 0; i < 1000; ++i) {
    const std::uint64_t key = key_of(i);
    EXPECT_EQ(forward.owner(key), reverse.owner(key)) << "key " << i;
    EXPECT_EQ(forward.successors(key), reverse.successors(key));
  }
}

TEST(HashRing, DuplicateAddIsANoOp) {
  HashRing ring(16);
  ring.add("a");
  ring.add("b");
  ring.add("a");
  EXPECT_EQ(ring.size(), 2u);
  HashRing plain(16);
  plain.add("a");
  plain.add("b");
  for (std::uint64_t i = 0; i < 200; ++i)
    EXPECT_EQ(ring.owner(key_of(i)), plain.owner(key_of(i)));
}

TEST(HashRing, RemovalRemapsOnlyTheRemovedNodesKeys) {
  // The consistent-hashing property itself: killing hostc moves hostc's
  // keys to their successors and NOBODY else's — warm caches on the
  // surviving backends stay warm.
  HashRing ring(64);
  for (const char* n : {"hosta:9000", "hostb:9000", "hostc:9000"})
    ring.add(n);

  std::map<std::uint64_t, std::string> before;
  for (std::uint64_t i = 0; i < 2000; ++i)
    before[key_of(i)] = ring.owner(key_of(i));

  ring.remove("hostc:9000");
  std::size_t moved = 0;
  for (const auto& [key, owner] : before) {
    const std::string& now = ring.owner(key);
    if (owner == "hostc:9000") {
      EXPECT_NE(now, "hostc:9000");
      ++moved;
    } else {
      EXPECT_EQ(now, owner) << "survivor key remapped";
    }
  }
  EXPECT_GT(moved, 0u);  // hostc owned a nonempty share
}

TEST(HashRing, MoreVirtualNodesSmoothTheSpread) {
  // The replicas knob's contract: raising virtual nodes tightens the
  // worst-case per-backend share toward fair. Single-point arcs (one
  // replica) can be wildly lopsided; at 512 replicas every backend's
  // share of 9000 keys sits inside a generous [1/6, 1/2] band.
  const std::vector<std::string> nodes{"hosta:9000", "hostb:9000",
                                       "hostc:9000"};
  const std::size_t keys = 9000;
  auto worst_share = [&](std::size_t replicas) {
    HashRing ring(replicas);
    for (const auto& n : nodes) ring.add(n);
    std::map<std::string, std::size_t> share;
    for (std::uint64_t i = 0; i < keys; ++i) ++share[ring.owner(key_of(i))];
    std::size_t worst = 0;
    for (const auto& n : nodes) worst = std::max(worst, share[n]);
    for (const auto& n : nodes)
      EXPECT_GT(share[n], 0u) << n << " owns nothing at " << replicas;
    return worst;
  };
  const std::size_t coarse = worst_share(1);
  const std::size_t fine = worst_share(512);
  EXPECT_LE(fine, coarse);
  EXPECT_LT(fine, keys / 2) << "a backend owns over half the keys";
  EXPECT_GT(fine, keys / 6) << "suspiciously perfect spread";
}

TEST(HashRing, SuccessorsListEveryNodeOnceOwnerFirst) {
  HashRing ring(32);
  for (const char* n : {"a:1", "b:1", "c:1", "d:1"}) ring.add(n);
  for (std::uint64_t i = 0; i < 200; ++i) {
    const std::uint64_t key = key_of(i);
    const auto order = ring.successors(key);
    ASSERT_EQ(order.size(), ring.size());
    EXPECT_EQ(order.front(), ring.owner(key));
    const std::set<std::string> distinct(order.begin(), order.end());
    EXPECT_EQ(distinct.size(), order.size()) << "duplicate failover target";
  }
}

TEST(HashRing, SuccessorChainSurvivesRemovals) {
  // Failover consistency: the ring the client retries on (minus the dead
  // node) ranks the remaining candidates in the same relative order the
  // full ring did — the "next" backend after a death is the one the
  // original successors() already named.
  HashRing full(64), reduced(64);
  for (const char* n : {"a:1", "b:1", "c:1"}) full.add(n);
  for (const char* n : {"a:1", "b:1"}) reduced.add(n);

  for (std::uint64_t i = 0; i < 500; ++i) {
    const std::uint64_t key = key_of(i);
    auto want = full.successors(key);
    want.erase(std::remove(want.begin(), want.end(), "c:1"), want.end());
    EXPECT_EQ(reduced.successors(key), want) << "key " << i;
  }
}

}  // namespace
}  // namespace iddq::cluster
