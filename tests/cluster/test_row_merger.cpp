// RowMerger is the byte-identity half of the determinism contract
// (row_merger.hpp): envelope fields are rewritten, payload bytes are
// forwarded untouched, and failover replays collapse to exactly one copy
// of every row and lifecycle step.
#include "cluster/row_merger.hpp"

#include <gtest/gtest.h>

#include <optional>
#include <string>

#include "support/json.hpp"

namespace iddq::cluster {
namespace {

/// Parses `raw` (a backend event line) and forwards it for `shard`.
RowMerger::Forward feed(RowMerger& merger, std::size_t shard,
                        const std::string& raw) {
  const auto event = json::JsonValue::parse(raw);
  EXPECT_TRUE(event.has_value()) << raw;
  return merger.forward(shard, *event, raw);
}

TEST(RowMerger, RewritesEnvelopeAndForwardsPayloadBytesVerbatim) {
  RowMerger merger("sweep", {"ca", "cb"});
  // The payload carries 17-significant-digit doubles; the merger must not
  // re-serialize them. Backend ran shard 1 ("cb") as its width-1 job 1
  // under its local submit id "cx-7".
  const std::string payload =
      R"(,"index":0,"method":"evolution","cost":0.12345678901234566,)"
      R"("sensor_area":173.25000000000003})";
  const auto fwd = feed(merger, 1,
                        R"({"event":"row","id":"cx-7","circuit":"cb",)"
                        R"("job":1)" + payload);
  ASSERT_TRUE(fwd.line.has_value());
  EXPECT_EQ(*fwd.line, R"({"event":"row","id":"sweep","circuit":"cb",)"
                       R"("job":2)" + payload);
  EXPECT_FALSE(fwd.became_terminal);
  EXPECT_FALSE(fwd.droppable);
}

TEST(RowMerger, ProgressForwardsAsDroppable) {
  RowMerger merger("s", {"ca"});
  const auto fwd = feed(merger, 0,
                        R"({"event":"progress","id":"cx-0","circuit":"ca",)"
                        R"("job":1,"generation":5})");
  ASSERT_TRUE(fwd.line.has_value());
  EXPECT_TRUE(fwd.droppable);
  EXPECT_EQ(*fwd.line, R"({"event":"progress","id":"s","circuit":"ca",)"
                       R"("job":1,"generation":5})");
}

TEST(RowMerger, RetryLifecycleIsSuppressedAndRowsDedupe) {
  // A shard dies after streaming row 0; the retry re-announces
  // queued/running and re-streams row 0 before producing row 1. The
  // client must see each lifecycle step and each row exactly once.
  RowMerger merger("s", {"ca"});
  EXPECT_TRUE(feed(merger, 0, R"({"event":"queued","id":"cx-0",)"
                              R"("circuit":"ca","job":1})")
                  .line.has_value());
  EXPECT_TRUE(feed(merger, 0, R"({"event":"running","id":"cx-0",)"
                              R"("circuit":"ca","job":1})")
                  .line.has_value());
  EXPECT_TRUE(feed(merger, 0, R"({"event":"row","id":"cx-0","circuit":"ca",)"
                              R"("job":1,"index":0,"cost":1.5})")
                  .line.has_value());

  merger.reopen(0);  // backend died; shard redispatched

  EXPECT_FALSE(feed(merger, 0, R"({"event":"queued","id":"cx-1",)"
                               R"("circuit":"ca","job":1})")
                   .line.has_value());
  EXPECT_FALSE(feed(merger, 0, R"({"event":"running","id":"cx-1",)"
                               R"("circuit":"ca","job":1})")
                   .line.has_value());
  EXPECT_FALSE(feed(merger, 0, R"({"event":"row","id":"cx-1","circuit":"ca",)"
                               R"("job":1,"index":0,"cost":1.5})")
                   .line.has_value())
      << "replayed row 0 must dedupe";
  const auto row1 = feed(merger, 0,
                         R"({"event":"row","id":"cx-1","circuit":"ca",)"
                         R"("job":1,"index":1,"cost":2.5})");
  ASSERT_TRUE(row1.line.has_value());

  const auto done = feed(merger, 0, R"({"event":"done","id":"cx-1",)"
                                    R"("circuit":"ca","job":1,"rows":2})");
  ASSERT_TRUE(done.line.has_value());
  EXPECT_TRUE(done.became_terminal);
  EXPECT_TRUE(merger.shard_terminal(0));
  EXPECT_TRUE(merger.all_terminal());

  const auto sweep_done = merger.take_sweep_done();
  ASSERT_TRUE(sweep_done.has_value());
  EXPECT_EQ(*sweep_done, R"({"event":"sweep_done","id":"s","ok":1,)"
                         R"("failed":0,"cancelled":0})");
  EXPECT_FALSE(merger.take_sweep_done().has_value()) << "exactly once";
}

TEST(RowMerger, StaleEventsAfterTerminalAreDropped) {
  // A slow first backend may still flush events after the retry already
  // finished the shard elsewhere; nothing of that may leak.
  RowMerger merger("s", {"ca"});
  EXPECT_TRUE(feed(merger, 0, R"({"event":"done","id":"cx-0",)"
                              R"("circuit":"ca","job":1,"rows":0})")
                  .became_terminal);
  const auto stale = feed(merger, 0,
                          R"({"event":"row","id":"cx-0","circuit":"ca",)"
                          R"("job":1,"index":0,"cost":1.0})");
  EXPECT_FALSE(stale.line.has_value());
  EXPECT_FALSE(stale.became_terminal);
}

TEST(RowMerger, BackendBookkeepingNeverForwards) {
  RowMerger merger("s", {"ca"});
  EXPECT_FALSE(feed(merger, 0, R"({"event":"accepted","id":"cx-0",)"
                               R"("jobs":1})")
                   .line.has_value());
  EXPECT_FALSE(feed(merger, 0, R"({"event":"sweep_done","id":"cx-0",)"
                               R"("ok":1,"failed":0,"cancelled":0})")
                   .line.has_value());
  EXPECT_FALSE(merger.shard_terminal(0))
      << "the backend's sweep_done is not the shard's terminal";
}

TEST(RowMerger, FailShardSynthesizesTerminalOnce) {
  RowMerger merger("s", {"ca", "cb"});
  const std::string failed =
      merger.fail_shard(0, "no reachable backend after 3 attempts");
  EXPECT_EQ(failed, R"({"event":"failed","id":"s","circuit":"ca","job":1,)"
                    R"("error":"no reachable backend after 3 attempts"})");
  EXPECT_EQ(merger.fail_shard(0, "again"), "");  // already terminal
  EXPECT_FALSE(merger.all_terminal());

  const std::string cancelled = merger.cancel_shard(1);
  EXPECT_EQ(cancelled,
            R"({"event":"cancelled","id":"s","circuit":"cb","job":2})");
  EXPECT_TRUE(merger.all_terminal());
  const auto sweep_done = merger.take_sweep_done();
  ASSERT_TRUE(sweep_done.has_value());
  EXPECT_EQ(*sweep_done, R"({"event":"sweep_done","id":"s","ok":0,)"
                         R"("failed":1,"cancelled":1})");
}

TEST(RowMerger, LateStaleTerminalAfterSuccessorCompletionIsSuppressed) {
  // The chaos-leg shape (docs/robustness.md): the first backend stalls
  // mid-shard, the retry finishes the shard on a successor, and THEN the
  // stalled backend's buffered terminal finally flushes. That stale
  // terminal must neither forward nor double-count the shard.
  RowMerger merger("s", {"ca"});
  EXPECT_TRUE(feed(merger, 0, R"({"event":"running","id":"cx-0",)"
                              R"("circuit":"ca","job":1})")
                  .line.has_value());
  merger.reopen(0);  // presumed dead; shard redispatched

  EXPECT_TRUE(feed(merger, 0, R"({"event":"row","id":"cx-1","circuit":"ca",)"
                              R"("job":1,"index":0,"cost":1.5})")
                  .line.has_value());
  EXPECT_TRUE(feed(merger, 0, R"({"event":"done","id":"cx-1",)"
                              R"("circuit":"ca","job":1,"rows":1})")
                  .became_terminal);

  // The stalled first attempt wakes up and flushes its own ending.
  const auto stale_failed =
      feed(merger, 0, R"({"event":"failed","id":"cx-0","circuit":"ca",)"
                      R"("job":1,"error":"connection torn down"})");
  EXPECT_FALSE(stale_failed.line.has_value());
  EXPECT_FALSE(stale_failed.became_terminal);
  const auto stale_row =
      feed(merger, 0, R"({"event":"row","id":"cx-0","circuit":"ca",)"
                      R"("job":1,"index":0,"cost":1.5})");
  EXPECT_FALSE(stale_row.line.has_value());

  // The sweep verdict reflects only the successor's outcome.
  const auto sweep_done = merger.take_sweep_done();
  ASSERT_TRUE(sweep_done.has_value());
  EXPECT_EQ(*sweep_done, R"({"event":"sweep_done","id":"s","ok":1,)"
                         R"("failed":0,"cancelled":0})");
}

TEST(RowMerger, SecondFailedForTheSameShardCountsOnce) {
  // Two backends can both end up failing the same shard (the retry's
  // target dies too, or a stale failure races the synthesized one); the
  // client must see one failed terminal and a failed:1 verdict.
  RowMerger merger("s", {"ca"});
  const auto first =
      feed(merger, 0, R"({"event":"failed","id":"cx-0","circuit":"ca",)"
                      R"("job":1,"error":"loader exploded"})");
  ASSERT_TRUE(first.line.has_value());
  EXPECT_TRUE(first.became_terminal);

  const auto second =
      feed(merger, 0, R"({"event":"failed","id":"cx-1","circuit":"ca",)"
                      R"("job":1,"error":"loader exploded again"})");
  EXPECT_FALSE(second.line.has_value());
  EXPECT_FALSE(second.became_terminal);
  EXPECT_EQ(merger.fail_shard(0, "synthesized too"), "");

  EXPECT_TRUE(merger.all_terminal());
  const auto sweep_done = merger.take_sweep_done();
  ASSERT_TRUE(sweep_done.has_value());
  EXPECT_EQ(*sweep_done, R"({"event":"sweep_done","id":"s","ok":0,)"
                         R"("failed":1,"cancelled":0})");
}

}  // namespace
}  // namespace iddq::cluster
