// ShardRouter determinism — the warm-cache affinity story only works if
// two independent front-ends (and the same front-end after a restart)
// compute the same fingerprint, hence the same placement, for the same
// shard (shard_router.hpp).
#include "cluster/shard_router.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

namespace iddq::cluster {
namespace {

HashRing three_backends() {
  HashRing ring(64);
  for (const char* n : {"hosta:9000", "hostb:9000", "hostc:9000"})
    ring.add(n);
  return ring;
}

const std::vector<std::string> kMethods{"evolution", "standard"};

TEST(ShardRouter, FingerprintIsStableAcrossInstances) {
  ShardRouter a(three_backends(), 0x1234);
  ShardRouter b(three_backends(), 0x1234);
  for (const char* circuit : {"c17", "c432", "not_a_real_circuit"}) {
    const auto fa = a.fingerprint(circuit, kMethods, 42, 0);
    EXPECT_EQ(fa, b.fingerprint(circuit, kMethods, 42, 0)) << circuit;
    // Memoized second lookup must agree with the first.
    EXPECT_EQ(fa, a.fingerprint(circuit, kMethods, 42, 0)) << circuit;
    EXPECT_EQ(a.placement(fa), b.placement(fa));
  }
}

TEST(ShardRouter, FingerprintSeparatesTheRunKeyAxes) {
  // Every axis of the run key must move the fingerprint, or repeat
  // sweeps with different parameters would collide onto one backend's
  // cache for no benefit.
  ShardRouter router(three_backends(), 0x1234);
  const auto base = router.fingerprint("c17", kMethods, 42, 0);
  EXPECT_NE(base, router.fingerprint("c432", kMethods, 42, 0));
  EXPECT_NE(base, router.fingerprint("c17", kMethods, 43, 0));
  EXPECT_NE(base, router.fingerprint("c17", kMethods, 42, 500));
  const std::vector<std::string> other{"random"};
  EXPECT_NE(base, router.fingerprint("c17", other, 42, 0));
  ShardRouter other_lib(three_backends(), 0x9999);
  EXPECT_NE(base, other_lib.fingerprint("c17", kMethods, 42, 0));
}

TEST(ShardRouter, UnloadableSpecFallsBackDeterministically) {
  // A spec the front-end cannot load locally (synthetic test circuits,
  // backend-only .bench paths) still routes — by spec-string hash — and
  // does so identically on every router instance.
  ShardRouter a(three_backends(), 7);
  ShardRouter b(three_backends(), 7);
  const auto fa = a.fingerprint("zz_no_such_circuit", kMethods, 1, 0);
  EXPECT_EQ(fa, b.fingerprint("zz_no_such_circuit", kMethods, 1, 0));
  EXPECT_NE(fa, a.fingerprint("zz_other_circuit", kMethods, 1, 0));
  const auto placement = a.placement(fa);
  ASSERT_EQ(placement.size(), 3u);
  EXPECT_EQ(placement, b.placement(fa));
}

TEST(ShardRouter, PlacementIsTheRingFailoverOrder) {
  ShardRouter router(three_backends(), 0xABCD);
  const auto fp = router.fingerprint("c17", kMethods, 42, 0);
  const auto placement = router.placement(fp);
  ASSERT_EQ(placement.size(), 3u);
  EXPECT_EQ(placement.front(), router.ring().owner(fp));
  EXPECT_EQ(placement, router.ring().successors(fp));
}

}  // namespace
}  // namespace iddq::cluster
