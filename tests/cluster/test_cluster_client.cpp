// End-to-end cluster acceptance (ISSUE PR 8): a ClusterClient fanning
// sweeps over real in-process TCP backends (TcpSocketListener +
// JobService + JobProtocolSession — the same stack iddqsyn_server runs)
// must produce a merged stream byte-identical to one direct server,
// through healthy runs, connect-refused endpoints, and a backend killed
// after `accepted` but before its first `row`.
#include "cluster/cluster_client.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cluster/shard_router.hpp"
#include "core/flow_engine.hpp"
#include "core/job_protocol.hpp"
#include "core/job_service.hpp"
#include "library/cell_library.hpp"
#include "library/fingerprint.hpp"
#include "netlist/gen/random_dag.hpp"
#include "support/json.hpp"
#include "support/transport.hpp"

namespace iddq::cluster {
namespace {

netlist::Netlist synthetic_circuit(const std::string& spec) {
  const std::size_t gates = 120 + 40 * (spec.back() - 'a');
  return netlist::gen::make_random_dag(
      netlist::gen::DagProfile::basic(spec, gates, 10, 5));
}

core::FlowEngineConfig quick_config() {
  core::FlowEngineConfig config;
  config.optimizers.es.mu = 3;
  config.optimizers.es.lambda = 3;
  config.optimizers.es.chi = 1;
  config.optimizers.es.max_generations = 10;
  config.optimizers.es.stall_generations = 5;
  config.optimizers.random_samples = 50;
  return config;
}

/// Blocks the victim backend's circuit loader until released, so its
/// shards are provably accepted-but-rowless when the backend dies.
class LoaderGate {
 public:
  void release() {
    {
      const std::scoped_lock lock(mutex_);
      open_ = true;
    }
    cv_.notify_all();
  }
  void wait() {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [this] { return open_; });
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  bool open_ = false;
};

/// One in-process backend: the exact iddqsyn_server serving stack — a TCP
/// listener accepting FdChannel connections, each served by a
/// JobProtocolSession over a shared JobService.
class TestBackend {
 public:
  /// `port` 0 picks an ephemeral port; a fixed port lets a test restart a
  /// killed backend at the same endpoint (breaker half-open re-admission).
  TestBackend(const lib::CellLibrary& library,
              core::JobService::CircuitLoader loader,
              core::FlowEngineConfig flow = quick_config(),
              std::uint16_t port = 0)
      : listener_("127.0.0.1", port), endpoint_(listener_.endpoint()) {
    core::JobServiceConfig config;
    config.workers = 2;
    config.flow = std::move(flow);
    service_ = std::make_unique<core::JobService>(library, std::move(config));
    service_->set_circuit_loader(std::move(loader));
    accept_thread_ = std::thread([this] { accept_loop(); });
  }

  ~TestBackend() {
    kill();
    if (accept_thread_.joinable()) accept_thread_.join();
    for (auto& t : session_threads_)
      if (t.joinable()) t.join();
  }

  [[nodiscard]] const std::string& endpoint() const { return endpoint_; }
  [[nodiscard]] std::uint16_t port() const { return listener_.port(); }
  [[nodiscard]] core::JobService& service() { return *service_; }

  /// Simulates the backend dying: stop accepting and sever every live
  /// session connection (the cluster's readers see EOF).
  void kill() {
    listener_.close();
    const std::scoped_lock lock(mutex_);
    for (const auto& channel : channels_) {
      channel->shutdown_read();
      channel->shutdown_write();
    }
  }

 private:
  void accept_loop() {
    while (auto accepted = listener_.accept()) {
      std::shared_ptr<support::FdChannel> channel = std::move(accepted);
      const std::scoped_lock lock(mutex_);
      channels_.push_back(channel);
      session_threads_.emplace_back([this, channel] {
        core::JobProtocolSession session(*service_, *channel, {});
        (void)session.run();
      });
    }
  }

  support::TcpSocketListener listener_;
  std::string endpoint_;
  std::unique_ptr<core::JobService> service_;
  std::thread accept_thread_;
  std::mutex mutex_;  // channels_ and session_threads_ vs kill()
  std::vector<std::shared_ptr<support::FdChannel>> channels_;
  std::vector<std::thread> session_threads_;
};

/// Thread-safe sink for the cluster's merged stream.
struct Collector {
  std::mutex mutex;
  std::vector<std::string> lines;
  EmitFn fn() {
    return [this](const std::string& line, bool) {
      const std::scoped_lock lock(mutex);
      lines.push_back(line);
    };
  }
  std::vector<std::string> snapshot() {
    const std::scoped_lock lock(mutex);
    return lines;
  }
};

std::string kind_of(const std::string& line) {
  const auto event = json::JsonValue::parse(line);
  return event ? event->get_string("event") : "";
}

/// The must-deliver subset, sorted — progress ticks are droppable (and
/// count-nondeterministic), everything else must arrive exactly once.
/// Sorting removes interleaving: every line is unique per (circuit, kind,
/// index), so sorted byte-equality IS stream equality up to schedule.
std::vector<std::string> must_deliver_sorted(
    const std::vector<std::string>& lines,
    const std::set<std::string>& kinds) {
  std::vector<std::string> out;
  for (const auto& line : lines)
    if (kinds.contains(kind_of(line))) out.push_back(line);
  std::sort(out.begin(), out.end());
  return out;
}

/// Runs `input` through a direct pipe-mode session (no cluster) and
/// returns the raw emitted lines — the golden stream.
std::vector<std::string> direct_stream(core::JobService& service,
                                       const std::string& input) {
  std::istringstream in(input);
  std::ostringstream out;
  support::StreamChannel channel(in, out);
  core::JobProtocolSession session(service, channel, {});
  (void)session.run();
  std::vector<std::string> lines;
  std::istringstream split(out.str());
  std::string line;
  while (std::getline(split, line)) lines.push_back(line);
  return lines;
}

/// Picks `count` distinct loadable specs whose ring owner is (or is not,
/// per `owned`) `endpoint`, at the explicit per-shard seed the request
/// will ship. Deterministic given the endpoints (a local ShardRouter
/// replays exactly the client's placement).
std::vector<std::string> specs_owned_by(ShardRouter& router,
                                        const std::string& endpoint,
                                        bool owned, std::size_t count,
                                        const std::vector<std::string>& methods,
                                        std::uint64_t seed) {
  std::vector<std::string> out;
  for (char a = 'a'; a <= 'z' && out.size() < count; ++a) {
    for (char b = 'a'; b <= 'c' && out.size() < count; ++b) {
      const std::string spec = std::string("c") + a + b;
      const auto fp = router.fingerprint(spec, methods, seed, 0);
      if ((router.placement(fp).front() == endpoint) == owned)
        out.push_back(spec);
    }
  }
  EXPECT_EQ(out.size(), count) << "candidate pool exhausted";
  return out;
}

std::string submit_line(const std::string& id,
                        const std::vector<std::string>& circuits,
                        const std::vector<std::string>& methods,
                        std::uint64_t seed, const std::uint64_t* flat_seed) {
  json::JsonWriter cs(json::JsonWriter::Kind::Array);
  for (const auto& c : circuits) cs.element(std::string_view(c));
  json::JsonWriter ms(json::JsonWriter::Kind::Array);
  for (const auto& m : methods) ms.element(std::string_view(m));
  json::JsonWriter w;
  w.field("op", "submit")
      .field("id", id)
      .field_raw("circuits", std::move(cs).str())
      .field_raw("methods", std::move(ms).str())
      .field("seed", seed);
  if (flat_seed != nullptr) {
    json::JsonWriter seeds(json::JsonWriter::Kind::Array);
    for (std::size_t i = 0; i < circuits.size(); ++i)
      seeds.element(*flat_seed);
    w.field_raw("seeds", std::move(seeds).str());
  }
  return std::move(w).str() + "\n";
}

const std::set<std::string> kAllMustDeliver{
    "queued", "running", "row", "done", "failed", "cancelled", "sweep_done"};
const std::set<std::string> kDataOnly{"row", "done", "failed", "cancelled",
                                      "sweep_done"};

ClusterOptions fast_options() {
  ClusterOptions options;
  options.backoff_ms = 5;
  return options;
}

TEST(ClusterClient, MergedStreamIsByteIdenticalToDirectServer) {
  // The determinism contract, healthy path: 6 shards fanned over 3 TCP
  // backends merge to the byte-exact stream one direct server produces
  // for the same submit — envelopes, 17-digit doubles, sweep_done.
  const auto library = lib::default_library();
  TestBackend b1(library, synthetic_circuit);
  TestBackend b2(library, synthetic_circuit);
  TestBackend b3(library, synthetic_circuit);
  const std::vector<std::string> circuits{"ca", "cb", "cc", "cd", "ce", "cf"};
  const std::vector<std::string> methods{"evolution", "standard"};

  Collector merged;
  {
    ClusterClient client({b1.endpoint(), b2.endpoint(), b3.endpoint()},
                         lib::library_fingerprint(library), fast_options());
    SweepRequest request;
    request.id = "t";
    request.circuits = circuits;
    request.methods = methods;
    request.seed = 42;
    const auto sweep = client.submit_sweep(request, merged.fn());
    sweep->wait();
    EXPECT_TRUE(sweep->finished());
  }

  // Every shard was submitted exactly once, somewhere on the ring.
  EXPECT_EQ(b1.service().submitted() + b2.service().submitted() +
                b3.service().submitted(),
            circuits.size());

  core::JobServiceConfig config;
  config.workers = 2;
  config.flow = quick_config();
  core::JobService direct(library, std::move(config));
  direct.set_circuit_loader(synthetic_circuit);
  const auto golden =
      direct_stream(direct, submit_line("t", circuits, methods, 42, nullptr));

  EXPECT_EQ(must_deliver_sorted(merged.snapshot(), kAllMustDeliver),
            must_deliver_sorted(golden, kAllMustDeliver));
}

TEST(ClusterClient, ConnectRefusedFailsOverToRingSuccessor) {
  // One configured backend is a dead endpoint (bound once, then closed —
  // guaranteed connect-refused). Shards it owns must retry onto the live
  // successor and the data stream must stay byte-identical to direct.
  const auto library = lib::default_library();
  std::string dead_endpoint;
  {
    support::TcpSocketListener dead("127.0.0.1", 0);
    dead_endpoint = dead.endpoint();
  }
  TestBackend live(library, synthetic_circuit);

  const std::vector<std::string> methods{"evolution", "standard"};
  const std::uint64_t seed = 5;
  ClusterOptions options = fast_options();
  ShardRouter replica(
      [&] {
        HashRing ring(options.ring_replicas);
        ring.add(dead_endpoint);
        ring.add(live.endpoint());
        return ring;
      }(),
      lib::library_fingerprint(library));
  auto circuits = specs_owned_by(replica, dead_endpoint, true, 2, methods,
                                 seed);
  const auto live_owned =
      specs_owned_by(replica, dead_endpoint, false, 1, methods, seed);
  circuits.insert(circuits.end(), live_owned.begin(), live_owned.end());

  Collector merged;
  {
    ClusterClient client({dead_endpoint, live.endpoint()},
                         lib::library_fingerprint(library), options);
    SweepRequest request;
    request.id = "r";
    request.circuits = circuits;
    request.methods = methods;
    request.seeds.assign(circuits.size(), seed);
    const auto sweep = client.submit_sweep(request, merged.fn());
    sweep->wait();
  }

  core::JobServiceConfig config;
  config.workers = 2;
  config.flow = quick_config();
  core::JobService direct(library, std::move(config));
  direct.set_circuit_loader(synthetic_circuit);
  const auto golden = direct_stream(
      direct, submit_line("r", circuits, methods, 1, &seed));

  EXPECT_EQ(must_deliver_sorted(merged.snapshot(), kDataOnly),
            must_deliver_sorted(golden, kDataOnly));
  for (const auto& line : merged.snapshot())
    EXPECT_NE(kind_of(line), "failed") << line;
}

TEST(ClusterClient, BackendKilledAfterAcceptedBeforeFirstRowRecovers) {
  // The hard failover edge: the victim backend ACCEPTS its shards (its
  // loader gate guarantees no row was produced), then dies. The shards
  // must re-run on the ring successor and the final data stream must be
  // byte-identical to a direct server — no lost rows, no duplicates.
  const auto library = lib::default_library();
  LoaderGate gate;
  TestBackend healthy(library, synthetic_circuit);
  TestBackend victim(library, [&gate](const std::string& spec) {
    gate.wait();
    return synthetic_circuit(spec);
  });

  const std::vector<std::string> methods{"evolution", "standard"};
  const std::uint64_t seed = 9;
  ClusterOptions options = fast_options();
  ShardRouter replica(
      [&] {
        HashRing ring(options.ring_replicas);
        ring.add(healthy.endpoint());
        ring.add(victim.endpoint());
        return ring;
      }(),
      lib::library_fingerprint(library));
  auto circuits = specs_owned_by(replica, victim.endpoint(), true, 2,
                                 methods, seed);
  const auto healthy_owned =
      specs_owned_by(replica, victim.endpoint(), false, 2, methods, seed);
  circuits.insert(circuits.end(), healthy_owned.begin(), healthy_owned.end());

  Collector merged;
  {
    ClusterClient client({healthy.endpoint(), victim.endpoint()},
                         lib::library_fingerprint(library), options);
    SweepRequest request;
    request.id = "k";
    request.circuits = circuits;
    request.methods = methods;
    request.seeds.assign(circuits.size(), seed);
    const auto sweep = client.submit_sweep(request, merged.fn());

    // Both victim-owned shards were accepted into the victim's service
    // (they cannot progress past the gated loader, so no row exists yet).
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (victim.service().submitted() < 2 &&
           std::chrono::steady_clock::now() < deadline)
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    ASSERT_GE(victim.service().submitted(), 2u)
        << "victim never received its shards";

    victim.kill();
    gate.release();  // let the orphaned backend jobs drain harmlessly
    sweep->wait();
  }

  core::JobServiceConfig config;
  config.workers = 2;
  config.flow = quick_config();
  core::JobService direct(library, std::move(config));
  direct.set_circuit_loader(synthetic_circuit);
  const auto golden = direct_stream(
      direct, submit_line("k", circuits, methods, 1, &seed));

  // Rows and terminals: complete, deduplicated, byte-identical. (The
  // queued/running lifecycle of retried shards is intentionally emitted
  // once, on the first attempt — compare the data events only.)
  EXPECT_EQ(must_deliver_sorted(merged.snapshot(), kDataOnly),
            must_deliver_sorted(golden, kDataOnly));
  for (const auto& line : merged.snapshot())
    EXPECT_NE(kind_of(line), "failed") << line;
}

TEST(ClusterClient, ExhaustedRetriesSynthesizeFailedTerminals) {
  // Nothing listens anywhere: every shard must fail cleanly after
  // max_attempts ring passes — the sweep still completes with a
  // sweep_done, never hangs.
  const auto library = lib::default_library();
  std::string dead1, dead2;
  {
    support::TcpSocketListener a("127.0.0.1", 0);
    support::TcpSocketListener b("127.0.0.1", 0);
    dead1 = a.endpoint();
    dead2 = b.endpoint();
  }
  ClusterOptions options;
  options.max_attempts = 2;
  options.backoff_ms = 1;
  ClusterClient client({dead1, dead2}, 0x1234, options);

  Collector merged;
  SweepRequest request;
  request.id = "x";
  request.circuits = {"ca", "cb"};
  const auto sweep = client.submit_sweep(request, merged.fn());
  sweep->wait();

  const auto lines = merged.snapshot();
  std::size_t failed = 0;
  for (const auto& line : lines) {
    if (kind_of(line) != "failed") continue;
    ++failed;
    EXPECT_NE(line.find("no reachable backend after 2 attempts"),
              std::string::npos)
        << line;
  }
  EXPECT_EQ(failed, 2u);
  ASSERT_FALSE(lines.empty());
  EXPECT_EQ(lines.back(),
            R"({"event":"sweep_done","id":"x","ok":0,"failed":2,)"
            R"("cancelled":0})");
}

TEST(ClusterClient, StatsAndPingAggregateAcrossBackends) {
  const auto library = lib::default_library();
  TestBackend b1(library, synthetic_circuit);
  TestBackend b2(library, synthetic_circuit);
  ClusterClient client({b1.endpoint(), b2.endpoint()},
                       lib::library_fingerprint(library), fast_options());

  Collector merged;
  SweepRequest request;
  request.id = "s";
  request.circuits = {"ca", "cb", "cc"};
  request.methods = {"standard"};
  client.submit_sweep(request, merged.fn())->wait();

  const auto stats = json::JsonValue::parse(client.stats_line());
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->get_string("event"), "stats");
  EXPECT_EQ(stats->get_u64("backends"), 2u);
  EXPECT_EQ(stats->get_u64("backends_alive"), 2u);
  EXPECT_EQ(stats->get_u64("workers"), 4u);
  EXPECT_EQ(stats->get_u64("submitted"), 3u);
  EXPECT_EQ(stats->get_u64("completed"), 3u);
  // No backend runs a cache: the aggregate must not invent cache fields.
  EXPECT_EQ(stats->find("cache_entries"), nullptr);
  const json::JsonValue* per_backend = stats->find("per_backend");
  ASSERT_NE(per_backend, nullptr);
  ASSERT_EQ(per_backend->items().size(), 2u);
  for (const auto& entry : per_backend->items())
    EXPECT_TRUE(entry.get_bool("alive", false));

  const auto pong = json::JsonValue::parse(client.ping_line());
  ASSERT_TRUE(pong.has_value());
  EXPECT_EQ(pong->get_string("event"), "pong");
  EXPECT_EQ(pong->get_u64("protocol"), 1u);
  EXPECT_EQ(pong->get_u64("backends"), 2u);
  EXPECT_EQ(pong->get_u64("backends_alive"), 2u);
  EXPECT_EQ(pong->get_u64("workers"), 4u);
}

TEST(ClusterClient, PingReportsDeadBackends) {
  const auto library = lib::default_library();
  std::string dead;
  {
    support::TcpSocketListener listener("127.0.0.1", 0);
    dead = listener.endpoint();
  }
  TestBackend live(library, synthetic_circuit);
  ClusterOptions options = fast_options();
  options.stats_timeout_ms = 500;
  ClusterClient client({dead, live.endpoint()},
                       lib::library_fingerprint(library), options);
  const auto pong = json::JsonValue::parse(client.ping_line());
  ASSERT_TRUE(pong.has_value());
  EXPECT_EQ(pong->get_u64("backends"), 2u);
  EXPECT_EQ(pong->get_u64("backends_alive"), 1u);
  EXPECT_EQ(pong->get_u64("workers"), 2u);
}

/// Polls `pred` until it holds or `limit` elapses. The breaker test is
/// eventual-consistency by nature (heartbeat cadence), so assertions wait
/// generously and only the final state matters.
template <typename Pred>
bool eventually(Pred pred, std::chrono::milliseconds limit) {
  const auto deadline = std::chrono::steady_clock::now() + limit;
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return pred();
}

std::string breaker_state(ClusterClient& client, const std::string& endpoint) {
  const auto stats = json::JsonValue::parse(client.stats_line());
  if (!stats) return "";
  const json::JsonValue* per = stats->find("per_backend");
  if (per == nullptr) return "";
  for (const auto& entry : per->items())
    if (entry.get_string("endpoint") == endpoint)
      return entry.get_string("breaker");
  return "";
}

TEST(ClusterClient, HeartbeatOpensBreakerAndHalfOpenReadmits) {
  // docs/robustness.md, health-checked ring: consecutive failed probes
  // open the victim's breaker (evicting it from the active ring), sweeps
  // keep completing on the survivors, and a restart at the same endpoint
  // is re-admitted through the half-open probe after the cooldown.
  const auto library = lib::default_library();
  TestBackend b1(library, synthetic_circuit);
  auto victim = std::make_unique<TestBackend>(library, synthetic_circuit);
  const std::string victim_endpoint = victim->endpoint();
  const std::uint16_t victim_port = victim->port();

  ClusterOptions options = fast_options();
  options.heartbeat_ms = 25;
  options.breaker_threshold = 2;
  options.breaker_cooldown_ms = 50;
  options.stats_timeout_ms = 500;
  ClusterClient client({b1.endpoint(), victim_endpoint},
                       lib::library_fingerprint(library), options);

  ASSERT_EQ(breaker_state(client, victim_endpoint), "closed");

  victim->kill();
  victim.reset();  // releases the port for the restart below
  ASSERT_TRUE(eventually(
      [&] { return breaker_state(client, victim_endpoint) == "open"; },
      std::chrono::seconds(20)));
  const auto opened = json::JsonValue::parse(client.stats_line());
  ASSERT_TRUE(opened.has_value());
  EXPECT_GE(opened->get_u64("breaker_opens"), 1u);

  // Evicted, not erased: a sweep routed while the victim is down lands
  // entirely on the healthy backend and finishes with zero failures.
  Collector merged;
  SweepRequest request;
  request.id = "evicted";
  request.circuits = {"ca", "cb", "cc", "cd"};
  request.methods = {"standard"};
  request.seed = 7;
  client.submit_sweep(request, merged.fn())->wait();
  std::size_t verdicts = 0;
  for (const auto& line : merged.snapshot()) {
    const auto event = json::JsonValue::parse(line);
    if (event && event->get_string("event") == "sweep_done") {
      EXPECT_EQ(event->get_u64("ok"), 4u);
      EXPECT_EQ(event->get_u64("failed"), 0u);
      ++verdicts;
    }
  }
  EXPECT_EQ(verdicts, 1u);

  TestBackend reborn(library, synthetic_circuit, quick_config(), victim_port);
  ASSERT_EQ(reborn.endpoint(), victim_endpoint);
  ASSERT_TRUE(eventually(
      [&] { return breaker_state(client, victim_endpoint) == "closed"; },
      std::chrono::seconds(20)));
  const auto readmitted = json::JsonValue::parse(client.stats_line());
  ASSERT_TRUE(readmitted.has_value());
  EXPECT_GE(readmitted->get_u64("breaker_reopens"), 1u);
}

}  // namespace
}  // namespace iddq::cluster
