#include "sim/iddq_sim.hpp"

#include <gtest/gtest.h>

#include "netlist/gen/c17.hpp"
#include "netlist/gen/random_dag.hpp"
#include "support/rng.hpp"

namespace iddq::sim {
namespace {

struct Fixture {
  netlist::Netlist nl = netlist::gen::make_c17();
  lib::CellLibrary library = lib::default_library();
  IddqSimulator simulator{nl, library, IddqSimConfig{}};

  part::Partition two_module() const {
    return part::Partition::from_groups(
        nl, std::vector<std::vector<netlist::GateId>>{
                {nl.at("10"), nl.at("16"), nl.at("22")},
                {nl.at("11"), nl.at("19"), nl.at("23")}});
  }
};

TEST(IddqSim, FaultFreeCurrentsAreLeakageSums) {
  Fixture f;
  const auto currents =
      f.simulator.fault_free_module_current(f.two_module());
  ASSERT_EQ(currents.size(), 2u);
  // Each module: 3 NAND2 leakages, far below the 1.5 uA threshold.
  for (const double c : currents) {
    EXPECT_GT(c, 0.0);
    EXPECT_LT(c, IddqSimConfig{}.iddq_th_ua);
  }
}

TEST(IddqSim, DetectsActivatedBridge) {
  Fixture f;
  // Bridge gates 10 and 11; with inputs 1=1,3=1,6=0: 10=0, 11=1 -> active.
  Bridge bridge;
  bridge.a = f.nl.at("10");
  bridge.b = f.nl.at("11");
  bridge.r_bridge_kohm = 5.0;  // ~hundreds of uA, far above threshold
  const auto patterns = exhaustive_patterns(f.nl);
  EXPECT_TRUE(f.simulator.detects_bridge(f.two_module(), bridge, patterns));
}

TEST(IddqSim, MissesBridgeWithoutActivation) {
  Fixture f;
  Bridge bridge;
  bridge.a = f.nl.at("10");
  bridge.b = f.nl.at("11");
  bridge.r_bridge_kohm = 5.0;
  // Single pattern where both nets carry the same value: all inputs 0
  // gives 10 = 11 = 1 (NAND of zeros).
  PatternBatch batch;
  batch.pattern_count = 1;
  batch.words.assign(f.nl.primary_inputs().size(), 0);
  const std::vector<PatternBatch> patterns = {batch};
  EXPECT_FALSE(f.simulator.detects_bridge(f.two_module(), bridge, patterns));
}

TEST(IddqSim, MissesHighResistanceBridge) {
  Fixture f;
  Bridge bridge;
  bridge.a = f.nl.at("10");
  bridge.b = f.nl.at("11");
  bridge.r_bridge_kohm = 1.0e7;  // defect current below IDDQ_th
  const auto patterns = exhaustive_patterns(f.nl);
  EXPECT_FALSE(f.simulator.detects_bridge(f.two_module(), bridge, patterns));
}

TEST(IddqSim, DetectsGateOxideShort) {
  Fixture f;
  GateOxideShort s;
  s.gate = f.nl.at("16");
  s.pin = 1;  // driven by gate 11
  s.r_short_kohm = 10.0;
  const auto patterns = exhaustive_patterns(f.nl);
  EXPECT_TRUE(f.simulator.detects_short(f.two_module(), s, patterns));
}

TEST(IddqSim, CoverageCountsDetections) {
  Fixture f;
  Rng rng(13);
  const auto faults = random_faults(f.nl, 20, 10, rng);
  const auto patterns = exhaustive_patterns(f.nl);
  const auto result =
      f.simulator.coverage(f.two_module(), faults, patterns);
  EXPECT_EQ(result.total, 30u);
  EXPECT_GT(result.detected, 0u);
  EXPECT_LE(result.detected, result.total);
  EXPECT_GT(result.coverage(), 0.0);
  EXPECT_LE(result.coverage(), 1.0);
}

TEST(IddqSim, PartitioningRescuesDiscriminability) {
  // The motivating experiment: a large CUT monitored by a single sensor
  // has a fault-free current near/above the threshold, so a small defect
  // disappears in the background leakage; partitioned sensors see it.
  const auto nl = netlist::gen::make_random_dag(
      netlist::gen::DagProfile::basic("big", 3000, 25, 77));
  const auto library = lib::default_library();
  // Threshold chosen between: single-module leakage (above) and
  // per-module leakage of an 8-way split (below).
  IddqSimConfig cfg;
  cfg.iddq_th_ua = 0.45;
  const IddqSimulator simulator(nl, library, cfg);

  std::vector<std::vector<netlist::GateId>> one(1);
  std::vector<std::vector<netlist::GateId>> eight(8);
  std::size_t i = 0;
  for (const auto g : nl.logic_gates()) {
    one[0].push_back(g);
    eight[i++ % 8].push_back(g);
  }
  const auto p1 = part::Partition::from_groups(nl, one);
  const auto p8 = part::Partition::from_groups(nl, eight);

  // Single module: fault-free current alone exceeds the threshold -> the
  // monolithic "sensor" cannot discriminate at all (always FAIL).
  EXPECT_GT(simulator.fault_free_module_current(p1)[0], cfg.iddq_th_ua);
  for (const double c : simulator.fault_free_module_current(p8))
    EXPECT_LT(c, cfg.iddq_th_ua * 0.8);

  // A moderate bridge inside module 0 of the split is detected there.
  Bridge bridge;
  bridge.a = eight[0][0];
  bridge.b = eight[0][1];
  bridge.r_bridge_kohm = 10.0;
  Rng rng(5);
  const auto patterns = random_patterns(nl, 256, rng);
  EXPECT_TRUE(simulator.detects_bridge(p8, bridge, patterns));
}

}  // namespace
}  // namespace iddq::sim
