#include "sim/logic_sim.hpp"

#include <gtest/gtest.h>

#include "netlist/builder.hpp"
#include "netlist/gen/c17.hpp"
#include "support/error.hpp"

namespace iddq::sim {
namespace {

netlist::Netlist all_kinds() {
  netlist::NetlistBuilder b("kinds");
  const auto a = b.add_input("a");
  const auto c = b.add_input("c");
  b.mark_output(b.add_gate(netlist::GateKind::kBuf, "buf", {a}));
  b.mark_output(b.add_gate(netlist::GateKind::kNot, "not", {a}));
  b.mark_output(b.add_gate(netlist::GateKind::kAnd, "and", {a, c}));
  b.mark_output(b.add_gate(netlist::GateKind::kNand, "nand", {a, c}));
  b.mark_output(b.add_gate(netlist::GateKind::kOr, "or", {a, c}));
  b.mark_output(b.add_gate(netlist::GateKind::kNor, "nor", {a, c}));
  b.mark_output(b.add_gate(netlist::GateKind::kXor, "xor", {a, c}));
  b.mark_output(b.add_gate(netlist::GateKind::kXnor, "xnor", {a, c}));
  return std::move(b).build();
}

TEST(LogicSim, AllGateKindsTruthTables) {
  const auto nl = all_kinds();
  const LogicSim sim(nl);
  for (const bool a : {false, true}) {
    for (const bool c : {false, true}) {
      const auto v = sim.run_single({a, c});
      EXPECT_EQ(v[nl.at("buf")], a);
      EXPECT_EQ(v[nl.at("not")], !a);
      EXPECT_EQ(v[nl.at("and")], a && c);
      EXPECT_EQ(v[nl.at("nand")], !(a && c));
      EXPECT_EQ(v[nl.at("or")], a || c);
      EXPECT_EQ(v[nl.at("nor")], !(a || c));
      EXPECT_EQ(v[nl.at("xor")], a != c);
      EXPECT_EQ(v[nl.at("xnor")], a == c);
    }
  }
}

TEST(LogicSim, ThreeInputGates) {
  netlist::NetlistBuilder b("three");
  const auto x = b.add_input("x");
  const auto y = b.add_input("y");
  const auto z = b.add_input("z");
  b.mark_output(b.add_gate(netlist::GateKind::kNand, "n3", {x, y, z}));
  b.mark_output(b.add_gate(netlist::GateKind::kXor, "x3", {x, y, z}));
  const auto nl = std::move(b).build();
  const LogicSim sim(nl);
  for (int p = 0; p < 8; ++p) {
    const bool x_v = p & 1;
    const bool y_v = p & 2;
    const bool z_v = p & 4;
    const auto v = sim.run_single({x_v, y_v, z_v});
    EXPECT_EQ(v[nl.at("n3")], !(x_v && y_v && z_v));
    EXPECT_EQ(v[nl.at("x3")], (x_v != y_v) != z_v);
  }
}

TEST(LogicSim, C17KnownVectors) {
  const auto nl = netlist::gen::make_c17();
  const LogicSim sim(nl);
  // Inputs in declaration order: 1, 2, 3, 6, 7.
  // All zeros: 10 = NAND(0,0)=1, 11=1, 16=NAND(0,1)=1, 19=NAND(1,0)=1,
  // 22=NAND(1,1)=0, 23=NAND(1,1)=0.
  auto v = sim.run_single({false, false, false, false, false});
  EXPECT_FALSE(v[nl.at("22")]);
  EXPECT_FALSE(v[nl.at("23")]);
  // 1=1, 3=1 -> 10=0 -> 22=1 regardless of 16.
  v = sim.run_single({true, false, true, false, false});
  EXPECT_TRUE(v[nl.at("22")]);
}

TEST(LogicSim, WordParallelMatchesSingle) {
  const auto nl = netlist::gen::make_c17();
  const LogicSim sim(nl);
  // 32 patterns packed into one word per input.
  std::vector<PatternWord> words(5);
  for (std::size_t i = 0; i < 5; ++i) words[i] = 0xDEADBEEFCAFEF00Dull >> i;
  const auto packed = sim.run(words);
  for (int lane = 0; lane < 32; ++lane) {
    std::vector<bool> single(5);
    for (std::size_t i = 0; i < 5; ++i) single[i] = (words[i] >> lane) & 1;
    const auto v = sim.run_single(single);
    for (const auto g : nl.logic_gates())
      ASSERT_EQ(v[g], static_cast<bool>((packed[g] >> lane) & 1))
          << "lane " << lane << " gate " << nl.gate(g).name;
  }
}

TEST(LogicSim, InputWordCountMismatchThrows) {
  const auto nl = netlist::gen::make_c17();
  const LogicSim sim(nl);
  std::vector<PatternWord> words(3);
  EXPECT_THROW((void)sim.run(words), Error);
}

}  // namespace
}  // namespace iddq::sim
