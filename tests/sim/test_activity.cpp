#include "sim/activity.hpp"

#include <gtest/gtest.h>

#include "estimators/current_profile.hpp"
#include "library/cell_library.hpp"
#include "netlist/gen/array_cut.hpp"
#include "netlist/gen/c17.hpp"
#include "partition/partition.hpp"
#include "support/rng.hpp"

namespace iddq::sim {
namespace {

std::vector<std::uint32_t> module_map(const netlist::Netlist& nl,
                                      const part::Partition& p) {
  std::vector<std::uint32_t> mof(nl.gate_count(),
                                 static_cast<std::uint32_t>(-1));
  for (const auto g : nl.logic_gates()) mof[g] = p.module_of(g);
  return mof;
}

TEST(Activity, MeasuredNeverExceedsPessimisticEstimate) {
  // The paper's section 3.1 claim: the estimator is an upper bound.
  const auto nl = netlist::gen::make_c17();
  const auto library = lib::default_library();
  const auto cells = lib::bind_cells(nl, library);
  const est::TransitionTimes tt(nl);  // unit grid matches depth-based sim
  const auto p = part::Partition::from_groups(
      nl, std::vector<std::vector<netlist::GateId>>{
              {nl.at("10"), nl.at("16"), nl.at("22")},
              {nl.at("11"), nl.at("19"), nl.at("23")}});
  const auto mof = module_map(nl, p);

  const ActivityAnalyzer analyzer(nl, tt, cells);
  const auto patterns = exhaustive_patterns(nl);
  const auto measured = analyzer.measure(patterns, mof, 2);

  for (std::uint32_t m = 0; m < 2; ++m) {
    const auto estimate =
        est::profile_of(tt, cells, p.module(m)).max_current_ua();
    EXPECT_LE(measured.peak_current_ua[m], estimate + 1e-9);
    EXPECT_GT(measured.peak_current_ua[m], 0.0);  // something does switch
  }
}

TEST(Activity, ArrayCutMeasurementBoundedByStructure) {
  // Column-band modules of the braided array: at most `rows` cells of a
  // module share a time slot, so no measured peak can exceed the estimator
  // and no switching count can exceed the row count.
  const auto cut = netlist::gen::make_array_cut(4, 3);
  const auto& nl = cut.netlist;
  const auto library = lib::default_library();
  const auto cells = lib::bind_cells(nl, library);
  const est::TransitionTimes tt(nl);
  const auto groups = netlist::gen::column_band_partition(cut, 3);
  const auto p = part::Partition::from_groups(nl, groups);
  const auto mof = module_map(nl, p);

  const auto patterns = exhaustive_patterns(nl);  // 4 PIs -> 16 patterns
  const ActivityAnalyzer analyzer(nl, tt, cells);
  const auto measured = analyzer.measure(patterns, mof, 3);

  bool any_activity = false;
  for (std::uint32_t m = 0; m < 3; ++m) {
    const auto estimate =
        est::profile_of(tt, cells, groups[m]).max_current_ua();
    EXPECT_LE(measured.peak_current_ua[m], estimate + 1e-9);
    EXPECT_LE(measured.peak_switching[m], 4u);
    any_activity |= measured.peak_switching[m] > 0;
  }
  EXPECT_TRUE(any_activity);
}

TEST(Activity, NoTogglesNoCurrent) {
  const auto nl = netlist::gen::make_c17();
  const auto library = lib::default_library();
  const auto cells = lib::bind_cells(nl, library);
  const est::TransitionTimes tt(nl);
  std::vector<std::uint32_t> mof = module_map(
      nl, part::Partition::from_groups(
              nl, std::vector<std::vector<netlist::GateId>>{
                      {nl.at("10"), nl.at("11"), nl.at("16"), nl.at("19"),
                       nl.at("22"), nl.at("23")}}));
  // Two identical patterns: nothing toggles.
  PatternBatch batch;
  batch.pattern_count = 2;
  batch.words.assign(nl.primary_inputs().size(), 0b11);
  const ActivityAnalyzer analyzer(nl, tt, cells);
  const auto measured =
      analyzer.measure(std::vector<PatternBatch>{batch}, mof, 1);
  EXPECT_DOUBLE_EQ(measured.peak_current_ua[0], 0.0);
  EXPECT_EQ(measured.peak_switching[0], 0u);
}

TEST(Activity, SingleLaneBatchesAreSkipped) {
  const auto nl = netlist::gen::make_c17();
  const auto library = lib::default_library();
  const auto cells = lib::bind_cells(nl, library);
  const est::TransitionTimes tt(nl);
  const auto mof = module_map(
      nl, part::Partition::from_groups(
              nl, std::vector<std::vector<netlist::GateId>>{
                      {nl.at("10"), nl.at("11"), nl.at("16"), nl.at("19"),
                       nl.at("22"), nl.at("23")}}));
  PatternBatch batch;
  batch.pattern_count = 1;  // no consecutive pair
  batch.words.assign(nl.primary_inputs().size(), 1);
  const ActivityAnalyzer analyzer(nl, tt, cells);
  const auto measured =
      analyzer.measure(std::vector<PatternBatch>{batch}, mof, 1);
  EXPECT_DOUBLE_EQ(measured.peak_current_ua[0], 0.0);
}

}  // namespace
}  // namespace iddq::sim
