#include "sim/patterns.hpp"

#include <gtest/gtest.h>

#include <set>

#include "netlist/gen/c17.hpp"
#include "support/error.hpp"

namespace iddq::sim {
namespace {

TEST(Patterns, RandomPatternsBatchShapes) {
  const auto nl = netlist::gen::make_c17();
  Rng rng(1);
  const auto batches = random_patterns(nl, 130, rng);
  ASSERT_EQ(batches.size(), 3u);
  EXPECT_EQ(batches[0].pattern_count, 64u);
  EXPECT_EQ(batches[1].pattern_count, 64u);
  EXPECT_EQ(batches[2].pattern_count, 2u);
  for (const auto& b : batches)
    EXPECT_EQ(b.words.size(), nl.primary_inputs().size());
}

TEST(Patterns, PartialBatchMasksUnusedLanes) {
  const auto nl = netlist::gen::make_c17();
  Rng rng(2);
  const auto batches = random_patterns(nl, 3, rng);
  ASSERT_EQ(batches.size(), 1u);
  for (const auto w : batches[0].words) EXPECT_EQ(w & ~0x7ull, 0u);
}

TEST(Patterns, RandomPatternsDeterministic) {
  const auto nl = netlist::gen::make_c17();
  Rng a(42);
  Rng b(42);
  const auto ba = random_patterns(nl, 64, a);
  const auto bb = random_patterns(nl, 64, b);
  EXPECT_EQ(ba[0].words, bb[0].words);
}

TEST(Patterns, ExhaustiveCoversAllCombinations) {
  const auto nl = netlist::gen::make_c17();  // 5 inputs -> 32 patterns
  const auto batches = exhaustive_patterns(nl);
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_EQ(batches[0].pattern_count, 32u);
  // Each lane must be a distinct input combination.
  std::set<std::uint32_t> combos;
  for (std::size_t lane = 0; lane < 32; ++lane) {
    std::uint32_t combo = 0;
    for (std::size_t i = 0; i < 5; ++i)
      if ((batches[0].words[i] >> lane) & 1) combo |= 1u << i;
    combos.insert(combo);
  }
  EXPECT_EQ(combos.size(), 32u);
}

TEST(Patterns, ExhaustiveRefusesWideCircuits) {
  const auto nl = netlist::gen::make_c17();
  EXPECT_THROW((void)exhaustive_patterns(nl, 4), Error);
}

TEST(Patterns, ZeroPatternCountRejected) {
  const auto nl = netlist::gen::make_c17();
  Rng rng(1);
  EXPECT_THROW((void)random_patterns(nl, 0, rng), Error);
}

}  // namespace
}  // namespace iddq::sim
