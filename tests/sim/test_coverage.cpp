#include "sim/coverage.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "library/cell_library.hpp"
#include "netlist/gen/c17.hpp"
#include "netlist/gen/random_dag.hpp"
#include "partition/partition.hpp"
#include "sim/iddq_sim.hpp"
#include "support/error.hpp"
#include "support/executor.hpp"

namespace iddq::sim {
namespace {

netlist::Netlist test_circuit() {
  return netlist::gen::make_random_dag(
      netlist::gen::DagProfile::basic("cov", 300, 12, 7));
}

part::Partition round_robin(const netlist::Netlist& nl, std::size_t k) {
  std::vector<std::vector<netlist::GateId>> groups(k);
  std::size_t i = 0;
  for (const auto g : nl.logic_gates()) groups[i++ % k].push_back(g);
  return part::Partition::from_groups(nl, groups);
}

// ---------------------------------------------------------------- spec ---

TEST(FaultModelSpec, ParsesPresets) {
  EXPECT_EQ(FaultModelSpec::parse("mixed").kind, FaultModelSpec::Kind::kMixed);
  EXPECT_EQ(FaultModelSpec::parse("bridges").kind,
            FaultModelSpec::Kind::kBridges);
  EXPECT_EQ(FaultModelSpec::parse(" Shorts ").kind,
            FaultModelSpec::Kind::kShorts);
}

TEST(FaultModelSpec, ParsesExplicitCountsEitherOrder) {
  const auto a = FaultModelSpec::parse("bridges=40,shorts=10");
  const auto b = FaultModelSpec::parse("shorts=10,bridges=40");
  EXPECT_EQ(a.kind, FaultModelSpec::Kind::kExplicit);
  EXPECT_EQ(a.bridges, 40u);
  EXPECT_EQ(a.shorts, 10u);
  // Same canonical spelling => same cache fingerprint.
  EXPECT_EQ(a.canonical(), b.canonical());
  EXPECT_EQ(a.canonical(), "bridges=40,shorts=10");
}

TEST(FaultModelSpec, RejectsMalformedSpecs) {
  EXPECT_THROW((void)FaultModelSpec::parse(""), Error);
  EXPECT_THROW((void)FaultModelSpec::parse("stuck-at"), Error);
  EXPECT_THROW((void)FaultModelSpec::parse("bridges=x"), Error);
  EXPECT_THROW((void)FaultModelSpec::parse("bridges=1,bridges=2"), Error);
  EXPECT_THROW((void)FaultModelSpec::parse("bridges=0,shorts=0"), Error);
}

TEST(FaultModelSpec, PresetCountsScaleWithCircuit) {
  const auto mixed = FaultModelSpec::parse("mixed");
  EXPECT_GT(mixed.bridge_count(1000), mixed.bridge_count(100));
  const auto bridges = FaultModelSpec::parse("bridges");
  EXPECT_EQ(bridges.short_count(1000), 0u);
  const auto explicit_spec = FaultModelSpec::parse("bridges=17,shorts=3");
  EXPECT_EQ(explicit_spec.bridge_count(1000000), 17u);
  EXPECT_EQ(explicit_spec.short_count(4), 3u);
}

// -------------------------------------------------------------- engine ---

TEST(CoverageEngine, MatchesIddqSimulatorOnSharedSuite) {
  // The engine's precomputed-values fast path must agree fault-for-fault
  // with the reference simulator when both see the same faults and
  // patterns.
  const auto nl = test_circuit();
  const auto library = lib::default_library();
  const auto p = round_robin(nl, 4);

  CoverageConfig cc;
  cc.patterns = 128;
  Rng pat_rng(99);
  auto patterns = random_patterns(nl, 128, pat_rng);
  const CoverageEngine engine(nl, library, cc, patterns);
  const auto report = engine.score(p);

  const IddqSimulator simulator(nl, library, cc.sim);
  const auto reference = simulator.coverage(p, engine.faults(), patterns);
  EXPECT_EQ(report.faults_total, reference.total);
  EXPECT_EQ(report.faults_detected, reference.detected);
  std::size_t i = 0;
  for (const auto& f : engine.faults().bridges)
    EXPECT_EQ(report.detected[i++],
              simulator.detects_bridge(p, f, patterns));
  for (const auto& f : engine.faults().shorts)
    EXPECT_EQ(report.detected[i++], simulator.detects_short(p, f, patterns));
}

TEST(CoverageEngine, ReportInvariants) {
  const auto nl = test_circuit();
  const auto library = lib::default_library();
  CoverageConfig cc;
  cc.patterns = 64;
  const CoverageEngine engine(nl, library, cc);
  const auto report = engine.score(round_robin(nl, 3));

  EXPECT_EQ(report.faults_total, engine.faults().size());
  EXPECT_EQ(report.detected.size(), report.faults_total);
  EXPECT_LE(report.faults_detected, report.faults_total);
  std::size_t flagged = 0;
  for (const auto d : report.detected) flagged += d ? 1 : 0;
  EXPECT_EQ(flagged, report.faults_detected);
  ASSERT_EQ(report.modules.size(), 3u);
  for (const auto& m : report.modules) EXPECT_LE(m.detected, m.observable);
  // Minimization off: the suite is the suite.
  EXPECT_EQ(report.patterns_minimized, report.patterns_supplied);
  EXPECT_TRUE(report.selected_patterns.empty());
}

TEST(CoverageEngine, ByteIdenticalAcrossPoolSizes) {
  const auto nl = test_circuit();
  const auto library = lib::default_library();
  CoverageConfig cc;
  cc.patterns = 96;
  cc.minimize = true;
  const CoverageEngine engine(nl, library, cc);
  const auto p = round_robin(nl, 5);

  const auto serial = engine.score(p, nullptr);
  for (const std::size_t threads : {1u, 2u, 8u}) {
    support::ExecutorPool pool(threads);
    const auto parallel = engine.score(p, &pool);
    EXPECT_EQ(parallel.faults_detected, serial.faults_detected);
    EXPECT_EQ(parallel.detected, serial.detected);
    EXPECT_EQ(parallel.selected_patterns, serial.selected_patterns);
    for (std::size_t m = 0; m < serial.modules.size(); ++m) {
      EXPECT_EQ(parallel.modules[m].observable, serial.modules[m].observable);
      EXPECT_EQ(parallel.modules[m].detected, serial.modules[m].detected);
    }
  }
}

TEST(CoverageEngine, DeterministicAcrossConstructions) {
  const auto nl = test_circuit();
  const auto library = lib::default_library();
  CoverageConfig cc;
  cc.patterns = 64;
  cc.seed = 5;
  const CoverageEngine a(nl, library, cc);
  const CoverageEngine b(nl, library, cc);
  EXPECT_EQ(a.faults().size(), b.faults().size());
  const auto p = round_robin(nl, 4);
  const auto ra = a.score(p);
  const auto rb = b.score(p);
  EXPECT_EQ(ra.detected, rb.detected);

  // A different seed samples a different population.
  cc.seed = 6;
  const CoverageEngine c(nl, library, cc);
  const auto rc = c.score(p);
  EXPECT_TRUE(rc.detected != ra.detected ||
              rc.faults_detected != ra.faults_detected ||
              c.faults().bridges.size() != a.faults().bridges.size() ||
              c.faults().bridges[0].a != a.faults().bridges[0].a);
}

// Repack the selected global pattern indices (batch * 64 + lane) into a
// fresh batch list, the way a tester would persist the compacted suite.
std::vector<PatternBatch> select_suite(
    const std::vector<PatternBatch>& batches,
    const std::vector<std::uint32_t>& selected) {
  std::vector<PatternBatch> out;
  const std::size_t inputs = batches.empty() ? 0 : batches[0].words.size();
  for (std::size_t i = 0; i < selected.size(); ++i) {
    if (i % 64 == 0) {
      out.emplace_back();
      out.back().words.assign(inputs, 0);
      out.back().pattern_count = 0;
    }
    const std::size_t src_batch = selected[i] / 64;
    const std::size_t src_lane = selected[i] % 64;
    const std::size_t dst_lane = i % 64;
    for (std::size_t w = 0; w < inputs; ++w)
      out.back().words[w] |=
          ((batches[src_batch].words[w] >> src_lane) & 1u) << dst_lane;
    ++out.back().pattern_count;
  }
  return out;
}

TEST(CoverageEngine, MinimizedSuiteDetectsSameFaults) {
  // The set-cover invariant of the ISSUE: minimization may shrink the
  // suite, never the coverage.
  const auto nl = test_circuit();
  const auto library = lib::default_library();
  const auto p = round_robin(nl, 4);

  CoverageConfig cc;
  cc.patterns = 256;
  cc.minimize = true;
  Rng pat_rng(17);
  auto patterns = random_patterns(nl, 256, pat_rng);
  const CoverageEngine engine(nl, library, cc, patterns);
  const auto full = engine.score(p);
  ASSERT_GT(full.faults_detected, 0u);
  EXPECT_LE(full.patterns_minimized, full.patterns_supplied);
  EXPECT_EQ(full.selected_patterns.size(), full.patterns_minimized);

  // Selected indices must be unique and in range.
  std::set<std::uint32_t> unique(full.selected_patterns.begin(),
                                 full.selected_patterns.end());
  EXPECT_EQ(unique.size(), full.selected_patterns.size());
  for (const auto idx : full.selected_patterns)
    EXPECT_LT(idx, engine.pattern_count());

  // Re-score with ONLY the selected patterns: identical fault set.
  cc.minimize = false;
  const CoverageEngine compact(
      nl, library, cc, select_suite(patterns, full.selected_patterns));
  const auto re = compact.score(p);
  EXPECT_EQ(re.faults_detected, full.faults_detected);
  EXPECT_EQ(re.detected, full.detected);
}

TEST(CoverageEngine, SaturatedSensorDetectsNothing) {
  // Threshold below the fault-free leakage: every sensor fails good
  // circuits, so no defect is discriminable (paper section 1).
  const auto nl = test_circuit();
  const auto library = lib::default_library();
  CoverageConfig cc;
  cc.patterns = 64;
  cc.minimize = true;
  cc.sim.iddq_th_ua = 1e-9;
  const CoverageEngine engine(nl, library, cc);
  const auto report = engine.score(round_robin(nl, 2));
  EXPECT_EQ(report.faults_detected, 0u);
  EXPECT_EQ(report.patterns_minimized, 0u);
  for (const auto& m : report.modules) EXPECT_EQ(m.detected, 0u);
}

TEST(CoverageEngine, CollapsedFaultListHasNoDuplicates) {
  const auto nl = netlist::gen::make_c17();
  const auto library = lib::default_library();
  CoverageConfig cc;
  cc.fault_model = FaultModelSpec::parse("bridges=64,shorts=32");
  cc.patterns = 32;
  const CoverageEngine engine(nl, library, cc);
  // c17 has 6 logic gates: 64 sampled bridges collapse hard.
  std::set<std::pair<netlist::GateId, netlist::GateId>> pairs;
  for (const auto& f : engine.faults().bridges) {
    EXPECT_LT(f.a, f.b);  // normalized order, no self-bridges
    pairs.insert({f.a, f.b});
  }
  EXPECT_LE(engine.faults().bridges.size(), 64u);
}

}  // namespace
}  // namespace iddq::sim
