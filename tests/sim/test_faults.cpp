#include "sim/faults.hpp"

#include <gtest/gtest.h>

#include "netlist/gen/c17.hpp"
#include "netlist/gen/random_dag.hpp"
#include "support/error.hpp"

namespace iddq::sim {
namespace {

TEST(Faults, RandomFaultsRespectCounts) {
  const auto nl = netlist::gen::make_random_dag(
      netlist::gen::DagProfile::basic("f", 200, 12, 1));
  Rng rng(3);
  const auto faults = random_faults(nl, 40, 25, rng);
  EXPECT_EQ(faults.bridges.size(), 40u);
  EXPECT_EQ(faults.shorts.size(), 25u);
  EXPECT_EQ(faults.size(), 65u);
}

TEST(Faults, BridgesConnectDistinctLogicGates) {
  const auto nl = netlist::gen::make_random_dag(
      netlist::gen::DagProfile::basic("f", 150, 10, 5));
  Rng rng(7);
  const auto faults = random_faults(nl, 60, 0, rng);
  for (const auto& f : faults.bridges) {
    EXPECT_NE(f.a, f.b);
    EXPECT_TRUE(netlist::is_logic(nl.gate(f.a).kind));
    EXPECT_TRUE(netlist::is_logic(nl.gate(f.b).kind));
    EXPECT_GT(f.r_bridge_kohm, 0.0);
  }
}

TEST(Faults, ShortsReferenceValidPins) {
  const auto nl = netlist::gen::make_c17();
  Rng rng(11);
  const auto faults = random_faults(nl, 0, 30, rng);
  for (const auto& f : faults.shorts) {
    EXPECT_TRUE(netlist::is_logic(nl.gate(f.gate).kind));
    EXPECT_LT(f.pin, nl.gate(f.gate).fanins.size());
  }
}

TEST(Faults, Deterministic) {
  const auto nl = netlist::gen::make_c17();
  Rng a(9);
  Rng b(9);
  const auto fa = random_faults(nl, 10, 10, a);
  const auto fb = random_faults(nl, 10, 10, b);
  for (std::size_t i = 0; i < fa.bridges.size(); ++i) {
    EXPECT_EQ(fa.bridges[i].a, fb.bridges[i].a);
    EXPECT_EQ(fa.bridges[i].b, fb.bridges[i].b);
  }
}

TEST(Faults, BridgeCurrentOhmsLaw) {
  Bridge f;
  f.r_bridge_kohm = 5.0;
  // 5 V across 5 + 2.5 + 2.5 kOhm = 500 uA.
  EXPECT_NEAR(bridge_current_ua(f, 5000.0, 2.5, 2.5), 500.0, 1e-9);
}

TEST(Faults, BridgeCurrentDecreasesWithResistance) {
  Bridge weak;
  weak.r_bridge_kohm = 50.0;
  Bridge strong;
  strong.r_bridge_kohm = 0.5;
  EXPECT_GT(bridge_current_ua(strong, 5000.0, 2.0, 2.0),
            bridge_current_ua(weak, 5000.0, 2.0, 2.0));
}

TEST(Faults, ShortCurrentOhmsLaw) {
  GateOxideShort f;
  f.r_short_kohm = 8.0;
  EXPECT_NEAR(short_current_ua(f, 5000.0, 2.0), 500.0, 1e-9);
}

TEST(Faults, CurrentsRejectNonPositiveVdd) {
  Bridge f;
  EXPECT_THROW((void)bridge_current_ua(f, 0.0, 1.0, 1.0), Error);
  GateOxideShort s;
  EXPECT_THROW((void)short_current_ua(s, -5.0, 1.0), Error);
}

Bridge make_bridge(netlist::GateId a, netlist::GateId b, double r) {
  Bridge f;
  f.a = a;
  f.b = b;
  f.r_bridge_kohm = r;
  return f;
}

GateOxideShort make_short(netlist::GateId g, std::size_t pin, double r) {
  GateOxideShort f;
  f.gate = g;
  f.pin = pin;
  f.r_short_kohm = r;
  return f;
}

TEST(Faults, CollapseMergesEndpointOrder) {
  // (a, b) and (b, a) at the same resistance are the same physical
  // defect; endpoint order is a sampling artifact.
  FaultList faults;
  faults.bridges = {make_bridge(3, 7, 2.0), make_bridge(7, 3, 2.0)};
  FaultCollapseStats stats;
  const auto collapsed = collapse_faults(faults, &stats);
  ASSERT_EQ(collapsed.bridges.size(), 1u);
  EXPECT_EQ(collapsed.bridges[0].a, 3u);
  EXPECT_EQ(collapsed.bridges[0].b, 7u);
  EXPECT_EQ(stats.dropped_bridges, 1u);
  EXPECT_EQ(stats.dropped_shorts, 0u);
}

TEST(Faults, CollapseKeepsDistinctResistances) {
  // Same node pair, different resistance: different defect current,
  // different detectability -- not equivalent.
  FaultList faults;
  faults.bridges = {make_bridge(3, 7, 2.0), make_bridge(3, 7, 2.5)};
  const auto collapsed = collapse_faults(faults);
  EXPECT_EQ(collapsed.bridges.size(), 2u);
}

TEST(Faults, CollapseDropsSelfBridges) {
  FaultList faults;
  faults.bridges = {make_bridge(4, 4, 1.0), make_bridge(4, 5, 1.0)};
  FaultCollapseStats stats;
  const auto collapsed = collapse_faults(faults, &stats);
  ASSERT_EQ(collapsed.bridges.size(), 1u);
  EXPECT_EQ(collapsed.bridges[0].b, 5u);
  EXPECT_EQ(stats.dropped_bridges, 1u);
}

TEST(Faults, CollapsePreservesFirstOccurrenceOrder) {
  FaultList faults;
  faults.bridges = {make_bridge(9, 2, 1.0), make_bridge(1, 5, 1.0),
                    make_bridge(2, 9, 1.0), make_bridge(0, 8, 1.0)};
  const auto collapsed = collapse_faults(faults);
  ASSERT_EQ(collapsed.bridges.size(), 3u);
  // Normalized endpoints, in the order each pair first appeared.
  EXPECT_EQ(collapsed.bridges[0].a, 2u);
  EXPECT_EQ(collapsed.bridges[0].b, 9u);
  EXPECT_EQ(collapsed.bridges[1].a, 1u);
  EXPECT_EQ(collapsed.bridges[2].a, 0u);
}

TEST(Faults, CollapseDedupesShortsExactly) {
  FaultList faults;
  faults.shorts = {make_short(2, 0, 4.0), make_short(2, 0, 4.0),
                   make_short(2, 1, 4.0), make_short(2, 0, 4.5)};
  FaultCollapseStats stats;
  const auto collapsed = collapse_faults(faults, &stats);
  EXPECT_EQ(collapsed.shorts.size(), 3u);
  EXPECT_EQ(stats.dropped_shorts, 1u);
}

TEST(Faults, CollapseOnSampledListIsIdempotent) {
  const auto nl = netlist::gen::make_random_dag(
      netlist::gen::DagProfile::basic("f", 100, 8, 2));
  Rng rng(13);
  const auto faults = random_faults(nl, 80, 40, rng);
  const auto once = collapse_faults(faults);
  const auto twice = collapse_faults(once);
  EXPECT_EQ(once.bridges.size(), twice.bridges.size());
  EXPECT_EQ(once.shorts.size(), twice.shorts.size());
}

}  // namespace
}  // namespace iddq::sim
