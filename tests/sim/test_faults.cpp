#include "sim/faults.hpp"

#include <gtest/gtest.h>

#include "netlist/gen/c17.hpp"
#include "netlist/gen/random_dag.hpp"
#include "support/error.hpp"

namespace iddq::sim {
namespace {

TEST(Faults, RandomFaultsRespectCounts) {
  const auto nl = netlist::gen::make_random_dag(
      netlist::gen::DagProfile::basic("f", 200, 12, 1));
  Rng rng(3);
  const auto faults = random_faults(nl, 40, 25, rng);
  EXPECT_EQ(faults.bridges.size(), 40u);
  EXPECT_EQ(faults.shorts.size(), 25u);
  EXPECT_EQ(faults.size(), 65u);
}

TEST(Faults, BridgesConnectDistinctLogicGates) {
  const auto nl = netlist::gen::make_random_dag(
      netlist::gen::DagProfile::basic("f", 150, 10, 5));
  Rng rng(7);
  const auto faults = random_faults(nl, 60, 0, rng);
  for (const auto& f : faults.bridges) {
    EXPECT_NE(f.a, f.b);
    EXPECT_TRUE(netlist::is_logic(nl.gate(f.a).kind));
    EXPECT_TRUE(netlist::is_logic(nl.gate(f.b).kind));
    EXPECT_GT(f.r_bridge_kohm, 0.0);
  }
}

TEST(Faults, ShortsReferenceValidPins) {
  const auto nl = netlist::gen::make_c17();
  Rng rng(11);
  const auto faults = random_faults(nl, 0, 30, rng);
  for (const auto& f : faults.shorts) {
    EXPECT_TRUE(netlist::is_logic(nl.gate(f.gate).kind));
    EXPECT_LT(f.pin, nl.gate(f.gate).fanins.size());
  }
}

TEST(Faults, Deterministic) {
  const auto nl = netlist::gen::make_c17();
  Rng a(9);
  Rng b(9);
  const auto fa = random_faults(nl, 10, 10, a);
  const auto fb = random_faults(nl, 10, 10, b);
  for (std::size_t i = 0; i < fa.bridges.size(); ++i) {
    EXPECT_EQ(fa.bridges[i].a, fb.bridges[i].a);
    EXPECT_EQ(fa.bridges[i].b, fb.bridges[i].b);
  }
}

TEST(Faults, BridgeCurrentOhmsLaw) {
  Bridge f;
  f.r_bridge_kohm = 5.0;
  // 5 V across 5 + 2.5 + 2.5 kOhm = 500 uA.
  EXPECT_NEAR(bridge_current_ua(f, 5000.0, 2.5, 2.5), 500.0, 1e-9);
}

TEST(Faults, BridgeCurrentDecreasesWithResistance) {
  Bridge weak;
  weak.r_bridge_kohm = 50.0;
  Bridge strong;
  strong.r_bridge_kohm = 0.5;
  EXPECT_GT(bridge_current_ua(strong, 5000.0, 2.0, 2.0),
            bridge_current_ua(weak, 5000.0, 2.0, 2.0));
}

TEST(Faults, ShortCurrentOhmsLaw) {
  GateOxideShort f;
  f.r_short_kohm = 8.0;
  EXPECT_NEAR(short_current_ua(f, 5000.0, 2.0), 500.0, 1e-9);
}

TEST(Faults, CurrentsRejectNonPositiveVdd) {
  Bridge f;
  EXPECT_THROW((void)bridge_current_ua(f, 0.0, 1.0, 1.0), Error);
  GateOxideShort s;
  EXPECT_THROW((void)short_current_ua(s, -5.0, 1.0), Error);
}

}  // namespace
}  // namespace iddq::sim
