#include "electrical/settling.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "electrical/transient.hpp"
#include "support/error.hpp"

namespace iddq::elec {
namespace {

TEST(Settling, CalibrationRecoversAnalyticCoefficient) {
  // Delta = t_detect + k * tau * ln(i0/ith) with analytic k = 1.
  const auto model = SettlingModel::calibrate(2000.0);
  EXPECT_NEAR(model.decay_coefficient(), 1.0, 1e-3);
}

TEST(Settling, DetectionTimeOnlyWhenAlreadySettled) {
  const auto model = SettlingModel::calibrate(1500.0);
  EXPECT_DOUBLE_EQ(model.delta_ps(100.0, 0.5, 1.0), 1500.0);
  EXPECT_DOUBLE_EQ(model.delta_ps(0.0, 1e6, 1.0), 1500.0);
}

TEST(Settling, MatchesDirectSimulation) {
  const auto model = SettlingModel::calibrate(0.0);
  for (const double tau : {10.0, 80.0, 500.0}) {
    for (const double ratio : {100.0, 1e4}) {
      const double predicted = model.delta_ps(tau, ratio, 1.0);
      const double simulated =
          simulate_decay_time_ps(ratio, 1.0, tau, tau * 1e-3);
      EXPECT_NEAR(predicted, simulated, simulated * 5e-3)
          << "tau=" << tau << " ratio=" << ratio;
    }
  }
}

TEST(Settling, LinearInTau) {
  const auto model = SettlingModel::calibrate(0.0);
  const double d1 = model.delta_ps(100.0, 1e4, 1.0);
  const double d2 = model.delta_ps(200.0, 1e4, 1.0);
  EXPECT_NEAR(d2 / d1, 2.0, 1e-9);
}

TEST(Settling, MonotoneInCurrentRatio) {
  const auto model = SettlingModel::calibrate(0.0);
  double prev = 0.0;
  for (const double ratio : {2.0, 10.0, 100.0, 1e4, 1e7}) {
    const double d = model.delta_ps(50.0, ratio, 1.0);
    EXPECT_GT(d, prev);
    prev = d;
  }
}

TEST(Settling, ExtrapolatesBeyondCalibrationRange) {
  const auto model = SettlingModel::calibrate(0.0, /*ratio_hi=*/1e4);
  // Query far beyond the table: fitted-slope extrapolation ~ tau*ln(ratio).
  const double d = model.delta_ps(10.0, 1e8, 1.0);
  EXPECT_NEAR(d, 10.0 * std::log(1e8), 10.0 * std::log(1e8) * 0.02);
}

TEST(Settling, RejectsBadInputs) {
  const auto model = SettlingModel::calibrate(0.0);
  EXPECT_THROW((void)model.delta_ps(-1.0, 10.0, 1.0), Error);
  EXPECT_THROW((void)model.delta_ps(10.0, 10.0, 0.0), Error);
  EXPECT_THROW((void)SettlingModel::calibrate(-1.0), Error);
  EXPECT_THROW((void)SettlingModel::calibrate(0.0, 0.5), Error);
}

}  // namespace
}  // namespace iddq::elec
