#include "electrical/delay_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "support/error.hpp"
#include "support/rng.hpp"

namespace iddq::elec {
namespace {

constexpr double kLn2 = 0.6931471805599453;

DelayModelInput nominal_case() {
  DelayModelInput in;
  in.rs_kohm = 0.02;
  in.cs_ff = 2000.0;
  in.cg_ff = 15.0;
  in.rg_kohm = 25.0;
  in.n = 50;
  return in;
}

TEST(DelayModel, NoSensorMeansNoDegradation) {
  auto in = nominal_case();
  in.rs_kohm = 0.0;
  EXPECT_DOUBLE_EQ(DelayDegradationModel::delta(in), 1.0);
  EXPECT_NEAR(DelayDegradationModel::t50_ps(in), kLn2 * in.rg_kohm * in.cg_ff,
              1e-9);
}

TEST(DelayModel, DeltaAtLeastOne) {
  auto in = nominal_case();
  for (const double rs : {0.001, 0.01, 0.1, 1.0})
    for (const std::uint32_t n : {1u, 10u, 200u}) {
      in.rs_kohm = rs;
      in.n = n;
      EXPECT_GE(DelayDegradationModel::delta(in), 1.0);
    }
}

TEST(DelayModel, MonotoneInSwitchingCount) {
  auto in = nominal_case();
  double prev = 0.0;
  for (const std::uint32_t n : {1u, 5u, 20u, 100u, 400u}) {
    in.n = n;
    const double d = DelayDegradationModel::delta(in);
    EXPECT_GE(d, prev);
    prev = d;
  }
}

TEST(DelayModel, MonotoneInBypassResistance) {
  auto in = nominal_case();
  double prev = 0.0;
  for (const double rs : {0.001, 0.005, 0.02, 0.1, 0.5}) {
    in.rs_kohm = rs;
    const double d = DelayDegradationModel::delta(in);
    EXPECT_GE(d, prev);
    prev = d;
  }
}

TEST(DelayModel, ZeroRailCapIsStaticDivider) {
  auto in = nominal_case();
  in.cs_ff = 0.0;
  const double k = static_cast<double>(in.n) * in.rs_kohm / in.rg_kohm;
  EXPECT_NEAR(DelayDegradationModel::delta(in), 1.0 + k, 1e-9);
}

TEST(DelayModel, LargeRailCapSuppressesDegradation) {
  auto in = nominal_case();
  in.cs_ff = 1.0e9;  // enormous local charge reservoir
  EXPECT_NEAR(DelayDegradationModel::delta(in), 1.0, 1e-3);
}

TEST(DelayModel, DeltaBoundedByStaticDivider) {
  // The quasi-static case is the worst case: finite Cs only helps.
  auto in = nominal_case();
  const double bound =
      1.0 + static_cast<double>(in.n) * in.rs_kohm / in.rg_kohm;
  for (const double cs : {10.0, 100.0, 2000.0, 1e5}) {
    in.cs_ff = cs;
    EXPECT_LE(DelayDegradationModel::delta(in), bound + 1e-9);
  }
}

TEST(DelayModel, WaveformStartsAtVddAndDecays) {
  const auto in = nominal_case();
  EXPECT_NEAR(DelayDegradationModel::v_out_norm(in, 0.0), 1.0, 1e-12);
  double prev = 1.0;
  for (double t = 50.0; t <= 2000.0; t += 50.0) {
    const double v = DelayDegradationModel::v_out_norm(in, t);
    EXPECT_LT(v, prev);
    prev = v;
  }
}

TEST(DelayModel, T50MatchesWaveformCrossing) {
  const auto in = nominal_case();
  const double t50 = DelayDegradationModel::t50_ps(in);
  EXPECT_NEAR(DelayDegradationModel::v_out_norm(in, t50), 0.5, 1e-6);
}

TEST(DelayModel, TypicalMagnitudeIsFewPercent) {
  // The 1995 table reports delay overheads of a few percent; the model must
  // land in that regime for representative numbers.
  const auto in = nominal_case();
  const double d = DelayDegradationModel::delta(in);
  EXPECT_GT(d, 1.005);
  EXPECT_LT(d, 1.2);
}

TEST(DelayModel, ClosedFormMatchesBisectionBitForBit) {
  // The analytic-crossing path must reproduce the historical
  // bracket-and-bisect result EXACTLY — t50_ps feeds the per-module delay
  // anchors, and any last-bit drift there would change committed bench
  // rows. Sweep the operating range with wide log-uniform samples.
  Rng rng(0x750'750);
  for (int i = 0; i < 4000; ++i) {
    DelayModelInput in;
    in.rs_kohm = std::pow(10.0, rng.uniform(-4.0, 1.0));
    in.cs_ff = std::pow(10.0, rng.uniform(-1.0, 6.0));
    in.cg_ff = std::pow(10.0, rng.uniform(-1.0, 2.5));
    in.rg_kohm = std::pow(10.0, rng.uniform(-1.0, 2.5));
    in.n = static_cast<std::uint32_t>(1 + rng.below(4000));
    const double fast = DelayDegradationModel::t50_ps(in);
    const double reference = DelayDegradationModel::t50_ps_bisect(in);
    ASSERT_EQ(fast, reference)
        << "rs=" << in.rs_kohm << " cs=" << in.cs_ff << " cg=" << in.cg_ff
        << " rg=" << in.rg_kohm << " n=" << in.n;
  }
}

TEST(DelayModel, ClosedFormMatchesBisectionAtExtremePoleSplits) {
  // Corner regimes: near-degenerate poles, huge simultaneity, tiny and
  // enormous rail capacitance — the cases where the doubling bracket and
  // the guard-band fallback actually engage.
  for (const double rs : {1e-6, 1e-3, 0.02, 1.0, 50.0})
    for (const double cs : {1e-3, 1.0, 2000.0, 1e8})
      for (const std::uint32_t n : {1u, 7u, 500u, 100000u}) {
        DelayModelInput in;
        in.rs_kohm = rs;
        in.cs_ff = cs;
        in.cg_ff = 15.0;
        in.rg_kohm = 25.0;
        in.n = n;
        ASSERT_EQ(DelayDegradationModel::t50_ps(in),
                  DelayDegradationModel::t50_ps_bisect(in))
            << "rs=" << rs << " cs=" << cs << " n=" << n;
      }
}

TEST(DelayModel, RejectsInvalidInputs) {
  auto in = nominal_case();
  in.cg_ff = 0.0;
  EXPECT_THROW((void)DelayDegradationModel::delta(in), Error);
  in = nominal_case();
  in.n = 0;
  EXPECT_THROW((void)DelayDegradationModel::delta(in), Error);
  in = nominal_case();
  EXPECT_THROW((void)DelayDegradationModel::v_out_norm(in, -1.0), Error);
}

}  // namespace
}  // namespace iddq::elec
