#include "electrical/sensor_model.hpp"

#include <gtest/gtest.h>

namespace iddq::elec {
namespace {

TEST(SensorModel, RsSizingMeetsPerturbationLimit) {
  SensorSpec spec;
  spec.r_max_mv = 200.0;
  for (const double idd : {100.0, 1000.0, 50000.0}) {
    const double rs = sensor_rs_kohm(spec, idd);
    EXPECT_LE(rail_perturbation_mv(rs, idd), spec.r_max_mv + 1e-9);
    // Sizing at the limit: the perturbation equals r unless the cap binds.
    if (rs < spec.rs_cap_kohm)
      EXPECT_NEAR(rail_perturbation_mv(rs, idd), spec.r_max_mv, 1e-9);
  }
}

TEST(SensorModel, RsCapBindsForTinyModules) {
  SensorSpec spec;
  EXPECT_DOUBLE_EQ(sensor_rs_kohm(spec, 0.0), spec.rs_cap_kohm);
  EXPECT_DOUBLE_EQ(sensor_rs_kohm(spec, 1e-9), spec.rs_cap_kohm);
}

TEST(SensorModel, AreaDecreasesWithRs) {
  SensorSpec spec;
  const double a_strong = sensor_area(spec, 0.001);  // wide switch
  const double a_weak = sensor_area(spec, 1.0);
  EXPECT_GT(a_strong, a_weak);
  EXPECT_GE(a_weak, spec.a0_area);
}

TEST(SensorModel, AreaScalesLinearlyWithCurrent) {
  SensorSpec spec;
  const double rs1 = sensor_rs_kohm(spec, 1000.0);
  const double rs2 = sensor_rs_kohm(spec, 2000.0);
  const double a1 = sensor_area(spec, rs1) - spec.a0_area;
  const double a2 = sensor_area(spec, rs2) - spec.a0_area;
  EXPECT_NEAR(a2 / a1, 2.0, 1e-9);
}

TEST(SensorModel, TauIsRsTimesCs) {
  EXPECT_DOUBLE_EQ(sensor_tau_ps(0.05, 2000.0), 100.0);
  EXPECT_DOUBLE_EQ(sensor_tau_ps(0.0, 2000.0), 0.0);
}

TEST(SensorModel, LeakageCap) {
  SensorSpec spec;
  spec.iddq_th_ua = 1.5;
  spec.d_min = 10.0;
  EXPECT_DOUBLE_EQ(leakage_cap_ua(spec), 0.15);
}

TEST(SensorModel, ValidateRejectsBadSpecs) {
  SensorSpec spec;
  spec.r_max_mv = 0.0;
  EXPECT_THROW(spec.validate(), Error);
  spec = SensorSpec{};
  spec.d_min = 1.0;  // discriminability must exceed 1
  EXPECT_THROW(spec.validate(), Error);
  spec = SensorSpec{};
  spec.iddq_th_ua = -1.0;
  EXPECT_THROW(spec.validate(), Error);
  EXPECT_NO_THROW(SensorSpec{}.validate());
}

}  // namespace
}  // namespace iddq::elec
