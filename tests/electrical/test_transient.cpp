#include "electrical/transient.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "support/error.hpp"

namespace iddq::elec {
namespace {

DelayModelInput typical() {
  DelayModelInput in;
  in.rs_kohm = 0.05;
  in.cs_ff = 1500.0;
  in.cg_ff = 15.0;
  in.rg_kohm = 25.0;
  in.n = 40;
  return in;
}

TEST(Transient, Rk4MatchesClosedFormWaveform) {
  const auto in = typical();
  const auto tr = simulate_discharge(in, 5000.0, 0.5, 4000);
  for (std::size_t i = 0; i < tr.size(); i += 200) {
    const double analytic =
        5000.0 * DelayDegradationModel::v_out_norm(in, tr[i].t_ps);
    EXPECT_NEAR(tr[i].v_out_mv, analytic, 5000.0 * 1e-6)
        << "t=" << tr[i].t_ps;
  }
}

TEST(Transient, Rk4CrossingMatchesClosedFormT50) {
  const auto in = typical();
  const auto tr = simulate_discharge(in, 5000.0, 0.2, 20000);
  const double t50_sim = crossing_time_ps(tr, 2500.0);
  const double t50_model = DelayDegradationModel::t50_ps(in);
  ASSERT_GT(t50_sim, 0.0);
  EXPECT_NEAR(t50_sim, t50_model, t50_model * 1e-3);
}

TEST(Transient, RailBouncesThenRecovers) {
  const auto in = typical();
  const auto tr = simulate_discharge(in, 5000.0, 0.5, 8000);
  double rail_peak = 0.0;
  for (const auto& s : tr) rail_peak = std::max(rail_peak, s.v_rail_mv);
  EXPECT_GT(rail_peak, 0.0);               // the rail does perturb
  EXPECT_LT(rail_peak, 5000.0);            // but never to the supply
  EXPECT_LT(tr.back().v_rail_mv, rail_peak);  // and it recovers
}

TEST(Transient, CrossingReturnsNegativeWhenNotReached) {
  const auto in = typical();
  const auto tr = simulate_discharge(in, 5000.0, 0.1, 10);  // far too short
  EXPECT_LT(crossing_time_ps(tr, 100.0), 0.0);
}

TEST(Transient, DecayTimeMatchesAnalytic) {
  // i(t) = i0 * exp(-t/tau) -> t_cross = tau * ln(i0/ith).
  for (const double ratio : {10.0, 1e3, 1e6}) {
    const double tau = 50.0;
    const double t = simulate_decay_time_ps(ratio, 1.0, tau, 1e-3 * tau);
    EXPECT_NEAR(t, tau * std::log(ratio), tau * std::log(ratio) * 1e-4)
        << "ratio=" << ratio;
  }
}

TEST(Transient, DecayBelowThresholdIsImmediate) {
  EXPECT_LT(simulate_decay_time_ps(0.5, 1.0, 50.0, 0.1), 0.0);
}

TEST(Transient, RejectsDegenerateInputs) {
  auto in = typical();
  in.cs_ff = 0.0;
  EXPECT_THROW((void)simulate_discharge(in, 5000.0, 0.5, 10), Error);
  EXPECT_THROW((void)simulate_decay_time_ps(10.0, 1.0, 0.0, 0.1), Error);
  EXPECT_THROW((void)simulate_decay_time_ps(10.0, 0.0, 5.0, 0.1), Error);
}

}  // namespace
}  // namespace iddq::elec
