// IncrementalTiming must reproduce est::degraded_critical_path_ps
// bit-for-bit after any sequence of delta-factor updates: the incremental
// recurrence applies the same expression to the same operand values, so
// every arrival — and the max over them — is bitwise equal to a full pass.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "estimators/delay_estimator.hpp"
#include "estimators/incremental_timing.hpp"
#include "library/cell_library.hpp"
#include "netlist/gen/random_dag.hpp"
#include "netlist/levelize.hpp"
#include "support/rng.hpp"

namespace iddq::est {
namespace {

struct Fixture {
  explicit Fixture(std::size_t gates = 300, std::size_t depth = 14,
                   std::uint64_t seed = 5)
      : nl(netlist::gen::make_random_dag(
            netlist::gen::DagProfile::basic("timing", gates, depth, seed))),
        cells(lib::bind_cells(nl, lib::default_library())),
        graph(nl, cells),
        delta(nl.gate_count(), 1.0) {}

  netlist::Netlist nl;
  std::vector<lib::CellParams> cells;
  TimingGraph graph;
  std::vector<double> delta;

  [[nodiscard]] auto factor() const {
    return [this](netlist::GateId g) { return delta[g]; };
  }
  [[nodiscard]] double full() const {
    return degraded_critical_path_ps(nl, cells, delta);
  }
};

void expect_bits_eq(double got, double want) {
  EXPECT_EQ(std::bit_cast<std::uint64_t>(got),
            std::bit_cast<std::uint64_t>(want))
      << got << " vs " << want;
}

TEST(TimingGraph, RanksFaninsBeforeFanouts) {
  Fixture f;
  for (const netlist::GateId id : f.nl.logic_gates())
    for (const netlist::GateId fanin : f.nl.gate(id).fanins)
      EXPECT_LT(f.graph.rank(fanin), f.graph.rank(id));
}

TEST(IncrementalTiming, RebuildMatchesFullPassBitForBit) {
  Fixture f;
  IncrementalTiming timing(f.graph);
  expect_bits_eq(timing.rebuild(f.factor()), f.full());

  Rng rng(17);
  for (const netlist::GateId id : f.nl.logic_gates())
    f.delta[id] = 1.0 + rng.uniform() * 0.2;
  expect_bits_eq(timing.rebuild(f.factor()), f.full());
}

TEST(IncrementalTiming, RandomUpdateSequencesMatchFullPassBitForBit) {
  Fixture f;
  IncrementalTiming timing(f.graph);
  timing.rebuild(f.factor());
  Rng rng(23);
  const auto logic = f.nl.logic_gates();
  for (int step = 0; step < 200; ++step) {
    // Change a batch of factors (occasionally a big one — the dense-cone
    // path), then propagate just those gates.
    const std::size_t batch =
        step % 17 == 0 ? logic.size() / 2 : 1 + rng.index(4);
    std::vector<netlist::GateId> changed;
    for (std::size_t i = 0; i < batch; ++i) {
      const netlist::GateId g = logic[rng.index(logic.size())];
      f.delta[g] = 1.0 + rng.uniform() * 0.25;
      changed.push_back(g);
    }
    const double got = timing.propagate(changed, f.factor());
    expect_bits_eq(got, f.full());
    ASSERT_EQ(std::bit_cast<std::uint64_t>(timing.worst_ps()),
              std::bit_cast<std::uint64_t>(got));
  }
}

TEST(IncrementalTiming, LoweringTheCriticalWitnessRescansCorrectly) {
  Fixture f;
  IncrementalTiming timing(f.graph);
  Rng rng(31);
  for (const netlist::GateId id : f.nl.logic_gates())
    f.delta[id] = 1.2 + rng.uniform() * 0.2;
  timing.rebuild(f.factor());

  // Find a witness of the maximum and make its whole input cone fast:
  // the new worst must be discovered on an untouched path.
  netlist::GateId witness = netlist::kNoGate;
  for (const netlist::GateId id : f.nl.logic_gates())
    if (timing.arrival_ps(id) == timing.worst_ps()) witness = id;
  ASSERT_NE(witness, netlist::kNoGate);
  std::vector<netlist::GateId> changed;
  for (const netlist::GateId id : f.nl.logic_gates()) {
    if (timing.arrival_ps(id) <= timing.arrival_ps(witness) &&
        f.delta[id] > 1.05) {
      f.delta[id] = 1.0;
      changed.push_back(id);
    }
  }
  expect_bits_eq(timing.propagate(changed, f.factor()), f.full());
}

TEST(IncrementalTiming, ProbeScoresWithoutCommitting) {
  Fixture f;
  IncrementalTiming timing(f.graph);
  Rng rng(41);
  for (const netlist::GateId id : f.nl.logic_gates())
    f.delta[id] = 1.0 + rng.uniform() * 0.2;
  const double committed = timing.rebuild(f.factor());
  const std::vector<double> before_delta = f.delta;
  std::vector<double> before_arrival(f.nl.gate_count(), 0.0);
  for (netlist::GateId id = 0; id < f.nl.gate_count(); ++id)
    before_arrival[id] = timing.arrival_ps(id);

  const auto logic = f.nl.logic_gates();
  for (int step = 0; step < 50; ++step) {
    std::vector<double> overlay = f.delta;
    std::vector<netlist::GateId> changed;
    // Small batches ride the journaled sweep; every 13th batch is dense
    // enough to take the scratch full-pass fallback.
    const std::size_t batch =
        step % 13 == 12 ? logic.size() / 2 : 1 + rng.index(6);
    for (std::size_t i = 0; i < batch; ++i) {
      const netlist::GateId g = logic[rng.index(logic.size())];
      overlay[g] = 1.0 + rng.uniform() * 0.3;
      changed.push_back(g);
    }
    const double what_if = timing.probe(
        changed, [&](netlist::GateId g) { return overlay[g]; });
    expect_bits_eq(what_if, degraded_critical_path_ps(f.nl, f.cells, overlay));
    // State must be fully restored: same worst, same arrivals.
    expect_bits_eq(timing.worst_ps(), committed);
    for (netlist::GateId id = 0; id < f.nl.gate_count(); ++id)
      ASSERT_EQ(std::bit_cast<std::uint64_t>(timing.arrival_ps(id)),
                std::bit_cast<std::uint64_t>(before_arrival[id]));
  }
  // A final full pass over the unchanged factors still matches.
  expect_bits_eq(
      timing.propagate(std::span<const netlist::GateId>{},
                       [&](netlist::GateId g) { return before_delta[g]; }),
      committed);
}

}  // namespace
}  // namespace iddq::est
