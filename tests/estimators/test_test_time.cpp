#include "estimators/test_time.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace iddq::est {
namespace {

TEST(TestTime, OverheadFormula) {
  // D = 10 ns, D_BIC = 10.5 ns, settle = 2 ns: (12.5 - 10) / 10 = 0.25.
  EXPECT_NEAR(test_time_overhead(10000.0, 10500.0, 2000.0), 0.25, 1e-12);
}

TEST(TestTime, NoSettleNoDegradationIsZero) {
  EXPECT_DOUBLE_EQ(test_time_overhead(10000.0, 10000.0, 0.0), 0.0);
}

TEST(TestTime, BreakdownTotalsAndRatio) {
  TestTimeBreakdown b;
  b.d_nominal_ps = 8000.0;
  b.d_bic_ps = 8400.0;
  b.settle_max_ps = 1600.0;
  b.vectors = 100;
  EXPECT_DOUBLE_EQ(b.total_nominal_ps(), 800000.0);
  EXPECT_DOUBLE_EQ(b.total_bic_ps(), 1000000.0);
  EXPECT_NEAR(b.overhead(), 0.25, 1e-12);
  EXPECT_NEAR(b.overhead(),
              test_time_overhead(b.d_nominal_ps, b.d_bic_ps, b.settle_max_ps),
              1e-12);
}

TEST(TestTime, VectorCountCancelsInOverhead) {
  TestTimeBreakdown a;
  a.d_nominal_ps = 9000.0;
  a.d_bic_ps = 9300.0;
  a.settle_max_ps = 500.0;
  a.vectors = 10;
  TestTimeBreakdown b = a;
  b.vectors = 10000;
  EXPECT_DOUBLE_EQ(a.overhead(), b.overhead());
}

TEST(TestTime, RejectsInvalidInputs) {
  EXPECT_THROW((void)test_time_overhead(0.0, 1.0, 0.0), Error);
  EXPECT_THROW((void)test_time_overhead(10.0, 5.0, 0.0), Error);  // DBIC < D
  EXPECT_THROW((void)test_time_overhead(10.0, 11.0, -1.0), Error);
}

}  // namespace
}  // namespace iddq::est
