#include "estimators/separation.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "netlist/gen/c17.hpp"
#include "netlist/gen/random_dag.hpp"
#include "support/rng.hpp"

namespace iddq::est {
namespace {

std::vector<std::uint32_t> module_map(
    const netlist::Netlist& nl,
    const std::vector<std::vector<netlist::GateId>>& groups) {
  std::vector<std::uint32_t> mof(nl.gate_count(),
                                 static_cast<std::uint32_t>(-1));
  for (std::uint32_t m = 0; m < groups.size(); ++m)
    for (const auto g : groups[m]) mof[g] = m;
  return mof;
}

TEST(Separation, PairwiseSumByHand) {
  const auto nl = netlist::gen::make_c17();
  const netlist::DistanceOracle oracle(nl, 4);
  // Module {10, 16, 22}: d(10,22)=1, d(16,22)=1, d(10,16)=2.
  const std::vector<std::vector<netlist::GateId>> groups = {
      {nl.at("10"), nl.at("16"), nl.at("22")}};
  const auto mof = module_map(nl, groups);
  EXPECT_DOUBLE_EQ(module_separation(oracle, groups[0], 0, mof), 4.0);
}

TEST(Separation, CliqueLikeModuleIsMinimal) {
  const auto nl = netlist::gen::make_c17();
  const netlist::DistanceOracle oracle(nl, 4);
  // Directly connected pair: separation 1; far pair saturates at rho.
  const std::vector<std::vector<netlist::GateId>> adjacent = {
      {nl.at("10"), nl.at("22")}};
  const std::vector<std::vector<netlist::GateId>> distant = {
      {nl.at("10"), nl.at("19")}};
  EXPECT_LT(
      module_separation(oracle, adjacent[0], 0, module_map(nl, adjacent)),
      module_separation(oracle, distant[0], 0, module_map(nl, distant)));
}

TEST(Separation, SumToModuleMatchesDirectSum) {
  const auto nl = netlist::gen::make_random_dag(
      netlist::gen::DagProfile::basic("r", 120, 10, 3));
  const netlist::DistanceOracle oracle(nl, 4);
  Rng rng(5);
  // Random 2-module split.
  std::vector<std::vector<netlist::GateId>> groups(2);
  for (const auto g : nl.logic_gates())
    groups[rng.index(2)].push_back(g);
  const auto mof = module_map(nl, groups);
  for (const auto g : nl.logic_gates()) {
    const std::uint32_t m = mof[g];
    double direct = 0.0;
    for (const auto h : groups[m])
      if (h != g) direct += oracle.separation(g, h);
    const double fast =
        sum_to_module(oracle, g, m, mof, groups[m].size() - 1);
    ASSERT_NEAR(fast, direct, 1e-9) << "gate " << g;
  }
}

TEST(Separation, ModuleSeparationMatchesPairwiseBruteForce) {
  const auto nl = netlist::gen::make_random_dag(
      netlist::gen::DagProfile::basic("r", 80, 8, 7));
  const netlist::DistanceOracle oracle(nl, 5);
  Rng rng(11);
  std::vector<std::vector<netlist::GateId>> groups(3);
  for (const auto g : nl.logic_gates()) groups[rng.index(3)].push_back(g);
  const auto mof = module_map(nl, groups);
  for (std::uint32_t m = 0; m < 3; ++m) {
    double brute = 0.0;
    for (std::size_t i = 0; i < groups[m].size(); ++i)
      for (std::size_t j = i + 1; j < groups[m].size(); ++j)
        brute += oracle.separation(groups[m][i], groups[m][j]);
    EXPECT_NEAR(module_separation(oracle, groups[m], m, mof), brute, 1e-9);
  }
}

TEST(Separation, SingletonModuleIsZero) {
  const auto nl = netlist::gen::make_c17();
  const netlist::DistanceOracle oracle(nl, 4);
  const std::vector<std::vector<netlist::GateId>> groups = {{nl.at("10")}};
  const auto mof = module_map(nl, groups);
  EXPECT_DOUBLE_EQ(module_separation(oracle, groups[0], 0, mof), 0.0);
}

}  // namespace
}  // namespace iddq::est
