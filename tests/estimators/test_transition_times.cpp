#include "estimators/transition_times.hpp"

#include <gtest/gtest.h>

#include "library/cell_library.hpp"
#include "netlist/builder.hpp"
#include "netlist/gen/array_cut.hpp"
#include "netlist/gen/c17.hpp"
#include "netlist/levelize.hpp"
#include "support/error.hpp"

namespace iddq::est {
namespace {

TEST(TransitionTimes, UnitGridC17) {
  const auto nl = netlist::gen::make_c17();
  const TransitionTimes tt(nl);
  EXPECT_EQ(tt.grid_size(), 4u);  // depth 3 + slot 0
  // Inputs switch at t=0.
  for (const auto id : nl.primary_inputs()) {
    EXPECT_EQ(tt.count(id), 1u);
    EXPECT_TRUE(tt.at(id).test(0));
  }
  // First-level NANDs: {1}.
  EXPECT_TRUE(tt.at(nl.at("10")).test(1));
  EXPECT_EQ(tt.count(nl.at("10")), 1u);
  // 16 = NAND(2, 11): paths of length 1 (via input 2) and 2 (via 11).
  EXPECT_TRUE(tt.at(nl.at("16")).test(1));
  EXPECT_TRUE(tt.at(nl.at("16")).test(2));
  EXPECT_EQ(tt.count(nl.at("16")), 2u);
  // 22 = NAND(10, 16): 2 via 10, {2,3} via 16.
  EXPECT_TRUE(tt.at(nl.at("22")).test(2));
  EXPECT_TRUE(tt.at(nl.at("22")).test(3));
  EXPECT_EQ(tt.count(nl.at("22")), 2u);
}

TEST(TransitionTimes, MaxTimeEqualsDepth) {
  const auto nl = netlist::gen::make_c17();
  const TransitionTimes tt(nl);
  const auto lv = netlist::levelize(nl);
  for (const auto id : nl.logic_gates())
    EXPECT_EQ(tt.at(id).find_last(), lv.depth[id]);
}

TEST(TransitionTimes, MinTimeEqualsMinDepth) {
  const auto nl = netlist::gen::make_c17();
  const TransitionTimes tt(nl);
  const auto lv = netlist::levelize(nl);
  for (const auto id : nl.logic_gates())
    EXPECT_EQ(tt.at(id).find_first(), lv.min_depth[id]);
}

TEST(TransitionTimes, ArrayCutHasSingletonSets) {
  // Pure chains with depth-aligned column inputs: T(cell) = {column + 1}.
  const auto cut = netlist::gen::make_array_cut(3, 5);
  const TransitionTimes tt(cut.netlist);
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 5; ++c) {
      EXPECT_EQ(tt.count(cut.cell[r][c]), 1u);
      EXPECT_TRUE(tt.at(cut.cell[r][c]).test(c + 1));
    }
}

TEST(TransitionTimes, ElectricalGridScalesWithDelays) {
  const auto nl = netlist::gen::make_c17();
  const auto lib = lib::default_library();
  const auto cells = lib::bind_cells(nl, lib);
  const double bin = 50.0;
  const TransitionTimes tt(nl, cells, bin);
  // NAND2 delay 260 ps -> 5 slots. Gate 10 (all paths via inputs): {5}.
  EXPECT_EQ(tt.at(nl.at("10")).find_first(), 5u);
  EXPECT_EQ(tt.count(nl.at("10")), 1u);
  // Gate 22: paths 10->22 (10 slots) and 16->22 (10 or 15 slots).
  EXPECT_TRUE(tt.at(nl.at("22")).test(10));
  EXPECT_TRUE(tt.at(nl.at("22")).test(15));
}

TEST(TransitionTimes, ElectricalGridBoundsMatchCriticalPath) {
  const auto nl = netlist::gen::make_c17();
  const auto lib = lib::default_library();
  const auto cells = lib::bind_cells(nl, lib);
  const TransitionTimes tt(nl, cells, 50.0);
  // Critical path: 3 NAND2 = 780 ps -> 15 slots; grid must be 16.
  EXPECT_EQ(tt.grid_size(), 16u);
}

TEST(TransitionTimes, CoarseBinStillAdvancesAtLeastOneSlot) {
  const auto nl = netlist::gen::make_c17();
  const auto lib = lib::default_library();
  const auto cells = lib::bind_cells(nl, lib);
  const TransitionTimes tt(nl, cells, 1.0e6);  // bin far above any delay
  // Degenerates to the unit-depth grid.
  EXPECT_EQ(tt.grid_size(), 4u);
}

TEST(TransitionTimes, RejectsBadArguments) {
  const auto nl = netlist::gen::make_c17();
  const auto cells = lib::bind_cells(nl, lib::default_library());
  EXPECT_THROW((void)TransitionTimes(nl, cells, 0.0), Error);
  EXPECT_THROW((void)TransitionTimes(nl, {}, 50.0), Error);
}

}  // namespace
}  // namespace iddq::est
