#include "estimators/current_profile.hpp"

#include <gtest/gtest.h>

#include "library/cell_library.hpp"
#include "netlist/gen/array_cut.hpp"
#include "netlist/gen/c17.hpp"
#include "support/rng.hpp"

namespace iddq::est {
namespace {

/// Random synthetic gate for the tournament-tree property tests.
struct FakeGate {
  DynamicBitset times;
  double ipeak_ua = 0.0;
};

std::vector<FakeGate> random_gates(Rng& rng, std::size_t grid,
                                   std::size_t count) {
  std::vector<FakeGate> gates(count);
  for (auto& g : gates) {
    g.times = DynamicBitset(grid);
    const std::size_t bits = 1 + rng.below(std::max<std::size_t>(grid / 4, 1));
    for (std::size_t b = 0; b < bits; ++b) g.times.set(rng.below(grid));
    g.ipeak_ua = rng.uniform(0.05, 8.0);
  }
  return gates;
}

struct Fixture {
  netlist::Netlist nl = netlist::gen::make_c17();
  lib::CellLibrary library = lib::default_library();
  std::vector<lib::CellParams> cells = lib::bind_cells(nl, library);
  TransitionTimes tt{nl};  // unit grid for hand-checkable numbers
};

TEST(CurrentProfile, C17WholeCircuit) {
  Fixture f;
  const auto prof = circuit_profile(f.nl, f.tt, f.cells);
  const double nand2 = f.cells[f.nl.at("10")].ipeak_ua;
  const auto current = prof.current_ua();
  // Slot 1: gates 10, 11, 16, 19 can switch (16/19 via direct input paths).
  EXPECT_NEAR(current[1], 4 * nand2, 1e-9);
  // Slot 2: 16, 19 (via 11) and 22, 23 (via short paths).
  EXPECT_NEAR(current[2], 4 * nand2, 1e-9);
  // Slot 3: 22, 23 only.
  EXPECT_NEAR(current[3], 2 * nand2, 1e-9);
  EXPECT_NEAR(prof.max_current_ua(), 4 * nand2, 1e-9);
  EXPECT_EQ(prof.max_switching(), 4u);
}

TEST(CurrentProfile, AddRemoveRoundTrip) {
  Fixture f;
  ModuleCurrentProfile p(f.tt.grid_size());
  const ModuleCurrentProfile empty = p;
  for (const auto id : f.nl.logic_gates())
    p.add_gate(f.tt.at(id), f.cells[id].ipeak_ua);
  for (const auto id : f.nl.logic_gates())
    p.remove_gate(f.tt.at(id), f.cells[id].ipeak_ua);
  EXPECT_EQ(p, empty);
  EXPECT_DOUBLE_EQ(p.max_current_ua(), 0.0);
}

TEST(CurrentProfile, ProfileOfSubset) {
  Fixture f;
  const std::vector<netlist::GateId> subset = {f.nl.at("10"), f.nl.at("11")};
  const auto p = profile_of(f.tt, f.cells, subset);
  const double nand2 = f.cells[f.nl.at("10")].ipeak_ua;
  EXPECT_NEAR(p.max_current_ua(), 2 * nand2, 1e-9);  // both switch at t=1
  EXPECT_EQ(p.max_switching(), 2u);
}

TEST(CurrentProfile, PeakOverlapSeesModuleActivity) {
  Fixture f;
  const std::vector<netlist::GateId> subset = {f.nl.at("10"), f.nl.at("11"),
                                               f.nl.at("22")};
  const auto p = profile_of(f.tt, f.cells, subset);
  // Gate 22 switches at {2,3}; within this subset only itself -> overlap 1.
  EXPECT_EQ(p.peak_overlap(f.tt.at(f.nl.at("22"))), 1u);
  // Gate 10 at {1} overlaps 11 -> 2.
  EXPECT_EQ(p.peak_overlap(f.tt.at(f.nl.at("10"))), 2u);
}

TEST(CurrentProfile, FigureTwoShapeEffect) {
  // The paper's figure 2: grouping along the flow (rows) yields a smaller
  // per-group max current than grouping across the flow (columns).
  const auto cut = netlist::gen::make_array_cut(6, 6);
  const auto library = lib::default_library();
  const auto cells = lib::bind_cells(cut.netlist, library);
  const TransitionTimes tt(cut.netlist);

  const auto rows = netlist::gen::row_band_partition(cut, 3);
  const auto cols = netlist::gen::column_band_partition(cut, 3);
  double worst_row = 0.0;
  double worst_col = 0.0;
  for (const auto& group : rows)
    worst_row = std::max(worst_row,
                         profile_of(tt, cells, group).max_current_ua());
  for (const auto& group : cols)
    worst_col = std::max(worst_col,
                         profile_of(tt, cells, group).max_current_ua());
  // Row bands: 2 cells per time slot; column bands: 6 cells of one column
  // switch together. The column grouping must be markedly worse.
  EXPECT_GT(worst_col, worst_row * 1.5);
}

TEST(CurrentProfile, RemoveCancelsFloatingPointResidue) {
  Fixture f;
  ModuleCurrentProfile p(f.tt.grid_size());
  p.add_gate(f.tt.at(f.nl.at("10")), 0.1);
  p.add_gate(f.tt.at(f.nl.at("11")), 0.2);
  p.remove_gate(f.tt.at(f.nl.at("10")), 0.1);
  p.remove_gate(f.tt.at(f.nl.at("11")), 0.2);
  // Slot currents are exactly zero once the count reaches zero.
  for (const double v : p.current_ua()) EXPECT_EQ(v, 0.0);
}

TEST(CurrentProfile, SumOfModuleMaximaBoundsGlobalPeak) {
  // Invariant exploited by the table-1 analysis: for any disjoint cover,
  // sum over modules of max >= max over time of the global profile.
  Fixture f;
  const auto global = circuit_profile(f.nl, f.tt, f.cells);
  const std::vector<std::vector<netlist::GateId>> groups = {
      {f.nl.at("10"), f.nl.at("16"), f.nl.at("22")},
      {f.nl.at("11"), f.nl.at("19"), f.nl.at("23")}};
  double sum = 0.0;
  for (const auto& g : groups)
    sum += profile_of(f.tt, f.cells, g).max_current_ua();
  EXPECT_GE(sum, global.max_current_ua() - 1e-9);
}

TEST(CurrentProfile, TreeMaximaMatchScansUnderRandomChurn) {
  // The O(1) tournament-tree maxima must stay bit-equal to the historical
  // O(grid) scans through arbitrary add/remove sequences — including the
  // witness-invalidation paths where the gate carrying the current max is
  // removed and the tree must fall back to the runner-up. Odd,
  // non-power-of-two grids exercise the 1-based tree's irregular shape.
  Rng rng(0xC0FFEE);
  for (const std::size_t grid : {1ul, 2ul, 3ul, 7ul, 64ul, 193ul}) {
    const auto gates = random_gates(rng, grid, 40);
    ModuleCurrentProfile p(grid);
    std::vector<std::size_t> in_module;
    std::vector<std::size_t> out_of_module(gates.size());
    for (std::size_t i = 0; i < gates.size(); ++i) out_of_module[i] = i;
    for (int step = 0; step < 400; ++step) {
      const bool add = in_module.empty() ||
                       (!out_of_module.empty() && rng.below(2) == 0);
      auto& pool = add ? out_of_module : in_module;
      auto& other = add ? in_module : out_of_module;
      const std::size_t pick = rng.below(pool.size());
      const std::size_t gate = pool[pick];
      pool[pick] = pool.back();
      pool.pop_back();
      other.push_back(gate);
      if (add)
        p.add_gate(gates[gate].times, gates[gate].ipeak_ua);
      else
        p.remove_gate(gates[gate].times, gates[gate].ipeak_ua);
      ASSERT_EQ(p.max_current_ua(), p.scan_max_current_ua());
      ASSERT_EQ(p.max_switching(), p.scan_max_switching());
      if (step % 50 == 0) ASSERT_NO_THROW(p.self_check());
    }
    ASSERT_NO_THROW(p.self_check());
  }
}

TEST(CurrentProfile, OverlayMaximaMatchScansAndRollBack) {
  // The span+range-query overlay probes must (a) return exactly what the
  // O(grid) overlay scan returns — itself pinned to copy + update +
  // max_*() — and (b) leave the profile bit-identical to its pre-probe
  // state.
  Rng rng(0xBADA55);
  for (const std::size_t grid : {3ul, 29ul, 128ul, 193ul}) {
    const auto gates = random_gates(rng, grid, 30);
    ModuleCurrentProfile p(grid);
    std::vector<std::size_t> in_module;
    for (std::size_t i = 0; i < gates.size(); ++i) {
      if (rng.below(2) == 0) continue;
      p.add_gate(gates[i].times, gates[i].ipeak_ua);
      in_module.push_back(i);
    }
    if (in_module.empty()) {
      p.add_gate(gates[0].times, gates[0].ipeak_ua);
      in_module.push_back(0);
    }
    const ModuleCurrentProfile before = p;
    for (int trial = 0; trial < 100; ++trial) {
      const auto& cand = gates[rng.below(gates.size())];
      const auto fast = p.max_with_gate_added(cand.times, cand.ipeak_ua);
      const auto ref = p.scan_max_with_gate_added(cand.times, cand.ipeak_ua);
      ASSERT_EQ(fast.current_ua, ref.current_ua);
      ASSERT_EQ(fast.switching, ref.switching);
      // Cross-check against the materialised copy the overlay stands for.
      ModuleCurrentProfile copy = p;
      copy.add_gate(cand.times, cand.ipeak_ua);
      ASSERT_EQ(fast.current_ua, copy.max_current_ua());
      ASSERT_EQ(fast.switching, copy.max_switching());

      const auto& member = gates[in_module[rng.below(in_module.size())]];
      const auto rfast = p.max_with_gate_removed(member.times,
                                                 member.ipeak_ua);
      const auto rref =
          p.scan_max_with_gate_removed(member.times, member.ipeak_ua);
      ASSERT_EQ(rfast.current_ua, rref.current_ua);
      ASSERT_EQ(rfast.switching, rref.switching);
      ModuleCurrentProfile rcopy = p;
      rcopy.remove_gate(member.times, member.ipeak_ua);
      ASSERT_EQ(rfast.current_ua, rcopy.max_current_ua());
      ASSERT_EQ(rfast.switching, rcopy.max_switching());

      ASSERT_EQ(p, before);  // probes rolled back bit-exactly
    }
    ASSERT_NO_THROW(p.self_check());
  }
}

TEST(CurrentProfile, OverlayRemovalOfDominantGateFindsRunnerUp) {
  // Targeted witness-invalidation: one gate dominates the peak at a unique
  // slot; probing its removal must surface the runner-up slot's value, not
  // a stale root.
  ModuleCurrentProfile p(16);
  DynamicBitset dominant(16);
  dominant.set(5);
  DynamicBitset runner_up(16);
  runner_up.set(11);
  p.add_gate(dominant, 100.0);
  p.add_gate(runner_up, 7.0);
  EXPECT_DOUBLE_EQ(p.max_current_ua(), 100.0);
  const auto after = p.max_with_gate_removed(dominant, 100.0);
  EXPECT_DOUBLE_EQ(after.current_ua, 7.0);
  EXPECT_EQ(after.switching, 1u);
  // And the probe left the dominant gate in place.
  EXPECT_DOUBLE_EQ(p.max_current_ua(), 100.0);
  EXPECT_EQ(p.max_switching(), 1u);
}

}  // namespace
}  // namespace iddq::est
