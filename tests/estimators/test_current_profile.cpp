#include "estimators/current_profile.hpp"

#include <gtest/gtest.h>

#include "library/cell_library.hpp"
#include "netlist/gen/array_cut.hpp"
#include "netlist/gen/c17.hpp"

namespace iddq::est {
namespace {

struct Fixture {
  netlist::Netlist nl = netlist::gen::make_c17();
  lib::CellLibrary library = lib::default_library();
  std::vector<lib::CellParams> cells = lib::bind_cells(nl, library);
  TransitionTimes tt{nl};  // unit grid for hand-checkable numbers
};

TEST(CurrentProfile, C17WholeCircuit) {
  Fixture f;
  const auto prof = circuit_profile(f.nl, f.tt, f.cells);
  const double nand2 = f.cells[f.nl.at("10")].ipeak_ua;
  const auto current = prof.current_ua();
  // Slot 1: gates 10, 11, 16, 19 can switch (16/19 via direct input paths).
  EXPECT_NEAR(current[1], 4 * nand2, 1e-9);
  // Slot 2: 16, 19 (via 11) and 22, 23 (via short paths).
  EXPECT_NEAR(current[2], 4 * nand2, 1e-9);
  // Slot 3: 22, 23 only.
  EXPECT_NEAR(current[3], 2 * nand2, 1e-9);
  EXPECT_NEAR(prof.max_current_ua(), 4 * nand2, 1e-9);
  EXPECT_EQ(prof.max_switching(), 4u);
}

TEST(CurrentProfile, AddRemoveRoundTrip) {
  Fixture f;
  ModuleCurrentProfile p(f.tt.grid_size());
  const ModuleCurrentProfile empty = p;
  for (const auto id : f.nl.logic_gates())
    p.add_gate(f.tt.at(id), f.cells[id].ipeak_ua);
  for (const auto id : f.nl.logic_gates())
    p.remove_gate(f.tt.at(id), f.cells[id].ipeak_ua);
  EXPECT_EQ(p, empty);
  EXPECT_DOUBLE_EQ(p.max_current_ua(), 0.0);
}

TEST(CurrentProfile, ProfileOfSubset) {
  Fixture f;
  const std::vector<netlist::GateId> subset = {f.nl.at("10"), f.nl.at("11")};
  const auto p = profile_of(f.tt, f.cells, subset);
  const double nand2 = f.cells[f.nl.at("10")].ipeak_ua;
  EXPECT_NEAR(p.max_current_ua(), 2 * nand2, 1e-9);  // both switch at t=1
  EXPECT_EQ(p.max_switching(), 2u);
}

TEST(CurrentProfile, PeakOverlapSeesModuleActivity) {
  Fixture f;
  const std::vector<netlist::GateId> subset = {f.nl.at("10"), f.nl.at("11"),
                                               f.nl.at("22")};
  const auto p = profile_of(f.tt, f.cells, subset);
  // Gate 22 switches at {2,3}; within this subset only itself -> overlap 1.
  EXPECT_EQ(p.peak_overlap(f.tt.at(f.nl.at("22"))), 1u);
  // Gate 10 at {1} overlaps 11 -> 2.
  EXPECT_EQ(p.peak_overlap(f.tt.at(f.nl.at("10"))), 2u);
}

TEST(CurrentProfile, FigureTwoShapeEffect) {
  // The paper's figure 2: grouping along the flow (rows) yields a smaller
  // per-group max current than grouping across the flow (columns).
  const auto cut = netlist::gen::make_array_cut(6, 6);
  const auto library = lib::default_library();
  const auto cells = lib::bind_cells(cut.netlist, library);
  const TransitionTimes tt(cut.netlist);

  const auto rows = netlist::gen::row_band_partition(cut, 3);
  const auto cols = netlist::gen::column_band_partition(cut, 3);
  double worst_row = 0.0;
  double worst_col = 0.0;
  for (const auto& group : rows)
    worst_row = std::max(worst_row,
                         profile_of(tt, cells, group).max_current_ua());
  for (const auto& group : cols)
    worst_col = std::max(worst_col,
                         profile_of(tt, cells, group).max_current_ua());
  // Row bands: 2 cells per time slot; column bands: 6 cells of one column
  // switch together. The column grouping must be markedly worse.
  EXPECT_GT(worst_col, worst_row * 1.5);
}

TEST(CurrentProfile, RemoveCancelsFloatingPointResidue) {
  Fixture f;
  ModuleCurrentProfile p(f.tt.grid_size());
  p.add_gate(f.tt.at(f.nl.at("10")), 0.1);
  p.add_gate(f.tt.at(f.nl.at("11")), 0.2);
  p.remove_gate(f.tt.at(f.nl.at("10")), 0.1);
  p.remove_gate(f.tt.at(f.nl.at("11")), 0.2);
  // Slot currents are exactly zero once the count reaches zero.
  for (const double v : p.current_ua()) EXPECT_EQ(v, 0.0);
}

TEST(CurrentProfile, SumOfModuleMaximaBoundsGlobalPeak) {
  // Invariant exploited by the table-1 analysis: for any disjoint cover,
  // sum over modules of max >= max over time of the global profile.
  Fixture f;
  const auto global = circuit_profile(f.nl, f.tt, f.cells);
  const std::vector<std::vector<netlist::GateId>> groups = {
      {f.nl.at("10"), f.nl.at("16"), f.nl.at("22")},
      {f.nl.at("11"), f.nl.at("19"), f.nl.at("23")}};
  double sum = 0.0;
  for (const auto& g : groups)
    sum += profile_of(f.tt, f.cells, g).max_current_ua();
  EXPECT_GE(sum, global.max_current_ua() - 1e-9);
}

}  // namespace
}  // namespace iddq::est
