#include "estimators/leakage.hpp"

#include <gtest/gtest.h>

#include "library/cell_library.hpp"
#include "netlist/gen/c17.hpp"

namespace iddq::est {
namespace {

TEST(Leakage, SumsGateLeakagesInMicroamps) {
  const auto nl = netlist::gen::make_c17();
  const auto cells = lib::bind_cells(nl, lib::default_library());
  const double leak = module_leakage_ua(cells, nl.logic_gates());
  const double nand2_na = cells[nl.at("10")].ileak_na;
  EXPECT_NEAR(leak, 6.0 * nand2_na / 1000.0, 1e-12);
}

TEST(Leakage, EmptyModuleLeaksNothing) {
  const auto nl = netlist::gen::make_c17();
  const auto cells = lib::bind_cells(nl, lib::default_library());
  EXPECT_DOUBLE_EQ(module_leakage_ua(cells, {}), 0.0);
}

TEST(Leakage, DiscriminabilityDefinition) {
  EXPECT_DOUBLE_EQ(discriminability(1.5, 0.15), 10.0);
  EXPECT_DOUBLE_EQ(discriminability(1.0, 0.5), 2.0);
}

TEST(Leakage, ZeroLeakageIsEffectivelyInfinite) {
  EXPECT_GT(discriminability(1.0, 0.0), 1e9);
}

TEST(Leakage, PaperConstraintExample) {
  // d(M) >= 10 demands module leakage <= IDDQ_th / 10.
  const double iddq_th = 1.5;
  const double d_min = 10.0;
  EXPECT_GE(discriminability(iddq_th, 0.15), d_min);
  EXPECT_LT(discriminability(iddq_th, 0.16), d_min);
}

}  // namespace
}  // namespace iddq::est
