#include "estimators/delay_estimator.hpp"

#include <gtest/gtest.h>

#include "electrical/delay_model.hpp"
#include "library/cell_library.hpp"
#include "netlist/builder.hpp"
#include "netlist/gen/c17.hpp"

namespace iddq::est {
namespace {

TEST(DelayEstimator, C17NominalCriticalPath) {
  const auto nl = netlist::gen::make_c17();
  const auto cells = lib::bind_cells(nl, lib::default_library());
  // Longest path: three NAND2 levels.
  const double nand2 = cells[nl.at("10")].delay_ps;
  EXPECT_NEAR(nominal_critical_path_ps(nl, cells), 3 * nand2, 1e-9);
}

TEST(DelayEstimator, HeterogeneousPath) {
  netlist::NetlistBuilder b("mixed");
  const auto a = b.add_input("a");
  const auto x = b.add_gate(netlist::GateKind::kNot, "x", {a});
  const auto y = b.add_gate(netlist::GateKind::kXor, "y", {x, a});
  b.mark_output(y);
  const auto nl = std::move(b).build();
  const auto cells = lib::bind_cells(nl, lib::default_library());
  EXPECT_NEAR(nominal_critical_path_ps(nl, cells),
              cells[x].delay_ps + cells[y].delay_ps, 1e-9);
}

TEST(DelayEstimator, DegradedPathScalesWithDelta) {
  const auto nl = netlist::gen::make_c17();
  const auto cells = lib::bind_cells(nl, lib::default_library());
  std::vector<double> delta(nl.gate_count(), 1.05);
  const double d0 = nominal_critical_path_ps(nl, cells);
  EXPECT_NEAR(degraded_critical_path_ps(nl, cells, delta), 1.05 * d0, 1e-9);
}

TEST(DelayEstimator, NonUniformDeltaCanShiftCriticalPath) {
  // Two parallel paths a->x->y and a->z->y; slow down the off-critical one
  // until it dominates.
  netlist::NetlistBuilder b("par");
  const auto a = b.add_input("a");
  const auto c = b.add_input("c");
  const auto x = b.add_gate(netlist::GateKind::kXor, "x", {a, c});  // slow
  const auto z = b.add_gate(netlist::GateKind::kNot, "z", {a});     // fast
  const auto y = b.add_gate(netlist::GateKind::kNand, "y", {x, z});
  b.mark_output(y);
  const auto nl = std::move(b).build();
  const auto cells = lib::bind_cells(nl, lib::default_library());
  std::vector<double> delta(nl.gate_count(), 1.0);
  const double base = nominal_critical_path_ps(nl, cells);
  // Degrade the NOT massively: path through z becomes critical.
  delta[z] = 20.0;
  const double degraded = degraded_critical_path_ps(nl, cells, delta);
  EXPECT_NEAR(degraded, 20.0 * cells[z].delay_ps + cells[y].delay_ps, 1e-9);
  EXPECT_GT(degraded, base);
}

TEST(DeltaInterpolator, ExactAtAnchors) {
  const double rs = 0.02;
  const double cs = 1500.0;
  const double cg = 15.0;
  const double rg = 25.0;
  const std::uint32_t n_max = 80;
  const DeltaInterpolator interp(rs, cs, cg, rg, n_max);
  elec::DelayModelInput in{rs, cs, cg, rg, 1};
  EXPECT_NEAR(interp.at(1), elec::DelayDegradationModel::delta(in), 1e-12);
  in.n = n_max;
  EXPECT_NEAR(interp.at(n_max), elec::DelayDegradationModel::delta(in),
              1e-12);
}

TEST(DeltaInterpolator, InterpolationErrorIsSmall) {
  // delta(n) is close to affine in n; the two-anchor interpolation must stay
  // within a tight relative band of the exact model over the whole range.
  const double rs = 0.02;
  const double cs = 1500.0;
  const double cg = 15.0;
  const double rg = 25.0;
  const std::uint32_t n_max = 100;
  const DeltaInterpolator interp(rs, cs, cg, rg, n_max);
  for (std::uint32_t n = 1; n <= n_max; n += 7) {
    elec::DelayModelInput in{rs, cs, cg, rg, n};
    const double exact = elec::DelayDegradationModel::delta(in);
    EXPECT_NEAR(interp.at(n), exact, exact * 0.01) << "n=" << n;
  }
}

TEST(DeltaInterpolator, ClampsAboveNMax) {
  const DeltaInterpolator interp(0.02, 1500.0, 15.0, 25.0, 10);
  EXPECT_DOUBLE_EQ(interp.at(10), interp.at(500));
}

TEST(DeltaInterpolator, SingleAnchorDegenerate) {
  const DeltaInterpolator interp(0.02, 1500.0, 15.0, 25.0, 1);
  EXPECT_GE(interp.at(1), 1.0);
  EXPECT_DOUBLE_EQ(interp.at(1), interp.at(7));
}

}  // namespace
}  // namespace iddq::est
