// Executable record of the Table 1 c6288 deviation (EXPERIMENTS.md):
//
// On a homogeneous array whose transition-time sets are dense, the
// pessimistic estimator makes the summed per-module peak current — and with
// it the BIC sensor area — essentially partition-invariant: there exists a
// time slot t* where most gates may switch, so for any balanced cover
//   Sum_m max_t I_m(t)  ~  Sum_m I_m(t*)  =  I(t*)  =  global peak,
// the provable lower bound. The paper reports a 25.9% evolution-vs-standard
// gap on the real C6288; our faithful implementation of the published
// estimator cannot produce one, and this test pins that analysis down so a
// future estimator change that *does* differentiate partitions will surface
// here.
#include <gtest/gtest.h>

#include "core/start_partition.hpp"
#include "estimators/current_profile.hpp"
#include "library/cell_library.hpp"
#include "netlist/gen/iscas_profiles.hpp"
#include "netlist/gen/multiplier.hpp"
#include "support/rng.hpp"

namespace iddq {
namespace {

TEST(C6288Invariance, SummedModulePeaksPinnedToGlobalPeak) {
  const auto nl = netlist::gen::make_multiplier(16, "c6288");
  const auto library = lib::default_library();
  const auto cells = lib::bind_cells(nl, library);
  const est::TransitionTimes tt(nl, cells, 45.0);
  const double global_peak =
      est::circuit_profile(nl, tt, cells).max_current_ua();

  Rng rng(21);
  for (int trial = 0; trial < 5; ++trial) {
    const auto p = core::make_start_partition(nl, 5, rng);
    double sum = 0.0;
    for (std::uint32_t m = 0; m < 5; ++m)
      sum += est::profile_of(tt, cells, p.module(m)).max_current_ua();
    // Lower bound is exact; the slack above it stays within ~2% for any
    // balanced partition — hence no method can beat another by 25.9% here.
    EXPECT_GE(sum, global_peak - 1e-6);
    EXPECT_LE(sum, global_peak * 1.02)
        << "partition found with differentiable area: the estimator "
           "changed — revisit EXPERIMENTS.md's c6288 note";
  }
}

TEST(C6288Invariance, HeterogeneousCircuitsAreNotPinned) {
  // The contrast that makes Table 1 work everywhere else: on the
  // cone-structured stand-ins, partitions differ by far more than 2%.
  const auto nl = netlist::gen::make_iscas_like("c1908");
  const auto library = lib::default_library();
  const auto cells = lib::bind_cells(nl, library);
  const est::TransitionTimes tt(nl, cells, 45.0);
  const double global_peak =
      est::circuit_profile(nl, tt, cells).max_current_ua();

  Rng rng(22);
  double worst_sum = 0.0;
  for (int trial = 0; trial < 5; ++trial) {
    const auto p = core::make_start_partition(nl, 2, rng);
    double sum = 0.0;
    for (std::uint32_t m = 0; m < 2; ++m)
      sum += est::profile_of(tt, cells, p.module(m)).max_current_ua();
    worst_sum = std::max(worst_sum, sum);
  }
  EXPECT_GT(worst_sum, global_peak * 1.10);
}

}  // namespace
}  // namespace iddq
