// Cross-circuit property sweeps: invariants that must hold on *every*
// supported circuit family, exercised through TEST_P over generators.
#include <gtest/gtest.h>

#include <cmath>

#include "core/size_planner.hpp"
#include "core/start_partition.hpp"
#include "estimators/current_profile.hpp"
#include "estimators/delay_estimator.hpp"
#include "estimators/leakage.hpp"
#include "library/cell_library.hpp"
#include "netlist/gen/array_cut.hpp"
#include "netlist/gen/c17.hpp"
#include "netlist/gen/iscas_profiles.hpp"
#include "netlist/gen/multiplier.hpp"
#include "netlist/gen/random_dag.hpp"
#include "netlist/levelize.hpp"
#include "partition/evaluator.hpp"
#include "support/rng.hpp"

namespace iddq {
namespace {

netlist::Netlist make_circuit(const std::string& spec) {
  if (spec == "c17") return netlist::gen::make_c17();
  if (spec == "mult8") return netlist::gen::make_multiplier(8);
  if (spec == "array") return netlist::gen::make_array_cut(6, 9).netlist;
  if (spec == "dag-small")
    return netlist::gen::make_random_dag(
        netlist::gen::DagProfile::basic("ps", 120, 10, 5));
  if (spec == "dag-wide")
    return netlist::gen::make_random_dag(
        netlist::gen::DagProfile::basic("pw", 600, 8, 6));
  if (spec == "dag-deep")
    return netlist::gen::make_random_dag(
        netlist::gen::DagProfile::basic("pd", 600, 60, 7));
  return netlist::gen::make_iscas_like(spec);
}

class CircuitProperty : public ::testing::TestWithParam<std::string> {
 protected:
  netlist::Netlist nl = make_circuit(GetParam());
  lib::CellLibrary library = lib::default_library();
};

TEST_P(CircuitProperty, StructuralSanity) {
  EXPECT_TRUE(netlist::is_acyclic(nl));
  EXPECT_GE(nl.primary_outputs().size(), 1u);
  for (const auto id : nl.logic_gates())
    EXPECT_GE(nl.gate(id).fanins.size(), 1u);
  // Fanout lists mirror fanin lists.
  for (netlist::GateId id = 0; id < nl.gate_count(); ++id)
    for (const auto f : nl.gate(id).fanins) {
      const auto& fo = nl.gate(f).fanouts;
      EXPECT_NE(std::find(fo.begin(), fo.end(), id), fo.end());
    }
}

TEST_P(CircuitProperty, TransitionTimeBoundsAreDepths) {
  const est::TransitionTimes tt(nl);  // unit grid
  const auto lv = netlist::levelize(nl);
  for (const auto id : nl.logic_gates()) {
    EXPECT_EQ(tt.at(id).find_first(), lv.min_depth[id]);
    EXPECT_EQ(tt.at(id).find_last(), lv.depth[id]);
    EXPECT_GE(tt.count(id), 1u);
  }
}

TEST_P(CircuitProperty, CurrentEstimatorSuperadditivity) {
  // Splitting a module can only raise the summed peak:
  //   max(A u B) <= max(A) + max(B), for any disjoint A, B.
  const auto cells = lib::bind_cells(nl, library);
  const est::TransitionTimes tt(nl, cells, 45.0);
  Rng rng(3);
  const auto logic = nl.logic_gates();
  for (int trial = 0; trial < 8; ++trial) {
    std::vector<netlist::GateId> a;
    std::vector<netlist::GateId> b;
    std::vector<netlist::GateId> both;
    for (const auto g : logic) {
      both.push_back(g);
      (rng.chance(0.5) ? a : b).push_back(g);
    }
    if (a.empty() || b.empty()) continue;
    const double peak_union =
        est::profile_of(tt, cells, both).max_current_ua();
    const double split_sum = est::profile_of(tt, cells, a).max_current_ua() +
                             est::profile_of(tt, cells, b).max_current_ua();
    EXPECT_LE(peak_union, split_sum + 1e-6);
  }
}

TEST_P(CircuitProperty, EvaluatorInvariantsAcrossModuleCounts) {
  const part::EvalContext ctx(nl, library, elec::SensorSpec{},
                              part::CostWeights{});
  Rng rng(7);
  const std::size_t n = nl.logic_gate_count();
  for (const std::size_t k : {1u, 2u, 4u}) {
    if (k > n) continue;
    part::PartitionEvaluator eval(
        ctx, core::make_start_partition(nl, k, rng));
    const auto costs = eval.costs();
    EXPECT_TRUE(std::isfinite(costs.c1));
    EXPECT_GE(costs.c2, 0.0);
    EXPECT_GE(costs.c4, costs.c2);
    EXPECT_DOUBLE_EQ(costs.c5, static_cast<double>(k));
    // Every module's sensor honours the rail-perturbation limit.
    for (std::uint32_t m = 0; m < k; ++m) {
      const auto r = eval.module_report(m);
      EXPECT_LE(r.rail_perturbation_mv, ctx.sensor.r_max_mv + 1e-9);
      EXPECT_GT(r.rs_kohm, 0.0);
    }
  }
}

TEST_P(CircuitProperty, MoreModulesMonotonicallyReduceWorstLeakage) {
  const auto cells = lib::bind_cells(nl, library);
  Rng rng(11);
  const std::size_t n = nl.logic_gate_count();
  double previous_worst = std::numeric_limits<double>::infinity();
  for (const std::size_t k : {1u, 2u, 4u, 8u}) {
    if (k > n) break;
    const auto p = core::make_start_partition(nl, k, rng);
    double worst = 0.0;
    for (std::uint32_t m = 0; m < k; ++m)
      worst = std::max(worst,
                       est::module_leakage_ua(cells, p.module(m)));
    // Balanced start partitions: worst module leakage shrinks with K.
    EXPECT_LE(worst, previous_worst * 1.05);
    previous_worst = worst;
  }
}

TEST_P(CircuitProperty, DegradedDelayNeverBelowNominal) {
  const part::EvalContext ctx(nl, library, elec::SensorSpec{},
                              part::CostWeights{});
  Rng rng(13);
  const std::size_t k = std::min<std::size_t>(3, nl.logic_gate_count());
  part::PartitionEvaluator eval(ctx, core::make_start_partition(nl, k, rng));
  EXPECT_GE(eval.d_bic_ps(), ctx.d_nominal_ps - 1e-9);
}

TEST_P(CircuitProperty, SizePlannerAlwaysFeasible) {
  const part::EvalContext ctx(nl, library, elec::SensorSpec{},
                              part::CostWeights{});
  const auto plan = core::plan_module_size(ctx);
  EXPECT_GE(plan.module_count, 1u);
  EXPECT_LE(plan.module_count, nl.logic_gate_count());
  Rng rng(17);
  part::PartitionEvaluator eval(
      ctx, core::make_start_partition(nl, plan.module_count, rng));
  // The planner's margin must make chain-clustered starts feasible.
  EXPECT_DOUBLE_EQ(eval.violation(), 0.0) << "K=" << plan.module_count;
}

INSTANTIATE_TEST_SUITE_P(Circuits, CircuitProperty,
                         ::testing::Values("c17", "mult8", "array",
                                           "dag-small", "dag-wide",
                                           "dag-deep", "c1908"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (auto& c : name)
                             if (c == '-') c = '_';
                           return name;
                         });

}  // namespace
}  // namespace iddq
