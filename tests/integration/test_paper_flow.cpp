// Miniature Table-1 run: the paper's two qualitative claims must hold on a
// benchmark-scale circuit under a reduced ES budget:
//   1. the standard baseline needs more BIC-sensor area than the evolution
//      result at identical module sizes,
//   2. neither method buys delay or test time: the overheads are small and
//      essentially method-independent.
#include <gtest/gtest.h>

#include "core/flow.hpp"
#include "netlist/gen/iscas_profiles.hpp"
#include "support/math.hpp"

namespace iddq {
namespace {

class PaperFlow : public ::testing::Test {
 protected:
  static const core::FlowResult& result() {
    static const core::FlowResult r = [] {
      const auto nl = netlist::gen::make_iscas_like("c1908");
      const auto library = lib::default_library();
      core::FlowConfig cfg;
      cfg.es.max_generations = 150;
      cfg.es.stall_generations = 40;
      cfg.es.seed = 42;
      return core::run_flow(nl, library, cfg);
    }();
    return r;
  }
};

TEST_F(PaperFlow, ModuleCountMatchesPaperBand) {
  // Paper: 2 modules for C1908.
  EXPECT_EQ(result().evolution.module_count, 2u);
}

TEST_F(PaperFlow, BothMethodsFeasible) {
  EXPECT_TRUE(result().evolution.fitness.feasible());
  EXPECT_TRUE(result().standard.fitness.feasible());
}

TEST_F(PaperFlow, StandardNeedsMoreSensorArea) {
  // Paper band for the area overhead: 14.5%..30.6% across circuits; accept
  // a widened band for the reduced test budget.
  const double overhead = result().standard_area_overhead_pct();
  EXPECT_GT(overhead, 3.0);
  EXPECT_LT(overhead, 60.0);
}

TEST_F(PaperFlow, DelayOverheadsSmallAndMethodIndependent) {
  const double evo = result().evolution.delay_overhead;
  const double std = result().standard.delay_overhead;
  EXPECT_GT(evo, 0.0);
  EXPECT_LT(evo, 0.15);  // single-digit percent regime
  EXPECT_LT(std, 0.15);
  // "does not show any improvement in system performance": same ballpark.
  EXPECT_LT(math::rel_diff(evo, std), 0.5);
}

TEST_F(PaperFlow, TestTimeOverheadsComparable) {
  const double evo = result().evolution.test_overhead;
  const double std = result().standard.test_overhead;
  EXPECT_GT(evo, 0.0);
  EXPECT_LT(evo, 1.0);
  EXPECT_LT(math::rel_diff(evo, std), 0.5);
}

TEST_F(PaperFlow, EveryModuleMeetsTheConstraints) {
  for (const auto& m : result().evolution.modules) {
    EXPECT_GE(m.discriminability, 10.0);  // d >= 10 (paper's typical value)
    EXPECT_LE(m.rail_perturbation_mv, 200.0 + 1e-9);  // r limit
  }
}

TEST_F(PaperFlow, SensorAreasInPaperMagnitudeRange) {
  // The paper reports totals between 4.95E+5 and 5.65E+6 technology units;
  // our calibration targets the same order-of-magnitude window.
  EXPECT_GT(result().evolution.sensor_area, 1.0e5);
  EXPECT_LT(result().evolution.sensor_area, 1.0e8);
}

}  // namespace
}  // namespace iddq
