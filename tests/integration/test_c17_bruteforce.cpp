// Section 4.3 worked example: the evolution strategy on C17 must find the
// global optimum, which a 6-gate circuit lets us verify by exhaustive
// enumeration of all two-module partitions.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/evolution.hpp"
#include "netlist/gen/c17.hpp"
#include "partition/evaluator.hpp"

namespace iddq {
namespace {

struct BruteForceResult {
  double best_cost = std::numeric_limits<double>::infinity();
  part::Partition best{1, 1};
};

BruteForceResult brute_force_two_modules(const part::EvalContext& ctx) {
  const auto& nl = ctx.nl;
  const auto logic = nl.logic_gates();
  BruteForceResult result;
  // Assignments 1..2^6-2 with gate 0 pinned to module 0 (module labels are
  // symmetric), both modules non-empty.
  for (std::uint32_t mask = 1; mask + 1 < (1u << logic.size()); ++mask) {
    if (mask & 1u) continue;  // gate 0 stays in module 0
    std::vector<std::vector<netlist::GateId>> groups(2);
    for (std::size_t i = 0; i < logic.size(); ++i)
      groups[(mask >> i) & 1u].push_back(logic[i]);
    part::PartitionEvaluator eval(ctx,
                                  part::Partition::from_groups(nl, groups));
    const auto fitness = eval.fitness();
    if (!fitness.feasible()) continue;
    if (fitness.cost < result.best_cost) {
      result.best_cost = fitness.cost;
      result.best = eval.partition();
    }
  }
  return result;
}

TEST(C17BruteForce, EvolutionFindsGlobalOptimum) {
  const auto nl = netlist::gen::make_c17();
  const auto library = lib::default_library();
  const part::EvalContext ctx(nl, library, elec::SensorSpec{},
                              part::CostWeights{});
  const auto brute = brute_force_two_modules(ctx);
  ASSERT_TRUE(std::isfinite(brute.best_cost));

  core::EsParams params;
  params.mu = 6;
  params.lambda = 6;
  params.chi = 2;
  params.max_generations = 60;
  params.stall_generations = 60;
  params.seed = 4;
  core::EvolutionEngine engine(ctx, params);
  const auto result = engine.run_with_module_count(2);

  // The ES may legally merge to K=1 if that is cheaper; compare against the
  // unrestricted best of {K=1, best K=2}.
  part::PartitionEvaluator merged(
      ctx, part::Partition::from_groups(
               nl, std::vector<std::vector<netlist::GateId>>{
                       {nl.at("10"), nl.at("11"), nl.at("16"), nl.at("19"),
                        nl.at("22"), nl.at("23")}}));
  const double global_best = std::min(brute.best_cost,
                                      merged.fitness().cost);
  EXPECT_NEAR(result.best_fitness.cost, global_best,
              global_best * 1e-9);
}

TEST(C17BruteForce, PaperPartitionIsNearOptimalAmongTwoModuleSplits) {
  // The paper's final partition {(g1,g3,g5),(g2,g4,g6)} = {(10,16,22),
  // (11,19,23)}: under our (recalibrated) cost model it must rank in the
  // best decile of all two-module partitions.
  const auto nl = netlist::gen::make_c17();
  const auto library = lib::default_library();
  const part::EvalContext ctx(nl, library, elec::SensorSpec{},
                              part::CostWeights{});
  part::PartitionEvaluator paper(
      ctx, part::Partition::from_groups(
               nl, std::vector<std::vector<netlist::GateId>>{
                       {nl.at("10"), nl.at("16"), nl.at("22")},
                       {nl.at("11"), nl.at("19"), nl.at("23")}}));
  const double paper_cost = paper.fitness().cost;

  const auto logic = nl.logic_gates();
  std::size_t better = 0;
  std::size_t total = 0;
  for (std::uint32_t mask = 1; mask + 1 < (1u << logic.size()); ++mask) {
    if (mask & 1u) continue;
    std::vector<std::vector<netlist::GateId>> groups(2);
    for (std::size_t i = 0; i < logic.size(); ++i)
      groups[(mask >> i) & 1u].push_back(logic[i]);
    part::PartitionEvaluator eval(ctx,
                                  part::Partition::from_groups(nl, groups));
    ++total;
    if (eval.fitness().cost < paper_cost - 1e-12) ++better;
  }
  EXPECT_LE(better, total / 10) << "paper partition beaten by " << better
                                << " of " << total;
}

}  // namespace
}  // namespace iddq
