#!/bin/sh
# Idle-deadline eviction at the binary level: with --cache-idle-evict 1,
# entries left untouched for a second leave the in-memory map but stay on
# disk — the second identical sweep replays them as disk reloads (stats
# reports cache_disk_hits > 0) with byte-identical rows.
# Usage: cache_idle_evict.sh <iddqsyn_server>
set -eu

SERVER="$1"
WORK="cache_idle_evict_work"
rm -rf "$WORK"
mkdir -p "$WORK"

SUBMIT_A='{"op":"submit","id":"a","circuits":["c17"],"methods":["random","standard"],"seed":42}'
SUBMIT_B='{"op":"submit","id":"b","circuits":["c17"],"methods":["random","standard"],"seed":42}'

# One pipe session: sweep, go idle past the deadline, sweep again, then
# ask for stats once the replay sweep has finished.
{
  printf '%s\n' "$SUBMIT_A"
  sleep 2
  printf '%s\n' "$SUBMIT_B"
  sleep 2
  printf '%s\n' '{"op":"stats"}'
  printf '%s\n' '{"op":"shutdown"}'
} | timeout 120 "$SERVER" --pipe --workers 1 \
      --cache-dir "$WORK/cache" --cache-idle-evict 1 \
      > "$WORK/out.txt" 2> "$WORK/err.txt"

# The idle sweep's entries were reloaded from disk, not recomputed.
grep -q '"event":"stats"' "$WORK/out.txt"
grep -q '"cache_disk_hits":[1-9]' "$WORK/out.txt"

# Both sweeps streamed identical rows (modulo the job/sweep ids).
sed -n 's/.*"event":"row"//p' "$WORK/out.txt" \
  | sed 's/"job":[0-9]*//; s/"id":"[ab]"//' > "$WORK/rows.txt"
LINES=$(wc -l < "$WORK/rows.txt")
[ "$LINES" -eq 4 ] || {
  echo "cache_idle_evict: want 4 rows (2 sweeps x 2 methods), got $LINES" >&2
  cat "$WORK/out.txt" >&2
  exit 1
}
head -n 2 "$WORK/rows.txt" > "$WORK/rows_a.txt"
tail -n 2 "$WORK/rows.txt" > "$WORK/rows_b.txt"
cmp "$WORK/rows_a.txt" "$WORK/rows_b.txt"

echo "cache_idle_evict: OK"
