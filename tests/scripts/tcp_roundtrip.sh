#!/bin/sh
# TCP transport acceptance at the binary level:
#   1. the same sweep over --listen (TCP) and --socket (unix) produces
#      bit-identical client row output,
#   2. connecting to a dead port is a clean exit-2 error, not a hang,
#   3. a server that dies mid-stream (SIGKILL — SIGTERM now drains
#      gracefully, docs/robustness.md) leaves the client with a clean
#      "connection ended" error, not a hang.
# Usage: tcp_roundtrip.sh <iddqsyn_server> <iddqsyn>
set -eu

SERVER="$1"
CLI="$2"
WORK="tcp_roundtrip_work"
rm -rf "$WORK"
mkdir -p "$WORK"

SERVER_PID=""
cleanup() {
  [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null
  wait 2>/dev/null || true
}
trap cleanup EXIT INT TERM

# Start a server and set PORT from the kernel-assigned endpoint it logs.
start_tcp_server() {
  "$SERVER" --listen 127.0.0.1:0 --workers 2 "$@" \
    2> "$WORK/server_err.txt" &
  SERVER_PID=$!
  PORT=""
  for _ in $(seq 1 100); do
    PORT=$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' \
             "$WORK/server_err.txt")
    [ -n "$PORT" ] && return 0
    sleep 0.1
  done
  echo "tcp_roundtrip: server never reported its port" >&2
  cat "$WORK/server_err.txt" >&2
  exit 1
}

stop_server() {
  kill "$SERVER_PID" 2>/dev/null || true
  wait "$SERVER_PID" 2>/dev/null || true
  SERVER_PID=""
}

# --- 1. TCP vs unix-socket row streams are bit-identical ----------------
start_tcp_server
timeout 120 "$CLI" --submit "127.0.0.1:$PORT" \
  --method random,standard --seed 42 c17 > "$WORK/rows_tcp.txt"
stop_server

SOCK="$WORK/iddq.sock"
"$SERVER" --socket "$SOCK" --workers 2 2> "$WORK/server_unix_err.txt" &
SERVER_PID=$!
for _ in $(seq 1 100); do
  [ -S "$SOCK" ] && break
  sleep 0.1
done
timeout 120 "$CLI" --submit "$SOCK" \
  --method random,standard --seed 42 c17 > "$WORK/rows_unix.txt"
stop_server

cmp "$WORK/rows_tcp.txt" "$WORK/rows_unix.txt"
grep -q "method=random" "$WORK/rows_tcp.txt"

# --- 2. connection refused: clean error exit, bounded time --------------
# Bind-then-kill guarantees a port nothing is listening on.
start_tcp_server
DEAD_PORT="$PORT"
stop_server
set +e
timeout 30 "$CLI" --submit "127.0.0.1:$DEAD_PORT" c17 \
  > /dev/null 2> "$WORK/refused_err.txt"
STATUS=$?
set -e
[ "$STATUS" -eq 2 ] || {
  echo "tcp_roundtrip: refused connect exited $STATUS, want 2" >&2
  cat "$WORK/refused_err.txt" >&2
  exit 1
}
grep -qi "connect" "$WORK/refused_err.txt"

# --- 3. server death mid-stream: clean client error, not a hang ---------
# SIGKILL, not SIGTERM: a TERM'd server drains gracefully (cancels the
# sweep, says bye — the client exits 0 by design), so simulating a crash
# requires the signal the server cannot catch.
start_tcp_server
# evolution on several circuits keeps the sweep alive long enough for the
# kill below to land mid-stream.
timeout 60 "$CLI" --submit "127.0.0.1:$PORT" \
  --method evolution,standard --seed 42 c1908 c2670 \
  > "$WORK/midstream_rows.txt" 2> "$WORK/midstream_err.txt" &
CLIENT_PID=$!
sleep 0.5
kill -9 "$SERVER_PID" 2>/dev/null || true
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""
set +e
wait "$CLIENT_PID"
STATUS=$?
set -e
[ "$STATUS" -eq 2 ] || {
  echo "tcp_roundtrip: mid-stream disconnect exited $STATUS, want 2" >&2
  cat "$WORK/midstream_err.txt" >&2
  exit 1
}
grep -q "connection ended before the sweep completed" \
  "$WORK/midstream_err.txt"

echo "tcp_roundtrip: OK"
