#include "partition/evaluator.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/start_partition.hpp"
#include "netlist/gen/c17.hpp"
#include "netlist/gen/random_dag.hpp"
#include "support/rng.hpp"

namespace iddq::part {
namespace {

struct Fixture {
  netlist::Netlist nl = netlist::gen::make_c17();
  lib::CellLibrary library = lib::default_library();
  EvalContext ctx{nl, library, elec::SensorSpec{}, CostWeights{}};

  Partition two_module() const {
    return Partition::from_groups(
        nl, std::vector<std::vector<netlist::GateId>>{
                {nl.at("10"), nl.at("16"), nl.at("22")},
                {nl.at("11"), nl.at("19"), nl.at("23")}});
  }
};

TEST(Evaluator, ContextPrecomputesNominalDelay) {
  const Fixture f;
  const double nand2 = f.ctx.cells[f.nl.at("10")].delay_ps;
  EXPECT_NEAR(f.ctx.d_nominal_ps, 3 * nand2, 1e-9);
  EXPECT_GT(f.ctx.type_count, 0u);
  EXPECT_DOUBLE_EQ(f.ctx.leak_cap_ua,
                   f.ctx.sensor.iddq_th_ua / f.ctx.sensor.d_min);
}

TEST(Evaluator, CostsAreFiniteAndOrdered) {
  Fixture f;
  PartitionEvaluator eval(f.ctx, f.two_module());
  const Costs c = eval.costs();
  EXPECT_TRUE(std::isfinite(c.c1));
  EXPECT_GE(c.c2, 0.0);  // sensors never speed the circuit up
  EXPECT_TRUE(std::isfinite(c.c3));
  EXPECT_GE(c.c4, c.c2);  // test time includes the delay overhead
  EXPECT_DOUBLE_EQ(c.c5, 2.0);
}

TEST(Evaluator, C17IsFeasible) {
  Fixture f;
  PartitionEvaluator eval(f.ctx, f.two_module());
  EXPECT_DOUBLE_EQ(eval.violation(), 0.0);
  EXPECT_TRUE(eval.fitness().feasible());
}

TEST(Evaluator, ModuleReportConsistency) {
  Fixture f;
  PartitionEvaluator eval(f.ctx, f.two_module());
  for (std::uint32_t m = 0; m < 2; ++m) {
    const ModuleReport r = eval.module_report(m);
    EXPECT_EQ(r.gates, 3u);
    EXPECT_GT(r.idd_max_ua, 0.0);
    EXPECT_GT(r.leakage_ua, 0.0);
    EXPECT_GT(r.rs_kohm, 0.0);
    EXPECT_GT(r.area, f.ctx.sensor.a0_area);
    EXPECT_NEAR(r.tau_ps, r.rs_kohm * r.cs_ff, 1e-9);
    // Sensor sizing keeps the perturbation within the limit.
    EXPECT_LE(r.rail_perturbation_mv, f.ctx.sensor.r_max_mv + 1e-9);
    EXPECT_GE(r.discriminability, f.ctx.sensor.d_min);
  }
}

TEST(Evaluator, TotalAreaIsSumOfModuleAreas) {
  Fixture f;
  PartitionEvaluator eval(f.ctx, f.two_module());
  double sum = 0.0;
  for (std::uint32_t m = 0; m < 2; ++m) sum += eval.module_report(m).area;
  EXPECT_NEAR(eval.total_sensor_area(), sum, 1e-9);
}

TEST(Evaluator, C1EqualsLogArea) {
  Fixture f;
  PartitionEvaluator eval(f.ctx, f.two_module());
  EXPECT_NEAR(eval.costs().c1, std::log(eval.total_sensor_area()), 1e-12);
}

TEST(Evaluator, MoveGateUpdatesPartition) {
  Fixture f;
  PartitionEvaluator eval(f.ctx, f.two_module());
  eval.move_gate(f.nl.at("16"), 1);
  EXPECT_EQ(eval.partition().module_of(f.nl.at("16")), 1u);
  EXPECT_NO_THROW(eval.self_check());
}

TEST(Evaluator, MoveToSameModuleIsNoop) {
  Fixture f;
  PartitionEvaluator eval(f.ctx, f.two_module());
  const Costs before = eval.costs();
  eval.move_gate(f.nl.at("16"), 0);
  const Costs after = eval.costs();
  EXPECT_DOUBLE_EQ(before.total(CostWeights{}), after.total(CostWeights{}));
}

TEST(Evaluator, EmptyingModuleShrinksK) {
  Fixture f;
  PartitionEvaluator eval(f.ctx, f.two_module());
  eval.move_gate(f.nl.at("10"), 1);
  eval.move_gate(f.nl.at("16"), 1);
  eval.move_gate(f.nl.at("22"), 1);
  EXPECT_EQ(eval.partition().module_count(), 1u);
  EXPECT_DOUBLE_EQ(eval.costs().c5, 1.0);
  EXPECT_NO_THROW(eval.self_check());
}

TEST(Evaluator, SingleModuleOfBigCircuitViolatesDiscriminability) {
  // ~900 gates leak far beyond IDDQ_th / d: the constraint must fire.
  const auto nl = netlist::gen::make_random_dag(
      netlist::gen::DagProfile::basic("big", 900, 20, 3));
  const auto library = lib::default_library();
  const EvalContext ctx(nl, library, elec::SensorSpec{}, CostWeights{});
  Rng rng(1);
  PartitionEvaluator eval(ctx, core::make_start_partition(nl, 1, rng));
  EXPECT_GT(eval.violation(), 0.0);
  EXPECT_FALSE(eval.fitness().feasible());
}

TEST(Evaluator, MoreModulesRestoreFeasibility) {
  const auto nl = netlist::gen::make_random_dag(
      netlist::gen::DagProfile::basic("big", 900, 20, 3));
  const auto library = lib::default_library();
  const EvalContext ctx(nl, library, elec::SensorSpec{}, CostWeights{});
  Rng rng(1);
  PartitionEvaluator eval(ctx, core::make_start_partition(nl, 4, rng));
  EXPECT_DOUBLE_EQ(eval.violation(), 0.0);
}

TEST(Evaluator, RejectsNonCoveringPartition) {
  Fixture f;
  Partition p(f.nl.gate_count(), 2);
  p.assign(f.nl.at("10"), 0);  // everything else unassigned
  p.assign(f.nl.at("11"), 1);
  EXPECT_THROW((PartitionEvaluator(f.ctx, p)), Error);
}

TEST(Evaluator, DelayOverheadInPlausibleBand) {
  // The 1995 table reports delay overheads in the percent range.
  Fixture f;
  PartitionEvaluator eval(f.ctx, f.two_module());
  const double c2 = eval.costs().c2;
  EXPECT_GT(c2, 0.0);
  EXPECT_LT(c2, 0.25);
}

}  // namespace
}  // namespace iddq::part
