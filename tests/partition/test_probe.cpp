// probe_move contract: for any non-emptying move, probe_move(g, target)
// must return bit-for-bit what a copy of the evaluator would report after
// committing the move — across random walks, tabu-style candidate fans,
// and annealing-style accept/reject traces — while leaving the probing
// evaluator's own observable state untouched.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "core/neighborhood.hpp"
#include "core/start_partition.hpp"
#include "netlist/gen/random_dag.hpp"
#include "partition/evaluator.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace iddq::part {
namespace {

void expect_bits_eq(double got, double want, const char* what) {
  EXPECT_EQ(std::bit_cast<std::uint64_t>(got),
            std::bit_cast<std::uint64_t>(want))
      << what << ": " << got << " vs " << want;
}

void expect_probe_matches_copy(PartitionEvaluator& eval, netlist::GateId g,
                               std::uint32_t target) {
  const MoveProbe probe = eval.probe_move(g, target);
  PartitionEvaluator copy = eval;
  copy.move_gate(g, target);
  const Fitness fitness = copy.fitness();
  const Costs costs = copy.costs();
  expect_bits_eq(probe.fitness.violation, fitness.violation, "violation");
  expect_bits_eq(probe.fitness.cost, fitness.cost, "cost");
  const auto got = probe.costs.as_array();
  const auto want = costs.as_array();
  for (std::size_t i = 0; i < want.size(); ++i)
    expect_bits_eq(got[i], want[i], "costs[i]");
}

/// A random non-emptying move, or an invalid one when none exists.
core::GateMove random_move(const PartitionEvaluator& eval, Rng& rng) {
  const auto& p = eval.partition();
  const auto logic = eval.context().nl.logic_gates();
  for (int attempt = 0; attempt < 64; ++attempt) {
    const netlist::GateId g = logic[rng.index(logic.size())];
    const std::uint32_t src = p.module_of(g);
    if (p.module_size(src) <= 1) continue;
    const auto target =
        static_cast<std::uint32_t>(rng.index(p.module_count()));
    if (target == src) continue;
    return core::GateMove{g, target};
  }
  return core::GateMove{};
}

struct Scenario {
  std::size_t gates;
  std::size_t depth;
  std::size_t modules;
  std::uint64_t seed;
};

class ProbeEquivalence : public ::testing::TestWithParam<Scenario> {};

TEST_P(ProbeEquivalence, RandomWalkProbesMatchCopyMoveFitness) {
  const Scenario s = GetParam();
  const auto nl = netlist::gen::make_random_dag(
      netlist::gen::DagProfile::basic("probe", s.gates, s.depth, s.seed));
  const auto library = lib::default_library();
  const EvalContext ctx(nl, library, elec::SensorSpec{}, CostWeights{});
  Rng rng(s.seed * 104729 + 7);
  PartitionEvaluator eval(ctx,
                          core::make_start_partition(nl, s.modules, rng));

  for (int step = 0; step < 60; ++step) {
    const core::GateMove mv = random_move(eval, rng);
    if (!mv.valid()) break;
    const Fitness before = eval.fitness();
    expect_probe_matches_copy(eval, mv.gate, mv.target);
    // Probing must not disturb the probing evaluator.
    const Fitness after = eval.fitness();
    expect_bits_eq(after.violation, before.violation, "probe side effect");
    expect_bits_eq(after.cost, before.cost, "probe side effect");
    // Random-walk the base state: commit some probes, leave others.
    if (step % 3 != 2) eval.move_gate(mv.gate, mv.target);
    if (step % 10 == 9) ASSERT_NO_THROW(eval.self_check());
  }
}

// The last scenario's tiny modules keep probe seed sets under the dense
// cutover, covering the journaled-sweep timing path through probe_move;
// the coarse ones cover the scratch full-pass fallback.
INSTANTIATE_TEST_SUITE_P(
    Scenarios, ProbeEquivalence,
    ::testing::Values(Scenario{60, 6, 2, 1}, Scenario{150, 12, 4, 2},
                      Scenario{300, 15, 5, 3}, Scenario{300, 15, 3, 4},
                      Scenario{500, 20, 6, 5}, Scenario{500, 20, 160, 6}));

TEST(Probe, TabuStyleCandidateFanMatchesCopies) {
  // Many probes against one round-start state (what tabu does each round),
  // interleaved with committed best moves.
  const auto nl = netlist::gen::make_random_dag(
      netlist::gen::DagProfile::basic("fan", 200, 12, 9));
  const auto library = lib::default_library();
  const EvalContext ctx(nl, library, elec::SensorSpec{}, CostWeights{});
  Rng rng(77);
  PartitionEvaluator eval(ctx, core::make_start_partition(nl, 4, rng));

  for (int round = 0; round < 10; ++round) {
    std::vector<core::GateMove> candidates;
    for (int c = 0; c < 6; ++c) {
      const core::GateMove mv = core::sample_boundary_move(eval, rng);
      if (mv.valid()) candidates.push_back(mv);
    }
    for (const core::GateMove& mv : candidates) {
      // probe_objective must equal the historical copy-based scoring.
      PartitionEvaluator scored = eval;
      scored.move_gate(mv.gate, mv.target);
      expect_bits_eq(core::probe_objective(eval, mv, 1.0e4),
                     core::penalized_objective(scored, 1.0e4),
                     "probe objective");
    }
    if (!candidates.empty())
      eval.move_gate(candidates.front().gate, candidates.front().target);
  }
}

TEST(Probe, AnnealingStyleRejectResidueTraceStillMatches) {
  // After move+revert parity replays (the annealer's reject path), the
  // running sums carry floating-point residue; probes must still match
  // copies of exactly that state.
  const auto nl = netlist::gen::make_random_dag(
      netlist::gen::DagProfile::basic("resid", 200, 12, 21));
  const auto library = lib::default_library();
  const EvalContext ctx(nl, library, elec::SensorSpec{}, CostWeights{});
  Rng rng(5);
  PartitionEvaluator eval(ctx, core::make_start_partition(nl, 4, rng));

  for (int step = 0; step < 40; ++step) {
    const core::GateMove mv = core::sample_boundary_move(eval, rng);
    if (!mv.valid()) continue;
    const std::uint32_t src = eval.partition().module_of(mv.gate);
    expect_probe_matches_copy(eval, mv.gate, mv.target);
    if (step % 2 == 0) {
      eval.move_gate(mv.gate, mv.target);  // accept
    } else {
      eval.move_gate(mv.gate, mv.target);  // reject: move + revert,
      eval.move_gate(mv.gate, src);        // leaving FP residue behind
    }
  }
  ASSERT_NO_THROW(eval.self_check());
}

TEST(Probe, RejectsEmptyingMoves) {
  const auto nl = netlist::gen::make_random_dag(
      netlist::gen::DagProfile::basic("empty", 40, 5, 3));
  const auto library = lib::default_library();
  const EvalContext ctx(nl, library, elec::SensorSpec{}, CostWeights{});
  Rng rng(2);
  PartitionEvaluator eval(ctx, core::make_start_partition(nl, 3, rng));
  // Drain a module down to one gate, then probing its last gate must throw.
  while (eval.partition().module_size(0) > 1)
    eval.move_gate(eval.partition().module(0)[0], 1);
  const netlist::GateId last = eval.partition().module(0)[0];
  EXPECT_THROW((void)eval.probe_move(last, 1), Error);
}

TEST(Probe, SelfCheckCoversLazyDelayState) {
  // self_check now verifies the cached degradation factors, per-module
  // area/settling, and the incremental D_BIC; drive it through erasures
  // and probes.
  const auto nl = netlist::gen::make_random_dag(
      netlist::gen::DagProfile::basic("lazy", 120, 9, 13));
  const auto library = lib::default_library();
  const EvalContext ctx(nl, library, elec::SensorSpec{}, CostWeights{});
  Rng rng(11);
  PartitionEvaluator eval(ctx, core::make_start_partition(nl, 5, rng));
  ASSERT_NO_THROW(eval.self_check());
  const auto logic = nl.logic_gates();
  for (int step = 0; step < 60; ++step) {
    if (eval.partition().module_count() < 2) break;
    const netlist::GateId g = logic[rng.index(logic.size())];
    eval.move_gate(g, static_cast<std::uint32_t>(
                          rng.index(eval.partition().module_count())));
    if (step % 15 == 14) ASSERT_NO_THROW(eval.self_check());
  }
  ASSERT_NO_THROW(eval.self_check());
}

}  // namespace
}  // namespace iddq::part
