#include "partition/partition_io.hpp"

#include <gtest/gtest.h>

#include "netlist/gen/c17.hpp"
#include "support/error.hpp"

namespace iddq::part {
namespace {

Partition two_module(const netlist::Netlist& nl) {
  return Partition::from_groups(
      nl, std::vector<std::vector<netlist::GateId>>{
              {nl.at("10"), nl.at("16"), nl.at("22")},
              {nl.at("11"), nl.at("19"), nl.at("23")}});
}

TEST(PartitionIo, RoundTrip) {
  const auto nl = netlist::gen::make_c17();
  const auto p = two_module(nl);
  const std::string text = to_partition_string(nl, p);
  const Partition reparsed = read_partition_text(text, nl);
  EXPECT_EQ(reparsed.module_count(), p.module_count());
  for (const auto g : nl.logic_gates())
    EXPECT_EQ(reparsed.module_of(g), p.module_of(g));
}

TEST(PartitionIo, TextFormatIsReadable) {
  const auto nl = netlist::gen::make_c17();
  const std::string text = to_partition_string(nl, two_module(nl));
  EXPECT_NE(text.find("partition c17 modules 2"), std::string::npos);
  EXPECT_NE(text.find("module 0:"), std::string::npos);
}

TEST(PartitionIo, RejectsUnknownGate) {
  const auto nl = netlist::gen::make_c17();
  EXPECT_THROW((void)read_partition_text(
                   "partition c17 modules 1\nmodule 0: 10 11 16 19 22 ghost\n",
                   nl),
               ParseError);
}

TEST(PartitionIo, RejectsMissingHeader) {
  const auto nl = netlist::gen::make_c17();
  EXPECT_THROW((void)read_partition_text("module 0: 10\n", nl), ParseError);
}

TEST(PartitionIo, RejectsModuleCountMismatch) {
  const auto nl = netlist::gen::make_c17();
  EXPECT_THROW(
      (void)read_partition_text(
          "partition c17 modules 3\nmodule 0: 10 11 16 19 22 23\n", nl),
      ParseError);
}

TEST(PartitionIo, RejectsIncompleteCover) {
  const auto nl = netlist::gen::make_c17();
  EXPECT_THROW((void)read_partition_text(
                   "partition c17 modules 1\nmodule 0: 10 11\n", nl),
               Error);
}

TEST(PartitionIo, IgnoresComments) {
  const auto nl = netlist::gen::make_c17();
  const Partition p = read_partition_text(
      "# saved by the flow\npartition c17 modules 1\n"
      "module 0: 10 11 16 19 22 23  # everything\n",
      nl);
  EXPECT_EQ(p.module_count(), 1u);
}

}  // namespace
}  // namespace iddq::part
