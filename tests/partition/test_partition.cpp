#include "partition/partition.hpp"

#include <gtest/gtest.h>

#include "netlist/gen/c17.hpp"
#include "support/error.hpp"

namespace iddq::part {
namespace {

std::vector<std::vector<netlist::GateId>> c17_groups(
    const netlist::Netlist& nl) {
  return {{nl.at("10"), nl.at("16"), nl.at("22")},
          {nl.at("11"), nl.at("19"), nl.at("23")}};
}

TEST(Partition, FromGroupsBuildsCover) {
  const auto nl = netlist::gen::make_c17();
  const auto p = Partition::from_groups(nl, c17_groups(nl));
  EXPECT_EQ(p.module_count(), 2u);
  EXPECT_EQ(p.assigned_count(), 6u);
  EXPECT_TRUE(p.covers(nl));
  EXPECT_EQ(p.module_of(nl.at("16")), 0u);
  EXPECT_EQ(p.module_of(nl.at("19")), 1u);
}

TEST(Partition, InputsStayUnassigned) {
  const auto nl = netlist::gen::make_c17();
  const auto p = Partition::from_groups(nl, c17_groups(nl));
  for (const auto id : nl.primary_inputs())
    EXPECT_EQ(p.module_of(id), kUnassigned);
}

TEST(Partition, MoveRelocatesGate) {
  const auto nl = netlist::gen::make_c17();
  auto p = Partition::from_groups(nl, c17_groups(nl));
  p.move(nl.at("16"), 1);
  EXPECT_EQ(p.module_of(nl.at("16")), 1u);
  EXPECT_EQ(p.module_size(0), 2u);
  EXPECT_EQ(p.module_size(1), 4u);
  EXPECT_TRUE(p.covers(nl));
}

TEST(Partition, MoveToSameModuleIsNoop) {
  const auto nl = netlist::gen::make_c17();
  auto p = Partition::from_groups(nl, c17_groups(nl));
  const auto before = p;
  p.move(nl.at("16"), 0);
  EXPECT_EQ(p, before);
}

TEST(Partition, ModuleMembershipConsistentAfterMoves) {
  const auto nl = netlist::gen::make_c17();
  auto p = Partition::from_groups(nl, c17_groups(nl));
  p.move(nl.at("10"), 1);
  p.move(nl.at("23"), 0);
  p.move(nl.at("10"), 0);
  for (std::uint32_t m = 0; m < p.module_count(); ++m)
    for (const auto g : p.module(m)) EXPECT_EQ(p.module_of(g), m);
}

TEST(Partition, EraseEmptyModuleSwapsLast) {
  const auto nl = netlist::gen::make_c17();
  const std::vector<std::vector<netlist::GateId>> groups = {
      {nl.at("10")},
      {nl.at("11"), nl.at("16")},
      {nl.at("19"), nl.at("22"), nl.at("23")}};
  auto p = Partition::from_groups(nl, groups);
  p.move(nl.at("10"), 1);  // module 0 now empty
  const auto moved_from = p.erase_empty_module(0);
  EXPECT_EQ(moved_from, 2u);
  EXPECT_EQ(p.module_count(), 2u);
  // The former module 2 now sits in slot 0.
  EXPECT_EQ(p.module_of(nl.at("22")), 0u);
  EXPECT_TRUE(p.covers(nl));
}

TEST(Partition, EraseLastModuleSlot) {
  const auto nl = netlist::gen::make_c17();
  const std::vector<std::vector<netlist::GateId>> groups = {
      {nl.at("10"), nl.at("11"), nl.at("16"), nl.at("19"), nl.at("22")},
      {nl.at("23")}};
  auto p = Partition::from_groups(nl, groups);
  p.move(nl.at("23"), 0);
  const auto moved_from = p.erase_empty_module(1);
  EXPECT_EQ(moved_from, 1u);  // nothing had to move
  EXPECT_EQ(p.module_count(), 1u);
}

TEST(Partition, EraseNonEmptyModuleThrows) {
  const auto nl = netlist::gen::make_c17();
  auto p = Partition::from_groups(nl, c17_groups(nl));
  EXPECT_THROW((void)p.erase_empty_module(0), Error);
}

TEST(Partition, FromGroupsRejectsDuplicates) {
  const auto nl = netlist::gen::make_c17();
  const std::vector<std::vector<netlist::GateId>> groups = {
      {nl.at("10"), nl.at("11")}, {nl.at("11"), nl.at("16")}};
  EXPECT_THROW((void)Partition::from_groups(nl, groups), Error);
}

TEST(Partition, FromGroupsRejectsIncompleteCover) {
  const auto nl = netlist::gen::make_c17();
  const std::vector<std::vector<netlist::GateId>> groups = {
      {nl.at("10"), nl.at("11")}};
  EXPECT_THROW((void)Partition::from_groups(nl, groups), Error);
}

TEST(Partition, FromGroupsRejectsPrimaryInputs) {
  const auto nl = netlist::gen::make_c17();
  auto groups = c17_groups(nl);
  groups[0].push_back(nl.at("1"));
  EXPECT_THROW((void)Partition::from_groups(nl, groups), Error);
}

TEST(Partition, FromGroupsRejectsEmptyModule) {
  const auto nl = netlist::gen::make_c17();
  auto groups = c17_groups(nl);
  groups.emplace_back();
  EXPECT_THROW((void)Partition::from_groups(nl, groups), Error);
}

TEST(Partition, CoversDetectsEmptyModule) {
  const auto nl = netlist::gen::make_c17();
  auto p = Partition::from_groups(nl, c17_groups(nl));
  p.move(nl.at("10"), 1);
  p.move(nl.at("16"), 1);
  p.move(nl.at("22"), 1);  // module 0 empty but not erased
  EXPECT_FALSE(p.covers(nl));
}

}  // namespace
}  // namespace iddq::part
