#include "partition/cost_model.hpp"

#include <gtest/gtest.h>

namespace iddq::part {
namespace {

TEST(CostModel, PaperDefaultWeights) {
  const CostWeights w;
  EXPECT_DOUBLE_EQ(w.a1, 9.0);
  EXPECT_DOUBLE_EQ(w.a2, 1.0e5);
  EXPECT_DOUBLE_EQ(w.a3, 1.0);
  EXPECT_DOUBLE_EQ(w.a4, 1.0);
  EXPECT_DOUBLE_EQ(w.a5, 10.0);
}

TEST(CostModel, TotalIsWeightedSum) {
  const CostWeights w{2.0, 3.0, 5.0, 7.0, 11.0};
  const Costs c{1.0, 10.0, 100.0, 1000.0, 2.0};
  EXPECT_DOUBLE_EQ(c.total(w), 2.0 + 30.0 + 500.0 + 7000.0 + 22.0);
}

TEST(CostModel, AsArrayOrder) {
  const Costs c{1.0, 2.0, 3.0, 4.0, 5.0};
  const auto a = c.as_array();
  EXPECT_DOUBLE_EQ(a[0], 1.0);
  EXPECT_DOUBLE_EQ(a[4], 5.0);
}

TEST(Fitness, FeasibleBeatsInfeasibleRegardlessOfCost) {
  const Fitness feasible{0.0, 1.0e9};
  const Fitness infeasible{0.1, 0.0};
  EXPECT_TRUE(feasible < infeasible);
  EXPECT_FALSE(infeasible < feasible);
}

TEST(Fitness, SmallerViolationWinsAmongInfeasible) {
  const Fitness a{0.5, 100.0};
  const Fitness b{0.6, 1.0};
  EXPECT_TRUE(a < b);
}

TEST(Fitness, CostBreaksTiesAmongFeasible) {
  const Fitness a{0.0, 10.0};
  const Fitness b{0.0, 20.0};
  EXPECT_TRUE(a < b);
  EXPECT_FALSE(b < a);
}

TEST(Fitness, FeasibleFlag) {
  EXPECT_TRUE((Fitness{0.0, 5.0}).feasible());
  EXPECT_FALSE((Fitness{0.01, 5.0}).feasible());
}

}  // namespace
}  // namespace iddq::part
