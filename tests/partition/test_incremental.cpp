// The contract at the heart of the evolution strategy (paper section 4.2:
// "costs are recomputed just for the modified modules"): after any sequence
// of gate moves, the incrementally maintained evaluator state must equal a
// from-scratch evaluation of the same partition.
#include <gtest/gtest.h>

#include "core/start_partition.hpp"
#include "netlist/gen/iscas_profiles.hpp"
#include "netlist/gen/random_dag.hpp"
#include "partition/evaluator.hpp"
#include "support/math.hpp"
#include "support/rng.hpp"

namespace iddq::part {
namespace {

struct Scenario {
  std::size_t gates;
  std::size_t depth;
  std::size_t modules;
  std::uint64_t seed;
};

class IncrementalEquivalence : public ::testing::TestWithParam<Scenario> {};

TEST_P(IncrementalEquivalence, RandomMoveSequenceMatchesFullRecompute) {
  const Scenario s = GetParam();
  const auto nl = netlist::gen::make_random_dag(
      netlist::gen::DagProfile::basic("inc", s.gates, s.depth, s.seed));
  const auto library = lib::default_library();
  const EvalContext ctx(nl, library, elec::SensorSpec{}, CostWeights{});
  Rng rng(s.seed * 7919 + 13);
  PartitionEvaluator eval(ctx,
                          core::make_start_partition(nl, s.modules, rng));

  const auto logic = nl.logic_gates();
  for (int step = 0; step < 120; ++step) {
    const netlist::GateId g = logic[rng.index(logic.size())];
    if (eval.partition().module_count() < 2) break;
    const auto target = static_cast<std::uint32_t>(
        rng.index(eval.partition().module_count()));
    eval.move_gate(g, target);

    if (step % 20 == 19) {
      // Structural caches: exact equality enforced by self_check.
      ASSERT_NO_THROW(eval.self_check()) << "step " << step;
      // Derived costs: full recompute on a fresh evaluator must agree.
      PartitionEvaluator fresh(ctx, eval.partition());
      const Costs a = eval.costs();
      const Costs b = fresh.costs();
      ASSERT_LT(math::rel_diff(a.c1, b.c1), 1e-9);
      ASSERT_LT(math::rel_diff(a.c2, b.c2), 1e-9);
      ASSERT_LT(math::rel_diff(a.c3, b.c3), 1e-9);
      ASSERT_LT(math::rel_diff(a.c4, b.c4), 1e-9);
      ASSERT_DOUBLE_EQ(a.c5, b.c5);
      ASSERT_LT(math::rel_diff(eval.violation(), fresh.violation()), 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Scenarios, IncrementalEquivalence,
    ::testing::Values(Scenario{60, 6, 2, 1}, Scenario{60, 6, 3, 2},
                      Scenario{150, 12, 4, 3}, Scenario{150, 12, 2, 4},
                      Scenario{300, 15, 5, 5}, Scenario{300, 15, 3, 6},
                      Scenario{500, 20, 6, 7}, Scenario{500, 20, 4, 8}));

TEST(Incremental, ModuleErasureKeepsCachesConsistent) {
  const auto nl = netlist::gen::make_random_dag(
      netlist::gen::DagProfile::basic("erase", 80, 8, 42));
  const auto library = lib::default_library();
  const EvalContext ctx(nl, library, elec::SensorSpec{}, CostWeights{});
  Rng rng(99);
  PartitionEvaluator eval(ctx, core::make_start_partition(nl, 5, rng));

  // Drain slot 0 into slot 1 until a single module remains. Every emptied
  // module triggers an erasure (slot reshuffle); the evaluator caches must
  // stay consistent through each one.
  std::size_t erasures = 0;
  while (eval.partition().module_count() > 1) {
    const std::size_t k_before = eval.partition().module_count();
    const netlist::GateId g = eval.partition().module(0)[0];
    eval.move_gate(g, 1);
    if (eval.partition().module_count() < k_before) {
      ++erasures;
      ASSERT_NO_THROW(eval.self_check());
    }
  }
  EXPECT_EQ(eval.partition().module_count(), 1u);
  EXPECT_EQ(erasures, 4u);  // 5 start modules collapsed into one
}

TEST(Incremental, EvaluatorCopyIsIndependent) {
  const auto nl = netlist::gen::make_random_dag(
      netlist::gen::DagProfile::basic("copy", 100, 10, 17));
  const auto library = lib::default_library();
  const EvalContext ctx(nl, library, elec::SensorSpec{}, CostWeights{});
  Rng rng(5);
  PartitionEvaluator parent(ctx, core::make_start_partition(nl, 3, rng));
  const Costs before = parent.costs();

  PartitionEvaluator child = parent;  // the ES recombination step
  const auto logic = nl.logic_gates();
  for (int i = 0; i < 30; ++i) {
    if (child.partition().module_count() < 2) break;
    child.move_gate(
        logic[rng.index(logic.size())],
        static_cast<std::uint32_t>(rng.index(child.partition().module_count())));
  }
  ASSERT_NO_THROW(child.self_check());
  // The parent must be untouched by the child's mutations.
  const Costs after = parent.costs();
  EXPECT_DOUBLE_EQ(before.total(CostWeights{}), after.total(CostWeights{}));
}

}  // namespace
}  // namespace iddq::part
