// Pipe-mode protocol round trip: a JobProtocolSession driven over string
// streams, with streamed rows checked field-for-field against direct
// FlowEngine::run_methods calls (the ISSUE acceptance contract: the
// server path is byte-identical to the engine, including cache replays —
// doubles travel as 17-significant-digit tokens, which round-trip
// IEEE-754 exactly).
#include "core/job_protocol.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/flow_engine.hpp"
#include "netlist/gen/random_dag.hpp"
#include "support/error.hpp"
#include "support/json.hpp"
#include "support/rng.hpp"
#include "support/transport.hpp"

namespace iddq::core {
namespace {

netlist::Netlist synthetic_circuit(const std::string& spec) {
  if (spec == "bad") throw Error("synthetic loader: bad circuit");
  const std::size_t gates = 120 + 40 * (spec.back() - 'a');
  return netlist::gen::make_random_dag(
      netlist::gen::DagProfile::basic(spec, gates, 10, 5));
}

FlowEngineConfig quick_config() {
  FlowEngineConfig config;
  config.optimizers.es.mu = 3;
  config.optimizers.es.lambda = 3;
  config.optimizers.es.chi = 1;
  config.optimizers.es.max_generations = 10;
  config.optimizers.es.stall_generations = 5;
  config.optimizers.random_samples = 50;
  return config;
}

std::unique_ptr<JobService> make_service(const lib::CellLibrary& library,
                                         std::size_t workers,
                                         FlowEngineConfig config) {
  JobServiceConfig service_config;
  service_config.workers = workers;
  service_config.flow = std::move(config);
  auto service =
      std::make_unique<JobService>(library, std::move(service_config));
  service->set_circuit_loader(synthetic_circuit);
  return service;
}

/// Runs one pipe-mode session over the given request lines and returns
/// every emitted event, parsed.
std::vector<json::JsonValue> run_session(JobService& service,
                                         const std::string& input,
                                         bool* shutdown_requested = nullptr,
                                         JobProtocolOptions options = {}) {
  std::istringstream in(input);
  std::ostringstream out;
  support::StreamChannel channel(in, out);
  JobProtocolSession session(service, channel, options);
  const bool requested = session.run();
  if (shutdown_requested != nullptr) *shutdown_requested = requested;

  std::vector<json::JsonValue> events;
  std::istringstream lines(out.str());
  std::string line;
  while (std::getline(lines, line)) {
    auto event = json::JsonValue::parse(line);
    EXPECT_TRUE(event.has_value()) << "unparseable event: " << line;
    if (event) events.push_back(std::move(*event));
  }
  return events;
}

std::vector<const json::JsonValue*> events_of_kind(
    const std::vector<json::JsonValue>& events, const std::string& kind) {
  std::vector<const json::JsonValue*> out;
  for (const auto& e : events)
    if (e.get_string("event") == kind) out.push_back(&e);
  return out;
}

void expect_bits_eq(double got, double want, const char* field) {
  EXPECT_EQ(std::bit_cast<std::uint64_t>(got),
            std::bit_cast<std::uint64_t>(want))
      << field << ": " << got << " vs " << want;
}

void expect_row_matches(const json::JsonValue& event,
                        const MethodResult& want) {
  EXPECT_EQ(event.get_string("method"), want.method);
  EXPECT_EQ(event.get_u64("modules"), want.module_count);
  expect_bits_eq(event.get_double("violation"), want.fitness.violation,
                 "violation");
  expect_bits_eq(event.get_double("cost"), want.fitness.cost, "cost");
  const json::JsonValue* c = event.find("c");
  ASSERT_NE(c, nullptr);
  const auto want_c = want.costs.as_array();
  ASSERT_EQ(c->items().size(), want_c.size());
  for (std::size_t i = 0; i < want_c.size(); ++i)
    expect_bits_eq(c->items()[i].as_double(), want_c[i], "c[i]");
  expect_bits_eq(event.get_double("sensor_area"), want.sensor_area,
                 "sensor_area");
  expect_bits_eq(event.get_double("delay_overhead"), want.delay_overhead,
                 "delay_overhead");
  expect_bits_eq(event.get_double("test_overhead"), want.test_overhead,
                 "test_overhead");
  EXPECT_EQ(event.get_u64("iterations"), want.iterations);
  EXPECT_EQ(event.get_u64("evaluations"), want.evaluations);
  EXPECT_EQ(event.get_bool("feasible", false), want.fitness.feasible());
}

TEST(JobProtocol, PipeRoundTripMatchesRunMethods) {
  // The ISSUE round trip: 2 circuits x 3 methods through the pipe-mode
  // protocol; every streamed row must match a direct run_methods call at
  // the shard-derived seed.
  const auto library = lib::default_library();
  const auto config = quick_config();
  const auto service = make_service(library, 2, config);

  const std::vector<std::string> circuits{"ca", "cb"};
  const std::vector<std::string> methods{"evolution", "random", "standard"};
  const std::uint64_t seed = 42;

  const auto events = run_session(
      *service,
      R"({"op":"submit","id":"t1","circuits":["ca","cb"],)"
      R"("methods":["evolution","random","standard"],"seed":42})"
      "\n");

  ASSERT_EQ(events_of_kind(events, "accepted").size(), 1u);
  ASSERT_EQ(events_of_kind(events, "done").size(), 2u);
  ASSERT_EQ(events_of_kind(events, "failed").size(), 0u);
  const auto sweep_done = events_of_kind(events, "sweep_done");
  ASSERT_EQ(sweep_done.size(), 1u);
  EXPECT_EQ(sweep_done[0]->get_u64("ok"), 2u);

  // Group row events per circuit; within one circuit they must arrive in
  // method order (jobs interleave, a job's rows do not).
  std::map<std::string, std::vector<const json::JsonValue*>> rows;
  for (const auto* row : events_of_kind(events, "row"))
    rows[row->get_string("circuit")].push_back(row);
  ASSERT_EQ(rows.size(), circuits.size());

  for (std::size_t shard = 0; shard < circuits.size(); ++shard) {
    SCOPED_TRACE(circuits[shard]);
    const netlist::Netlist nl = synthetic_circuit(circuits[shard]);
    FlowEngine engine(nl, library, config);
    const auto expected =
        engine.run_methods(methods, Rng::mix_seed(seed, shard));

    const auto& got = rows[circuits[shard]];
    ASSERT_EQ(got.size(), expected.size());
    for (std::size_t m = 0; m < expected.size(); ++m) {
      SCOPED_TRACE(methods[m]);
      EXPECT_EQ(got[m]->get_u64("index"), m);
      expect_row_matches(*got[m], expected[m]);
    }
  }
}

TEST(JobProtocol, CacheHitReplayStreamsIdenticalRows) {
  const auto library = lib::default_library();
  ResultCache cache;
  FlowEngineConfig config = quick_config();
  config.cache = &cache;
  const auto service = make_service(library, 2, config);

  const std::string submit =
      R"({"op":"submit","id":"s","circuits":["ca"],)"
      R"("methods":["evolution","standard"],"seed":7})"
      "\n";
  const auto first = run_session(*service, submit);
  const auto misses = cache.misses();
  EXPECT_GT(misses, 0u);
  const auto second = run_session(*service, submit);
  EXPECT_EQ(cache.misses(), misses);  // second sweep: all hits
  EXPECT_GE(cache.hits(), 2u);

  const auto rows_first = events_of_kind(first, "row");
  const auto rows_second = events_of_kind(second, "row");
  ASSERT_EQ(rows_first.size(), 2u);
  ASSERT_EQ(rows_second.size(), rows_first.size());
  for (std::size_t i = 0; i < rows_first.size(); ++i) {
    // Field-for-field identical (the "job" id necessarily differs).
    EXPECT_EQ(rows_second[i]->get_string("method"),
              rows_first[i]->get_string("method"));
    expect_bits_eq(rows_second[i]->get_double("cost"),
                   rows_first[i]->get_double("cost"), "cost");
    expect_bits_eq(rows_second[i]->get_double("sensor_area"),
                   rows_first[i]->get_double("sensor_area"), "sensor_area");
    EXPECT_EQ(rows_second[i]->get_u64("evaluations"),
              rows_first[i]->get_u64("evaluations"));
    EXPECT_EQ(rows_second[i]->get_u64("modules"),
              rows_first[i]->get_u64("modules"));
  }
}

TEST(JobProtocol, CoverageFieldsStreamOnlyWhenGraded) {
  // The coverage leg of the acceptance contract: a coverage-enabled
  // service streams rows whose coverage fields are bit-identical to a
  // direct coverage-enabled FlowEngine run, and a plain service's rows
  // carry no coverage fields at all (byte-compatible with old clients).
  const auto library = lib::default_library();
  FlowEngineConfig config = quick_config();
  config.coverage.enabled = true;
  config.coverage.patterns = 64;
  config.coverage.minimize = true;
  const auto service = make_service(library, 2, config);

  const auto events = run_session(
      *service,
      R"({"op":"submit","id":"g","circuits":["ca"],)"
      R"("methods":["evolution","standard"],"seed":42})"
      "\n");
  const auto rows = events_of_kind(events, "row");
  ASSERT_EQ(rows.size(), 2u);

  const netlist::Netlist nl = synthetic_circuit("ca");
  FlowEngine engine(nl, library, config);
  const std::vector<std::string> graded_methods{"evolution", "standard"};
  const auto expected =
      engine.run_methods(graded_methods, Rng::mix_seed(42, 0));
  for (std::size_t m = 0; m < expected.size(); ++m) {
    SCOPED_TRACE(expected[m].method);
    expect_row_matches(*rows[m], expected[m]);
    ASSERT_TRUE(expected[m].has_coverage);
    expect_bits_eq(rows[m]->get_double("fault_coverage_pct"),
                   expected[m].fault_coverage_pct, "fault_coverage_pct");
    EXPECT_EQ(rows[m]->get_u64("faults_detected"),
              expected[m].faults_detected);
    EXPECT_EQ(rows[m]->get_u64("faults_total"), expected[m].faults_total);
    EXPECT_EQ(rows[m]->get_u64("patterns_used"), expected[m].patterns_used);
    EXPECT_EQ(rows[m]->get_u64("patterns_minimized"),
              expected[m].patterns_minimized);
  }

  // Ungraded service: rows must not even mention coverage.
  const auto plain_service = make_service(library, 1, quick_config());
  const auto plain_events = run_session(
      *plain_service,
      R"({"op":"submit","id":"p","circuits":["ca"],)"
      R"("methods":["standard"],"seed":42})"
      "\n");
  const auto plain_rows = events_of_kind(plain_events, "row");
  ASSERT_EQ(plain_rows.size(), 1u);
  EXPECT_EQ(plain_rows[0]->find("fault_coverage_pct"), nullptr);
  EXPECT_EQ(plain_rows[0]->find("faults_total"), nullptr);
}

TEST(JobProtocol, CancelOpCancelsTheSweep) {
  const auto library = lib::default_library();
  FlowEngineConfig config = quick_config();
  config.optimizers.es.max_generations = 1000000;
  config.optimizers.es.stall_generations = 1000000;
  const auto service = make_service(library, 1, config);

  // The cancel op lands while the unbounded job is queued or mid-run;
  // either way the sweep must terminate as cancelled (EOF then drains).
  const auto events = run_session(
      *service,
      R"({"op":"submit","id":"c","circuits":["ca"],"methods":["evolution"]})"
      "\n"
      R"({"op":"cancel","id":"c"})"
      "\n");

  ASSERT_EQ(events_of_kind(events, "cancelled").size(), 1u);
  const auto sweep_done = events_of_kind(events, "sweep_done");
  ASSERT_EQ(sweep_done.size(), 1u);
  EXPECT_EQ(sweep_done[0]->get_u64("cancelled"), 1u);
  EXPECT_EQ(events_of_kind(events, "row").size(), 0u);
}

TEST(JobProtocol, MaxQueueBoundRejectsSubmitWithErrorEvent) {
  // One worker, held busy by an unbounded 3-shard sweep: its first shard
  // runs, two wait in the queue. The second submit would push the queue
  // past --max-queue 3, so it is rejected whole with a protocol error —
  // no accepted/queued events, nothing of it reaches the service.
  const auto library = lib::default_library();
  FlowEngineConfig config = quick_config();
  config.optimizers.es.max_generations = 1000000;
  config.optimizers.es.stall_generations = 1000000;
  const auto service = make_service(library, 1, config);

  JobProtocolOptions options;
  options.max_queue = 3;
  const auto events = run_session(
      *service,
      R"({"op":"submit","id":"big","circuits":["ca","cb","cc"],)"
      R"("methods":["evolution"],"priority":-1})"
      "\n"
      R"({"op":"submit","id":"late","circuits":["cd","ce"],)"
      R"("methods":["standard"],"priority":5})"
      "\n"
      R"({"op":"cancel","id":"big"})"
      "\n",
      nullptr, options);

  const auto accepted = events_of_kind(events, "accepted");
  ASSERT_EQ(accepted.size(), 1u);
  EXPECT_EQ(accepted[0]->get_string("id"), "big");
  const auto errors = events_of_kind(events, "error");
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NE(errors[0]->get_string("message").find("queue full"),
            std::string::npos);
  // The rejection error is id-tagged (cluster front-ends attribute it to
  // the shard); the rejected sweep produced no JOB events at all.
  EXPECT_EQ(errors[0]->get_string("id"), "late");
  for (const auto& e : events)
    if (e.get_string("event") != "error")
      EXPECT_NE(e.get_string("id"), "late")
          << "rejected sweep leaked event " << e.get_string("event");
  EXPECT_EQ(service->submitted(), 3u);
}

TEST(JobProtocol, ReportsProtocolErrorsAndStats) {
  const auto library = lib::default_library();
  const auto service = make_service(library, 1, quick_config());

  bool shutdown_requested = false;
  const auto events = run_session(*service,
                                  "this is not json\n"
                                  R"({"op":"frobnicate"})"
                                  "\n"
                                  R"({"op":"submit","id":"x"})"
                                  "\n"
                                  R"({"op":"cancel","id":"nope"})"
                                  "\n"
                                  R"({"op":"stats"})"
                                  "\n"
                                  R"({"op":"shutdown"})"
                                  "\n",
                                  &shutdown_requested);

  EXPECT_TRUE(shutdown_requested);
  EXPECT_EQ(events_of_kind(events, "error").size(), 4u);
  const auto stats = events_of_kind(events, "stats");
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0]->get_u64("submitted"), 0u);
  ASSERT_EQ(events_of_kind(events, "hello").size(), 1u);
  ASSERT_EQ(events_of_kind(events, "bye").size(), 1u);
}

TEST(JobProtocol, FailedShardIsReportedAndCounted) {
  const auto library = lib::default_library();
  const auto service = make_service(library, 2, quick_config());
  const auto events = run_session(
      *service,
      R"({"op":"submit","id":"f","circuits":["ca","bad"],)"
      R"("methods":["standard"]})"
      "\n");
  const auto failed = events_of_kind(events, "failed");
  ASSERT_EQ(failed.size(), 1u);
  EXPECT_EQ(failed[0]->get_string("circuit"), "bad");
  EXPECT_NE(failed[0]->get_string("error").find("bad circuit"),
            std::string::npos);
  const auto sweep_done = events_of_kind(events, "sweep_done");
  ASSERT_EQ(sweep_done.size(), 1u);
  EXPECT_EQ(sweep_done[0]->get_u64("ok"), 1u);
  EXPECT_EQ(sweep_done[0]->get_u64("failed"), 1u);
}

TEST(JobProtocol, SessionQuotaRejectsSubmitWhileInFlightJobsFinish) {
  const auto library = lib::default_library();
  const auto service = make_service(library, 2, quick_config());
  SessionTrafficStats traffic;
  JobProtocolOptions options;
  options.max_jobs_per_session = 2;
  options.traffic = &traffic;

  // The first submit fills the quota; the second is rejected whole while
  // the first sweep's jobs are still in flight, yet that sweep itself
  // drains to a full sweep_done.
  const auto events = run_session(*service,
                                  R"({"op":"submit","id":"a",)"
                                  R"("circuits":["ca","cb"],)"
                                  R"("methods":["standard"]})"
                                  "\n"
                                  R"({"op":"submit","id":"b",)"
                                  R"("circuits":["cc"],"methods":)"
                                  R"(["standard"]})"
                                  "\n",
                                  nullptr, options);
  // Both submits of the same session are read back to back, so "b"
  // arrives while "a" is still in flight and must bounce off the quota.
  // "a" itself is unaffected: it drains to a full sweep_done.
  const auto errors = events_of_kind(events, "error");
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NE(errors[0]->get_string("message").find("session quota"),
            std::string::npos);
  EXPECT_EQ(traffic.quota_rejections.load(), 1u);
  ASSERT_EQ(events_of_kind(events, "accepted").size(), 1u);
  const auto sweep_done = events_of_kind(events, "sweep_done");
  ASSERT_EQ(sweep_done.size(), 1u);
  EXPECT_EQ(sweep_done[0]->get_string("id"), "a");
  EXPECT_EQ(sweep_done[0]->get_u64("ok"), 2u);
  // The rejected sweep produced no job events at all.
  for (const auto* row : events_of_kind(events, "row"))
    EXPECT_NE(row->get_string("id"), "b");

  // The quota is in-flight, not lifetime: a fresh session (same service)
  // submits 2 more jobs without tripping it.
  const auto second = run_session(*service,
                                  R"({"op":"submit","id":"c",)"
                                  R"("circuits":["ca","cb"],)"
                                  R"("methods":["standard"]})"
                                  "\n",
                                  nullptr, options);
  EXPECT_EQ(events_of_kind(second, "error").size(), 0u);
  ASSERT_EQ(events_of_kind(second, "sweep_done").size(), 1u);
}

TEST(JobProtocol, StatsReportQueueDepthAndCacheResidency) {
  const auto library = lib::default_library();
  ResultCache cache;
  FlowEngineConfig config = quick_config();
  config.cache = &cache;
  const auto service = make_service(library, 2, config);

  JobProtocolOptions options;
  options.session_queue = 1024;
  const auto events = run_session(*service,
                                  R"({"op":"submit","id":"s",)"
                                  R"("circuits":["ca"],"methods":)"
                                  R"(["standard"]})"
                                  "\n"
                                  R"({"op":"stats"})"
                                  "\n",
                                  nullptr, options);
  const auto stats = events_of_kind(events, "stats");
  ASSERT_EQ(stats.size(), 1u);
  const json::JsonValue* queue = stats[0]->find("queue_stats");
  ASSERT_NE(queue, nullptr);
  EXPECT_GE(queue->get_u64("high_water"), 1u);
  EXPECT_GE(queue->get_u64("enqueued"), 3u);  // hello, accepted, queued...
  EXPECT_EQ(queue->get_u64("disconnects"), 0u);
  // The stats op does not wait for the in-flight sweep, so the residency
  // snapshot races the job's store(): pin only what is stable — the
  // fields exist, and a memory-only cache never evicts or reads disk.
  ASSERT_NE(stats[0]->find("cache_resident"), nullptr);
  EXPECT_LE(stats[0]->get_u64("cache_resident"), cache.resident_size());
  EXPECT_EQ(stats[0]->get_u64("cache_evictions"), 0u);
  EXPECT_EQ(stats[0]->get_u64("cache_disk_hits"), 0u);
}

/// StreamChannel with an artificial per-write delay: the writer thread
/// drains slower than workers emit, so a bounded queue actually fills.
class ThrottledStreamChannel final : public support::LineChannel {
 public:
  ThrottledStreamChannel(std::istream& in, std::ostream& out)
      : inner_(in, out) {}
  bool read_line(std::string& out) override { return inner_.read_line(out); }
  bool write_line(std::string_view line) override {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    return inner_.write_line(line);
  }
  void shutdown_read() override { inner_.shutdown_read(); }
  void shutdown_write() override { inner_.shutdown_write(); }

 private:
  support::StreamChannel inner_;
};

TEST(JobProtocol, BoundedSessionQueueKeepsRowStreamIdentical) {
  // The tentpole invariant under a bound that actually engages: progress
  // ticks may drop, but rows/terminals arrive complete, in order, and
  // field-identical to the unbounded session's stream. The bound (32)
  // exceeds the sweep's total must-deliver event count, so the policy can
  // only ever drop ticks — a disconnect here would be a policy bug.
  const auto library = lib::default_library();
  const auto service = make_service(library, 2, quick_config());
  const std::string submit =
      R"({"op":"submit","id":"s","circuits":["ca","cb"],)"
      R"("methods":["evolution","random"],"seed":9})"
      "\n";

  const auto unbounded = run_session(*service, submit);

  JobProtocolOptions bounded_options;
  bounded_options.session_queue = 32;
  std::istringstream in(submit);
  std::ostringstream out;
  ThrottledStreamChannel channel(in, out);
  JobProtocolSession session(*service, channel, bounded_options);
  (void)session.run();
  std::vector<json::JsonValue> bounded;
  {
    std::istringstream lines(out.str());
    std::string line;
    while (std::getline(lines, line)) {
      auto event = json::JsonValue::parse(line);
      ASSERT_TRUE(event.has_value()) << "unparseable event: " << line;
      bounded.push_back(std::move(*event));
    }
  }
  EXPECT_EQ(events_of_kind(bounded, "error").size(), 0u);

  const auto want_rows = events_of_kind(unbounded, "row");
  const auto got_rows = events_of_kind(bounded, "row");
  ASSERT_EQ(got_rows.size(), want_rows.size());
  // Rows of one circuit arrive in method order; compare per circuit.
  std::map<std::string, std::vector<const json::JsonValue*>> want_by, got_by;
  for (const auto* row : want_rows) want_by[row->get_string("circuit")].push_back(row);
  for (const auto* row : got_rows) got_by[row->get_string("circuit")].push_back(row);
  ASSERT_EQ(got_by.size(), want_by.size());
  for (const auto& [circuit, want] : want_by) {
    SCOPED_TRACE(circuit);
    const auto& got = got_by[circuit];
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(got[i]->get_string("method"), want[i]->get_string("method"));
      expect_bits_eq(got[i]->get_double("cost"),
                     want[i]->get_double("cost"), "cost");
      expect_bits_eq(got[i]->get_double("sensor_area"),
                     want[i]->get_double("sensor_area"), "sensor_area");
      EXPECT_EQ(got[i]->get_u64("evaluations"),
                want[i]->get_u64("evaluations"));
    }
  }
  ASSERT_EQ(events_of_kind(bounded, "done").size(), 2u);
  ASSERT_EQ(events_of_kind(bounded, "sweep_done").size(), 1u);
}

TEST(JobProtocol, PingAnswersPongInline) {
  // The cluster front-end's liveness probe: answered by the session
  // thread without touching the worker pool, with the protocol revision
  // and worker count a router needs.
  const auto library = lib::default_library();
  const auto service = make_service(library, 3, quick_config());
  const auto events = run_session(*service,
                                  R"({"op":"ping"})"
                                  "\n");
  const auto pongs = events_of_kind(events, "pong");
  ASSERT_EQ(pongs.size(), 1u);
  EXPECT_EQ(pongs[0]->get_u64("protocol"), 1u);
  EXPECT_EQ(pongs[0]->get_u64("workers"), 3u);
  EXPECT_EQ(events_of_kind(events, "error").size(), 0u);
}

TEST(JobProtocol, ExplicitSeedsOverrideTheShardDerivation) {
  // The cluster determinism carrier: a submit shipping "seeds" runs each
  // shard at exactly that base seed — NOT mix_seed(seed, shard) — so a
  // front-end can re-run a shard anywhere and reproduce its rows. Rows
  // are pinned bit-exact against direct engine runs at the shipped seeds.
  const auto library = lib::default_library();
  const auto config = quick_config();
  const auto service = make_service(library, 2, config);

  const std::vector<std::string> circuits{"ca", "cb"};
  const std::vector<std::string> methods{"evolution", "standard"};
  const std::vector<std::uint64_t> seeds{977, 431};

  const auto events = run_session(
      *service,
      R"({"op":"submit","id":"e","circuits":["ca","cb"],)"
      R"("methods":["evolution","standard"],"seed":1,"seeds":[977,431]})"
      "\n");
  ASSERT_EQ(events_of_kind(events, "sweep_done").size(), 1u);

  std::map<std::string, std::vector<const json::JsonValue*>> rows;
  for (const auto* row : events_of_kind(events, "row"))
    rows[row->get_string("circuit")].push_back(row);
  ASSERT_EQ(rows.size(), circuits.size());
  for (std::size_t shard = 0; shard < circuits.size(); ++shard) {
    SCOPED_TRACE(circuits[shard]);
    const netlist::Netlist nl = synthetic_circuit(circuits[shard]);
    FlowEngine engine(nl, library, config);
    const auto expected = engine.run_methods(methods, seeds[shard]);
    const auto& got = rows[circuits[shard]];
    ASSERT_EQ(got.size(), expected.size());
    for (std::size_t m = 0; m < expected.size(); ++m)
      expect_row_matches(*got[m], expected[m]);
  }
}

TEST(JobProtocol, SeedsLengthMismatchRejectsTheSubmitWhole) {
  const auto library = lib::default_library();
  const auto service = make_service(library, 1, quick_config());
  const auto events = run_session(
      *service,
      R"({"op":"submit","id":"m","circuits":["ca","cb"],)"
      R"("methods":["standard"],"seeds":[1,2,3]})"
      "\n");
  const auto errors = events_of_kind(events, "error");
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NE(errors[0]->get_string("message").find("one entry per circuit"),
            std::string::npos);
  EXPECT_EQ(events_of_kind(events, "accepted").size(), 0u);
  EXPECT_EQ(service->submitted(), 0u);
}

TEST(JobProtocol, MalformedSeedsEntryRejectsTheSubmit) {
  const auto library = lib::default_library();
  const auto service = make_service(library, 1, quick_config());
  const auto events = run_session(
      *service,
      R"({"op":"submit","id":"m","circuits":["ca"],)"
      R"("methods":["standard"],"seeds":["not-a-seed"]})"
      "\n");
  const auto errors = events_of_kind(events, "error");
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NE(errors[0]->get_string("message").find("unsigned"),
            std::string::npos);
  EXPECT_EQ(service->submitted(), 0u);
}

}  // namespace
}  // namespace iddq::core
