#include "core/job_queue.hpp"

#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <thread>
#include <vector>

namespace iddq::core {
namespace {

std::vector<int> drain(JobQueue<int>& q) {
  q.close();
  std::vector<int> out;
  while (auto item = q.pop()) out.push_back(*item);
  return out;
}

TEST(JobQueue, EqualPrioritiesAreStrictlyFifo) {
  JobQueue<int> q;
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(q.push(i));
  EXPECT_EQ(q.size(), 8u);
  EXPECT_EQ(drain(q), (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(JobQueue, HigherPriorityOvertakesQueuedWork) {
  JobQueue<std::string> q;
  EXPECT_TRUE(q.push("bulk-1", 0));
  EXPECT_TRUE(q.push("bulk-2", 0));
  EXPECT_TRUE(q.push("interactive", 5));
  EXPECT_TRUE(q.push("background", -2));
  EXPECT_EQ(*q.pop(), "interactive");
  EXPECT_EQ(*q.pop(), "bulk-1");
  EXPECT_EQ(*q.pop(), "bulk-2");
  EXPECT_EQ(*q.pop(), "background");
}

TEST(JobQueue, FifoWithinEachPriorityLevel) {
  JobQueue<int> q;
  EXPECT_TRUE(q.push(10, 1));
  EXPECT_TRUE(q.push(11, 1));
  EXPECT_TRUE(q.push(20, 2));
  EXPECT_TRUE(q.push(21, 2));
  EXPECT_EQ(drain(q), (std::vector<int>{20, 21, 10, 11}));
}

TEST(JobQueue, AgingLetsStarvedWorkOvertakeNewcomers) {
  // aging_interval = 2: a waiting item gains one effective-priority point
  // per two completed pops. The old priority-0 item must eventually beat
  // a stream of fresh priority-1 submits.
  JobQueue<std::string> q(2);
  EXPECT_TRUE(q.push("old-bulk", 0));
  // A continuous stream of *fresh* priority-1 submits, one per pop: the
  // first two overtake the bulk item, but by the third pop the bulk item
  // has waited two pops -> effective priority 1, and FIFO (older seq)
  // breaks the tie in its favor.
  EXPECT_TRUE(q.push("hot-0", 1));
  EXPECT_EQ(*q.pop(), "hot-0");
  EXPECT_TRUE(q.push("hot-1", 1));
  EXPECT_EQ(*q.pop(), "hot-1");
  EXPECT_TRUE(q.push("hot-2", 1));
  EXPECT_EQ(*q.pop(), "old-bulk");
  EXPECT_EQ(*q.pop(), "hot-2");
}

TEST(JobQueue, ZeroAgingIntervalMeansStrictPriority) {
  JobQueue<int> q(0);
  EXPECT_TRUE(q.push(0, 0));
  for (int i = 1; i <= 5; ++i) EXPECT_TRUE(q.push(i, 1));
  EXPECT_EQ(drain(q), (std::vector<int>{1, 2, 3, 4, 5, 0}));
}

TEST(JobQueue, CloseRefusesPushAndDrainsPop) {
  JobQueue<int> q;
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2, 3));
  q.close();
  EXPECT_FALSE(q.push(3));
  EXPECT_EQ(*q.pop(), 2);  // priority order survives the close
  EXPECT_EQ(*q.pop(), 1);
  EXPECT_EQ(q.pop(), std::nullopt);
}

TEST(JobQueue, PopBlocksUntilPushArrives) {
  JobQueue<int> q;
  std::optional<int> got;
  std::thread consumer([&] { got = q.pop(); });
  EXPECT_TRUE(q.push(7, 4));
  consumer.join();
  EXPECT_EQ(got, 7);
}

}  // namespace
}  // namespace iddq::core
