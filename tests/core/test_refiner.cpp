#include "core/refiner.hpp"

#include <gtest/gtest.h>

#include "core/start_partition.hpp"
#include "netlist/gen/random_dag.hpp"
#include "support/rng.hpp"

namespace iddq::core {
namespace {

struct Fixture {
  netlist::Netlist nl = netlist::gen::make_random_dag(
      netlist::gen::DagProfile::basic("ref", 150, 10, 6));
  lib::CellLibrary library = lib::default_library();
  part::EvalContext ctx{nl, library, elec::SensorSpec{},
                        part::CostWeights{}};
};

TEST(Refiner, NeverWorsensFitness) {
  Fixture f;
  Rng rng(3);
  part::PartitionEvaluator eval(f.ctx, make_start_partition(f.nl, 3, rng));
  const auto before = eval.fitness();
  const auto result = greedy_refine(eval);
  EXPECT_FALSE(before < result.final_fitness);  // <= in fitness order
  EXPECT_GE(result.evaluations, 1u);
}

TEST(Refiner, ReachesLocalOptimumOfOneMoveNeighbourhood) {
  Fixture f;
  Rng rng(4);
  part::PartitionEvaluator eval(f.ctx, make_start_partition(f.nl, 3, rng));
  greedy_refine(eval);
  // Refining again finds nothing further.
  const auto second = greedy_refine(eval);
  EXPECT_EQ(second.moves_applied, 0u);
}

TEST(Refiner, KeepsModuleCount) {
  Fixture f;
  Rng rng(5);
  part::PartitionEvaluator eval(f.ctx, make_start_partition(f.nl, 4, rng));
  greedy_refine(eval);
  EXPECT_EQ(eval.partition().module_count(), 4u);
  EXPECT_TRUE(eval.partition().covers(f.nl));
}

TEST(Refiner, FinalFitnessMatchesEvaluatorState) {
  Fixture f;
  Rng rng(6);
  part::PartitionEvaluator eval(f.ctx, make_start_partition(f.nl, 3, rng));
  const auto result = greedy_refine(eval);
  EXPECT_NEAR(eval.fitness().cost, result.final_fitness.cost,
              1e-12 * result.final_fitness.cost);
}

TEST(Refiner, RespectsEvaluationBudget) {
  Fixture f;
  Rng rng(7);
  part::PartitionEvaluator eval(f.ctx, make_start_partition(f.nl, 3, rng));
  const auto result = greedy_refine(eval, 10);
  EXPECT_LE(result.evaluations, 10u);
}

}  // namespace
}  // namespace iddq::core
