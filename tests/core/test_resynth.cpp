#include "core/resynth.hpp"

#include <gtest/gtest.h>

#include "estimators/current_profile.hpp"
#include "estimators/delay_estimator.hpp"
#include "netlist/builder.hpp"
#include "partition/evaluator.hpp"
#include "netlist/gen/array_cut.hpp"
#include "netlist/gen/iscas_profiles.hpp"
#include "netlist/gen/random_dag.hpp"
#include "sim/logic_sim.hpp"
#include "sim/patterns.hpp"
#include "support/error.hpp"

namespace iddq::core {
namespace {

struct Fixture {
  netlist::Netlist nl = netlist::gen::make_random_dag(
      netlist::gen::DagProfile::basic("rt", 400, 14, 11));
  lib::CellLibrary library = lib::default_library();
};

TEST(Resynth, ReducesPeakCurrent) {
  Fixture f;
  ResynthOptions opts;
  opts.max_retimed_gates = 40;
  const auto result = retime_for_iddq(f.nl, f.library, opts);
  EXPECT_GT(result.retimed_gates, 0u);
  EXPECT_LT(result.peak_after_ua, result.peak_before_ua);
  EXPECT_GT(result.peak_reduction(), 0.0);
}

TEST(Resynth, PreservesCriticalPathWithZeroMargin) {
  Fixture f;
  ResynthOptions opts;
  opts.max_retimed_gates = 40;
  opts.delay_margin = 0.0;
  const auto result = retime_for_iddq(f.nl, f.library, opts);
  EXPECT_NEAR(result.delay_after_ps, result.delay_before_ps,
              1e-6 * result.delay_before_ps);
}

TEST(Resynth, PreservesLogicFunction) {
  Fixture f;
  const auto result = retime_for_iddq(f.nl, f.library);
  ASSERT_GT(result.retimed_gates, 0u);
  const sim::LogicSim sim_before(f.nl);
  const sim::LogicSim sim_after(result.netlist);
  Rng rng(3);
  const auto patterns = sim::random_patterns(f.nl, 128, rng);
  for (const auto& batch : patterns) {
    const auto before = sim_before.run(batch.words);
    const auto after = sim_after.run(batch.words);
    for (const auto po : f.nl.primary_outputs()) {
      const auto po_after = result.netlist.at(f.nl.gate(po).name);
      ASSERT_EQ(before[po], after[po_after])
          << "output " << f.nl.gate(po).name << " diverged";
    }
  }
}

TEST(Resynth, ReportedPeakMatchesRebuiltCircuit) {
  // The virtual model's claimed peak must equal the profile of the
  // physically rebuilt netlist on the same grid.
  Fixture f;
  ResynthOptions opts;
  opts.max_retimed_gates = 20;
  const auto result = retime_for_iddq(f.nl, f.library, opts);
  ASSERT_GT(result.retimed_gates, 0u);
  const auto cells = lib::bind_cells(result.netlist, f.library);
  const est::TransitionTimes tt(result.netlist, cells, opts.grid_bin_ps);
  const auto profile = est::circuit_profile(result.netlist, tt, cells);
  // Buffers themselves draw switching current the virtual model ignores;
  // allow their ipeak as the tolerance band.
  const double buf_ipeak =
      f.library.params(lib::CellType{netlist::GateKind::kBuf, 1}).ipeak_ua;
  EXPECT_LE(profile.max_current_ua(),
            result.peak_after_ua +
                static_cast<double>(result.buffers_added) * buf_ipeak);
  EXPECT_GE(profile.max_current_ua(), result.peak_after_ua * 0.9);
}

TEST(Resynth, BufferCountMatchesRetimedFanins) {
  Fixture f;
  const auto result = retime_for_iddq(f.nl, f.library);
  // Every added buffer appears in the rebuilt netlist.
  const std::size_t gates_after = result.netlist.logic_gate_count();
  EXPECT_EQ(gates_after, f.nl.logic_gate_count() + result.buffers_added);
}

TEST(Resynth, RespectsBudget) {
  Fixture f;
  ResynthOptions opts;
  opts.max_retimed_gates = 3;
  const auto result = retime_for_iddq(f.nl, f.library, opts);
  EXPECT_LE(result.retimed_gates, 3u);
}

TEST(Resynth, NoOpWhenEverythingIsCritical) {
  // A single chain has zero slack everywhere: nothing may be retimed.
  netlist::NetlistBuilder b("chain");
  auto prev = b.add_input("a");
  for (int i = 0; i < 6; ++i)
    prev = b.add_gate(netlist::GateKind::kNot, "n" + std::to_string(i),
                      {prev});
  b.mark_output(prev);
  const auto nl = std::move(b).build();
  const auto result = retime_for_iddq(nl, lib::default_library());
  EXPECT_EQ(result.retimed_gates, 0u);
  EXPECT_DOUBLE_EQ(result.peak_after_ua, result.peak_before_ua);
}

TEST(Resynth, DelayMarginUnlocksMoreRetiming) {
  Fixture f;
  ResynthOptions tight;
  tight.max_retimed_gates = 60;
  tight.delay_margin = 0.0;
  ResynthOptions loose = tight;
  loose.delay_margin = 0.10;
  const auto r_tight = retime_for_iddq(f.nl, f.library, tight);
  const auto r_loose = retime_for_iddq(f.nl, f.library, loose);
  EXPECT_LE(r_loose.peak_after_ua, r_tight.peak_after_ua);
  // The loose variant may spend its margin...
  EXPECT_LE(r_loose.delay_after_ps,
            r_loose.delay_before_ps * 1.10 + 1e-6);
}

TEST(Resynth, RejectsBadOptions) {
  Fixture f;
  ResynthOptions opts;
  opts.grid_bin_ps = 0.0;
  EXPECT_THROW((void)retime_for_iddq(f.nl, f.library, opts), Error);
  opts = ResynthOptions{};
  opts.target_peak_reduction = 1.0;
  EXPECT_THROW((void)retime_for_iddq(f.nl, f.library, opts), Error);
}

std::vector<std::vector<netlist::GateId>> split_groups(
    const netlist::Netlist& nl, std::size_t k) {
  std::vector<std::vector<netlist::GateId>> groups(k);
  std::size_t i = 0;
  for (const auto g : nl.logic_gates()) groups[i++ % k].push_back(g);
  return groups;
}

TEST(PartitionedResynth, ReducesSumOfModulePeaks) {
  Fixture f;
  const auto groups = split_groups(f.nl, 3);
  ResynthOptions opts;
  opts.max_retimed_gates = 60;
  const auto result =
      retime_for_iddq_partitioned(f.nl, f.library, groups, opts);
  EXPECT_GT(result.retimed_gates, 0u);
  EXPECT_LT(result.sum_peak_after_ua, result.sum_peak_before_ua);
  EXPECT_GT(result.sum_peak_reduction(), 0.0);
}

TEST(PartitionedResynth, ExtendedGroupsCoverRebuiltNetlist) {
  Fixture f;
  const auto groups = split_groups(f.nl, 3);
  const auto result = retime_for_iddq_partitioned(f.nl, f.library, groups);
  const auto p = part::Partition::from_groups(result.netlist, result.groups);
  EXPECT_TRUE(p.covers(result.netlist));
  EXPECT_EQ(p.module_count(), 3u);
}

TEST(PartitionedResynth, PreservesLogicFunction) {
  Fixture f;
  const auto groups = split_groups(f.nl, 3);
  const auto result = retime_for_iddq_partitioned(f.nl, f.library, groups);
  ASSERT_GT(result.retimed_gates, 0u);
  const sim::LogicSim sim_before(f.nl);
  const sim::LogicSim sim_after(result.netlist);
  Rng rng(9);
  const auto patterns = sim::random_patterns(f.nl, 64, rng);
  const auto before = sim_before.run(patterns[0].words);
  const auto after = sim_after.run(patterns[0].words);
  for (const auto po : f.nl.primary_outputs())
    EXPECT_EQ(before[po], after[result.netlist.at(f.nl.gate(po).name)]);
}

TEST(PartitionedResynth, KeepsCriticalPathAtZeroMargin) {
  Fixture f;
  const auto groups = split_groups(f.nl, 3);
  ResynthOptions opts;
  opts.delay_margin = 0.0;
  const auto result =
      retime_for_iddq_partitioned(f.nl, f.library, groups, opts);
  EXPECT_NEAR(result.delay_after_ps, result.delay_before_ps,
              1e-6 * result.delay_before_ps);
}

TEST(PartitionedResynth, SensorAreaImprovesUnderEvaluator) {
  // The end-to-end claim of the extension: evaluating the retimed circuit
  // under the extended partition must not increase the total sensor area.
  Fixture f;
  const auto groups = split_groups(f.nl, 3);
  const part::EvalContext before_ctx(f.nl, f.library, elec::SensorSpec{},
                                     part::CostWeights{});
  part::PartitionEvaluator before(
      before_ctx, part::Partition::from_groups(f.nl, groups));
  const auto result = retime_for_iddq_partitioned(f.nl, f.library, groups);
  const part::EvalContext after_ctx(result.netlist, f.library,
                                    elec::SensorSpec{}, part::CostWeights{});
  part::PartitionEvaluator after(
      after_ctx, part::Partition::from_groups(result.netlist, result.groups));
  EXPECT_LE(after.total_sensor_area(), before.total_sensor_area() * 1.001);
}

TEST(PartitionedResynth, RejectsIncompleteGroups) {
  Fixture f;
  auto groups = split_groups(f.nl, 3);
  groups[0].pop_back();  // one gate uncovered
  EXPECT_THROW(
      (void)retime_for_iddq_partitioned(f.nl, f.library, groups), Error);
}

}  // namespace
}  // namespace iddq::core
