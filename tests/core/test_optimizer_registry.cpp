#include "core/optimizer_registry.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "support/error.hpp"

namespace iddq::core {
namespace {

TEST(OptimizerRegistry, GlobalHasBuiltins) {
  auto& reg = OptimizerRegistry::global();
  for (const auto* name :
       {"evolution", "annealing", "random", "greedy", "standard"})
    EXPECT_TRUE(reg.contains(name)) << name;
  EXPECT_FALSE(reg.contains("does-not-exist"));
}

TEST(OptimizerRegistry, NamesAreSorted) {
  const auto names = OptimizerRegistry::global().names();
  EXPECT_GE(names.size(), 5u);
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(OptimizerRegistry, MakeKnownName) {
  const auto opt = OptimizerRegistry::global().make("evolution");
  ASSERT_NE(opt, nullptr);
  EXPECT_EQ(opt->name(), "evolution");
}

TEST(OptimizerRegistry, MakeUnknownNameListsValidOnes) {
  try {
    (void)OptimizerRegistry::global().make("bogus");
    FAIL() << "expected LookupError";
  } catch (const LookupError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("bogus"), std::string::npos);
    EXPECT_NE(what.find("valid names"), std::string::npos);
    EXPECT_NE(what.find("evolution"), std::string::npos);
  }
}

TEST(OptimizerRegistry, MakeComposedSpec) {
  const auto opt = OptimizerRegistry::global().make("evolution+greedy");
  ASSERT_NE(opt, nullptr);
  EXPECT_EQ(opt->name(), "evolution+greedy");
}

TEST(OptimizerRegistry, ComposedSpecNormalizesWhitespace) {
  const auto opt = OptimizerRegistry::global().make(" evolution + greedy ");
  ASSERT_NE(opt, nullptr);
  EXPECT_EQ(opt->name(), "evolution+greedy");
}

TEST(OptimizerRegistry, ComposedSpecRejectsUnknownStage) {
  EXPECT_THROW((void)OptimizerRegistry::global().make("evolution+bogus"),
               LookupError);
}

TEST(OptimizerRegistry, EmptyAndDanglingSpecsRejected) {
  auto& reg = OptimizerRegistry::global();
  EXPECT_THROW((void)reg.make(""), LookupError);
  EXPECT_THROW((void)reg.make("evolution+"), LookupError);
  EXPECT_THROW((void)reg.make("+greedy"), LookupError);
}

TEST(OptimizerRegistry, DuplicateRegistrationThrows) {
  OptimizerRegistry reg;
  register_builtin_optimizers(reg);
  EXPECT_THROW(
      reg.add("evolution",
              [](const OptimizerConfig& cfg) {
                return OptimizerRegistry::global().make("greedy", cfg);
              }),
      Error);
}

TEST(OptimizerRegistry, InvalidNamesRejected) {
  OptimizerRegistry reg;
  const auto factory = [](const OptimizerConfig& cfg) {
    return OptimizerRegistry::global().make("greedy", cfg);
  };
  EXPECT_THROW(reg.add("", factory), Error);
  EXPECT_THROW(reg.add("a+b", factory), Error);
  EXPECT_THROW(reg.add("ok", nullptr), Error);
}

TEST(OptimizerRegistry, CustomRegistrationIsUsable) {
  OptimizerRegistry reg;
  register_builtin_optimizers(reg);
  reg.add("mygreedy", [](const OptimizerConfig& cfg) {
    return OptimizerRegistry::global().make("greedy", cfg);
  });
  EXPECT_TRUE(reg.contains("mygreedy"));
  const auto opt = reg.make("mygreedy");
  ASSERT_NE(opt, nullptr);
  EXPECT_EQ(opt->name(), "greedy");  // factory delegates to the builtin
  const auto composed = reg.make("random+mygreedy");
  ASSERT_NE(composed, nullptr);
  EXPECT_EQ(composed->name(), "random+mygreedy");
}

}  // namespace
}  // namespace iddq::core
