#include "core/flow_engine.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "core/flow.hpp"
#include "core/result_cache.hpp"
#include "netlist/gen/random_dag.hpp"
#include "support/executor.hpp"

namespace iddq::core {
namespace {

struct Fixture {
  netlist::Netlist nl = netlist::gen::make_random_dag(
      netlist::gen::DagProfile::basic("engine", 260, 12, 11));
  lib::CellLibrary library = lib::default_library();

  FlowEngineConfig config() const {
    FlowEngineConfig cfg;
    cfg.optimizers.es.mu = 3;
    cfg.optimizers.es.lambda = 3;
    cfg.optimizers.es.chi = 1;
    cfg.optimizers.es.max_generations = 12;
    cfg.optimizers.es.stall_generations = 6;
    cfg.optimizers.random_samples = 40;
    return cfg;
  }
};

TEST(FlowEngine, RunMethodsReturnsOneResultPerSpecInOrder) {
  Fixture f;
  FlowEngine engine(f.nl, f.library, f.config());
  const std::vector<std::string> specs{"evolution", "annealing", "random",
                                       "standard"};
  const auto results = engine.run_methods(specs, 42);
  ASSERT_EQ(results.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(results[i].method, specs[i]);
    EXPECT_TRUE(results[i].partition.covers(f.nl));
    EXPECT_GT(results[i].evaluations, 0u);
    EXPECT_EQ(results[i].modules.size(), results[i].module_count);
  }
}

TEST(FlowEngine, StandardAfterAnotherMethodReusesItsModuleSizes) {
  Fixture f;
  FlowEngine engine(f.nl, f.library, f.config());
  const std::vector<std::string> specs{"evolution", "standard"};
  const auto results = engine.run_methods(specs, 42);
  ASSERT_EQ(results.size(), 2u);
  ASSERT_EQ(results[0].module_count, results[1].module_count);
  for (std::uint32_t m = 0; m < results[0].module_count; ++m)
    EXPECT_EQ(results[0].partition.module_size(m),
              results[1].partition.module_size(m));
}

TEST(FlowEngine, StandardAloneUsesEvenSplitOfThePlannedCount) {
  Fixture f;
  FlowEngine engine(f.nl, f.library, f.config());
  FlowEngine::RunOptions opts;
  const auto result = engine.run_method("standard", opts);
  EXPECT_EQ(result.module_count, engine.plan().module_count);
  std::size_t lo = f.nl.logic_gate_count();
  std::size_t hi = 0;
  for (std::uint32_t m = 0; m < result.module_count; ++m) {
    lo = std::min(lo, result.partition.module_size(m));
    hi = std::max(hi, result.partition.module_size(m));
  }
  EXPECT_LE(hi - lo, 1u);
}

TEST(FlowEngine, RecordTraceIsPerRun) {
  Fixture f;
  FlowEngine engine(f.nl, f.library, f.config());
  FlowEngine::RunOptions plain;
  EXPECT_TRUE(engine.run_method("evolution", plain).trace.empty());
  FlowEngine::RunOptions traced;
  traced.record_trace = true;
  EXPECT_FALSE(engine.run_method("evolution", traced).trace.empty());
}

TEST(FlowEngine, ProgressCallbackFires) {
  Fixture f;
  FlowEngine engine(f.nl, f.library, f.config());
  std::size_t calls = 0;
  FlowEngine::RunOptions opts;
  opts.on_progress = [&](const OptimizerProgress&) { ++calls; };
  (void)engine.run_method("random", opts);
  EXPECT_GE(calls, 1u);
}

TEST(FlowEngineCoverage, RowsGainCoverageFieldsOnlyWhenEnabled) {
  Fixture f;
  FlowEngine plain(f.nl, f.library, f.config());
  FlowEngine::RunOptions opts;
  const auto off = plain.run_method("standard", opts);
  EXPECT_FALSE(off.has_coverage);
  EXPECT_EQ(off.faults_total, 0u);

  auto cfg = f.config();
  cfg.coverage.enabled = true;
  cfg.coverage.patterns = 64;
  FlowEngine graded(f.nl, f.library, cfg);
  const auto on = graded.run_method("standard", opts);
  EXPECT_TRUE(on.has_coverage);
  EXPECT_GT(on.faults_total, 0u);
  EXPECT_LE(on.faults_detected, on.faults_total);
  EXPECT_EQ(on.patterns_used, 64u);
  EXPECT_EQ(on.patterns_minimized, 64u);  // minimize off
  // Coverage is a grade, not an objective: the partition itself must be
  // untouched by grading.
  EXPECT_EQ(on.fitness.cost, off.fitness.cost);
  EXPECT_EQ(on.module_count, off.module_count);
}

TEST(FlowEngineCoverage, RowsByteIdenticalAcrossPoolSizes) {
  Fixture f;
  auto cfg = f.config();
  cfg.coverage.enabled = true;
  cfg.coverage.patterns = 64;
  cfg.coverage.minimize = true;

  const std::vector<std::string> specs{"evolution", "standard"};
  FlowEngine serial(f.nl, f.library, cfg);
  const auto base = serial.run_methods(specs, 42);
  for (const std::size_t threads : {2u, 8u}) {
    support::ExecutorPool pool(threads);
    auto pooled_cfg = cfg;
    pooled_cfg.pool = &pool;
    FlowEngine engine(f.nl, f.library, pooled_cfg);
    const auto rows = engine.run_methods(specs, 42);
    ASSERT_EQ(rows.size(), base.size());
    for (std::size_t i = 0; i < rows.size(); ++i) {
      EXPECT_EQ(rows[i].fitness.cost, base[i].fitness.cost);
      EXPECT_EQ(rows[i].fault_coverage_pct, base[i].fault_coverage_pct);
      EXPECT_EQ(rows[i].faults_detected, base[i].faults_detected);
      EXPECT_EQ(rows[i].faults_total, base[i].faults_total);
      EXPECT_EQ(rows[i].patterns_minimized, base[i].patterns_minimized);
    }
  }
}

TEST(FlowEngineCoverage, CacheReplayReproducesCoverageBitExactly) {
  Fixture f;
  auto cfg = f.config();
  cfg.coverage.enabled = true;
  cfg.coverage.patterns = 64;
  cfg.coverage.minimize = true;

  const std::string dir =
      (std::filesystem::path(testing::TempDir()) / "flow_engine_cov_cache")
          .string();
  std::filesystem::remove_all(dir);
  ResultCache cache(dir);
  cfg.cache = &cache;

  FlowEngine::RunOptions opts;
  opts.seed = 42;
  MethodResult fresh;
  {
    FlowEngine engine(f.nl, f.library, cfg);
    fresh = engine.run_method("evolution", opts);
  }
  EXPECT_EQ(cache.misses(), 1u);

  ResultCache reopened(dir);
  auto replay_cfg = cfg;
  replay_cfg.cache = &reopened;
  FlowEngine engine(f.nl, f.library, replay_cfg);
  const auto replayed = engine.run_method("evolution", opts);
  EXPECT_EQ(reopened.hits(), 1u);
  EXPECT_TRUE(replayed.has_coverage);
  EXPECT_EQ(replayed.fault_coverage_pct, fresh.fault_coverage_pct);
  EXPECT_EQ(replayed.faults_detected, fresh.faults_detected);
  EXPECT_EQ(replayed.faults_total, fresh.faults_total);
  EXPECT_EQ(replayed.patterns_used, fresh.patterns_used);
  EXPECT_EQ(replayed.patterns_minimized, fresh.patterns_minimized);
  EXPECT_EQ(replayed.fitness.cost, fresh.fitness.cost);
}

TEST(FlowEngineCoverage, CoverageOptionsChangeTheCacheKey) {
  // A coverage-graded row must never replay a plain row (or vice versa),
  // and different fault models must not share entries.
  Fixture f;
  const std::string dir =
      (std::filesystem::path(testing::TempDir()) / "flow_engine_cov_salt")
          .string();
  std::filesystem::remove_all(dir);
  ResultCache cache(dir);

  auto run_once = [&](bool enabled, const std::string& model) {
    auto cfg = f.config();
    cfg.cache = &cache;
    cfg.coverage.enabled = enabled;
    cfg.coverage.fault_model = model;
    FlowEngine engine(f.nl, f.library, cfg);
    FlowEngine::RunOptions opts;
    opts.seed = 42;
    return engine.run_method("standard", opts);
  };
  (void)run_once(false, "mixed");
  (void)run_once(true, "mixed");
  (void)run_once(true, "bridges");
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 3u);
  // Same options again: now it replays.
  const auto replay = run_once(true, "bridges");
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_TRUE(replay.has_coverage);
}

TEST(FlowResultOverhead, DegenerateZeroAreaReportsZeroWithFlag) {
  FlowResult result;
  result.evolution.sensor_area = 0.0;  // e.g. single-module degenerate plan
  result.standard.sensor_area = 5.0;
  EXPECT_FALSE(result.overhead_comparable());
  EXPECT_EQ(result.standard_area_overhead_pct(), 0.0);
}

TEST(FlowResultOverhead, NormalCaseMatchesFormula) {
  FlowResult result;
  result.evolution.sensor_area = 4.0;
  result.standard.sensor_area = 5.0;
  EXPECT_TRUE(result.overhead_comparable());
  EXPECT_DOUBLE_EQ(result.standard_area_overhead_pct(), 25.0);
}

}  // namespace
}  // namespace iddq::core
