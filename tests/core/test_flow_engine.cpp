#include "core/flow_engine.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/flow.hpp"
#include "netlist/gen/random_dag.hpp"

namespace iddq::core {
namespace {

struct Fixture {
  netlist::Netlist nl = netlist::gen::make_random_dag(
      netlist::gen::DagProfile::basic("engine", 260, 12, 11));
  lib::CellLibrary library = lib::default_library();

  FlowEngineConfig config() const {
    FlowEngineConfig cfg;
    cfg.optimizers.es.mu = 3;
    cfg.optimizers.es.lambda = 3;
    cfg.optimizers.es.chi = 1;
    cfg.optimizers.es.max_generations = 12;
    cfg.optimizers.es.stall_generations = 6;
    cfg.optimizers.random_samples = 40;
    return cfg;
  }
};

TEST(FlowEngine, RunMethodsReturnsOneResultPerSpecInOrder) {
  Fixture f;
  FlowEngine engine(f.nl, f.library, f.config());
  const std::vector<std::string> specs{"evolution", "annealing", "random",
                                       "standard"};
  const auto results = engine.run_methods(specs, 42);
  ASSERT_EQ(results.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(results[i].method, specs[i]);
    EXPECT_TRUE(results[i].partition.covers(f.nl));
    EXPECT_GT(results[i].evaluations, 0u);
    EXPECT_EQ(results[i].modules.size(), results[i].module_count);
  }
}

TEST(FlowEngine, StandardAfterAnotherMethodReusesItsModuleSizes) {
  Fixture f;
  FlowEngine engine(f.nl, f.library, f.config());
  const std::vector<std::string> specs{"evolution", "standard"};
  const auto results = engine.run_methods(specs, 42);
  ASSERT_EQ(results.size(), 2u);
  ASSERT_EQ(results[0].module_count, results[1].module_count);
  for (std::uint32_t m = 0; m < results[0].module_count; ++m)
    EXPECT_EQ(results[0].partition.module_size(m),
              results[1].partition.module_size(m));
}

TEST(FlowEngine, StandardAloneUsesEvenSplitOfThePlannedCount) {
  Fixture f;
  FlowEngine engine(f.nl, f.library, f.config());
  FlowEngine::RunOptions opts;
  const auto result = engine.run_method("standard", opts);
  EXPECT_EQ(result.module_count, engine.plan().module_count);
  std::size_t lo = f.nl.logic_gate_count();
  std::size_t hi = 0;
  for (std::uint32_t m = 0; m < result.module_count; ++m) {
    lo = std::min(lo, result.partition.module_size(m));
    hi = std::max(hi, result.partition.module_size(m));
  }
  EXPECT_LE(hi - lo, 1u);
}

TEST(FlowEngine, RecordTraceIsPerRun) {
  Fixture f;
  FlowEngine engine(f.nl, f.library, f.config());
  FlowEngine::RunOptions plain;
  EXPECT_TRUE(engine.run_method("evolution", plain).trace.empty());
  FlowEngine::RunOptions traced;
  traced.record_trace = true;
  EXPECT_FALSE(engine.run_method("evolution", traced).trace.empty());
}

TEST(FlowEngine, ProgressCallbackFires) {
  Fixture f;
  FlowEngine engine(f.nl, f.library, f.config());
  std::size_t calls = 0;
  FlowEngine::RunOptions opts;
  opts.on_progress = [&](const OptimizerProgress&) { ++calls; };
  (void)engine.run_method("random", opts);
  EXPECT_GE(calls, 1u);
}

TEST(FlowResultOverhead, DegenerateZeroAreaReportsZeroWithFlag) {
  FlowResult result;
  result.evolution.sensor_area = 0.0;  // e.g. single-module degenerate plan
  result.standard.sensor_area = 5.0;
  EXPECT_FALSE(result.overhead_comparable());
  EXPECT_EQ(result.standard_area_overhead_pct(), 0.0);
}

TEST(FlowResultOverhead, NormalCaseMatchesFormula) {
  FlowResult result;
  result.evolution.sensor_area = 4.0;
  result.standard.sensor_area = 5.0;
  EXPECT_TRUE(result.overhead_comparable());
  EXPECT_DOUBLE_EQ(result.standard_area_overhead_pct(), 25.0);
}

}  // namespace
}  // namespace iddq::core
