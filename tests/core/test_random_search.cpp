#include "core/random_search.hpp"

#include <gtest/gtest.h>

#include "core/start_partition.hpp"
#include "netlist/gen/random_dag.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace iddq::core {
namespace {

struct Fixture {
  netlist::Netlist nl = netlist::gen::make_random_dag(
      netlist::gen::DagProfile::basic("rs", 150, 10, 8));
  lib::CellLibrary library = lib::default_library();
  part::EvalContext ctx{nl, library, elec::SensorSpec{},
                        part::CostWeights{}};
};

TEST(RandomSearch, BestOfManyBeatsFirst) {
  Fixture f;
  Rng rng(1);
  part::PartitionEvaluator first(f.ctx, make_start_partition(f.nl, 3, rng));
  const auto result = random_search(f.ctx, 3, 40, 1);
  EXPECT_EQ(result.evaluations, 40u);
  EXPECT_LE(result.best_fitness.cost, first.fitness().cost);
}

TEST(RandomSearch, SingleSampleIsValid) {
  Fixture f;
  const auto result = random_search(f.ctx, 3, 1, 2);
  EXPECT_EQ(result.evaluations, 1u);
  EXPECT_TRUE(result.best_partition.covers(f.nl));
}

TEST(RandomSearch, Deterministic) {
  Fixture f;
  const auto a = random_search(f.ctx, 3, 10, 7);
  const auto b = random_search(f.ctx, 3, 10, 7);
  EXPECT_EQ(a.best_fitness.cost, b.best_fitness.cost);
}

TEST(RandomSearch, MoreSamplesNeverWorse) {
  Fixture f;
  const auto few = random_search(f.ctx, 3, 5, 9);
  const auto many = random_search(f.ctx, 3, 50, 9);
  EXPECT_LE(many.best_fitness.cost, few.best_fitness.cost);
}

TEST(RandomSearch, RejectsZeroSamples) {
  Fixture f;
  EXPECT_THROW((void)random_search(f.ctx, 3, 0, 1), Error);
}

}  // namespace
}  // namespace iddq::core
