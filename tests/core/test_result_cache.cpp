#include "core/result_cache.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>

#include "core/flow_engine.hpp"
#include "netlist/gen/random_dag.hpp"
#include "support/error.hpp"

namespace iddq::core {
namespace {

CacheRecord sample_record() {
  CacheRecord r;
  r.method = "evolution+greedy";
  r.gate_count = 9;
  r.modules = {{3, 5, 4}, {6, 7}, {8}};
  r.fitness.violation = 0.0;
  r.fitness.cost = 3307.1927303185653;
  r.costs = {11.608089185189689, 0.031854938377842958, 3.2958368660043291,
             3.9302530015577775, 1.0};
  r.iterations = 10;
  r.evaluations = 728;
  return r;
}

void expect_record_eq(const CacheRecord& a, const CacheRecord& b) {
  EXPECT_EQ(a.method, b.method);
  EXPECT_EQ(a.gate_count, b.gate_count);
  EXPECT_EQ(a.modules, b.modules);
  // Bit-pattern comparison: the cache must round-trip doubles exactly.
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.fitness.violation),
            std::bit_cast<std::uint64_t>(b.fitness.violation));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.fitness.cost),
            std::bit_cast<std::uint64_t>(b.fitness.cost));
  const auto ca = a.costs.as_array();
  const auto cb = b.costs.as_array();
  for (std::size_t i = 0; i < ca.size(); ++i)
    EXPECT_EQ(std::bit_cast<std::uint64_t>(ca[i]),
              std::bit_cast<std::uint64_t>(cb[i]));
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.evaluations, b.evaluations);
}

std::string fresh_dir(const std::string& name) {
  const auto dir = std::filesystem::path(testing::TempDir()) /
                   ("iddq_cache_test_" + name);
  std::filesystem::remove_all(dir);
  return dir.string();
}

TEST(ResultCacheSerialization, RoundTripsExactly) {
  const CacheRecord record = sample_record();
  const std::string line = ResultCache::serialize(0xDEADBEEF12345678ull,
                                                  record);
  std::uint64_t key = 0;
  CacheRecord parsed;
  ASSERT_TRUE(ResultCache::parse(line, key, parsed)) << line;
  EXPECT_EQ(key, 0xDEADBEEF12345678ull);
  expect_record_eq(record, parsed);
}

TEST(ResultCacheSerialization, RoundTripsAwkwardDoubles) {
  CacheRecord record = sample_record();
  record.fitness.violation = 1.0 / 3.0;
  record.fitness.cost = 1e-300;
  record.costs.c1 = -0.0;  // normalized to +0.0 on the wire; both read 0.0
  record.costs.c2 = 6.02214076e23;
  const std::string line = ResultCache::serialize(7, record);
  std::uint64_t key = 0;
  CacheRecord parsed;
  ASSERT_TRUE(ResultCache::parse(line, key, parsed));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(parsed.fitness.violation),
            std::bit_cast<std::uint64_t>(1.0 / 3.0));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(parsed.fitness.cost),
            std::bit_cast<std::uint64_t>(1e-300));
  EXPECT_EQ(parsed.costs.c1, 0.0);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(parsed.costs.c2),
            std::bit_cast<std::uint64_t>(6.02214076e23));
}

TEST(ResultCacheSerialization, RejectsMalformedLines) {
  std::uint64_t key = 0;
  CacheRecord out;
  EXPECT_FALSE(ResultCache::parse("", key, out));
  EXPECT_FALSE(ResultCache::parse("not json", key, out));
  EXPECT_FALSE(ResultCache::parse("{}", key, out));
  EXPECT_FALSE(ResultCache::parse("{\"key\":\"12\"}", key, out));  // no modules
  const std::string good = ResultCache::serialize(1, sample_record());
  EXPECT_FALSE(
      ResultCache::parse(good.substr(0, good.size() / 2), key, out));
  EXPECT_TRUE(ResultCache::parse(good, key, out));
}

TEST(ResultCacheSerialization, CoverageFieldsRoundTrip) {
  CacheRecord record = sample_record();
  record.has_coverage = true;
  record.faults_total = 240;
  record.faults_detected = 181;
  record.patterns_used = 256;
  record.patterns_minimized = 19;
  const std::string line = ResultCache::serialize(9, record);
  std::uint64_t key = 0;
  CacheRecord parsed;
  ASSERT_TRUE(ResultCache::parse(line, key, parsed)) << line;
  EXPECT_TRUE(parsed.has_coverage);
  EXPECT_EQ(parsed.faults_total, 240u);
  EXPECT_EQ(parsed.faults_detected, 181u);
  EXPECT_EQ(parsed.patterns_used, 256u);
  EXPECT_EQ(parsed.patterns_minimized, 19u);
  expect_record_eq(record, parsed);

  // A plain record neither writes nor reads back coverage fields.
  const std::string plain = ResultCache::serialize(9, sample_record());
  EXPECT_EQ(plain.find("\"cov\""), std::string::npos);
  ASSERT_TRUE(ResultCache::parse(plain, key, parsed));
  EXPECT_FALSE(parsed.has_coverage);
}

TEST(ResultCache, InMemoryStoreAndCounters) {
  ResultCache cache;
  EXPECT_FALSE(cache.lookup(1).has_value());
  EXPECT_EQ(cache.misses(), 1u);
  cache.store(1, sample_record());
  const auto hit = cache.lookup(1);
  ASSERT_TRUE(hit.has_value());
  expect_record_eq(*hit, sample_record());
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ResultCache, PersistsAcrossInstances) {
  const std::string dir = fresh_dir("persist");
  {
    ResultCache cache(dir);
    cache.store(42, sample_record());
  }
  ResultCache reloaded(dir);
  EXPECT_EQ(reloaded.size(), 1u);
  const auto hit = reloaded.lookup(42);
  ASSERT_TRUE(hit.has_value());
  expect_record_eq(*hit, sample_record());
}

TEST(ResultCache, SkipsCorruptLines) {
  const std::string dir = fresh_dir("corrupt");
  {
    ResultCache cache(dir);
    cache.store(42, sample_record());
  }
  {
    std::ofstream out(dir + "/results.jsonl", std::ios::app);
    out << "garbage line\n";
    out << ResultCache::serialize(43, sample_record()).substr(0, 40) << "\n";
  }
  ResultCache reloaded(dir);
  EXPECT_EQ(reloaded.size(), 1u);  // the two bad lines degrade to misses
  EXPECT_TRUE(reloaded.lookup(42).has_value());
  // ... and the degradation is counted, not silent (the CLI surfaces it).
  EXPECT_EQ(reloaded.corrupt_lines(), 2u);
}

TEST(ResultCacheMaintenance, InspectCountsKeysDuplicatesAndCorruption) {
  const std::string dir = fresh_dir("inspect");
  {
    ResultCache cache(dir);
    cache.store(1, sample_record());
    cache.store(2, sample_record());
    cache.store(1, sample_record());  // duplicate key, appended again
  }
  {
    std::ofstream out(dir + "/results.jsonl", std::ios::app);
    out << "not json\n";
  }
  const CacheFileStats stats = inspect_cache_file(dir);
  EXPECT_EQ(stats.total_lines, 4u);
  EXPECT_EQ(stats.corrupt_lines, 1u);
  EXPECT_EQ(stats.unique_keys, 2u);
  EXPECT_EQ(stats.duplicate_lines, 1u);
  // Histogram covers every unique key exactly once.
  std::size_t histogram_total = 0;
  for (const std::size_t count : stats.age_histogram)
    histogram_total += count;
  EXPECT_EQ(histogram_total, stats.unique_keys);
}

TEST(ResultCacheMaintenance, CompactKeepsLastWritePerKey) {
  const std::string dir = fresh_dir("compact");
  CacheRecord newer = sample_record();
  newer.evaluations = 999;  // distinguish last write from first
  {
    ResultCache cache(dir);
    cache.store(1, sample_record());
    cache.store(2, sample_record());
    cache.store(1, newer);
  }
  {
    std::ofstream out(dir + "/results.jsonl", std::ios::app);
    out << "truncated garbage\n";
  }

  const CacheCompaction compaction = compact_cache_file(dir);
  EXPECT_EQ(compaction.kept, 2u);
  EXPECT_EQ(compaction.dropped_duplicates, 1u);
  EXPECT_EQ(compaction.dropped_corrupt, 1u);

  // The compacted file reloads with identical lookup results: key 1 maps
  // to the LAST write.
  ResultCache reloaded(dir);
  EXPECT_EQ(reloaded.size(), 2u);
  EXPECT_EQ(reloaded.corrupt_lines(), 0u);
  const auto hit = reloaded.lookup(1);
  ASSERT_TRUE(hit.has_value());
  expect_record_eq(*hit, newer);
  EXPECT_TRUE(reloaded.lookup(2).has_value());

  // Compacting an already-compact file is a no-op.
  const CacheCompaction again = compact_cache_file(dir);
  EXPECT_EQ(again.kept, 2u);
  EXPECT_EQ(again.dropped_duplicates, 0u);
  EXPECT_EQ(again.dropped_corrupt, 0u);
}

TEST(ResultCacheMaintenance, InspectThrowsWithoutCacheFile) {
  const std::string dir = fresh_dir("missing");
  EXPECT_THROW((void)inspect_cache_file(dir), Error);
}

TEST(ResultCacheResidency, EvictsLeastRecentlyUsedOverCap) {
  const std::string dir = fresh_dir("lru");
  ResultCache cache(dir);
  cache.set_max_resident(2);
  CacheRecord r1 = sample_record();
  r1.evaluations = 1;
  CacheRecord r2 = sample_record();
  r2.evaluations = 2;
  CacheRecord r3 = sample_record();
  r3.evaluations = 3;
  cache.store(1, r1);
  cache.store(2, r2);
  EXPECT_EQ(cache.resident_size(), 2u);
  EXPECT_EQ(cache.evictions(), 0u);
  cache.store(3, r3);  // key 1 is now the LRU entry: evicted to disk only
  EXPECT_EQ(cache.resident_size(), 2u);
  EXPECT_EQ(cache.size(), 3u);  // still addressable
  EXPECT_EQ(cache.evictions(), 1u);

  // The evicted entry is still a HIT -- reloaded from disk, bit-exact.
  const auto hit = cache.lookup(1);
  ASSERT_TRUE(hit.has_value());
  expect_record_eq(*hit, r1);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 0u);
  EXPECT_EQ(cache.disk_hits(), 1u);
  // Reloading re-admitted key 1, displacing the new LRU entry (key 2).
  EXPECT_EQ(cache.resident_size(), 2u);
  EXPECT_EQ(cache.evictions(), 2u);
  const auto hit2 = cache.lookup(2);
  ASSERT_TRUE(hit2.has_value());
  expect_record_eq(*hit2, r2);
  EXPECT_EQ(cache.disk_hits(), 2u);
}

TEST(ResultCacheResidency, LookupRefreshesRecency) {
  const std::string dir = fresh_dir("lru_touch");
  ResultCache cache(dir);
  cache.set_max_resident(2);
  cache.store(1, sample_record());
  cache.store(2, sample_record());
  // Touch key 1 so key 2 becomes the LRU entry...
  EXPECT_TRUE(cache.lookup(1).has_value());
  cache.store(3, sample_record());
  // ...then key 1 must still be resident (no disk hit to read it).
  EXPECT_TRUE(cache.lookup(1).has_value());
  EXPECT_EQ(cache.disk_hits(), 0u);
  // Key 2 was the one spilled.
  EXPECT_TRUE(cache.lookup(2).has_value());
  EXPECT_EQ(cache.disk_hits(), 1u);
}

TEST(ResultCacheResidency, MemoryOnlyCacheNeverEvicts) {
  // Without a backing file the resident record is the only copy.
  ResultCache cache;
  cache.set_max_resident(1);
  cache.store(1, sample_record());
  cache.store(2, sample_record());
  EXPECT_EQ(cache.resident_size(), 2u);
  EXPECT_EQ(cache.evictions(), 0u);
  EXPECT_TRUE(cache.lookup(1).has_value());
}

TEST(ResultCacheResidency, CapAppliesToEntriesLoadedFromDisk) {
  const std::string dir = fresh_dir("lru_reload");
  {
    ResultCache cache(dir);
    for (std::uint64_t k = 1; k <= 5; ++k) cache.store(k, sample_record());
  }
  ResultCache reloaded(dir);
  reloaded.set_max_resident(2);
  EXPECT_EQ(reloaded.resident_size(), 2u);
  EXPECT_EQ(reloaded.size(), 5u);
  for (std::uint64_t k = 1; k <= 5; ++k)
    EXPECT_TRUE(reloaded.lookup(k).has_value()) << k;
  EXPECT_EQ(reloaded.misses(), 0u);
}

/// Drives the idle-eviction clock by hand: tests inject this as the
/// cache's clock so "idle for N ms" is exact, not sleep-based.
struct FakeClock {
  std::chrono::steady_clock::time_point now = std::chrono::steady_clock::now();
  void advance(std::chrono::milliseconds d) { now += d; }
};

TEST(ResultCacheIdle, UntouchedEntriesLeaveResidencyAfterDeadline) {
  const std::string dir = fresh_dir("idle");
  ResultCache cache(dir);
  FakeClock clock;
  cache.set_clock_for_test([&] { return clock.now; });
  cache.set_idle_deadline(std::chrono::milliseconds(100));

  const CacheRecord r1 = sample_record();
  cache.store(1, r1);
  cache.store(2, sample_record());
  EXPECT_EQ(cache.resident_size(), 2u);

  // Not idle yet: nothing evicted on the next touch.
  clock.advance(std::chrono::milliseconds(50));
  cache.store(3, sample_record());
  EXPECT_EQ(cache.resident_size(), 3u);
  EXPECT_EQ(cache.idle_evictions(), 0u);

  // Keys 1 and 2 are now 150ms idle, key 3 only 100ms... but the
  // deadline is inclusive-expired at exactly 100ms of idleness, so all
  // three leave the resident map on the next cache operation.
  clock.advance(std::chrono::milliseconds(100));
  const auto hit = cache.lookup(1);
  ASSERT_TRUE(hit.has_value());
  expect_record_eq(*hit, r1);
  // The lookup itself reloaded key 1 from disk (a hit, not a miss) and
  // re-admitted it; keys 2 and 3 stay evicted until asked for.
  EXPECT_EQ(cache.disk_hits(), 1u);
  EXPECT_EQ(cache.misses(), 0u);
  EXPECT_EQ(cache.idle_evictions(), 3u);
  EXPECT_EQ(cache.evictions(), 3u);
  EXPECT_EQ(cache.resident_size(), 1u);
  EXPECT_EQ(cache.size(), 3u);  // still addressable
}

TEST(ResultCacheIdle, TouchedEntriesSurviveTheDeadline) {
  const std::string dir = fresh_dir("idle_touch");
  ResultCache cache(dir);
  FakeClock clock;
  cache.set_clock_for_test([&] { return clock.now; });
  cache.set_idle_deadline(std::chrono::milliseconds(100));

  cache.store(1, sample_record());
  cache.store(2, sample_record());

  // Keep key 1 warm with lookups while key 2 goes idle.
  clock.advance(std::chrono::milliseconds(60));
  EXPECT_TRUE(cache.lookup(1).has_value());
  clock.advance(std::chrono::milliseconds(60));
  EXPECT_TRUE(cache.lookup(1).has_value());
  EXPECT_EQ(cache.idle_evictions(), 1u);  // key 2: 120ms idle
  EXPECT_EQ(cache.resident_size(), 1u);
  EXPECT_EQ(cache.disk_hits(), 0u) << "key 1 must still be resident";

  // The evicted entry replays byte-identically from disk.
  const auto hit = cache.lookup(2);
  ASSERT_TRUE(hit.has_value());
  expect_record_eq(*hit, sample_record());
  EXPECT_EQ(cache.disk_hits(), 1u);
}

TEST(ResultCacheIdle, MemoryOnlyCacheNeverIdleEvicts) {
  // Without a backing file the resident record is the only copy, so the
  // idle deadline must not apply (evicting would lose results).
  ResultCache cache;
  FakeClock clock;
  cache.set_clock_for_test([&] { return clock.now; });
  cache.set_idle_deadline(std::chrono::milliseconds(1));
  cache.store(1, sample_record());
  clock.advance(std::chrono::hours(1));
  EXPECT_TRUE(cache.lookup(1).has_value());
  EXPECT_EQ(cache.idle_evictions(), 0u);
  EXPECT_EQ(cache.resident_size(), 1u);
}

TEST(ResultCacheIdle, ZeroDeadlineDisablesIdleEviction) {
  const std::string dir = fresh_dir("idle_off");
  ResultCache cache(dir);
  FakeClock clock;
  cache.set_clock_for_test([&] { return clock.now; });
  // Default: no deadline configured. Entries stay resident forever.
  cache.store(1, sample_record());
  clock.advance(std::chrono::hours(24));
  EXPECT_TRUE(cache.lookup(1).has_value());
  EXPECT_EQ(cache.idle_evictions(), 0u);
  EXPECT_EQ(cache.disk_hits(), 0u);
}

TEST(ResultCacheIdle, ComposesWithLruCap) {
  // Both policies at once: the cap bounds the live set, the deadline
  // clears it entirely when the client goes quiet.
  const std::string dir = fresh_dir("idle_lru");
  ResultCache cache(dir);
  FakeClock clock;
  cache.set_clock_for_test([&] { return clock.now; });
  cache.set_max_resident(2);
  cache.set_idle_deadline(std::chrono::milliseconds(100));

  for (std::uint64_t k = 1; k <= 3; ++k) cache.store(k, sample_record());
  EXPECT_EQ(cache.resident_size(), 2u);
  EXPECT_EQ(cache.evictions(), 1u);  // LRU spill of key 1
  EXPECT_EQ(cache.idle_evictions(), 0u);

  clock.advance(std::chrono::milliseconds(200));
  cache.store(4, sample_record());
  EXPECT_EQ(cache.idle_evictions(), 2u);  // keys 2 and 3 went idle
  EXPECT_EQ(cache.resident_size(), 1u);   // only the fresh key 4

  // Every key still replays byte-identically.
  for (std::uint64_t k = 1; k <= 4; ++k) {
    SCOPED_TRACE(k);
    const auto hit = cache.lookup(k);
    ASSERT_TRUE(hit.has_value());
    expect_record_eq(*hit, sample_record());
  }
}

TEST(CacheKey, ContextFingerprintCoversCoverageOptions) {
  const elec::SensorSpec sensor;
  const part::CostWeights weights;
  const OptimizerConfig optimizers;
  const auto base =
      cache_context_fingerprint(1, 2, sensor, weights, 4, optimizers);

  // v3 rows must never replay into a coverage-graded engine: enabling
  // coverage (or changing any coverage knob) re-keys the context.
  CoverageOptions coverage;
  coverage.enabled = true;
  const auto graded = cache_context_fingerprint(1, 2, sensor, weights, 4,
                                                optimizers, coverage);
  EXPECT_NE(base, graded);
  EXPECT_EQ(graded, cache_context_fingerprint(1, 2, sensor, weights, 4,
                                              optimizers, coverage));

  CoverageOptions model = coverage;
  model.fault_model = "bridges=40,shorts=10";
  EXPECT_NE(graded, cache_context_fingerprint(1, 2, sensor, weights, 4,
                                              optimizers, model));
  CoverageOptions budget = coverage;
  budget.patterns = 128;
  EXPECT_NE(graded, cache_context_fingerprint(1, 2, sensor, weights, 4,
                                              optimizers, budget));
  CoverageOptions minimized = coverage;
  minimized.minimize = true;
  EXPECT_NE(graded, cache_context_fingerprint(1, 2, sensor, weights, 4,
                                              optimizers, minimized));
  CoverageOptions seeded = coverage;
  seeded.seed = 2;
  EXPECT_NE(graded, cache_context_fingerprint(1, 2, sensor, weights, 4,
                                              optimizers, seeded));

  // Disabled coverage ignores the other knobs (they have no effect).
  CoverageOptions disabled;
  disabled.fault_model = "bridges";
  disabled.patterns = 9;
  EXPECT_EQ(base, cache_context_fingerprint(1, 2, sensor, weights, 4,
                                            optimizers, disabled));
}

TEST(CacheKey, SensitiveToEveryRunInput) {
  const std::uint64_t ctx_fp = 0x1234;
  const auto base = cache_key(ctx_fp, "evolution", 42, 0, nullptr);
  EXPECT_EQ(base, cache_key(ctx_fp, "evolution", 42, 0, nullptr));
  EXPECT_NE(base, cache_key(ctx_fp, "annealing", 42, 0, nullptr));
  EXPECT_NE(base, cache_key(ctx_fp, "evolution", 43, 0, nullptr));
  EXPECT_NE(base, cache_key(ctx_fp, "evolution", 42, 1000, nullptr));
  EXPECT_NE(base, cache_key(ctx_fp ^ 1, "evolution", 42, 0, nullptr));

  part::Partition start(4, 2);
  start.assign(2, 0);
  start.assign(3, 1);
  const auto with_start = cache_key(ctx_fp, "evolution", 42, 0, &start);
  EXPECT_NE(base, with_start);
  part::Partition other(4, 2);
  other.assign(2, 1);
  other.assign(3, 0);
  EXPECT_NE(with_start, cache_key(ctx_fp, "evolution", 42, 0, &other));
}

TEST(CacheKey, ContextFingerprintCoversConfig) {
  const elec::SensorSpec sensor;
  const part::CostWeights weights;
  const OptimizerConfig optimizers;
  const auto base =
      cache_context_fingerprint(1, 2, sensor, weights, 4, optimizers);
  EXPECT_EQ(base,
            cache_context_fingerprint(1, 2, sensor, weights, 4, optimizers));
  EXPECT_NE(base,
            cache_context_fingerprint(9, 2, sensor, weights, 4, optimizers));
  EXPECT_NE(base,
            cache_context_fingerprint(1, 9, sensor, weights, 4, optimizers));
  EXPECT_NE(base,
            cache_context_fingerprint(1, 2, sensor, weights, 5, optimizers));

  elec::SensorSpec sensor2 = sensor;
  sensor2.d_min = 12.0;
  EXPECT_NE(base,
            cache_context_fingerprint(1, 2, sensor2, weights, 4, optimizers));

  part::CostWeights weights2 = weights;
  weights2.a2 = 7.0;
  EXPECT_NE(base,
            cache_context_fingerprint(1, 2, sensor, weights2, 4, optimizers));

  OptimizerConfig optimizers2 = optimizers;
  optimizers2.es.max_generations += 1;
  EXPECT_NE(base,
            cache_context_fingerprint(1, 2, sensor, weights, 4, optimizers2));

  // The per-request seed is keyed by cache_key, not the context.
  OptimizerConfig optimizers3 = optimizers;
  optimizers3.es.seed = 999;
  EXPECT_EQ(base,
            cache_context_fingerprint(1, 2, sensor, weights, 4, optimizers3));
}

struct EngineFixture {
  netlist::Netlist nl = netlist::gen::make_random_dag(
      netlist::gen::DagProfile::basic("cache", 150, 10, 5));
  lib::CellLibrary library = lib::default_library();

  FlowEngineConfig config(ResultCache* cache = nullptr) {
    FlowEngineConfig cfg;
    cfg.optimizers.es.mu = 3;
    cfg.optimizers.es.lambda = 3;
    cfg.optimizers.es.chi = 1;
    cfg.optimizers.es.max_generations = 8;
    cfg.optimizers.es.stall_generations = 4;
    cfg.cache = cache;
    return cfg;
  }
};

void expect_method_result_identical(const MethodResult& a,
                                    const MethodResult& b) {
  EXPECT_EQ(a.method, b.method);
  EXPECT_EQ(a.partition, b.partition);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.fitness.cost),
            std::bit_cast<std::uint64_t>(b.fitness.cost));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.fitness.violation),
            std::bit_cast<std::uint64_t>(b.fitness.violation));
  const auto ca = a.costs.as_array();
  const auto cb = b.costs.as_array();
  for (std::size_t i = 0; i < ca.size(); ++i)
    EXPECT_EQ(std::bit_cast<std::uint64_t>(ca[i]),
              std::bit_cast<std::uint64_t>(cb[i]));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.sensor_area),
            std::bit_cast<std::uint64_t>(b.sensor_area));
  EXPECT_EQ(a.module_count, b.module_count);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.evaluations, b.evaluations);
  ASSERT_EQ(a.modules.size(), b.modules.size());
  for (std::size_t m = 0; m < a.modules.size(); ++m) {
    EXPECT_EQ(a.modules[m].gates, b.modules[m].gates);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a.modules[m].leakage_ua),
              std::bit_cast<std::uint64_t>(b.modules[m].leakage_ua));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a.modules[m].area),
              std::bit_cast<std::uint64_t>(b.modules[m].area));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a.modules[m].tau_ps),
              std::bit_cast<std::uint64_t>(b.modules[m].tau_ps));
  }
}

TEST(ResultCacheFlow, HitReturnsByteIdenticalMethodResult) {
  EngineFixture f;
  ResultCache cache;
  FlowEngine engine(f.nl, f.library, f.config(&cache));

  FlowEngine::RunOptions options;
  options.seed = 42;
  const auto cold = engine.run_method("evolution", options);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.size(), 1u);

  const auto warm = engine.run_method("evolution", options);
  EXPECT_EQ(cache.hits(), 1u);
  expect_method_result_identical(cold, warm);

  // A different seed is a different point: miss, then computed.
  options.seed = 43;
  const auto other = engine.run_method("evolution", options);
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(other.method, cold.method);
}

TEST(ResultCacheFlow, DiskBackedSweepIsFullyCachedOnSecondRun) {
  EngineFixture f;
  const std::string dir = fresh_dir("sweep");
  const std::vector<std::string> specs{"evolution", "random", "standard"};

  std::vector<MethodResult> first;
  {
    ResultCache cache(dir);
    FlowEngine engine(f.nl, f.library, f.config(&cache));
    first = engine.run_methods(specs, 42);
    EXPECT_EQ(cache.hits(), 0u);
    EXPECT_EQ(cache.misses(), specs.size());
  }
  {
    ResultCache cache(dir);  // fresh process: entries come from disk
    FlowEngine engine(f.nl, f.library, f.config(&cache));
    const auto second = engine.run_methods(specs, 42);
    EXPECT_EQ(cache.hits(), specs.size());
    EXPECT_EQ(cache.misses(), 0u);
    ASSERT_EQ(second.size(), first.size());
    for (std::size_t i = 0; i < first.size(); ++i) {
      SCOPED_TRACE(specs[i]);
      expect_method_result_identical(first[i], second[i]);
    }
  }
}

TEST(ResultCacheFlow, TracedRunsBypassTheCache) {
  EngineFixture f;
  ResultCache cache;
  FlowEngine engine(f.nl, f.library, f.config(&cache));
  FlowEngine::RunOptions options;
  options.seed = 42;
  options.record_trace = true;
  const auto traced = engine.run_method("evolution", options);
  EXPECT_FALSE(traced.trace.empty());
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.hits() + cache.misses(), 0u);
}

TEST(ResultCacheFlow, ConfigChangeChangesEngineFingerprint) {
  EngineFixture f;
  FlowEngine a(f.nl, f.library, f.config());
  FlowEngine b(f.nl, f.library, f.config());
  EXPECT_EQ(a.context_fingerprint(), b.context_fingerprint());

  auto cfg = f.config();
  cfg.sensor.r_max_mv = 150.0;
  FlowEngine c(f.nl, f.library, cfg);
  EXPECT_NE(a.context_fingerprint(), c.context_fingerprint());
}

}  // namespace
}  // namespace iddq::core
