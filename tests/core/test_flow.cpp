#include "core/flow.hpp"

#include <gtest/gtest.h>

#include "core/start_partition.hpp"
#include "netlist/gen/iscas_profiles.hpp"
#include "netlist/gen/random_dag.hpp"
#include "support/rng.hpp"

namespace iddq::core {
namespace {

FlowConfig quick_config() {
  FlowConfig cfg;
  cfg.es.mu = 4;
  cfg.es.lambda = 4;
  cfg.es.chi = 1;
  cfg.es.max_generations = 40;
  cfg.es.stall_generations = 15;
  cfg.es.seed = 42;
  return cfg;
}

TEST(Flow, EndToEndOnMidSizeCircuit) {
  const auto nl = netlist::gen::make_random_dag(
      netlist::gen::DagProfile::basic("flow", 600, 18, 3));
  const auto library = lib::default_library();
  const auto result = run_flow(nl, library, quick_config());

  EXPECT_GE(result.plan.module_count, result.plan.k_min_leakage);
  EXPECT_TRUE(result.evolution.fitness.feasible());
  EXPECT_TRUE(result.evolution.partition.covers(nl));
  EXPECT_TRUE(result.standard.partition.covers(nl));
  EXPECT_GT(result.evolution.sensor_area, 0.0);
  EXPECT_GT(result.standard.sensor_area, 0.0);
  EXPECT_EQ(result.evolution.modules.size(), result.evolution.module_count);
}

TEST(Flow, StandardUsesEvolutionModuleSizes) {
  const auto nl = netlist::gen::make_random_dag(
      netlist::gen::DagProfile::basic("flow", 500, 16, 4));
  const auto library = lib::default_library();
  const auto result = run_flow(nl, library, quick_config());
  ASSERT_EQ(result.standard.module_count, result.evolution.module_count);
  std::vector<std::size_t> evo_sizes;
  std::vector<std::size_t> std_sizes;
  for (std::uint32_t m = 0; m < result.evolution.module_count; ++m) {
    evo_sizes.push_back(result.evolution.partition.module_size(m));
    std_sizes.push_back(result.standard.partition.module_size(m));
  }
  EXPECT_EQ(evo_sizes, std_sizes);
}

TEST(Flow, EvolutionNoWorseThanStandardOnObjective) {
  const auto nl = netlist::gen::make_iscas_like("c1908");
  const auto library = lib::default_library();
  auto cfg = quick_config();
  cfg.es.max_generations = 80;
  const auto result = run_flow(nl, library, cfg);
  EXPECT_FALSE(result.standard.fitness < result.evolution.fitness);
}

TEST(Flow, AreaOverheadMetric) {
  const auto nl = netlist::gen::make_random_dag(
      netlist::gen::DagProfile::basic("flow", 400, 14, 5));
  const auto library = lib::default_library();
  const auto result = run_flow(nl, library, quick_config());
  const double expected =
      (result.standard.sensor_area / result.evolution.sensor_area - 1.0) *
      100.0;
  EXPECT_DOUBLE_EQ(result.standard_area_overhead_pct(), expected);
}

TEST(Flow, RefineOptionDoesNotBreakFeasibility) {
  const auto nl = netlist::gen::make_random_dag(
      netlist::gen::DagProfile::basic("flow", 300, 12, 6));
  const auto library = lib::default_library();
  auto cfg = quick_config();
  cfg.refine_result = true;
  const auto result = run_flow(nl, library, cfg);
  EXPECT_TRUE(result.evolution.fitness.feasible());
  EXPECT_TRUE(result.evolution.partition.covers(nl));
}

TEST(Flow, EvaluateMethodReportsConsistentNumbers) {
  const auto nl = netlist::gen::make_random_dag(
      netlist::gen::DagProfile::basic("flow", 200, 10, 7));
  const auto library = lib::default_library();
  const FlowConfig cfg = quick_config();
  part::EvalContext ctx(nl, library, cfg.sensor, cfg.weights, cfg.rho);
  Rng rng(1);
  const auto p = make_start_partition(nl, 2, rng);
  const auto r = evaluate_method(ctx, "probe", p);
  EXPECT_EQ(r.method, "probe");
  EXPECT_EQ(r.module_count, 2u);
  EXPECT_DOUBLE_EQ(r.delay_overhead, r.costs.c2);
  EXPECT_DOUBLE_EQ(r.test_overhead, r.costs.c4);
  double area = 0.0;
  for (const auto& m : r.modules) area += m.area;
  EXPECT_NEAR(area, r.sensor_area, 1e-9 * area);
}

}  // namespace
}  // namespace iddq::core
