#include "core/evolution.hpp"

#include <gtest/gtest.h>

#include "core/start_partition.hpp"
#include "netlist/gen/c17.hpp"
#include "netlist/gen/iscas_profiles.hpp"
#include "netlist/gen/random_dag.hpp"
#include "support/error.hpp"

namespace iddq::core {
namespace {

struct Fixture {
  netlist::Netlist nl = netlist::gen::make_random_dag(
      netlist::gen::DagProfile::basic("evo", 200, 12, 7));
  lib::CellLibrary library = lib::default_library();
  part::EvalContext ctx{nl, library, elec::SensorSpec{},
                        part::CostWeights{}};

  EsParams quick_params() const {
    EsParams p;
    p.mu = 4;
    p.lambda = 4;
    p.chi = 1;
    p.max_generations = 30;
    p.stall_generations = 30;
    p.seed = 3;
    return p;
  }
};

TEST(Evolution, BoundaryGatesAreExactlyTheCut) {
  const auto nl = netlist::gen::make_c17();
  const auto library = lib::default_library();
  const part::EvalContext ctx(nl, library, elec::SensorSpec{},
                              part::CostWeights{});
  const auto p = part::Partition::from_groups(
      nl, std::vector<std::vector<netlist::GateId>>{
              {nl.at("10"), nl.at("16"), nl.at("22")},
              {nl.at("11"), nl.at("19"), nl.at("23")}});
  part::PartitionEvaluator eval(ctx, p);
  // Module 0: 10 -(22)- internal; 16 fed by 11 (module 1) -> boundary;
  // 22 fed by 16? both module 0... 22's fanins 10,16 internal, no external
  // fanout. 10: fanin inputs only, fanout 22 internal -> interior.
  const auto boundary0 = EvolutionEngine::boundary_gates(eval, 0);
  ASSERT_EQ(boundary0.size(), 1u);
  EXPECT_EQ(boundary0[0], nl.at("16"));
  // Module 1: 11 feeds 16 (module 0) -> boundary; 19 fed by 11 internal,
  // feeds 23 internal -> interior; 23 fed by 16 (module 0) -> boundary.
  const auto boundary1 = EvolutionEngine::boundary_gates(eval, 1);
  EXPECT_EQ(boundary1.size(), 2u);
}

TEST(Evolution, ImprovesOverStartPartitions) {
  Fixture f;
  Rng rng(1);
  std::vector<part::Partition> starts;
  for (int i = 0; i < 4; ++i)
    starts.push_back(make_start_partition(f.nl, 3, rng));
  part::PartitionEvaluator start_eval(f.ctx, starts[0]);
  const double start_cost = start_eval.fitness().cost;

  EvolutionEngine engine(f.ctx, f.quick_params());
  const auto result = engine.run(starts);
  EXPECT_TRUE(result.best_fitness.feasible());
  EXPECT_LT(result.best_fitness.cost, start_cost);
  EXPECT_GT(result.evaluations, 4u);
}

TEST(Evolution, DeterministicForSeed) {
  Fixture f;
  EvolutionEngine a(f.ctx, f.quick_params());
  EvolutionEngine b(f.ctx, f.quick_params());
  const auto ra = a.run_with_module_count(3);
  const auto rb = b.run_with_module_count(3);
  EXPECT_EQ(ra.best_fitness.cost, rb.best_fitness.cost);
  EXPECT_EQ(ra.best_partition, rb.best_partition);
  EXPECT_EQ(ra.evaluations, rb.evaluations);
}

TEST(Evolution, OnGenerationTicksLiveWithoutChangingTheRun) {
  Fixture f;
  EvolutionEngine plain(f.ctx, f.quick_params());
  const auto expected = plain.run_with_module_count(3);

  auto params = f.quick_params();
  std::size_t ticks = 0;
  std::size_t last_generation = 0;
  std::size_t last_evaluations = 0;
  params.on_generation = [&](const GenerationStats& g) {
    ++ticks;
    EXPECT_EQ(g.generation, last_generation + 1);  // every generation, in order
    EXPECT_GT(g.evaluations, last_evaluations);    // cumulative counter
    last_generation = g.generation;
    last_evaluations = g.evaluations;
  };
  EvolutionEngine observed(f.ctx, params);
  const auto result = observed.run_with_module_count(3);

  // The observer reported every generation and never perturbed the search.
  EXPECT_EQ(ticks, result.generations);
  EXPECT_EQ(last_evaluations, result.evaluations);
  EXPECT_EQ(result.best_partition, expected.best_partition);
  EXPECT_EQ(result.best_fitness.cost, expected.best_fitness.cost);
  EXPECT_EQ(result.evaluations, expected.evaluations);
  // The callback alone does not record a trace.
  EXPECT_TRUE(result.trace.empty());
}

TEST(Evolution, BestPartitionCoversCircuit) {
  Fixture f;
  EvolutionEngine engine(f.ctx, f.quick_params());
  const auto result = engine.run_with_module_count(3);
  EXPECT_TRUE(result.best_partition.covers(f.nl));
}

TEST(Evolution, ResultCostsMatchReEvaluation) {
  Fixture f;
  EvolutionEngine engine(f.ctx, f.quick_params());
  const auto result = engine.run_with_module_count(3);
  part::PartitionEvaluator check(f.ctx, result.best_partition);
  EXPECT_NEAR(check.fitness().cost, result.best_fitness.cost,
              1e-9 * result.best_fitness.cost);
}

TEST(Evolution, TraceIsMonotoneNonIncreasing) {
  Fixture f;
  auto params = f.quick_params();
  params.record_trace = true;
  EvolutionEngine engine(f.ctx, params);
  const auto result = engine.run_with_module_count(3);
  ASSERT_FALSE(result.trace.empty());
  for (std::size_t i = 1; i < result.trace.size(); ++i)
    EXPECT_LE(result.trace[i].best.cost, result.trace[i - 1].best.cost);
}

TEST(Evolution, StallStopsEarly) {
  Fixture f;
  auto params = f.quick_params();
  params.max_generations = 1000;
  params.stall_generations = 5;
  EvolutionEngine engine(f.ctx, params);
  const auto result = engine.run_with_module_count(3);
  EXPECT_LT(result.generations, 1000u);
}

TEST(Evolution, MonteCarloChildrenCanReduceModuleCount) {
  // With many small start modules and room to merge, the MC moves that
  // empty a module must sometimes fire; K at the optimum is <= start K.
  Fixture f;
  auto params = f.quick_params();
  params.max_generations = 60;
  EvolutionEngine engine(f.ctx, params);
  const auto result = engine.run_with_module_count(6);
  EXPECT_LE(result.best_partition.module_count(), 6u);
  EXPECT_GE(result.best_partition.module_count(), 1u);
}

TEST(Evolution, InfeasibleStartRecovers) {
  // Start with K=1 on a circuit whose leakage demands several modules: the
  // lexicographic selection must drive the violation to zero...  K can only
  // shrink through MC deletion, so instead start with many modules but a
  // deliberately terrible (random scatter) assignment.
  const auto nl = netlist::gen::make_iscas_like("c1908");
  const auto library = lib::default_library();
  const part::EvalContext ctx(nl, library, elec::SensorSpec{},
                              part::CostWeights{});
  Rng rng(17);
  // Random scatter over 2 modules (feasible count for c1908).
  std::vector<std::vector<netlist::GateId>> groups(2);
  for (const auto g : nl.logic_gates()) groups[rng.index(2)].push_back(g);
  EsParams params;
  params.mu = 4;
  params.lambda = 4;
  params.chi = 1;
  params.max_generations = 25;
  params.stall_generations = 25;
  params.seed = 5;
  EvolutionEngine engine(ctx, params);
  const std::vector<part::Partition> starts = {
      part::Partition::from_groups(nl, groups)};
  const auto result = engine.run(starts);
  EXPECT_TRUE(result.best_fitness.feasible());
}

TEST(Evolution, ParameterValidation) {
  Fixture f;
  EsParams params = f.quick_params();
  params.mu = 0;
  EXPECT_THROW((EvolutionEngine(f.ctx, params)), Error);
  params = f.quick_params();
  params.lambda = 0;
  params.chi = 0;
  EXPECT_THROW((EvolutionEngine(f.ctx, params)), Error);
  params = f.quick_params();
  params.m0 = 100;
  params.m_max = 50;
  EXPECT_THROW((EvolutionEngine(f.ctx, params)), Error);
}

TEST(Evolution, RunRequiresStartPartitions) {
  Fixture f;
  EvolutionEngine engine(f.ctx, f.quick_params());
  EXPECT_THROW((void)engine.run({}), Error);
}

}  // namespace
}  // namespace iddq::core
