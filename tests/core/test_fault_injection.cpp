// Fault-injection layer: one client stalls mid-sweep (connected, but never
// draining its event stream) while healthy clients share the same
// JobService. This pins the PR-4 limitation fix end to end: the stalled
// session is disconnected by the backpressure policy and its jobs are
// cancelled, healthy sessions complete within 1.2x of their no-stall
// wall-clock, and every delivered row stays byte-identical to direct
// FlowEngine::run_methods output.
#include <gtest/gtest.h>

#include <bit>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/flow_engine.hpp"
#include "core/job_protocol.hpp"
#include "netlist/gen/random_dag.hpp"
#include "support/json.hpp"
#include "support/rng.hpp"
#include "support/transport.hpp"

namespace iddq::core {
namespace {

netlist::Netlist synthetic_circuit(const std::string& spec) {
  const std::size_t gates = 260 + 60 * (spec.back() - 'a');
  return netlist::gen::make_random_dag(
      netlist::gen::DagProfile::basic(spec, gates, 10, 5));
}

FlowEngineConfig stress_config() {
  // Sized so a healthy sweep takes a meaningful fraction of a second:
  // long enough that the 1.2x wall-clock bound below has measurement
  // headroom over scheduler noise (and that a stalled session's jobs are
  // still running when the disconnect policy cancels them), short enough
  // that the whole test stays a few seconds.
  FlowEngineConfig config;
  config.optimizers.es.mu = 4;
  config.optimizers.es.lambda = 6;
  config.optimizers.es.chi = 1;
  config.optimizers.es.max_generations = 4000;
  config.optimizers.es.stall_generations = 4000;
  config.optimizers.random_samples = 1000;
  return config;
}

std::unique_ptr<JobService> make_service(const lib::CellLibrary& library,
                                         FlowEngineConfig config) {
  JobServiceConfig service_config;
  service_config.workers = 2;
  service_config.flow = std::move(config);
  auto service =
      std::make_unique<JobService>(library, std::move(service_config));
  service->set_circuit_loader(synthetic_circuit);
  return service;
}

/// A connected client that submitted a sweep and then froze: reads block
/// (it sends nothing further, but the connection stays up) and writes
/// block (it never drains its receive side). shutdown_read/shutdown_write
/// — the half-shutdowns the disconnect policy and writer teardown use —
/// are the only ways out.
class StalledClientChannel final : public support::LineChannel {
 public:
  explicit StalledClientChannel(std::vector<std::string> script)
      : script_(std::move(script)) {}

  bool read_line(std::string& out) override {
    std::unique_lock<std::mutex> lock(mutex_);
    if (read_shut_) return false;
    if (next_ < script_.size()) {
      out = script_[next_++];
      return true;
    }
    cv_.wait(lock, [this] { return read_shut_; });
    return false;
  }

  bool write_line(std::string_view) override {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return write_shut_; });
    return false;
  }

  void shutdown_read() override {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      read_shut_ = true;
    }
    cv_.notify_all();
  }

  void shutdown_write() override {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      write_shut_ = true;
    }
    cv_.notify_all();
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<std::string> script_;
  std::size_t next_ = 0;
  bool read_shut_ = false;
  bool write_shut_ = false;
};

constexpr const char* kHealthySubmit =
    R"({"op":"submit","id":"h","circuits":["cd"],)"
    R"("methods":["evolution","standard"],"seed":42})";

/// One healthy pipe-mode client: submits kHealthySubmit, drains to EOF.
/// Returns its wall-clock seconds and its raw output lines.
struct HealthyRun {
  double seconds = 0.0;
  std::vector<std::string> lines;
};

HealthyRun run_healthy_session(JobService& service,
                               JobProtocolOptions options) {
  std::istringstream in(std::string(kHealthySubmit) + "\n");
  std::ostringstream out;
  support::StreamChannel channel(in, out);
  const auto start = std::chrono::steady_clock::now();
  JobProtocolSession session(service, channel, options);
  (void)session.run();
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;

  HealthyRun run;
  run.seconds = elapsed.count();
  std::istringstream lines(out.str());
  std::string line;
  while (std::getline(lines, line)) run.lines.push_back(line);
  return run;
}

/// Two healthy clients concurrently on one fresh service; returns the
/// slower client's wall-clock and both outputs.
std::pair<double, std::vector<HealthyRun>> run_healthy_pair(
    const lib::CellLibrary& library, JobProtocolOptions options,
    support::LineChannel* stalled_channel = nullptr,
    JobProtocolOptions stalled_options = {}) {
  const auto service = make_service(library, stress_config());
  std::vector<HealthyRun> runs(2);
  std::thread stalled_thread;
  if (stalled_channel != nullptr) {
    stalled_thread = std::thread([&] {
      JobProtocolSession session(*service, *stalled_channel,
                                 stalled_options);
      (void)session.run();
    });
  }
  std::thread first(
      [&] { runs[0] = run_healthy_session(*service, options); });
  std::thread second(
      [&] { runs[1] = run_healthy_session(*service, options); });
  first.join();
  second.join();
  if (stalled_thread.joinable()) stalled_thread.join();
  return {std::max(runs[0].seconds, runs[1].seconds), std::move(runs)};
}

void expect_bits_eq(double got, double want, const char* field) {
  EXPECT_EQ(std::bit_cast<std::uint64_t>(got),
            std::bit_cast<std::uint64_t>(want))
      << field << ": " << got << " vs " << want;
}

/// Every row of a healthy client, bit-compared against a direct
/// FlowEngine::run_methods call at the shard-derived seed.
void expect_rows_match_engine(const std::vector<std::string>& lines,
                              const lib::CellLibrary& library) {
  const netlist::Netlist nl = synthetic_circuit("cd");
  FlowEngine engine(nl, library, stress_config());
  const std::vector<std::string> methods{"evolution", "standard"};
  const auto expected = engine.run_methods(methods, Rng::mix_seed(42, 0));

  std::vector<json::JsonValue> rows;
  for (const auto& line : lines) {
    auto event = json::JsonValue::parse(line);
    ASSERT_TRUE(event.has_value()) << "unparseable event: " << line;
    if (event->get_string("event") == "row") rows.push_back(std::move(*event));
  }
  ASSERT_EQ(rows.size(), expected.size());
  for (std::size_t m = 0; m < expected.size(); ++m) {
    SCOPED_TRACE(expected[m].method);
    EXPECT_EQ(rows[m].get_string("method"), expected[m].method);
    EXPECT_EQ(rows[m].get_u64("modules"), expected[m].module_count);
    expect_bits_eq(rows[m].get_double("cost"), expected[m].fitness.cost,
                   "cost");
    expect_bits_eq(rows[m].get_double("violation"),
                   expected[m].fitness.violation, "violation");
    expect_bits_eq(rows[m].get_double("sensor_area"),
                   expected[m].sensor_area, "sensor_area");
    expect_bits_eq(rows[m].get_double("delay_overhead"),
                   expected[m].delay_overhead, "delay_overhead");
    EXPECT_EQ(rows[m].get_u64("evaluations"), expected[m].evaluations);
  }
}

TEST(FaultInjection, StalledReaderDoesNotSlowHealthySessions) {
  const auto library = lib::default_library();
  SessionTrafficStats traffic;
  JobProtocolOptions healthy_options;
  healthy_options.session_queue = 1024;
  healthy_options.traffic = &traffic;

  // Untimed warmup so first-touch costs (page cache, lazy init) don't
  // land inside the baseline measurement.
  {
    const auto service = make_service(library, stress_config());
    (void)run_healthy_session(*service, healthy_options);
  }

  // Baseline: the same two healthy concurrent clients, no stall.
  const auto [baseline, baseline_runs] =
      run_healthy_pair(library, healthy_options);
  for (const auto& run : baseline_runs)
    expect_rows_match_engine(run.lines, library);

  // Fault run: a third client submits a sweep and freezes with a tiny
  // event-queue bound. Its must-deliver events overflow almost at once,
  // the policy disconnects it and cancels its jobs, and the healthy
  // clients keep both workers.
  StalledClientChannel stalled(
      {R"({"op":"submit","id":"slow","circuits":["ca","cb"],)"
       R"("methods":["evolution","standard"],"seed":7})"});
  JobProtocolOptions stalled_options;
  stalled_options.session_queue = 4;
  stalled_options.traffic = &traffic;

  const auto [with_stall, stalled_runs] = run_healthy_pair(
      library, healthy_options, &stalled, stalled_options);
  for (const auto& run : stalled_runs)
    expect_rows_match_engine(run.lines, library);

  // The stalled session was handled per policy, not left blocking.
  EXPECT_EQ(traffic.overflow_disconnects.load(), 1u);

  // The acceptance bound: healthy sweeps within 1.2x of their no-stall
  // wall-clock. Pre-fix, the stalled client's blocked sink held a shared
  // worker hostage and this ratio diverged (or the test hung outright).
  EXPECT_LE(with_stall, 1.2 * baseline)
      << "healthy sessions slowed by a stalled reader: " << with_stall
      << "s vs baseline " << baseline << "s";
}

TEST(FaultInjection, StalledSessionJobsAreCancelled) {
  const auto library = lib::default_library();
  const auto service = make_service(library, stress_config());
  SessionTrafficStats traffic;

  StalledClientChannel stalled(
      {R"({"op":"submit","id":"slow","circuits":["ca","cb","cc"],)"
       R"("methods":["evolution","standard"],"seed":7})"});
  JobProtocolOptions options;
  options.session_queue = 2;
  options.traffic = &traffic;

  const auto start = std::chrono::steady_clock::now();
  JobProtocolSession session(*service, stalled, options);
  EXPECT_FALSE(session.run());
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;

  // run() returned at all (the stalled writes never unblock on their
  // own), the policy fired exactly once, and every job the session had in
  // flight reached a terminal state — cancelled or already done — rather
  // than holding a worker. Depending on when the overflow lands, later
  // shards may never reach the queue at all (the submit loop bails on a
  // disconnected session), so pin submitted >= 1, not == 3.
  EXPECT_EQ(traffic.overflow_disconnects.load(), 1u);
  EXPECT_GE(service->submitted(), 1u);
  EXPECT_LE(service->submitted(), 3u);
  EXPECT_EQ(service->completed() + service->failed() + service->cancelled(),
            service->submitted());
  EXPECT_GE(service->cancelled(), 1u);
  // Teardown is bounded (flush + writer grace), not a drain of the full
  // sweep through a dead connection.
  EXPECT_LT(elapsed.count(), 30.0);
}

}  // namespace
}  // namespace iddq::core
