#include "core/standard_partition.hpp"

#include <gtest/gtest.h>

#include "netlist/gen/c17.hpp"
#include "netlist/gen/iscas_profiles.hpp"
#include "netlist/levelize.hpp"
#include "support/error.hpp"

namespace iddq::core {
namespace {

TEST(StandardPartition, ProducesRequestedSizes) {
  const auto nl = netlist::gen::make_iscas_like("c1908");
  const netlist::DistanceOracle oracle(nl, 4);
  const std::vector<std::size_t> sizes = {400, 300, 180};
  const auto p = standard_partition(nl, oracle, sizes);
  ASSERT_EQ(p.module_count(), 3u);
  for (std::size_t m = 0; m < sizes.size(); ++m)
    EXPECT_EQ(p.module_size(static_cast<std::uint32_t>(m)), sizes[m]);
  EXPECT_TRUE(p.covers(nl));
}

TEST(StandardPartition, SeedIsNearPrimaryInput) {
  const auto nl = netlist::gen::make_c17();
  const netlist::DistanceOracle oracle(nl, 4);
  const std::vector<std::size_t> sizes = {3, 3};
  const auto p = standard_partition(nl, oracle, sizes);
  const auto lv = netlist::levelize(nl);
  // The first gate clustered into module 0 must be at depth 1.
  std::size_t min_depth = 100;
  for (const auto g : p.module(0)) min_depth = std::min(min_depth, lv.depth[g]);
  EXPECT_EQ(min_depth, 1u);
}

TEST(StandardPartition, ModulesAreWellConnected) {
  // The paper: "modules such that their gates are connected most closely".
  // Intra-module edge fraction must far exceed a random scatter's.
  const auto nl = netlist::gen::make_iscas_like("c2670");
  const netlist::DistanceOracle oracle(nl, 4);
  const std::size_t n = nl.logic_gate_count();
  const std::vector<std::size_t> sizes = {n / 3, n / 3, n - 2 * (n / 3)};
  const auto p = standard_partition(nl, oracle, sizes);
  std::size_t intra = 0;
  std::size_t total = 0;
  for (const auto g : nl.logic_gates()) {
    for (const auto f : nl.gate(g).fanouts) {
      ++total;
      if (p.module_of(g) == p.module_of(f)) ++intra;
    }
  }
  EXPECT_GT(static_cast<double>(intra) / static_cast<double>(total), 0.55);
}

TEST(StandardPartition, DeterministicByConstruction) {
  const auto nl = netlist::gen::make_iscas_like("c1908");
  const netlist::DistanceOracle oracle(nl, 4);
  const std::vector<std::size_t> sizes = {440, 440};
  const auto a = standard_partition(nl, oracle, sizes);
  const auto b = standard_partition(nl, oracle, sizes);
  EXPECT_EQ(a, b);
}

TEST(StandardPartition, RejectsWrongTotal) {
  const auto nl = netlist::gen::make_c17();
  const netlist::DistanceOracle oracle(nl, 4);
  EXPECT_THROW((void)standard_partition(nl, oracle,
                                        std::vector<std::size_t>{3, 2}),
               Error);
}

TEST(StandardPartition, RejectsZeroSizeModule) {
  const auto nl = netlist::gen::make_c17();
  const netlist::DistanceOracle oracle(nl, 4);
  EXPECT_THROW((void)standard_partition(nl, oracle,
                                        std::vector<std::size_t>{6, 0}),
               Error);
}

TEST(StandardPartition, SingleModuleTakesEverything) {
  const auto nl = netlist::gen::make_c17();
  const netlist::DistanceOracle oracle(nl, 4);
  const auto p =
      standard_partition(nl, oracle, std::vector<std::size_t>{6});
  EXPECT_EQ(p.module_count(), 1u);
  EXPECT_EQ(p.module_size(0), 6u);
}

}  // namespace
}  // namespace iddq::core
