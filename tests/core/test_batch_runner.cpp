#include "core/batch_runner.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "netlist/gen/random_dag.hpp"
#include "support/error.hpp"

namespace iddq::core {
namespace {

// Small synthetic circuits keyed by spec name keep the determinism test
// fast; the default loader (builtins + .bench files) is covered separately.
netlist::Netlist synthetic_circuit(const std::string& spec) {
  if (spec == "bad") throw Error("synthetic loader: bad circuit");
  const std::size_t gates = 120 + 40 * (spec.back() - 'a');
  return netlist::gen::make_random_dag(
      netlist::gen::DagProfile::basic(spec, gates, 10, 5));
}

FlowEngineConfig quick_config() {
  FlowEngineConfig config;
  config.optimizers.es.mu = 3;
  config.optimizers.es.lambda = 3;
  config.optimizers.es.chi = 1;
  config.optimizers.es.max_generations = 10;
  config.optimizers.es.stall_generations = 5;
  config.optimizers.random_samples = 50;
  return config;
}

BatchRunner make_runner(const lib::CellLibrary& library) {
  BatchRunner runner(library, quick_config());
  runner.set_circuit_loader(synthetic_circuit);
  return runner;
}

TEST(BatchRunner, SameResultsForAnyJobCount) {
  const auto library = lib::default_library();
  const auto runner = make_runner(library);
  const std::vector<std::string> circuits{"ca", "cb", "cc", "cd", "ce"};
  const std::vector<std::string> methods{"evolution", "random", "standard"};

  const auto serial = runner.run(circuits, methods, 42, 1);
  const auto parallel = runner.run(circuits, methods, 42, 4);

  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE(circuits[i]);
    ASSERT_TRUE(serial[i].ok());
    ASSERT_TRUE(parallel[i].ok());
    EXPECT_EQ(serial[i].circuit, parallel[i].circuit);
    EXPECT_EQ(serial[i].plan.module_count, parallel[i].plan.module_count);
    ASSERT_EQ(serial[i].methods.size(), methods.size());
    ASSERT_EQ(parallel[i].methods.size(), methods.size());
    for (std::size_t m = 0; m < methods.size(); ++m) {
      SCOPED_TRACE(methods[m]);
      const auto& a = serial[i].methods[m];
      const auto& b = parallel[i].methods[m];
      EXPECT_EQ(a.method, b.method);
      EXPECT_EQ(a.partition, b.partition);
      EXPECT_EQ(a.fitness.violation, b.fitness.violation);
      EXPECT_EQ(a.fitness.cost, b.fitness.cost);
      EXPECT_EQ(a.evaluations, b.evaluations);
    }
  }
}

TEST(BatchRunner, ResultsAreInTaskOrderWithDerivedSeeds) {
  const auto library = lib::default_library();
  const auto runner = make_runner(library);
  const std::vector<std::string> circuits{"ca", "cb"};
  const std::vector<std::string> methods{"evolution"};

  const auto items = runner.run(circuits, methods, 42, 2);
  ASSERT_EQ(items.size(), 2u);
  EXPECT_EQ(items[0].circuit, "ca");
  EXPECT_EQ(items[1].circuit, "cb");
  // Distinct tasks draw distinct derived seeds: identical circuits would
  // still explore independently. Here circuits differ, so just pin that
  // both produced a real result.
  for (const auto& item : items) {
    ASSERT_TRUE(item.ok());
    EXPECT_GT(item.methods.front().evaluations, 0u);
  }
}

TEST(BatchRunner, TaskFailureIsIsolated) {
  const auto library = lib::default_library();
  const auto runner = make_runner(library);
  const std::vector<std::string> circuits{"ca", "bad", "cb"};
  const std::vector<std::string> methods{"standard"};

  const auto items = runner.run(circuits, methods, 1, 2);
  ASSERT_EQ(items.size(), 3u);
  EXPECT_TRUE(items[0].ok());
  EXPECT_FALSE(items[1].ok());
  EXPECT_NE(items[1].error.find("bad circuit"), std::string::npos);
  EXPECT_TRUE(items[2].ok());
}

TEST(BatchRunner, UnknownMethodIsReportedPerTask) {
  const auto library = lib::default_library();
  const auto runner = make_runner(library);
  const std::vector<std::string> circuits{"ca"};
  const std::vector<std::string> methods{"no-such-method"};

  const auto items = runner.run(circuits, methods, 1, 1);
  ASSERT_EQ(items.size(), 1u);
  EXPECT_FALSE(items[0].ok());
  EXPECT_NE(items[0].error.find("unknown optimizer"), std::string::npos);
}

TEST(BatchRunner, ZeroJobsRunsInline) {
  const auto library = lib::default_library();
  const auto runner = make_runner(library);
  const std::vector<std::string> circuits{"ca"};
  const std::vector<std::string> methods{"standard"};
  const auto items = runner.run(circuits, methods, 1, 0);
  ASSERT_EQ(items.size(), 1u);
  EXPECT_TRUE(items[0].ok());
}

}  // namespace
}  // namespace iddq::core
