#include "core/force_directed.hpp"

#include <gtest/gtest.h>

#include "core/optimizer_registry.hpp"
#include "netlist/gen/c17.hpp"
#include "netlist/gen/random_dag.hpp"
#include "support/error.hpp"

namespace iddq::core {
namespace {

netlist::Netlist test_dag() {
  return netlist::gen::make_random_dag(
      netlist::gen::DagProfile::basic("force", 160, 10, 4));
}

TEST(ForceDirected, ProducesValidBalancedPartition) {
  const auto nl = test_dag();
  const auto partition = force_directed_partition(nl, 4);
  EXPECT_EQ(partition.module_count(), 4u);
  EXPECT_TRUE(partition.covers(nl));
  const std::size_t n = nl.logic_gate_count();
  for (std::uint32_t m = 0; m < 4; ++m) {
    EXPECT_GE(partition.module_size(m), n / 4);
    EXPECT_LE(partition.module_size(m), n / 4 + 1);
  }
}

TEST(ForceDirected, FullyDeterministic) {
  const auto nl = test_dag();
  EXPECT_EQ(force_directed_partition(nl, 3), force_directed_partition(nl, 3));
}

TEST(ForceDirected, GroupsConnectedGates) {
  // On c17 with 2 modules, the relaxation should keep at least one wired
  // pair together — a sanity check that positions reflect connectivity.
  const auto nl = netlist::gen::make_c17();
  const auto partition = force_directed_partition(nl, 2);
  std::size_t internal_edges = 0;
  for (const netlist::GateId g : nl.logic_gates())
    for (const netlist::GateId f : nl.gate(g).fanins)
      if (netlist::is_logic(nl.gate(f).kind) &&
          partition.module_of(f) == partition.module_of(g))
        ++internal_edges;
  EXPECT_GT(internal_edges, 0u);
}

TEST(ForceDirected, RejectsBadModuleCount) {
  const auto nl = netlist::gen::make_c17();
  EXPECT_THROW((void)force_directed_partition(nl, 0), Error);
  EXPECT_THROW(
      (void)force_directed_partition(nl, nl.logic_gate_count() + 1), Error);
}

TEST(ForceDirected, RegistryAdapterIsSeedIndependent) {
  const auto nl = test_dag();
  const auto library = lib::default_library();
  part::EvalContext ctx{nl, library, elec::SensorSpec{}, part::CostWeights{}};

  const auto optimizer = OptimizerRegistry::global().make("force");
  OptimizerRequest request;
  request.ctx = &ctx;
  request.module_count = 3;
  request.seed = 1;
  const auto a = optimizer->run(request);
  request.seed = 99;
  const auto b = optimizer->run(request);
  EXPECT_EQ(a.partition, b.partition);
  EXPECT_EQ(a.fitness.cost, b.fitness.cost);
  EXPECT_EQ(a.method, "force");
  EXPECT_EQ(a.partition.module_count(), 3u);
}

TEST(ForceDirected, ComposesAsSeedingStage) {
  const auto nl = test_dag();
  const auto library = lib::default_library();
  part::EvalContext ctx{nl, library, elec::SensorSpec{}, part::CostWeights{}};

  const auto seed_only = OptimizerRegistry::global().make("force");
  const auto polished = OptimizerRegistry::global().make("force+greedy");
  OptimizerRequest request;
  request.ctx = &ctx;
  request.module_count = 3;
  const auto raw = seed_only->run(request);
  const auto refined = polished->run(request);
  // The pipeline returns the best stage result (lexicographic fitness),
  // so the polish stage cannot lose.
  EXPECT_FALSE(raw.fitness < refined.fitness);
  EXPECT_EQ(refined.method, "force+greedy");
}

}  // namespace
}  // namespace iddq::core
