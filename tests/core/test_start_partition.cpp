#include "core/start_partition.hpp"

#include <gtest/gtest.h>

#include "netlist/gen/c17.hpp"
#include "netlist/gen/iscas_profiles.hpp"
#include "netlist/gen/random_dag.hpp"
#include "support/error.hpp"

namespace iddq::core {
namespace {

TEST(StartPartition, CoversWithRequestedModuleCount) {
  const auto nl = netlist::gen::make_random_dag(
      netlist::gen::DagProfile::basic("sp", 250, 15, 1));
  Rng rng(1);
  for (const std::size_t k : {1u, 2u, 5u, 10u}) {
    const auto p = make_start_partition(nl, k, rng);
    EXPECT_EQ(p.module_count(), k);
    EXPECT_TRUE(p.covers(nl));
  }
}

TEST(StartPartition, ModuleSizesAreBalanced) {
  const auto nl = netlist::gen::make_random_dag(
      netlist::gen::DagProfile::basic("sp", 300, 15, 2));
  Rng rng(3);
  const auto p = make_start_partition(nl, 4, rng);
  const std::size_t target = (300 + 3) / 4;
  for (std::uint32_t m = 0; m < 4; ++m) {
    EXPECT_GE(p.module_size(m), 1u);
    EXPECT_LE(p.module_size(m), target);
  }
}

TEST(StartPartition, DifferentSeedsGiveDifferentPartitions) {
  const auto nl = netlist::gen::make_random_dag(
      netlist::gen::DagProfile::basic("sp", 200, 12, 5));
  Rng a(10);
  Rng b(20);
  const auto pa = make_start_partition(nl, 4, a);
  const auto pb = make_start_partition(nl, 4, b);
  bool different = false;
  for (const auto g : nl.logic_gates())
    if (pa.module_of(g) != pb.module_of(g)) {
      different = true;
      break;
    }
  EXPECT_TRUE(different);
}

TEST(StartPartition, SameSeedReproduces) {
  const auto nl = netlist::gen::make_random_dag(
      netlist::gen::DagProfile::basic("sp", 200, 12, 5));
  Rng a(10);
  Rng b(10);
  EXPECT_EQ(make_start_partition(nl, 4, a), make_start_partition(nl, 4, b));
}

TEST(StartPartition, ChainsFollowConnectivity) {
  // Chain clustering should produce modules far more connected than a
  // random scatter: compare average intra-module adjacency.
  const auto nl = netlist::gen::make_iscas_like("c1908");
  Rng rng(7);
  const auto p = make_start_partition(nl, 4, rng);
  std::size_t intra = 0;
  std::size_t total = 0;
  for (const auto g : nl.logic_gates()) {
    for (const auto f : nl.gate(g).fanouts) {
      ++total;
      if (p.module_of(g) == p.module_of(f)) ++intra;
    }
  }
  // A 4-way random scatter keeps ~25% of edges internal; chains keep far
  // more.
  EXPECT_GT(static_cast<double>(intra) / static_cast<double>(total), 0.5);
}

TEST(StartPartition, SingleGatePerModuleExtreme) {
  const auto nl = netlist::gen::make_c17();
  Rng rng(1);
  const auto p = make_start_partition(nl, 6, rng);
  EXPECT_EQ(p.module_count(), 6u);
  for (std::uint32_t m = 0; m < 6; ++m) EXPECT_EQ(p.module_size(m), 1u);
}

TEST(StartPartition, RejectsImpossibleCounts) {
  const auto nl = netlist::gen::make_c17();
  Rng rng(1);
  EXPECT_THROW((void)make_start_partition(nl, 0, rng), Error);
  EXPECT_THROW((void)make_start_partition(nl, 7, rng), Error);
}

}  // namespace
}  // namespace iddq::core
