#include "core/size_planner.hpp"

#include <gtest/gtest.h>

#include "netlist/gen/c17.hpp"
#include "netlist/gen/iscas_profiles.hpp"
#include "support/error.hpp"

namespace iddq::core {
namespace {

part::EvalContext make_ctx(const netlist::Netlist& nl,
                           const lib::CellLibrary& library) {
  return part::EvalContext(nl, library, elec::SensorSpec{},
                           part::CostWeights{});
}

TEST(SizePlanner, TinyCircuitNeedsOneModule) {
  const auto nl = netlist::gen::make_c17();
  const auto library = lib::default_library();
  const auto ctx = make_ctx(nl, library);
  const auto plan = plan_module_size(ctx);
  EXPECT_EQ(plan.k_min_leakage, 1u);
  EXPECT_EQ(plan.module_count, 1u);
  EXPECT_EQ(plan.target_module_size, 6u);
}

TEST(SizePlanner, LeakageBoundScalesWithCircuitSize) {
  const auto library = lib::default_library();
  const auto small = netlist::gen::make_iscas_like("c1908");
  const auto large = netlist::gen::make_iscas_like("c7552");
  const auto plan_small = plan_module_size(make_ctx(small, library));
  const auto plan_large = plan_module_size(make_ctx(large, library));
  EXPECT_GT(plan_large.k_min_leakage, plan_small.k_min_leakage);
  EXPECT_GT(plan_large.total_leakage_ua, plan_small.total_leakage_ua);
}

TEST(SizePlanner, PaperModuleCountsReproduced) {
  // Table 1 reports 2/3/4/6/5/6 modules; the reproduction's planner lands
  // within one module of the paper on every circuit (see EXPERIMENTS.md).
  const auto library = lib::default_library();
  const struct {
    const char* name;
    std::size_t paper_k;
  } rows[] = {{"c1908", 2}, {"c2670", 3}, {"c3540", 4},
              {"c5315", 6}, {"c6288", 5}, {"c7552", 6}};
  for (const auto& row : rows) {
    const auto nl = netlist::gen::make_iscas_like(row.name);
    const auto plan = plan_module_size(make_ctx(nl, library));
    EXPECT_NEAR(static_cast<double>(plan.module_count),
                static_cast<double>(row.paper_k), 1.0)
        << row.name;
  }
}

TEST(SizePlanner, ModuleCountRespectsLeakageBound) {
  const auto library = lib::default_library();
  const auto nl = netlist::gen::make_iscas_like("c3540");
  const auto ctx = make_ctx(nl, library);
  const auto plan = plan_module_size(ctx);
  EXPECT_GE(plan.module_count, plan.k_min_leakage);
  // Average module leakage under the derated cap.
  const double avg_leak =
      plan.total_leakage_ua / static_cast<double>(plan.module_count);
  EXPECT_LE(avg_leak, ctx.leak_cap_ua);
}

TEST(SizePlanner, TighterMarginRaisesModuleCount) {
  const auto library = lib::default_library();
  const auto nl = netlist::gen::make_iscas_like("c5315");
  const auto ctx = make_ctx(nl, library);
  const auto loose = plan_module_size(ctx, 1.0);
  const auto tight = plan_module_size(ctx, 0.5);
  EXPECT_GE(tight.module_count, loose.module_count);
}

TEST(SizePlanner, TargetSizeCoversAllGates) {
  const auto library = lib::default_library();
  const auto nl = netlist::gen::make_iscas_like("c2670");
  const auto plan = plan_module_size(make_ctx(nl, library));
  EXPECT_GE(plan.target_module_size * plan.module_count,
            nl.logic_gate_count());
}

TEST(SizePlanner, RejectsBadMargin) {
  const auto nl = netlist::gen::make_c17();
  const auto library = lib::default_library();
  const auto ctx = make_ctx(nl, library);
  EXPECT_THROW((void)plan_module_size(ctx, 0.0), Error);
  EXPECT_THROW((void)plan_module_size(ctx, 1.5), Error);
}

}  // namespace
}  // namespace iddq::core
