// Adapter-vs-direct equivalence: at the same seed and budget, every
// registry adapter must reproduce the exact result (partition, fitness,
// evaluation count) of the pre-refactor direct entry point it wraps.
#include <gtest/gtest.h>

#include <vector>

#include "core/annealing.hpp"
#include "core/evolution.hpp"
#include "core/flow.hpp"
#include "core/optimizer_registry.hpp"
#include "core/random_search.hpp"
#include "core/refiner.hpp"
#include "core/standard_partition.hpp"
#include "core/start_partition.hpp"
#include "netlist/gen/random_dag.hpp"
#include "support/rng.hpp"

namespace iddq::core {
namespace {

struct Fixture {
  netlist::Netlist nl = netlist::gen::make_random_dag(
      netlist::gen::DagProfile::basic("equiv", 220, 12, 9));
  lib::CellLibrary library = lib::default_library();
  part::EvalContext ctx{nl, library, elec::SensorSpec{},
                        part::CostWeights{}};
  static constexpr std::size_t kModules = 3;
  static constexpr std::uint64_t kSeed = 7;

  part::Partition start() const {
    Rng rng(2);
    return make_start_partition(nl, kModules, rng);
  }

  OptimizerRequest request() const {
    OptimizerRequest req;
    req.ctx = &ctx;
    req.module_count = kModules;
    req.seed = kSeed;
    return req;
  }
};

void expect_same(const OptimizerOutcome& adapter, const part::Partition& p,
                 const part::Fitness& f, std::size_t evaluations) {
  EXPECT_EQ(adapter.partition, p);
  EXPECT_EQ(adapter.fitness.violation, f.violation);
  EXPECT_EQ(adapter.fitness.cost, f.cost);
  EXPECT_EQ(adapter.evaluations, evaluations);
}

TEST(OptimizerEquivalence, Evolution) {
  Fixture f;
  EsParams params;
  params.mu = 4;
  params.lambda = 4;
  params.chi = 1;
  params.max_generations = 25;
  params.stall_generations = 10;
  params.seed = Fixture::kSeed;
  EvolutionEngine engine(f.ctx, params);
  const EsResult direct = engine.run_with_module_count(Fixture::kModules);

  OptimizerConfig cfg;
  cfg.es = params;
  cfg.es.seed = 999;  // adapter must take the seed from the request
  const auto adapter =
      OptimizerRegistry::global().make("evolution", cfg)->run(f.request());
  expect_same(adapter, direct.best_partition, direct.best_fitness,
              direct.evaluations);
  EXPECT_EQ(adapter.iterations, direct.generations);
}

TEST(OptimizerEquivalence, Annealing) {
  Fixture f;
  SaParams params;
  params.steps = 1500;
  params.seed = Fixture::kSeed;
  const SaResult direct = simulated_annealing(f.ctx, f.start(), params);

  OptimizerConfig cfg;
  cfg.sa = params;
  cfg.sa.seed = 999;
  auto req = f.request();
  req.start = f.start();
  const auto adapter =
      OptimizerRegistry::global().make("annealing", cfg)->run(req);
  expect_same(adapter, direct.best_partition, direct.best_fitness,
              direct.evaluations);
}

TEST(OptimizerEquivalence, AnnealingBudgetOverridesSteps) {
  Fixture f;
  SaParams params;
  params.steps = 600;
  params.seed = Fixture::kSeed;
  const SaResult direct = simulated_annealing(f.ctx, f.start(), params);

  OptimizerConfig cfg;
  cfg.sa = params;
  cfg.sa.steps = 123456;  // must be overridden by the request budget
  auto req = f.request();
  req.start = f.start();
  req.max_evaluations = 600;
  const auto adapter =
      OptimizerRegistry::global().make("annealing", cfg)->run(req);
  expect_same(adapter, direct.best_partition, direct.best_fitness,
              direct.evaluations);
}

TEST(OptimizerEquivalence, RandomSearch) {
  Fixture f;
  const RandomSearchResult direct =
      random_search(f.ctx, Fixture::kModules, 300, Fixture::kSeed);

  OptimizerConfig cfg;
  cfg.random_samples = 300;
  const auto adapter =
      OptimizerRegistry::global().make("random", cfg)->run(f.request());
  expect_same(adapter, direct.best_partition, direct.best_fitness,
              direct.evaluations);
}

TEST(OptimizerEquivalence, Greedy) {
  Fixture f;
  part::PartitionEvaluator eval(f.ctx, f.start());
  const RefineResult direct = greedy_refine(eval, 5000);

  auto req = f.request();
  req.start = f.start();
  req.max_evaluations = 5000;
  const auto adapter = OptimizerRegistry::global().make("greedy")->run(req);
  expect_same(adapter, eval.partition(), direct.final_fitness,
              direct.evaluations);
  EXPECT_EQ(adapter.iterations, direct.moves_applied);
}

TEST(OptimizerEquivalence, Standard) {
  Fixture f;
  const auto start = f.start();
  std::vector<std::size_t> sizes;
  for (std::uint32_t m = 0; m < start.module_count(); ++m)
    sizes.push_back(start.module_size(m));
  const auto direct = standard_partition(f.nl, f.ctx.oracle, sizes);

  auto req = f.request();
  req.start = start;
  const auto adapter = OptimizerRegistry::global().make("standard")->run(req);
  EXPECT_EQ(adapter.partition, direct);
  part::PartitionEvaluator eval(f.ctx, direct);
  EXPECT_EQ(adapter.fitness.cost, eval.fitness().cost);
}

TEST(OptimizerEquivalence, ComposedPipelineMatchesManualChaining) {
  Fixture f;
  EsParams params;
  params.mu = 3;
  params.lambda = 3;
  params.chi = 1;
  params.max_generations = 15;
  params.stall_generations = 8;
  OptimizerConfig cfg;
  cfg.es = params;

  auto& reg = OptimizerRegistry::global();
  const auto es_out = reg.make("evolution", cfg)->run(f.request());
  auto polish_req = f.request();
  polish_req.start = es_out.partition;
  const auto greedy_out = reg.make("greedy", cfg)->run(polish_req);

  const auto composed = reg.make("evolution+greedy", cfg)->run(f.request());
  EXPECT_EQ(composed.method, "evolution+greedy");
  EXPECT_EQ(composed.partition, greedy_out.partition);
  EXPECT_EQ(composed.fitness.cost, greedy_out.fitness.cost);
  EXPECT_EQ(composed.evaluations,
            es_out.evaluations + greedy_out.evaluations);
}

TEST(OptimizerEquivalence, ComposedPipelineSharesTheRequestBudget) {
  Fixture f;
  auto req = f.request();
  req.start = f.start();
  req.max_evaluations = 500;
  const auto out =
      OptimizerRegistry::global().make("annealing+greedy")->run(req);
  // Annealing consumes (about) the whole budget; greedy must not add its
  // 100000-evaluation default on top.
  EXPECT_LE(out.evaluations, 520u);
}

TEST(OptimizerEquivalence, ComposedPipelineKeepsBestStageResult) {
  Fixture f;
  OptimizerConfig cfg;
  cfg.random_samples = 10;  // a weak polish stage that ignores its start
  auto req = f.request();
  req.start = f.start();
  auto& reg = OptimizerRegistry::global();
  const auto greedy = reg.make("greedy", cfg)->run(req);
  const auto composed = reg.make("greedy+random", cfg)->run(req);
  EXPECT_FALSE(greedy.fitness < composed.fitness);
}

// The compatibility wrapper must keep producing the direct ES result.
TEST(OptimizerEquivalence, RunFlowMatchesDirectEvolution) {
  Fixture f;
  FlowConfig config;
  config.es.mu = 4;
  config.es.lambda = 4;
  config.es.chi = 1;
  config.es.max_generations = 25;
  config.es.stall_generations = 10;
  config.es.seed = Fixture::kSeed;
  const auto flow = run_flow(f.nl, f.library, config);

  part::EvalContext ctx(f.nl, f.library, config.sensor, config.weights,
                        config.rho);
  EvolutionEngine engine(ctx, config.es);
  const auto direct = engine.run_with_module_count(flow.plan.module_count);
  EXPECT_EQ(flow.evolution.partition, direct.best_partition);
  EXPECT_EQ(flow.evolution.fitness.cost, direct.best_fitness.cost);
  EXPECT_EQ(flow.es_detail.evaluations, direct.evaluations);
  EXPECT_EQ(flow.es_detail.generations, direct.generations);
}

}  // namespace
}  // namespace iddq::core
