// Thread-count invariance of the parallel optimizers (the ISSUE
// acceptance pin): ES, tabu, and portfolio runs must be byte-identical —
// partitions equal, every double bit-equal — on a 1-thread, 2-thread, and
// 8-thread ExecutorPool, and identical to the poolless serial path. The
// determinism recipe under test: all RNG draws happen on the coordinator
// in a fixed order, workers only fill pre-indexed slots, reductions run
// on the caller in index order (docs/architecture.md, "Threading model").
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/evolution.hpp"
#include "core/flow_engine.hpp"
#include "core/optimizer_registry.hpp"
#include "core/random_search.hpp"
#include "core/refiner.hpp"
#include "core/start_partition.hpp"
#include "core/tabu.hpp"
#include "netlist/gen/random_dag.hpp"
#include "support/executor.hpp"
#include "support/rng.hpp"

namespace iddq::core {
namespace {

struct Fixture {
  netlist::Netlist nl = netlist::gen::make_random_dag(
      netlist::gen::DagProfile::basic("par", 200, 12, 5));
  lib::CellLibrary library = lib::default_library();
  part::EvalContext ctx{nl, library, elec::SensorSpec{},
                        part::CostWeights{}};

  part::Partition start() {
    Rng rng(3);
    return make_start_partition(nl, 4, rng);
  }
};

void expect_bits_eq(double got, double want, const char* what) {
  EXPECT_EQ(std::bit_cast<std::uint64_t>(got),
            std::bit_cast<std::uint64_t>(want))
      << what << ": " << got << " vs " << want;
}

void expect_outcomes_identical(const OptimizerOutcome& got,
                               const OptimizerOutcome& want) {
  EXPECT_EQ(got.partition, want.partition);
  expect_bits_eq(got.fitness.violation, want.fitness.violation, "violation");
  expect_bits_eq(got.fitness.cost, want.fitness.cost, "cost");
  const auto gc = got.costs.as_array();
  const auto wc = want.costs.as_array();
  for (std::size_t i = 0; i < wc.size(); ++i)
    expect_bits_eq(gc[i], wc[i], "costs[i]");
  EXPECT_EQ(got.iterations, want.iterations);
  EXPECT_EQ(got.evaluations, want.evaluations);
}

const std::size_t kPoolSizes[] = {1, 2, 8};

TEST(ParallelInvariance, EvolutionIsByteIdenticalAtAnyThreadCount) {
  Fixture f;
  EsParams params;
  params.mu = 4;
  params.lambda = 4;
  params.chi = 2;
  params.max_generations = 12;
  params.stall_generations = 6;
  params.seed = 42;

  EvolutionEngine serial_engine(f.ctx, params);  // pool == nullptr
  const EsResult serial = serial_engine.run_with_module_count(4);
  EXPECT_GT(serial.evaluations, params.mu);

  for (const std::size_t threads : kPoolSizes) {
    SCOPED_TRACE(threads);
    support::ExecutorPool pool(threads);
    EsParams p = params;
    p.pool = &pool;
    EvolutionEngine engine(f.ctx, p);
    const EsResult got = engine.run_with_module_count(4);
    EXPECT_EQ(got.best_partition, serial.best_partition);
    expect_bits_eq(got.best_fitness.cost, serial.best_fitness.cost, "cost");
    expect_bits_eq(got.best_fitness.violation, serial.best_fitness.violation,
                   "violation");
    EXPECT_EQ(got.generations, serial.generations);
    EXPECT_EQ(got.evaluations, serial.evaluations);
  }
}

TEST(ParallelInvariance, TabuIsByteIdenticalAtAnyThreadCount) {
  Fixture f;
  TabuParams params;
  params.iterations = 60;
  params.candidates = 10;
  params.seed = 11;

  const TabuResult serial = tabu_search(f.ctx, f.start(), params);
  for (const std::size_t threads : kPoolSizes) {
    SCOPED_TRACE(threads);
    support::ExecutorPool pool(threads);
    TabuParams p = params;
    p.pool = &pool;
    const TabuResult got = tabu_search(f.ctx, f.start(), p);
    EXPECT_EQ(got.best_partition, serial.best_partition);
    expect_bits_eq(got.best_fitness.cost, serial.best_fitness.cost, "cost");
    EXPECT_EQ(got.iterations, serial.iterations);
    EXPECT_EQ(got.evaluations, serial.evaluations);
  }
}

TEST(ParallelInvariance, RandomSearchIsByteIdenticalAtAnyThreadCount) {
  // Independent samples: the coordinator draws every start partition in
  // the serial RNG order, workers only evaluate, the best-of reduction
  // runs in sample order.
  Fixture f;
  const RandomSearchResult serial = random_search(f.ctx, 4, 45, 11);
  EXPECT_EQ(serial.evaluations, 45u);
  for (const std::size_t threads : kPoolSizes) {
    SCOPED_TRACE(threads);
    support::ExecutorPool pool(threads);
    const RandomSearchResult got = random_search(f.ctx, 4, 45, 11, &pool);
    EXPECT_EQ(got.best_partition, serial.best_partition);
    expect_bits_eq(got.best_fitness.cost, serial.best_fitness.cost, "cost");
    expect_bits_eq(got.best_fitness.violation, serial.best_fitness.violation,
                   "violation");
    const auto gc = got.best_costs.as_array();
    const auto wc = serial.best_costs.as_array();
    for (std::size_t i = 0; i < wc.size(); ++i)
      expect_bits_eq(gc[i], wc[i], "costs[i]");
    EXPECT_EQ(got.evaluations, serial.evaluations);
  }
}

TEST(ParallelInvariance, GreedyRefinerIsByteIdenticalAtAnyThreadCount) {
  // The speculative window scan must replay the sequential
  // first-improvement walk exactly: same moves, same evaluation counts,
  // same final bits — window candidates past the stopping point are
  // discarded, never observed.
  Fixture f;
  part::PartitionEvaluator serial_eval(f.ctx, f.start());
  const RefineResult serial = greedy_refine(serial_eval, 3000);
  EXPECT_GT(serial.moves_applied, 0u);
  for (const std::size_t threads : kPoolSizes) {
    SCOPED_TRACE(threads);
    support::ExecutorPool pool(threads);
    part::PartitionEvaluator eval(f.ctx, f.start());
    const RefineResult got = greedy_refine(eval, 3000, &pool);
    EXPECT_EQ(eval.partition(), serial_eval.partition());
    expect_bits_eq(got.final_fitness.cost, serial.final_fitness.cost, "cost");
    expect_bits_eq(got.final_fitness.violation,
                   serial.final_fitness.violation, "violation");
    EXPECT_EQ(got.moves_applied, serial.moves_applied);
    EXPECT_EQ(got.evaluations, serial.evaluations);
  }
}

TEST(ParallelInvariance, GreedyRefinerBudgetStopIsThreadInvariant) {
  // Budget exhaustion must land on exactly the same evaluation count at
  // any thread count (the walk checks the budget at gate entries like the
  // sequential scan did).
  Fixture f;
  for (const std::size_t budget : {std::size_t{7}, std::size_t{41}}) {
    SCOPED_TRACE(budget);
    part::PartitionEvaluator serial_eval(f.ctx, f.start());
    const RefineResult serial = greedy_refine(serial_eval, budget);
    for (const std::size_t threads : kPoolSizes) {
      SCOPED_TRACE(threads);
      support::ExecutorPool pool(threads);
      part::PartitionEvaluator eval(f.ctx, f.start());
      const RefineResult got = greedy_refine(eval, budget, &pool);
      EXPECT_EQ(eval.partition(), serial_eval.partition());
      EXPECT_EQ(got.moves_applied, serial.moves_applied);
      EXPECT_EQ(got.evaluations, serial.evaluations);
    }
  }
}

TEST(ParallelInvariance, PortfolioRaceIsByteIdenticalAtAnyThreadCount) {
  Fixture f;
  OptimizerConfig cfg;
  cfg.es.mu = 3;
  cfg.es.lambda = 3;
  cfg.es.chi = 1;
  cfg.es.max_generations = 6;
  cfg.es.stall_generations = 3;
  cfg.sa.steps = 200;
  cfg.tabu.iterations = 30;
  const auto portfolio = OptimizerRegistry::global().make(
      "portfolio:evolution,annealing,tabu", cfg);

  OptimizerRequest request;
  request.ctx = &f.ctx;
  request.module_count = 4;
  request.seed = 42;
  const auto serial = portfolio->run(request);

  for (const std::size_t threads : kPoolSizes) {
    SCOPED_TRACE(threads);
    support::ExecutorPool pool(threads);
    OptimizerRequest r = request;
    r.pool = &pool;
    expect_outcomes_identical(portfolio->run(r), serial);
  }
}

TEST(ParallelInvariance, FlowEngineRowsAreByteIdenticalWithAConfigPool) {
  // End-to-end: the same pool FlowEngineConfig threads into every
  // dispatch (what --threads wires up) must leave whole MethodResult
  // rows — including the standard coupling and per-method seeds —
  // byte-identical to the serial engine.
  Fixture f;
  FlowEngineConfig config;
  config.optimizers.es.mu = 3;
  config.optimizers.es.lambda = 3;
  config.optimizers.es.chi = 1;
  config.optimizers.es.max_generations = 8;
  config.optimizers.es.stall_generations = 4;
  config.optimizers.tabu.iterations = 30;
  const std::vector<std::string> methods{"evolution", "tabu", "standard"};

  support::ExecutorPool serial(1);
  config.pool = &serial;
  FlowEngine serial_engine(f.nl, f.library, config);
  const auto want = serial_engine.run_methods(methods, 42);

  support::ExecutorPool pool(4);
  config.pool = &pool;
  FlowEngine engine(f.nl, f.library, config);
  const auto got = engine.run_methods(methods, 42);

  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    SCOPED_TRACE(methods[i]);
    EXPECT_EQ(got[i].method, want[i].method);
    EXPECT_EQ(got[i].partition, want[i].partition);
    expect_bits_eq(got[i].fitness.cost, want[i].fitness.cost, "cost");
    expect_bits_eq(got[i].sensor_area, want[i].sensor_area, "sensor_area");
    expect_bits_eq(got[i].delay_overhead, want[i].delay_overhead,
                   "delay_overhead");
    EXPECT_EQ(got[i].evaluations, want[i].evaluations);
    EXPECT_EQ(got[i].module_count, want[i].module_count);
  }
}

TEST(ParallelInvariance, ProgressTicksStillObserveWithoutChangingTheRun) {
  // Observers ride along unchanged when the run is threaded (the contract
  // JobService cancellation depends on).
  Fixture f;
  OptimizerConfig cfg;
  cfg.es.mu = 3;
  cfg.es.lambda = 3;
  cfg.es.chi = 1;
  cfg.es.max_generations = 6;
  cfg.es.stall_generations = 3;
  const auto optimizer = OptimizerRegistry::global().make("evolution", cfg);

  OptimizerRequest request;
  request.ctx = &f.ctx;
  request.module_count = 4;
  request.seed = 7;
  const auto want = optimizer->run(request);

  support::ExecutorPool pool(4);
  OptimizerRequest observed = request;
  observed.pool = &pool;
  std::size_t ticks = 0;
  observed.on_progress = [&ticks](const OptimizerProgress&) { ++ticks; };
  const auto got = optimizer->run(observed);
  EXPECT_GT(ticks, 0u);
  expect_outcomes_identical(got, want);
}

}  // namespace
}  // namespace iddq::core
