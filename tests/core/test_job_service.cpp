#include "core/job_service.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/batch_runner.hpp"
#include "netlist/gen/random_dag.hpp"
#include "support/error.hpp"
#include "support/executor.hpp"
#include "support/rng.hpp"

namespace iddq::core {
namespace {

// Small synthetic circuits keyed by spec name (same scheme as the batch
// runner tests); "bad" fails in the loader.
netlist::Netlist synthetic_circuit(const std::string& spec) {
  if (spec == "bad") throw Error("synthetic loader: bad circuit");
  const std::size_t gates = 120 + 40 * (spec.back() - 'a');
  return netlist::gen::make_random_dag(
      netlist::gen::DagProfile::basic(spec, gates, 10, 5));
}

FlowEngineConfig quick_config() {
  FlowEngineConfig config;
  config.optimizers.es.mu = 3;
  config.optimizers.es.lambda = 3;
  config.optimizers.es.chi = 1;
  config.optimizers.es.max_generations = 10;
  config.optimizers.es.stall_generations = 5;
  config.optimizers.random_samples = 50;
  return config;
}

// A config whose evolution run is effectively unbounded — only
// cancellation ends it. Used to hold a worker busy deterministically.
FlowEngineConfig unbounded_config() {
  FlowEngineConfig config = quick_config();
  config.optimizers.es.max_generations = 1000000;
  config.optimizers.es.stall_generations = 1000000;
  return config;
}

// JobService is pinned (workers capture `this`), so tests hold it by
// pointer.
std::unique_ptr<JobService> make_service(const lib::CellLibrary& library,
                                         std::size_t workers,
                                         FlowEngineConfig config) {
  JobServiceConfig service_config;
  service_config.workers = workers;
  service_config.flow = std::move(config);
  auto service =
      std::make_unique<JobService>(library, std::move(service_config));
  service->set_circuit_loader(synthetic_circuit);
  return service;
}

void expect_rows_identical(const MethodResult& a, const MethodResult& b) {
  EXPECT_EQ(a.method, b.method);
  EXPECT_EQ(a.partition, b.partition);
  EXPECT_EQ(a.module_count, b.module_count);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.fitness.violation),
            std::bit_cast<std::uint64_t>(b.fitness.violation));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.fitness.cost),
            std::bit_cast<std::uint64_t>(b.fitness.cost));
  const auto ca = a.costs.as_array();
  const auto cb = b.costs.as_array();
  for (std::size_t i = 0; i < ca.size(); ++i)
    EXPECT_EQ(std::bit_cast<std::uint64_t>(ca[i]),
              std::bit_cast<std::uint64_t>(cb[i]));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.sensor_area),
            std::bit_cast<std::uint64_t>(b.sensor_area));
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.evaluations, b.evaluations);
}

// Thread-safe event log used to assert ordering across jobs.
struct EventLog {
  std::mutex mutex;
  std::vector<JobEvent> events;

  JobEventSink sink() {
    return [this](const JobEvent& e) {
      const std::scoped_lock lock(mutex);
      events.push_back(e);
    };
  }

  std::vector<JobEvent> snapshot() {
    const std::scoped_lock lock(mutex);
    return events;
  }
};

// Lets a sink (worker thread) safely cancel its own job: the sink blocks
// until the submitter has published the handle.
struct HandleGate {
  std::mutex mutex;
  std::condition_variable cv;
  JobHandle handle;
  bool ready = false;

  void publish(JobHandle h) {
    {
      const std::scoped_lock lock(mutex);
      handle = std::move(h);
      ready = true;
    }
    cv.notify_all();
  }

  JobHandle get() {
    std::unique_lock lock(mutex);
    cv.wait(lock, [this] { return ready; });
    return handle;
  }
};

TEST(JobService, RunsAJobAndStreamsOrderedEvents) {
  const auto library = lib::default_library();
  const auto service = make_service(library, 2, quick_config());

  EventLog log;
  JobSpec spec;
  spec.circuit = "ca";
  spec.methods = {"random", "standard"};
  spec.base_seed = 42;
  JobHandle handle = service->submit(spec, log.sink());
  const JobResult& result = handle.wait();

  EXPECT_EQ(result.state, JobState::done);
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(handle.status(), JobState::done);
  ASSERT_EQ(result.rows.size(), 2u);
  EXPECT_EQ(result.rows[0].method, "random");
  EXPECT_EQ(result.rows[1].method, "standard");
  EXPECT_GT(result.plan.module_count, 0u);

  const auto events = log.snapshot();
  ASSERT_GE(events.size(), 4u);
  EXPECT_EQ(events.front().kind, JobEvent::Kind::queued);
  EXPECT_EQ(events[1].kind, JobEvent::Kind::running);
  EXPECT_EQ(events.back().kind, JobEvent::Kind::done);
  // Rows arrive in spec order, before the terminal event, and carry the
  // same payloads as the final result.
  std::vector<const JobEvent*> rows;
  for (const auto& e : events)
    if (e.kind == JobEvent::Kind::row) rows.push_back(&e);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0]->row_index, 0u);
  EXPECT_EQ(rows[1]->row_index, 1u);
  expect_rows_identical(*rows[0]->row, result.rows[0]);
  expect_rows_identical(*rows[1]->row, result.rows[1]);
}

TEST(JobService, ShimBatchRunnerMatchesDirectEngineLoop) {
  // The acceptance pin: BatchRunner (now a JobService shim) must produce
  // byte-identical MethodResult rows to the pre-redesign behavior — a
  // per-circuit FlowEngine::run_methods at mix_seed(base, task_index).
  const auto library = lib::default_library();
  const auto config = quick_config();
  const std::vector<std::string> circuits{"ca", "cb", "cc"};
  const std::vector<std::string> methods{"evolution", "random", "standard"};
  const std::uint64_t base_seed = 42;

  BatchRunner runner(library, config);
  runner.set_circuit_loader(synthetic_circuit);
  const auto items = runner.run(circuits, methods, base_seed, 3);
  ASSERT_EQ(items.size(), circuits.size());

  for (std::size_t i = 0; i < circuits.size(); ++i) {
    SCOPED_TRACE(circuits[i]);
    const netlist::Netlist nl = synthetic_circuit(circuits[i]);
    FlowEngine engine(nl, library, config);
    const auto expected =
        engine.run_methods(methods, Rng::mix_seed(base_seed, i));

    ASSERT_TRUE(items[i].ok());
    EXPECT_EQ(items[i].plan.module_count, engine.plan().module_count);
    ASSERT_EQ(items[i].methods.size(), expected.size());
    for (std::size_t m = 0; m < expected.size(); ++m) {
      SCOPED_TRACE(methods[m]);
      expect_rows_identical(items[i].methods[m], expected[m]);
    }
  }
}

TEST(JobService, ShimWithSharedPoolMatchesDirectSerialEngineLoop) {
  // The re-pin with intra-run parallelism on: N jobs x M threads share ONE
  // ExecutorPool through FlowEngineConfig, and the rows must still be
  // byte-identical to a plain single-threaded per-circuit engine loop.
  const auto library = lib::default_library();
  support::ExecutorPool pool(3);
  FlowEngineConfig threaded = quick_config();
  threaded.pool = &pool;
  const std::vector<std::string> circuits{"ca", "cb", "cc"};
  const std::vector<std::string> methods{"evolution", "tabu", "standard"};
  const std::uint64_t base_seed = 42;

  BatchRunner runner(library, threaded);
  runner.set_circuit_loader(synthetic_circuit);
  const auto items = runner.run(circuits, methods, base_seed, 3);
  ASSERT_EQ(items.size(), circuits.size());

  support::ExecutorPool serial(1);
  FlowEngineConfig serial_config = quick_config();
  serial_config.pool = &serial;
  for (std::size_t i = 0; i < circuits.size(); ++i) {
    SCOPED_TRACE(circuits[i]);
    const netlist::Netlist nl = synthetic_circuit(circuits[i]);
    FlowEngine engine(nl, library, serial_config);
    const auto expected =
        engine.run_methods(methods, Rng::mix_seed(base_seed, i));
    ASSERT_TRUE(items[i].ok());
    ASSERT_EQ(items[i].methods.size(), expected.size());
    for (std::size_t m = 0; m < expected.size(); ++m) {
      SCOPED_TRACE(methods[m]);
      expect_rows_identical(items[i].methods[m], expected[m]);
    }
  }
}

TEST(JobService, HigherPriorityJobOvertakesQueuedBulkWork) {
  const auto library = lib::default_library();
  const auto service = make_service(library, 1, unbounded_config());

  // Hold the single worker inside an unbounded job so the next submits
  // provably queue up behind it.
  std::mutex mutex;
  std::condition_variable cv;
  bool started = false;
  bool release = false;
  HandleGate gate;
  JobSpec hold;
  hold.circuit = "ca";
  hold.methods = {"evolution"};
  JobHandle hold_handle = service->submit(hold, [&](const JobEvent& e) {
    if (e.kind == JobEvent::Kind::progress) {
      {
        std::unique_lock lock(mutex);
        started = true;
        cv.notify_all();
        cv.wait(lock, [&] { return release; });
      }
      gate.get().cancel();
    }
  });
  gate.publish(hold_handle);
  {
    // Only submit the contenders once the worker is provably inside the
    // hold job, so both genuinely wait in the queue.
    std::unique_lock lock(mutex);
    cv.wait(lock, [&] { return started; });
  }

  EventLog log;
  JobSpec bulk;
  bulk.circuit = "cb";
  bulk.methods = {"standard"};
  bulk.priority = 0;
  JobHandle bulk_handle = service->submit(bulk, log.sink());

  JobSpec interactive;
  interactive.circuit = "cc";
  interactive.methods = {"standard"};
  interactive.priority = 5;
  JobHandle interactive_handle = service->submit(interactive, log.sink());

  EXPECT_EQ(service->queue_depth(), 2u);
  {
    const std::scoped_lock lock(mutex);
    release = true;
  }
  cv.notify_all();

  (void)hold_handle.wait();
  (void)bulk_handle.wait();
  (void)interactive_handle.wait();
  EXPECT_EQ(bulk_handle.status(), JobState::done);
  EXPECT_EQ(interactive_handle.status(), JobState::done);

  // The interactive submit, though queued second, ran first.
  const auto events = log.snapshot();
  std::size_t interactive_running = events.size();
  std::size_t bulk_running = events.size();
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (events[i].kind != JobEvent::Kind::running) continue;
    if (events[i].job == interactive_handle.id()) interactive_running = i;
    if (events[i].job == bulk_handle.id()) bulk_running = i;
  }
  ASSERT_LT(interactive_running, events.size());
  ASSERT_LT(bulk_running, events.size());
  EXPECT_LT(interactive_running, bulk_running);
}

TEST(JobService, ReservationsAdmitAtomicallyAgainstTheBound) {
  // The server's --max-queue admission: two sweeps may not jointly
  // overshoot the bound, reservations are all-or-nothing, and releasing
  // returns the slots.
  const auto library = lib::default_library();
  const auto service = make_service(library, 1, quick_config());

  EXPECT_TRUE(service->try_reserve(100, 0));  // 0 = unbounded, no state
  EXPECT_TRUE(service->try_reserve(3, 4));    // 0 queued + 3 <= 4
  EXPECT_FALSE(service->try_reserve(2, 4));   // 3 reserved + 2 > 4
  EXPECT_TRUE(service->try_reserve(1, 4));    // exactly fills the bound
  EXPECT_FALSE(service->try_reserve(1, 4));
  service->release_reservation(4);
  EXPECT_TRUE(service->try_reserve(4, 4));
  service->release_reservation(4);
  service->release_reservation(1000);  // over-release clamps, no wrap
  EXPECT_TRUE(service->try_reserve(4, 4));
}

TEST(JobService, CancellationLandsMidRun) {
  const auto library = lib::default_library();
  const auto service = make_service(library, 1, unbounded_config());

  EventLog log;
  HandleGate gate;
  std::mutex once_mutex;
  bool cancelled_once = false;
  // Cancel from inside the sink at the first live progress tick — i.e.
  // genuinely mid-run, between two ES generations.
  JobSpec spec;
  spec.circuit = "ca";
  spec.methods = {"evolution", "standard"};
  JobHandle handle = service->submit(spec, [&](const JobEvent& e) {
    {
      const std::scoped_lock lock(log.mutex);
      log.events.push_back(e);
    }
    if (e.kind == JobEvent::Kind::progress) {
      JobHandle self = gate.get();
      const std::scoped_lock lock(once_mutex);
      if (!cancelled_once) {
        self.cancel();
        cancelled_once = true;
      }
    }
  });
  gate.publish(handle);

  const JobResult& result = handle.wait();
  EXPECT_EQ(result.state, JobState::cancelled);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.error.empty());
  // Cancelled during the first method: no row ever completed.
  EXPECT_TRUE(result.rows.empty());
  EXPECT_EQ(handle.status(), JobState::cancelled);

  const auto events = log.snapshot();
  ASSERT_GE(events.size(), 3u);
  EXPECT_EQ(events.back().kind, JobEvent::Kind::cancelled);
  bool saw_progress = false;
  for (const auto& e : events)
    if (e.kind == JobEvent::Kind::progress) saw_progress = true;
  EXPECT_TRUE(saw_progress);
}

TEST(JobService, CancelWhileQueuedNeverRuns) {
  const auto library = lib::default_library();
  const auto service = make_service(library, 1, unbounded_config());

  // Gate the single worker inside job A until B has been cancelled, so B
  // is provably still queued when the cancel lands.
  std::mutex mutex;
  std::condition_variable cv;
  bool release_a = false;
  HandleGate a_gate;
  JobSpec a_spec;
  a_spec.circuit = "ca";
  a_spec.methods = {"evolution"};
  JobHandle a_handle = service->submit(a_spec, [&](const JobEvent& e) {
    if (e.kind == JobEvent::Kind::progress) {
      {
        std::unique_lock lock(mutex);
        cv.wait(lock, [&] { return release_a; });
      }
      a_gate.get().cancel();  // end A once the assertion window closed
    }
  });
  a_gate.publish(a_handle);

  EventLog b_log;
  JobSpec b_spec;
  b_spec.circuit = "cb";
  b_spec.methods = {"standard"};
  JobHandle b_handle = service->submit(b_spec, b_log.sink());
  EXPECT_EQ(b_handle.status(), JobState::queued);
  b_handle.cancel();
  {
    const std::scoped_lock lock(mutex);
    release_a = true;
  }
  cv.notify_all();

  const JobResult& b_result = b_handle.wait();
  EXPECT_EQ(b_result.state, JobState::cancelled);
  EXPECT_TRUE(b_result.rows.empty());
  (void)a_handle.wait();

  // B never transitioned through running.
  for (const auto& e : b_log.snapshot())
    EXPECT_NE(e.kind, JobEvent::Kind::running);
}

TEST(JobService, OutOfOrderCompletionStreams) {
  const auto library = lib::default_library();
  const auto service = make_service(library, 2, unbounded_config());

  EventLog log;
  JobSpec slow;
  slow.circuit = "ca";
  slow.methods = {"evolution"};  // unbounded until cancelled
  JobHandle slow_handle = service->submit(slow, log.sink());

  JobSpec fast;
  fast.circuit = "cb";
  fast.methods = {"standard"};  // one evaluation
  JobHandle fast_handle = service->submit(fast, log.sink());

  // The fast job, submitted second, finishes first — its events stream
  // while the slow job is still running.
  const JobResult& fast_result = fast_handle.wait();
  EXPECT_EQ(fast_result.state, JobState::done);
  EXPECT_FALSE(is_terminal(slow_handle.status()));

  slow_handle.cancel();
  const JobResult& slow_result = slow_handle.wait();
  EXPECT_EQ(slow_result.state, JobState::cancelled);

  const auto events = log.snapshot();
  std::size_t fast_done_at = events.size();
  std::size_t slow_terminal_at = events.size();
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (events[i].kind == JobEvent::Kind::done &&
        events[i].job == fast_handle.id())
      fast_done_at = i;
    if (events[i].kind == JobEvent::Kind::cancelled &&
        events[i].job == slow_handle.id())
      slow_terminal_at = i;
  }
  ASSERT_LT(fast_done_at, events.size());
  ASSERT_LT(slow_terminal_at, events.size());
  EXPECT_LT(fast_done_at, slow_terminal_at);
}

TEST(JobService, CacheHitsReplayRepeatJobsByteIdentically) {
  const auto library = lib::default_library();
  ResultCache cache;
  FlowEngineConfig config = quick_config();
  config.cache = &cache;
  const auto service = make_service(library, 2, config);

  JobSpec spec;
  spec.circuit = "ca";
  spec.methods = {"evolution", "standard"};
  spec.base_seed = 7;
  const JobResult first = service->submit(spec).wait();
  ASSERT_TRUE(first.ok());
  const auto misses_after_first = cache.misses();
  EXPECT_GT(misses_after_first, 0u);

  const JobResult second = service->submit(spec).wait();
  ASSERT_TRUE(second.ok());
  EXPECT_GE(cache.hits(), 2u);
  EXPECT_EQ(cache.misses(), misses_after_first);
  ASSERT_EQ(second.rows.size(), first.rows.size());
  for (std::size_t i = 0; i < first.rows.size(); ++i)
    expect_rows_identical(second.rows[i], first.rows[i]);

  // A bypass job recomputes from scratch and never consults the cache.
  JobSpec bypass = spec;
  bypass.cache_policy = JobSpec::CachePolicy::bypass;
  const auto hits_before = cache.hits();
  const JobResult third = service->submit(bypass).wait();
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(cache.hits(), hits_before);
  for (std::size_t i = 0; i < first.rows.size(); ++i)
    expect_rows_identical(third.rows[i], first.rows[i]);
}

TEST(JobService, FailedJobCapturesLoaderError) {
  const auto library = lib::default_library();
  const auto service = make_service(library, 1, quick_config());
  EventLog log;
  JobSpec spec;
  spec.circuit = "bad";
  const JobResult result = service->submit(spec, log.sink()).wait();
  EXPECT_EQ(result.state, JobState::failed);
  EXPECT_NE(result.error.find("bad circuit"), std::string::npos);
  const auto events = log.snapshot();
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events.back().kind, JobEvent::Kind::failed);
  EXPECT_NE(events.back().error.find("bad circuit"), std::string::npos);
}

TEST(JobService, SubmitAfterShutdownThrows) {
  const auto library = lib::default_library();
  const auto service = make_service(library, 1, quick_config());
  JobSpec spec;
  spec.circuit = "ca";
  spec.methods = {"standard"};
  const JobResult result = service->submit(spec).wait();
  EXPECT_TRUE(result.ok());
  service->shutdown();
  EXPECT_THROW((void)service->submit(spec), Error);
  // The queued -> failed pairing of the rejected submit is pinned by
  // SubmitAfterShutdownStillPairsQueuedWithFailed.
}

TEST(JobService, ThrowingSinkCannotVetoOrCrashAJob) {
  // Sink exceptions are swallowed on every lifecycle path (they would
  // otherwise escape bare worker threads, or leave a job non-terminal
  // when thrown from the terminal emit): the job runs to completion and
  // later events still arrive.
  const auto library = lib::default_library();
  const auto service = make_service(library, 1, quick_config());
  JobSpec spec;
  spec.circuit = "ca";
  spec.methods = {"standard"};
  EventLog log;
  JobHandle handle =
      service->submit(spec, [&log](const JobEvent& e) {
        {
          const std::scoped_lock lock(log.mutex);
          log.events.push_back(e);
        }
        throw Error("sink throws on every event");
      });
  const JobResult& result = handle.wait();
  EXPECT_EQ(result.state, JobState::done);
  ASSERT_EQ(result.rows.size(), 1u);
  const auto events = log.snapshot();
  ASSERT_GE(events.size(), 3u);
  EXPECT_EQ(events.front().kind, JobEvent::Kind::queued);
  EXPECT_EQ(events.back().kind, JobEvent::Kind::done);
}

TEST(JobService, SubmitAfterShutdownStillPairsQueuedWithFailed) {
  // The queued -> terminal pairing on the rejection path (what the
  // protocol's sweep accounting relies on): submit against a shut-down
  // service announces, finalizes as failed, then throws.
  const auto library = lib::default_library();
  const auto service = make_service(library, 1, quick_config());
  service->shutdown();
  JobSpec spec;
  spec.circuit = "ca";
  spec.methods = {"standard"};
  std::vector<JobEvent::Kind> seen;
  EXPECT_THROW(
      (void)service->submit(
          spec, [&seen](const JobEvent& e) { seen.push_back(e.kind); }),
      Error);
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], JobEvent::Kind::queued);
  EXPECT_EQ(seen[1], JobEvent::Kind::failed);
}

TEST(JobService, DestructionDrainsQueuedJobs) {
  const auto library = lib::default_library();
  std::vector<JobHandle> handles;
  {
    const auto service = make_service(library, 1, quick_config());
    for (int i = 0; i < 4; ++i) {
      JobSpec spec;
      spec.circuit = "ca";
      spec.methods = {"standard"};
      spec.base_seed = static_cast<std::uint64_t>(i);
      handles.push_back(service->submit(spec));
    }
  }  // destructor drains
  for (const auto& handle : handles)
    EXPECT_EQ(handle.status(), JobState::done);
}

TEST(JobService, WaitForTimesOutWhileRunning) {
  const auto library = lib::default_library();
  const auto service = make_service(library, 1, unbounded_config());
  JobSpec spec;
  spec.circuit = "ca";
  spec.methods = {"evolution"};
  JobHandle handle = service->submit(spec);
  EXPECT_FALSE(handle.wait_for(std::chrono::milliseconds(50)));
  handle.cancel();
  EXPECT_TRUE(handle.wait_for(std::chrono::milliseconds(60000)));
  EXPECT_EQ(handle.status(), JobState::cancelled);
}

}  // namespace
}  // namespace iddq::core
