#include "core/annealing.hpp"

#include <gtest/gtest.h>

#include "core/start_partition.hpp"
#include "netlist/gen/random_dag.hpp"
#include "support/error.hpp"

namespace iddq::core {
namespace {

struct Fixture {
  netlist::Netlist nl = netlist::gen::make_random_dag(
      netlist::gen::DagProfile::basic("sa", 180, 12, 4));
  lib::CellLibrary library = lib::default_library();
  part::EvalContext ctx{nl, library, elec::SensorSpec{},
                        part::CostWeights{}};

  part::Partition start() {
    Rng rng(2);
    return make_start_partition(nl, 3, rng);
  }
};

TEST(Annealing, ImprovesOverStart) {
  Fixture f;
  part::PartitionEvaluator start_eval(f.ctx, f.start());
  const double start_cost = start_eval.fitness().cost;
  SaParams params;
  params.steps = 3000;
  params.seed = 7;
  const auto result = simulated_annealing(f.ctx, f.start(), params);
  EXPECT_LE(result.best_fitness.cost, start_cost);
  EXPECT_GT(result.accepted, 0u);
}

TEST(Annealing, KeepsModuleCountFixed) {
  Fixture f;
  SaParams params;
  params.steps = 2000;
  params.seed = 3;
  const auto result = simulated_annealing(f.ctx, f.start(), params);
  EXPECT_EQ(result.best_partition.module_count(), 3u);
  EXPECT_TRUE(result.best_partition.covers(f.nl));
}

TEST(Annealing, DeterministicForSeed) {
  Fixture f;
  SaParams params;
  params.steps = 1500;
  params.seed = 11;
  const auto a = simulated_annealing(f.ctx, f.start(), params);
  const auto b = simulated_annealing(f.ctx, f.start(), params);
  EXPECT_EQ(a.best_fitness.cost, b.best_fitness.cost);
  EXPECT_EQ(a.accepted, b.accepted);
}

TEST(Annealing, OnStepTicksLiveWithoutChangingTheRun) {
  Fixture f;
  SaParams params;
  params.steps = 2000;
  params.seed = 5;
  const auto expected = simulated_annealing(f.ctx, f.start(), params);

  params.progress_every = 250;
  std::size_t ticks = 0;
  std::size_t last_step = 0;
  params.on_step = [&](std::size_t step, std::size_t evaluations,
                       const part::Fitness& best) {
    ++ticks;
    EXPECT_GT(step, last_step);
    EXPECT_GT(evaluations, 0u);
    EXPECT_LE(best.cost, 1e12);
    last_step = step;
  };
  const auto observed = simulated_annealing(f.ctx, f.start(), params);

  EXPECT_EQ(ticks, (params.steps - 1) / params.progress_every);
  EXPECT_EQ(observed.best_fitness.cost, expected.best_fitness.cost);
  EXPECT_EQ(observed.best_partition, expected.best_partition);
  EXPECT_EQ(observed.evaluations, expected.evaluations);
}

TEST(Annealing, BestCostsMatchReEvaluation) {
  Fixture f;
  SaParams params;
  params.steps = 1000;
  params.seed = 5;
  const auto result = simulated_annealing(f.ctx, f.start(), params);
  part::PartitionEvaluator check(f.ctx, result.best_partition);
  EXPECT_NEAR(check.fitness().cost, result.best_fitness.cost,
              1e-9 * result.best_fitness.cost);
}

TEST(Annealing, RejectsBadParams) {
  Fixture f;
  SaParams params;
  params.steps = 0;
  EXPECT_THROW((void)simulated_annealing(f.ctx, f.start(), params), Error);
  params = SaParams{};
  params.cooling = 1.5;
  EXPECT_THROW((void)simulated_annealing(f.ctx, f.start(), params), Error);
}

}  // namespace
}  // namespace iddq::core
