// Robustness-layer tests (docs/robustness.md): per-job deadlines through
// JobService and the protocol (reason "timeout", timeouts counter),
// graceful drain (submit rejection, bounded drain cancelling stragglers,
// bye), and cache crash-recovery — a FaultPlan-torn final append recovers
// as exactly one corrupt line, stale compaction temp files are swept on
// attach, and replace_file's copy+remove fallback substitutes for a
// failed rename.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/job_protocol.hpp"
#include "core/job_service.hpp"
#include "core/result_cache.hpp"
#include "netlist/gen/random_dag.hpp"
#include "support/error.hpp"
#include "support/fault_plan.hpp"
#include "support/json.hpp"
#include "support/transport.hpp"

namespace iddq::core {
namespace {

netlist::Netlist synthetic_circuit(const std::string& spec) {
  if (spec == "bad") throw Error("synthetic loader: bad circuit");
  const std::size_t gates = 120 + 40 * (spec.back() - 'a');
  return netlist::gen::make_random_dag(
      netlist::gen::DagProfile::basic(spec, gates, 10, 5));
}

FlowEngineConfig quick_config() {
  FlowEngineConfig config;
  config.optimizers.es.mu = 3;
  config.optimizers.es.lambda = 3;
  config.optimizers.es.chi = 1;
  config.optimizers.es.max_generations = 10;
  config.optimizers.es.stall_generations = 5;
  config.optimizers.random_samples = 50;
  return config;
}

// Only cancellation (or a deadline) ends a run under this config — the
// deterministic way to hold a worker busy.
FlowEngineConfig unbounded_config() {
  FlowEngineConfig config = quick_config();
  config.optimizers.es.max_generations = 1000000;
  config.optimizers.es.stall_generations = 1000000;
  return config;
}

std::unique_ptr<JobService> make_service(const lib::CellLibrary& library,
                                         std::size_t workers,
                                         FlowEngineConfig config) {
  JobServiceConfig service_config;
  service_config.workers = workers;
  service_config.flow = std::move(config);
  auto service =
      std::make_unique<JobService>(library, std::move(service_config));
  service->set_circuit_loader(synthetic_circuit);
  return service;
}

std::vector<json::JsonValue> run_session(JobService& service,
                                         const std::string& input,
                                         bool* shutdown_requested = nullptr,
                                         JobProtocolOptions options = {}) {
  std::istringstream in(input);
  std::ostringstream out;
  support::StreamChannel channel(in, out);
  JobProtocolSession session(service, channel, options);
  const bool requested = session.run();
  if (shutdown_requested != nullptr) *shutdown_requested = requested;

  std::vector<json::JsonValue> events;
  std::istringstream lines(out.str());
  std::string line;
  while (std::getline(lines, line)) {
    auto event = json::JsonValue::parse(line);
    EXPECT_TRUE(event.has_value()) << "unparseable event: " << line;
    if (event) events.push_back(std::move(*event));
  }
  return events;
}

std::vector<const json::JsonValue*> events_of_kind(
    const std::vector<json::JsonValue>& events, const std::string& kind) {
  std::vector<const json::JsonValue*> out;
  for (const auto& e : events)
    if (e.get_string("event") == kind) out.push_back(&e);
  return out;
}

TEST(Deadline, ExpiredJobFailsWithTimeoutReason) {
  const auto library = lib::default_library();
  const auto service = make_service(library, 1, unbounded_config());

  JobSpec spec;
  spec.circuit = "ca";
  spec.methods = {"evolution"};
  spec.deadline_ms = 50;
  const auto handle = service->submit(spec, nullptr);
  const JobResult& result = handle.wait();

  EXPECT_EQ(handle.status(), JobState::failed);
  EXPECT_EQ(result.reason, "timeout");
  EXPECT_NE(result.error.find("timeout"), std::string::npos) << result.error;
  EXPECT_NE(result.error.find("50"), std::string::npos) << result.error;
  EXPECT_EQ(service->timeouts(), 1u);
}

TEST(Deadline, GenerousDeadlineNeverFires) {
  const auto library = lib::default_library();
  const auto service = make_service(library, 1, quick_config());

  JobSpec spec;
  spec.circuit = "ca";
  spec.methods = {"standard"};
  spec.deadline_ms = 600000;
  const auto handle = service->submit(spec, nullptr);
  handle.wait();
  EXPECT_EQ(handle.status(), JobState::done);
  EXPECT_EQ(service->timeouts(), 0u);
}

TEST(Deadline, ProtocolFailedEventCarriesTimeoutReason) {
  const auto library = lib::default_library();
  const auto service = make_service(library, 1, unbounded_config());

  const auto events = run_session(
      *service,
      R"({"op":"submit","id":"d1","circuits":["ca"],)"
      R"("methods":["evolution"],"deadline_ms":40})"
      "\n");

  const auto failed = events_of_kind(events, "failed");
  ASSERT_EQ(failed.size(), 1u);
  EXPECT_EQ(failed[0]->get_string("reason"), "timeout");
  EXPECT_NE(failed[0]->get_string("error").find("timeout"),
            std::string::npos);
  EXPECT_TRUE(events_of_kind(events, "done").empty());

  // The timeout shows in the next session's stats (service-level counter).
  const auto stats_events =
      run_session(*service, R"({"op":"stats"})" "\n");
  const auto stats = events_of_kind(stats_events, "stats");
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_GE(stats[0]->get_u64("timeouts"), 1u);
}

TEST(Deadline, ServerDefaultAppliesWhenSubmitOmitsIt) {
  const auto library = lib::default_library();
  const auto service = make_service(library, 1, unbounded_config());

  JobProtocolOptions options;
  options.default_deadline_ms = 40;  // --job-timeout-ms
  const auto events = run_session(
      *service,
      R"({"op":"submit","id":"d2","circuits":["ca"],)"
      R"("methods":["evolution"]})"
      "\n",
      nullptr, options);

  const auto failed = events_of_kind(events, "failed");
  ASSERT_EQ(failed.size(), 1u);
  EXPECT_EQ(failed[0]->get_string("reason"), "timeout");
}

TEST(Drain, DrainingServerRejectsSubmits) {
  const auto library = lib::default_library();
  const auto service = make_service(library, 1, quick_config());

  std::atomic<bool> draining{true};
  JobProtocolOptions options;
  options.draining = &draining;
  const auto events = run_session(
      *service,
      R"({"op":"submit","id":"r1","circuits":["ca"],)"
      R"("methods":["standard"]})"
      "\n",
      nullptr, options);

  const auto errors = events_of_kind(events, "error");
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NE(errors[0]->get_string("message").find("draining"),
            std::string::npos);
  EXPECT_EQ(errors[0]->get_string("id"), "r1");
  EXPECT_TRUE(events_of_kind(events, "accepted").empty());
  // A drained session still signs off cleanly.
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events.back().get_string("event"), "bye");
}

TEST(Drain, ShutdownCancelsStragglersWithinTheBound) {
  const auto library = lib::default_library();
  const auto service = make_service(library, 1, unbounded_config());

  std::atomic<bool> draining{false};
  JobProtocolOptions options;
  options.draining = &draining;
  options.drain_timeout_ms = 200;  // --drain-timeout-ms

  bool shutdown_requested = false;
  const auto start = std::chrono::steady_clock::now();
  const auto events = run_session(
      *service,
      R"({"op":"submit","id":"r2","circuits":["ca"],)"
      R"("methods":["evolution"]})"
      "\n"
      R"({"op":"shutdown"})"
      "\n",
      &shutdown_requested, options);
  const auto elapsed = std::chrono::steady_clock::now() - start;

  EXPECT_TRUE(shutdown_requested);
  EXPECT_TRUE(draining.load());  // shutdown op flipped the server flag
  // The unbounded job cannot finish by itself: only the bounded drain's
  // cancel ends it. The generous ceiling keeps slow-machine noise out.
  ASSERT_EQ(events_of_kind(events, "cancelled").size(), 1u);
  EXPECT_LT(elapsed, std::chrono::seconds(30));
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events.back().get_string("event"), "bye");
}

std::string fresh_dir(const std::string& name) {
  const auto dir = std::filesystem::path(testing::TempDir()) /
                   ("iddq_robustness_test_" + name);
  std::filesystem::remove_all(dir);
  return dir.string();
}

CacheRecord sample_record(std::uint64_t salt) {
  CacheRecord r;
  r.method = "evolution+greedy";
  r.gate_count = 9 + salt;
  r.modules = {{3, 5, 4}, {6, 7}, {8}};
  r.fitness.violation = 0.0;
  r.fitness.cost = 3307.0 + static_cast<double>(salt);
  r.costs = {11.6, 0.03, 3.29, 3.93, 1.0};
  r.iterations = 10;
  r.evaluations = 728;
  return r;
}

struct ArmedPlan {
  explicit ArmedPlan(std::string_view spec) {
    support::FaultPlan::arm_for_test(spec);
  }
  ~ArmedPlan() { support::FaultPlan::disarm_for_test(); }
};

TEST(CacheRobustness, TornFinalAppendRecoversAsOneCorruptLine) {
  const std::string dir = fresh_dir("torn");
  {
    ArmedPlan armed("tear-cache-append=3");
    ResultCache cache(dir);
    cache.store(1, sample_record(1));
    cache.store(2, sample_record(2));
    cache.store(3, sample_record(3));  // torn mid-record: the "crash"
    cache.store(4, sample_record(4));  // post-crash appends never land
  }
  ResultCache recovered(dir);
  EXPECT_EQ(recovered.size(), 2u);
  EXPECT_EQ(recovered.corrupt_lines(), 1u);  // exactly the torn tail
  EXPECT_TRUE(recovered.lookup(1).has_value());
  EXPECT_TRUE(recovered.lookup(2).has_value());
  EXPECT_FALSE(recovered.lookup(3).has_value());
  EXPECT_FALSE(recovered.lookup(4).has_value());
}

TEST(CacheRobustness, StaleCompactionTempIsSweptOnAttach) {
  const std::string dir = fresh_dir("stale_tmp");
  {
    ResultCache cache(dir);
    cache.store(7, sample_record(7));
  }
  const auto tmp =
      std::filesystem::path(dir) / "results.jsonl.compact.tmp";
  {
    std::ofstream orphan(tmp);
    orphan << "half-written compaction\n";
  }
  ASSERT_TRUE(std::filesystem::exists(tmp));
  ResultCache reopened(dir);  // attach sweeps the crashed compaction
  EXPECT_FALSE(std::filesystem::exists(tmp));
  EXPECT_TRUE(reopened.lookup(7).has_value());
}

TEST(CacheRobustness, ReplaceFileCopyFallbackSubstitutesForRename) {
  const std::string dir = fresh_dir("replace");
  std::filesystem::create_directories(dir);
  const std::string from = (std::filesystem::path(dir) / "from.txt").string();
  const std::string to = (std::filesystem::path(dir) / "to.txt").string();
  {
    std::ofstream f(from);
    f << "payload\n";
  }
  {
    std::ofstream t(to);
    t << "old contents\n";
  }
  detail::replace_file(from, to, /*force_copy=*/true);
  EXPECT_FALSE(std::filesystem::exists(from));
  std::ifstream result(to);
  std::string line;
  ASSERT_TRUE(std::getline(result, line));
  EXPECT_EQ(line, "payload");

  EXPECT_THROW(
      detail::replace_file((std::filesystem::path(dir) / "absent").string(),
                           to, /*force_copy=*/true),
      Error);
}

}  // namespace
}  // namespace iddq::core
