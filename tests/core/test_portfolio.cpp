#include "core/portfolio.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/optimizer_registry.hpp"
#include "netlist/gen/random_dag.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace iddq::core {
namespace {

struct Fixture {
  netlist::Netlist nl = netlist::gen::make_random_dag(
      netlist::gen::DagProfile::basic("pf", 150, 10, 6));
  lib::CellLibrary library = lib::default_library();
  part::EvalContext ctx{nl, library, elec::SensorSpec{},
                        part::CostWeights{}};
};

OptimizerConfig quick_config() {
  OptimizerConfig cfg;
  cfg.es.mu = 3;
  cfg.es.lambda = 3;
  cfg.es.chi = 1;
  cfg.es.max_generations = 6;
  cfg.es.stall_generations = 3;
  cfg.sa.steps = 300;
  cfg.random_samples = 60;
  cfg.tabu.iterations = 40;
  return cfg;
}

OptimizerRequest request_for(const Fixture& f, std::uint64_t seed,
                             std::size_t budget = 0) {
  OptimizerRequest request;
  request.ctx = &f.ctx;
  request.module_count = 3;
  request.seed = seed;
  request.max_evaluations = budget;
  return request;
}

TEST(Portfolio, SpecParsingAndNormalization) {
  const auto opt = OptimizerRegistry::global().make(
      "portfolio:evolution,annealing", quick_config());
  ASSERT_NE(opt, nullptr);
  EXPECT_EQ(opt->name(), "portfolio:evolution,annealing");

  const auto composed = OptimizerRegistry::global().make(
      " portfolio: evolution + greedy , random ", quick_config());
  EXPECT_EQ(composed->name(), "portfolio:evolution+greedy,random");
}

TEST(Portfolio, RejectsBadSpecs) {
  auto& reg = OptimizerRegistry::global();
  EXPECT_THROW((void)reg.make("portfolio:"), LookupError);
  EXPECT_THROW((void)reg.make("portfolio:evolution,,random"), LookupError);
  EXPECT_THROW((void)reg.make("portfolio:bogus"), LookupError);
  EXPECT_THROW((void)reg.make("portfolio:evolution,portfolio:random"),
               Error);
}

TEST(Portfolio, DeterministicAtFixedSeed) {
  Fixture f;
  const auto opt = OptimizerRegistry::global().make(
      "portfolio:evolution,annealing", quick_config());
  const auto a = opt->run(request_for(f, 42));
  const auto b = opt->run(request_for(f, 42));
  EXPECT_EQ(a.partition, b.partition);
  EXPECT_EQ(a.fitness.cost, b.fitness.cost);
  EXPECT_EQ(a.fitness.violation, b.fitness.violation);
  EXPECT_EQ(a.evaluations, b.evaluations);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.method, "portfolio:evolution,annealing");
}

TEST(Portfolio, WinnerIsBestMemberAtDerivedSeeds) {
  Fixture f;
  const auto cfg = quick_config();
  const std::vector<std::string> members{"annealing", "random"};
  const auto portfolio = OptimizerRegistry::global().make(
      "portfolio:annealing,random", cfg);
  const auto outcome = portfolio->run(request_for(f, 42));

  part::Fitness best_member;
  std::size_t total_evaluations = 0;
  for (std::size_t i = 0; i < members.size(); ++i) {
    const auto member = OptimizerRegistry::global().make(members[i], cfg);
    auto request = request_for(f, 42);
    request.seed = Rng::mix_seed(42, i);
    const auto result = member->run(request);
    total_evaluations += result.evaluations;
    if (i == 0 || result.fitness < best_member) best_member = result.fitness;
  }
  EXPECT_EQ(outcome.fitness.cost, best_member.cost);
  EXPECT_EQ(outcome.fitness.violation, best_member.violation);
  EXPECT_EQ(outcome.evaluations, total_evaluations);
}

TEST(Portfolio, SharesTheEvaluationBudget) {
  Fixture f;
  const auto portfolio = OptimizerRegistry::global().make(
      "portfolio:annealing,random,greedy", quick_config());
  const auto outcome = portfolio->run(request_for(f, 7, 300));
  // Every member maps its share onto its own budget knob; the annealer
  // additionally spends one evaluation on the start partition.
  EXPECT_LE(outcome.evaluations, 300u + 3u);
  EXPECT_GT(outcome.evaluations, 0u);
}

TEST(Portfolio, TinyBudgetNeverFallsBackToMemberDefaults) {
  Fixture f;
  const auto portfolio = OptimizerRegistry::global().make(
      "portfolio:annealing,random,greedy", quick_config());
  // A budget smaller than the member count must clamp shares to 1, not
  // drop to 0 (which the adapters read as "use the configured default").
  const auto outcome = portfolio->run(request_for(f, 7, 2));
  EXPECT_LE(outcome.evaluations, 6u);  // <= share + 1 per member
  EXPECT_GT(outcome.evaluations, 0u);
}

TEST(Portfolio, WorksThroughBatchAndFlowSpecs) {
  // The full spec must be usable anywhere a method name is: validate via
  // the registry round-trip used by the CLI.
  EXPECT_NO_THROW(
      (void)OptimizerRegistry::global().make("portfolio:force,standard"));
}

}  // namespace
}  // namespace iddq::core
