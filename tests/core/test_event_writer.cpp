// Backpressure-policy unit tests for SessionEventWriter (the non-blocking
// event path of a protocol session): overflow drops oldest progress ticks
// only, never drops or reorders must-deliver lines; a must-deliver
// overflow disconnects with the protocol error line; queue_stats counters
// match the injected load exactly.
#include "core/event_writer.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "support/transport.hpp"

namespace iddq::core {
namespace {

using support::LineChannel;

constexpr auto kDroppable = EventDeliveryClass::droppable;
constexpr auto kMust = EventDeliveryClass::must_deliver;

/// A channel whose writes block until the test opens the gate — the
/// deterministic stand-in for a client that stopped reading its socket.
class GatedChannel final : public LineChannel {
 public:
  bool read_line(std::string&) override { return false; }

  bool write_line(std::string_view line) override {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return open_ || shut_; });
    if (shut_) return false;
    lines_.emplace_back(line);
    return true;
  }

  void shutdown_write() override {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      shut_ = true;
    }
    cv_.notify_all();
  }

  void open() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      open_ = true;
    }
    cv_.notify_all();
  }

  std::vector<std::string> lines() {
    const std::lock_guard<std::mutex> lock(mutex_);
    return lines_;
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  bool open_ = false;
  bool shut_ = false;
  std::vector<std::string> lines_;
};

/// Posts a sentinel and waits until the writer thread has popped it (and
/// is blocked writing it through the closed gate). From here on the queue
/// fills without the writer consuming, so overflow tests are exact.
void park_writer(SessionEventWriter& writer) {
  ASSERT_TRUE(writer.post("sentinel", kMust));
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (writer.stats().depth > 0) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "writer thread never picked up the sentinel";
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

TEST(EventWriter, DropsOldestProgressNeverRows) {
  GatedChannel channel;
  bool disconnect_fired = false;
  {
    SessionEventWriter writer(
        channel, 4, [&] { disconnect_fired = true; }, "overflow");
    park_writer(writer);

    ASSERT_TRUE(writer.post("p1", kDroppable));
    ASSERT_TRUE(writer.post("p2", kDroppable));
    ASSERT_TRUE(writer.post("r1", kMust));
    ASSERT_TRUE(writer.post("r2", kMust));
    // Full. A new tick reclaims the oldest tick (p1)...
    ASSERT_TRUE(writer.post("p3", kDroppable));
    // ...and a must-deliver line reclaims the next-oldest tick (p2).
    ASSERT_TRUE(writer.post("r3", kMust));
    EXPECT_FALSE(writer.disconnected());

    channel.open();
    writer.flush();
  }
  EXPECT_FALSE(disconnect_fired);
  // Survivors in original relative order; no row dropped or reordered.
  EXPECT_EQ(channel.lines(),
            (std::vector<std::string>{"sentinel", "r1", "r2", "p3", "r3"}));
}

TEST(EventWriter, IncomingTickShedWhenQueueIsAllMustDeliver) {
  GatedChannel channel;
  SessionEventWriter writer(channel, 2, nullptr, "overflow");
  park_writer(writer);

  ASSERT_TRUE(writer.post("r1", kMust));
  ASSERT_TRUE(writer.post("r2", kMust));
  // No queued tick to reclaim: the incoming tick itself is shed, and
  // that still counts as delivered-enough (post succeeds).
  ASSERT_TRUE(writer.post("p1", kDroppable));
  EXPECT_EQ(writer.stats().dropped_progress, 1u);
  EXPECT_FALSE(writer.disconnected());

  channel.open();
  writer.flush();
  EXPECT_EQ(channel.lines(),
            (std::vector<std::string>{"sentinel", "r1", "r2"}));
}

TEST(EventWriter, MustDeliverOverflowDisconnectsWithError) {
  GatedChannel channel;
  int disconnects = 0;
  {
    SessionEventWriter writer(
        channel, 2, [&] { ++disconnects; }, "overflow-error");
    park_writer(writer);

    ASSERT_TRUE(writer.post("r1", kMust));
    ASSERT_TRUE(writer.post("r2", kMust));
    // A third must-deliver line has nowhere to go: policy disconnect.
    EXPECT_FALSE(writer.post("r3", kMust));
    EXPECT_TRUE(writer.disconnected());
    EXPECT_EQ(disconnects, 1);
    EXPECT_TRUE(writer.stats().disconnected);

    // Everything after the disconnect is rejected, whatever its class.
    EXPECT_FALSE(writer.post("r4", kMust));
    EXPECT_FALSE(writer.post("p1", kDroppable));
    EXPECT_EQ(disconnects, 1) << "the hook must fire exactly once";

    channel.open();
    writer.flush();
  }
  // The queued-but-undelivered lines are gone; the client's last line is
  // the protocol error explaining why.
  EXPECT_EQ(channel.lines(),
            (std::vector<std::string>{"sentinel", "overflow-error"}));
}

TEST(EventWriter, UnboundedNeverDropsOrDisconnects) {
  GatedChannel channel;
  std::vector<std::string> want{"sentinel"};
  {
    SessionEventWriter writer(channel, 0, nullptr, "overflow");
    park_writer(writer);
    for (int i = 0; i < 200; ++i) {
      const std::string line =
          (i % 2 == 0 ? "p" : "r") + std::to_string(i);
      ASSERT_TRUE(
          writer.post(line, i % 2 == 0 ? kDroppable : kMust));
      want.push_back(line);
    }
    const auto stats = writer.stats();
    EXPECT_EQ(stats.dropped_progress, 0u);
    EXPECT_FALSE(stats.disconnected);
    channel.open();
    writer.flush();
  }
  EXPECT_EQ(channel.lines(), want);
}

TEST(EventWriter, QueueStatsMatchInjectedLoadExactly) {
  GatedChannel channel;
  SessionEventWriter writer(channel, 3, nullptr, "overflow");
  park_writer(writer);

  for (int i = 0; i < 3; ++i)
    ASSERT_TRUE(writer.post("r" + std::to_string(i), kMust));
  // Queue full of must-deliver lines: each of these ticks sheds itself.
  for (int i = 0; i < 5; ++i)
    ASSERT_TRUE(writer.post("p" + std::to_string(i), kDroppable));

  const auto stats = writer.stats();
  EXPECT_EQ(stats.depth, 3u);
  EXPECT_EQ(stats.depth_high_water, 3u);
  EXPECT_EQ(stats.enqueued, 4u);  // sentinel + r0..r2; shed ticks excluded
  EXPECT_EQ(stats.dropped_progress, 5u);
  EXPECT_FALSE(stats.disconnected);

  channel.open();
  writer.flush();
  const auto drained = writer.stats();
  EXPECT_EQ(drained.depth, 0u);
  EXPECT_EQ(drained.depth_high_water, 3u);
  EXPECT_EQ(channel.lines().size(), 4u);
}

TEST(EventWriter, PeerGoneRejectsPostsAndUnblocksFlush) {
  // A channel that refuses every write — the peer hung up.
  class DeadChannel final : public LineChannel {
   public:
    bool read_line(std::string&) override { return false; }
    bool write_line(std::string_view) override { return false; }
  } channel;

  SessionEventWriter writer(channel, 0, nullptr, "overflow");
  (void)writer.post("r1", kMust);
  writer.flush();  // must return: the peer is gone, nothing will drain
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (!writer.peer_gone()) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_FALSE(writer.post("r2", kMust));
  EXPECT_FALSE(writer.disconnected()) << "hang-up is not a policy disconnect";
}

TEST(EventWriter, StreamChannelRoundTripKeepsOrder) {
  // The writer over the same StreamChannel the pipe-mode server uses:
  // everything posted before flush() is on the stream, in order.
  std::istringstream in;
  std::ostringstream out;
  support::StreamChannel channel(in, out);
  {
    SessionEventWriter writer(channel, 1024, nullptr, "overflow");
    for (int i = 0; i < 50; ++i)
      ASSERT_TRUE(writer.post("line" + std::to_string(i), kMust));
    writer.flush();
    EXPECT_EQ(writer.stats().dropped_progress, 0u);
  }
  std::istringstream lines(out.str());
  std::string line;
  int i = 0;
  while (std::getline(lines, line))
    EXPECT_EQ(line, "line" + std::to_string(i++));
  EXPECT_EQ(i, 50);
}

}  // namespace
}  // namespace iddq::core
