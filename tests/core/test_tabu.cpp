#include "core/tabu.hpp"

#include <gtest/gtest.h>

#include "core/optimizer_registry.hpp"
#include "core/start_partition.hpp"
#include "netlist/gen/random_dag.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace iddq::core {
namespace {

struct Fixture {
  netlist::Netlist nl = netlist::gen::make_random_dag(
      netlist::gen::DagProfile::basic("tabu", 180, 12, 4));
  lib::CellLibrary library = lib::default_library();
  part::EvalContext ctx{nl, library, elec::SensorSpec{},
                        part::CostWeights{}};

  part::Partition start() {
    Rng rng(2);
    return make_start_partition(nl, 3, rng);
  }
};

TEST(Tabu, ImprovesOverStart) {
  Fixture f;
  part::PartitionEvaluator start_eval(f.ctx, f.start());
  const double start_cost = start_eval.fitness().cost;
  TabuParams params;
  params.iterations = 150;
  params.seed = 7;
  const auto result = tabu_search(f.ctx, f.start(), params);
  EXPECT_LE(result.best_fitness.cost, start_cost);
  EXPECT_GT(result.evaluations, 1u);
}

TEST(Tabu, KeepsModuleCountFixed) {
  Fixture f;
  TabuParams params;
  params.iterations = 100;
  params.seed = 3;
  const auto result = tabu_search(f.ctx, f.start(), params);
  EXPECT_EQ(result.best_partition.module_count(), 3u);
  EXPECT_TRUE(result.best_partition.covers(f.nl));
}

TEST(Tabu, DeterministicForSeed) {
  Fixture f;
  TabuParams params;
  params.iterations = 120;
  params.seed = 11;
  const auto a = tabu_search(f.ctx, f.start(), params);
  const auto b = tabu_search(f.ctx, f.start(), params);
  EXPECT_EQ(a.best_fitness.cost, b.best_fitness.cost);
  EXPECT_EQ(a.best_partition, b.best_partition);
  EXPECT_EQ(a.evaluations, b.evaluations);
  EXPECT_EQ(a.iterations, b.iterations);
}

TEST(Tabu, OnRoundTicksLiveWithoutChangingTheRun) {
  Fixture f;
  TabuParams params;
  params.iterations = 120;
  params.seed = 11;
  const auto expected = tabu_search(f.ctx, f.start(), params);

  params.progress_every = 25;
  std::size_t ticks = 0;
  std::size_t last_round = 0;
  params.on_round = [&](std::size_t round, std::size_t evaluations,
                        const part::Fitness& best) {
    ++ticks;
    EXPECT_GT(round, last_round);
    EXPECT_GT(evaluations, 0u);
    EXPECT_TRUE(best.cost == best.cost);  // populated (not NaN)
    last_round = round;
  };
  const auto observed = tabu_search(f.ctx, f.start(), params);

  EXPECT_EQ(ticks, (params.iterations - 1) / params.progress_every);
  EXPECT_EQ(observed.best_fitness.cost, expected.best_fitness.cost);
  EXPECT_EQ(observed.best_partition, expected.best_partition);
  EXPECT_EQ(observed.evaluations, expected.evaluations);
  EXPECT_EQ(observed.iterations, expected.iterations);
}

TEST(Tabu, BestCostsMatchReEvaluation) {
  Fixture f;
  TabuParams params;
  params.iterations = 80;
  params.seed = 5;
  const auto result = tabu_search(f.ctx, f.start(), params);
  part::PartitionEvaluator check(f.ctx, result.best_partition);
  EXPECT_NEAR(check.fitness().cost, result.best_fitness.cost,
              1e-9 * result.best_fitness.cost);
}

TEST(Tabu, RejectsBadParams) {
  Fixture f;
  TabuParams params;
  params.iterations = 0;
  EXPECT_THROW((void)tabu_search(f.ctx, f.start(), params), Error);
  params = TabuParams{};
  params.candidates = 0;
  EXPECT_THROW((void)tabu_search(f.ctx, f.start(), params), Error);
}

TEST(Tabu, RegistryAdapterMatchesDirectCall) {
  Fixture f;
  OptimizerConfig config;
  config.tabu.iterations = 90;

  const auto optimizer = OptimizerRegistry::global().make("tabu", config);
  OptimizerRequest request;
  request.ctx = &f.ctx;
  request.start = f.start();
  request.seed = 17;
  const auto outcome = optimizer->run(request);

  TabuParams params = config.tabu;
  params.seed = 17;
  const auto direct = tabu_search(f.ctx, f.start(), params);
  EXPECT_EQ(outcome.partition, direct.best_partition);
  EXPECT_EQ(outcome.fitness.cost, direct.best_fitness.cost);
  EXPECT_EQ(outcome.evaluations, direct.evaluations);
  EXPECT_EQ(outcome.method, "tabu");
}

TEST(Tabu, BudgetBoundsEvaluations) {
  Fixture f;
  OptimizerConfig config;
  const auto optimizer = OptimizerRegistry::global().make("tabu", config);
  OptimizerRequest request;
  request.ctx = &f.ctx;
  request.start = f.start();
  request.seed = 17;
  request.max_evaluations = 200;
  const auto outcome = optimizer->run(request);
  // rounds = budget / candidates; each round spends at most `candidates`
  // evaluations, plus one for the start evaluation.
  EXPECT_LE(outcome.evaluations, 200u + 1u);
}

}  // namespace
}  // namespace iddq::core
