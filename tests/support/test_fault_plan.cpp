// FaultPlan tests: spec-grammar parsing (arity and range errors throw),
// substring/'*' channel matching, refusal budgets, torn-prefix
// determinism and strictness, arm/disarm lifecycle, and — in the
// Transport suite so the tsan CI leg covers them — the drop-after and
// refuse-connect hooks observed end to end through a real TCP listener.
#include "support/fault_plan.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "support/error.hpp"
#include "support/transport.hpp"

namespace iddq::support {
namespace {

TEST(FaultPlan, ParsesEveryDirectiveKind) {
  const FaultPlan plan = FaultPlan::parse(
      "drop-after=accept@4;stall-write=connect:10.0.0.7@3@250;"
      "refuse-connect=*@2;tear-cache-append=5;seed=99");
  EXPECT_EQ(plan.seed(), 99u);

  const auto accepted = plan.channel_faults("accept:127.0.0.1:9000");
  EXPECT_EQ(accepted.drop_after_lines, 4u);
  EXPECT_EQ(accepted.stall_line, 0u);  // stall rule matches connect: only

  const auto connected = plan.channel_faults("connect:10.0.0.7:9000");
  EXPECT_EQ(connected.drop_after_lines, 0u);
  EXPECT_EQ(connected.stall_line, 3u);
  EXPECT_EQ(connected.stall_ms, 250u);

  EXPECT_EQ(plan.cache_append_fate(), FaultPlan::AppendFate::kWrite);
}

TEST(FaultPlan, EmptySpecAndBlankDirectivesAreNoFaults) {
  const FaultPlan empty = FaultPlan::parse("");
  EXPECT_EQ(empty.channel_faults("accept:x").drop_after_lines, 0u);
  EXPECT_FALSE(empty.refuse_connect("anything"));
  // Trailing/duplicated separators are tolerated (shell-assembled specs).
  (void)FaultPlan::parse("drop-after=*@1;;");
}

TEST(FaultPlan, MalformedSpecsThrowLoudly) {
  EXPECT_THROW((void)FaultPlan::parse("drop-after=*"), Error);  // arity
  EXPECT_THROW((void)FaultPlan::parse("drop-after=*@x"), Error);
  EXPECT_THROW((void)FaultPlan::parse("stall-write=*@1"), Error);
  EXPECT_THROW((void)FaultPlan::parse("refuse-connect=*@1@2"), Error);
  EXPECT_THROW((void)FaultPlan::parse("tear-cache-append=0"), Error);
  EXPECT_THROW((void)FaultPlan::parse("no-such-fault=*@1"), Error);
  EXPECT_THROW((void)FaultPlan::parse("seed="), Error);
  EXPECT_THROW((void)FaultPlan::parse("just-words"), Error);
}

TEST(FaultPlan, StarMatchesEverythingSubstringMatchesSome) {
  const FaultPlan plan =
      FaultPlan::parse("drop-after=*@7;stall-write=9001@2@10");
  EXPECT_EQ(plan.channel_faults("accept:/tmp/a.sock").drop_after_lines, 7u);
  EXPECT_EQ(plan.channel_faults("connect:h:9001").drop_after_lines, 7u);
  EXPECT_EQ(plan.channel_faults("connect:h:9001").stall_line, 2u);
  EXPECT_EQ(plan.channel_faults("connect:h:9002").stall_line, 0u);
}

TEST(FaultPlan, RefusalBudgetCountsDownThenAdmits) {
  const FaultPlan plan = FaultPlan::parse("refuse-connect=victim@3");
  for (int i = 0; i < 3; ++i)
    EXPECT_TRUE(plan.refuse_connect("victim:9000")) << i;
  EXPECT_FALSE(plan.refuse_connect("victim:9000"));  // budget exhausted
  EXPECT_FALSE(plan.refuse_connect("other:9000"));   // never matched
}

TEST(FaultPlan, CacheAppendFateTearsOnceThenDropsForever) {
  const FaultPlan plan = FaultPlan::parse("tear-cache-append=2");
  EXPECT_EQ(plan.cache_append_fate(), FaultPlan::AppendFate::kWrite);
  EXPECT_EQ(plan.cache_append_fate(), FaultPlan::AppendFate::kTear);
  // The "process" died mid-append #2: nothing later reaches the disk.
  EXPECT_EQ(plan.cache_append_fate(), FaultPlan::AppendFate::kDrop);
  EXPECT_EQ(plan.cache_append_fate(), FaultPlan::AppendFate::kDrop);
}

TEST(FaultPlan, TornPrefixIsStrictDeterministicAndSeedSensitive) {
  const FaultPlan plan = FaultPlan::parse("tear-cache-append=1;seed=5");
  const std::string line = R"({"key":"abc","value":42})";
  const std::string torn = plan.torn_prefix(line);
  ASSERT_FALSE(torn.empty());
  EXPECT_LT(torn.size(), line.size());  // strict prefix: never whole
  EXPECT_EQ(line.substr(0, torn.size()), torn);
  EXPECT_EQ(plan.torn_prefix(line), torn);  // same plan, same cut

  const FaultPlan reseeded =
      FaultPlan::parse("tear-cache-append=1;seed=1234567");
  // Not guaranteed different for every (line, seed) pair, but for this
  // one it is — and determinism per seed is what the contract promises.
  EXPECT_EQ(reseeded.torn_prefix(line), reseeded.torn_prefix(line));

  EXPECT_TRUE(plan.torn_prefix("x").empty());  // too short to tear
  EXPECT_TRUE(plan.torn_prefix("").empty());
}

TEST(FaultPlan, ArmForTestActivatesAndDisarmClears) {
  FaultPlan::disarm_for_test();
  EXPECT_EQ(FaultPlan::active(), nullptr);
  FaultPlan::arm_for_test("drop-after=tagged@1");
  const FaultPlan* active = FaultPlan::active();
  ASSERT_NE(active, nullptr);
  EXPECT_EQ(active->channel_faults("accept:tagged").drop_after_lines, 1u);
  FaultPlan::disarm_for_test();
  EXPECT_EQ(FaultPlan::active(), nullptr);
}

/// RAII disarm so a failing transport assertion can't leak an armed plan
/// into the rest of the binary.
struct ArmedPlan {
  explicit ArmedPlan(std::string_view spec) { FaultPlan::arm_for_test(spec); }
  ~ArmedPlan() { FaultPlan::disarm_for_test(); }
};

TEST(Transport, FaultPlanDropsAcceptedChannelAfterNLines) {
  TcpSocketListener listener("127.0.0.1", 0);
  const ArmedPlan armed("drop-after=accept:" + listener.endpoint() + "@3");

  std::thread server([&] {
    const auto conn = listener.accept();
    ASSERT_NE(conn, nullptr);
    // Lines 1..3 deliver; line 4 crosses the budget — the plan severs the
    // connection instead and every later write stays dead.
    for (int i = 1; i <= 3; ++i)
      EXPECT_TRUE(conn->write_line("line" + std::to_string(i))) << i;
    EXPECT_FALSE(conn->write_line("line4"));
    EXPECT_FALSE(conn->write_line("line5"));
  });

  const auto client = connect_tcp("127.0.0.1", listener.port());
  std::vector<std::string> got;
  std::string line;
  while (client->read_line(line)) got.push_back(line);  // ends at the drop
  server.join();
  EXPECT_EQ(got, (std::vector<std::string>{"line1", "line2", "line3"}));
}

TEST(Transport, FaultPlanRefusesFirstKConnectsThenAdmits) {
  TcpSocketListener listener("127.0.0.1", 0);
  const std::string endpoint = listener.endpoint();
  const ArmedPlan armed("refuse-connect=" + endpoint + "@2");

  std::thread server([&] {
    const auto conn = listener.accept();  // only the 3rd attempt arrives
    ASSERT_NE(conn, nullptr);
    ASSERT_TRUE(conn->write_line("welcome"));
  });

  for (int i = 0; i < 2; ++i)
    EXPECT_THROW((void)connect_tcp("127.0.0.1", listener.port()), Error) << i;
  const auto client = connect_tcp("127.0.0.1", listener.port());
  std::string line;
  ASSERT_TRUE(client->read_line(line));
  EXPECT_EQ(line, "welcome");
  server.join();
}

}  // namespace
}  // namespace iddq::support
