// TCP transport + endpoint-parsing tests: loopback roundtrip over
// TcpSocketListener/connect_tcp, ephemeral-port readback, clean errors on
// refused connections, EOF (not a hang) on mid-stream disconnect, and the
// host:port vs unix-path dispatch rule of parse_host_port.
#include "support/transport.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "support/error.hpp"

namespace iddq::support {
namespace {

TEST(Transport, ParseHostPortAcceptsOnlyValidPorts) {
  const auto hp = parse_host_port("127.0.0.1:8080");
  ASSERT_TRUE(hp.has_value());
  EXPECT_EQ(hp->first, "127.0.0.1");
  EXPECT_EQ(hp->second, 8080);

  const auto named = parse_host_port("sweep-host.example:65535");
  ASSERT_TRUE(named.has_value());
  EXPECT_EQ(named->first, "sweep-host.example");
  EXPECT_EQ(named->second, 65535);

  // Everything below must read as a unix socket path, not TCP.
  EXPECT_FALSE(parse_host_port("/tmp/iddq.sock").has_value());
  EXPECT_FALSE(parse_host_port("relative/path.sock").has_value());
  EXPECT_FALSE(parse_host_port("host:").has_value());
  EXPECT_FALSE(parse_host_port(":8080").has_value());
  EXPECT_FALSE(parse_host_port("host:0").has_value());
  EXPECT_FALSE(parse_host_port("host:65536").has_value());
  EXPECT_FALSE(parse_host_port("host:12ab").has_value());
  EXPECT_FALSE(parse_host_port("host:-1").has_value());
  EXPECT_FALSE(parse_host_port("").has_value());
  // Only the LAST ':' counts, so a path with a colon elsewhere still
  // parses as host:port when the suffix is numeric...
  const auto odd = parse_host_port("a:b:90");
  ASSERT_TRUE(odd.has_value());
  EXPECT_EQ(odd->first, "a:b");
  EXPECT_EQ(odd->second, 90);
}

TEST(Transport, TcpLoopbackRoundTrip) {
  // Port 0: the kernel picks; port() must report the real one.
  TcpSocketListener listener("127.0.0.1", 0);
  ASSERT_GT(listener.port(), 0);
  EXPECT_EQ(listener.endpoint(),
            "127.0.0.1:" + std::to_string(listener.port()));

  std::vector<std::string> server_saw;
  std::thread server([&] {
    const auto conn = listener.accept();
    ASSERT_NE(conn, nullptr);
    std::string line;
    while (conn->read_line(line)) {
      server_saw.push_back(line);
      ASSERT_TRUE(conn->write_line("echo:" + line));
    }
  });

  const auto client = connect_tcp("127.0.0.1", listener.port());
  std::string reply;
  for (const std::string msg : {"one", "two", R"({"op":"stats"})"}) {
    ASSERT_TRUE(client->write_line(msg));
    ASSERT_TRUE(client->read_line(reply));
    EXPECT_EQ(reply, "echo:" + msg);
  }
  client->shutdown_write();  // EOF to the server; its read loop ends
  server.join();
  EXPECT_EQ(server_saw,
            (std::vector<std::string>{"one", "two", R"({"op":"stats"})"}));
}

TEST(Transport, ConnectRefusedThrowsCleanly) {
  // Bind-then-close guarantees a port nothing is listening on.
  std::uint16_t dead_port = 0;
  {
    TcpSocketListener listener("127.0.0.1", 0);
    dead_port = listener.port();
  }
  EXPECT_THROW((void)connect_tcp("127.0.0.1", dead_port), Error);
  EXPECT_THROW((void)connect_tcp("127.0.0.1", 0), Error);
}

TEST(Transport, MidStreamDisconnectIsEofNotHang) {
  TcpSocketListener listener("127.0.0.1", 0);
  std::thread server([&] {
    const auto conn = listener.accept();
    ASSERT_NE(conn, nullptr);
    ASSERT_TRUE(conn->write_line("partial"));
    // Drop the connection mid-stream (conn goes out of scope: close).
  });

  const auto client = connect_tcp("127.0.0.1", listener.port());
  std::string line;
  ASSERT_TRUE(client->read_line(line));
  EXPECT_EQ(line, "partial");
  // The peer is gone: reads must return false promptly, not block.
  EXPECT_FALSE(client->read_line(line));
  server.join();
}

TEST(Transport, ListenerCloseUnblocksAccept) {
  TcpSocketListener listener("127.0.0.1", 0);
  std::thread blocked([&] { EXPECT_EQ(listener.accept(), nullptr); });
  // Give accept() a moment to actually block, then close under it.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  listener.close();
  blocked.join();
}

TEST(Transport, ShutdownReadAbortsBlockedPeerRead) {
  TcpSocketListener listener("127.0.0.1", 0);
  std::unique_ptr<FdChannel> server_side;
  std::thread server([&] { server_side = listener.accept(); });
  const auto client = connect_tcp("127.0.0.1", listener.port());
  server.join();
  ASSERT_NE(server_side, nullptr);

  std::thread reader([&] {
    std::string line;
    EXPECT_FALSE(client->read_line(line));  // unblocked by shutdown_read
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  client->shutdown_read();
  reader.join();
}

}  // namespace
}  // namespace iddq::support
