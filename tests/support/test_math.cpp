#include "support/math.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "support/error.hpp"

namespace iddq::math {
namespace {

TEST(Math, MeanAndStddev) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(mean(xs), 5.0);
  EXPECT_NEAR(stddev(xs), 2.138, 1e-3);  // sample stddev
}

TEST(Math, StddevOfSingleValueIsZero) {
  const std::vector<double> xs{3.0};
  EXPECT_DOUBLE_EQ(stddev(xs), 0.0);
}

TEST(Math, MinMax) {
  const std::vector<double> xs{3.0, -1.0, 7.5};
  EXPECT_DOUBLE_EQ(min(xs), -1.0);
  EXPECT_DOUBLE_EQ(max(xs), 7.5);
}

TEST(Math, PercentileEndpointsAndMedian) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 2.5);
}

TEST(Math, PercentileUnsortedInput) {
  const std::vector<double> xs{9.0, 1.0, 5.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 5.0);
}

TEST(Math, LinearFitRecoversLine) {
  const std::vector<double> xs{0.0, 1.0, 2.0, 3.0};
  const std::vector<double> ys{1.0, 3.0, 5.0, 7.0};
  const auto [a, b] = linear_fit(xs, ys);
  EXPECT_NEAR(a, 1.0, 1e-12);
  EXPECT_NEAR(b, 2.0, 1e-12);
}

TEST(Math, LinearFitWithNoise) {
  const std::vector<double> xs{0.0, 1.0, 2.0, 3.0, 4.0};
  const std::vector<double> ys{0.1, 0.9, 2.1, 2.9, 4.1};
  const auto [a, b] = linear_fit(xs, ys);
  EXPECT_NEAR(a, 0.0, 0.1);
  EXPECT_NEAR(b, 1.0, 0.05);
}

TEST(Math, Clamp) {
  EXPECT_DOUBLE_EQ(clamp(5.0, 0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(clamp(-5.0, 0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(clamp(0.5, 0.0, 1.0), 0.5);
}

TEST(Math, RelDiff) {
  EXPECT_DOUBLE_EQ(rel_diff(1.0, 1.0), 0.0);
  EXPECT_NEAR(rel_diff(1.0, 1.1), 0.1 / 1.1, 1e-12);
  EXPECT_DOUBLE_EQ(rel_diff(0.0, 0.0), 0.0);
}

TEST(Math, EmptyInputThrows) {
  const std::vector<double> empty;
  EXPECT_THROW((void)mean(empty), Error);
  EXPECT_THROW((void)min(empty), Error);
}

}  // namespace
}  // namespace iddq::math
