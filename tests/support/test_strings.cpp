#include "support/strings.hpp"

#include <gtest/gtest.h>

namespace iddq::str {
namespace {

TEST(Strings, TrimRemovesSurroundingWhitespace) {
  EXPECT_EQ(trim("  abc \t"), "abc");
  EXPECT_EQ(trim("abc"), "abc");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(Strings, SplitKeepsEmptyPieces) {
  const auto parts = split("a, b,, c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(Strings, SplitSingleToken) {
  const auto parts = split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(Strings, SplitWsDropsEmptyRuns) {
  const auto parts = split_ws("  a \t b\nc  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(Strings, SplitWsEmptyInput) {
  EXPECT_TRUE(split_ws("").empty());
  EXPECT_TRUE(split_ws("   ").empty());
}

TEST(Strings, CaseConversion) {
  EXPECT_EQ(to_lower("NaNd2"), "nand2");
  EXPECT_EQ(to_upper("NaNd2"), "NAND2");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(starts_with("INPUT(x)", "INPUT"));
  EXPECT_FALSE(starts_with("IN", "INPUT"));
}

TEST(Strings, ParseDoubleAcceptsValid) {
  double v = 0.0;
  EXPECT_TRUE(parse_double("3.25", v));
  EXPECT_DOUBLE_EQ(v, 3.25);
  EXPECT_TRUE(parse_double(" -1e3 ", v));
  EXPECT_DOUBLE_EQ(v, -1000.0);
}

TEST(Strings, ParseDoubleRejectsJunk) {
  double v = 0.0;
  EXPECT_FALSE(parse_double("", v));
  EXPECT_FALSE(parse_double("abc", v));
  EXPECT_FALSE(parse_double("1.5x", v));
}

TEST(Strings, ParseSizeAcceptsValid) {
  std::size_t v = 0;
  EXPECT_TRUE(parse_size("42", v));
  EXPECT_EQ(v, 42u);
}

TEST(Strings, ParseSizeRejectsNegativeAndJunk) {
  std::size_t v = 0;
  EXPECT_FALSE(parse_size("-1", v));
  EXPECT_FALSE(parse_size("12.5", v));
  EXPECT_FALSE(parse_size("", v));
}

TEST(Strings, FormatSig) {
  EXPECT_EQ(format_sig(1234.5678, 3), "1.23e+03");
  EXPECT_EQ(format_sig(1.0, 3), "1");
}

}  // namespace
}  // namespace iddq::str
