#include "support/bitset.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "support/rng.hpp"

namespace iddq {
namespace {

TEST(DynamicBitset, StartsEmpty) {
  DynamicBitset b(100);
  EXPECT_EQ(b.size(), 100u);
  EXPECT_EQ(b.count(), 0u);
  EXPECT_TRUE(b.none());
  EXPECT_EQ(b.find_first(), 100u);
  EXPECT_EQ(b.find_last(), 100u);
}

TEST(DynamicBitset, SetTestReset) {
  DynamicBitset b(70);
  b.set(0);
  b.set(63);
  b.set(64);
  b.set(69);
  EXPECT_TRUE(b.test(0));
  EXPECT_TRUE(b.test(63));
  EXPECT_TRUE(b.test(64));
  EXPECT_TRUE(b.test(69));
  EXPECT_FALSE(b.test(1));
  EXPECT_EQ(b.count(), 4u);
  b.reset(63);
  EXPECT_FALSE(b.test(63));
  EXPECT_EQ(b.count(), 3u);
}

TEST(DynamicBitset, FindFirstNextLast) {
  DynamicBitset b(200);
  b.set(5);
  b.set(64);
  b.set(130);
  EXPECT_EQ(b.find_first(), 5u);
  EXPECT_EQ(b.find_next(5), 64u);
  EXPECT_EQ(b.find_next(64), 130u);
  EXPECT_EQ(b.find_next(130), 200u);
  EXPECT_EQ(b.find_last(), 130u);
}

TEST(DynamicBitset, FindNextAtWordBoundary) {
  DynamicBitset b(128);
  b.set(63);
  b.set(64);
  EXPECT_EQ(b.find_next(62), 63u);
  EXPECT_EQ(b.find_next(63), 64u);
  EXPECT_EQ(b.find_next(64), 128u);
}

TEST(DynamicBitset, OrAssign) {
  DynamicBitset a(80);
  DynamicBitset b(80);
  a.set(3);
  b.set(70);
  a |= b;
  EXPECT_TRUE(a.test(3));
  EXPECT_TRUE(a.test(70));
  EXPECT_EQ(a.count(), 2u);
}

TEST(DynamicBitset, OrShiftedBasic) {
  DynamicBitset src(100);
  DynamicBitset dst(100);
  src.set(0);
  src.set(10);
  dst.or_shifted(src, 5);
  EXPECT_TRUE(dst.test(5));
  EXPECT_TRUE(dst.test(15));
  EXPECT_EQ(dst.count(), 2u);
}

TEST(DynamicBitset, OrShiftedAcrossWordBoundary) {
  DynamicBitset src(130);
  DynamicBitset dst(130);
  src.set(60);
  src.set(62);
  dst.or_shifted(src, 7);  // 67 and 69, crossing the first word
  EXPECT_TRUE(dst.test(67));
  EXPECT_TRUE(dst.test(69));
  EXPECT_EQ(dst.count(), 2u);
}

TEST(DynamicBitset, OrShiftedDropsBitsBeyondSize) {
  DynamicBitset src(64);
  DynamicBitset dst(64);
  src.set(60);
  dst.or_shifted(src, 10);  // 70 > 63: dropped
  EXPECT_TRUE(dst.none());
}

TEST(DynamicBitset, OrShiftedByWholeWords) {
  DynamicBitset src(256);
  DynamicBitset dst(256);
  src.set(1);
  dst.or_shifted(src, 128);
  EXPECT_TRUE(dst.test(129));
  EXPECT_EQ(dst.count(), 1u);
}

TEST(DynamicBitset, OrShiftedZeroShiftIsOr) {
  DynamicBitset src(40);
  DynamicBitset dst(40);
  src.set(8);
  dst.set(9);
  dst.or_shifted(src, 0);
  EXPECT_TRUE(dst.test(8));
  EXPECT_TRUE(dst.test(9));
}

TEST(DynamicBitset, ForEachVisitsInOrder) {
  DynamicBitset b(300);
  const std::vector<std::size_t> bits = {0, 1, 63, 64, 65, 200, 299};
  for (const auto i : bits) b.set(i);
  std::vector<std::size_t> seen;
  b.for_each([&](std::size_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, bits);
}

TEST(DynamicBitset, ClearKeepsSize) {
  DynamicBitset b(66);
  b.set(65);
  b.clear();
  EXPECT_EQ(b.size(), 66u);
  EXPECT_TRUE(b.none());
}

TEST(DynamicBitset, EqualityComparesContent) {
  DynamicBitset a(50);
  DynamicBitset b(50);
  EXPECT_EQ(a, b);
  a.set(17);
  EXPECT_NE(a, b);
  b.set(17);
  EXPECT_EQ(a, b);
}

TEST(DynamicBitset, OrShiftedMatchesNaiveReference) {
  Rng rng(42);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t size = 1 + rng.index(300);
    DynamicBitset src(size);
    std::vector<bool> ref(size, false);
    for (std::size_t i = 0; i < size; ++i)
      if (rng.chance(0.3)) src.set(i);
    const std::size_t shift = rng.index(size + 10);
    DynamicBitset dst(size);
    dst.or_shifted(src, shift);
    src.for_each([&](std::size_t i) {
      if (i + shift < size) ref[i + shift] = true;
    });
    for (std::size_t i = 0; i < size; ++i)
      ASSERT_EQ(dst.test(i), ref[i]) << "size=" << size << " shift=" << shift
                                     << " bit=" << i;
  }
}

TEST(DynamicBitset, CountMatchesForEach) {
  Rng rng(7);
  DynamicBitset b(500);
  for (std::size_t i = 0; i < 500; ++i)
    if (rng.chance(0.2)) b.set(i);
  std::size_t visited = 0;
  b.for_each([&](std::size_t) { ++visited; });
  EXPECT_EQ(visited, b.count());
}

}  // namespace
}  // namespace iddq
