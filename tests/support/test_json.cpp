#include "support/json.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <limits>
#include <string>

namespace iddq::json {
namespace {

TEST(Json, ParsesFlatProtocolObject) {
  const auto v = JsonValue::parse(
      R"({"op":"submit","id":"t1","seed":42,"cache":true,"budget":0})");
  ASSERT_TRUE(v.has_value());
  ASSERT_TRUE(v->is_object());
  EXPECT_EQ(v->get_string("op"), "submit");
  EXPECT_EQ(v->get_string("id"), "t1");
  EXPECT_EQ(v->get_u64("seed"), 42u);
  EXPECT_TRUE(v->get_bool("cache", false));
  EXPECT_EQ(v->get_u64("budget", 7), 0u);
  // Defaults for absent members.
  EXPECT_EQ(v->get_string("missing", "dflt"), "dflt");
  EXPECT_EQ(v->get_u64("missing", 9), 9u);
  EXPECT_FALSE(v->get_bool("missing", false));
}

TEST(Json, ParsesNestedArrays) {
  const auto v = JsonValue::parse(
      R"({"circuits":["c17","c1908"],"c":[1.5,-2,3e2],"deep":[[1],[2,3]]})");
  ASSERT_TRUE(v.has_value());
  const JsonValue* circuits = v->find("circuits");
  ASSERT_NE(circuits, nullptr);
  ASSERT_EQ(circuits->items().size(), 2u);
  EXPECT_EQ(circuits->items()[0].as_string(), "c17");
  const JsonValue* c = v->find("c");
  ASSERT_NE(c, nullptr);
  EXPECT_DOUBLE_EQ(c->items()[0].as_double(), 1.5);
  EXPECT_DOUBLE_EQ(c->items()[1].as_double(), -2.0);
  EXPECT_DOUBLE_EQ(c->items()[2].as_double(), 300.0);
  const JsonValue* deep = v->find("deep");
  ASSERT_NE(deep, nullptr);
  ASSERT_EQ(deep->items().size(), 2u);
  EXPECT_EQ(deep->items()[1].items().size(), 2u);
}

TEST(Json, U64RoundTripsWithoutDoubleLoss) {
  // 2^63 + 1 is not representable as a double; the raw token must
  // survive parse -> as_u64.
  const std::uint64_t big = (1ull << 63) + 1;
  std::string line = JsonWriter().field("seed", big).str();
  const auto v = JsonValue::parse(line);
  ASSERT_TRUE(v.has_value());
  std::uint64_t out = 0;
  ASSERT_TRUE(v->find("seed")->as_u64(out));
  EXPECT_EQ(out, big);
}

TEST(Json, DoublesRoundTripExactly) {
  const double awkward[] = {0.1, 1.0 / 3.0, 3307.1927303185653,
                            std::numeric_limits<double>::denorm_min(),
                            -1.2345678901234567e-300};
  for (const double d : awkward) {
    const std::string line = JsonWriter().field("x", d).str();
    const auto v = JsonValue::parse(line);
    ASSERT_TRUE(v.has_value()) << line;
    EXPECT_EQ(std::bit_cast<std::uint64_t>(v->get_double("x")),
              std::bit_cast<std::uint64_t>(d))
        << line;
  }
}

TEST(Json, EscapesRoundTrip) {
  const std::string nasty = "a\"b\\c\nd\te\x01" "f";
  const std::string line = JsonWriter().field("s", nasty).str();
  const auto v = JsonValue::parse(line);
  ASSERT_TRUE(v.has_value()) << line;
  EXPECT_EQ(v->get_string("s"), nasty);
}

TEST(Json, WriterComposesObjectsAndArrays) {
  JsonWriter arr(JsonWriter::Kind::Array);
  arr.element("a").element(std::uint64_t{2});
  const std::string line = JsonWriter()
                               .field("event", "row")
                               .field_raw("items", arr.str())
                               .field("ok", true)
                               .str();
  EXPECT_EQ(line, R"({"event":"row","items":["a",2],"ok":true})");
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_FALSE(JsonValue::parse("").has_value());
  EXPECT_FALSE(JsonValue::parse("{").has_value());
  EXPECT_FALSE(JsonValue::parse(R"({"a":})").has_value());
  EXPECT_FALSE(JsonValue::parse(R"({"a":1} trailing)").has_value());
  EXPECT_FALSE(JsonValue::parse(R"({"a":01x})").has_value());
  EXPECT_FALSE(JsonValue::parse(R"({"a":"unterminated)").has_value());
  EXPECT_FALSE(JsonValue::parse(R"([1,2,)").has_value());
  EXPECT_FALSE(JsonValue::parse("nul").has_value());
}

TEST(Json, ParsesScalarsAndNull) {
  EXPECT_TRUE(JsonValue::parse("null")->is_null());
  EXPECT_TRUE(JsonValue::parse("true")->as_bool());
  EXPECT_FALSE(JsonValue::parse("false")->as_bool());
  EXPECT_DOUBLE_EQ(JsonValue::parse("-12.5e-1")->as_double(), -1.25);
  EXPECT_TRUE(JsonValue::parse("  {}  ")->is_object());
  EXPECT_TRUE(JsonValue::parse("[]")->is_array());
}

}  // namespace
}  // namespace iddq::json
