#include "support/executor.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace iddq::support {
namespace {

TEST(Executor, RunsEveryIndexExactlyOnceIntoItsSlot) {
  ExecutorPool pool(4);
  EXPECT_EQ(pool.concurrency(), 4u);
  EXPECT_EQ(pool.worker_count(), 3u);

  std::vector<std::atomic<int>> hits(257);
  std::vector<std::size_t> slots(257, 0);
  pool.parallel_for_indexed(hits.size(), [&](std::size_t i) {
    hits[i].fetch_add(1);
    slots[i] = i * i;
  });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << i;
    EXPECT_EQ(slots[i], i * i) << i;
  }
}

TEST(Executor, SerialPoolAndNullPoolRunInline) {
  ExecutorPool serial(1);
  EXPECT_EQ(serial.worker_count(), 0u);
  const auto caller = std::this_thread::get_id();
  std::vector<std::thread::id> ran(8);
  serial.parallel_for_indexed(ran.size(), [&](std::size_t i) {
    ran[i] = std::this_thread::get_id();
  });
  for (const auto id : ran) EXPECT_EQ(id, caller);

  std::size_t sum = 0;
  parallel_for_indexed(nullptr, 5, [&](std::size_t i) { sum += i; });
  EXPECT_EQ(sum, 10u);
}

TEST(Executor, EmptyRangeIsANoOp) {
  ExecutorPool pool(2);
  bool ran = false;
  pool.parallel_for_indexed(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(Executor, FirstExceptionPropagatesAndSkipsUnstartedWork) {
  ExecutorPool pool(2);
  std::atomic<int> executed{0};
  EXPECT_THROW(
      pool.parallel_for_indexed(1000,
                                [&](std::size_t i) {
                                  if (i == 3)
                                    throw std::runtime_error("boom");
                                  executed.fetch_add(1);
                                }),
      std::runtime_error);
  // Unstarted indices were skipped once the exception landed; the pool
  // stays usable afterwards.
  EXPECT_LT(executed.load(), 1000);
  std::atomic<int> after{0};
  pool.parallel_for_indexed(16, [&](std::size_t) { after.fetch_add(1); });
  EXPECT_EQ(after.load(), 16);
}

TEST(Executor, NestedParallelForMakesProgress) {
  // A body that itself fans out on the same pool: the inner call's caller
  // participates, so this completes even when every worker is busy.
  ExecutorPool pool(3);
  std::vector<std::vector<std::size_t>> grid(6,
                                             std::vector<std::size_t>(6, 0));
  pool.parallel_for_indexed(grid.size(), [&](std::size_t i) {
    pool.parallel_for_indexed(grid[i].size(), [&, i](std::size_t j) {
      grid[i][j] = i * 10 + j;
    });
  });
  for (std::size_t i = 0; i < grid.size(); ++i)
    for (std::size_t j = 0; j < grid[i].size(); ++j)
      EXPECT_EQ(grid[i][j], i * 10 + j);
}

TEST(Executor, SharedAcrossConcurrentCallersStaysBounded) {
  // Two external threads drive the same pool at once (the JobService
  // sharing pattern); both batches complete with every slot written.
  ExecutorPool pool(2);
  std::vector<std::size_t> a(64, 0);
  std::vector<std::size_t> b(64, 0);
  std::thread ta([&] {
    pool.parallel_for_indexed(a.size(), [&](std::size_t i) { a[i] = i + 1; });
  });
  std::thread tb([&] {
    pool.parallel_for_indexed(b.size(), [&](std::size_t i) { b[i] = i + 2; });
  });
  ta.join();
  tb.join();
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], i + 1);
    EXPECT_EQ(b[i], i + 2);
  }
}

TEST(Executor, HardwareSizingAndEnvParsing) {
  ExecutorPool pool(0);  // 0 = hardware concurrency
  EXPECT_GE(pool.concurrency(), 1u);
  // env_threads is >= 1 regardless of the environment (unset or garbage
  // degrades to serial; a set value was validated at parse time).
  EXPECT_GE(ExecutorPool::env_threads(), 1u);
  EXPECT_GE(ExecutorPool::shared_default().concurrency(), 1u);
}

}  // namespace
}  // namespace iddq::support
