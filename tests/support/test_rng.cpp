#include "support/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace iddq {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 4);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.below(7), 7u);
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng rng(5);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowCoversAllResidues) {
  Rng rng(11);
  std::vector<bool> seen(5, false);
  for (int i = 0; i < 500; ++i) seen[rng.below(5)] = true;
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(), [](bool b) { return b; }));
}

TEST(Rng, BetweenInclusive) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.between(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInHalfOpenUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, NormalMomentsApproximate) {
  Rng rng(21);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.1);
}

TEST(Rng, NormalWithParamsScales) {
  Rng rng(22);
  double sum = 0.0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.2);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(2);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(8);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(99);
  Rng child = a.split();
  // The child must not replay the parent's sequence.
  Rng b(99);
  (void)b();  // advance past the split draw
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (child() == b()) ++equal;
  EXPECT_LT(equal, 4);
}

TEST(Rng, ReseedRestartsSequence) {
  Rng a(5);
  const auto first = a();
  a.reseed(5);
  EXPECT_EQ(a(), first);
}

}  // namespace
}  // namespace iddq
