#include "support/json.hpp"

#include <charconv>
#include <cstdio>

namespace iddq::json {

namespace {

bool is_ws(char c) {
  return c == ' ' || c == '\t' || c == '\r' || c == '\n';
}

// 17 significant digits round-trip any finite IEEE-754 double exactly.
void append_double_17g(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

}  // namespace

class Parser {
 public:
  explicit Parser(std::string_view s) : s_(s) {}

  [[nodiscard]] bool parse_document(JsonValue& out) {
    if (!parse_value(out, 0)) return false;
    skip_ws();
    return i_ == s_.size();
  }

 private:
  static constexpr int kMaxDepth = 64;

  void skip_ws() {
    while (i_ < s_.size() && is_ws(s_[i_])) ++i_;
  }

  [[nodiscard]] bool consume(char c) {
    skip_ws();
    if (i_ >= s_.size() || s_[i_] != c) return false;
    ++i_;
    return true;
  }

  [[nodiscard]] bool peek(char c) {
    skip_ws();
    return i_ < s_.size() && s_[i_] == c;
  }

  [[nodiscard]] bool consume_literal(std::string_view lit) {
    if (s_.substr(i_, lit.size()) != lit) return false;
    i_ += lit.size();
    return true;
  }

  [[nodiscard]] bool parse_string_payload(std::string& out) {
    if (!consume('"')) return false;
    out.clear();
    while (i_ < s_.size() && s_[i_] != '"') {
      char c = s_[i_++];
      if (c == '\\') {
        if (i_ >= s_.size()) return false;
        c = s_[i_++];
        switch (c) {
          case '"': case '\\': case '/': break;
          case 'b': c = '\b'; break;
          case 'f': c = '\f'; break;
          case 'n': c = '\n'; break;
          case 'r': c = '\r'; break;
          case 't': c = '\t'; break;
          case 'u': {
            // Only the single-byte range (what append_json_quoted emits
            // for control characters); no surrogate pairs by design.
            if (i_ + 4 > s_.size()) return false;
            unsigned value = 0;
            for (int d = 0; d < 4; ++d) {
              const char h = s_[i_++];
              value <<= 4;
              if (h >= '0' && h <= '9') value |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f')
                value |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F')
                value |= static_cast<unsigned>(h - 'A' + 10);
              else
                return false;
            }
            if (value > 0xFF) return false;
            c = static_cast<char>(value);
            break;
          }
          default: return false;
        }
      }
      out += c;
    }
    return i_ < s_.size() && s_[i_++] == '"';
  }

  [[nodiscard]] bool parse_number_token(std::string& out) {
    const std::size_t start = i_;
    if (i_ < s_.size() && s_[i_] == '-') ++i_;
    const auto digits = [&] {
      const std::size_t from = i_;
      while (i_ < s_.size() && s_[i_] >= '0' && s_[i_] <= '9') ++i_;
      return i_ > from;
    };
    if (!digits()) return false;
    if (i_ < s_.size() && s_[i_] == '.') {
      ++i_;
      if (!digits()) return false;
    }
    if (i_ < s_.size() && (s_[i_] == 'e' || s_[i_] == 'E')) {
      ++i_;
      if (i_ < s_.size() && (s_[i_] == '+' || s_[i_] == '-')) ++i_;
      if (!digits()) return false;
    }
    out.assign(s_.substr(start, i_ - start));
    return true;
  }

  [[nodiscard]] bool parse_value(JsonValue& out, int depth) {
    if (depth > kMaxDepth) return false;
    skip_ws();
    if (i_ >= s_.size()) return false;
    const char c = s_[i_];
    if (c == '{') {
      ++i_;
      out.type_ = JsonValue::Type::Object;
      if (consume('}')) return true;
      while (true) {
        std::string name;
        skip_ws();
        if (!parse_string_payload(name) || !consume(':')) return false;
        JsonValue value;
        if (!parse_value(value, depth + 1)) return false;
        out.object_.emplace_back(std::move(name), std::move(value));
        if (consume(',')) continue;
        return consume('}');
      }
    }
    if (c == '[') {
      ++i_;
      out.type_ = JsonValue::Type::Array;
      if (consume(']')) return true;
      while (true) {
        JsonValue value;
        if (!parse_value(value, depth + 1)) return false;
        out.array_.push_back(std::move(value));
        if (consume(',')) continue;
        return consume(']');
      }
    }
    if (c == '"') {
      out.type_ = JsonValue::Type::String;
      return parse_string_payload(out.string_);
    }
    if (c == 't') {
      out.type_ = JsonValue::Type::Bool;
      out.bool_ = true;
      return consume_literal("true");
    }
    if (c == 'f') {
      out.type_ = JsonValue::Type::Bool;
      out.bool_ = false;
      return consume_literal("false");
    }
    if (c == 'n') {
      out.type_ = JsonValue::Type::Null;
      return consume_literal("null");
    }
    out.type_ = JsonValue::Type::Number;
    return parse_number_token(out.string_);
  }

  std::string_view s_;
  std::size_t i_ = 0;
};

std::optional<JsonValue> JsonValue::parse(std::string_view text) {
  JsonValue value;
  Parser parser(text);
  if (!parser.parse_document(value)) return std::nullopt;
  return value;
}

double JsonValue::as_double() const noexcept {
  double v = 0.0;
  const auto [ptr, ec] =
      std::from_chars(string_.data(), string_.data() + string_.size(), v);
  (void)ptr;
  return ec == std::errc{} ? v : 0.0;
}

bool JsonValue::as_u64(std::uint64_t& out) const noexcept {
  if (type_ != Type::Number) return false;
  const auto [ptr, ec] =
      std::from_chars(string_.data(), string_.data() + string_.size(), out);
  return ec == std::errc{} && ptr == string_.data() + string_.size();
}

const JsonValue* JsonValue::find(std::string_view key) const noexcept {
  for (const auto& [name, value] : object_)
    if (name == key) return &value;
  return nullptr;
}

std::string JsonValue::get_string(std::string_view key,
                                  std::string_view fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->is_string() ? v->as_string()
                                        : std::string(fallback);
}

std::uint64_t JsonValue::get_u64(std::string_view key,
                                 std::uint64_t fallback) const {
  const JsonValue* v = find(key);
  std::uint64_t out = 0;
  return v != nullptr && v->as_u64(out) ? out : fallback;
}

double JsonValue::get_double(std::string_view key, double fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->is_number() ? v->as_double() : fallback;
}

bool JsonValue::get_bool(std::string_view key, bool fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->is_bool() ? v->as_bool() : fallback;
}

void append_json_quoted(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

JsonWriter::JsonWriter(Kind kind) {
  out_ += kind == Kind::Object ? '{' : '[';
  close_ = kind == Kind::Object ? '}' : ']';
}

void JsonWriter::comma() {
  if (!first_) out_ += ',';
  first_ = false;
}

void JsonWriter::key(std::string_view k) {
  comma();
  append_json_quoted(out_, k);
  out_ += ':';
}

JsonWriter& JsonWriter::field(std::string_view k, std::string_view value) {
  key(k);
  append_json_quoted(out_, value);
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view k, const char* value) {
  return field(k, std::string_view(value));
}

JsonWriter& JsonWriter::field(std::string_view k, double value) {
  key(k);
  append_double_17g(out_, value);
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view k, std::uint64_t value) {
  key(k);
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view k, bool value) {
  key(k);
  out_ += value ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::field_raw(std::string_view k, std::string_view v) {
  key(k);
  out_ += v;
  return *this;
}

JsonWriter& JsonWriter::element(std::string_view value) {
  comma();
  append_json_quoted(out_, value);
  return *this;
}

JsonWriter& JsonWriter::element(double value) {
  comma();
  append_double_17g(out_, value);
  return *this;
}

JsonWriter& JsonWriter::element(std::uint64_t value) {
  comma();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::element_raw(std::string_view json) {
  comma();
  out_ += json;
  return *this;
}

std::string JsonWriter::str() {
  out_ += close_;
  return std::move(out_);
}

}  // namespace iddq::json
