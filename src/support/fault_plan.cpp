#include "support/fault_plan.hpp"

#include <cstdio>
#include <cstdlib>

#include "support/error.hpp"
#include "support/rng.hpp"
#include "support/strings.hpp"

namespace iddq::support {

namespace {

/// The armed plan. Owned by `g_owned` below; never destroyed while armed.
std::atomic<const FaultPlan*> g_active{nullptr};

std::unique_ptr<FaultPlan>& owned_plan() {
  static std::unique_ptr<FaultPlan> owned;
  return owned;
}

std::uint64_t parse_count(std::string_view text, std::string_view directive) {
  std::size_t value = 0;
  if (!str::parse_size(text, value))
    throw Error("fault plan: '" + std::string(directive) +
                "': bad number '" + std::string(text) + "'");
  return value;
}

}  // namespace

FaultPlan FaultPlan::parse(std::string_view spec) {
  FaultPlan plan;
  for (const auto directive : str::split(spec, ';')) {
    if (directive.empty()) continue;
    const auto eq = directive.find('=');
    if (eq == std::string_view::npos)
      throw Error("fault plan: directive '" + std::string(directive) +
                  "' is missing '='");
    const auto name = str::trim(directive.substr(0, eq));
    const auto args = str::split(directive.substr(eq + 1), '@');
    const auto expect = [&](std::size_t n) {
      if (args.size() != n)
        throw Error("fault plan: '" + std::string(name) + "' takes " +
                    std::to_string(n) + " '@'-separated argument(s), got " +
                    std::to_string(args.size()));
    };
    if (name == "seed") {
      expect(1);
      plan.seed_ = parse_count(args[0], name);
    } else if (name == "drop-after") {
      expect(2);
      plan.drop_.push_back(
          {std::string(args[0]), parse_count(args[1], name), 0});
    } else if (name == "stall-write") {
      expect(3);
      plan.stall_.push_back({std::string(args[0]),
                             parse_count(args[1], name),
                             parse_count(args[2], name)});
    } else if (name == "refuse-connect") {
      expect(2);
      plan.refuse_.push_back(
          {std::string(args[0]), parse_count(args[1], name), 0});
    } else if (name == "tear-cache-append") {
      expect(1);
      plan.tear_at_ = parse_count(args[0], name);
      if (plan.tear_at_ == 0)
        throw Error("fault plan: 'tear-cache-append' index is 1-based");
    } else {
      throw Error("fault plan: unknown directive '" + std::string(name) + "'");
    }
  }
  plan.runtime_->refuse_counts.assign(plan.refuse_.size(), 0);
  return plan;
}

const FaultPlan* FaultPlan::active() {
  static const bool env_loaded = [] {
    const char* spec = std::getenv("IDDQ_FAULT_PLAN");
    if (spec == nullptr || *spec == '\0') return true;
    try {
      owned_plan() = std::make_unique<FaultPlan>(parse(spec));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "IDDQ_FAULT_PLAN: %s\n", e.what());
      std::abort();
    }
    g_active.store(owned_plan().get(), std::memory_order_release);
    return true;
  }();
  (void)env_loaded;
  return g_active.load(std::memory_order_acquire);
}

void FaultPlan::arm_for_test(std::string_view spec) {
  (void)active();  // settle the env check before overriding
  g_active.store(nullptr, std::memory_order_release);
  owned_plan() = std::make_unique<FaultPlan>(parse(spec));
  g_active.store(owned_plan().get(), std::memory_order_release);
}

void FaultPlan::disarm_for_test() {
  g_active.store(nullptr, std::memory_order_release);
}

bool FaultPlan::matches(const Rule& rule, std::string_view tag) {
  return rule.match == "*" || tag.find(rule.match) != std::string_view::npos;
}

FaultPlan::ChannelFaults FaultPlan::channel_faults(
    std::string_view tag) const {
  ChannelFaults faults;
  for (const auto& rule : drop_) {
    if (matches(rule, tag)) {
      faults.drop_after_lines = rule.a;
      break;
    }
  }
  for (const auto& rule : stall_) {
    if (matches(rule, tag)) {
      faults.stall_line = rule.a;
      faults.stall_ms = rule.b;
      break;
    }
  }
  return faults;
}

bool FaultPlan::refuse_connect(std::string_view endpoint) const {
  for (std::size_t i = 0; i < refuse_.size(); ++i) {
    if (!matches(refuse_[i], endpoint)) continue;
    const std::scoped_lock lock(runtime_->mutex);
    if (runtime_->refuse_counts[i] < refuse_[i].a) {
      ++runtime_->refuse_counts[i];
      return true;
    }
    return false;
  }
  return false;
}

FaultPlan::AppendFate FaultPlan::cache_append_fate() const {
  if (tear_at_ == 0) return AppendFate::kWrite;
  const std::scoped_lock lock(runtime_->mutex);
  ++runtime_->appends;
  if (runtime_->appends < tear_at_) return AppendFate::kWrite;
  return runtime_->appends == tear_at_ ? AppendFate::kTear : AppendFate::kDrop;
}

std::string FaultPlan::torn_prefix(std::string_view line) const {
  if (line.size() < 2) return {};
  // Strict prefix in [1, size-1]: always loses bytes, never a whole line.
  const std::uint64_t keep =
      1 + Rng::mix_seed(seed_, line.size()) % (line.size() - 1);
  return std::string(line.substr(0, static_cast<std::size_t>(keep)));
}

}  // namespace iddq::support
