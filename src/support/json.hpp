// Minimal JSON for the line-delimited job protocol (docs/server.md).
//
// Two halves, both dependency-free:
//
//  * JsonValue — a recursive parsed value (null/bool/number/string/array/
//    object). Numbers keep their raw token so 64-bit integers (seeds, cache
//    keys) round-trip without going through a double; object member order
//    is preserved.
//  * JsonWriter — an append-only object/array builder that escapes strings
//    and writes doubles with 17 significant digits (exact IEEE-754 round
//    trip, the same convention as core/result_cache.cpp).
//
// This is deliberately not a general JSON library: no unicode escapes
// beyond pass-through bytes, no comments, numbers are validated by
// std::from_chars. It parses everything JsonWriter emits and everything a
// well-behaved protocol client sends.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace iddq::json {

class JsonValue {
 public:
  enum class Type { Null, Bool, Number, String, Array, Object };

  using Member = std::pair<std::string, JsonValue>;

  JsonValue() = default;

  /// Parses one complete JSON value; trailing non-whitespace fails.
  /// Returns std::nullopt on malformed input.
  [[nodiscard]] static std::optional<JsonValue> parse(std::string_view text);

  [[nodiscard]] Type type() const noexcept { return type_; }
  [[nodiscard]] bool is_null() const noexcept { return type_ == Type::Null; }
  [[nodiscard]] bool is_bool() const noexcept { return type_ == Type::Bool; }
  [[nodiscard]] bool is_number() const noexcept {
    return type_ == Type::Number;
  }
  [[nodiscard]] bool is_string() const noexcept {
    return type_ == Type::String;
  }
  [[nodiscard]] bool is_array() const noexcept { return type_ == Type::Array; }
  [[nodiscard]] bool is_object() const noexcept {
    return type_ == Type::Object;
  }

  [[nodiscard]] bool as_bool() const noexcept { return bool_; }
  [[nodiscard]] const std::string& as_string() const noexcept {
    return string_;
  }
  /// The verbatim number token ("42", "-1.5e3", ...).
  [[nodiscard]] const std::string& number_token() const noexcept {
    return string_;
  }
  [[nodiscard]] double as_double() const noexcept;
  /// Exact for integer tokens up to 2^64-1; returns false on sign,
  /// fraction, exponent, or overflow.
  [[nodiscard]] bool as_u64(std::uint64_t& out) const noexcept;

  [[nodiscard]] const std::vector<JsonValue>& items() const noexcept {
    return array_;
  }
  [[nodiscard]] const std::vector<Member>& members() const noexcept {
    return object_;
  }

  /// First member named `key`, or nullptr (objects only).
  [[nodiscard]] const JsonValue* find(std::string_view key) const noexcept;

  // Typed member lookups with defaults, for flat protocol objects.
  [[nodiscard]] std::string get_string(std::string_view key,
                                       std::string_view fallback = "") const;
  [[nodiscard]] std::uint64_t get_u64(std::string_view key,
                                      std::uint64_t fallback = 0) const;
  [[nodiscard]] double get_double(std::string_view key,
                                  double fallback = 0.0) const;
  [[nodiscard]] bool get_bool(std::string_view key, bool fallback) const;

 private:
  friend class Parser;

  Type type_ = Type::Null;
  bool bool_ = false;
  std::string string_;  // String payload, or the raw Number token
  std::vector<JsonValue> array_;
  std::vector<Member> object_;
};

/// Appends `s` as a quoted JSON string ('"', '\\', and control characters
/// escaped) to `out`.
void append_json_quoted(std::string& out, std::string_view s);

/// One-line JSON object/array builder. Values are emitted in call order;
/// keys are not checked for uniqueness. `raw` splices pre-serialized JSON
/// (e.g. a nested array built by another writer).
class JsonWriter {
 public:
  /// Starts an object ("{") or an array ("[").
  enum class Kind { Object, Array };
  explicit JsonWriter(Kind kind = Kind::Object);

  JsonWriter& field(std::string_view key, std::string_view value);
  JsonWriter& field(std::string_view key, const char* value);
  JsonWriter& field(std::string_view key, double value);
  JsonWriter& field(std::string_view key, std::uint64_t value);
  JsonWriter& field(std::string_view key, bool value);
  JsonWriter& field_raw(std::string_view key, std::string_view json);

  // Array elements.
  JsonWriter& element(std::string_view value);
  JsonWriter& element(double value);
  JsonWriter& element(std::uint64_t value);
  JsonWriter& element_raw(std::string_view json);

  /// Closes the value and returns it; the writer must not be reused.
  [[nodiscard]] std::string str();

 private:
  void comma();
  void key(std::string_view k);

  std::string out_;
  char close_ = '}';
  bool first_ = true;
};

}  // namespace iddq::json
