#include "support/transport.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstring>

#include "support/error.hpp"

namespace iddq::support {

namespace {

// A peer that disconnects mid-stream must surface as write_line() == false,
// not as a process-killing SIGPIPE. MSG_NOSIGNAL covers the socket sends;
// this covers any remaining pipe writes (pipe-mode stdout).
void ignore_sigpipe_once() {
  static const bool done = [] {
    std::signal(SIGPIPE, SIG_IGN);
    return true;
  }();
  (void)done;
}

sockaddr_un make_address(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path))
    throw Error("unix socket path too long: '" + path + "'");
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

}  // namespace

bool StreamChannel::read_line(std::string& out) {
  ignore_sigpipe_once();
  return static_cast<bool>(std::getline(*in_, out));
}

bool StreamChannel::write_line(std::string_view line) {
  ignore_sigpipe_once();
  (*out_) << line << '\n';
  out_->flush();
  return static_cast<bool>(*out_);
}

FdChannel::~FdChannel() {
  if (fd_ >= 0) ::close(fd_);
}

bool FdChannel::read_line(std::string& out) {
  while (true) {
    const std::size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      out.assign(buffer_, 0, nl);
      buffer_.erase(0, nl + 1);
      return true;
    }
    char chunk[4096];
    const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) {
      // EOF: a final unterminated line is delivered once.
      if (buffer_.empty()) return false;
      out = std::move(buffer_);
      buffer_.clear();
      return true;
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

bool FdChannel::write_line(std::string_view line) {
  std::string framed(line);
  framed += '\n';
  std::size_t sent = 0;
  while (sent < framed.size()) {
    const ssize_t n = ::send(fd_, framed.data() + sent, framed.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

UnixSocketListener::UnixSocketListener(const std::string& path)
    : path_(path) {
  ignore_sigpipe_once();
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0)
    throw Error(std::string("unix socket: ") + std::strerror(errno));
  const sockaddr_un addr = make_address(path_);
  ::unlink(path_.c_str());  // a stale socket file from a dead server
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const std::string reason = std::strerror(errno);
    ::close(fd);
    throw Error("unix socket: cannot bind '" + path_ + "': " + reason);
  }
  if (::listen(fd, 16) < 0) {
    const std::string reason = std::strerror(errno);
    ::close(fd);
    ::unlink(path_.c_str());
    throw Error("unix socket: cannot listen on '" + path_ + "': " + reason);
  }
  fd_.store(fd);
}

UnixSocketListener::~UnixSocketListener() { close(); }

std::unique_ptr<FdChannel> UnixSocketListener::accept() {
  while (true) {
    const int fd = fd_.load();
    if (fd < 0) return nullptr;
    const int conn = ::accept(fd, nullptr, nullptr);
    if (conn >= 0) return std::make_unique<FdChannel>(conn);
    if (errno == EINTR) continue;
    return nullptr;  // closed under us, or unrecoverable
  }
}

void UnixSocketListener::close() {
  // Exactly one caller wins the exchange, so a shutdown-requesting session
  // thread and the destructor can both call close() without double-closing
  // (and without ever closing an fd number the kernel has recycled).
  const int fd = fd_.exchange(-1);
  if (fd >= 0) {
    // shutdown() unblocks a concurrent accept() before the close.
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
    ::unlink(path_.c_str());
  }
}

std::unique_ptr<FdChannel> connect_unix_socket(const std::string& path) {
  ignore_sigpipe_once();
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0)
    throw Error(std::string("unix socket: ") + std::strerror(errno));
  const sockaddr_un addr = make_address(path);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const std::string reason = std::strerror(errno);
    ::close(fd);
    throw Error("unix socket: cannot connect to '" + path + "': " + reason);
  }
  return std::make_unique<FdChannel>(fd);
}

}  // namespace iddq::support
