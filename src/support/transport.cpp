#include "support/transport.hpp"

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <charconv>
#include <chrono>
#include <csignal>
#include <cstring>
#include <thread>

#include "support/error.hpp"
#include "support/fault_plan.hpp"

namespace iddq::support {

namespace {

// A peer that disconnects mid-stream must surface as write_line() == false,
// not as a process-killing SIGPIPE. MSG_NOSIGNAL covers the socket sends;
// this covers any remaining pipe writes (pipe-mode stdout).
void ignore_sigpipe_once() {
  static const bool done = [] {
    std::signal(SIGPIPE, SIG_IGN);
    return true;
  }();
  (void)done;
}

sockaddr_un make_address(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path))
    throw Error("unix socket path too long: '" + path + "'");
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

/// getaddrinfo wrapper shared by the TCP listener and connector. Throws
/// with the endpoint in the message; the caller frees via the guard.
struct AddrInfoGuard {
  addrinfo* info = nullptr;
  ~AddrInfoGuard() {
    if (info != nullptr) ::freeaddrinfo(info);
  }
};

void resolve_tcp(const std::string& host, std::uint16_t port, bool listening,
                 AddrInfoGuard& out) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_protocol = IPPROTO_TCP;
  if (listening) hints.ai_flags = AI_PASSIVE;
  const std::string port_text = std::to_string(port);
  const int rc = ::getaddrinfo(host.empty() ? nullptr : host.c_str(),
                               port_text.c_str(), &hints, &out.info);
  if (rc != 0)
    throw Error("tcp: cannot resolve '" + host + ":" + port_text +
                "': " + ::gai_strerror(rc));
}

/// Fault-plan hooks (docs/robustness.md). Both are no-ops — one atomic
/// load — unless a plan is armed.
void tag_accepted_channel(FdChannel& conn, const std::string& endpoint) {
  if (const FaultPlan* plan = FaultPlan::active())
    conn.apply_fault_plan(*plan, "accept:" + endpoint);
}

void check_connect_refusal(const std::string& endpoint) {
  if (const FaultPlan* plan = FaultPlan::active()) {
    if (plan->refuse_connect(endpoint))
      throw Error("fault plan: refused connect to '" + endpoint + "'");
  }
}

void tag_connected_channel(FdChannel& conn, const std::string& endpoint) {
  if (const FaultPlan* plan = FaultPlan::active())
    conn.apply_fault_plan(*plan, "connect:" + endpoint);
}

std::uint16_t bound_port(int fd) {
  sockaddr_storage addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0)
    return 0;
  if (addr.ss_family == AF_INET)
    return ntohs(reinterpret_cast<const sockaddr_in*>(&addr)->sin_port);
  if (addr.ss_family == AF_INET6)
    return ntohs(reinterpret_cast<const sockaddr_in6*>(&addr)->sin6_port);
  return 0;
}

}  // namespace

bool StreamChannel::read_line(std::string& out) {
  ignore_sigpipe_once();
  if (read_shut_.load()) return false;
  return static_cast<bool>(std::getline(*in_, out));
}

bool StreamChannel::write_line(std::string_view line) {
  ignore_sigpipe_once();
  if (write_shut_.load()) return false;
  (*out_) << line << '\n';
  out_->flush();
  return static_cast<bool>(*out_);
}

FdChannel::~FdChannel() {
  if (fd_ >= 0) ::close(fd_);
}

bool FdChannel::read_line(std::string& out) {
  while (true) {
    const std::size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      out.assign(buffer_, 0, nl);
      buffer_.erase(0, nl + 1);
      return true;
    }
    char chunk[4096];
    const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) {
      // EOF: a final unterminated line is delivered once.
      if (buffer_.empty()) return false;
      out = std::move(buffer_);
      buffer_.clear();
      return true;
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

bool FdChannel::write_line(std::string_view line) {
  if (fault_drop_after_ != 0 || fault_stall_line_ != 0) {
    ++lines_written_;
    if (lines_written_ == fault_stall_line_ && fault_stall_ms_ > 0)
      std::this_thread::sleep_for(std::chrono::milliseconds(fault_stall_ms_));
    if (fault_drop_after_ != 0 && lines_written_ > fault_drop_after_) {
      // The scripted "crash": tear the whole connection down so the peer
      // sees EOF after exactly fault_drop_after_ lines.
      shutdown_write();
      return false;
    }
  }
  std::string framed(line);
  framed += '\n';
  std::size_t sent = 0;
  while (sent < framed.size()) {
    const ssize_t n = ::send(fd_, framed.data() + sent, framed.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

void FdChannel::apply_fault_plan(const FaultPlan& plan,
                                 std::string_view tag) {
  const FaultPlan::ChannelFaults faults = plan.channel_faults(tag);
  fault_drop_after_ = faults.drop_after_lines;
  fault_stall_line_ = faults.stall_line;
  fault_stall_ms_ = faults.stall_ms;
}

void FdChannel::shutdown_read() {
  // Unblocks a concurrent blocked ::read (returns 0 = EOF) and makes
  // every later read see EOF. Errors (already-shut, not-connected) are
  // fine — the goal state is "reads fail", which they then do.
  if (fd_ >= 0) (void)::shutdown(fd_, SHUT_RD);
}

void FdChannel::shutdown_write() {
  // SHUT_RDWR rather than SHUT_WR: a writer blocked in send() because the
  // peer stopped draining is only reliably woken by the full shutdown,
  // and by the time the event writer aborts output the session has
  // stopped reading this channel anyway (shutdown_read came first).
  if (fd_ >= 0) (void)::shutdown(fd_, SHUT_RDWR);
}

UnixSocketListener::UnixSocketListener(const std::string& path)
    : path_(path) {
  ignore_sigpipe_once();
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0)
    throw Error(std::string("unix socket: ") + std::strerror(errno));
  const sockaddr_un addr = make_address(path_);
  ::unlink(path_.c_str());  // a stale socket file from a dead server
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const std::string reason = std::strerror(errno);
    ::close(fd);
    throw Error("unix socket: cannot bind '" + path_ + "': " + reason);
  }
  if (::listen(fd, 16) < 0) {
    const std::string reason = std::strerror(errno);
    ::close(fd);
    ::unlink(path_.c_str());
    throw Error("unix socket: cannot listen on '" + path_ + "': " + reason);
  }
  fd_.store(fd);
}

UnixSocketListener::~UnixSocketListener() { close(); }

std::unique_ptr<FdChannel> UnixSocketListener::accept() {
  while (true) {
    const int fd = fd_.load();
    if (fd < 0) return nullptr;
    const int conn = ::accept(fd, nullptr, nullptr);
    if (conn >= 0) {
      auto channel = std::make_unique<FdChannel>(conn);
      tag_accepted_channel(*channel, path_);
      return channel;
    }
    if (errno == EINTR) continue;
    return nullptr;  // closed under us, or unrecoverable
  }
}

void UnixSocketListener::close() {
  // Exactly one caller wins the exchange, so a shutdown-requesting session
  // thread and the destructor can both call close() without double-closing
  // (and without ever closing an fd number the kernel has recycled).
  const int fd = fd_.exchange(-1);
  if (fd >= 0) {
    // shutdown() unblocks a concurrent accept() before the close.
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
    ::unlink(path_.c_str());
  }
}

TcpSocketListener::TcpSocketListener(const std::string& host,
                                     std::uint16_t port)
    : host_(host) {
  ignore_sigpipe_once();
  AddrInfoGuard resolved;
  resolve_tcp(host_, port, /*listening=*/true, resolved);
  std::string last_error = "no addresses resolved";
  for (const addrinfo* ai = resolved.info; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last_error = std::strerror(errno);
      continue;
    }
    const int one = 1;
    (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd, ai->ai_addr, ai->ai_addrlen) < 0 || ::listen(fd, 64) < 0) {
      last_error = std::strerror(errno);
      ::close(fd);
      continue;
    }
    port_ = bound_port(fd);
    fd_.store(fd);
    return;
  }
  throw Error("tcp: cannot listen on '" + host_ + ":" +
              std::to_string(port) + "': " + last_error);
}

TcpSocketListener::~TcpSocketListener() { close(); }

std::unique_ptr<FdChannel> TcpSocketListener::accept() {
  while (true) {
    const int fd = fd_.load();
    if (fd < 0) return nullptr;
    const int conn = ::accept(fd, nullptr, nullptr);
    if (conn >= 0) {
      // Event lines are small and latency-sensitive; never batch them.
      const int one = 1;
      (void)::setsockopt(conn, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      auto channel = std::make_unique<FdChannel>(conn);
      tag_accepted_channel(*channel, endpoint());
      return channel;
    }
    if (errno == EINTR) continue;
    return nullptr;
  }
}

void TcpSocketListener::close() {
  const int fd = fd_.exchange(-1);
  if (fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
}

std::string TcpSocketListener::endpoint() const {
  return host_ + ":" + std::to_string(port_);
}

std::unique_ptr<FdChannel> connect_unix_socket(const std::string& path) {
  ignore_sigpipe_once();
  check_connect_refusal(path);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0)
    throw Error(std::string("unix socket: ") + std::strerror(errno));
  const sockaddr_un addr = make_address(path);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const std::string reason = std::strerror(errno);
    ::close(fd);
    throw Error("unix socket: cannot connect to '" + path + "': " + reason);
  }
  auto channel = std::make_unique<FdChannel>(fd);
  tag_connected_channel(*channel, path);
  return channel;
}

std::unique_ptr<FdChannel> connect_tcp(const std::string& host,
                                       std::uint16_t port) {
  ignore_sigpipe_once();
  if (port == 0) throw Error("tcp: cannot connect to port 0");
  const std::string endpoint = host + ":" + std::to_string(port);
  check_connect_refusal(endpoint);
  AddrInfoGuard resolved;
  resolve_tcp(host, port, /*listening=*/false, resolved);
  std::string last_error = "no addresses resolved";
  for (const addrinfo* ai = resolved.info; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last_error = std::strerror(errno);
      continue;
    }
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
      const int one = 1;
      (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      auto channel = std::make_unique<FdChannel>(fd);
      tag_connected_channel(*channel, endpoint);
      return channel;
    }
    last_error = std::strerror(errno);
    ::close(fd);
  }
  throw Error("tcp: cannot connect to '" + host + ":" +
              std::to_string(port) + "': " + last_error);
}

std::unique_ptr<FdChannel> connect_endpoint(const std::string& spec) {
  if (const auto tcp = parse_host_port(spec))
    return connect_tcp(tcp->first, tcp->second);
  return connect_unix_socket(spec);
}

std::optional<std::pair<std::string, std::uint16_t>> parse_host_port(
    std::string_view spec) {
  const std::size_t colon = spec.rfind(':');
  if (colon == std::string_view::npos || colon == 0 ||
      colon + 1 == spec.size())
    return std::nullopt;
  const std::string_view port_text = spec.substr(colon + 1);
  unsigned port = 0;
  const auto [end, ec] = std::from_chars(
      port_text.data(), port_text.data() + port_text.size(), port);
  if (ec != std::errc{} || end != port_text.data() + port_text.size() ||
      port == 0 || port > 65535)
    return std::nullopt;
  return std::make_pair(std::string(spec.substr(0, colon)),
                        static_cast<std::uint16_t>(port));
}

}  // namespace iddq::support
