// Unit conventions used throughout iddqsyn.
//
// All electrical quantities are plain doubles in a coherent unit system chosen
// so that Ohm's law and RC time constants need no conversion factors:
//
//   voltage      millivolt   (mV)
//   current      microampere (uA)
//   resistance   kiloohm     (kOhm)    => mV = kOhm * uA
//   capacitance  femtofarad  (fF)      => ps = kOhm * fF
//   time         picosecond  (ps)
//   area         square micrometre "units" (the paper reports technology-
//                dependent units; we keep the same convention)
//
// Variable and member names carry the unit as a suffix (`r_s_kohm`,
// `ipeak_ua`, `delay_ps`) per the project style, so mixed-unit bugs are
// visible at the call site.
#pragma once

namespace iddq::units {

/// Nominal 1995-era 5 V CMOS supply, in mV.
inline constexpr double kVddMv = 5000.0;

/// Convenience conversions (documentation aids; all values are doubles).
inline constexpr double ns_to_ps(double ns) { return ns * 1000.0; }
inline constexpr double ps_to_ns(double ps) { return ps / 1000.0; }
inline constexpr double na_to_ua(double na) { return na / 1000.0; }
inline constexpr double ua_to_na(double ua) { return ua * 1000.0; }
inline constexpr double ma_to_ua(double ma) { return ma * 1000.0; }

}  // namespace iddq::units
