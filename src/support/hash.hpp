// Streaming 64-bit content hashing for cache fingerprints.
//
// FNV-1a over an explicit little-endian byte stream: the digest depends only
// on the sequence of mixed values, never on host endianness, padding, or
// standard-library hash implementations — a fingerprint written into a cache
// file on one machine must match the one recomputed on another. Doubles are
// mixed by IEEE-754 bit pattern (with -0.0 normalized to +0.0 so the two
// representations of zero cannot split cache entries).
#pragma once

#include <bit>
#include <cstdint>
#include <string_view>

namespace iddq {

class Hash64 {
 public:
  void mix_byte(std::uint8_t b) noexcept {
    state_ = (state_ ^ b) * kPrime;
  }

  void mix_u64(std::uint64_t v) noexcept {
    for (int i = 0; i < 8; ++i)
      mix_byte(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  void mix_size(std::size_t v) noexcept {
    mix_u64(static_cast<std::uint64_t>(v));
  }

  void mix_double(double v) noexcept {
    mix_u64(std::bit_cast<std::uint64_t>(v == 0.0 ? 0.0 : v));
  }

  /// Length-prefixed so that ("ab","c") and ("a","bc") cannot collide.
  void mix_string(std::string_view s) noexcept {
    mix_u64(s.size());
    for (const char c : s) mix_byte(static_cast<std::uint8_t>(c));
  }

  [[nodiscard]] std::uint64_t value() const noexcept { return state_; }

 private:
  static constexpr std::uint64_t kOffset = 0xCBF29CE484222325ull;
  static constexpr std::uint64_t kPrime = 0x100000001B3ull;
  std::uint64_t state_ = kOffset;
};

}  // namespace iddq
