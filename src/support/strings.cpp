#include "support/strings.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>

namespace iddq::str {

namespace {
bool is_space(char c) {
  return std::isspace(static_cast<unsigned char>(c)) != 0;
}
}  // namespace

std::string_view trim(std::string_view s) {
  while (!s.empty() && is_space(s.front())) s.remove_prefix(1);
  while (!s.empty() && is_space(s.back())) s.remove_suffix(1);
  return s;
}

std::vector<std::string_view> split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(trim(s.substr(start, i - start)));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string_view> split_ws(std::string_view s) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && is_space(s[i])) ++i;
    const std::size_t start = i;
    while (i < s.size() && !is_space(s[i])) ++i;
    if (i > start) out.push_back(s.substr(start, i - start));
  }
  return out;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (auto& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string to_upper(std::string_view s) {
  std::string out(s);
  for (auto& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

bool parse_double(std::string_view s, double& out) {
  s = trim(s);
  if (s.empty()) return false;
  const char* begin = s.data();
  const char* end = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(begin, end, out);
  return ec == std::errc{} && ptr == end;
}

bool parse_size(std::string_view s, std::size_t& out) {
  s = trim(s);
  if (s.empty()) return false;
  const char* begin = s.data();
  const char* end = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(begin, end, out);
  return ec == std::errc{} && ptr == end;
}

std::string format_sig(double v, int significant) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*g", significant, v);
  return buf;
}

}  // namespace iddq::str
