#include "support/bitset.hpp"

#include "support/error.hpp"

namespace iddq {

void DynamicBitset::set(std::size_t bit) {
  IDDQ_ASSERT(bit < size_);
  words_[bit / 64] |= (std::uint64_t{1} << (bit % 64));
}

void DynamicBitset::reset(std::size_t bit) {
  IDDQ_ASSERT(bit < size_);
  words_[bit / 64] &= ~(std::uint64_t{1} << (bit % 64));
}

bool DynamicBitset::test(std::size_t bit) const {
  IDDQ_ASSERT(bit < size_);
  return (words_[bit / 64] >> (bit % 64)) & 1u;
}

void DynamicBitset::clear() noexcept {
  for (auto& w : words_) w = 0;
}

std::size_t DynamicBitset::count() const noexcept {
  std::size_t n = 0;
  for (const auto w : words_) n += static_cast<std::size_t>(__builtin_popcountll(w));
  return n;
}

bool DynamicBitset::none() const noexcept {
  for (const auto w : words_)
    if (w != 0) return false;
  return true;
}

DynamicBitset& DynamicBitset::operator|=(const DynamicBitset& other) {
  IDDQ_ASSERT(size_ == other.size_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  return *this;
}

void DynamicBitset::or_shifted(const DynamicBitset& other, std::size_t shift) {
  IDDQ_ASSERT(size_ == other.size_);
  if (shift >= size_) return;
  const std::size_t word_shift = shift / 64;
  const std::size_t bit_shift = shift % 64;
  for (std::size_t i = words_.size(); i-- > word_shift;) {
    std::uint64_t v = other.words_[i - word_shift] << bit_shift;
    if (bit_shift != 0 && i > word_shift)
      v |= other.words_[i - word_shift - 1] >> (64 - bit_shift);
    words_[i] |= v;
  }
  // Mask out bits beyond size() that the shift may have produced.
  const std::size_t tail = size_ % 64;
  if (tail != 0) words_.back() &= (~std::uint64_t{0}) >> (64 - tail);
}

std::size_t DynamicBitset::find_first() const noexcept {
  for (std::size_t w = 0; w < words_.size(); ++w)
    if (words_[w] != 0)
      return w * 64 + static_cast<std::size_t>(__builtin_ctzll(words_[w]));
  return size_;
}

std::size_t DynamicBitset::find_next(std::size_t bit) const noexcept {
  ++bit;
  if (bit >= size_) return size_;
  std::size_t w = bit / 64;
  std::uint64_t word = words_[w] & ((~std::uint64_t{0}) << (bit % 64));
  for (;;) {
    if (word != 0)
      return w * 64 + static_cast<std::size_t>(__builtin_ctzll(word));
    if (++w >= words_.size()) return size_;
    word = words_[w];
  }
}

std::size_t DynamicBitset::find_last() const noexcept {
  for (std::size_t w = words_.size(); w-- > 0;)
    if (words_[w] != 0)
      return w * 64 + 63 - static_cast<std::size_t>(__builtin_clzll(words_[w]));
  return size_;
}

}  // namespace iddq
