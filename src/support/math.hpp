// Numeric helpers: summary statistics and least-squares fits used by the
// settling-model calibration and the report/ablation benches.
#pragma once

#include <span>
#include <utility>

namespace iddq::math {

[[nodiscard]] double mean(std::span<const double> xs);
[[nodiscard]] double stddev(std::span<const double> xs);
[[nodiscard]] double min(std::span<const double> xs);
[[nodiscard]] double max(std::span<const double> xs);

/// p in [0,1]; linear interpolation between order statistics.
[[nodiscard]] double percentile(std::span<const double> xs, double p);

/// Ordinary least squares y = a + b*x; returns {a, b}.
/// Requires xs.size() == ys.size() >= 2 and non-degenerate xs.
[[nodiscard]] std::pair<double, double> linear_fit(std::span<const double> xs,
                                                   std::span<const double> ys);

/// Clamps v into [lo, hi].
[[nodiscard]] constexpr double clamp(double v, double lo, double hi) {
  return v < lo ? lo : (v > hi ? hi : v);
}

/// Relative difference |a-b| / max(|a|,|b|,eps); 0 for a==b==0.
[[nodiscard]] double rel_diff(double a, double b);

}  // namespace iddq::math
