// DynamicBitset: a fixed-capacity-at-construction bitset sized at runtime.
//
// Used for the transition-time sets T(g) of the maximum-current estimator
// (one bit per depth level of the circuit) where std::bitset's compile-time
// size does not fit and std::vector<bool> lacks word-level operations.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace iddq {

class DynamicBitset {
 public:
  DynamicBitset() = default;

  /// Creates a bitset with `size` bits, all cleared.
  explicit DynamicBitset(std::size_t size)
      : size_(size), words_((size + 63) / 64, 0) {}

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  void set(std::size_t bit);
  void reset(std::size_t bit);
  [[nodiscard]] bool test(std::size_t bit) const;

  /// Sets every bit to zero, keeping the size.
  void clear() noexcept;

  /// Number of set bits.
  [[nodiscard]] std::size_t count() const noexcept;

  /// True when no bit is set.
  [[nodiscard]] bool none() const noexcept;

  /// Bitwise-or of `other` into *this. Sizes must match.
  DynamicBitset& operator|=(const DynamicBitset& other);

  /// Bitwise-or of `other` shifted left by `shift` into *this
  /// (i.e. for every set bit b in `other`, sets bit b+shift when in range).
  /// This is the inner step of the transition-time recurrence
  /// T(g) |= T(fanin) << 1.
  void or_shifted(const DynamicBitset& other, std::size_t shift);

  /// Index of the lowest set bit, or size() when none.
  [[nodiscard]] std::size_t find_first() const noexcept;

  /// Index of the next set bit strictly after `bit`, or size() when none.
  [[nodiscard]] std::size_t find_next(std::size_t bit) const noexcept;

  /// Index of the highest set bit, or size() when none.
  [[nodiscard]] std::size_t find_last() const noexcept;

  /// Invokes `fn(index)` for every set bit in increasing order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t word = words_[w];
      while (word != 0) {
        const int bit = __builtin_ctzll(word);
        fn(w * 64 + static_cast<std::size_t>(bit));
        word &= word - 1;
      }
    }
  }

  friend bool operator==(const DynamicBitset& a,
                         const DynamicBitset& b) noexcept {
    return a.size_ == b.size_ && a.words_ == b.words_;
  }

 private:
  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace iddq
