// Small string utilities shared by the text-format parsers (.bench netlists,
// cell-library files, partition files).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace iddq::str {

/// Removes leading and trailing ASCII whitespace.
[[nodiscard]] std::string_view trim(std::string_view s);

/// Splits on `sep`, trimming each piece; empty pieces are kept.
[[nodiscard]] std::vector<std::string_view> split(std::string_view s, char sep);

/// Splits on any ASCII whitespace run; empty pieces are dropped.
[[nodiscard]] std::vector<std::string_view> split_ws(std::string_view s);

/// ASCII lower-casing (locale-independent).
[[nodiscard]] std::string to_lower(std::string_view s);

/// ASCII upper-casing (locale-independent).
[[nodiscard]] std::string to_upper(std::string_view s);

/// True when `s` starts with `prefix`.
[[nodiscard]] bool starts_with(std::string_view s, std::string_view prefix);

/// Parses a double; returns false on malformed input or trailing junk.
[[nodiscard]] bool parse_double(std::string_view s, double& out);

/// Parses a non-negative integer; returns false on malformed input.
[[nodiscard]] bool parse_size(std::string_view s, std::size_t& out);

/// Formats a double like "%.3g" (used by report tables).
[[nodiscard]] std::string format_sig(double v, int significant = 3);

}  // namespace iddq::str
