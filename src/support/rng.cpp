#include "support/rng.hpp"

#include <cmath>

#include "support/error.hpp"

namespace iddq {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  // xoshiro must not start from the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
  has_cached_normal_ = false;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  IDDQ_ASSERT(bound > 0);
  // Lemire-style rejection to avoid modulo bias.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::between(std::int64_t lo, std::int64_t hi) {
  IDDQ_ASSERT(lo <= hi);
  const auto span =
      static_cast<std::uint64_t>(hi - lo) + 1;  // safe: hi >= lo
  return lo + static_cast<std::int64_t>(span == 0 ? next() : below(span));
}

double Rng::uniform() {
  // 53 random bits into [0,1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u = 0.0;
  double v = 0.0;
  double s = 0.0;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * factor;
  has_cached_normal_ = true;
  return u * factor;
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

std::size_t Rng::index(std::size_t size) {
  IDDQ_ASSERT(size > 0);
  return static_cast<std::size_t>(below(size));
}

std::uint64_t Rng::mix_seed(std::uint64_t base, std::uint64_t salt) {
  // Two splitmix64 steps over a combined state: adjacent salts map to
  // uncorrelated seeds (splitmix64 is the same expander reseed() uses).
  std::uint64_t sm = base ^ (salt * 0x9E3779B97F4A7C15ull);
  (void)splitmix64(sm);
  return splitmix64(sm);
}

Rng Rng::split() {
  Rng child(0);
  std::uint64_t sm = next();
  for (auto& s : child.s_) s = splitmix64(sm);
  if ((child.s_[0] | child.s_[1] | child.s_[2] | child.s_[3]) == 0)
    child.s_[0] = 1;
  return child;
}

}  // namespace iddq
