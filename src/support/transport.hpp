// Line-delimited transports for the job server (docs/server.md).
//
// The protocol is newline-framed JSON, so the only transport contract is
// "read a line / write a line". Two implementations:
//
//  * StreamChannel — wraps std::istream/std::ostream. Used for the server's
//    pipe mode (stdin/stdout), and by tests over stringstreams.
//  * Unix-domain sockets — UnixSocketListener accepts FdChannel
//    connections; connect_unix_socket() opens the client side. Local-only
//    by construction (filesystem permissions gate access), which is the
//    right scope for a per-host sweep server.
//
// write_line is NOT internally synchronized: concurrent writers (worker
// threads streaming events) must serialize through their own mutex, which
// the protocol session does.
#pragma once

#include <atomic>
#include <istream>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>

namespace iddq::support {

class LineChannel {
 public:
  virtual ~LineChannel() = default;

  /// Blocks for the next '\n'-terminated line (terminator stripped).
  /// Returns false on EOF or a broken connection.
  virtual bool read_line(std::string& out) = 0;

  /// Writes `line` plus a terminating '\n' and flushes. Returns false when
  /// the peer is gone; the caller stops streaming to this channel.
  virtual bool write_line(std::string_view line) = 0;
};

/// iostream-backed channel (pipe mode, tests).
class StreamChannel final : public LineChannel {
 public:
  StreamChannel(std::istream& in, std::ostream& out) : in_(&in), out_(&out) {}

  bool read_line(std::string& out) override;
  bool write_line(std::string_view line) override;

 private:
  std::istream* in_;
  std::ostream* out_;
};

/// File-descriptor channel (one accepted socket connection). Owns the fd.
class FdChannel final : public LineChannel {
 public:
  explicit FdChannel(int fd) : fd_(fd) {}
  ~FdChannel() override;

  FdChannel(const FdChannel&) = delete;
  FdChannel& operator=(const FdChannel&) = delete;

  bool read_line(std::string& out) override;
  bool write_line(std::string_view line) override;

 private:
  int fd_ = -1;
  std::string buffer_;  // bytes read past the last returned line
};

/// Listening unix-domain socket. The constructor unlinks a stale socket
/// file at `path`, binds, and listens; the destructor closes and unlinks.
/// Throws iddq::Error on any socket-API failure.
class UnixSocketListener {
 public:
  explicit UnixSocketListener(const std::string& path);
  ~UnixSocketListener();

  UnixSocketListener(const UnixSocketListener&) = delete;
  UnixSocketListener& operator=(const UnixSocketListener&) = delete;

  /// Blocks for the next connection; returns nullptr once close() was
  /// called (or the listener failed).
  [[nodiscard]] std::unique_ptr<FdChannel> accept();

  /// Unblocks accept(). Safe to call from another thread and repeatedly.
  void close();

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
  /// Owned listening fd; -1 once closed. Atomic because close() may be
  /// called from a session thread while accept() runs in the accept loop
  /// (exchange also makes double-close impossible).
  std::atomic<int> fd_{-1};
};

/// Connects to a UnixSocketListener at `path`. Throws iddq::Error when the
/// socket does not exist or refuses the connection.
[[nodiscard]] std::unique_ptr<FdChannel> connect_unix_socket(
    const std::string& path);

}  // namespace iddq::support
