// Line-delimited transports for the job server (docs/server.md).
//
// The protocol is newline-framed JSON, so the only transport contract is
// "read a line / write a line". Three implementations:
//
//  * StreamChannel — wraps std::istream/std::ostream. Used for the server's
//    pipe mode (stdin/stdout), and by tests over stringstreams.
//  * Unix-domain sockets — UnixSocketListener accepts FdChannel
//    connections; connect_unix_socket() opens the client side. Local-only
//    by construction (filesystem permissions gate access), which is the
//    right scope for a per-host sweep server.
//  * TCP — TcpSocketListener accepts the same FdChannel connections on a
//    host:port endpoint; connect_tcp() opens the client side. This is the
//    containerized-deployment transport: the protocol bytes are identical
//    to the unix-socket path (tests bit-compare the two).
//
// write_line is NOT internally synchronized: concurrent writers (worker
// threads streaming events) must serialize through their own mutex, which
// the per-session event writer (core/event_writer.hpp) does.
//
// Half-shutdown: shutdown_read() / shutdown_write() let one thread abort a
// channel direction another thread is blocked on — the event writer uses
// this to disconnect a session whose reader stalled (docs/server.md,
// "Backpressure"). Both are best-effort on StreamChannel (an istream
// blocked in getline cannot be interrupted portably; the flag makes the
// NEXT call fail) and precise on FdChannel (::shutdown unblocks a blocked
// read/send on Linux sockets).
#pragma once

#include <atomic>
#include <cstdint>
#include <istream>
#include <memory>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace iddq::support {

class FaultPlan;

class LineChannel {
 public:
  virtual ~LineChannel() = default;

  /// Blocks for the next '\n'-terminated line (terminator stripped).
  /// Returns false on EOF, a broken connection, or after shutdown_read().
  virtual bool read_line(std::string& out) = 0;

  /// Writes `line` plus a terminating '\n' and flushes. Returns false when
  /// the peer is gone (or after shutdown_write()); the caller stops
  /// streaming to this channel.
  virtual bool write_line(std::string_view line) = 0;

  /// Aborts the inbound direction: a pending (where interruptible) and
  /// every future read_line returns false. Thread-safe, idempotent.
  virtual void shutdown_read() {}

  /// Aborts the outbound direction: a blocked (where interruptible) and
  /// every future write_line returns false. Thread-safe, idempotent.
  virtual void shutdown_write() {}
};

/// iostream-backed channel (pipe mode, tests).
class StreamChannel final : public LineChannel {
 public:
  StreamChannel(std::istream& in, std::ostream& out) : in_(&in), out_(&out) {}

  bool read_line(std::string& out) override;
  bool write_line(std::string_view line) override;
  void shutdown_read() override { read_shut_.store(true); }
  void shutdown_write() override { write_shut_.store(true); }

 private:
  std::istream* in_;
  std::ostream* out_;
  std::atomic<bool> read_shut_{false};
  std::atomic<bool> write_shut_{false};
};

/// File-descriptor channel (one accepted socket connection). Owns the fd.
class FdChannel final : public LineChannel {
 public:
  explicit FdChannel(int fd) : fd_(fd) {}
  ~FdChannel() override;

  FdChannel(const FdChannel&) = delete;
  FdChannel& operator=(const FdChannel&) = delete;

  bool read_line(std::string& out) override;
  bool write_line(std::string_view line) override;
  void shutdown_read() override;
  void shutdown_write() override;

  /// Resolves `plan`'s drop/stall rules for `tag` onto this channel
  /// (docs/robustness.md). Listeners tag accepted channels
  /// "accept:<endpoint>", connect_* tags clients "connect:<endpoint>" —
  /// only when a plan is armed, so the per-write fast path stays two
  /// integer compares against zero.
  void apply_fault_plan(const FaultPlan& plan, std::string_view tag);

 private:
  int fd_ = -1;
  std::string buffer_;  // bytes read past the last returned line
  // Armed fault-injection state (all zero unless apply_fault_plan ran).
  std::uint64_t fault_drop_after_ = 0;
  std::uint64_t fault_stall_line_ = 0;
  std::uint64_t fault_stall_ms_ = 0;
  std::uint64_t lines_written_ = 0;
};

/// Accept side of a socket transport. Both the unix-domain and the TCP
/// listener hand out FdChannel connections; the server's accept loop only
/// needs this interface.
class SocketListener {
 public:
  virtual ~SocketListener() = default;

  /// Blocks for the next connection; returns nullptr once close() was
  /// called (or the listener failed).
  [[nodiscard]] virtual std::unique_ptr<FdChannel> accept() = 0;

  /// Unblocks accept(). Safe to call from another thread and repeatedly.
  virtual void close() = 0;

  /// Human-readable bound endpoint (socket path, or host:port with the
  /// actual port when 0 was requested).
  [[nodiscard]] virtual std::string endpoint() const = 0;
};

/// Listening unix-domain socket. The constructor unlinks a stale socket
/// file at `path`, binds, and listens; the destructor closes and unlinks.
/// Throws iddq::Error on any socket-API failure.
class UnixSocketListener final : public SocketListener {
 public:
  explicit UnixSocketListener(const std::string& path);
  ~UnixSocketListener() override;

  UnixSocketListener(const UnixSocketListener&) = delete;
  UnixSocketListener& operator=(const UnixSocketListener&) = delete;

  [[nodiscard]] std::unique_ptr<FdChannel> accept() override;
  void close() override;
  [[nodiscard]] std::string endpoint() const override { return path_; }

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
  /// Owned listening fd; -1 once closed. Atomic because close() may be
  /// called from a session thread while accept() runs in the accept loop
  /// (exchange also makes double-close impossible).
  std::atomic<int> fd_{-1};
};

/// Listening TCP socket on `host:port` (IPv4/IPv6 via getaddrinfo;
/// SO_REUSEADDR so restarts do not trip over TIME_WAIT). Port 0 binds an
/// ephemeral port — port() reports the one the kernel picked, which is
/// what tests and `--listen host:0` deployments read back. Throws
/// iddq::Error on resolve/bind/listen failure.
class TcpSocketListener final : public SocketListener {
 public:
  TcpSocketListener(const std::string& host, std::uint16_t port);
  ~TcpSocketListener() override;

  TcpSocketListener(const TcpSocketListener&) = delete;
  TcpSocketListener& operator=(const TcpSocketListener&) = delete;

  [[nodiscard]] std::unique_ptr<FdChannel> accept() override;
  void close() override;
  [[nodiscard]] std::string endpoint() const override;

  [[nodiscard]] const std::string& host() const noexcept { return host_; }
  /// The actually-bound port (resolves a requested port 0).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

 private:
  std::string host_;
  std::uint16_t port_ = 0;
  std::atomic<int> fd_{-1};
};

/// Connects to a UnixSocketListener at `path`. Throws iddq::Error when the
/// socket does not exist or refuses the connection.
[[nodiscard]] std::unique_ptr<FdChannel> connect_unix_socket(
    const std::string& path);

/// Connects to a TcpSocketListener at host:port. Throws iddq::Error on
/// resolve failure or a refused connection — a clean client error, never a
/// hang (the kernel's connect timeout bounds unreachable hosts).
[[nodiscard]] std::unique_ptr<FdChannel> connect_tcp(const std::string& host,
                                                     std::uint16_t port);

/// Connects to `spec` using the --submit endpoint convention: TCP when the
/// last ':'-suffix parses as a port (parse_host_port), a unix-domain
/// socket path otherwise. Throws iddq::Error on failure. This is the one
/// place client-side endpoint dispatch lives — the CLI's --submit and the
/// cluster front-end's --backend connections both resolve through it.
[[nodiscard]] std::unique_ptr<FdChannel> connect_endpoint(
    const std::string& spec);

/// Splits "host:port" into its parts when — and only when — the text after
/// the LAST ':' is a valid port number (1..65535). Anything else (a unix
/// socket path, a trailing colon, port 0) returns nullopt, which is how
/// `--submit` and `--listen` distinguish TCP endpoints from socket paths.
[[nodiscard]] std::optional<std::pair<std::string, std::uint16_t>>
parse_host_port(std::string_view spec);

}  // namespace iddq::support
