#include "support/executor.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>

#include "support/strings.hpp"

namespace iddq::support {

/// One parallel_for_indexed invocation. Indices are claimed with a single
/// fetch_add counter; every index is claimed by exactly one thread (the
/// caller or a worker), and after an abort the remaining claims degrade to
/// cheap skips, so `done == count` is a race-free completion criterion.
struct ExecutorPool::Batch {
  std::size_t count = 0;
  const std::function<void(std::size_t)>* body = nullptr;

  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::atomic<bool> abort{false};

  std::mutex mutex;                // guards error; pairs with done_cv
  std::condition_variable done_cv;
  std::exception_ptr error;        // first exception a body threw

  [[nodiscard]] bool open() const noexcept {
    return next.load(std::memory_order_relaxed) < count;
  }
};

ExecutorPool::ExecutorPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads - 1);
  for (std::size_t w = 0; w + 1 < threads; ++w)
    workers_.emplace_back([this] { worker_loop(); });
}

ExecutorPool::~ExecutorPool() {
  {
    const std::scoped_lock lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : workers_)
    if (t.joinable()) t.join();
}

void ExecutorPool::run_batch(Batch& batch) {
  for (;;) {
    const std::size_t i = batch.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= batch.count) return;
    if (!batch.abort.load(std::memory_order_relaxed)) {
      try {
        (*batch.body)(i);
      } catch (...) {
        {
          const std::scoped_lock lock(batch.mutex);
          if (!batch.error) batch.error = std::current_exception();
        }
        batch.abort.store(true, std::memory_order_relaxed);
      }
    }
    if (batch.done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        batch.count) {
      // Lock/unlock pairs the notify with the waiter's predicate check so
      // the completion wakeup cannot be lost.
      { const std::scoped_lock lock(batch.mutex); }
      batch.done_cv.notify_all();
    }
  }
}

void ExecutorPool::parallel_for_indexed(
    std::size_t count, const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  if (workers_.empty() || count == 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }

  auto batch = std::make_shared<Batch>();
  batch->count = count;
  batch->body = &body;
  {
    const std::scoped_lock lock(mutex_);
    batches_.push_back(batch);
  }
  cv_.notify_all();

  // The caller claims indices too: progress is guaranteed even when every
  // worker is busy in another batch (nested or concurrent callers).
  run_batch(*batch);
  {
    std::unique_lock lock(batch->mutex);
    batch->done_cv.wait(lock, [&] {
      return batch->done.load(std::memory_order_acquire) == batch->count;
    });
  }
  {
    const std::scoped_lock lock(mutex_);
    std::erase(batches_, batch);
  }
  if (batch->error) std::rethrow_exception(batch->error);
}

void ExecutorPool::worker_loop() {
  for (;;) {
    std::shared_ptr<Batch> batch;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] {
        if (stop_) return true;
        for (const auto& b : batches_)
          if (b->open()) return true;
        return false;
      });
      for (const auto& b : batches_) {
        if (b->open()) {
          batch = b;
          break;
        }
      }
      if (batch == nullptr) {
        if (stop_) return;
        continue;
      }
    }
    run_batch(*batch);
  }
}

ExecutorPool& ExecutorPool::shared_default() {
  static ExecutorPool pool(env_threads());
  return pool;
}

std::size_t ExecutorPool::env_threads() {
  const char* env = std::getenv("IDDQ_THREADS");
  if (env == nullptr) return 1;
  std::size_t threads = 0;
  if (!str::parse_size(env, threads) || threads == 0) return 1;
  return threads;
}

}  // namespace iddq::support
