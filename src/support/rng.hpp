// Deterministic pseudo-random number generation.
//
// A self-contained xoshiro256** implementation is used instead of <random>
// engines so that results are reproducible bit-for-bit across standard-library
// implementations — every stochastic component of iddqsyn (evolution strategy,
// Monte-Carlo descendants, circuit generators, pattern generators) takes an
// explicit seed and produces identical runs on any platform.
#pragma once

#include <cstdint>
#include <vector>

namespace iddq {

/// xoshiro256** by Blackman & Vigna (public domain algorithm), seeded via
/// splitmix64. Satisfies the essentials of UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) { reseed(seed); }

  /// Re-initialises the state from a 64-bit seed (splitmix64 expansion).
  void reseed(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  result_type operator()() { return next(); }

  /// Uniform integer in [0, bound). `bound` must be > 0.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t between(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard normal deviate (Marsaglia polar method).
  double normal();

  /// Normal deviate with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Bernoulli trial with probability `p` of returning true.
  bool chance(double p);

  /// Fisher-Yates shuffle of a vector.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Picks a uniformly random element index of a non-empty container size.
  std::size_t index(std::size_t size);

  /// Derives an independent child generator (for parallel components).
  Rng split();

  /// Deterministically combines a base seed with a salt (task index, method
  /// index, ...) into a well-mixed derived seed. Used by the flow engine and
  /// batch runner so per-task streams are independent of scheduling order.
  static std::uint64_t mix_seed(std::uint64_t base, std::uint64_t salt);

 private:
  std::uint64_t next();

  std::uint64_t s_[4] = {};
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace iddq
