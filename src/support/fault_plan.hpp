// Deterministic fault-injection ("chaos") schedule for the serving stack.
//
// A FaultPlan is a scripted, seeded list of failures that the transport
// layer (support/transport.cpp) and the result cache (core/result_cache.cpp)
// honor through cheap hooks: drop a connection after it has written N
// lines, stall one specific write for M ms, refuse the first K connect
// attempts to an endpoint, or tear the cache file's next append mid-record
// (simulating a kill between write() and the newline). Every fault fires
// at a *count* — the Nth write, the Kth connect — never at a wall-clock
// instant, so the failure a test provokes is reproducible bit-for-bit.
//
// Spec grammar (docs/robustness.md): directives separated by ';', each
// `name=arg@arg@...` ('@' separates args because endpoints contain ':'):
//
//   drop-after=MATCH@N        drop matching channels after N written lines
//   stall-write=MATCH@L@MS    the L-th write on a matching channel sleeps
//                             MS ms first (write still succeeds)
//   refuse-connect=MATCH@K    first K connects to matching endpoints fail
//   tear-cache-append=N       the N-th cache append writes only a strict,
//                             deterministic prefix; later appends vanish
//                             (the process "died" at append N)
//   seed=S                    seeds the torn-prefix length choice
//
// MATCH is a substring match against a channel tag ('*' matches all).
// Server-accepted channels are tagged "accept:<listen endpoint>", client
// channels "connect:<endpoint>", so one plan can target one side of one
// specific listener.
//
// A plan is armed process-wide from the IDDQ_FAULT_PLAN environment
// variable (read once, first use) or from tests via arm_for_test(). The
// disarmed fast path — the only path production traffic ever sees — is a
// single relaxed atomic load returning nullptr.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace iddq::support {

class FaultPlan {
 public:
  /// Faults resolved for one channel tag, captured once at channel
  /// creation so the per-write check is two integer compares.
  struct ChannelFaults {
    std::uint64_t drop_after_lines = 0;  ///< 0 = never drop
    std::uint64_t stall_line = 0;        ///< 1-based write to stall; 0 = none
    std::uint64_t stall_ms = 0;
  };

  /// What ResultCache::store must do with its next disk append.
  enum class AppendFate {
    kWrite,  ///< normal append
    kTear,   ///< write torn_prefix() only — the simulated crash point
    kDrop,   ///< write nothing (the process is "dead" after the tear)
  };

  FaultPlan() = default;

  /// Parses a spec string (grammar above). Throws iddq::Error on a
  /// malformed directive — a mistyped plan must fail loudly, not silently
  /// run the test without its faults.
  [[nodiscard]] static FaultPlan parse(std::string_view spec);

  /// The armed plan, or nullptr (the common case). First call loads
  /// IDDQ_FAULT_PLAN from the environment; a malformed value aborts with
  /// a message rather than running unprotected.
  [[nodiscard]] static const FaultPlan* active();

  /// Arms `spec` process-wide until disarm_for_test(). Test-only: callers
  /// must not race channel creation in another thread.
  static void arm_for_test(std::string_view spec);
  static void disarm_for_test();

  /// Resolves drop/stall rules for a channel tag (first matching rule of
  /// each kind wins).
  [[nodiscard]] ChannelFaults channel_faults(std::string_view tag) const;

  /// True when this connect attempt to `endpoint` must fail; counts one
  /// refusal against the first matching rule's budget.
  [[nodiscard]] bool refuse_connect(std::string_view endpoint) const;

  /// Counts one cache append and returns its fate.
  [[nodiscard]] AppendFate cache_append_fate() const;

  /// Deterministic strict prefix of `line` (1 <= len < line.size(),
  /// derived from seed=; empty for lines shorter than 2 bytes). The torn
  /// tail never parses, so recovery sees exactly one corrupt line.
  [[nodiscard]] std::string torn_prefix(std::string_view line) const;

  [[nodiscard]] std::uint64_t seed() const { return seed_; }

 private:
  struct Rule {
    std::string match;  // substring; "*" matches everything
    std::uint64_t a = 0;
    std::uint64_t b = 0;
  };

  /// Mutable runtime counters, boxed so FaultPlan stays movable.
  struct Runtime {
    std::mutex mutex;
    std::vector<std::uint64_t> refuse_counts;  // parallel to refuse_
    std::uint64_t appends = 0;
  };

  static bool matches(const Rule& rule, std::string_view tag);

  std::uint64_t seed_ = 0x1DD0FA17;  // arbitrary default; seed= overrides
  std::vector<Rule> drop_;
  std::vector<Rule> stall_;
  std::vector<Rule> refuse_;
  std::uint64_t tear_at_ = 0;  // 0 = never tear
  std::unique_ptr<Runtime> runtime_ = std::make_unique<Runtime>();
};

}  // namespace iddq::support
