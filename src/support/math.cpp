#include "support/math.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "support/error.hpp"

namespace iddq::math {

double mean(std::span<const double> xs) {
  IDDQ_ASSERT(!xs.empty());
  double sum = 0.0;
  for (const double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) {
  IDDQ_ASSERT(!xs.empty());
  if (xs.size() == 1) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (const double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

double min(std::span<const double> xs) {
  IDDQ_ASSERT(!xs.empty());
  return *std::min_element(xs.begin(), xs.end());
}

double max(std::span<const double> xs) {
  IDDQ_ASSERT(!xs.empty());
  return *std::max_element(xs.begin(), xs.end());
}

double percentile(std::span<const double> xs, double p) {
  IDDQ_ASSERT(!xs.empty());
  IDDQ_ASSERT(p >= 0.0 && p <= 1.0);
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double pos = p * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

std::pair<double, double> linear_fit(std::span<const double> xs,
                                     std::span<const double> ys) {
  IDDQ_ASSERT(xs.size() == ys.size());
  IDDQ_ASSERT(xs.size() >= 2);
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxx = 0.0;
  double sxy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sxx += (xs[i] - mx) * (xs[i] - mx);
    sxy += (xs[i] - mx) * (ys[i] - my);
  }
  IDDQ_ASSERT(sxx > 0.0);
  const double b = sxy / sxx;
  return {my - b * mx, b};
}

double rel_diff(double a, double b) {
  const double scale = std::max({std::abs(a), std::abs(b), 1e-300});
  if (a == b) return 0.0;
  return std::abs(a - b) / scale;
}

}  // namespace iddq::math
