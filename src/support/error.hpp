// Error handling primitives for iddqsyn.
//
// Policy (C++ Core Guidelines E.2/E.14): throw iddq::Error (or a subclass) for
// runtime failures such as malformed input files or violated API contracts that
// depend on external data; use IDDQ_ASSERT for internal invariants that indicate
// a programming error.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>

namespace iddq {

/// Base class of all exceptions thrown by iddqsyn.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when an input file (netlist, library, partition) cannot be parsed.
class ParseError : public Error {
 public:
  ParseError(std::string_view file, std::size_t line, std::string_view message)
      : Error(format(file, line, message)), line_(line) {}

  [[nodiscard]] std::size_t line() const noexcept { return line_; }

 private:
  static std::string format(std::string_view file, std::size_t line,
                            std::string_view message) {
    std::ostringstream os;
    os << file << ':' << line << ": " << message;
    return os.str();
  }
  std::size_t line_ = 0;
};

/// Thrown when a requested entity (gate, cell, module) does not exist.
class LookupError : public Error {
 public:
  using Error::Error;
};

/// Thrown to unwind a cooperatively cancelled run (core::JobService). Kept
/// in the Error hierarchy so generic catch sites still clean up, while job
/// executors can distinguish "cancelled" from "failed".
class CancelledError : public Error {
 public:
  using Error::Error;
};

namespace detail {
[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line) {
  std::ostringstream os;
  os << "iddqsyn assertion failed: (" << expr << ") at " << file << ':' << line;
  throw Error(os.str());
}
}  // namespace detail

/// Throws iddq::Error with `message` when `condition` is false.
/// Used for precondition checks whose failure depends on caller-supplied data.
inline void require(bool condition, std::string_view message) {
  if (!condition) throw Error(std::string(message));
}

}  // namespace iddq

/// Internal-invariant assertion. Active in all build types: the library is an
/// experiment platform where silent corruption is worse than an abort, and the
/// cost of the checks is negligible next to the optimization loops.
#define IDDQ_ASSERT(expr) \
  ((expr) ? static_cast<void>(0) \
          : ::iddq::detail::assert_fail(#expr, __FILE__, __LINE__))
