// ExecutorPool: deterministic intra-run task parallelism.
//
// A small submission pool built for one job: run N independent bodies
// `body(0..N-1)` into pre-indexed result slots, as fast as the hardware
// allows, without changing a single output bit. The contract that makes
// every user of this pool (ES children, tabu candidates, portfolio
// members) byte-identical at any thread count:
//
//   * the *caller* draws all random numbers and builds all inputs before
//     the parallel region — bodies consume no shared mutable state;
//   * each body writes only its own slot, so the result vector is
//     independent of scheduling;
//   * reductions over the slots happen on the caller, in index order.
//
// Scheduling model: parallel_for_indexed registers a batch and the calling
// thread immediately starts claiming indices itself; idle pool workers
// join in. Because the caller always participates, a pool with zero
// workers degrades to a plain serial loop, and nested calls (a body that
// itself calls parallel_for_indexed on the same pool — e.g. a portfolio
// member running a parallel ES) always make progress even when every
// worker is busy: fan-out stays bounded by workers + concurrent callers
// instead of multiplying (this is what lets JobService share ONE pool
// across N job workers without oversubscribing).
//
// Exceptions: the first exception thrown by a body is rethrown on the
// caller after the batch drains; once one body throws, unstarted indices
// are skipped (this is how a CancelledError from a progress callback
// aborts a parallel stage promptly).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace iddq::support {

class ExecutorPool {
 public:
  /// `threads` is the target total parallelism of one parallel_for_indexed
  /// call *including the calling thread*: the pool spawns threads - 1
  /// workers. 1 (the default everywhere) means no workers — a serial
  /// inline loop. 0 means hardware concurrency.
  explicit ExecutorPool(std::size_t threads = 1);
  ~ExecutorPool();

  ExecutorPool(const ExecutorPool&) = delete;
  ExecutorPool& operator=(const ExecutorPool&) = delete;

  /// Worker threads owned by the pool (concurrency() - 1).
  [[nodiscard]] std::size_t worker_count() const noexcept {
    return workers_.size();
  }

  /// Total parallelism of one parallel_for_indexed call (workers + caller).
  [[nodiscard]] std::size_t concurrency() const noexcept {
    return workers_.size() + 1;
  }

  /// Runs body(i) for every i in [0, count). Blocks until every started
  /// body finished; rethrows the first exception a body threw. Safe to
  /// call concurrently from several threads and from inside a body.
  void parallel_for_indexed(std::size_t count,
                            const std::function<void(std::size_t)>& body);

  /// Process-wide default pool, sized once from the IDDQ_THREADS
  /// environment variable (>= 1; unset/invalid means 1 = serial). This is
  /// what FlowEngine uses when no explicit pool is configured, so
  /// `IDDQ_THREADS=4 ctest` exercises every flow threaded — results are
  /// identical by the determinism contract above.
  [[nodiscard]] static ExecutorPool& shared_default();

  /// Parsed IDDQ_THREADS value (>= 1; 1 when unset or unparseable).
  [[nodiscard]] static std::size_t env_threads();

  /// Resolves a tool's --threads option to a pool size: the explicit
  /// value when > 0, the IDDQ_THREADS default otherwise. Use this rather
  /// than passing an option's 0-sentinel to the constructor — there 0
  /// means hardware concurrency, the opposite of "default serial".
  [[nodiscard]] static std::size_t from_option(std::size_t threads) {
    return threads > 0 ? threads : env_threads();
  }

 private:
  struct Batch;

  void worker_loop();
  static void run_batch(Batch& batch);

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<std::shared_ptr<Batch>> batches_;  // open batches, FIFO
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

/// Serial fallback helper: a null pool runs the loop inline. This is the
/// form the optimizers call — `pool` is a per-run field that defaults to
/// nullptr (single-threaded), exactly like today's behavior.
inline void parallel_for_indexed(
    ExecutorPool* pool, std::size_t count,
    const std::function<void(std::size_t)>& body) {
  if (pool != nullptr) {
    pool->parallel_for_indexed(count, body);
    return;
  }
  for (std::size_t i = 0; i < count; ++i) body(i);
}

}  // namespace iddq::support
