#include "library/cell_library.hpp"

#include <cmath>

#include "support/error.hpp"

namespace iddq::lib {

std::string to_string(const CellType& t) {
  std::string s(netlist::to_string(t.kind));
  if (t.kind != netlist::GateKind::kNot && t.kind != netlist::GateKind::kBuf &&
      t.kind != netlist::GateKind::kInput)
    s += std::to_string(static_cast<unsigned>(t.fanin));
  return s;
}

CellLibrary::CellLibrary(std::string_view name, double vdd_mv)
    : name_(name), vdd_mv_(vdd_mv) {
  require(vdd_mv > 0.0, "cell library: vdd must be positive");
}

void CellLibrary::add(CellType type, CellParams params) {
  require(netlist::is_logic(type.kind), "cell library: cannot add input pads");
  require(params.delay_ps > 0.0 && params.cout_ff > 0.0 &&
              params.rg_kohm > 0.0 && params.area > 0.0,
          "cell library: delay/cout/rg/area must be positive for cell " +
              to_string(type));
  require(params.ipeak_ua > 0.0 && params.ileak_na > 0.0,
          "cell library: currents must be positive for cell " + to_string(type));
  cells_[type] = params;
}

bool CellLibrary::has(CellType type) const { return cells_.contains(type); }

const CellParams& CellLibrary::params(CellType type) const {
  const auto it = cells_.find(type);
  if (it == cells_.end())
    throw LookupError("library '" + name_ + "' has no cell '" +
                      to_string(type) + "'");
  return it->second;
}

std::vector<CellType> CellLibrary::cell_types() const {
  std::vector<CellType> out;
  out.reserve(cells_.size());
  for (const auto& [type, params] : cells_) out.push_back(type);
  return out;
}

std::vector<CellParams> bind_cells(const netlist::Netlist& nl,
                                   const CellLibrary& lib) {
  std::vector<CellParams> bound(nl.gate_count());
  for (netlist::GateId id = 0; id < nl.gate_count(); ++id) {
    const auto& g = nl.gate(id);
    if (!netlist::is_logic(g.kind)) continue;  // PI: all-zero params
    require(g.fanins.size() <= 255, "gate fan-in too large for cell binding");
    bound[id] = lib.params(
        CellType{g.kind, static_cast<std::uint8_t>(g.fanins.size())});
  }
  return bound;
}

namespace {

struct KindBase {
  netlist::GateKind kind;
  double delay_ps;   // at fan-in 2 (or the unary cell's delay)
  double cout_ff;    // at fan-in 2
  double area;       // at fan-in 2
  double ileak_na;   // at fan-in 2
};

}  // namespace

CellLibrary default_library() {
  CellLibrary lib("cmos5v-generic", 5000.0);
  constexpr double kLn2 = 0.6931471805599453;

  // Unary cells.
  const auto add_unary = [&](netlist::GateKind kind, double delay_ps,
                             double cout_ff, double area, double ileak_na) {
    CellParams p;
    p.delay_ps = delay_ps;
    p.cout_ff = cout_ff;
    p.rg_kohm = delay_ps / (kLn2 * cout_ff);
    p.ipeak_ua = 0.75 * lib.vdd_mv() / p.rg_kohm;
    p.ileak_na = ileak_na;
    p.cin_ff = 6.0;
    p.cvr_ff = 2.5;
    p.area = area;
    lib.add(CellType{kind, 1}, p);
  };
  add_unary(netlist::GateKind::kNot, 180.0, 12.0, 4.0, 0.12);
  add_unary(netlist::GateKind::kBuf, 350.0, 14.0, 6.0, 0.18);

  const KindBase bases[] = {
      {netlist::GateKind::kAnd, 380.0, 16.0, 10.0, 0.24},
      {netlist::GateKind::kNand, 260.0, 15.0, 8.0, 0.20},
      {netlist::GateKind::kOr, 400.0, 16.0, 10.0, 0.26},
      {netlist::GateKind::kNor, 290.0, 15.0, 8.0, 0.22},
      {netlist::GateKind::kXor, 480.0, 18.0, 14.0, 0.34},
      {netlist::GateKind::kXnor, 470.0, 18.0, 14.0, 0.34},
  };
  for (const auto& base : bases) {
    for (unsigned fanin = 2; fanin <= 9; ++fanin) {
      // Empirical fan-in scaling of a static CMOS cell: series stacks slow
      // the cell and enlarge it roughly linearly.
      const double k = static_cast<double>(fanin - 2);
      CellParams p;
      p.delay_ps = base.delay_ps * (1.0 + 0.18 * k);
      p.cout_ff = base.cout_ff * (1.0 + 0.12 * k);
      p.rg_kohm = p.delay_ps / (kLn2 * p.cout_ff);
      p.ipeak_ua = 0.75 * lib.vdd_mv() / p.rg_kohm;
      p.ileak_na = base.ileak_na * (1.0 + 0.22 * k);
      p.cin_ff = 6.0;
      p.cvr_ff = 2.5 + 0.5 * static_cast<double>(fanin);
      p.area = base.area * (1.0 + 0.45 * k);
      lib.add(CellType{base.kind, static_cast<std::uint8_t>(fanin)}, p);
    }
  }
  return lib;
}

}  // namespace iddq::lib
