#include "library/lib_io.hpp"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <limits>
#include <ostream>
#include <sstream>
#include <vector>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace iddq::lib {

CellLibrary read_library_text(std::string_view text,
                              std::string_view source_label) {
  std::string lib_name = "unnamed";
  double vdd_mv = 5000.0;
  // Collected before the CellLibrary is constructed (header lines may appear
  // in any order before the first cell).
  struct PendingCell {
    CellType type;
    CellParams params;
    std::size_t line;
  };
  std::vector<PendingCell> cells;
  bool in_cell = false;
  PendingCell current;

  std::size_t line_no = 0;
  std::size_t pos = 0;
  bool saw_cell = false;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, eol == std::string_view::npos ? text.size() - pos : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++line_no;
    if (const auto hash = line.find('#'); hash != std::string_view::npos)
      line = line.substr(0, hash);
    line = str::trim(line);
    if (line.empty()) continue;

    const auto words = str::split_ws(line);
    const std::string key = str::to_lower(words[0]);
    if (key == "library") {
      if (words.size() != 2)
        throw ParseError(source_label, line_no, "library expects one name");
      lib_name = std::string(words[1]);
    } else if (key == "vdd_mv") {
      if (words.size() != 2 || !str::parse_double(words[1], vdd_mv))
        throw ParseError(source_label, line_no, "vdd_mv expects a number");
      if (saw_cell)
        throw ParseError(source_label, line_no,
                         "vdd_mv must precede cell definitions");
    } else if (key == "cell") {
      if (in_cell)
        throw ParseError(source_label, line_no,
                         "nested cell (missing 'end'?)");
      if (words.size() != 3)
        throw ParseError(source_label, line_no, "cell expects: cell KIND FANIN");
      netlist::GateKind kind{};
      if (!netlist::gate_kind_from_string(words[1], kind) ||
          kind == netlist::GateKind::kInput)
        throw ParseError(source_label, line_no,
                         "unknown cell kind '" + std::string(words[1]) + "'");
      std::size_t fanin = 0;
      if (!str::parse_size(words[2], fanin) || fanin == 0 || fanin > 255)
        throw ParseError(source_label, line_no, "bad fan-in count");
      current = PendingCell{};
      current.type = CellType{kind, static_cast<std::uint8_t>(fanin)};
      current.line = line_no;
      in_cell = true;
      saw_cell = true;
    } else if (key == "end") {
      if (!in_cell)
        throw ParseError(source_label, line_no, "'end' outside cell");
      cells.push_back(current);
      in_cell = false;
    } else if (in_cell) {
      if (words.size() != 2)
        throw ParseError(source_label, line_no,
                         "cell attribute expects: NAME VALUE");
      double value = 0.0;
      if (!str::parse_double(words[1], value))
        throw ParseError(source_label, line_no,
                         "bad numeric value '" + std::string(words[1]) + "'");
      auto& p = current.params;
      if (key == "delay_ps") p.delay_ps = value;
      else if (key == "ipeak_ua") p.ipeak_ua = value;
      else if (key == "ileak_na") p.ileak_na = value;
      else if (key == "cin_ff") p.cin_ff = value;
      else if (key == "cout_ff") p.cout_ff = value;
      else if (key == "rg_kohm") p.rg_kohm = value;
      else if (key == "cvr_ff") p.cvr_ff = value;
      else if (key == "area") p.area = value;
      else
        throw ParseError(source_label, line_no,
                         "unknown cell attribute '" + key + "'");
    } else {
      throw ParseError(source_label, line_no,
                       "unexpected token '" + key + "'");
    }
  }
  if (in_cell)
    throw ParseError(source_label, line_no, "unterminated cell (missing 'end')");

  CellLibrary lib(lib_name, vdd_mv);
  for (const auto& c : cells) {
    try {
      lib.add(c.type, c.params);
    } catch (const Error& e) {
      throw ParseError(source_label, c.line, e.what());
    }
  }
  return lib;
}

CellLibrary read_library_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open library file '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return read_library_text(buf.str(), path);
}

void write_library(std::ostream& os, const CellLibrary& lib) {
  // Full round-trip precision: reloading a written library must reproduce
  // every parameter bit-for-bit up to decimal conversion.
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
  os << "# iddqsyn cell library\n";
  os << "library " << lib.name() << '\n';
  os << "vdd_mv " << lib.vdd_mv() << '\n';
  auto types = lib.cell_types();
  std::sort(types.begin(), types.end(), [](const CellType& a, const CellType& b) {
    if (a.kind != b.kind)
      return static_cast<int>(a.kind) < static_cast<int>(b.kind);
    return a.fanin < b.fanin;
  });
  for (const auto& t : types) {
    const CellParams& p = lib.params(t);
    os << "cell " << netlist::to_string(t.kind) << ' '
       << static_cast<unsigned>(t.fanin) << '\n';
    os << "  delay_ps " << p.delay_ps << '\n';
    os << "  ipeak_ua " << p.ipeak_ua << '\n';
    os << "  ileak_na " << p.ileak_na << '\n';
    os << "  cin_ff " << p.cin_ff << '\n';
    os << "  cout_ff " << p.cout_ff << '\n';
    os << "  rg_kohm " << p.rg_kohm << '\n';
    os << "  cvr_ff " << p.cvr_ff << '\n';
    os << "  area " << p.area << '\n';
    os << "end\n";
  }
}

std::string to_library_string(const CellLibrary& lib) {
  std::ostringstream os;
  write_library(os, lib);
  return os.str();
}

}  // namespace iddq::lib
