// Cell types and their electrical-level characterization.
//
// The paper assumes "a target cell library fully characterized at electrical
// level" (section 3): every estimator reads only these per-cell parameters.
// Units follow support/units.hpp (mV, uA, kOhm, fF, ps).
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "netlist/gate.hpp"

namespace iddq::lib {

/// A library cell is identified by its logic function and fan-in count.
struct CellType {
  netlist::GateKind kind = netlist::GateKind::kNand;
  std::uint8_t fanin = 2;

  friend bool operator==(const CellType&, const CellType&) = default;
};

/// Electrical characterization of one cell.
struct CellParams {
  double delay_ps = 0.0;   // nominal pair delay D(g), without BIC sensor
  double ipeak_ua = 0.0;   // maximum transient switching current iDD_max(g)
  double ileak_na = 0.0;   // maximum quiescent (fault-free) current, in nA
  double cin_ff = 0.0;     // input capacitance per pin
  double cout_ff = 0.0;    // equivalent output capacitance C_g
  double rg_kohm = 0.0;    // average ON resistance R_g of the discharge path
  double cvr_ff = 0.0;     // parasitic contribution to the virtual rail C_s
  double area = 0.0;       // layout area in technology units
};

[[nodiscard]] std::string to_string(const CellType& t);

struct CellTypeHash {
  [[nodiscard]] std::size_t operator()(const CellType& t) const noexcept {
    return std::hash<std::uint32_t>{}(
        (static_cast<std::uint32_t>(t.kind) << 8) | t.fanin);
  }
};

}  // namespace iddq::lib
