// Cell-library fingerprinting for the content-addressed result cache.
//
// Covers everything the estimators read: VDD and, per registered cell, the
// (kind, fanin) identity and all eight electrical parameters. Cells are
// hashed in sorted (kind, fanin) order so the digest is independent of
// registration order. The library *name* is excluded — it never enters a
// computation.
#pragma once

#include <cstdint>

#include "library/cell_library.hpp"

namespace iddq::lib {

/// Stable 64-bit digest of a library's electrical content.
[[nodiscard]] std::uint64_t library_fingerprint(const CellLibrary& lib);

}  // namespace iddq::lib
