#include "library/fingerprint.hpp"

#include <algorithm>
#include <vector>

#include "support/hash.hpp"

namespace iddq::lib {

std::uint64_t library_fingerprint(const CellLibrary& lib) {
  std::vector<CellType> types = lib.cell_types();
  std::sort(types.begin(), types.end(), [](const CellType& a,
                                           const CellType& b) {
    if (a.kind != b.kind) return a.kind < b.kind;
    return a.fanin < b.fanin;
  });

  Hash64 h;
  h.mix_double(lib.vdd_mv());
  h.mix_size(types.size());
  for (const CellType& t : types) {
    h.mix_byte(static_cast<std::uint8_t>(t.kind));
    h.mix_byte(t.fanin);
    const CellParams& p = lib.params(t);
    h.mix_double(p.delay_ps);
    h.mix_double(p.ipeak_ua);
    h.mix_double(p.ileak_na);
    h.mix_double(p.cin_ff);
    h.mix_double(p.cout_ff);
    h.mix_double(p.rg_kohm);
    h.mix_double(p.cvr_ff);
    h.mix_double(p.area);
  }
  return h.value();
}

}  // namespace iddq::lib
