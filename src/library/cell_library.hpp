// CellLibrary: the characterized target technology.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "library/cell.hpp"
#include "netlist/netlist.hpp"

namespace iddq::lib {

class CellLibrary {
 public:
  explicit CellLibrary(std::string_view name, double vdd_mv = 5000.0);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] double vdd_mv() const noexcept { return vdd_mv_; }

  /// Registers (or replaces) a cell.
  void add(CellType type, CellParams params);

  [[nodiscard]] bool has(CellType type) const;

  /// Parameters of an exact cell; throws iddq::LookupError when missing.
  [[nodiscard]] const CellParams& params(CellType type) const;

  /// All registered cells (unspecified order).
  [[nodiscard]] std::vector<CellType> cell_types() const;

  [[nodiscard]] std::size_t size() const noexcept { return cells_.size(); }

 private:
  std::string name_;
  double vdd_mv_;
  std::unordered_map<CellType, CellParams, CellTypeHash> cells_;
};

/// Per-gate resolved cell parameters for a netlist, indexed by GateId.
/// Primary inputs receive all-zero parameters (they draw no supply current
/// and add no delay). Throws iddq::LookupError when a gate's (kind, fanin)
/// has no library cell.
[[nodiscard]] std::vector<CellParams> bind_cells(const netlist::Netlist& nl,
                                                 const CellLibrary& lib);

/// The default 1995-era 5 V CMOS library used throughout the benches:
/// BUF/NOT plus AND/NAND/OR/NOR/XOR/XNOR with fan-in 2..9, parameterized
/// self-consistently (D ~ ln2 * R_g * C_g, ipeak ~ 0.75 * VDD / R_g).
[[nodiscard]] CellLibrary default_library();

}  // namespace iddq::lib
