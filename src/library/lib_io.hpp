// Text serialization of cell libraries.
//
// Format (line-oriented, '#' comments):
//
//   library cmos5v-generic
//   vdd_mv 5000
//   cell nand 2
//     delay_ps 260
//     ipeak_ua 230.5
//     ileak_na 0.2
//     cin_ff 6
//     cout_ff 15
//     rg_kohm 25.0
//     cvr_ff 3.5
//     area 8
//   end
//   ...
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "library/cell_library.hpp"

namespace iddq::lib {

[[nodiscard]] CellLibrary read_library_text(std::string_view text,
                                            std::string_view source_label =
                                                "<text>");

[[nodiscard]] CellLibrary read_library_file(const std::string& path);

void write_library(std::ostream& os, const CellLibrary& lib);

[[nodiscard]] std::string to_library_string(const CellLibrary& lib);

}  // namespace iddq::lib
