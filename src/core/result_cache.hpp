// Content-addressed result cache for optimizer runs.
//
// A MethodResult is a pure function of (netlist structure, cell library,
// sensor/weight config, optimizer tuning, method spec, seed, budget, start
// partition): every optimizer draws from an explicitly seeded Rng and the
// evaluator is deterministic. The cache exploits that: the inputs are
// folded into a stable 64-bit key (support/hash.hpp; see docs/caching.md
// for the exact recipe) and the outcome is stored under it, in memory and
// — when a cache directory is attached — as one JSON line per entry in
// `<dir>/results.jsonl`. Repeated sweeps and the Table 1 bench then only
// pay for the (circuit, method, seed, budget) points they have not seen.
//
// The cache stores the partition (intra-module gate order preserved) plus
// the optimizer's own fitness/costs/counters; module reports and sensor
// area are recomputed from the partition on a hit, which reproduces the
// original MethodResult byte-for-byte (tests/core/test_result_cache.cpp).
//
// Thread-safe: BatchRunner workers share one instance. Unparseable lines
// in the cache file are skipped, so a truncated write (crash mid-append)
// degrades to a miss, never to corruption.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/coverage_options.hpp"
#include "core/optimizer.hpp"
#include "partition/cost_model.hpp"

namespace iddq::core {

/// What one cache entry stores — enough to reconstruct a MethodResult
/// without rerunning the optimizer.
struct CacheRecord {
  std::string method;
  std::size_t gate_count = 0;
  /// Modules with intra-module gate order preserved: per-module floating-
  /// point accumulation on a hit replays the original summation order.
  std::vector<std::vector<netlist::GateId>> modules;
  part::Fitness fitness;
  part::Costs costs;
  std::size_t iterations = 0;
  std::size_t evaluations = 0;
  /// Measured IDDQ coverage counters (docs/coverage.md), stored so a hit
  /// replays a coverage-bearing row without re-simulating. The percentage
  /// is derived (sim::coverage_percent), not stored. Only engines whose
  /// context fingerprint mixed the same CoverageOptions can see this
  /// record, so has_coverage always matches the engine's expectation.
  bool has_coverage = false;
  std::size_t faults_total = 0;
  std::size_t faults_detected = 0;
  std::size_t patterns_used = 0;
  std::size_t patterns_minimized = 0;
};

class ResultCache {
 public:
  /// In-memory only cache.
  ResultCache() = default;

  /// Cache backed by `dir` (created when missing): existing entries are
  /// loaded from `<dir>/results.jsonl`, every store appends to it.
  explicit ResultCache(const std::string& dir) { attach_dir(dir); }

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Attaches the disk backing (see the constructor). Throws iddq::Error
  /// when the directory or file cannot be created.
  void attach_dir(const std::string& dir);

  /// Caps the resident (in-memory) entry count for a disk-backed cache:
  /// least-recently-used entries beyond the cap keep only their byte
  /// offset in results.jsonl and are re-read (and re-admitted, evicting
  /// another entry) on their next lookup. 0 (the default) means unbounded.
  /// Ignored while no directory is attached — evicting a memory-only
  /// entry would lose it. A long-lived server in front of a sweep
  /// directory holding millions of rows stays at a bounded footprint.
  void set_max_resident(std::size_t max_resident);

  /// Evicts resident entries that have not been touched for `idle`
  /// (iddqsyn_server --cache-idle-evict): checked opportunistically on
  /// every lookup/store — no background thread — so a server whose
  /// traffic moves on from yesterday's circuits sheds their records.
  /// Disk-backed caches only (the next lookup reloads transparently,
  /// counted in disk_hits); ignored while no directory is attached, like
  /// set_max_resident. 0 (the default) disables.
  void set_idle_deadline(std::chrono::milliseconds idle);

  /// Subset of evictions() performed by the idle deadline (the rest are
  /// residency-cap evictions).
  [[nodiscard]] std::uint64_t idle_evictions() const;

  /// Test hook: the clock idle eviction reads (defaults to
  /// steady_clock::now). Lets tests expire entries without sleeping.
  void set_clock_for_test(
      std::function<std::chrono::steady_clock::time_point()> clock);

  /// Returns the record stored under `key`, counting a hit or a miss.
  /// An evicted entry is transparently reloaded from the backing file
  /// (still a hit; counted separately in disk_hits).
  [[nodiscard]] std::optional<CacheRecord> lookup(std::uint64_t key) const;

  /// Stores (replacing any previous record under the same key) and appends
  /// to the backing file when one is attached.
  void store(std::uint64_t key, const CacheRecord& record);

  /// Total entries known to this cache: resident plus evicted-to-disk.
  [[nodiscard]] std::size_t size() const;
  /// Entries currently held in memory (== size() while unbounded).
  [[nodiscard]] std::size_t resident_size() const;
  [[nodiscard]] std::uint64_t hits() const;
  /// Subset of hits() served by re-reading an evicted entry from disk.
  [[nodiscard]] std::uint64_t disk_hits() const;
  /// Residency evictions performed so far (an entry may be counted many
  /// times as it cycles out and back in).
  [[nodiscard]] std::uint64_t evictions() const;
  [[nodiscard]] std::uint64_t misses() const;

  /// Non-empty lines of the attached file that failed to parse (each one
  /// silently degraded to a miss). Surfaced by the CLI's cache stats so a
  /// corrupted sweep directory is visible instead of just slow.
  [[nodiscard]] std::size_t corrupt_lines() const;

  /// One JSON line (no trailing newline). Doubles are written with 17
  /// significant digits, which round-trips IEEE-754 exactly.
  [[nodiscard]] static std::string serialize(std::uint64_t key,
                                             const CacheRecord& record);

  /// Parses a line produced by serialize (any key order is accepted).
  /// Returns false on malformed input.
  [[nodiscard]] static bool parse(std::string_view line, std::uint64_t& key,
                                  CacheRecord& out);

 private:
  void touch(std::uint64_t key) const;
  void evict_over_cap() const;
  void evict_idle() const;
  [[nodiscard]] std::chrono::steady_clock::time_point now() const;

  mutable std::mutex mutex_;
  mutable std::unordered_map<std::uint64_t, CacheRecord> entries_;
  /// Byte offset of the last write of each key in the backing file; the
  /// reload path for evicted entries. Superset of the resident keys while
  /// a directory is attached.
  std::unordered_map<std::uint64_t, std::streamoff> offsets_;
  /// Resident keys, most recently used first.
  mutable std::list<std::uint64_t> lru_;
  mutable std::unordered_map<std::uint64_t, std::list<std::uint64_t>::iterator>
      lru_pos_;
  std::size_t max_resident_ = 0;  // 0 = unbounded
  /// Idle deadline; 0 = disabled. Last-touch stamps ride the LRU order
  /// (touch order == recency order), so expiry scans from lru_.back().
  std::chrono::milliseconds idle_deadline_{0};
  mutable std::unordered_map<std::uint64_t,
                             std::chrono::steady_clock::time_point>
      last_touch_;
  std::function<std::chrono::steady_clock::time_point()> clock_;
  std::string file_path_;  // empty = in-memory only
  mutable std::uint64_t hits_ = 0;
  mutable std::uint64_t disk_hits_ = 0;
  mutable std::uint64_t evictions_ = 0;
  mutable std::uint64_t idle_evictions_ = 0;
  mutable std::uint64_t misses_ = 0;
  std::size_t corrupt_lines_ = 0;
};

/// What `iddqsyn --cache-stats` reports about a results.jsonl file.
struct CacheFileStats {
  std::size_t total_lines = 0;      // non-empty lines
  std::size_t corrupt_lines = 0;    // unparseable (degrade to misses)
  std::size_t unique_keys = 0;
  std::size_t duplicate_lines = 0;  // parsed lines shadowed by a later write
  /// Age histogram over the *surviving* (last-write) line of every unique
  /// key: bucket b counts keys whose last write is [2^b, 2^(b+1)) lines
  /// from the file end — a quick view of how stale a long-lived sweep
  /// directory's useful entries are.
  std::vector<std::size_t> age_histogram;
};

/// Scans `<dir>/results.jsonl` without loading records into memory beyond
/// their keys. Throws iddq::Error when the file cannot be opened.
[[nodiscard]] CacheFileStats inspect_cache_file(const std::string& dir);

/// Outcome of compact_cache_file.
struct CacheCompaction {
  std::size_t kept = 0;                // lines in the rewritten file
  std::size_t dropped_duplicates = 0;  // earlier writes of a rewritten key
  std::size_t dropped_corrupt = 0;     // unparseable lines removed
};

/// Rewrites `<dir>/results.jsonl` keeping only the last line per key (in
/// last-write order), atomically via a temp file + rename (copy+remove
/// when the rename fails across filesystems). A temp file orphaned by a
/// crash mid-compaction is swept up by the next attach_dir. Byte-
/// preserving for the surviving lines. Throws iddq::Error on IO failure.
/// Must not run concurrently with writers appending to the same directory.
[[nodiscard]] CacheCompaction compact_cache_file(const std::string& dir);

namespace detail {
/// Moves `from` over `to`: rename when possible, copy+remove when the
/// rename fails (EXDEV across mounts). `force_copy` is the test hook for
/// the fallback path. Throws iddq::Error when both strategies fail.
void replace_file(const std::string& from, const std::string& to,
                  bool force_copy = false);
}  // namespace detail

/// Fingerprint of everything that is constant per FlowEngine: circuit and
/// library content, sensor spec, cost weights, rho, the optimizer tuning
/// knobs (per-request seed/record_trace fields excluded), and the
/// coverage options. Pass `coverage.fault_model` in canonical spelling
/// (sim::FaultModelSpec::parse().canonical()) so equivalent specs share
/// entries; a default-constructed CoverageOptions reproduces the
/// coverage-off fingerprint.
[[nodiscard]] std::uint64_t cache_context_fingerprint(
    std::uint64_t netlist_fp, std::uint64_t library_fp,
    const elec::SensorSpec& sensor, const part::CostWeights& weights,
    std::uint32_t rho, const OptimizerConfig& optimizers,
    const CoverageOptions& coverage = {});

/// Final cache key: context fingerprint + per-run inputs. `start` is the
/// explicit start partition, or nullptr when the engine plans the module
/// count (the plan is derived from the context, so it needs no extra
/// hashing).
[[nodiscard]] std::uint64_t cache_key(std::uint64_t context_fp,
                                      std::string_view method_spec,
                                      std::uint64_t seed,
                                      std::size_t max_evaluations,
                                      const part::Partition* start);

}  // namespace iddq::core
