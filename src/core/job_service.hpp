// Job-oriented async execution service — the dispatch point for every run
// in the system (docs/architecture.md).
//
// A JobSpec names what to run (circuit spec, method list, seed, budget,
// cache policy); submit() queues it and returns a JobHandle immediately.
// The handle offers non-blocking status(), a future-like wait(), and
// cooperative cancel(); a per-job JobEventSink streams the lifecycle
// (queued -> running -> progress ticks -> row per finished method ->
// done/failed/cancelled) as it happens, from the worker thread.
//
// Execution is exactly FlowEngine::run_methods — same per-method derived
// seeds (Rng::mix_seed(base_seed, method_index)), same section-5 standard
// coupling, same cache keys — so a job at a given (circuit, methods, seed,
// budget) is byte-identical to a direct engine call, and BatchRunner is a
// thin shim over this service (tests/core/test_job_service.cpp pins both).
//
// Cancellation is cooperative: cancel() sets a flag the sequence polls
// before each method and at every live progress tick (evolution reports
// per generation, annealing/tabu every progress_every steps), so a cancel
// lands mid-run within one tick, not after the method completes. Rows
// already produced remain available in the terminal JobResult.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/job_event.hpp"
#include "core/job_queue.hpp"
#include "core/optimizer_registry.hpp"
#include "library/cell_library.hpp"

namespace iddq::core {

/// What to run: one circuit through an ordered method list. A pure value —
/// every field is part of the job's identity (and of its cache keys).
struct JobSpec {
  std::string circuit;  // builtin name or .bench path (or loader-specific)
  std::vector<std::string> methods{"evolution", "standard"};
  /// Per-method seeds derive as Rng::mix_seed(base_seed, method_index),
  /// matching FlowEngine::run_methods.
  std::uint64_t base_seed = 1;
  std::size_t max_evaluations = 0;  // per-method budget, 0 = default

  /// Scheduling priority: higher pops sooner, equal priorities are FIFO,
  /// and queued jobs age upward so bulk sweeps are never starved (see
  /// core/job_queue.hpp). Scheduling only — results do not depend on it,
  /// so it is not part of the job's cache identity.
  int priority = 0;

  /// Wall-clock budget from submit (queue wait included); 0 = none. An
  /// expired job fails at its next cooperative poll point with reason
  /// "timeout" (docs/robustness.md). Scheduling-adjacent like priority:
  /// not part of the job's cache identity.
  std::size_t deadline_ms = 0;

  enum class CachePolicy {
    use,    // consult/populate the service's shared ResultCache
    bypass  // always recompute; never read or write the cache
  };
  CachePolicy cache_policy = CachePolicy::use;
};

/// Terminal outcome of one job.
struct JobResult {
  std::string circuit;
  SizePlan plan;
  /// Rows completed before the terminal state, in spec order: all of them
  /// when done, a prefix when failed/cancelled mid-sequence.
  std::vector<MethodResult> rows;
  std::string error;  // non-empty iff state == failed
  /// Machine-readable failure class ("timeout" today); empty for plain
  /// errors. Rides the protocol's failed event as a `reason` field.
  std::string reason;
  JobState state = JobState::queued;

  [[nodiscard]] bool ok() const noexcept { return state == JobState::done; }
};

namespace detail {
struct JobControl;
}

/// JobService tuning. Namespace-scope (not nested) so it can be a default
/// constructor argument.
struct JobServiceConfig {
  std::size_t workers = 1;  // worker threads (clamped to >= 1)
  FlowEngineConfig flow;
};

/// Shared-state handle to a submitted job. Copyable; all copies observe
/// the same job. Thread-safe.
class JobHandle {
 public:
  JobHandle() = default;

  [[nodiscard]] bool valid() const noexcept { return ctl_ != nullptr; }
  [[nodiscard]] std::uint64_t id() const;

  /// Non-blocking state snapshot.
  [[nodiscard]] JobState status() const;

  /// Requests cooperative cancellation. Idempotent, non-blocking; a no-op
  /// once the job is terminal. The job transitions to cancelled at its
  /// next poll point (or straight from the queue if not yet running).
  void cancel();

  /// Blocks until the job is terminal; returns the result (valid for the
  /// handle's lifetime).
  const JobResult& wait() const;

  /// Bounded wait; true when the job reached a terminal state in time.
  bool wait_for(std::chrono::milliseconds timeout) const;

 private:
  friend class JobService;
  explicit JobHandle(std::shared_ptr<detail::JobControl> ctl)
      : ctl_(std::move(ctl)) {}

  std::shared_ptr<detail::JobControl> ctl_;
};

/// Long-lived worker-pool service. `library` and `registry` must outlive
/// it; the FlowEngineConfig (including the shared ResultCache pointer) is
/// copied per job. Destruction drains: queued jobs still run, then the
/// workers join — every handle's wait() is guaranteed to return.
class JobService {
 public:
  /// Resolves a circuit spec to a netlist. Defaults to
  /// netlist::load_circuit (builtin generators + .bench files).
  using CircuitLoader = std::function<netlist::Netlist(const std::string&)>;

  using Config = JobServiceConfig;

  explicit JobService(
      const lib::CellLibrary& library, Config config = {},
      const OptimizerRegistry& registry = OptimizerRegistry::global());
  ~JobService();

  JobService(const JobService&) = delete;
  JobService& operator=(const JobService&) = delete;

  /// Replaces the circuit loader (tests inject synthetic circuits). Call
  /// before the first submit.
  void set_circuit_loader(CircuitLoader loader);

  /// Queues a job. The sink (may be empty) starts receiving events
  /// immediately — `queued` fires on the calling thread before submit
  /// returns, everything later from a worker thread. Throws iddq::Error
  /// after shutdown().
  JobHandle submit(JobSpec spec, JobEventSink sink = {});

  /// Closes intake, lets queued jobs finish, joins the workers.
  /// Idempotent; the destructor calls it.
  void shutdown();

  [[nodiscard]] const FlowEngineConfig& flow_config() const noexcept {
    return config_.flow;
  }
  [[nodiscard]] std::size_t worker_count() const noexcept {
    return workers_.size();
  }

  /// Jobs queued but not yet picked up by a worker (excludes running
  /// jobs). What the server's --max-queue admission bound checks.
  [[nodiscard]] std::size_t queue_depth() const { return queue_.size(); }

  /// Atomic admission for bounded multi-job submits (the server's
  /// --max-queue): reserves `count` slots iff current depth + outstanding
  /// reservations + count fit under `max_queue` (0 = no bound, always
  /// succeeds). Concurrent reservers cannot jointly overshoot the bound —
  /// the check-then-submit of a whole sweep becomes atomic. Call
  /// release_reservation(count) once the reserved submits have been
  /// pushed (or abandoned); until then other reservers see the slots as
  /// taken, which errs on the side of rejecting, never of overflowing.
  [[nodiscard]] bool try_reserve(std::size_t count, std::size_t max_queue);
  void release_reservation(std::size_t count);

  // Lifetime counters (monotonic, thread-safe).
  [[nodiscard]] std::uint64_t submitted() const noexcept;
  [[nodiscard]] std::uint64_t completed() const noexcept;  // done only
  [[nodiscard]] std::uint64_t failed() const noexcept;
  [[nodiscard]] std::uint64_t cancelled() const noexcept;
  /// Subset of failed(): jobs that expired their deadline_ms.
  [[nodiscard]] std::uint64_t timeouts() const noexcept;

 private:
  void worker_loop();
  void execute(detail::JobControl& job);

  const lib::CellLibrary* library_;
  Config config_;
  const OptimizerRegistry* registry_;
  CircuitLoader loader_;

  JobQueue<std::shared_ptr<detail::JobControl>> queue_;
  std::mutex admission_mutex_;  // guards reserved_ against queue_ reads
  std::size_t reserved_ = 0;    // slots promised to in-flight sweeps
  std::vector<std::thread> workers_;
  std::atomic<bool> shut_down_{false};
  std::atomic<std::uint64_t> next_id_{1};
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> cancelled_{0};
  std::atomic<std::uint64_t> timeouts_{0};
};

}  // namespace iddq::core
