// Greedy first-improvement refiner.
//
// Deterministic hill climbing over the ES mutation neighbourhood (boundary
// gate -> adjacent module): scans boundary gates in order, applies any move
// that improves the lexicographic fitness, and stops when a full sweep finds
// none (a local optimum of the 1-move neighbourhood) or the evaluation
// budget is exhausted. Serves both as an optimizer baseline and as an
// optional polish pass after the ES.
//
// Candidates are scored with the evaluator's copy-free probe_move, so a
// rejected trial leaves NO trace in the running sums. This is a deliberate
// re-pin versus the historical move-then-evaluate-then-revert scan, whose
// rejected trials chained floating-point residue through the sums (making
// every trial depend on all earlier ones — inherently sequential); the
// residue-free trajectory is what lets the scan parallelize, and the
// result-cache salt was bumped to v3 so old greedy-family rows cannot
// replay (src/core/result_cache.cpp). With an ExecutorPool the scan
// speculatively scores a window of upcoming candidates in parallel (one
// private evaluator copy per concurrency slot) and then replays the serial
// first-improvement walk over the scores, so the applied moves, evaluation
// counts, and every double are byte-identical at any thread count;
// candidates past the first improvement are discarded (wasted speculative
// work, never wrong results).
#pragma once

#include "partition/evaluator.hpp"

namespace iddq::support {
class ExecutorPool;
}

namespace iddq::core {

struct RefineResult {
  std::size_t moves_applied = 0;
  std::size_t evaluations = 0;
  part::Fitness final_fitness;
};

/// Refines `eval` in place. `pool` parallelizes the candidate scan when
/// non-null (a per-run knob like a seed — results are pool-invariant).
RefineResult greedy_refine(part::PartitionEvaluator& eval,
                           std::size_t max_evaluations = 100000,
                           support::ExecutorPool* pool = nullptr);

}  // namespace iddq::core
