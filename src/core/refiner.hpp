// Greedy first-improvement refiner.
//
// Deterministic hill climbing over the ES mutation neighbourhood (boundary
// gate -> adjacent module): scans boundary gates in order, applies any move
// that improves the lexicographic fitness, and stops when a full sweep finds
// none (a local optimum of the 1-move neighbourhood) or the evaluation
// budget is exhausted. Serves both as an optimizer baseline and as an
// optional polish pass after the ES.
#pragma once

#include "partition/evaluator.hpp"

namespace iddq::core {

struct RefineResult {
  std::size_t moves_applied = 0;
  std::size_t evaluations = 0;
  part::Fitness final_fitness;
};

/// Refines `eval` in place.
RefineResult greedy_refine(part::PartitionEvaluator& eval,
                           std::size_t max_evaluations = 100000);

}  // namespace iddq::core
