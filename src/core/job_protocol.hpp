// Line-delimited JSON job protocol — the wire format of iddqsyn_server
// (docs/server.md has the full spec and a worked session).
//
// One JobProtocolSession serves one client connection: it reads request
// objects line by line from a support::LineChannel, shards submits across
// the shared JobService (per-shard seeds mix_seed(seed, shard) — the same
// derivation as BatchRunner, so server results are byte-identical to
// `iddqsyn --jobs N` at the same base seed), and streams every JobEvent
// back as it happens. Worker threads emit concurrently; the session
// serializes channel writes internally.
//
// Requests (one JSON object per line):
//   {"op":"submit","id":"t1","circuits":["c17","c1908"],
//    "methods":["evolution","standard"],"seed":42,"budget":0,"cache":true,
//    "priority":0}
// "priority" (optional, may be negative) only reorders the queue —
// higher pops sooner, FIFO within a level, aging prevents starvation;
// results are independent of it. An optional "seeds" array (one entry per
// circuit) replaces the mix_seed derivation with explicit per-shard base
// seeds — the cluster front-end ships seeds as data so shard placement
// cannot change rows (docs/cluster.md).
//   {"op":"cancel","id":"t1"}
//   {"op":"stats"}
//   {"op":"ping"}      -> {"event":"pong","protocol":1,"workers":N}
//   {"op":"shutdown"}
//
// Responses/events: hello, accepted, queued, running, progress, row, done,
// failed, cancelled, sweep_done, stats, error, bye. Every job event
// carries the client-chosen sweep "id" plus the shard's "circuit".
//
// End of session: a shutdown op or channel EOF. Both drain — every
// submitted job reaches a terminal state and its events are flushed
// before run() returns (shutdown additionally answers "bye").
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/event_writer.hpp"
#include "core/job_service.hpp"
#include "support/transport.hpp"

namespace iddq::core {

/// Server-wide traffic counters, shared by every session of one server
/// process (iddqsyn_server wires a single instance into all sessions).
struct SessionTrafficStats {
  /// Sessions torn down by the overflow policy (must-deliver event could
  /// not be queued — the client stopped reading).
  std::atomic<std::uint64_t> overflow_disconnects{0};
  /// Submits rejected by the per-session in-flight quota.
  std::atomic<std::uint64_t> quota_rejections{0};
  /// Sessions that completed while the server was draining (their
  /// in-flight jobs finished or were cancelled at the drain deadline).
  std::atomic<std::uint64_t> drained_sessions{0};
};

/// Session knobs; namespace-scope so it can be a default argument.
struct JobProtocolOptions {
  bool emit_hello = true;  // announce protocol/workers on session start
  /// Admission bound (iddqsyn_server --max-queue): a submit whose shard
  /// fan-out would push the service's queue depth past this is rejected
  /// whole with a protocol `error` event — nothing of it is queued. 0 =
  /// unbounded.
  std::size_t max_queue = 0;
  /// Outbound event-queue bound (iddqsyn_server --session-queue): the
  /// most lines the session's event writer buffers for a slow client
  /// before the overflow policy (docs/server.md, "Backpressure") fires.
  /// 0 = unbounded (events are never dropped and a stalled client can
  /// buffer without limit — the pre-queue semantics, kept as the default
  /// for embedders and unit tests).
  std::size_t session_queue = 0;
  /// Per-session in-flight job quota (iddqsyn_server
  /// --max-jobs-per-session): a submit whose fan-out would push this
  /// session's unfinished-job count past the bound is rejected whole
  /// with a protocol `error`. 0 = unlimited.
  std::size_t max_jobs_per_session = 0;
  /// Optional server-wide counters; sessions bump them when the overflow
  /// policy or the quota fires. May be nullptr (standalone sessions).
  SessionTrafficStats* traffic = nullptr;
  /// Server-wide drain flag (docs/robustness.md). When set — by any
  /// session's shutdown op or the server's SIGTERM handler — every
  /// session rejects new submits with a protocol `error`, finishes its
  /// in-flight jobs bounded by `drain_timeout_ms`, and answers `bye`.
  /// May be nullptr (standalone sessions: only their own shutdown op
  /// drains them, unbounded — the pre-drain semantics).
  std::atomic<bool>* draining = nullptr;
  /// Budget for in-flight jobs once draining (iddqsyn_server
  /// --drain-timeout-ms): jobs still running at the deadline are
  /// cancelled (cooperative — they land within one progress tick).
  /// 0 = wait for them without bound.
  std::size_t drain_timeout_ms = 0;
  /// Default JobSpec::deadline_ms for submits that do not carry their own
  /// "deadline_ms" (iddqsyn_server --job-timeout-ms). 0 = none.
  std::size_t default_deadline_ms = 0;
};

class JobProtocolSession {
 public:
  using Options = JobProtocolOptions;

  /// `service` and `channel` must outlive the session. The service is
  /// shared: several sessions (server connections) may submit to it
  /// concurrently.
  JobProtocolSession(JobService& service, support::LineChannel& channel,
                     Options options = {});

  /// Serves the connection until EOF or a shutdown op; drains outstanding
  /// jobs before returning. Returns true when the client asked the whole
  /// server to shut down (the caller decides what that means).
  bool run();

 private:
  /// One submit's fan-out state; counters guarded by state_mutex_.
  struct Sweep {
    std::string id;
    std::size_t remaining = 0;
    std::size_t announced = 0;  // shards whose `queued` event was seen
    std::size_t ok = 0;
    std::size_t failed = 0;
    std::size_t cancelled = 0;
    std::vector<JobHandle> handles;
  };

  /// Returns true when the line was a shutdown op.
  bool handle_line(const std::string& line);
  void handle_submit(const struct SubmitRequest& request);
  void on_event(const std::shared_ptr<Sweep>& sweep, const JobEvent& event);
  void send_sweep_done(const std::string& id, std::size_t ok,
                       std::size_t failed, std::size_t cancelled);
  /// Routes through the session's event writer (non-blocking; overflow
  /// policy applies per `cls`). Everything except progress ticks is
  /// must_deliver.
  void send(const std::string& json,
            EventDeliveryClass cls = EventDeliveryClass::must_deliver);
  /// `id` (when non-empty) tags the error with the submit it rejects, so
  /// relaying clients can attribute it to a sweep.
  void send_error(const std::string& message, const std::string& id = "");
  void send_stats();
  void drain();
  /// The writer's overflow hook: aborts the read loop and cancels every
  /// job this session still owns, so a disconnected session's work stops
  /// consuming workers.
  void on_overflow_disconnect();

  JobService* service_;
  support::LineChannel* channel_;
  Options options_;

  std::mutex write_mutex_;  // serializes the no-writer fallback path
  std::mutex state_mutex_;  // guards sweeps_ / handles_ / in_flight_
  std::unordered_map<std::string, std::shared_ptr<Sweep>> sweeps_;
  std::vector<JobHandle> handles_;  // every job this session submitted
  std::size_t in_flight_ = 0;  // submitted shards not yet terminal
  std::uint64_t auto_id_ = 0;  // for submits without an "id"
  /// The run()-scoped event writer; null outside run() (send() then
  /// falls back to a direct locked write).
  SessionEventWriter* writer_ = nullptr;
};

}  // namespace iddq::core
