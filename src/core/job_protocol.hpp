// Line-delimited JSON job protocol — the wire format of iddqsyn_server
// (docs/server.md has the full spec and a worked session).
//
// One JobProtocolSession serves one client connection: it reads request
// objects line by line from a support::LineChannel, shards submits across
// the shared JobService (per-shard seeds mix_seed(seed, shard) — the same
// derivation as BatchRunner, so server results are byte-identical to
// `iddqsyn --jobs N` at the same base seed), and streams every JobEvent
// back as it happens. Worker threads emit concurrently; the session
// serializes channel writes internally.
//
// Requests (one JSON object per line):
//   {"op":"submit","id":"t1","circuits":["c17","c1908"],
//    "methods":["evolution","standard"],"seed":42,"budget":0,"cache":true,
//    "priority":0}
// "priority" (optional, may be negative) only reorders the queue —
// higher pops sooner, FIFO within a level, aging prevents starvation;
// results are independent of it.
//   {"op":"cancel","id":"t1"}
//   {"op":"stats"}
//   {"op":"shutdown"}
//
// Responses/events: hello, accepted, queued, running, progress, row, done,
// failed, cancelled, sweep_done, stats, error, bye. Every job event
// carries the client-chosen sweep "id" plus the shard's "circuit".
//
// End of session: a shutdown op or channel EOF. Both drain — every
// submitted job reaches a terminal state and its events are flushed
// before run() returns (shutdown additionally answers "bye").
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/job_service.hpp"
#include "support/transport.hpp"

namespace iddq::core {

/// Session knobs; namespace-scope so it can be a default argument.
struct JobProtocolOptions {
  bool emit_hello = true;  // announce protocol/workers on session start
  /// Admission bound (iddqsyn_server --max-queue): a submit whose shard
  /// fan-out would push the service's queue depth past this is rejected
  /// whole with a protocol `error` event — nothing of it is queued. 0 =
  /// unbounded.
  std::size_t max_queue = 0;
};

class JobProtocolSession {
 public:
  using Options = JobProtocolOptions;

  /// `service` and `channel` must outlive the session. The service is
  /// shared: several sessions (server connections) may submit to it
  /// concurrently.
  JobProtocolSession(JobService& service, support::LineChannel& channel,
                     Options options = {});

  /// Serves the connection until EOF or a shutdown op; drains outstanding
  /// jobs before returning. Returns true when the client asked the whole
  /// server to shut down (the caller decides what that means).
  bool run();

 private:
  /// One submit's fan-out state; counters guarded by state_mutex_.
  struct Sweep {
    std::string id;
    std::size_t remaining = 0;
    std::size_t announced = 0;  // shards whose `queued` event was seen
    std::size_t ok = 0;
    std::size_t failed = 0;
    std::size_t cancelled = 0;
    std::vector<JobHandle> handles;
  };

  /// Returns true when the line was a shutdown op.
  bool handle_line(const std::string& line);
  void handle_submit(const struct SubmitRequest& request);
  void on_event(const std::shared_ptr<Sweep>& sweep, const JobEvent& event);
  void send_sweep_done(const std::string& id, std::size_t ok,
                       std::size_t failed, std::size_t cancelled);
  void send(const std::string& json);
  void send_error(const std::string& message);
  void send_stats();
  void drain();

  JobService* service_;
  support::LineChannel* channel_;
  Options options_;

  std::mutex write_mutex_;  // serializes channel writes across threads
  std::mutex state_mutex_;  // guards sweeps_ / handles_
  std::unordered_map<std::string, std::shared_ptr<Sweep>> sweeps_;
  std::vector<JobHandle> handles_;  // every job this session submitted
  std::uint64_t auto_id_ = 0;       // for submits without an "id"
};

}  // namespace iddq::core
