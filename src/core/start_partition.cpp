#include "core/start_partition.hpp"

#include <algorithm>
#include <vector>

#include "netlist/levelize.hpp"
#include "support/error.hpp"

namespace iddq::core {

part::Partition make_start_partition(const netlist::Netlist& nl,
                                     std::size_t module_count, Rng& rng) {
  const std::size_t n = nl.logic_gate_count();
  require(module_count >= 1 && module_count <= n,
          "start partition: module count must be in [1, logic gates]");

  const auto levels = netlist::levelize(nl);
  // Free logic gates, kept sorted by (depth, random tiebreak) lazily: we
  // repeatedly need "a free gate of minimum depth".
  std::vector<netlist::GateId> by_depth(nl.logic_gates().begin(),
                                        nl.logic_gates().end());
  rng.shuffle(by_depth);  // random tie-break among equal depths
  std::stable_sort(by_depth.begin(), by_depth.end(),
                   [&](netlist::GateId a, netlist::GateId b) {
                     return levels.depth[a] < levels.depth[b];
                   });
  std::vector<bool> free_gate(nl.gate_count(), false);
  for (const netlist::GateId g : by_depth) free_gate[g] = true;
  std::size_t cursor = 0;  // first possibly-free entry of by_depth

  const auto next_seed = [&]() -> netlist::GateId {
    while (cursor < by_depth.size() && !free_gate[by_depth[cursor]]) ++cursor;
    return cursor < by_depth.size() ? by_depth[cursor] : netlist::kNoGate;
  };

  // Target size: ceil(n / K); the last module absorbs the remainder but the
  // sequential fill guarantees every module gets at least one gate because
  // target >= 1 and gates remain while modules remain.
  const std::size_t target = (n + module_count - 1) / module_count;

  part::Partition partition(nl.gate_count(), module_count);
  std::size_t remaining = n;
  for (std::uint32_t m = 0; m < module_count; ++m) {
    // Leave enough gates for the outstanding modules (one each).
    const std::size_t modules_left = module_count - m - 1;
    const std::size_t quota =
        std::min(target, remaining > modules_left ? remaining - modules_left
                                                  : std::size_t{1});
    std::size_t size = 0;
    netlist::GateId tip = netlist::kNoGate;
    while (size < quota) {
      if (tip == netlist::kNoGate) {
        tip = next_seed();
        if (tip == netlist::kNoGate) break;  // no free gates left
      }
      partition.assign(tip, m);
      free_gate[tip] = false;
      ++size;
      --remaining;
      // Extend the chain toward a primary output via a free fanout.
      netlist::GateId next = netlist::kNoGate;
      const auto& fanouts = nl.gate(tip).fanouts;
      if (!fanouts.empty()) {
        const std::size_t start = rng.index(fanouts.size());
        for (std::size_t i = 0; i < fanouts.size(); ++i) {
          const netlist::GateId cand = fanouts[(start + i) % fanouts.size()];
          if (free_gate[cand]) {
            next = cand;
            break;
          }
        }
      }
      tip = next;  // kNoGate restarts a new chain (PO reached / no free gate)
    }
  }
  IDDQ_ASSERT(remaining == 0);
  IDDQ_ASSERT(partition.covers(nl));
  return partition;
}

}  // namespace iddq::core
