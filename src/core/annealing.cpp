#include "core/annealing.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/neighborhood.hpp"
#include "support/error.hpp"

namespace iddq::core {

SaResult simulated_annealing(const part::EvalContext& ctx,
                             const part::Partition& start,
                             const SaParams& params) {
  require(params.steps >= 1, "annealing: need at least one step");
  require(params.cooling > 0.0 && params.cooling < 1.0,
          "annealing: cooling factor must be in (0,1)");
  Rng rng(params.seed);
  part::PartitionEvaluator eval(ctx, start);

  SaResult result;
  double current = penalized_objective(eval, params.violation_penalty);
  ++result.evaluations;
  double best_obj = current;
  result.best_partition = eval.partition();
  result.best_fitness = eval.fitness();
  result.best_costs = eval.costs();

  // Calibrate T0: sample a handful of moves and pick T so the mean uphill
  // delta is accepted with `initial_acceptance`.
  double t0 = 1.0;
  {
    std::vector<double> uphill;
    part::PartitionEvaluator probe = eval;
    for (int i = 0; i < 24; ++i) {
      const GateMove mv = sample_boundary_move(probe, rng);
      if (!mv.valid()) continue;
      const std::uint32_t src = probe.partition().module_of(mv.gate);
      probe.move_gate(mv.gate, mv.target);
      const double obj = penalized_objective(probe, params.violation_penalty);
      if (obj > current) uphill.push_back(obj - current);
      probe.move_gate(mv.gate, src);  // revert (module cannot have vanished)
    }
    if (!uphill.empty()) {
      double mean = 0.0;
      for (const double d : uphill) mean += d;
      mean /= static_cast<double>(uphill.size());
      t0 = -mean / std::log(params.initial_acceptance);
    }
  }

  double temperature = t0;
  for (std::size_t step = 0; step < params.steps; ++step) {
    if (step > 0 && step % params.stage_length == 0)
      temperature *= params.cooling;
    if (params.on_step && params.progress_every > 0 && step > 0 &&
        step % params.progress_every == 0)
      params.on_step(step, result.evaluations, result.best_fitness);
    const GateMove mv = sample_boundary_move(eval, rng);
    if (!mv.valid()) continue;
    const std::uint32_t src = eval.partition().module_of(mv.gate);
    // Copy-free probing: score the move without committing it. The probe
    // is bit-identical to the historical move-then-evaluate sequence, and
    // the RNG draw order below is unchanged.
    const double proposed = probe_objective(eval, mv, params.violation_penalty);
    ++result.evaluations;
    const double delta = proposed - current;
    const bool accept =
        delta <= 0.0 ||
        rng.uniform() < std::exp(-delta / std::max(temperature, 1e-12));
    if (accept) {
      eval.move_gate(mv.gate, mv.target);
      current = proposed;
      ++result.accepted;
      if (current < best_obj) {
        best_obj = current;
        result.best_partition = eval.partition();
        result.best_fitness = eval.fitness();
        result.best_costs = eval.costs();
      }
    } else {
      // State parity with the historical trajectory: the pre-probe code
      // applied the move and reverted it, leaving floating-point residue
      // in the running sums that the rest of the chain (and the pinned
      // caches/bench rows) depends on. Replay exactly that arithmetic —
      // the expensive full evaluation in between is what the probe
      // eliminated.
      eval.move_gate(mv.gate, mv.target);
      eval.move_gate(mv.gate, src);
    }
  }
  return result;
}

}  // namespace iddq::core
