#include "core/force_directed.hpp"

#include <algorithm>
#include <vector>

#include "netlist/levelize.hpp"
#include "support/error.hpp"

namespace iddq::core {

part::Partition force_directed_partition(const netlist::Netlist& nl,
                                         std::size_t module_count,
                                         std::size_t passes) {
  const std::size_t n = nl.logic_gate_count();
  require(module_count >= 1 && module_count <= n,
          "force-directed: module count out of range");

  // Initial positions from normalized logic depth; pins at the extremes.
  const netlist::Levels levels = netlist::levelize(nl);
  const double depth_scale =
      levels.max_depth > 0 ? 1.0 / static_cast<double>(levels.max_depth) : 0.0;
  std::vector<double> pos(nl.gate_count(), 0.0);
  std::vector<bool> pinned(nl.gate_count(), false);
  for (netlist::GateId id = 0; id < nl.gate_count(); ++id) {
    pos[id] = static_cast<double>(levels.depth[id]) * depth_scale;
    if (nl.gate(id).kind == netlist::GateKind::kInput) {
      pos[id] = 0.0;
      pinned[id] = true;
    } else if (nl.is_primary_output(id)) {
      pos[id] = 1.0;
      pinned[id] = true;
    }
  }

  // Zero-force relaxation: each free gate moves to the barycentre of its
  // wired neighbours. Gauss-Seidel in ascending id order keeps the sweep
  // deterministic and converges quickly on DAG depths.
  for (std::size_t pass = 0; pass < passes; ++pass) {
    for (const netlist::GateId g : nl.logic_gates()) {
      if (pinned[g]) continue;
      const netlist::Gate& gate = nl.gate(g);
      double sum = 0.0;
      std::size_t degree = 0;
      for (const netlist::GateId f : gate.fanins) {
        sum += pos[f];
        ++degree;
      }
      for (const netlist::GateId f : gate.fanouts) {
        sum += pos[f];
        ++degree;
      }
      if (degree > 0) pos[g] = sum / static_cast<double>(degree);
    }
  }

  // Sort by (position, id) — the id tie-break makes equal positions (e.g.
  // a fully pinned circuit) deterministic — and slice into K contiguous
  // balanced ranges, remainder gates going to the leading modules.
  std::vector<netlist::GateId> order(nl.logic_gates().begin(),
                                     nl.logic_gates().end());
  std::sort(order.begin(), order.end(),
            [&](netlist::GateId a, netlist::GateId b) {
              if (pos[a] != pos[b]) return pos[a] < pos[b];
              return a < b;
            });

  part::Partition partition(nl.gate_count(), module_count);
  std::size_t next = 0;
  for (std::uint32_t m = 0; m < module_count; ++m) {
    std::size_t size = n / module_count + (m < n % module_count ? 1 : 0);
    for (; size > 0; --size) partition.assign(order[next++], m);
  }
  return partition;
}

}  // namespace iddq::core
