#include "core/job_service.hpp"

#include <algorithm>
#include <condition_variable>
#include <mutex>
#include <utility>

#include "netlist/circuit_loader.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace iddq::core {

namespace detail {

/// Shared state between the service, the worker executing the job, and
/// every JobHandle copy. `state`/`result` are guarded by `mutex`; the
/// cancel flag is a lock-free atomic so progress-tick polling stays cheap.
struct JobControl {
  std::uint64_t id = 0;
  JobSpec spec;
  JobEventSink sink;

  std::atomic<bool> cancel_requested{false};

  /// Deadline from submit time (queue wait counts against the budget);
  /// unset when spec.deadline_ms == 0. `deadline_expired` records that a
  /// cooperative poll tripped the deadline, distinguishing the resulting
  /// CancelledError from a user cancel.
  bool has_deadline = false;
  std::chrono::steady_clock::time_point deadline{};
  std::atomic<bool> deadline_expired{false};

  mutable std::mutex mutex;
  mutable std::condition_variable cv;
  JobState state = JobState::queued;
  JobResult result;

  void emit(const JobEvent& event) const {
    if (!sink) return;
    try {
      sink(event);
    } catch (...) {
      // A sink cannot veto or abort a job by throwing (use
      // JobHandle::cancel()): events are emitted from submit callers AND
      // from bare worker threads, where an escaping exception would
      // terminate the process, and from finish(), where it would leave
      // the job permanently non-terminal. Swallowing here makes every
      // lifecycle transition unconditional.
    }
  }

  [[nodiscard]] JobEvent make_event(JobEvent::Kind kind) const {
    JobEvent e;
    e.kind = kind;
    e.job = id;
    e.circuit = spec.circuit;
    return e;
  }

  /// queued -> running; false when the job is already cancelled (the
  /// worker then finalizes without running it).
  [[nodiscard]] bool begin_running() {
    {
      const std::scoped_lock lock(mutex);
      if (cancel_requested.load(std::memory_order_relaxed))
        return false;
      state = JobState::running;
    }
    emit(make_event(JobEvent::Kind::running));
    return true;
  }

  void finish(JobResult&& r) {
    JobEvent::Kind kind;
    switch (r.state) {
      case JobState::done: kind = JobEvent::Kind::done; break;
      case JobState::cancelled: kind = JobEvent::Kind::cancelled; break;
      default: kind = JobEvent::Kind::failed; break;
    }
    JobEvent event = make_event(kind);
    event.error = r.error;
    event.reason = r.reason;
    // Emit the terminal event BEFORE wait() can return: a caller that
    // drains handles and then tears its sink down is guaranteed no event
    // arrives afterwards. (status() may briefly still read `running`
    // while the sink runs; the ordering trade is deliberate.)
    emit(event);
    {
      const std::scoped_lock lock(mutex);
      state = r.state;
      result = std::move(r);
    }
    cv.notify_all();
  }
};

}  // namespace detail

std::uint64_t JobHandle::id() const { return ctl_ ? ctl_->id : 0; }

JobState JobHandle::status() const {
  require(ctl_ != nullptr, "job handle: not attached to a job");
  const std::scoped_lock lock(ctl_->mutex);
  return ctl_->state;
}

void JobHandle::cancel() {
  require(ctl_ != nullptr, "job handle: not attached to a job");
  ctl_->cancel_requested.store(true, std::memory_order_relaxed);
}

const JobResult& JobHandle::wait() const {
  require(ctl_ != nullptr, "job handle: not attached to a job");
  std::unique_lock lock(ctl_->mutex);
  ctl_->cv.wait(lock, [this] { return is_terminal(ctl_->state); });
  return ctl_->result;
}

bool JobHandle::wait_for(std::chrono::milliseconds timeout) const {
  require(ctl_ != nullptr, "job handle: not attached to a job");
  std::unique_lock lock(ctl_->mutex);
  return ctl_->cv.wait_for(lock, timeout,
                           [this] { return is_terminal(ctl_->state); });
}

JobService::JobService(const lib::CellLibrary& library, Config config,
                       const OptimizerRegistry& registry)
    : library_(&library),
      config_(std::move(config)),
      registry_(&registry),
      loader_([](const std::string& spec) {
        return netlist::load_circuit(spec);
      }) {
  const std::size_t workers = config_.workers == 0 ? 1 : config_.workers;
  workers_.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w)
    workers_.emplace_back([this] { worker_loop(); });
}

JobService::~JobService() { shutdown(); }

void JobService::set_circuit_loader(CircuitLoader loader) {
  loader_ = std::move(loader);
}

JobHandle JobService::submit(JobSpec spec, JobEventSink sink) {
  require(!spec.methods.empty(), "job spec: needs at least one method");
  auto ctl = std::make_shared<detail::JobControl>();
  ctl->id = next_id_.fetch_add(1, std::memory_order_relaxed);
  ctl->spec = std::move(spec);
  ctl->sink = std::move(sink);
  if (ctl->spec.deadline_ms > 0) {
    ctl->has_deadline = true;
    ctl->deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(ctl->spec.deadline_ms);
  }
  // Invariant for callers: once the job is announced (queued emitted),
  // ANY failure to queue it — a closed queue after shutdown, an
  // exception while queueing — finalizes it as failed, so the sink
  // always sees a queued -> terminal pair (sink-thrown exceptions are
  // swallowed by emit and cannot break this). JobProtocolSession's sweep
  // accounting relies on exactly this: a submit that throws has either
  // announced-and-finalized the job, or (a throw before this point)
  // produced no events at all.
  const auto finalize_failed = [&ctl](const char* error) {
    JobResult result;
    result.circuit = ctl->spec.circuit;
    result.error = error;
    result.state = JobState::failed;
    ctl->finish(std::move(result));
  };
  bool finalized = false;
  try {
    ctl->emit(ctl->make_event(JobEvent::Kind::queued));
    if (!queue_.push(ctl, ctl->spec.priority)) {
      finalize_failed("job service: submit after shutdown");
      finalized = true;
      throw Error("job service: submit after shutdown");
    }
  } catch (const std::exception& e) {
    // Covers e.g. allocation failure building the event: the queued ->
    // terminal pairing must hold on every failure path.
    if (!finalized) finalize_failed(e.what());
    throw;
  }
  submitted_.fetch_add(1, std::memory_order_relaxed);
  return JobHandle(ctl);
}

bool JobService::try_reserve(std::size_t count, std::size_t max_queue) {
  if (max_queue == 0) return true;
  const std::scoped_lock lock(admission_mutex_);
  // Workers only ever shrink the queue between this read and the
  // reserved submits, so the check is a safe upper bound.
  if (queue_.size() + reserved_ + count > max_queue) return false;
  reserved_ += count;
  return true;
}

void JobService::release_reservation(std::size_t count) {
  const std::scoped_lock lock(admission_mutex_);
  reserved_ -= std::min(reserved_, count);
}

void JobService::shutdown() {
  if (shut_down_.exchange(true)) {
    // Second caller (e.g. the destructor after an explicit shutdown):
    // workers are already joined or being joined by the first caller.
    return;
  }
  queue_.close();
  for (auto& t : workers_)
    if (t.joinable()) t.join();
}

void JobService::worker_loop() {
  while (auto ctl = queue_.pop()) execute(**ctl);
}

void JobService::execute(detail::JobControl& job) {
  JobResult result;
  result.circuit = job.spec.circuit;

  if (!job.begin_running()) {
    // Cancelled while still queued: never ran.
    result.state = JobState::cancelled;
    cancelled_.fetch_add(1, std::memory_order_relaxed);
    job.finish(std::move(result));
    return;
  }

  try {
    const netlist::Netlist nl = loader_(job.spec.circuit);
    FlowEngineConfig flow = config_.flow;
    if (job.spec.cache_policy == JobSpec::CachePolicy::bypass)
      flow.cache = nullptr;
    FlowEngine engine(nl, *library_, flow, *registry_);
    result.plan = engine.plan();

    FlowSequenceOptions sequence;
    sequence.max_evaluations = job.spec.max_evaluations;
    // One cooperative stop signal serves both cancel and deadline: the
    // engine already polls this before each method and at every progress
    // tick, so an expired deadline lands exactly where a cancel would —
    // no second mechanism, no preemption (docs/robustness.md).
    sequence.cancelled = [&job] {
      if (job.cancel_requested.load(std::memory_order_relaxed)) return true;
      if (job.has_deadline &&
          std::chrono::steady_clock::now() >= job.deadline) {
        job.deadline_expired.store(true, std::memory_order_relaxed);
        return true;
      }
      return false;
    };
    // Chain rather than replace the config's default progress sink: the
    // service's event emitter would otherwise shadow it (run_method gives
    // per-run callbacks precedence), silencing e.g. the CLI's --progress
    // ticker for every BatchRunner-shimmed run.
    const ProgressCallback config_progress = flow.on_progress;
    sequence.on_progress = [&job,
                            config_progress](const OptimizerProgress& p) {
      JobEvent event = job.make_event(JobEvent::Kind::progress);
      event.method = std::string(p.method);
      event.iteration = p.iteration;
      event.evaluations = p.evaluations;
      event.best = p.best;
      job.emit(event);
      if (config_progress) config_progress(p);
    };
    // Rows accumulate here (not from the return value) so a job that is
    // cancelled or fails mid-sequence still surfaces its finished prefix.
    sequence.on_row = [&job, &result](std::size_t index,
                                      const MethodResult& row) {
      result.rows.push_back(row);
      JobEvent event = job.make_event(JobEvent::Kind::row);
      event.row_index = index;
      event.row = std::make_shared<const MethodResult>(row);
      job.emit(event);
    };

    (void)engine.run_methods(job.spec.methods, job.spec.base_seed, sequence);
    result.state = JobState::done;
    completed_.fetch_add(1, std::memory_order_relaxed);
  } catch (const CancelledError&) {
    if (job.deadline_expired.load(std::memory_order_relaxed)) {
      result.error = "timeout: exceeded deadline of " +
                     std::to_string(job.spec.deadline_ms) + "ms";
      result.reason = "timeout";
      result.state = JobState::failed;
      failed_.fetch_add(1, std::memory_order_relaxed);
      timeouts_.fetch_add(1, std::memory_order_relaxed);
    } else {
      result.state = JobState::cancelled;
      cancelled_.fetch_add(1, std::memory_order_relaxed);
    }
  } catch (const std::exception& e) {
    result.error = e.what();
    result.state = JobState::failed;
    failed_.fetch_add(1, std::memory_order_relaxed);
  }
  job.finish(std::move(result));
}

std::uint64_t JobService::submitted() const noexcept {
  return submitted_.load(std::memory_order_relaxed);
}
std::uint64_t JobService::completed() const noexcept {
  return completed_.load(std::memory_order_relaxed);
}
std::uint64_t JobService::failed() const noexcept {
  return failed_.load(std::memory_order_relaxed);
}
std::uint64_t JobService::cancelled() const noexcept {
  return cancelled_.load(std::memory_order_relaxed);
}
std::uint64_t JobService::timeouts() const noexcept {
  return timeouts_.load(std::memory_order_relaxed);
}

}  // namespace iddq::core
