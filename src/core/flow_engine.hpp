// Registry-driven flow engine.
//
// FlowEngine owns the per-circuit state the paper's flow precomputes once —
// the EvalContext (estimators, distance oracle, settling model) and the
// section-4.2 module-size plan — and runs any registered optimizer spec
// against it, returning uniform MethodResult rows. run_flow (core/flow.hpp)
// is a thin compatibility wrapper over this engine; the CLI, the benches,
// and BatchRunner use it directly.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/coverage_options.hpp"
#include "core/optimizer_registry.hpp"
#include "core/result_cache.hpp"
#include "core/size_planner.hpp"
#include "library/cell_library.hpp"
#include "partition/evaluator.hpp"

namespace iddq::sim {
class CoverageEngine;
}  // namespace iddq::sim

namespace iddq::core {

/// One optimizer spec's outcome on one circuit (a Table 1 row).
struct MethodResult {
  std::string method;
  part::Partition partition{1, 1};
  part::Costs costs;
  part::Fitness fitness;
  double sensor_area = 0.0;
  double delay_overhead = 0.0;  // c2
  double test_overhead = 0.0;   // c4
  std::size_t module_count = 0;
  std::vector<part::ModuleReport> modules;
  std::size_t iterations = 0;   // optimizer-specific major steps
  std::size_t evaluations = 0;  // cost-function evaluations spent
  std::vector<GenerationStats> trace;  // recorded only on request

  /// Measured IDDQ fault coverage of the result partition, filled only
  /// when FlowEngineConfig::coverage.enabled (docs/coverage.md). All rows
  /// of one engine are graded against the same fault list and pattern
  /// suite, so the numbers are comparable across methods.
  bool has_coverage = false;
  std::size_t faults_total = 0;
  std::size_t faults_detected = 0;
  double fault_coverage_pct = 0.0;   // 100 * detected / total
  std::size_t patterns_used = 0;     // supplied suite size
  std::size_t patterns_minimized = 0;  // greedy set-cover suite size
};

/// Evaluates an externally produced partition under the flow's cost model
/// (used by the figure-2 bench and the examples).
[[nodiscard]] MethodResult evaluate_method(const part::EvalContext& ctx,
                                           std::string method,
                                           const part::Partition& partition);

struct FlowEngineConfig {
  elec::SensorSpec sensor;
  part::CostWeights weights;
  OptimizerConfig optimizers;
  std::uint32_t rho = 4;  // separation saturation distance

  /// Measured-coverage grading: when enabled, every MethodResult's
  /// partition is additionally scored by sim::CoverageEngine (fault list
  /// and pattern suite sampled once per engine from coverage.seed) and
  /// the MethodResult coverage fields are filled. Folded into the cache
  /// context fingerprint, so coverage-bearing rows never replay from
  /// entries stored without coverage (or vice versa).
  CoverageOptions coverage;

  /// Shared content-addressed result cache, consulted before every
  /// optimizer dispatch and populated after (core/result_cache.hpp).
  /// Not owned; may be null (no caching). ResultCache is thread-safe, so
  /// BatchRunner workers share one instance.
  ResultCache* cache = nullptr;

  /// Default progress sink for runs whose RunOptions::on_progress is empty
  /// (how the CLI's --progress reaches BatchRunner-driven runs). Cache
  /// hits skip the optimizer and therefore do not report progress.
  ProgressCallback on_progress;

  /// Intra-run parallelism: the pool every optimizer dispatch runs on
  /// (ES descendants, tabu candidate sets, portfolio members). Not owned;
  /// nullptr falls back to support::ExecutorPool::shared_default(), which
  /// is serial unless IDDQ_THREADS asks otherwise. One pool is safely
  /// shared by many engines and JobService workers — nested fan-out
  /// degrades gracefully instead of oversubscribing, and results are
  /// byte-identical at any thread count.
  support::ExecutorPool* pool = nullptr;
};

/// Per-run knobs for FlowEngine::run_method.
struct FlowRunOptions {
  std::uint64_t seed = 1;
  /// Explicit start partition (e.g. a previous method's result); the
  /// planned module count is used when null.
  const part::Partition* start = nullptr;
  std::size_t max_evaluations = 0;  // 0 = optimizer default budget
  bool record_trace = false;
  ProgressCallback on_progress;
};

/// Per-sequence knobs for the streaming FlowEngine::run_methods overload.
/// The default-constructed value reproduces the plain overload exactly —
/// this is what keeps the BatchRunner shim and the job server byte-
/// identical to direct run_methods calls.
struct FlowSequenceOptions {
  std::size_t max_evaluations = 0;  // per-method budget, 0 = default
  /// Forwarded into every method's run (overrides the config default).
  ProgressCallback on_progress;
  /// Streamed one call per finished method, in spec order, before the
  /// next method starts: (spec index, result).
  std::function<void(std::size_t, const MethodResult&)> on_row;
  /// Cooperative cancellation: polled before each method and at every
  /// progress tick. When it returns true the sequence throws
  /// iddq::CancelledError (already-completed rows were delivered via
  /// on_row). Cache hits between ticks cannot be interrupted.
  std::function<bool()> cancelled;
};

class FlowEngine {
 public:
  using RunOptions = FlowRunOptions;

  /// Precomputes the EvalContext and the module-size plan. `nl` and
  /// `library` must outlive the engine; `registry` defaults to the global
  /// registry and must also outlive the engine.
  FlowEngine(const netlist::Netlist& nl, const lib::CellLibrary& library,
             FlowEngineConfig config = {},
             const OptimizerRegistry& registry = OptimizerRegistry::global());
  ~FlowEngine();

  [[nodiscard]] const SizePlan& plan() const noexcept { return plan_; }
  [[nodiscard]] const part::EvalContext& context() const noexcept {
    return ctx_;
  }
  [[nodiscard]] const netlist::Netlist& netlist() const noexcept {
    return *nl_;
  }

  /// Runs one optimizer spec (a registered name or '+'-composed pipeline).
  [[nodiscard]] MethodResult run_method(std::string_view spec,
                                        const RunOptions& options = {});

  /// Runs every spec in order at per-method derived seeds
  /// (Rng::mix_seed(base_seed, index)). Special case, after the paper's
  /// section 5: a "standard" spec that follows at least one other method
  /// clusters at the module sizes of the first preceding method's result
  /// ("we take the numbers obtained by the evolution based algorithm").
  [[nodiscard]] std::vector<MethodResult> run_methods(
      std::span<const std::string> specs, std::uint64_t base_seed);

  /// Streaming variant: same sequence semantics (same seeds, same
  /// standard-coupling), plus per-row delivery, live progress, and
  /// cooperative cancellation. With a default-constructed `sequence` this
  /// is exactly the plain overload.
  [[nodiscard]] std::vector<MethodResult> run_methods(
      std::span<const std::string> specs, std::uint64_t base_seed,
      const FlowSequenceOptions& sequence);

  /// Fingerprint of everything constant per engine (circuit, library,
  /// sensor/weights/rho, optimizer tuning); combined with per-run inputs
  /// into cache keys. Exposed for tests.
  [[nodiscard]] std::uint64_t context_fingerprint() const noexcept {
    return context_fp_;
  }

 private:
  [[nodiscard]] MethodResult from_cache_record(const CacheRecord& record);
  void apply_coverage(MethodResult& result) const;

  const netlist::Netlist* nl_;
  FlowEngineConfig config_;
  const OptimizerRegistry* registry_;
  part::EvalContext ctx_;
  SizePlan plan_;
  std::uint64_t context_fp_ = 0;
  /// Built once per engine when config_.coverage.enabled: the fault list,
  /// pattern suite and fault-free simulation are partition-independent,
  /// so every run_method shares them.
  std::unique_ptr<sim::CoverageEngine> coverage_;
};

}  // namespace iddq::core
