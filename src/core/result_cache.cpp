#include "core/result_cache.hpp"

#include <charconv>
#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <utility>

#include "support/error.hpp"
#include "support/fault_plan.hpp"
#include "support/hash.hpp"

namespace iddq::core {

namespace {

void append_u64_hex(std::string& out, std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, v);
  out += buf;
}

// 17 significant digits round-trip any finite IEEE-754 double exactly.
void append_double(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
}

// Minimal cursor over the flat JSON grammar serialize() emits: one object
// of string/number/array-of-number/array-of-array-of-number values.
class JsonCursor {
 public:
  explicit JsonCursor(std::string_view s) : s_(s) {}

  void skip_ws() {
    while (i_ < s_.size() &&
           (s_[i_] == ' ' || s_[i_] == '\t' || s_[i_] == '\r'))
      ++i_;
  }

  [[nodiscard]] bool consume(char c) {
    skip_ws();
    if (i_ >= s_.size() || s_[i_] != c) return false;
    ++i_;
    return true;
  }

  [[nodiscard]] bool peek(char c) {
    skip_ws();
    return i_ < s_.size() && s_[i_] == c;
  }

  [[nodiscard]] bool parse_string(std::string& out) {
    if (!consume('"')) return false;
    out.clear();
    while (i_ < s_.size() && s_[i_] != '"') {
      char c = s_[i_++];
      if (c == '\\') {
        if (i_ >= s_.size()) return false;
        c = s_[i_++];
        if (c != '"' && c != '\\') return false;
      }
      out += c;
    }
    return i_ < s_.size() && s_[i_++] == '"';
  }

  [[nodiscard]] bool parse_u64(std::uint64_t& out) {
    skip_ws();
    const auto* first = s_.data() + i_;
    const auto* last = s_.data() + s_.size();
    const auto [ptr, ec] = std::from_chars(first, last, out);
    if (ec != std::errc{}) return false;
    i_ += static_cast<std::size_t>(ptr - first);
    return true;
  }

  [[nodiscard]] bool parse_double(double& out) {
    skip_ws();
    const auto* first = s_.data() + i_;
    const auto* last = s_.data() + s_.size();
    const auto [ptr, ec] = std::from_chars(first, last, out);
    if (ec != std::errc{}) return false;
    i_ += static_cast<std::size_t>(ptr - first);
    return true;
  }

  [[nodiscard]] bool at_object_end() {
    skip_ws();
    return i_ < s_.size() && s_[i_] == '}';
  }

 private:
  std::string_view s_;
  std::size_t i_ = 0;
};

}  // namespace

std::string ResultCache::serialize(std::uint64_t key,
                                   const CacheRecord& record) {
  std::string out;
  out.reserve(256 + 8 * record.gate_count);
  out += "{\"key\":\"";
  append_u64_hex(out, key);
  out += "\",\"method\":";
  append_json_string(out, record.method);
  out += ",\"gates\":";
  out += std::to_string(record.gate_count);
  out += ",\"violation\":";
  append_double(out, record.fitness.violation);
  out += ",\"cost\":";
  append_double(out, record.fitness.cost);
  out += ",\"c\":[";
  const auto costs = record.costs.as_array();
  for (std::size_t i = 0; i < costs.size(); ++i) {
    if (i > 0) out += ',';
    append_double(out, costs[i]);
  }
  out += "],\"iters\":";
  out += std::to_string(record.iterations);
  out += ",\"evals\":";
  out += std::to_string(record.evaluations);
  if (record.has_coverage) {
    out += ",\"cov\":[";
    out += std::to_string(record.faults_total);
    out += ',';
    out += std::to_string(record.faults_detected);
    out += ',';
    out += std::to_string(record.patterns_used);
    out += ',';
    out += std::to_string(record.patterns_minimized);
    out += ']';
  }
  out += ",\"modules\":[";
  for (std::size_t m = 0; m < record.modules.size(); ++m) {
    if (m > 0) out += ',';
    out += '[';
    for (std::size_t i = 0; i < record.modules[m].size(); ++i) {
      if (i > 0) out += ',';
      out += std::to_string(record.modules[m][i]);
    }
    out += ']';
  }
  out += "]}";
  return out;
}

bool ResultCache::parse(std::string_view line, std::uint64_t& key,
                        CacheRecord& out) {
  JsonCursor cur(line);
  out = CacheRecord{};
  bool have_key = false;
  bool have_modules = false;
  if (!cur.consume('{')) return false;
  while (!cur.at_object_end()) {
    std::string field;
    if (!cur.parse_string(field) || !cur.consume(':')) return false;
    if (field == "key") {
      std::string hex;
      if (!cur.parse_string(hex)) return false;
      const auto [ptr, ec] =
          std::from_chars(hex.data(), hex.data() + hex.size(), key, 16);
      if (ec != std::errc{} || ptr != hex.data() + hex.size()) return false;
      have_key = true;
    } else if (field == "method") {
      if (!cur.parse_string(out.method)) return false;
    } else if (field == "gates") {
      std::uint64_t v = 0;
      if (!cur.parse_u64(v)) return false;
      out.gate_count = static_cast<std::size_t>(v);
    } else if (field == "violation") {
      if (!cur.parse_double(out.fitness.violation)) return false;
    } else if (field == "cost") {
      if (!cur.parse_double(out.fitness.cost)) return false;
    } else if (field == "c") {
      if (!cur.consume('[')) return false;
      double* terms[] = {&out.costs.c1, &out.costs.c2, &out.costs.c3,
                         &out.costs.c4, &out.costs.c5};
      for (std::size_t i = 0; i < 5; ++i) {
        if (i > 0 && !cur.consume(',')) return false;
        if (!cur.parse_double(*terms[i])) return false;
      }
      if (!cur.consume(']')) return false;
    } else if (field == "iters") {
      std::uint64_t v = 0;
      if (!cur.parse_u64(v)) return false;
      out.iterations = static_cast<std::size_t>(v);
    } else if (field == "evals") {
      std::uint64_t v = 0;
      if (!cur.parse_u64(v)) return false;
      out.evaluations = static_cast<std::size_t>(v);
    } else if (field == "cov") {
      if (!cur.consume('[')) return false;
      std::size_t* terms[] = {&out.faults_total, &out.faults_detected,
                              &out.patterns_used, &out.patterns_minimized};
      for (std::size_t i = 0; i < 4; ++i) {
        if (i > 0 && !cur.consume(',')) return false;
        std::uint64_t v = 0;
        if (!cur.parse_u64(v)) return false;
        *terms[i] = static_cast<std::size_t>(v);
      }
      if (!cur.consume(']')) return false;
      out.has_coverage = true;
    } else if (field == "modules") {
      if (!cur.consume('[')) return false;
      while (!cur.peek(']')) {
        if (!out.modules.empty() && !cur.consume(',')) return false;
        if (!cur.consume('[')) return false;
        std::vector<netlist::GateId>& module = out.modules.emplace_back();
        while (!cur.peek(']')) {
          if (!module.empty() && !cur.consume(',')) return false;
          std::uint64_t v = 0;
          if (!cur.parse_u64(v)) return false;
          module.push_back(static_cast<netlist::GateId>(v));
        }
        if (!cur.consume(']')) return false;
      }
      if (!cur.consume(']')) return false;
      have_modules = true;
    } else {
      return false;  // unknown field: not one of our lines
    }
    if (!cur.consume(',')) break;
  }
  if (!cur.consume('}')) return false;
  return have_key && have_modules && !out.method.empty() &&
         out.gate_count > 0 && !out.modules.empty();
}

void ResultCache::attach_dir(const std::string& dir) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec)
    throw Error("result cache: cannot create directory '" + dir +
                "': " + ec.message());

  const std::scoped_lock lock(mutex_);
  file_path_ = (fs::path(dir) / "results.jsonl").string();
  // A crashed compaction leaves its temp file behind; the real file is
  // still intact (the rename never happened), so just sweep up the tmp.
  fs::remove(fs::path(file_path_ + ".compact.tmp"), ec);
  std::ifstream in(file_path_);
  std::string line;
  std::streamoff offset = in ? static_cast<std::streamoff>(in.tellg()) : 0;
  while (std::getline(in, line)) {
    // +1 for the newline getline consumed (the file is append-only with
    // '\n' after every line, so the arithmetic is exact).
    const std::streamoff line_offset = offset;
    offset += static_cast<std::streamoff>(line.size()) + 1;
    if (line.empty()) continue;
    std::uint64_t key = 0;
    CacheRecord record;
    if (parse(line, key, record)) {
      entries_[key] = std::move(record);
      offsets_[key] = line_offset;
      touch(key);
    } else {
      // Unparseable lines (truncated writes, foreign content) are skipped:
      // the entry degrades to a miss and is rewritten on the next store.
      // The count is kept so callers can surface the degradation.
      ++corrupt_lines_;
    }
  }
  if (!in.is_open()) {
    // Create the file now so a cache dir attached read-only fails here,
    // not in the middle of a sweep.
    std::ofstream create(file_path_, std::ios::app);
    if (!create)
      throw Error("result cache: cannot create '" + file_path_ + "'");
  }
  evict_over_cap();
}

void ResultCache::set_max_resident(std::size_t max_resident) {
  const std::scoped_lock lock(mutex_);
  max_resident_ = max_resident;
  evict_over_cap();
}

void ResultCache::set_idle_deadline(std::chrono::milliseconds idle) {
  const std::scoped_lock lock(mutex_);
  idle_deadline_ = idle;
  evict_idle();
}

void ResultCache::set_clock_for_test(
    std::function<std::chrono::steady_clock::time_point()> clock) {
  const std::scoped_lock lock(mutex_);
  clock_ = std::move(clock);
}

std::chrono::steady_clock::time_point ResultCache::now() const {
  return clock_ ? clock_() : std::chrono::steady_clock::now();
}

// Caller holds mutex_. Moves `key` to the front of the residency list.
void ResultCache::touch(std::uint64_t key) const {
  last_touch_[key] = now();
  const auto it = lru_pos_.find(key);
  if (it != lru_pos_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(key);
  lru_pos_[key] = lru_.begin();
}

// Caller holds mutex_. Drops least-recently-used records beyond the cap;
// their disk offsets keep them reloadable. A memory-only cache never
// evicts (the record IS the only copy).
void ResultCache::evict_over_cap() const {
  if (max_resident_ == 0 || file_path_.empty()) return;
  while (entries_.size() > max_resident_ && !lru_.empty()) {
    const std::uint64_t victim = lru_.back();
    lru_.pop_back();
    lru_pos_.erase(victim);
    entries_.erase(victim);
    last_touch_.erase(victim);
    ++evictions_;
  }
}

// Caller holds mutex_. Expires resident records untouched for the idle
// deadline. lru_ is recency-ordered, so the scan walks from the back and
// stops at the first survivor; like evict_over_cap, disk offsets keep the
// victims reloadable and a memory-only cache never evicts.
void ResultCache::evict_idle() const {
  if (idle_deadline_.count() <= 0 || file_path_.empty()) return;
  const auto cutoff = now() - idle_deadline_;
  while (!lru_.empty()) {
    const std::uint64_t victim = lru_.back();
    const auto stamp = last_touch_.find(victim);
    if (stamp != last_touch_.end() && stamp->second > cutoff) break;
    lru_.pop_back();
    lru_pos_.erase(victim);
    entries_.erase(victim);
    last_touch_.erase(victim);
    ++evictions_;
    ++idle_evictions_;
  }
}

std::optional<CacheRecord> ResultCache::lookup(std::uint64_t key) const {
  const std::scoped_lock lock(mutex_);
  evict_idle();
  const auto it = entries_.find(key);
  if (it != entries_.end()) {
    ++hits_;
    touch(key);
    return it->second;
  }
  // Evicted but on disk: re-read exactly the last line written for the
  // key. serialize/parse round-trip bit-exactly, so the reloaded record
  // replays like the resident one did.
  const auto off = offsets_.find(key);
  if (off != offsets_.end()) {
    std::ifstream in(file_path_);
    std::string line;
    if (in) {
      in.seekg(off->second);
      if (std::getline(in, line)) {
        std::uint64_t parsed_key = 0;
        CacheRecord record;
        if (parse(line, parsed_key, record) && parsed_key == key) {
          ++hits_;
          ++disk_hits_;
          entries_[key] = record;
          touch(key);
          evict_over_cap();
          return record;
        }
      }
    }
  }
  ++misses_;
  return std::nullopt;
}

void ResultCache::store(std::uint64_t key, const CacheRecord& record) {
  const std::scoped_lock lock(mutex_);
  evict_idle();
  entries_[key] = record;
  touch(key);
  if (file_path_.empty()) return;
  // Fault-plan hook (docs/robustness.md): a scripted torn append writes a
  // strict prefix with no newline — the crash point between write() and
  // the terminator — and everything after it never reaches disk at all.
  // The offset map is left untouched for both, matching a real crash: no
  // survivor ever points at the garbage tail.
  auto fate = support::FaultPlan::AppendFate::kWrite;
  const support::FaultPlan* plan = support::FaultPlan::active();
  if (plan != nullptr) fate = plan->cache_append_fate();
  if (fate == support::FaultPlan::AppendFate::kDrop) return;
  std::ofstream out(file_path_, std::ios::app);
  if (!out)
    throw Error("result cache: cannot append to '" + file_path_ + "'");
  // The put position right after opening in append mode is implementation-
  // defined; an explicit seek-to-end pins the offset the line lands at.
  out.seekp(0, std::ios::end);
  if (fate == support::FaultPlan::AppendFate::kTear) {
    out << plan->torn_prefix(serialize(key, record));
    return;
  }
  offsets_[key] = static_cast<std::streamoff>(out.tellp());
  out << serialize(key, record) << '\n';
  evict_over_cap();
}

std::size_t ResultCache::size() const {
  const std::scoped_lock lock(mutex_);
  // offsets_ covers every key ever written while disk-backed (a superset
  // of the resident keys); memory-only caches have no offsets.
  return file_path_.empty() ? entries_.size() : offsets_.size();
}

std::size_t ResultCache::resident_size() const {
  const std::scoped_lock lock(mutex_);
  return entries_.size();
}

std::uint64_t ResultCache::hits() const {
  const std::scoped_lock lock(mutex_);
  return hits_;
}

std::uint64_t ResultCache::disk_hits() const {
  const std::scoped_lock lock(mutex_);
  return disk_hits_;
}

std::uint64_t ResultCache::evictions() const {
  const std::scoped_lock lock(mutex_);
  return evictions_;
}

std::uint64_t ResultCache::idle_evictions() const {
  const std::scoped_lock lock(mutex_);
  return idle_evictions_;
}

std::uint64_t ResultCache::misses() const {
  const std::scoped_lock lock(mutex_);
  return misses_;
}

std::size_t ResultCache::corrupt_lines() const {
  const std::scoped_lock lock(mutex_);
  return corrupt_lines_;
}

namespace {

std::string cache_file_of(const std::string& dir) {
  return (std::filesystem::path(dir) / "results.jsonl").string();
}

/// Per-line scan shared by inspect and compact: key (when parseable), the
/// raw line, and its index among non-empty lines.
struct ScannedLine {
  std::uint64_t key = 0;
  bool parsed = false;
  std::string raw;
};

std::vector<ScannedLine> scan_cache_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("result cache: cannot open '" + path + "'");
  std::vector<ScannedLine> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ScannedLine scanned;
    CacheRecord record;
    scanned.parsed = ResultCache::parse(line, scanned.key, record);
    scanned.raw = std::move(line);
    lines.push_back(std::move(scanned));
  }
  return lines;
}

}  // namespace

CacheFileStats inspect_cache_file(const std::string& dir) {
  const auto lines = scan_cache_file(cache_file_of(dir));

  CacheFileStats stats;
  stats.total_lines = lines.size();
  // Last write per key wins (the lookup semantics of attach_dir).
  std::unordered_map<std::uint64_t, std::size_t> last_index;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (!lines[i].parsed) {
      ++stats.corrupt_lines;
      continue;
    }
    const auto [it, inserted] = last_index.insert_or_assign(lines[i].key, i);
    (void)it;
    if (!inserted) ++stats.duplicate_lines;
  }
  stats.unique_keys = last_index.size();
  for (const auto& [key, index] : last_index) {
    (void)key;
    // Age 1 = the file's last line. Bucket by floor(log2(age)).
    const std::size_t age = lines.size() - index;
    std::size_t bucket = 0;
    while ((std::size_t{2} << bucket) <= age) ++bucket;
    if (stats.age_histogram.size() <= bucket)
      stats.age_histogram.resize(bucket + 1, 0);
    ++stats.age_histogram[bucket];
  }
  return stats;
}

CacheCompaction compact_cache_file(const std::string& dir) {
  const std::string path = cache_file_of(dir);
  const auto lines = scan_cache_file(path);

  CacheCompaction result;
  std::unordered_map<std::uint64_t, std::size_t> last_index;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (!lines[i].parsed) {
      ++result.dropped_corrupt;
      continue;
    }
    const auto [it, inserted] = last_index.insert_or_assign(lines[i].key, i);
    (void)it;
    if (!inserted) ++result.dropped_duplicates;
  }

  // Keep the surviving lines in their original (last-write) file order so
  // a compacted file replays identically, then swap in atomically.
  const std::string tmp_path = path + ".compact.tmp";
  {
    std::ofstream out(tmp_path, std::ios::trunc);
    if (!out)
      throw Error("result cache: cannot write '" + tmp_path + "'");
    for (std::size_t i = 0; i < lines.size(); ++i) {
      if (!lines[i].parsed || last_index.at(lines[i].key) != i) continue;
      out << lines[i].raw << '\n';
      ++result.kept;
    }
    if (!out)
      throw Error("result cache: write to '" + tmp_path + "' failed");
  }
  detail::replace_file(tmp_path, path);
  return result;
}

namespace detail {

void replace_file(const std::string& from, const std::string& to,
                  bool force_copy) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (!force_copy) {
    fs::rename(from, to, ec);
    if (!ec) return;
  }
  // rename() cannot cross filesystems (EXDEV: cache dir on one mount,
  // tmp on another) — fall back to copy+remove. Not atomic, but the copy
  // lands fully before the source is dropped, and a torn copy is exactly
  // the corrupt-tail case attach_dir already recovers from.
  fs::copy_file(from, to, fs::copy_options::overwrite_existing, ec);
  if (ec)
    throw Error("result cache: cannot replace '" + to + "': " + ec.message());
  fs::remove(from, ec);  // best-effort; a stale tmp is swept on next open
}

}  // namespace detail

std::uint64_t cache_context_fingerprint(std::uint64_t netlist_fp,
                                        std::uint64_t library_fp,
                                        const elec::SensorSpec& sensor,
                                        const part::CostWeights& weights,
                                        std::uint32_t rho,
                                        const OptimizerConfig& optimizers,
                                        const CoverageOptions& coverage) {
  Hash64 h;
  // Format/semantics version: bump to flush every old key at once.
  // v2: tabu candidates score on pristine evaluator copies (no
  // move+revert floating-point residue), so v1 tabu rows no longer
  // match a fresh computation.
  // v3: the greedy refiner scores trials with the copy-free probe and no
  // longer replays the move+revert residue of rejected trials (the
  // residue-free trajectory is what lets its candidate scan parallelize
  // byte-identically), so v2 greedy-family rows no longer match a fresh
  // computation. Evolution/standard/annealing/tabu trajectories are
  // unchanged — only the salt retires their old keys.
  // v4: records may carry measured-coverage counters ("cov") and the
  // fingerprint mixes the CoverageOptions below. v3 files would parse,
  // but a coverage-bearing row must never replay from an entry that was
  // stored without coverage — the salt retires every v3 key wholesale.
  h.mix_string("iddq-result-cache-v4");
  h.mix_u64(netlist_fp);
  h.mix_u64(library_fp);

  h.mix_double(sensor.r_max_mv);
  h.mix_double(sensor.a0_area);
  h.mix_double(sensor.a1_area_kohm);
  h.mix_double(sensor.rs_cap_kohm);
  h.mix_double(sensor.c_sensor_ff);
  h.mix_double(sensor.t_detect_ps);
  h.mix_double(sensor.iddq_th_ua);
  h.mix_double(sensor.d_min);

  h.mix_double(weights.a1);
  h.mix_double(weights.a2);
  h.mix_double(weights.a3);
  h.mix_double(weights.a4);
  h.mix_double(weights.a5);
  h.mix_u64(rho);

  // Optimizer tuning knobs; the per-request seed/record_trace fields are
  // request inputs (cache_key), not configuration.
  const EsParams& es = optimizers.es;
  h.mix_size(es.mu);
  h.mix_size(es.lambda);
  h.mix_size(es.chi);
  h.mix_size(es.kappa);
  h.mix_u64(es.m0);
  h.mix_u64(es.m_max);
  h.mix_double(es.epsilon);
  h.mix_size(es.max_generations);
  h.mix_size(es.stall_generations);

  const SaParams& sa = optimizers.sa;
  h.mix_size(sa.steps);
  h.mix_double(sa.initial_acceptance);
  h.mix_double(sa.cooling);
  h.mix_size(sa.stage_length);
  h.mix_double(sa.violation_penalty);

  const TabuParams& tabu = optimizers.tabu;
  h.mix_size(tabu.iterations);
  h.mix_size(tabu.candidates);
  h.mix_size(tabu.tenure);
  h.mix_size(tabu.stall_iterations);
  h.mix_double(tabu.violation_penalty);

  h.mix_size(optimizers.force_passes);
  h.mix_size(optimizers.random_samples);
  h.mix_size(optimizers.greedy_max_evaluations);

  // Coverage grading config: a coverage-enabled engine must never share
  // keys with a coverage-off engine (or with one grading under a different
  // fault model / suite), because the stored records differ.
  h.mix_byte(coverage.enabled ? 1 : 0);
  if (coverage.enabled) {
    h.mix_string(coverage.fault_model);
    h.mix_size(coverage.patterns);
    h.mix_byte(coverage.minimize ? 1 : 0);
    h.mix_u64(coverage.seed);
  }
  return h.value();
}

std::uint64_t cache_key(std::uint64_t context_fp,
                        std::string_view method_spec, std::uint64_t seed,
                        std::size_t max_evaluations,
                        const part::Partition* start) {
  Hash64 h;
  h.mix_u64(context_fp);
  h.mix_string(method_spec);
  h.mix_u64(seed);
  h.mix_size(max_evaluations);
  if (start == nullptr) {
    h.mix_byte(0);
  } else {
    h.mix_byte(1);
    h.mix_size(start->gate_count());
    h.mix_size(start->module_count());
    for (std::uint32_t m = 0; m < start->module_count(); ++m) {
      const auto gates = start->module(m);
      h.mix_size(gates.size());
      for (const netlist::GateId g : gates) h.mix_u64(g);
    }
  }
  return h.value();
}

}  // namespace iddq::core
