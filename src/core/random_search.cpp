#include "core/random_search.hpp"

#include "core/start_partition.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace iddq::core {

RandomSearchResult random_search(const part::EvalContext& ctx,
                                 std::size_t module_count,
                                 std::size_t samples, std::uint64_t seed) {
  require(samples >= 1, "random search: need at least one sample");
  Rng rng(seed);
  RandomSearchResult result;
  bool first = true;
  for (std::size_t i = 0; i < samples; ++i) {
    part::PartitionEvaluator eval(
        ctx, make_start_partition(ctx.nl, module_count, rng));
    const part::Fitness f = eval.fitness();
    ++result.evaluations;
    if (first || f < result.best_fitness) {
      first = false;
      result.best_fitness = f;
      result.best_partition = eval.partition();
      result.best_costs = eval.costs();
    }
  }
  return result;
}

}  // namespace iddq::core
