#include "core/random_search.hpp"

#include <algorithm>

#include "core/start_partition.hpp"
#include "support/error.hpp"
#include "support/executor.hpp"
#include "support/rng.hpp"

namespace iddq::core {

RandomSearchResult random_search(const part::EvalContext& ctx,
                                 std::size_t module_count,
                                 std::size_t samples, std::uint64_t seed,
                                 support::ExecutorPool* pool) {
  require(samples >= 1, "random search: need at least one sample");
  Rng rng(seed);
  RandomSearchResult result;
  bool first = true;

  // Coordinator-draws/worker-evaluates (docs/architecture.md, "Threading
  // model"): the samples are independent, so the coordinator draws a block
  // of start partitions in the serial RNG order (evaluation consumes no
  // randomness), workers fill pre-indexed result slots, and the best-so-far
  // reduction runs on the coordinator in sample order — byte-identical to
  // the sequential loop at any thread count. Blocking bounds the memory at
  // a few partitions per concurrency slot.
  struct Slot {
    part::Partition partition{1, 1};
    part::Fitness fitness;
    part::Costs costs;
  };
  const std::size_t conc =
      pool == nullptr || pool->worker_count() == 0 ? 1 : pool->concurrency();
  const std::size_t block = std::max<std::size_t>(std::size_t{4} * conc, 8);
  std::vector<part::Partition> starts;
  std::vector<Slot> slots;
  for (std::size_t done = 0; done < samples;) {
    const std::size_t n = std::min(block, samples - done);
    starts.clear();
    starts.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
      starts.push_back(make_start_partition(ctx.nl, module_count, rng));
    slots.assign(n, Slot{});
    support::parallel_for_indexed(pool, n, [&](std::size_t i) {
      part::PartitionEvaluator eval(ctx, starts[i]);
      slots[i].fitness = eval.fitness();
      slots[i].costs = eval.costs();
      slots[i].partition = eval.partition();
    });
    for (std::size_t i = 0; i < n; ++i) {
      ++result.evaluations;
      if (first || slots[i].fitness < result.best_fitness) {
        first = false;
        result.best_fitness = slots[i].fitness;
        result.best_partition = std::move(slots[i].partition);
        result.best_costs = slots[i].costs;
      }
    }
    done += n;
  }
  return result;
}

}  // namespace iddq::core
