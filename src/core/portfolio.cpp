#include "core/portfolio.hpp"

#include <algorithm>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "support/error.hpp"
#include "support/executor.hpp"
#include "support/rng.hpp"

namespace iddq::core {

PortfolioOptimizer::PortfolioOptimizer(
    std::string spec, std::vector<std::unique_ptr<Optimizer>> members)
    : spec_(std::move(spec)), members_(std::move(members)) {
  require(!members_.empty(), "portfolio: needs at least one member");
}

std::string_view PortfolioOptimizer::name() const noexcept { return spec_; }

OptimizerOutcome PortfolioOptimizer::run(
    const OptimizerRequest& request) const {
  const std::size_t count = members_.size();
  // Members are fully independent (own derived seed, own start, own
  // evaluators over the shared read-only context), so they race on the
  // request's pool; results land in per-member slots and the reduction
  // below runs on the caller in member order — the outcome is identical
  // to the historical sequential loop at any thread count. Progress
  // callbacks are serialized so downstream sinks (server sessions, CLI
  // tickers) still observe one event at a time.
  std::mutex progress_mutex;
  ProgressCallback serialized;
  if (request.on_progress) {
    serialized = [&request, &progress_mutex](const OptimizerProgress& p) {
      const std::scoped_lock lock(progress_mutex);
      request.on_progress(p);
    };
  }
  std::vector<std::optional<OptimizerOutcome>> outcomes(count);
  support::parallel_for_indexed(request.pool, count, [&](std::size_t i) {
    OptimizerRequest member_request = request;
    member_request.seed = Rng::mix_seed(request.seed, i);
    member_request.on_progress = serialized;
    if (request.max_evaluations > 0) {
      // Never hand a member share 0: the adapters read 0 as "use your
      // configured default budget", which would blow the shared cap.
      member_request.max_evaluations =
          std::max<std::size_t>(1, request.max_evaluations / count +
                                       (i < request.max_evaluations % count
                                            ? 1
                                            : 0));
    }
    outcomes[i] = members_[i]->run(member_request);
  });

  OptimizerOutcome best;
  std::size_t evaluations = 0;
  std::size_t iterations = 0;
  for (std::size_t i = 0; i < count; ++i) {
    OptimizerOutcome& outcome = *outcomes[i];
    evaluations += outcome.evaluations;
    iterations += outcome.iterations;
    // Strict improvement only: ties resolve to the earliest member, so the
    // winner is independent of evaluation noise in later members.
    if (i == 0 || outcome.fitness < best.fitness) best = std::move(outcome);
  }
  best.method = spec_;
  best.evaluations = evaluations;
  best.iterations = iterations;
  if (request.on_progress)
    request.on_progress({spec_, best.iterations, best.evaluations,
                         best.fitness});
  return best;
}

}  // namespace iddq::core
