#include "core/portfolio.hpp"

#include <algorithm>
#include <utility>

#include "support/error.hpp"
#include "support/rng.hpp"

namespace iddq::core {

PortfolioOptimizer::PortfolioOptimizer(
    std::string spec, std::vector<std::unique_ptr<Optimizer>> members)
    : spec_(std::move(spec)), members_(std::move(members)) {
  require(!members_.empty(), "portfolio: needs at least one member");
}

std::string_view PortfolioOptimizer::name() const noexcept { return spec_; }

OptimizerOutcome PortfolioOptimizer::run(
    const OptimizerRequest& request) const {
  const std::size_t count = members_.size();
  OptimizerOutcome best;
  std::size_t evaluations = 0;
  std::size_t iterations = 0;
  for (std::size_t i = 0; i < count; ++i) {
    OptimizerRequest member_request = request;
    member_request.seed = Rng::mix_seed(request.seed, i);
    if (request.max_evaluations > 0) {
      // Never hand a member share 0: the adapters read 0 as "use your
      // configured default budget", which would blow the shared cap.
      member_request.max_evaluations =
          std::max<std::size_t>(1, request.max_evaluations / count +
                                       (i < request.max_evaluations % count
                                            ? 1
                                            : 0));
    }
    OptimizerOutcome outcome = members_[i]->run(member_request);
    evaluations += outcome.evaluations;
    iterations += outcome.iterations;
    // Strict improvement only: ties resolve to the earliest member, so the
    // winner is independent of evaluation noise in later members.
    if (i == 0 || outcome.fitness < best.fitness) best = std::move(outcome);
  }
  best.method = spec_;
  best.evaluations = evaluations;
  best.iterations = iterations;
  if (request.on_progress)
    request.on_progress({spec_, best.iterations, best.evaluations,
                         best.fitness});
  return best;
}

}  // namespace iddq::core
