#include "core/resynth.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <span>
#include <vector>

#include "estimators/delay_estimator.hpp"
#include "netlist/builder.hpp"
#include "netlist/levelize.hpp"
#include "support/bitset.hpp"
#include "support/error.hpp"

namespace iddq::core {

namespace {

/// Virtual model of the retimed circuit: per-gate count of buffer stages
/// inserted on all fan-in edges. Arrival/slack work in picoseconds; the
/// current profile works on the quantized transition-time grid.
struct RetimeState {
  const netlist::Netlist* nl;
  std::vector<lib::CellParams> cells;
  std::vector<netlist::GateId> order;
  double buf_delay_ps = 0.0;
  std::size_t buf_slots = 1;
  double bin_ps = 45.0;
  std::vector<std::size_t> extra;  // buffer stages before gate g

  [[nodiscard]] double gate_delay_ps(netlist::GateId g) const {
    return cells[g].delay_ps +
           static_cast<double>(extra[g]) * buf_delay_ps;
  }

  /// Longest-path arrivals (at gate outputs) under the current retiming.
  [[nodiscard]] std::vector<double> arrivals_ps() const {
    std::vector<double> at(nl->gate_count(), 0.0);
    for (const netlist::GateId g : order) {
      if (nl->gate(g).fanins.empty()) continue;
      double in = 0.0;
      for (const netlist::GateId f : nl->gate(g).fanins)
        in = std::max(in, at[f]);
      at[g] = in + gate_delay_ps(g);
    }
    return at;
  }

  /// Slack of every gate against the delay limit.
  [[nodiscard]] std::vector<double> slacks_ps(double limit_ps) const {
    const auto at = arrivals_ps();
    std::vector<double> required(nl->gate_count(), limit_ps);
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      const netlist::GateId g = *it;
      const double req_in = required[g] - gate_delay_ps(g);
      for (const netlist::GateId f : nl->gate(g).fanins)
        required[f] = std::min(required[f], req_in);
    }
    std::vector<double> slack(nl->gate_count(), 0.0);
    for (netlist::GateId g = 0; g < nl->gate_count(); ++g)
      slack[g] = required[g] - at[g];
    return slack;
  }

  /// Quantized transition-time sets under the current retiming.
  [[nodiscard]] std::vector<DynamicBitset> transition_sets(
      std::size_t grid) const {
    std::vector<DynamicBitset> times(nl->gate_count(), DynamicBitset(grid));
    for (const netlist::GateId g : order) {
      const auto& gate = nl->gate(g);
      if (gate.fanins.empty()) {
        times[g].set(0);
        continue;
      }
      const auto base = static_cast<std::size_t>(
          std::llround(cells[g].delay_ps / bin_ps));
      const std::size_t shift =
          std::max<std::size_t>(1, base) + extra[g] * buf_slots;
      for (const netlist::GateId f : gate.fanins)
        times[g].or_shifted(times[f], shift);
    }
    return times;
  }

  /// Whole-circuit current profile and its peak.
  [[nodiscard]] std::pair<std::vector<double>, double> profile(
      std::size_t grid) const {
    const auto times = transition_sets(grid);
    std::vector<double> current(grid, 0.0);
    for (const netlist::GateId g : nl->logic_gates()) {
      times[g].for_each(
          [&](std::size_t t) { current[t] += cells[g].ipeak_ua; });
    }
    double peak = 0.0;
    for (const double v : current) peak = std::max(peak, v);
    return {std::move(current), peak};
  }
};

/// Per-module objective for the partition-aware pass: module current
/// profiles including the inserted buffers' own switching (a buffer stage j
/// on edge f->g switches at T(f) shifted by j * buf_slots and shares g's
/// virtual rail).
struct ModuleObjective {
  double sum_peaks = 0.0;
  std::uint32_t worst_module = 0;
  std::size_t worst_slot = 0;
};

ModuleObjective evaluate_modules(const RetimeState& state, std::size_t grid,
                                 std::span<const std::uint32_t> module_of,
                                 std::size_t module_count,
                                 double buf_ipeak_ua) {
  const auto times = state.transition_sets(grid);
  std::vector<double> current(module_count * grid, 0.0);
  for (const netlist::GateId g : state.nl->logic_gates()) {
    const std::uint32_t m = module_of[g];
    IDDQ_ASSERT(m < module_count);
    times[g].for_each([&](std::size_t t) {
      current[m * grid + t] += state.cells[g].ipeak_ua;
    });
    for (std::size_t j = 1; j <= state.extra[g]; ++j) {
      const std::size_t shift = j * state.buf_slots;
      for (const netlist::GateId f : state.nl->gate(g).fanins) {
        times[f].for_each([&](std::size_t t) {
          if (t + shift < grid)
            current[m * grid + t + shift] += buf_ipeak_ua;
        });
      }
    }
  }
  ModuleObjective obj;
  double worst_peak = -1.0;
  for (std::uint32_t m = 0; m < module_count; ++m) {
    double peak = 0.0;
    std::size_t slot = 0;
    for (std::size_t t = 0; t < grid; ++t) {
      if (current[m * grid + t] > peak) {
        peak = current[m * grid + t];
        slot = t;
      }
    }
    obj.sum_peaks += peak;
    if (peak > worst_peak) {
      worst_peak = peak;
      obj.worst_module = m;
      obj.worst_slot = slot;
    }
  }
  return obj;
}

}  // namespace

ResynthResult retime_for_iddq(const netlist::Netlist& nl,
                              const lib::CellLibrary& library,
                              const ResynthOptions& options) {
  require(options.grid_bin_ps > 0.0, "resynth: grid bin must be positive");
  require(options.target_peak_reduction >= 0.0 &&
              options.target_peak_reduction < 1.0,
          "resynth: target reduction must be in [0, 1)");
  require(options.delay_margin >= 0.0, "resynth: delay margin must be >= 0");

  RetimeState state;
  state.nl = &nl;
  state.cells = lib::bind_cells(nl, library);
  state.order = netlist::topological_order(nl);
  state.bin_ps = options.grid_bin_ps;
  const auto& buf =
      library.params(lib::CellType{netlist::GateKind::kBuf, 1});
  state.buf_delay_ps = buf.delay_ps;
  state.buf_slots = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::llround(buf.delay_ps / state.bin_ps)));
  state.extra.assign(nl.gate_count(), 0);

  const double d_before = est::nominal_critical_path_ps(nl, state.cells);
  const double limit_ps = d_before * (1.0 + options.delay_margin);

  // Grid sized for the worst case: every retiming budget spent in series.
  const std::size_t base_grid = static_cast<std::size_t>(
      std::ceil(limit_ps / state.bin_ps)) + 2;
  const std::size_t grid =
      base_grid + options.max_retimed_gates * state.buf_slots + 2;

  auto [current, peak] = state.profile(grid);
  ResynthResult result{nl, 0, 0, peak, peak, d_before, d_before};
  const double target_peak = peak * (1.0 - options.target_peak_reduction);

  while (result.retimed_gates < options.max_retimed_gates &&
         result.peak_after_ua > target_peak) {
    // Peak slot under the current configuration.
    std::size_t t_star = 0;
    for (std::size_t t = 1; t < current.size(); ++t)
      if (current[t] > current[t_star]) t_star = t;

    // Candidates: gates switching at t* with enough slack for one buffer
    // stage, ranked by current relieved per buffer inserted.
    const auto slack = state.slacks_ps(limit_ps);
    const auto times = state.transition_sets(grid);
    std::vector<netlist::GateId> candidates;
    for (const netlist::GateId g : nl.logic_gates()) {
      if (!times[g].test(t_star)) continue;
      if (slack[g] < state.buf_delay_ps) continue;
      candidates.push_back(g);
    }
    std::sort(candidates.begin(), candidates.end(),
              [&](netlist::GateId a, netlist::GateId b) {
                const double score_a = state.cells[a].ipeak_ua /
                                       static_cast<double>(
                                           nl.gate(a).fanins.size());
                const double score_b = state.cells[b].ipeak_ua /
                                       static_cast<double>(
                                           nl.gate(b).fanins.size());
                return score_a > score_b;
              });

    bool improved = false;
    for (const netlist::GateId g : candidates) {
      state.extra[g] += 1;
      auto [trial_current, trial_peak] = state.profile(grid);
      if (trial_peak < result.peak_after_ua) {
        current = std::move(trial_current);
        result.peak_after_ua = trial_peak;
        result.retimed_gates += 1;
        result.buffers_added += nl.gate(g).fanins.size();
        improved = true;
        break;
      }
      state.extra[g] -= 1;  // no gain: revert and try the next candidate
    }
    if (!improved) break;  // local optimum of the one-buffer neighbourhood
  }

  // Physically rebuild the circuit with the chosen buffer insertions.
  if (result.retimed_gates == 0) return result;

  netlist::NetlistBuilder b(nl.name() + "_rt");
  std::vector<netlist::GateId> remap(nl.gate_count(), netlist::kNoGate);
  for (const netlist::GateId g : nl.primary_inputs())
    remap[g] = b.add_input(nl.gate(g).name);
  for (const netlist::GateId g : state.order) {
    const auto& gate = nl.gate(g);
    if (gate.fanins.empty()) continue;
    std::vector<netlist::GateId> fanins;
    fanins.reserve(gate.fanins.size());
    for (std::size_t i = 0; i < gate.fanins.size(); ++i) {
      netlist::GateId src = remap[gate.fanins[i]];
      IDDQ_ASSERT(src != netlist::kNoGate);
      for (std::size_t k = 0; k < state.extra[g]; ++k) {
        src = b.add_gate(netlist::GateKind::kBuf,
                         gate.name + "_rt" + std::to_string(k) + "_" +
                             std::to_string(i),
                         {src});
      }
      fanins.push_back(src);
    }
    remap[g] = b.add_gate(gate.kind, gate.name, std::move(fanins));
  }
  for (const netlist::GateId g : nl.primary_outputs()) b.mark_output(remap[g]);
  result.netlist = std::move(b).build();
  result.delay_after_ps = est::nominal_critical_path_ps(
      result.netlist, lib::bind_cells(result.netlist, library));
  return result;
}

PartitionedResynthResult retime_for_iddq_partitioned(
    const netlist::Netlist& nl, const lib::CellLibrary& library,
    const std::vector<std::vector<netlist::GateId>>& module_groups,
    const ResynthOptions& options) {
  require(options.grid_bin_ps > 0.0, "resynth: grid bin must be positive");
  require(!module_groups.empty(), "resynth: need at least one module");

  RetimeState state;
  state.nl = &nl;
  state.cells = lib::bind_cells(nl, library);
  state.order = netlist::topological_order(nl);
  state.bin_ps = options.grid_bin_ps;
  const auto& buf =
      library.params(lib::CellType{netlist::GateKind::kBuf, 1});
  state.buf_delay_ps = buf.delay_ps;
  state.buf_slots = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::llround(buf.delay_ps / state.bin_ps)));
  state.extra.assign(nl.gate_count(), 0);

  std::vector<std::uint32_t> module_of(
      nl.gate_count(), static_cast<std::uint32_t>(-1));
  for (std::uint32_t m = 0; m < module_groups.size(); ++m)
    for (const netlist::GateId g : module_groups[m]) {
      require(g < nl.gate_count() && netlist::is_logic(nl.gate(g).kind),
              "resynth: group contains an invalid gate id");
      module_of[g] = m;
    }
  for (const netlist::GateId g : nl.logic_gates())
    require(module_of[g] != static_cast<std::uint32_t>(-1),
            "resynth: module groups must cover every logic gate");

  const double d_before = est::nominal_critical_path_ps(nl, state.cells);
  const double limit_ps = d_before * (1.0 + options.delay_margin);
  const std::size_t grid =
      static_cast<std::size_t>(std::ceil(limit_ps / state.bin_ps)) +
      options.max_retimed_gates * state.buf_slots + 4;

  ModuleObjective obj = evaluate_modules(state, grid, module_of,
                                         module_groups.size(), buf.ipeak_ua);
  PartitionedResynthResult result;
  result.netlist = nl;
  result.sum_peak_before_ua = obj.sum_peaks;
  result.sum_peak_after_ua = obj.sum_peaks;
  result.delay_before_ps = d_before;
  result.delay_after_ps = d_before;
  const double target = obj.sum_peaks * (1.0 - options.target_peak_reduction);

  while (result.retimed_gates < options.max_retimed_gates &&
         result.sum_peak_after_ua > target) {
    const auto slack = state.slacks_ps(limit_ps);
    const auto times = state.transition_sets(grid);
    std::vector<netlist::GateId> candidates;
    for (const netlist::GateId g : nl.logic_gates()) {
      if (module_of[g] != obj.worst_module) continue;
      if (!times[g].test(obj.worst_slot)) continue;
      if (slack[g] < state.buf_delay_ps) continue;
      candidates.push_back(g);
    }
    std::sort(candidates.begin(), candidates.end(),
              [&](netlist::GateId a, netlist::GateId b) {
                return state.cells[a].ipeak_ua /
                           static_cast<double>(nl.gate(a).fanins.size()) >
                       state.cells[b].ipeak_ua /
                           static_cast<double>(nl.gate(b).fanins.size());
              });
    if (candidates.size() > 12) candidates.resize(12);

    bool improved = false;
    for (const netlist::GateId g : candidates) {
      state.extra[g] += 1;
      const ModuleObjective trial = evaluate_modules(
          state, grid, module_of, module_groups.size(), buf.ipeak_ua);
      if (trial.sum_peaks < result.sum_peak_after_ua) {
        obj = trial;
        result.sum_peak_after_ua = trial.sum_peaks;
        result.retimed_gates += 1;
        result.buffers_added += nl.gate(g).fanins.size();
        improved = true;
        break;
      }
      state.extra[g] -= 1;
    }
    if (!improved) break;
  }

  // Rebuild with buffers and extend the module groups so the partition
  // covers the new cells (each buffer joins its sink gate's module).
  result.groups.assign(module_groups.size(), {});
  netlist::NetlistBuilder b(nl.name() + "_prt");
  std::vector<netlist::GateId> remap(nl.gate_count(), netlist::kNoGate);
  for (const netlist::GateId g : nl.primary_inputs())
    remap[g] = b.add_input(nl.gate(g).name);
  for (const netlist::GateId g : state.order) {
    const auto& gate = nl.gate(g);
    if (gate.fanins.empty()) continue;
    const std::uint32_t m = module_of[g];
    std::vector<netlist::GateId> fanins;
    fanins.reserve(gate.fanins.size());
    for (std::size_t i = 0; i < gate.fanins.size(); ++i) {
      netlist::GateId src = remap[gate.fanins[i]];
      IDDQ_ASSERT(src != netlist::kNoGate);
      for (std::size_t k = 0; k < state.extra[g]; ++k) {
        src = b.add_gate(netlist::GateKind::kBuf,
                         gate.name + "_prt" + std::to_string(k) + "_" +
                             std::to_string(i),
                         {src});
        result.groups[m].push_back(src);
      }
      fanins.push_back(src);
    }
    remap[g] = b.add_gate(gate.kind, gate.name, std::move(fanins));
    result.groups[m].push_back(remap[g]);
  }
  for (const netlist::GateId g : nl.primary_outputs()) b.mark_output(remap[g]);
  result.netlist = std::move(b).build();
  result.delay_after_ps = est::nominal_critical_path_ps(
      result.netlist, lib::bind_cells(result.netlist, library));
  return result;
}

}  // namespace iddq::core
