#include "core/evolution.hpp"

#include <algorithm>
#include <cmath>

#include "core/start_partition.hpp"
#include "support/error.hpp"
#include "support/executor.hpp"

namespace iddq::core {

EvolutionEngine::EvolutionEngine(const part::EvalContext& ctx,
                                 EsParams params)
    : ctx_(&ctx), params_(params), rng_(params.seed) {
  require(params_.mu >= 1, "evolution: mu must be >= 1");
  require(params_.lambda + params_.chi >= 1,
          "evolution: need at least one descendant per parent");
  require(params_.m0 >= 1 && params_.m0 <= params_.m_max,
          "evolution: step width out of range");
  require(params_.kappa >= 1, "evolution: kappa must be >= 1");
}

std::vector<netlist::GateId> EvolutionEngine::boundary_gates(
    const part::PartitionEvaluator& eval, std::uint32_t m) {
  const auto& nl = eval.context().nl;
  const auto& p = eval.partition();
  std::vector<netlist::GateId> boundary;
  for (const netlist::GateId g : p.module(m)) {
    bool is_boundary = false;
    const auto& gate = nl.gate(g);
    for (const netlist::GateId f : gate.fanins) {
      if (netlist::is_logic(nl.gate(f).kind) && p.module_of(f) != m) {
        is_boundary = true;
        break;
      }
    }
    if (!is_boundary) {
      for (const netlist::GateId f : gate.fanouts) {
        if (p.module_of(f) != m) {  // fanouts are always logic gates
          is_boundary = true;
          break;
        }
      }
    }
    if (is_boundary) boundary.push_back(g);
  }
  return boundary;
}

std::uint32_t EvolutionEngine::vary_step_width(std::uint32_t m) {
  const double varied = rng_.normal(static_cast<double>(m), params_.epsilon);
  const auto rounded = static_cast<std::int64_t>(std::llround(varied));
  if (rounded < 1) return 1;
  if (rounded > static_cast<std::int64_t>(params_.m_max)) return params_.m_max;
  return static_cast<std::uint32_t>(rounded);
}

void EvolutionEngine::mutate(Individual& child) {
  auto& eval = child.eval;
  const auto& p = eval.partition();
  if (p.module_count() < 2) return;  // nothing to move between

  // Pick a start module that has boundary gates (every module of a
  // connected partition has some; guard against pathological cases).
  std::vector<netlist::GateId> boundary;
  std::uint32_t m_start = 0;
  for (int attempt = 0; attempt < 8; ++attempt) {
    m_start = static_cast<std::uint32_t>(rng_.index(p.module_count()));
    boundary = boundary_gates(eval, m_start);
    if (!boundary.empty()) break;
  }
  if (boundary.empty()) return;

  const std::uint64_t cap =
      std::min<std::uint64_t>(child.step_width, boundary.size());
  const std::size_t m_move = 1 + static_cast<std::size_t>(rng_.below(cap));
  rng_.shuffle(boundary);
  boundary.resize(m_move);

  for (const netlist::GateId g : boundary) {
    // The gate moves into a random neighbouring module it connects with.
    // (Earlier moves of this mutation may have changed memberships, so the
    // neighbour set is recomputed per gate.)
    const auto& nl = ctx_->nl;
    const std::uint32_t src = eval.partition().module_of(g);
    std::vector<std::uint32_t> targets;
    const auto consider = [&](netlist::GateId f) {
      if (!netlist::is_logic(nl.gate(f).kind)) return;
      const std::uint32_t m = eval.partition().module_of(f);
      if (m != src &&
          std::find(targets.begin(), targets.end(), m) == targets.end())
        targets.push_back(m);
    };
    for (const netlist::GateId f : nl.gate(g).fanins) consider(f);
    for (const netlist::GateId f : nl.gate(g).fanouts) consider(f);
    if (targets.empty()) continue;  // became interior; skip
    eval.move_gate(g, targets[rng_.index(targets.size())]);
    if (eval.partition().module_count() < 2) break;
  }
}

void EvolutionEngine::monte_carlo(Individual& child) {
  auto& eval = child.eval;
  if (eval.partition().module_count() < 2) return;
  const auto src = static_cast<std::uint32_t>(
      rng_.index(eval.partition().module_count()));
  std::uint32_t dst = src;
  while (dst == src)
    dst = static_cast<std::uint32_t>(
        rng_.index(eval.partition().module_count()));
  const std::size_t count =
      1 + static_cast<std::size_t>(
              rng_.below(eval.partition().module_size(src)));
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t remaining = eval.partition().module_size(src);
    if (remaining == 0) break;  // module was emptied and deleted
    const netlist::GateId g =
        eval.partition().module(src)[rng_.index(remaining)];
    eval.move_gate(g, dst);
    if (eval.partition().module_count() < 2) break;
    // If the source module was deleted, its slot may now hold another
    // module; stop moving in that case (the paper deletes the module and
    // the descendant is complete).
    if (remaining == 1) break;
  }
}

EsResult EvolutionEngine::run_with_module_count(std::size_t module_count) {
  std::vector<part::Partition> starts;
  starts.reserve(params_.mu);
  for (std::size_t i = 0; i < params_.mu; ++i)
    starts.push_back(make_start_partition(ctx_->nl, module_count, rng_));
  return run(starts);
}

EsResult EvolutionEngine::run(std::span<const part::Partition> starts) {
  require(!starts.empty(), "evolution: need at least one start partition");

  std::vector<Individual> parents;
  parents.reserve(params_.mu);
  for (std::size_t i = 0; i < params_.mu; ++i) {
    part::PartitionEvaluator eval(*ctx_, starts[i % starts.size()]);
    parents.push_back(Individual{std::move(eval), {}, params_.m0, 0});
  }
  // Fitness consumes no randomness and touches only the individual's own
  // evaluator, so the initial population (and every generation's children
  // below) evaluates in parallel without perturbing the trajectory.
  support::parallel_for_indexed(params_.pool, parents.size(),
                                [&parents](std::size_t i) {
                                  parents[i].fitness =
                                      parents[i].eval.fitness();
                                });

  EsResult result;
  result.evaluations = parents.size();
  auto best = parents.front();
  for (const auto& p : parents)
    if (p.fitness < best.fitness) best = p;

  std::size_t stall = 0;
  for (std::size_t gen = 0; gen < params_.max_generations; ++gen) {
    std::vector<Individual> pool;
    pool.reserve(parents.size() * (1 + params_.lambda + params_.chi));

    // Coordinator phase: every RNG draw (step widths, mutation moves)
    // happens here, in the fixed serial order; children land in pre-
    // indexed slots with their fitness still unset.
    std::vector<std::size_t> fresh;  // pool slots that need evaluation
    fresh.reserve(parents.size() * (params_.lambda + params_.chi));
    for (auto& parent : parents) {
      parent.age += 1;
      for (std::size_t c = 0; c < params_.lambda; ++c) {
        // Recombination = duplication. The copy takes the parent's module
        // caches but deliberately drops the timing arrival state
        // (evaluator copy semantics); the child's fitness() refresh
        // rederives only its mutation-dirtied modules and repropagates —
        // bit-identical to a full evaluation of the child's partition.
        Individual child = parent;
        child.age = 0;
        child.step_width = vary_step_width(parent.step_width);
        mutate(child);
        ++result.evaluations;
        fresh.push_back(pool.size());
        pool.push_back(std::move(child));
      }
      for (std::size_t c = 0; c < params_.chi; ++c) {
        Individual child = parent;
        child.age = 0;
        child.step_width = vary_step_width(parent.step_width);
        monte_carlo(child);
        ++result.evaluations;
        fresh.push_back(pool.size());
        pool.push_back(std::move(child));
      }
      if (parent.age < params_.kappa) pool.push_back(parent);
    }
    if (pool.empty()) break;  // all parents expired with no children

    // Worker phase: evaluate the generation's descendants concurrently.
    support::parallel_for_indexed(params_.pool, fresh.size(),
                                  [&pool, &fresh](std::size_t i) {
                                    Individual& child = pool[fresh[i]];
                                    child.fitness = child.eval.fitness();
                                  });

    std::sort(pool.begin(), pool.end(),
              [](const Individual& a, const Individual& b) {
                return a.fitness < b.fitness;
              });
    const std::size_t survivors = std::min(params_.mu, pool.size());
    parents.assign(std::make_move_iterator(pool.begin()),
                   std::make_move_iterator(pool.begin() + survivors));

    const bool improved = parents.front().fitness < best.fitness;
    if (improved) {
      best = parents.front();
      stall = 0;
    } else {
      ++stall;
    }
    result.generations = gen + 1;

    if (params_.record_trace || params_.on_generation) {
      GenerationStats stats;
      stats.generation = gen + 1;
      stats.best = best.fitness;
      double sum = 0.0;
      for (const auto& p : parents) sum += p.fitness.cost;
      stats.mean_cost = sum / static_cast<double>(parents.size());
      stats.module_count = best.eval.partition().module_count();
      stats.best_step_width = parents.front().step_width;
      stats.evaluations = result.evaluations;
      if (params_.on_generation) params_.on_generation(stats);
      if (params_.record_trace) result.trace.push_back(stats);
    }
    if (stall >= params_.stall_generations) break;
  }

  result.best_partition = best.eval.partition();
  result.best_fitness = best.fitness;
  result.best_costs = best.eval.costs();
  return result;
}

}  // namespace iddq::core
