// Thin Optimizer adapters over the pre-existing search implementations.
//
// Each adapter forwards to the direct entry point unchanged — same RNG
// stream, same defaults — so that at the same seed/budget it reproduces the
// direct call bit-for-bit (tests/core/test_optimizer_equivalence.cpp). Best
// fitness/costs are taken from the wrapped result rather than re-evaluated,
// preserving the incremental evaluator's exact floating-point trajectory.
#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "core/annealing.hpp"
#include "core/evolution.hpp"
#include "core/force_directed.hpp"
#include "core/optimizer_registry.hpp"
#include "core/random_search.hpp"
#include "core/refiner.hpp"
#include "core/tabu.hpp"
#include "core/size_planner.hpp"
#include "core/standard_partition.hpp"
#include "core/start_partition.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace iddq::core {
namespace {

const part::EvalContext& context_of(const OptimizerRequest& req) {
  require(req.ctx != nullptr, "optimizer request: EvalContext is required");
  return *req.ctx;
}

std::size_t resolve_module_count(const OptimizerRequest& req) {
  if (req.start) return req.start->module_count();
  if (req.module_count > 0) return req.module_count;
  return plan_module_size(context_of(req)).module_count;
}

part::Partition resolve_start(const OptimizerRequest& req) {
  if (req.start) return *req.start;
  Rng rng(req.seed);
  return make_start_partition(context_of(req).nl, resolve_module_count(req),
                              rng);
}

void report_final(const OptimizerRequest& req, const OptimizerOutcome& out) {
  if (req.on_progress)
    req.on_progress({out.method, out.iterations, out.evaluations, out.fitness});
}

class EvolutionOptimizer final : public Optimizer {
 public:
  explicit EvolutionOptimizer(EsParams params) : params_(params) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return "evolution";
  }

  [[nodiscard]] OptimizerOutcome run(
      const OptimizerRequest& req) const override {
    EsParams params = params_;
    params.seed = req.seed;
    params.record_trace = params.record_trace || req.record_trace;
    params.pool = req.pool;
    if (req.on_progress)
      // Live per-generation ticks (ROADMAP progress item); the callback
      // only observes, so the trajectory is unchanged.
      params.on_generation = [&req](const GenerationStats& g) {
        req.on_progress({"evolution", g.generation, g.evaluations, g.best});
      };
    EvolutionEngine engine(context_of(req), params);
    EsResult es =
        req.start ? engine.run({&*req.start, 1})
                  : engine.run_with_module_count(resolve_module_count(req));
    OptimizerOutcome out;
    out.method = std::string(name());
    out.partition = std::move(es.best_partition);
    out.fitness = es.best_fitness;
    out.costs = es.best_costs;
    out.iterations = es.generations;
    out.evaluations = es.evaluations;
    out.trace = std::move(es.trace);
    report_final(req, out);
    return out;
  }

 private:
  EsParams params_;
};

class AnnealingOptimizer final : public Optimizer {
 public:
  explicit AnnealingOptimizer(SaParams params) : params_(params) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return "annealing";
  }

  [[nodiscard]] OptimizerOutcome run(
      const OptimizerRequest& req) const override {
    SaParams params = params_;
    params.seed = req.seed;
    if (req.max_evaluations > 0) params.steps = req.max_evaluations;
    if (req.on_progress)
      params.on_step = [&req](std::size_t step, std::size_t evals,
                              const part::Fitness& best) {
        req.on_progress({"annealing", step, evals, best});
      };
    SaResult sa =
        simulated_annealing(context_of(req), resolve_start(req), params);
    OptimizerOutcome out;
    out.method = std::string(name());
    out.partition = std::move(sa.best_partition);
    out.fitness = sa.best_fitness;
    out.costs = sa.best_costs;
    out.iterations = sa.evaluations;
    out.evaluations = sa.evaluations;
    report_final(req, out);
    return out;
  }

 private:
  SaParams params_;
};

class RandomSearchOptimizer final : public Optimizer {
 public:
  explicit RandomSearchOptimizer(std::size_t samples) : samples_(samples) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return "random";
  }

  [[nodiscard]] OptimizerOutcome run(
      const OptimizerRequest& req) const override {
    const std::size_t samples =
        req.max_evaluations > 0 ? req.max_evaluations : samples_;
    RandomSearchResult rs =
        random_search(context_of(req), resolve_module_count(req), samples,
                      req.seed, req.pool);
    OptimizerOutcome out;
    out.method = std::string(name());
    out.partition = std::move(rs.best_partition);
    out.fitness = rs.best_fitness;
    out.costs = rs.best_costs;
    out.iterations = rs.evaluations;
    out.evaluations = rs.evaluations;
    report_final(req, out);
    return out;
  }

 private:
  std::size_t samples_;
};

class GreedyOptimizer final : public Optimizer {
 public:
  explicit GreedyOptimizer(std::size_t max_evaluations)
      : max_evaluations_(max_evaluations) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return "greedy";
  }

  [[nodiscard]] OptimizerOutcome run(
      const OptimizerRequest& req) const override {
    part::PartitionEvaluator eval(context_of(req), resolve_start(req));
    const std::size_t budget =
        req.max_evaluations > 0 ? req.max_evaluations : max_evaluations_;
    const RefineResult refine = greedy_refine(eval, budget, req.pool);
    OptimizerOutcome out;
    out.method = std::string(name());
    out.partition = eval.partition();
    out.fitness = refine.final_fitness;
    out.costs = eval.costs();
    out.iterations = refine.moves_applied;
    out.evaluations = refine.evaluations;
    report_final(req, out);
    return out;
  }

 private:
  std::size_t max_evaluations_;
};

class TabuOptimizer final : public Optimizer {
 public:
  explicit TabuOptimizer(TabuParams params) : params_(params) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return "tabu";
  }

  [[nodiscard]] OptimizerOutcome run(
      const OptimizerRequest& req) const override {
    TabuParams params = params_;
    params.seed = req.seed;
    params.pool = req.pool;
    // The evaluation budget maps to rounds: every round spends up to
    // `candidates` evaluations on the sampled neighbourhood.
    if (req.max_evaluations > 0)
      params.iterations =
          std::max<std::size_t>(1, req.max_evaluations / params.candidates);
    if (req.on_progress)
      params.on_round = [&req](std::size_t round, std::size_t evals,
                               const part::Fitness& best) {
        req.on_progress({"tabu", round, evals, best});
      };
    TabuResult tabu = tabu_search(context_of(req), resolve_start(req), params);
    OptimizerOutcome out;
    out.method = std::string(name());
    out.partition = std::move(tabu.best_partition);
    out.fitness = tabu.best_fitness;
    out.costs = tabu.best_costs;
    out.iterations = tabu.iterations;
    out.evaluations = tabu.evaluations;
    report_final(req, out);
    return out;
  }

 private:
  TabuParams params_;
};

class ForceDirectedOptimizer final : public Optimizer {
 public:
  explicit ForceDirectedOptimizer(std::size_t passes) : passes_(passes) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return "force";
  }

  [[nodiscard]] OptimizerOutcome run(
      const OptimizerRequest& req) const override {
    // Deterministic and seed-independent: the construction has no random
    // choices (position ties sort by GateId). A `start` only contributes
    // its module count, like "random".
    part::PartitionEvaluator eval(
        context_of(req),
        force_directed_partition(context_of(req).nl,
                                 resolve_module_count(req), passes_));
    OptimizerOutcome out;
    out.method = std::string(name());
    out.fitness = eval.fitness();
    out.costs = eval.costs();
    out.partition = eval.partition();
    out.iterations = passes_;
    out.evaluations = 1;
    report_final(req, out);
    return out;
  }

 private:
  std::size_t passes_;
};

class StandardOptimizer final : public Optimizer {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "standard";
  }

  [[nodiscard]] OptimizerOutcome run(
      const OptimizerRequest& req) const override {
    const part::EvalContext& ctx = context_of(req);
    // Section 5: module sizes come from the caller — the sizes another
    // optimizer discovered when `start` is given, an even split otherwise.
    std::vector<std::size_t> sizes;
    if (req.start) {
      sizes.reserve(req.start->module_count());
      for (std::uint32_t m = 0; m < req.start->module_count(); ++m)
        sizes.push_back(req.start->module_size(m));
    } else {
      const std::size_t k = resolve_module_count(req);
      const std::size_t n = ctx.nl.logic_gate_count();
      require(k >= 1 && k <= n,
              "standard partitioning: module count out of range");
      sizes.assign(k, n / k);
      for (std::size_t i = 0; i < n % k; ++i) ++sizes[i];
    }
    part::PartitionEvaluator eval(
        ctx, standard_partition(ctx.nl, ctx.oracle, sizes));
    OptimizerOutcome out;
    out.method = std::string(name());
    out.fitness = eval.fitness();
    out.costs = eval.costs();
    out.partition = eval.partition();
    out.iterations = 1;
    out.evaluations = 1;
    report_final(req, out);
    return out;
  }
};

}  // namespace

void register_builtin_optimizers(OptimizerRegistry& registry) {
  registry.add("evolution", [](const OptimizerConfig& cfg) {
    return std::make_unique<EvolutionOptimizer>(cfg.es);
  });
  registry.add("annealing", [](const OptimizerConfig& cfg) {
    return std::make_unique<AnnealingOptimizer>(cfg.sa);
  });
  registry.add("random", [](const OptimizerConfig& cfg) {
    return std::make_unique<RandomSearchOptimizer>(cfg.random_samples);
  });
  registry.add("greedy", [](const OptimizerConfig& cfg) {
    return std::make_unique<GreedyOptimizer>(cfg.greedy_max_evaluations);
  });
  registry.add("standard", [](const OptimizerConfig&) {
    return std::make_unique<StandardOptimizer>();
  });
  registry.add("tabu", [](const OptimizerConfig& cfg) {
    return std::make_unique<TabuOptimizer>(cfg.tabu);
  });
  registry.add("force", [](const OptimizerConfig& cfg) {
    return std::make_unique<ForceDirectedOptimizer>(cfg.force_passes);
  });
}

}  // namespace iddq::core
