#include "core/flow_engine.hpp"

#include <utility>

#include "library/fingerprint.hpp"
#include "netlist/fingerprint.hpp"
#include "sim/coverage.hpp"
#include "support/error.hpp"
#include "support/executor.hpp"
#include "support/rng.hpp"

namespace iddq::core {

MethodResult evaluate_method(const part::EvalContext& ctx, std::string method,
                             const part::Partition& partition) {
  part::PartitionEvaluator eval(ctx, partition);
  MethodResult r;
  r.method = std::move(method);
  r.partition = partition;
  r.costs = eval.costs();
  r.fitness = eval.fitness();
  r.sensor_area = eval.total_sensor_area();
  r.delay_overhead = r.costs.c2;
  r.test_overhead = r.costs.c4;
  r.module_count = partition.module_count();
  r.modules.reserve(r.module_count);
  for (std::uint32_t m = 0; m < r.module_count; ++m)
    r.modules.push_back(eval.module_report(m));
  return r;
}

FlowEngine::FlowEngine(const netlist::Netlist& nl,
                       const lib::CellLibrary& library,
                       FlowEngineConfig config,
                       const OptimizerRegistry& registry)
    : nl_(&nl),
      config_(std::move(config)),
      registry_(&registry),
      ctx_(nl, library, config_.sensor, config_.weights, config_.rho),
      plan_(plan_module_size(ctx_)) {
  // The fingerprint hashes the coverage options in canonical fault-model
  // spelling, so "bridges=4,shorts=2" and "shorts=2,bridges=4" share
  // cache entries. Parsing here also rejects malformed specs before any
  // optimizer runs.
  CoverageOptions coverage = config_.coverage;
  if (config_.coverage.enabled) {
    sim::CoverageConfig cc;
    cc.fault_model = sim::FaultModelSpec::parse(config_.coverage.fault_model);
    cc.patterns = config_.coverage.patterns;
    cc.minimize = config_.coverage.minimize;
    cc.seed = config_.coverage.seed;
    cc.sim.iddq_th_ua = config_.sensor.iddq_th_ua;
    coverage.fault_model = cc.fault_model.canonical();
    coverage_ = std::make_unique<sim::CoverageEngine>(nl, library, cc);
  }
  context_fp_ = cache_context_fingerprint(
      netlist::structural_fingerprint(nl), lib::library_fingerprint(library),
      config_.sensor, config_.weights, config_.rho, config_.optimizers,
      coverage);
}

FlowEngine::~FlowEngine() = default;

void FlowEngine::apply_coverage(MethodResult& result) const {
  if (coverage_ == nullptr) return;
  const sim::CoverageReport report = coverage_->score(
      result.partition, config_.pool != nullptr
                            ? config_.pool
                            : &support::ExecutorPool::shared_default());
  result.has_coverage = true;
  result.faults_total = report.faults_total;
  result.faults_detected = report.faults_detected;
  result.fault_coverage_pct = report.coverage_pct();
  result.patterns_used = report.patterns_supplied;
  result.patterns_minimized = report.patterns_minimized;
}

MethodResult FlowEngine::from_cache_record(const CacheRecord& record) {
  // Replaying the stored partition through the same deterministic
  // evaluation that produced the original MethodResult reproduces the
  // module reports and sensor area byte-for-byte; the optimizer-trajectory
  // fields come straight from the record.
  require(record.gate_count == nl_->gate_count(),
          "result cache: record does not match this circuit");
  // The context fingerprint mixes the coverage options, so only records
  // stored by an identically-graded engine can be seen here; a mismatch
  // is a foreign record (key collision) and degrades to a miss.
  require(record.has_coverage == (coverage_ != nullptr),
          "result cache: record coverage fields do not match this engine");
  // from_groups validates coverage/duplicates/ranges and preserves the
  // stored intra-module gate order.
  MethodResult result = evaluate_method(
      ctx_, record.method,
      part::Partition::from_groups(*nl_, record.modules));
  result.fitness = record.fitness;
  result.costs = record.costs;
  result.delay_overhead = record.costs.c2;
  result.test_overhead = record.costs.c4;
  result.iterations = record.iterations;
  result.evaluations = record.evaluations;
  if (record.has_coverage) {
    result.has_coverage = true;
    result.faults_total = record.faults_total;
    result.faults_detected = record.faults_detected;
    result.fault_coverage_pct =
        sim::coverage_percent(record.faults_detected, record.faults_total);
    result.patterns_used = record.patterns_used;
    result.patterns_minimized = record.patterns_minimized;
  }
  return result;
}

MethodResult FlowEngine::run_method(std::string_view spec,
                                    const RunOptions& options) {
  // Traced runs bypass the cache: the trace is not persisted, so a hit
  // could not reproduce it. Tracing can be requested per run or through
  // the ES config (EvolutionOptimizer ORs the two flags).
  const bool traced =
      options.record_trace || config_.optimizers.es.record_trace;
  const bool cacheable = config_.cache != nullptr && !traced;
  std::uint64_t key = 0;
  if (cacheable) {
    key = cache_key(context_fp_, spec, options.seed, options.max_evaluations,
                    options.start);
    if (const auto hit = config_.cache->lookup(key)) {
      try {
        return from_cache_record(*hit);
      } catch (const Error&) {
        // A mismatched record (key collision, foreign cache file) is
        // treated as a miss and overwritten below.
      }
    }
  }

  const auto optimizer = registry_->make(spec, config_.optimizers);

  OptimizerRequest request;
  request.ctx = &ctx_;
  if (options.start != nullptr) request.start = *options.start;
  request.module_count = plan_.module_count;
  request.max_evaluations = options.max_evaluations;
  request.seed = options.seed;
  request.record_trace = options.record_trace;
  request.on_progress =
      options.on_progress ? options.on_progress : config_.on_progress;
  request.pool = config_.pool != nullptr
                     ? config_.pool
                     : &support::ExecutorPool::shared_default();

  OptimizerOutcome outcome = optimizer->run(request);
  MethodResult result =
      evaluate_method(ctx_, std::move(outcome.method), outcome.partition);
  // Keep the optimizer's own fitness/costs: identical to the re-evaluation
  // up to the incremental evaluator's floating-point trajectory, and the
  // values the equivalence tests pin against the direct entry points.
  result.fitness = outcome.fitness;
  result.costs = outcome.costs;
  result.delay_overhead = outcome.costs.c2;
  result.test_overhead = outcome.costs.c4;
  result.iterations = outcome.iterations;
  result.evaluations = outcome.evaluations;
  result.trace = std::move(outcome.trace);
  apply_coverage(result);

  if (cacheable) {
    CacheRecord record;
    record.method = result.method;
    record.gate_count = result.partition.gate_count();
    record.modules.reserve(result.partition.module_count());
    for (std::uint32_t m = 0; m < result.partition.module_count(); ++m) {
      const auto gates = result.partition.module(m);
      record.modules.emplace_back(gates.begin(), gates.end());
    }
    record.fitness = result.fitness;
    record.costs = result.costs;
    record.iterations = result.iterations;
    record.evaluations = result.evaluations;
    record.has_coverage = result.has_coverage;
    record.faults_total = result.faults_total;
    record.faults_detected = result.faults_detected;
    record.patterns_used = result.patterns_used;
    record.patterns_minimized = result.patterns_minimized;
    config_.cache->store(key, record);
  }
  return result;
}

std::vector<MethodResult> FlowEngine::run_methods(
    std::span<const std::string> specs, std::uint64_t base_seed) {
  return run_methods(specs, base_seed, FlowSequenceOptions{});
}

std::vector<MethodResult> FlowEngine::run_methods(
    std::span<const std::string> specs, std::uint64_t base_seed,
    const FlowSequenceOptions& sequence) {
  const auto check_cancelled = [&sequence] {
    if (sequence.cancelled && sequence.cancelled())
      throw CancelledError("job cancelled");
  };
  // Cancellation rides on the progress stream: ticks are the only safe
  // preemption points inside an optimizer, and polling there costs nothing
  // when no cancellation hook is installed. The wrapper forwards to the
  // sequence sink or, when none is set, to the config default — installing
  // a cancellation hook alone must not silence FlowEngineConfig's sink
  // (run_method gives any per-run callback precedence over it).
  ProgressCallback on_progress = sequence.on_progress;
  if (sequence.cancelled) {
    const ProgressCallback forward =
        sequence.on_progress ? sequence.on_progress : config_.on_progress;
    on_progress = [forward, check_cancelled](const OptimizerProgress& p) {
      check_cancelled();
      if (forward) forward(p);
    };
  }

  std::vector<MethodResult> results;
  results.reserve(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    check_cancelled();
    RunOptions options;
    options.seed = Rng::mix_seed(base_seed, i);
    options.max_evaluations = sequence.max_evaluations;
    options.on_progress = on_progress;
    if (specs[i] == "standard" && !results.empty())
      options.start = &results.front().partition;
    results.push_back(run_method(specs[i], options));
    if (sequence.on_row) sequence.on_row(i, results.back());
  }
  return results;
}

}  // namespace iddq::core
