#include "core/flow_engine.hpp"

#include <utility>

#include "support/rng.hpp"

namespace iddq::core {

MethodResult evaluate_method(const part::EvalContext& ctx, std::string method,
                             const part::Partition& partition) {
  part::PartitionEvaluator eval(ctx, partition);
  MethodResult r;
  r.method = std::move(method);
  r.partition = partition;
  r.costs = eval.costs();
  r.fitness = eval.fitness();
  r.sensor_area = eval.total_sensor_area();
  r.delay_overhead = r.costs.c2;
  r.test_overhead = r.costs.c4;
  r.module_count = partition.module_count();
  r.modules.reserve(r.module_count);
  for (std::uint32_t m = 0; m < r.module_count; ++m)
    r.modules.push_back(eval.module_report(m));
  return r;
}

FlowEngine::FlowEngine(const netlist::Netlist& nl,
                       const lib::CellLibrary& library,
                       FlowEngineConfig config,
                       const OptimizerRegistry& registry)
    : nl_(&nl),
      config_(std::move(config)),
      registry_(&registry),
      ctx_(nl, library, config_.sensor, config_.weights, config_.rho),
      plan_(plan_module_size(ctx_)) {}

MethodResult FlowEngine::run_method(std::string_view spec,
                                    const RunOptions& options) {
  const auto optimizer = registry_->make(spec, config_.optimizers);

  OptimizerRequest request;
  request.ctx = &ctx_;
  if (options.start != nullptr) request.start = *options.start;
  request.module_count = plan_.module_count;
  request.max_evaluations = options.max_evaluations;
  request.seed = options.seed;
  request.record_trace = options.record_trace;
  request.on_progress = options.on_progress;

  OptimizerOutcome outcome = optimizer->run(request);
  MethodResult result =
      evaluate_method(ctx_, std::move(outcome.method), outcome.partition);
  // Keep the optimizer's own fitness/costs: identical to the re-evaluation
  // up to the incremental evaluator's floating-point trajectory, and the
  // values the equivalence tests pin against the direct entry points.
  result.fitness = outcome.fitness;
  result.costs = outcome.costs;
  result.delay_overhead = outcome.costs.c2;
  result.test_overhead = outcome.costs.c4;
  result.iterations = outcome.iterations;
  result.evaluations = outcome.evaluations;
  result.trace = std::move(outcome.trace);
  return result;
}

std::vector<MethodResult> FlowEngine::run_methods(
    std::span<const std::string> specs, std::uint64_t base_seed) {
  std::vector<MethodResult> results;
  results.reserve(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    RunOptions options;
    options.seed = Rng::mix_seed(base_seed, i);
    if (specs[i] == "standard" && !results.empty())
      options.start = &results.front().partition;
    results.push_back(run_method(specs[i], options));
  }
  return results;
}

}  // namespace iddq::core
