#include "core/optimizer_registry.hpp"

#include <sstream>
#include <utility>

#include "core/portfolio.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"

namespace iddq::core {

namespace {

// Runs registered stages in sequence; every stage after the first starts
// from the partition the previous stage produced. Evaluations and
// iterations accumulate; the returned partition/fitness/costs are the best
// any stage reached (a stage that wanders off — e.g. "random" as a polish
// stage, which only reuses the module count — cannot make the pipeline
// worse than an earlier stage). A request budget is shared across stages:
// each stage gets what the previous stages have not already spent.
class CompositeOptimizer final : public Optimizer {
 public:
  CompositeOptimizer(std::string spec,
                     std::vector<std::unique_ptr<Optimizer>> stages)
      : spec_(std::move(spec)), stages_(std::move(stages)) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return spec_;
  }

  [[nodiscard]] OptimizerOutcome run(
      const OptimizerRequest& request) const override {
    OptimizerRequest stage_request = request;
    OptimizerOutcome best;
    OptimizerOutcome stage;
    std::size_t evaluations = 0;
    std::size_t iterations = 0;
    std::vector<GenerationStats> trace;
    for (std::size_t i = 0; i < stages_.size(); ++i) {
      if (request.max_evaluations > 0) {
        if (evaluations >= request.max_evaluations) break;  // budget spent
        stage_request.max_evaluations = request.max_evaluations - evaluations;
      }
      if (i > 0) stage_request.start = std::move(stage.partition);
      stage = stages_[i]->run(stage_request);
      evaluations += stage.evaluations;
      iterations += stage.iterations;
      if (trace.empty()) trace = std::move(stage.trace);
      if (i == 0 || stage.fitness < best.fitness) {
        best.partition = stage.partition;
        best.fitness = stage.fitness;
        best.costs = stage.costs;
      }
    }
    best.method = spec_;
    best.evaluations = evaluations;
    best.iterations = iterations;
    best.trace = std::move(trace);
    return best;
  }

 private:
  std::string spec_;
  std::vector<std::unique_ptr<Optimizer>> stages_;
};

}  // namespace

OptimizerRegistry& OptimizerRegistry::global() {
  static OptimizerRegistry registry = [] {
    OptimizerRegistry r;
    register_builtin_optimizers(r);
    return r;
  }();
  return registry;
}

void OptimizerRegistry::add(std::string name, Factory factory) {
  require(!name.empty(), "optimizer registry: empty name");
  require(name.find('+') == std::string::npos,
          "optimizer registry: '+' is reserved for composition");
  require(static_cast<bool>(factory), "optimizer registry: null factory");
  const auto [it, inserted] =
      factories_.emplace(std::move(name), std::move(factory));
  if (!inserted)
    throw Error("optimizer registry: '" + it->first + "' already registered");
}

bool OptimizerRegistry::contains(std::string_view name) const {
  return factories_.find(name) != factories_.end();
}

std::vector<std::string> OptimizerRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) out.push_back(name);
  return out;  // std::map iterates in sorted order
}

std::unique_ptr<Optimizer> OptimizerRegistry::make_portfolio(
    std::string_view spec, const OptimizerConfig& config) const {
  const auto members_spec = spec.substr(kPortfolioPrefix.size());
  std::vector<std::unique_ptr<Optimizer>> members;
  std::string normalized{kPortfolioPrefix};
  for (const auto member : str::split(members_spec, ',')) {
    if (member.empty())
      throw LookupError("empty method in portfolio spec '" +
                        std::string(spec) + "'");
    if (str::starts_with(member, kPortfolioPrefix))
      throw Error("portfolio members cannot nest: '" + std::string(spec) +
                  "'");
    members.push_back(make(member, config));
    if (members.size() > 1) normalized += ',';
    normalized.append(members.back()->name());
  }
  if (members.empty())
    throw LookupError("portfolio spec '" + std::string(spec) +
                      "' needs a comma-separated method list, e.g. "
                      "portfolio:evolution,annealing");
  return std::make_unique<PortfolioOptimizer>(std::move(normalized),
                                              std::move(members));
}

std::unique_ptr<Optimizer> OptimizerRegistry::make(
    std::string_view spec, const OptimizerConfig& config) const {
  const auto trimmed = str::trim(spec);
  if (str::starts_with(trimmed, kPortfolioPrefix))
    return make_portfolio(trimmed, config);
  const auto parts = str::split(spec, '+');
  std::vector<std::unique_ptr<Optimizer>> stages;
  std::string normalized;
  stages.reserve(parts.size());
  for (const auto part : parts) {
    const auto it = factories_.find(part);
    if (it == factories_.end()) {
      std::ostringstream os;
      if (part.empty())
        os << "empty optimizer name in spec '" << spec << "'";
      else
        os << "unknown optimizer '" << part << "'";
      os << "; valid names:";
      for (const auto& name : names()) os << ' ' << name;
      throw LookupError(os.str());
    }
    if (!normalized.empty()) normalized += '+';
    normalized.append(part);
    stages.push_back(it->second(config));
  }
  if (stages.size() == 1) return std::move(stages.front());
  return std::make_unique<CompositeOptimizer>(std::move(normalized),
                                              std::move(stages));
}

}  // namespace iddq::core
