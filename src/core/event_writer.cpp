#include "core/event_writer.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

namespace iddq::core {

SessionEventWriter::SessionEventWriter(support::LineChannel& channel,
                                       std::size_t bound,
                                       std::function<void()> on_disconnect,
                                       std::string overflow_error_line)
    : channel_(&channel),
      bound_(bound),
      on_disconnect_(std::move(on_disconnect)),
      overflow_error_line_(std::move(overflow_error_line)),
      thread_([this] { writer_loop(); }) {}

SessionEventWriter::~SessionEventWriter() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    stopping_ = true;
    cv_.notify_all();
    // Normally the session flushed already and this returns immediately;
    // the bounded grace covers a writer stuck sending to a stalled peer.
    flush_cv_.wait_for(lock, std::chrono::seconds(1), [this] {
      return queue_.empty() && !writing_;
    });
    queue_.clear();
    stats_.depth = 0;
  }
  cv_.notify_all();
  // Idempotent and harmless on a drained channel (the session is over);
  // unblocks a send the grace period could not wait out.
  channel_->shutdown_write();
  thread_.join();
}

bool SessionEventWriter::post(std::string line, EventDeliveryClass cls) {
  bool fire_disconnect = false;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (stopping_ || disconnected_ || peer_gone_) return false;
    if (bound_ > 0 && queue_.size() >= bound_) {
      // Full. Reclaim the oldest droppable line; survivors keep their
      // order (we only ever remove, never reorder).
      const auto droppable = std::find_if(
          queue_.begin(), queue_.end(), [](const Item& item) {
            return item.cls == EventDeliveryClass::droppable;
          });
      if (droppable != queue_.end()) {
        queue_.erase(droppable);
        ++stats_.dropped_progress;
      } else if (cls == EventDeliveryClass::droppable) {
        // Queue is wall-to-wall must_deliver lines; shed the tick itself.
        ++stats_.dropped_progress;
        return true;
      } else {
        // A must_deliver line has nowhere to go: the client is too far
        // behind to ever see a correct stream. Tear the session down,
        // keeping only a best-effort protocol error as the last line.
        disconnected_ = true;
        stats_.disconnected = true;
        queue_.clear();
        queue_.push_back(
            Item{overflow_error_line_, EventDeliveryClass::must_deliver});
        stats_.depth = queue_.size();
        fire_disconnect = true;
      }
    }
    if (!fire_disconnect) {
      queue_.push_back(Item{std::move(line), cls});
      ++stats_.enqueued;
      stats_.depth = queue_.size();
      stats_.depth_high_water =
          std::max(stats_.depth_high_water, stats_.depth);
    }
  }
  cv_.notify_one();
  if (fire_disconnect) {
    // Outside the lock: the hook cancels jobs and shuts the read side,
    // either of which may re-enter post() (which now rejects).
    if (on_disconnect_) on_disconnect_();
    return false;
  }
  return true;
}

bool SessionEventWriter::disconnected() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return disconnected_;
}

bool SessionEventWriter::peer_gone() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return peer_gone_;
}

void SessionEventWriter::flush() {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto drained = [this] {
    return peer_gone_ || (queue_.empty() && !writing_);
  };
  if (disconnected_) {
    // Only the best-effort error line remains; give it a bounded chance
    // to leave, but never wait out a peer that stopped draining.
    flush_cv_.wait_for(lock, std::chrono::seconds(2), drained);
  } else {
    flush_cv_.wait(lock, drained);
  }
}

SessionEventWriter::Stats SessionEventWriter::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void SessionEventWriter::writer_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) break;  // stopping_ with nothing left to drain
    Item item = std::move(queue_.front());
    queue_.pop_front();
    stats_.depth = queue_.size();
    writing_ = true;
    lock.unlock();
    const bool ok = channel_->write_line(item.text);
    lock.lock();
    writing_ = false;
    if (!ok) {
      peer_gone_ = true;
      queue_.clear();
      stats_.depth = 0;
    }
    flush_cv_.notify_all();
  }
  flush_cv_.notify_all();
}

}  // namespace iddq::core
