// The paper's "standard partitioning" baseline (section 5).
//
// "The process of standard partitioning starts with a gate as near to a
// primary input as possible. New gates are added until a specified size of
// the module is generated ... The new gate added is that gate whose path
// length to all the gates already clustered gives a minimum sum. If there
// are multiple choices, a gate of this set is selected such that the path
// lengths to all the gates not yet clustered give a maximum sum. A partition
// generated this way contains modules such that their gates are connected
// most closely."
//
// Module sizes are supplied by the caller — in the Table 1 experiment they
// are the sizes the evolution strategy discovered, exactly as in the paper.
// Path lengths use the same rho-saturated separation metric as c3.
#pragma once

#include <span>

#include "netlist/distance_oracle.hpp"
#include "netlist/netlist.hpp"
#include "partition/partition.hpp"

namespace iddq::core {

/// `module_sizes` must sum to the number of logic gates of `nl`.
[[nodiscard]] part::Partition standard_partition(
    const netlist::Netlist& nl, const netlist::DistanceOracle& oracle,
    std::span<const std::size_t> module_sizes);

}  // namespace iddq::core
