// String-keyed optimizer registry with composable pipelines.
//
// The registry maps method names to factories producing Optimizer instances
// configured from an OptimizerConfig. Built-ins: "evolution", "annealing",
// "random", "greedy", "standard", "tabu", "force". Specs may compose stages
// with '+' ("evolution+greedy"): each later stage starts from the partition
// the previous stage produced — the idiomatic way to express a polish pass.
// The pipeline returns the best result any stage reached, a request
// budget is shared across the stages, and a stage that ignores its start
// beyond the module count (e.g. "random") cannot make the result worse.
//
// A spec starting with "portfolio:" races a comma-separated method list on
// a shared budget and returns the best outcome ("portfolio:evolution,
// annealing"); members may themselves be '+' pipelines, but portfolios do
// not nest and cannot appear as a stage inside a '+' pipeline.
//
// The global() registry is preloaded with the built-ins; callers (plugins,
// tests) may add their own factories under new names.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/optimizer.hpp"

namespace iddq::core {

class OptimizerRegistry {
 public:
  using Factory =
      std::function<std::unique_ptr<Optimizer>(const OptimizerConfig&)>;

  /// Process-wide registry, preloaded with the built-in optimizers.
  [[nodiscard]] static OptimizerRegistry& global();

  /// Registers a factory. Throws iddq::Error when the name is empty,
  /// contains '+' (reserved for composition), or is already taken.
  void add(std::string name, Factory factory);

  [[nodiscard]] bool contains(std::string_view name) const;

  /// Registered names, sorted.
  [[nodiscard]] std::vector<std::string> names() const;

  /// Instantiates `spec`: a registered name, a '+'-composed pipeline of
  /// registered names, or a "portfolio:<m1,m2,...>" race. Throws
  /// iddq::LookupError for unknown or empty components, listing the valid
  /// names in the message, and iddq::Error for nested portfolios.
  [[nodiscard]] std::unique_ptr<Optimizer> make(
      std::string_view spec, const OptimizerConfig& config = {}) const;

 private:
  [[nodiscard]] std::unique_ptr<Optimizer> make_portfolio(
      std::string_view spec, const OptimizerConfig& config) const;

  std::map<std::string, Factory, std::less<>> factories_;
};

/// Registers the built-in adapters into `registry` (what global() runs
/// once on first use). Exposed so tests can build isolated registries.
void register_builtin_optimizers(OptimizerRegistry& registry);

}  // namespace iddq::core
