// Start-partition construction by chain clustering (paper section 4.2).
//
// "Starting from a gate close to a primary input, chains are formed towards
// a primary output. The process stops if this path reaches a primary output,
// or if there is no free gate anymore, or if the maximum module size is
// reached. Modules are formed as long as there are free gates. Using
// different chains the required number of start partitions is constructed."
//
// A module accumulates successive chains (each following free fanouts from a
// low-depth free gate) until it reaches the target size; random tie-breaks
// make distinct seeds produce distinct start partitions for the evolution
// strategy's initial population.
#pragma once

#include "netlist/netlist.hpp"
#include "partition/partition.hpp"
#include "support/rng.hpp"

namespace iddq::core {

/// Builds a start partition with exactly `module_count` modules (>= 1 and
/// <= logic gate count). Every module is non-empty.
[[nodiscard]] part::Partition make_start_partition(const netlist::Netlist& nl,
                                                   std::size_t module_count,
                                                   Rng& rng);

}  // namespace iddq::core
