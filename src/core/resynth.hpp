// IDDQ-aware resynthesis: the paper's stated next step.
//
// Conclusion of the paper: "So far only resynthesis for including BIC
// sensors has been considered. Next step is controlling the logic synthesis
// procedure such that the presented cost function is considered at the early
// beginning."
//
// This module implements that step for the dominant cost driver, the
// maximum transient current: a *wave-retiming* pass that desynchronizes
// simultaneous switching. The pessimistic estimator charges every gate at
// every possible arrival time; gates that share a time slot add their peak
// currents and force wide (large-area) bypass switches. Inserting a buffer
// on *every* fan-in edge of a gate shifts the gate's entire transition-time
// set later without changing its function — if the gate has timing slack,
// the critical path is untouched and the circuit-wide current peak drops.
//
// The pass is greedy and budgeted:
//   1. compute the whole-circuit current profile and its peak slot t*;
//   2. among gates switching at t*, pick the one with the largest
//      (ipeak / fanin-count) ratio whose slack covers the buffer delay;
//   3. rebuild the netlist with buffers on that gate's fan-in edges;
//   4. repeat until the peak improves no more, the buffer budget is
//      exhausted, or every t*-gate is timing-critical.
//
// The bench (ablation_resynth) quantifies the trade: sensor-area reduction
// bought per inserted buffer area, at zero critical-path cost.
#pragma once

#include <cstdint>
#include <vector>

#include "library/cell_library.hpp"
#include "netlist/netlist.hpp"

namespace iddq::core {

struct ResynthOptions {
  /// Maximum number of gates to retime (each costs fanin-count buffers).
  std::size_t max_retimed_gates = 64;
  /// Stop when the circuit peak current has dropped by this factor.
  double target_peak_reduction = 0.5;
  /// Transition-time grid resolution, ps (must match the evaluation grid
  /// for the savings to transfer; EvalContext default is 45 ps).
  double grid_bin_ps = 45.0;
  /// Safety margin on the critical path: retiming must keep the circuit
  /// delay within (1 + slack_margin) * original. 0 = never touch the path.
  double delay_margin = 0.0;
};

struct ResynthResult {
  netlist::Netlist netlist;          // the restructured circuit
  std::size_t retimed_gates = 0;     // gates shifted
  std::size_t buffers_added = 0;     // total buffer cells inserted
  double peak_before_ua = 0.0;       // circuit-profile peak, original
  double peak_after_ua = 0.0;        // circuit-profile peak, restructured
  double delay_before_ps = 0.0;      // nominal critical path, original
  double delay_after_ps = 0.0;       // nominal critical path, restructured

  [[nodiscard]] double peak_reduction() const {
    return peak_before_ua > 0.0 ? 1.0 - peak_after_ua / peak_before_ua : 0.0;
  }
};

/// Restructures `nl` to reduce the pessimistic peak current. The returned
/// netlist is functionally equivalent (buffers only). Gate names are
/// preserved; inserted buffers are named "<gate>_rt<k>".
[[nodiscard]] ResynthResult retime_for_iddq(const netlist::Netlist& nl,
                                            const lib::CellLibrary& library,
                                            const ResynthOptions& options = {});

/// Partition-aware variant: minimizes the *sum of per-module peaks*
/// Sum_m max_t I_m(t) — the quantity the sensor-area cost actually charges
/// (A_i = A0 + A1 * iDD_max,i / r) — for a given partition, accounting for
/// the switching current of the inserted buffers themselves (each buffer
/// joins its sink gate's module, sharing that virtual rail).
struct PartitionedResynthResult {
  netlist::Netlist netlist;  // the restructured circuit
  /// The input partition extended with the inserted buffers (gate ids refer
  /// to the *returned* netlist), ready for Partition::from_groups.
  std::vector<std::vector<netlist::GateId>> groups;
  std::size_t retimed_gates = 0;
  std::size_t buffers_added = 0;
  double sum_peak_before_ua = 0.0;  // Sum_m iDD_max,m, original
  double sum_peak_after_ua = 0.0;   // ditto, restructured (incl. buffers)
  double delay_before_ps = 0.0;
  double delay_after_ps = 0.0;

  [[nodiscard]] double sum_peak_reduction() const {
    return sum_peak_before_ua > 0.0
               ? 1.0 - sum_peak_after_ua / sum_peak_before_ua
               : 0.0;
  }
};

[[nodiscard]] PartitionedResynthResult retime_for_iddq_partitioned(
    const netlist::Netlist& nl, const lib::CellLibrary& library,
    const std::vector<std::vector<netlist::GateId>>& module_groups,
    const ResynthOptions& options = {});

}  // namespace iddq::core
