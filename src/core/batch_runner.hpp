// BatchRunner: fan a method set out over many circuits on a thread pool.
//
// Each (circuit, method-list) pair is one task. Tasks are independent —
// every worker loads its circuit, builds its own FlowEngine (EvalContext,
// size plan), and runs the methods sequentially — so the only shared state
// is the read-only config/library/registry. Per-task seeds are derived from
// the base seed and the task *index* alone (Rng::mix_seed), never from
// scheduling order, so results are byte-identical for any job count
// (tests/core/test_batch_runner.cpp pins jobs=1 == jobs=4).
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "core/flow_engine.hpp"

namespace iddq::core {

/// One circuit's batch outcome, in task order.
struct BatchItem {
  std::string circuit;
  SizePlan plan;
  std::vector<MethodResult> methods;  // one per requested spec, in order
  std::string error;                  // non-empty when the task failed

  [[nodiscard]] bool ok() const noexcept { return error.empty(); }
};

class BatchRunner {
 public:
  /// Resolves a circuit spec to a netlist. Defaults to
  /// netlist::load_circuit (builtin generators + .bench files).
  using CircuitLoader = std::function<netlist::Netlist(const std::string&)>;

  /// `library` and `registry` must outlive the runner.
  explicit BatchRunner(
      const lib::CellLibrary& library, FlowEngineConfig config = {},
      const OptimizerRegistry& registry = OptimizerRegistry::global());

  /// Replaces the circuit loader (tests inject synthetic circuits).
  void set_circuit_loader(CircuitLoader loader);

  /// Runs every method over every circuit on min(jobs, #circuits) worker
  /// threads (jobs == 0 or 1 runs inline). A task failure (unknown
  /// circuit, infeasible flow, ...) is captured in BatchItem::error; the
  /// remaining tasks still run.
  [[nodiscard]] std::vector<BatchItem> run(
      std::span<const std::string> circuits,
      std::span<const std::string> methods, std::uint64_t base_seed,
      std::size_t jobs = 1) const;

 private:
  const lib::CellLibrary* library_;
  FlowEngineConfig config_;
  const OptimizerRegistry* registry_;
  CircuitLoader loader_;
};

}  // namespace iddq::core
