// BatchRunner: fan a method set out over many circuits.
//
// Since the JobService redesign this is a thin synchronous shim: run()
// submits one JobSpec per circuit to a private JobService whose worker
// count is min(jobs, #circuits), waits for every handle, and maps the
// JobResults back into BatchItems in task order. The historical contract
// is preserved bit-for-bit:
//
//  * per-task seeds derive from the base seed and the task *index* alone
//    (Rng::mix_seed), never from scheduling order, so results are
//    byte-identical for any job count;
//  * a task failure (unknown circuit, infeasible flow, ...) is captured in
//    BatchItem::error with the plan already set when the flow got that
//    far, and an empty method list;
//  * the only shared state is the read-only config/library/registry (and
//    the thread-safe ResultCache when one is attached).
//
// tests/core/test_job_service.cpp pins the shim against a direct
// per-circuit FlowEngine::run_methods loop at fixed seeds. Callers that
// want streaming, cancellation, or a long-lived pool should use
// core::JobService directly.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/job_service.hpp"

namespace iddq::core {

/// One circuit's batch outcome, in task order.
struct BatchItem {
  std::string circuit;
  SizePlan plan;
  std::vector<MethodResult> methods;  // one per requested spec, in order
  std::string error;                  // non-empty when the task failed

  [[nodiscard]] bool ok() const noexcept { return error.empty(); }
};

class BatchRunner {
 public:
  using CircuitLoader = JobService::CircuitLoader;

  /// `library` and `registry` must outlive the runner.
  explicit BatchRunner(
      const lib::CellLibrary& library, FlowEngineConfig config = {},
      const OptimizerRegistry& registry = OptimizerRegistry::global());

  /// Replaces the circuit loader (tests inject synthetic circuits).
  void set_circuit_loader(CircuitLoader loader);

  /// Runs every method over every circuit on min(jobs, #circuits) workers
  /// (jobs == 0 behaves like 1); blocks until all tasks are terminal.
  [[nodiscard]] std::vector<BatchItem> run(
      std::span<const std::string> circuits,
      std::span<const std::string> methods, std::uint64_t base_seed,
      std::size_t jobs = 1) const;

 private:
  const lib::CellLibrary* library_;
  FlowEngineConfig config_;
  const OptimizerRegistry* registry_;
  CircuitLoader loader_;
};

}  // namespace iddq::core
