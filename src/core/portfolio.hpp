// Portfolio optimizer: race a method list on a shared budget.
//
// A "portfolio:" spec (e.g. "portfolio:evolution,annealing") instantiates
// every member method and runs them on the same request; the best outcome
// (lexicographic Fitness) wins and is returned under the full portfolio
// spec name, with evaluations/iterations accumulated over all members.
// When the request carries an evaluation budget it is split evenly across
// the members (remainder to the leading ones), so the portfolio as a whole
// respects the same budget a single method would get — the "race on a
// shared budget" from the ROADMAP. Members run with seeds derived from the
// request seed and the member index (Rng::mix_seed) — concurrently when
// the request carries an ExecutorPool, sequentially otherwise; the winner
// is reduced in member order either way, so a portfolio is exactly as
// deterministic as its members at any thread count.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/optimizer.hpp"

namespace iddq::core {

/// Spec prefix that OptimizerRegistry::make treats as a portfolio.
inline constexpr std::string_view kPortfolioPrefix = "portfolio:";

class PortfolioOptimizer final : public Optimizer {
 public:
  /// `spec` is the normalized full spec ("portfolio:a,b"); `members` must
  /// be non-empty (the registry validates this).
  PortfolioOptimizer(std::string spec,
                     std::vector<std::unique_ptr<Optimizer>> members);

  [[nodiscard]] std::string_view name() const noexcept override;

  [[nodiscard]] OptimizerOutcome run(
      const OptimizerRequest& request) const override;

 private:
  std::string spec_;
  std::vector<std::unique_ptr<Optimizer>> members_;
};

}  // namespace iddq::core
