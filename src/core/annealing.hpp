// Simulated-annealing baseline optimizer.
//
// Section 4 of the paper lists simulated annealing among the applicable
// heuristics before choosing the evolution strategy; this implementation
// provides the comparison point (bench/ablation_baselines) under the same
// cost model and a matched evaluation budget.
//
// Moves are boundary-biased gate relocations (the same neighbourhood as the
// ES mutation); module deletion is excluded so K stays fixed at the start
// partition's value — the annealer refines gate placement, matching how the
// baseline comparison is set up. Infeasibility is folded into the objective
// with a large penalty so the Metropolis criterion remains scalar.
#pragma once

#include <cstdint>

#include "core/evolution.hpp"
#include "core/step_callback.hpp"
#include "partition/evaluator.hpp"
#include "support/rng.hpp"

namespace iddq::core {

struct SaParams {
  std::size_t steps = 20000;
  double initial_acceptance = 0.3;  // calibrates T0 from sampled deltas
  double cooling = 0.995;           // geometric factor per temperature stage
  std::size_t stage_length = 100;   // steps per temperature stage
  double violation_penalty = 1.0e4;
  std::uint64_t seed = 1;
  /// Per-run progress fields (like seed, not hashed into cache keys):
  /// on_step fires every `progress_every` steps when set (0 disables).
  std::size_t progress_every = 1000;
  StepCallback on_step;
};

struct SaResult {
  part::Partition best_partition{1, 1};
  part::Fitness best_fitness;
  part::Costs best_costs;
  std::size_t accepted = 0;
  std::size_t evaluations = 0;
};

[[nodiscard]] SaResult simulated_annealing(const part::EvalContext& ctx,
                                           const part::Partition& start,
                                           const SaParams& params);

}  // namespace iddq::core
