#include "core/tabu.hpp"

#include <algorithm>
#include <vector>

#include "core/neighborhood.hpp"
#include "support/error.hpp"
#include "support/executor.hpp"
#include "support/rng.hpp"

namespace iddq::core {

TabuResult tabu_search(const part::EvalContext& ctx,
                       const part::Partition& start,
                       const TabuParams& params) {
  require(params.iterations >= 1, "tabu: need at least one iteration");
  require(params.candidates >= 1, "tabu: need at least one candidate");
  Rng rng(params.seed);
  part::PartitionEvaluator eval(ctx, start);

  TabuResult result;
  double current = penalized_objective(eval, params.violation_penalty);
  ++result.evaluations;
  double best_obj = current;
  result.best_partition = eval.partition();
  result.best_fitness = eval.fitness();
  result.best_costs = eval.costs();

  // tabu_until[g]: first round in which gate g may move again.
  std::vector<std::size_t> tabu_until(ctx.nl.gate_count(), 0);

  struct Candidate {
    GateMove move;
    double objective = 0.0;
  };

  std::size_t stall = 0;
  for (std::size_t round = 1; round <= params.iterations; ++round) {
    if (params.on_round && params.progress_every > 0 && round > 1 &&
        (round - 1) % params.progress_every == 0)
      params.on_round(round - 1, result.evaluations, result.best_fitness);
    // Coordinator phase: sample the candidate neighbourhood (moves
    // deduplicated: one (gate, target) pair appears at most once per
    // round). All RNG draws happen here, in the fixed serial order.
    std::vector<Candidate> candidates;
    candidates.reserve(params.candidates);
    for (std::size_t c = 0; c < params.candidates; ++c) {
      const GateMove mv = sample_boundary_move(eval, rng);
      if (!mv.valid()) continue;
      const bool seen =
          std::any_of(candidates.begin(), candidates.end(),
                      [&](const Candidate& cd) {
                        return cd.move.gate == mv.gate &&
                               cd.move.target == mv.target;
                      });
      if (seen) continue;
      candidates.push_back({mv, 0.0});
    }
    // Worker phase: score every candidate against the round-start state
    // with the copy-free probe (bit-identical to the historical
    // copy + move_gate + penalized_objective recipe, so the whole tabu
    // trajectory reproduces unchanged — the v3 cache-salt bump retired
    // old keys for the greedy re-pin, not for anything here). Serially the shared
    // evaluator is probed directly: zero copies per round. With a pool,
    // the candidate list is sliced into one contiguous block per
    // concurrency slot and each slot probes its block on a single private
    // copy — O(threads) copies per round instead of O(candidates), and
    // each slot writes only its own objectives, so the values are
    // byte-identical at any thread count.
    eval.refresh();  // probes fan out from a clean round-start state
    const std::size_t slots =
        params.pool == nullptr || params.pool->worker_count() == 0
            ? 1
            : std::min(candidates.size(), params.pool->concurrency());
    if (slots <= 1) {
      for (Candidate& cd : candidates)
        cd.objective =
            probe_objective(eval, cd.move, params.violation_penalty);
    } else {
      const std::size_t per = (candidates.size() + slots - 1) / slots;
      support::parallel_for_indexed(params.pool, slots, [&](std::size_t s) {
        part::PartitionEvaluator probe = eval;
        const std::size_t end = std::min((s + 1) * per, candidates.size());
        for (std::size_t c = s * per; c < end; ++c)
          candidates[c].objective =
              probe_objective(probe, candidates[c].move,
                              params.violation_penalty);
      });
    }
    result.evaluations += candidates.size();
    if (candidates.empty()) {
      ++result.iterations;
      if (++stall > params.stall_iterations) break;
      continue;
    }

    // Admissible: not tabu, or aspiration (beats the global best). Pick
    // the lowest objective; ties resolve to the earliest sampled candidate
    // so the choice is deterministic.
    const Candidate* chosen = nullptr;
    for (const Candidate& cd : candidates) {
      const bool tabu = tabu_until[cd.move.gate] >= round;
      if (tabu && cd.objective >= best_obj) continue;
      if (chosen == nullptr || cd.objective < chosen->objective) chosen = &cd;
    }
    ++result.iterations;
    if (chosen == nullptr) {
      if (++stall > params.stall_iterations) break;
      continue;
    }

    eval.move_gate(chosen->move.gate, chosen->move.target);
    // Blocked for exactly `tenure` subsequent rounds (the admissibility
    // check treats tabu_until as inclusive).
    tabu_until[chosen->move.gate] = round + params.tenure;
    current = chosen->objective;
    if (current < best_obj) {
      best_obj = current;
      result.best_partition = eval.partition();
      result.best_fitness = eval.fitness();
      result.best_costs = eval.costs();
      stall = 0;
    } else if (++stall > params.stall_iterations) {
      break;
    }
  }
  return result;
}

}  // namespace iddq::core
