#include "core/tabu.hpp"

#include <algorithm>
#include <vector>

#include "core/neighborhood.hpp"
#include "support/error.hpp"
#include "support/executor.hpp"
#include "support/rng.hpp"

namespace iddq::core {

TabuResult tabu_search(const part::EvalContext& ctx,
                       const part::Partition& start,
                       const TabuParams& params) {
  require(params.iterations >= 1, "tabu: need at least one iteration");
  require(params.candidates >= 1, "tabu: need at least one candidate");
  Rng rng(params.seed);
  part::PartitionEvaluator eval(ctx, start);

  TabuResult result;
  double current = penalized_objective(eval, params.violation_penalty);
  ++result.evaluations;
  double best_obj = current;
  result.best_partition = eval.partition();
  result.best_fitness = eval.fitness();
  result.best_costs = eval.costs();

  // tabu_until[g]: first round in which gate g may move again.
  std::vector<std::size_t> tabu_until(ctx.nl.gate_count(), 0);

  struct Candidate {
    GateMove move;
    double objective = 0.0;
  };

  std::size_t stall = 0;
  for (std::size_t round = 1; round <= params.iterations; ++round) {
    if (params.on_round && params.progress_every > 0 && round > 1 &&
        (round - 1) % params.progress_every == 0)
      params.on_round(round - 1, result.evaluations, result.best_fitness);
    // Coordinator phase: sample the candidate neighbourhood (moves
    // deduplicated: one (gate, target) pair appears at most once per
    // round). All RNG draws happen here, in the fixed serial order.
    std::vector<Candidate> candidates;
    candidates.reserve(params.candidates);
    for (std::size_t c = 0; c < params.candidates; ++c) {
      const GateMove mv = sample_boundary_move(eval, rng);
      if (!mv.valid()) continue;
      const bool seen =
          std::any_of(candidates.begin(), candidates.end(),
                      [&](const Candidate& cd) {
                        return cd.move.gate == mv.gate &&
                               cd.move.target == mv.target;
                      });
      if (seen) continue;
      candidates.push_back({mv, 0.0});
    }
    // Worker phase: score every candidate against a private copy of the
    // round-start state. Scoring from a pristine copy (rather than a
    // move + revert on the shared evaluator) is what makes each slot
    // independent of every other — the objectives are identical at any
    // thread count, and free of the floating-point residue a revert chain
    // would accumulate across candidates. The O(gates) copy does not
    // change the round's asymptotics: the objective itself is O(gates)
    // per candidate anyway (the delay terms are global and recomputed
    // after any move).
    support::parallel_for_indexed(
        params.pool, candidates.size(), [&](std::size_t c) {
          part::PartitionEvaluator probe = eval;
          probe.move_gate(candidates[c].move.gate, candidates[c].move.target);
          candidates[c].objective =
              penalized_objective(probe, params.violation_penalty);
        });
    result.evaluations += candidates.size();
    if (candidates.empty()) {
      ++result.iterations;
      if (++stall > params.stall_iterations) break;
      continue;
    }

    // Admissible: not tabu, or aspiration (beats the global best). Pick
    // the lowest objective; ties resolve to the earliest sampled candidate
    // so the choice is deterministic.
    const Candidate* chosen = nullptr;
    for (const Candidate& cd : candidates) {
      const bool tabu = tabu_until[cd.move.gate] >= round;
      if (tabu && cd.objective >= best_obj) continue;
      if (chosen == nullptr || cd.objective < chosen->objective) chosen = &cd;
    }
    ++result.iterations;
    if (chosen == nullptr) {
      if (++stall > params.stall_iterations) break;
      continue;
    }

    eval.move_gate(chosen->move.gate, chosen->move.target);
    // Blocked for exactly `tenure` subsequent rounds (the admissibility
    // check treats tabu_until as inclusive).
    tabu_until[chosen->move.gate] = round + params.tenure;
    current = chosen->objective;
    if (current < best_obj) {
      best_obj = current;
      result.best_partition = eval.partition();
      result.best_fitness = eval.fitness();
      result.best_costs = eval.costs();
      stall = 0;
    } else if (++stall > params.stall_iterations) {
      break;
    }
  }
  return result;
}

}  // namespace iddq::core
