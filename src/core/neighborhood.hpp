// Shared move neighbourhood of the local-search optimizers.
//
// Simulated annealing (core/annealing.hpp) and tabu search (core/tabu.hpp)
// explore the same neighbourhood as the ES mutation: relocate a boundary
// gate of one module into a neighbouring module it is wired to. Module
// deletion is excluded — a move never empties a module, so K stays fixed at
// the start partition's value and both refiners stay comparable to the ES
// at matched budgets.
#pragma once

#include "partition/evaluator.hpp"
#include "support/rng.hpp"

namespace iddq::core {

/// A reversible candidate move: gate `gate` from its current module to
/// `target`. `gate == netlist::kNoGate` means "no move found".
struct GateMove {
  netlist::GateId gate = netlist::kNoGate;
  std::uint32_t target = 0;

  [[nodiscard]] bool valid() const noexcept {
    return gate != netlist::kNoGate;
  }
};

/// Combined violation-penalized scalar objective used by the local-search
/// optimizers (the Metropolis criterion and the tabu candidate ranking both
/// need a single number).
[[nodiscard]] double penalized_objective(part::PartitionEvaluator& eval,
                                         double violation_penalty);

/// Samples a boundary-gate move that cannot empty a module (K preserved).
/// Returns an invalid move when no candidate is found within the internal
/// attempt limit (e.g. single-module partitions).
[[nodiscard]] GateMove sample_boundary_move(
    const part::PartitionEvaluator& eval, Rng& rng);

}  // namespace iddq::core
