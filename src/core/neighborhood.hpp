// Shared move neighbourhood of the local-search optimizers.
//
// Simulated annealing (core/annealing.hpp) and tabu search (core/tabu.hpp)
// explore the same neighbourhood as the ES mutation: relocate a boundary
// gate of one module into a neighbouring module it is wired to. Module
// deletion is excluded — a move never empties a module, so K stays fixed at
// the start partition's value and both refiners stay comparable to the ES
// at matched budgets.
#pragma once

#include "partition/evaluator.hpp"
#include "support/rng.hpp"

namespace iddq::core {

/// A reversible candidate move: gate `gate` from its current module to
/// `target`. `gate == netlist::kNoGate` means "no move found".
struct GateMove {
  netlist::GateId gate = netlist::kNoGate;
  std::uint32_t target = 0;

  [[nodiscard]] bool valid() const noexcept {
    return gate != netlist::kNoGate;
  }
};

/// Combined violation-penalized scalar objective used by the local-search
/// optimizers (the Metropolis criterion and the tabu candidate ranking both
/// need a single number).
[[nodiscard]] double penalized_objective(part::PartitionEvaluator& eval,
                                         double violation_penalty);

/// The same objective for a *hypothetical* move, via the evaluator's
/// copy-free probe_move(): bit-identical to copying `eval`, applying the
/// move, and calling penalized_objective on the copy — without the
/// O(gates + K*grid) copy or a full delay recomputation.
[[nodiscard]] double probe_objective(part::PartitionEvaluator& eval,
                                     const GateMove& move,
                                     double violation_penalty);

/// Fills `targets` with the modules (other than `src`) that gate `g` is
/// wired to, in fanin-then-fanout first-seen order — the shared "where can
/// this gate move" rule of every local-search neighbourhood (the sampler
/// below and the greedy refiner's scan).
void neighbor_modules(const part::PartitionEvaluator& eval, netlist::GateId g,
                      std::uint32_t src, std::vector<std::uint32_t>& targets);

/// Samples a boundary-gate move that cannot empty a module (K preserved).
/// Returns an invalid move when no candidate is found within the internal
/// attempt limit (e.g. single-module partitions).
[[nodiscard]] GateMove sample_boundary_move(
    const part::PartitionEvaluator& eval, Rng& rng);

}  // namespace iddq::core
