// Force-directed placement seeding (the fourth section-4 heuristic).
//
// Section 4 of the paper lists "force directed placement" among the
// heuristics applicable to PART-IDDQ. This implementation uses the classic
// one-dimensional relaxation: every gate gets a position on [0, 1], primary
// inputs are pinned at 0 and primary-output gates at 1, and each relaxation
// pass moves every free gate to the barycentre of its wired neighbours
// (Gauss-Seidel, in ascending GateId order). After `passes` sweeps, gates
// that are tightly connected have converged to nearby positions; sorting by
// position and slicing into K equal contiguous ranges yields modules of
// strongly connected gates — a structure-aware start partition.
//
// The construction is fully deterministic and seed-independent (ties sort
// by GateId); it is a *seeding* heuristic, typically composed as
// "force+greedy" or used to warm-start the other optimizers.
#pragma once

#include <cstddef>

#include "netlist/netlist.hpp"
#include "partition/partition.hpp"

namespace iddq::core {

/// Builds the force-directed partition with exactly `module_count` modules
/// (>= 1 and <= logic gate count; throws iddq::Error otherwise). `passes`
/// is the number of relaxation sweeps.
[[nodiscard]] part::Partition force_directed_partition(
    const netlist::Netlist& nl, std::size_t module_count,
    std::size_t passes = 60);

}  // namespace iddq::core
