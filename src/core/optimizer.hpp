// Unified optimizer strategy API.
//
// Section 4 of the paper names several applicable heuristics (force-driven,
// simulated annealing, Monte Carlo, genetic) before adopting the evolution
// strategy; the repo implements four of them plus the section-5 standard
// partitioning, each historically behind its own ad-hoc entry point
// (EsResult / SaResult / RandomSearchResult / RefineResult). This header
// unifies them: every search method consumes one OptimizerRequest and
// produces one OptimizerOutcome, so flows, benches, and sweeps can treat
// "which heuristic" as data (see OptimizerRegistry) instead of code.
//
// Adapters wrap the existing implementations without changing them: at the
// same seed and budget an adapter reproduces the exact result of the direct
// entry point it wraps (tests/core/test_optimizer_equivalence.cpp).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/annealing.hpp"
#include "core/evolution.hpp"
#include "core/tabu.hpp"
#include "partition/evaluator.hpp"

namespace iddq::support {
class ExecutorPool;
}

namespace iddq::core {

/// Snapshot handed to OptimizerRequest::on_progress. The evolution,
/// annealing, and tabu adapters report live (per generation / every
/// progress_every steps) plus once on completion; the single-shot methods
/// (standard, force, random, greedy) report on completion only. Callbacks
/// may be invoked from worker threads and must never mutate search state —
/// they can also throw (e.g. CancelledError) to abort the run, which is
/// how JobService implements mid-run cancellation.
struct OptimizerProgress {
  std::string_view method;
  std::size_t iteration = 0;  // method-specific major step (see Outcome)
  std::size_t evaluations = 0;
  part::Fitness best;
};

using ProgressCallback = std::function<void(const OptimizerProgress&)>;

/// Everything an optimizer needs for one run. The EvalContext must outlive
/// the run; the request itself is read-only to the optimizer.
struct OptimizerRequest {
  const part::EvalContext* ctx = nullptr;  // required

  /// Explicit start partition. When empty, the adapter builds chain-
  /// clustered starts (section 4.2) with `module_count` modules.
  std::optional<part::Partition> start;

  /// Start-partition module count when `start` is empty; 0 means "plan it"
  /// via plan_module_size (section 4.2, first step).
  std::size_t module_count = 0;

  /// Evaluation budget. 0 keeps each optimizer's configured default; the
  /// evolution strategy is generation-bounded and ignores this field.
  std::size_t max_evaluations = 0;

  std::uint64_t seed = 1;
  bool record_trace = false;
  ProgressCallback on_progress;  // may be empty

  /// Intra-run parallelism: candidate evaluations (ES descendants, tabu
  /// candidate sets) and portfolio members run on this pool when set.
  /// Results are byte-identical with and without a pool at any thread
  /// count — see docs/architecture.md, "Threading model". nullptr =
  /// single-threaded. Like seed, a per-run input, never part of cache
  /// keys.
  support::ExecutorPool* pool = nullptr;
};

/// Uniform result. `iterations` counts the method's own major steps:
/// ES generations, annealing steps, random-search samples, greedy moves
/// applied; 1 for the deterministic standard clustering.
struct OptimizerOutcome {
  std::string method;
  part::Partition partition{1, 1};
  part::Fitness fitness;
  part::Costs costs;
  std::size_t iterations = 0;
  std::size_t evaluations = 0;
  std::vector<GenerationStats> trace;  // non-empty only when recorded
};

/// Per-method tuning knobs shared by registry factories. The FlowEngine and
/// BatchRunner carry one of these; the defaults match each wrapped
/// implementation's historical defaults.
struct OptimizerConfig {
  EsParams es;  // seed/record_trace fields are overridden per request
  SaParams sa;
  TabuParams tabu;  // seed field is overridden per request
  std::size_t force_passes = 60;  // force-directed relaxation sweeps
  std::size_t random_samples = 2000;
  std::size_t greedy_max_evaluations = 100000;
};

/// The strategy interface. Implementations are stateless between runs:
/// `run` may be called repeatedly and from multiple threads as long as each
/// call uses a distinct EvalContext or the context is treated read-only
/// (EvalContext is immutable after construction).
class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Registry key ("evolution", "annealing", ...) or the full composed
  /// spec ("evolution+greedy") for pipelines.
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  [[nodiscard]] virtual OptimizerOutcome run(
      const OptimizerRequest& request) const = 0;
};

}  // namespace iddq::core
