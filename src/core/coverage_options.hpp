// Measured-coverage opt-in for the flow (docs/coverage.md).
//
// Lives in its own header because both FlowEngineConfig (which carries it)
// and the result cache (which folds it into the context fingerprint) need
// it without depending on each other.
#pragma once

#include <cstdint>
#include <string>

namespace iddq::core {

/// When enabled, FlowEngine scores every MethodResult's partition with
/// sim::CoverageEngine and fills the MethodResult coverage fields. The
/// fault/pattern sampling seed is independent of the per-method seeds, so
/// every row of a sweep is graded against the SAME fault list and pattern
/// suite — coverage numbers are comparable across methods.
struct CoverageOptions {
  bool enabled = false;
  /// sim::FaultModelSpec grammar: "mixed" | "bridges" | "shorts" |
  /// "bridges=N[,shorts=M]".
  std::string fault_model = "mixed";
  std::size_t patterns = 256;  // random test patterns to sample
  bool minimize = false;       // greedy set-cover pattern minimization
  std::uint64_t seed = 1;      // fault + pattern sampling seed
};

}  // namespace iddq::core
