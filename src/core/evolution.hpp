// Evolution strategy for PART-IDDQ (paper section 4).
//
// Rechenberg/Schwefel-style evolution strategy adapted to partitions:
//
//  * Recombination is plain duplication ("just one parent is sufficient for
//    a child", section 4.1).
//  * Mutation: pick a module M_start, determine its boundary gates (gates
//    directly connected to a gate outside M_start), draw
//    m_move ~ U{1..min(m, |boundary|)} and move that many random boundary
//    gates into the (randomly chosen, when several) neighbouring target
//    module they are connected with.
//  * Monte-Carlo descendants: a random number of gates of a random module
//    moves into a random module; emptied modules are deleted. These larger
//    steps reduce the probability of getting caught in a local minimum.
//  * The step width m of each descendant is re-drawn from a normal
//    distribution with std-dev epsilon around the parent's m
//    (self-adaptation).
//  * Selection: out of parents and the (lambda + chi) * mu descendants, the
//    best mu individuals survive; parents older than kappa generations are
//    always retired.
//  * Costs are recomputed incrementally for the modified modules only
//    (PartitionEvaluator); the constraint Gamma is enforced by lexicographic
//    (violation, cost) fitness so infeasible partitions never dominate.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "partition/evaluator.hpp"
#include "support/rng.hpp"

namespace iddq::support {
class ExecutorPool;
}

namespace iddq::core {

struct GenerationStats;

/// Per-generation observer (live --progress, JobEvent::progress). Called
/// after selection, every generation; must not mutate anything the search
/// reads — it cannot affect the trajectory, only report it.
using GenerationCallback = std::function<void(const GenerationStats&)>;

struct EsParams {
  std::size_t mu = 8;        // parents
  std::size_t lambda = 7;    // mutation children per parent
  std::size_t chi = 2;       // Monte-Carlo descendants per parent
  std::size_t kappa = 8;     // maximum lifetime, generations
  std::uint32_t m0 = 4;      // initial step width (max gates per mutation)
  std::uint32_t m_max = 64;  // hard cap on the step width
  double epsilon = 1.0;      // std-dev of the step-width mutation
  std::size_t max_generations = 300;
  std::size_t stall_generations = 40;  // stop after this many without gain
  std::uint64_t seed = 1;
  bool record_trace = false;
  /// Like seed/record_trace, a per-run field, not a tuning knob: excluded
  /// from the result-cache context fingerprint.
  GenerationCallback on_generation;
  /// Evaluates the descendants of each generation in parallel when set
  /// (nullptr = serial). Every random draw and every mutation happens on
  /// the coordinator thread in the fixed single-threaded order — workers
  /// only compute fitness of finished children into pre-indexed slots —
  /// so results are byte-identical at any thread count, including to the
  /// historical serial trajectory. Per-run field like seed, excluded from
  /// the cache fingerprint.
  support::ExecutorPool* pool = nullptr;
};

struct GenerationStats {
  std::size_t generation = 0;
  part::Fitness best;
  double mean_cost = 0.0;      // over surviving parents
  std::size_t module_count = 0;  // of the best individual
  std::uint32_t best_step_width = 0;
  std::size_t evaluations = 0;  // cumulative, whole run
};

struct EsResult {
  part::Partition best_partition{1, 1};
  part::Fitness best_fitness;
  part::Costs best_costs;
  std::size_t generations = 0;
  std::size_t evaluations = 0;
  std::vector<GenerationStats> trace;
};

class EvolutionEngine {
 public:
  EvolutionEngine(const part::EvalContext& ctx, EsParams params);

  /// Runs from explicit start partitions (their number may differ from mu;
  /// they are cycled/varied to fill the initial population).
  [[nodiscard]] EsResult run(std::span<const part::Partition> starts);

  /// Convenience: builds mu chain-clustered start partitions with
  /// `module_count` modules (section 4.2) and runs.
  [[nodiscard]] EsResult run_with_module_count(std::size_t module_count);

  /// Boundary gates of module `m`: gates directly connected (fan-in or
  /// fan-out) to a logic gate outside m. Exposed for tests and the c17
  /// trace bench.
  [[nodiscard]] static std::vector<netlist::GateId> boundary_gates(
      const part::PartitionEvaluator& eval, std::uint32_t m);

 private:
  struct Individual {
    part::PartitionEvaluator eval;
    part::Fitness fitness;
    std::uint32_t step_width = 1;
    std::size_t age = 0;
  };

  void mutate(Individual& child);
  void monte_carlo(Individual& child);
  [[nodiscard]] std::uint32_t vary_step_width(std::uint32_t m);

  const part::EvalContext* ctx_;
  EsParams params_;
  Rng rng_;
};

}  // namespace iddq::core
