// Closeable MPMC FIFO between JobService::submit and the worker pool.
//
// Deliberately minimal: a mutex + condition variable around a deque. The
// service's throughput is bounded by optimizer runs (milliseconds to
// minutes each), so lock-free cleverness would buy nothing; what matters
// is the close() contract, which is what makes shutdown race-free:
// after close(), push() refuses new work and pop() drains the remaining
// items before returning nullopt to every blocked worker.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace iddq::core {

template <typename T>
class JobQueue {
 public:
  /// Enqueues `item`; returns false (dropping it) when the queue is closed.
  bool push(T item) {
    {
      const std::scoped_lock lock(mutex_);
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  /// Blocks for the next item in FIFO order. Returns std::nullopt only
  /// when the queue is closed AND drained.
  [[nodiscard]] std::optional<T> pop() {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Stops intake and wakes every blocked pop(). Idempotent.
  void close() {
    {
      const std::scoped_lock lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  [[nodiscard]] std::size_t size() const {
    const std::scoped_lock lock(mutex_);
    return items_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace iddq::core
