// Closeable MPMC priority queue between JobService::submit and the worker
// pool.
//
// Deliberately minimal: a mutex + condition variable around a vector of
// entries. The service's throughput is bounded by optimizer runs
// (milliseconds to minutes each), so the O(n) selection scan per pop buys
// simplicity for free; what matters is
//
//  * the close() contract, which makes shutdown race-free: after close(),
//    push() refuses new work and pop() drains the remaining items before
//    returning nullopt to every blocked worker;
//  * the ordering contract: pop() returns the item with the highest
//    *effective* priority — the pushed priority plus one point per
//    `aging_interval` pops that completed while the item waited — with
//    FIFO order (submission sequence) breaking ties. Equal-priority
//    traffic is therefore served strictly FIFO, an interactive submit at
//    a higher priority overtakes a queued bulk sweep, and aging bounds
//    how long the bulk sweep can be starved: a priority-0 item outranks
//    priority-p newcomers after p * aging_interval pops.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

namespace iddq::core {

template <typename T>
class JobQueue {
 public:
  /// `aging_interval`: completed pops a waiting item needs to gain one
  /// effective-priority point (0 disables aging — strict priority).
  explicit JobQueue(std::uint64_t aging_interval = 16)
      : aging_interval_(aging_interval) {}

  /// Enqueues `item`; returns false (dropping it) when the queue is
  /// closed. Higher `priority` pops sooner; equal priorities are FIFO.
  bool push(T item, int priority = 0) {
    {
      const std::scoped_lock lock(mutex_);
      if (closed_) return false;
      items_.push_back(Entry{std::move(item), priority, next_seq_++, pops_});
    }
    cv_.notify_one();
    return true;
  }

  /// Blocks for the best remaining item (see the ordering contract
  /// above). Returns std::nullopt only when the queue is closed AND
  /// drained.
  [[nodiscard]] std::optional<T> pop() {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    std::size_t best = 0;
    for (std::size_t i = 1; i < items_.size(); ++i)
      if (ranks_before(items_[i], items_[best])) best = i;
    T item = std::move(items_[best].item);
    items_.erase(items_.begin() +
                 static_cast<typename std::vector<Entry>::difference_type>(
                     best));
    ++pops_;
    return item;
  }

  /// Stops intake and wakes every blocked pop(). Idempotent.
  void close() {
    {
      const std::scoped_lock lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  [[nodiscard]] std::size_t size() const {
    const std::scoped_lock lock(mutex_);
    return items_.size();
  }

 private:
  struct Entry {
    T item;
    int priority = 0;
    std::uint64_t seq = 0;           // submission order, tie-breaker
    std::uint64_t enqueue_pops = 0;  // pops_ at push time, for aging
  };

  [[nodiscard]] std::int64_t effective_priority(const Entry& e) const {
    const std::uint64_t waited = pops_ - e.enqueue_pops;
    const std::int64_t boost =
        aging_interval_ > 0
            ? static_cast<std::int64_t>(waited / aging_interval_)
            : 0;
    return static_cast<std::int64_t>(e.priority) + boost;
  }

  [[nodiscard]] bool ranks_before(const Entry& a, const Entry& b) const {
    const std::int64_t pa = effective_priority(a);
    const std::int64_t pb = effective_priority(b);
    if (pa != pb) return pa > pb;
    return a.seq < b.seq;  // stable: FIFO within equal priority
  }

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<Entry> items_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t pops_ = 0;
  std::uint64_t aging_interval_;
  bool closed_ = false;
};

}  // namespace iddq::core
