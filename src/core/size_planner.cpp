#include "core/size_planner.hpp"

#include <cmath>

#include "estimators/current_profile.hpp"
#include "support/error.hpp"
#include "support/units.hpp"

namespace iddq::core {

SizePlan plan_module_size(const part::EvalContext& ctx,
                          double feasibility_margin,
                          std::size_t k_search_range) {
  require(feasibility_margin > 0.0 && feasibility_margin <= 1.0,
          "size planner: margin must be in (0, 1]");
  const auto& nl = ctx.nl;
  const std::size_t n = nl.logic_gate_count();
  require(n >= 1, "size planner: circuit has no logic gates");

  SizePlan plan;
  for (const netlist::GateId g : nl.logic_gates())
    plan.total_leakage_ua += units::na_to_ua(ctx.cells[g].ileak_na);
  plan.circuit_peak_current_ua =
      est::circuit_profile(nl, ctx.transition_times, ctx.cells)
          .max_current_ua();

  const double cap = ctx.leak_cap_ua * feasibility_margin;
  plan.k_min_leakage = static_cast<std::size_t>(
      std::ceil(plan.total_leakage_ua / cap));
  if (plan.k_min_leakage < 1) plan.k_min_leakage = 1;

  // Average-number objective over K (see header): the delay terms are
  // K-independent under the same averaging, so only c1, c3, c5 discriminate.
  const double a0 = ctx.sensor.a0_area;
  const double a1_part =
      ctx.sensor.a1_area_kohm * plan.circuit_peak_current_ua /
      ctx.sensor.r_max_mv;
  const double rho = static_cast<double>(ctx.oracle.rho());
  const double pair_bound =
      static_cast<double>(n) * static_cast<double>(n) / 2.0 * rho;

  double best_cost = 0.0;
  std::size_t best_k = plan.k_min_leakage;
  for (std::size_t k = plan.k_min_leakage;
       k < plan.k_min_leakage + k_search_range; ++k) {
    const double kd = static_cast<double>(k);
    const double c1 = std::log(kd * a0 + a1_part);
    const double c3 = std::log(std::max(pair_bound / kd, 1.0));
    const double c5 = kd;
    const double cost =
        ctx.weights.a1 * c1 + ctx.weights.a3 * c3 + ctx.weights.a5 * c5;
    if (k == plan.k_min_leakage || cost < best_cost) {
      best_cost = cost;
      best_k = k;
    }
  }
  plan.module_count = best_k;
  plan.estimated_cost = best_cost;
  plan.target_module_size = (n + best_k - 1) / best_k;
  return plan;
}

}  // namespace iddq::core
