// Job lifecycle vocabulary shared by JobService, its handles, and the
// line-protocol server (core/job_protocol.hpp).
//
// A job walks queued -> running -> one terminal state (done / failed /
// cancelled). Every transition — plus mid-run progress ticks and each
// completed MethodResult row — is published to the job's event sink as a
// JobEvent, in order, from the worker thread executing the job. Sinks are
// how results stream: a server connection serializes events to its client
// as they happen instead of waiting for the whole sweep.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "core/flow_engine.hpp"

namespace iddq::core {

/// Coarse job state, also readable synchronously via JobHandle::status().
enum class JobState {
  queued,
  running,
  done,       // all rows produced
  failed,     // loader / flow / optimizer error (JobResult::error)
  cancelled,  // cooperative cancel honoured before completion
};

[[nodiscard]] constexpr bool is_terminal(JobState s) noexcept {
  return s == JobState::done || s == JobState::failed ||
         s == JobState::cancelled;
}

[[nodiscard]] constexpr const char* to_string(JobState s) noexcept {
  switch (s) {
    case JobState::queued: return "queued";
    case JobState::running: return "running";
    case JobState::done: return "done";
    case JobState::failed: return "failed";
    case JobState::cancelled: return "cancelled";
  }
  return "?";
}

/// One streamed notification. `kind` selects which payload fields are
/// meaningful; the rest stay default-initialized.
struct JobEvent {
  enum class Kind {
    queued,    // accepted by the service
    running,   // a worker picked the job up
    progress,  // live optimizer tick (method/iteration/evaluations/best)
    row,       // one method finished (row_index + row)
    done,      // terminal: every method finished
    failed,    // terminal: error carries what()
    cancelled  // terminal: cancel honoured
  };

  Kind kind = Kind::queued;
  std::uint64_t job = 0;     // JobService-assigned id
  std::string circuit;       // the job's circuit spec

  // Kind::progress payload.
  std::string method;
  std::size_t iteration = 0;
  std::size_t evaluations = 0;
  part::Fitness best;

  // Kind::row payload. Shared so sinks can retain rows without copying
  // the module lists.
  std::size_t row_index = 0;
  std::shared_ptr<const MethodResult> row;

  // Kind::failed payload. `reason` is the machine-readable failure class
  // ("timeout" for an expired deadline; empty for plain errors) and rides
  // the protocol's failed event as a `reason` field.
  std::string error;
  std::string reason;
};

/// Delivery contract of an event class under backpressure
/// (core/event_writer.hpp). Progress ticks are advisory UI: when a
/// session's outbound queue is full, the oldest ticks are dropped rather
/// than blocking a worker. Everything else — lifecycle transitions and
/// result rows — is part of the result stream and must arrive in order or
/// the session must be torn down; dropping one would silently corrupt the
/// byte-identity contract with direct FlowEngine runs.
enum class EventDeliveryClass {
  droppable,     // may be coalesced/dropped under backpressure
  must_deliver,  // delivered in order, or the session disconnects
};

[[nodiscard]] constexpr EventDeliveryClass delivery_class(
    JobEvent::Kind kind) noexcept {
  return kind == JobEvent::Kind::progress ? EventDeliveryClass::droppable
                                          : EventDeliveryClass::must_deliver;
}

/// Invoked from the worker thread running the job; events of one job are
/// ordered, events of different jobs interleave. Must not call back into
/// JobHandle::wait() (deadlock by design: the worker is the thread being
/// waited for) — JobHandle::cancel() is safe. Exceptions thrown by a sink
/// are swallowed by the service: a sink cannot veto or abort a job by
/// throwing (events come from bare worker threads and from terminal
/// transitions that must complete); use cancel() to stop a job. Sinks
/// should not block: the protocol session enqueues into a bounded
/// per-session queue (core/event_writer.hpp) and returns immediately, so
/// a slow client never stalls the emitting worker.
using JobEventSink = std::function<void(const JobEvent&)>;

}  // namespace iddq::core
