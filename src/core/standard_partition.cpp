#include "core/standard_partition.hpp"

#include <numeric>
#include <vector>

#include "netlist/levelize.hpp"
#include "support/error.hpp"

namespace iddq::core {

part::Partition standard_partition(const netlist::Netlist& nl,
                                   const netlist::DistanceOracle& oracle,
                                   std::span<const std::size_t> module_sizes) {
  const std::size_t n = nl.logic_gate_count();
  const std::size_t total =
      std::accumulate(module_sizes.begin(), module_sizes.end(),
                      std::size_t{0});
  require(total == n, "standard partition: module sizes must sum to " +
                          std::to_string(n) + " (got " +
                          std::to_string(total) + ")");
  for (const std::size_t s : module_sizes)
    require(s >= 1, "standard partition: zero-size module requested");

  const auto levels = netlist::levelize(nl);
  const double rho = static_cast<double>(oracle.rho());

  std::vector<bool> free_gate(nl.gate_count(), false);
  for (const netlist::GateId g : nl.logic_gates()) free_gate[g] = true;
  std::size_t free_count = n;

  // discount_cluster[c]: sum over clustered gates h near c of (rho - d(c,h));
  // the sum of path lengths to the cluster is |cluster|*rho - discount.
  // discount_free[c]: same against the free set, for the tie-break
  // (maximising path lengths to unclustered == minimising discount_free).
  std::vector<double> discount_cluster(nl.gate_count(), 0.0);
  std::vector<double> discount_free(nl.gate_count(), 0.0);
  for (const netlist::GateId g : nl.logic_gates())
    for (const auto& [neighbor, distance] : oracle.near(g))
      if (free_gate[neighbor])
        discount_free[g] += rho - static_cast<double>(distance);

  part::Partition partition(nl.gate_count(), module_sizes.size());

  const auto add_to_cluster = [&](netlist::GateId g, std::uint32_t m) {
    partition.assign(g, m);
    free_gate[g] = false;
    --free_count;
    for (const auto& [neighbor, distance] : oracle.near(g)) {
      const double weight = rho - static_cast<double>(distance);
      discount_cluster[neighbor] += weight;  // g joined the cluster
      discount_free[neighbor] -= weight;     // g left the free set
    }
  };

  for (std::uint32_t m = 0; m < module_sizes.size(); ++m) {
    // Seed: free gate as near to a primary input as possible.
    netlist::GateId seed = netlist::kNoGate;
    std::size_t seed_depth = static_cast<std::size_t>(-1);
    for (const netlist::GateId g : nl.logic_gates()) {
      if (!free_gate[g]) continue;
      if (levels.depth[g] < seed_depth) {
        seed_depth = levels.depth[g];
        seed = g;
      }
    }
    IDDQ_ASSERT(seed != netlist::kNoGate);
    // Reset cluster discounts for the new module.
    std::fill(discount_cluster.begin(), discount_cluster.end(), 0.0);
    add_to_cluster(seed, m);

    for (std::size_t added = 1; added < module_sizes[m]; ++added) {
      // argmin over free gates of sum-to-cluster == argmax discount_cluster;
      // tie-break: argmax sum-to-free == argmin discount_free.
      netlist::GateId best = netlist::kNoGate;
      double best_discount = -1.0;
      double best_tiebreak = 0.0;
      for (const netlist::GateId g : nl.logic_gates()) {
        if (!free_gate[g]) continue;
        const double d = discount_cluster[g];
        const double tb = discount_free[g];
        if (best == netlist::kNoGate || d > best_discount ||
            (d == best_discount && tb < best_tiebreak)) {
          best = g;
          best_discount = d;
          best_tiebreak = tb;
        }
      }
      IDDQ_ASSERT(best != netlist::kNoGate);
      add_to_cluster(best, m);
    }
  }
  IDDQ_ASSERT(free_count == 0);
  IDDQ_ASSERT(partition.covers(nl));
  return partition;
}

}  // namespace iddq::core
