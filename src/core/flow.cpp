#include "core/flow.hpp"

#include <utility>

namespace iddq::core {

FlowResult run_flow(const netlist::Netlist& nl,
                    const lib::CellLibrary& library,
                    const FlowConfig& config) {
  FlowEngineConfig engine_config;
  engine_config.sensor = config.sensor;
  engine_config.weights = config.weights;
  engine_config.rho = config.rho;
  engine_config.optimizers.es = config.es;
  FlowEngine engine(nl, library, std::move(engine_config));

  FlowResult result;
  result.plan = engine.plan();

  FlowEngine::RunOptions es_options;
  es_options.seed = config.es.seed;
  es_options.record_trace = config.es.record_trace;
  MethodResult evolution = engine.run_method("evolution", es_options);

  result.es_detail.best_partition = evolution.partition;
  result.es_detail.best_fitness = evolution.fitness;
  result.es_detail.best_costs = evolution.costs;
  result.es_detail.generations = evolution.iterations;
  result.es_detail.evaluations = evolution.evaluations;
  result.es_detail.trace = evolution.trace;

  if (config.refine_result) {
    FlowEngine::RunOptions polish;
    polish.seed = config.es.seed;
    polish.start = &evolution.partition;
    evolution = engine.run_method("greedy", polish);
    evolution.method = "evolution";  // historical row label
  }
  result.evolution = std::move(evolution);

  // The standard baseline clusters to the module sizes the ES discovered
  // (section 5: "in our case we take the numbers obtained by the evolution
  // based algorithm").
  FlowEngine::RunOptions std_options;
  std_options.seed = config.es.seed;
  std_options.start = &result.evolution.partition;
  result.standard = engine.run_method("standard", std_options);
  return result;
}

}  // namespace iddq::core
