#include "core/flow.hpp"

#include <vector>

#include "core/refiner.hpp"
#include "core/standard_partition.hpp"

namespace iddq::core {

MethodResult evaluate_method(const part::EvalContext& ctx, std::string method,
                             const part::Partition& partition) {
  part::PartitionEvaluator eval(ctx, partition);
  MethodResult r;
  r.method = std::move(method);
  r.partition = partition;
  r.costs = eval.costs();
  r.fitness = eval.fitness();
  r.sensor_area = eval.total_sensor_area();
  r.delay_overhead = r.costs.c2;
  r.test_overhead = r.costs.c4;
  r.module_count = partition.module_count();
  r.modules.reserve(r.module_count);
  for (std::uint32_t m = 0; m < r.module_count; ++m)
    r.modules.push_back(eval.module_report(m));
  return r;
}

FlowResult run_flow(const netlist::Netlist& nl,
                    const lib::CellLibrary& library,
                    const FlowConfig& config) {
  part::EvalContext ctx(nl, library, config.sensor, config.weights,
                        config.rho);
  FlowResult result;
  result.plan = plan_module_size(ctx);

  EvolutionEngine engine(ctx, config.es);
  result.es_detail = engine.run_with_module_count(result.plan.module_count);

  part::Partition es_best = result.es_detail.best_partition;
  if (config.refine_result) {
    part::PartitionEvaluator eval(ctx, es_best);
    greedy_refine(eval);
    es_best = eval.partition();
  }
  result.evolution = evaluate_method(ctx, "evolution", es_best);

  // The standard baseline clusters to the module sizes the ES discovered
  // (section 5: "in our case we take the numbers obtained by the evolution
  // based algorithm").
  std::vector<std::size_t> sizes;
  sizes.reserve(es_best.module_count());
  for (std::uint32_t m = 0; m < es_best.module_count(); ++m)
    sizes.push_back(es_best.module_size(m));
  result.standard = evaluate_method(
      ctx, "standard", standard_partition(nl, ctx.oracle, sizes));
  return result;
}

}  // namespace iddq::core
