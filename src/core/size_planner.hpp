// Module-size planning (paper section 4.2, first step).
//
// "First the appropriate module size is estimated. This can be done by
// evaluating c1 and c2 by average numbers for the required parameters and by
// abstraction from structural information."
//
// Two forces fix the module count K:
//  * the discriminability constraint bounds module leakage by
//    IDDQ_th / d, giving a hard lower bound K_min (with a margin for the
//    uneven modules the chain clustering produces);
//  * the average-number cost terms: the sensing-element area A1*peak/r is
//    K-independent, so c1 grows ~ log(K*A0 + const) and c5 = K push K down,
//    while c3 ~ log(n^2 * rho / 2K) pushes K up. We minimise the weighted
//    sum over integer K >= K_min.
#pragma once

#include <cstddef>

#include "partition/evaluator.hpp"

namespace iddq::core {

struct SizePlan {
  std::size_t module_count = 1;      // chosen K
  std::size_t target_module_size = 0;  // ceil(logic gates / K)
  std::size_t k_min_leakage = 1;     // constraint-driven lower bound
  double total_leakage_ua = 0.0;
  double circuit_peak_current_ua = 0.0;  // whole-circuit iDD profile max
  double estimated_cost = 0.0;       // average-number objective at K
};

/// `feasibility_margin` derates the leakage cap to absorb module-size
/// imbalance in the start partitions (0.75 = modules may run 25% heavy,
/// matching the imbalance chain clustering produces in practice).
[[nodiscard]] SizePlan plan_module_size(const part::EvalContext& ctx,
                                        double feasibility_margin = 0.75,
                                        std::size_t k_search_range = 6);

}  // namespace iddq::core
