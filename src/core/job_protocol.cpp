#include "core/job_protocol.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "support/error.hpp"
#include "support/json.hpp"
#include "support/rng.hpp"
#include "support/strings.hpp"

namespace iddq::core {

/// A parsed submit op (declared in the header as an opaque parameter).
struct SubmitRequest {
  std::string id;
  std::vector<std::string> circuits;
  std::vector<std::string> methods{"evolution", "standard"};
  std::uint64_t seed = 1;
  /// Explicit per-shard base seeds (same length as circuits). When present
  /// they bypass the mix_seed(seed, shard) derivation entirely — this is
  /// how a cluster front-end makes seeds travel WITH a shard instead of
  /// depending on its position inside some backend's submit, so retrying a
  /// shard on another host cannot change its rows (docs/cluster.md).
  std::vector<std::uint64_t> seeds;
  std::size_t budget = 0;
  bool use_cache = true;
  int priority = 0;
  /// Per-job wall-clock budget (JobSpec::deadline_ms); 0 falls back to
  /// the server's --job-timeout-ms default.
  std::size_t deadline_ms = 0;
};

namespace {

using json::JsonWriter;

const char* event_name(JobEvent::Kind kind) {
  switch (kind) {
    case JobEvent::Kind::queued: return "queued";
    case JobEvent::Kind::running: return "running";
    case JobEvent::Kind::progress: return "progress";
    case JobEvent::Kind::row: return "row";
    case JobEvent::Kind::done: return "done";
    case JobEvent::Kind::failed: return "failed";
    case JobEvent::Kind::cancelled: return "cancelled";
  }
  return "?";
}

std::string event_json(const std::string& sweep_id, const JobEvent& e) {
  JsonWriter w;
  w.field("event", event_name(e.kind))
      .field("id", sweep_id)
      .field("circuit", e.circuit)
      .field("job", e.job);
  switch (e.kind) {
    case JobEvent::Kind::progress:
      w.field("method", e.method)
          .field("iteration", e.iteration)
          .field("evaluations", e.evaluations)
          .field("violation", e.best.violation)
          .field("cost", e.best.cost);
      break;
    case JobEvent::Kind::row: {
      const MethodResult& row = *e.row;
      JsonWriter costs(JsonWriter::Kind::Array);
      for (const double c : row.costs.as_array()) costs.element(c);
      w.field("index", e.row_index)
          .field("method", row.method)
          .field("modules", row.module_count)
          .field("violation", row.fitness.violation)
          .field("cost", row.fitness.cost)
          .field_raw("c", std::move(costs).str())
          .field("sensor_area", row.sensor_area)
          .field("delay_overhead", row.delay_overhead)
          .field("test_overhead", row.test_overhead)
          .field("iterations", row.iterations)
          .field("evaluations", row.evaluations)
          .field("feasible", row.fitness.feasible());
      // Measured-coverage columns ride along only when the server's flow
      // grades them: absent fields keep coverage-off streams byte-
      // identical to the previous protocol revision.
      if (row.has_coverage) {
        w.field("fault_coverage_pct", row.fault_coverage_pct)
            .field("faults_detected", row.faults_detected)
            .field("faults_total", row.faults_total)
            .field("patterns_used", row.patterns_used)
            .field("patterns_minimized", row.patterns_minimized);
      }
      break;
    }
    case JobEvent::Kind::failed:
      w.field("error", e.error);
      // Machine-readable failure class ("timeout"). Absent for plain
      // errors, keeping pre-deadline streams byte-identical.
      if (!e.reason.empty()) w.field("reason", e.reason);
      break;
    default:
      break;
  }
  return std::move(w).str();
}

}  // namespace

JobProtocolSession::JobProtocolSession(JobService& service,
                                       support::LineChannel& channel,
                                       Options options)
    : service_(&service), channel_(&channel), options_(options) {}

bool JobProtocolSession::run() {
  bool shutdown_requested = false;
  {
    // All channel writes of this session funnel through one writer
    // thread; emitting workers enqueue and return immediately, so a
    // client that stops reading can stall only this session.
    SessionEventWriter writer(
        *channel_, options_.session_queue, [this] { on_overflow_disconnect(); },
        JsonWriter()
            .field("event", "error")
            .field("message",
                   "event queue overflow: client not reading; session "
                   "disconnected")
            .str());
    writer_ = &writer;

    if (options_.emit_hello)
      send(JsonWriter()
               .field("event", "hello")
               .field("protocol", std::uint64_t{1})
               .field("workers", service_->worker_count())
               .str());

    std::string line;
    while (!writer.disconnected() && channel_->read_line(line)) {
      if (str::trim(line).empty()) continue;
      if (handle_line(line)) {
        shutdown_requested = true;
        break;
      }
    }
    // EOF and shutdown both drain: every submitted job reaches a terminal
    // state and has streamed its events before the session ends. (After
    // an overflow disconnect the jobs were cancelled and their events are
    // rejected at the queue, so this stays prompt.) In server-wide drain
    // mode the wait is bounded by --drain-timeout-ms and the session says
    // bye even when it was ended by the accept loop's shutdown_read — the
    // client sees an orderly close, not a silent EOF.
    drain();
    const bool server_draining =
        options_.draining != nullptr &&
        options_.draining->load(std::memory_order_acquire);
    if ((shutdown_requested || server_draining) && !writer.disconnected())
      send(JsonWriter().field("event", "bye").str());
    if (server_draining && options_.traffic != nullptr)
      options_.traffic->drained_sessions.fetch_add(1,
                                                   std::memory_order_relaxed);
    // Everything queued is on the wire before run() returns — callers
    // (and tests) may read the channel's other end immediately after.
    writer.flush();
    writer_ = nullptr;
  }
  return shutdown_requested;
}

bool JobProtocolSession::handle_line(const std::string& line) {
  const auto request = json::JsonValue::parse(line);
  if (!request || !request->is_object()) {
    send_error("malformed request: not a JSON object");
    return false;
  }
  const std::string op = request->get_string("op");
  if (op == "shutdown") {
    // Flip the server-wide drain flag here, not in the caller: every
    // OTHER session must start rejecting submits before this one's bye,
    // or a submit racing the shutdown could be half-admitted.
    if (options_.draining != nullptr)
      options_.draining->store(true, std::memory_order_release);
    return true;
  }
  if (op == "stats") {
    send_stats();
    return false;
  }
  if (op == "ping") {
    // Liveness probe: answered inline by the session thread, no service
    // interaction — a wedged worker pool still answers, a dead transport
    // does not, which is exactly the health signal a cluster front-end
    // needs before routing shards here.
    JsonWriter pong;
    pong.field("event", "pong")
        .field("protocol", std::uint64_t{1})
        .field("workers", service_->worker_count());
    // Echo the probe id (the heartbeat prober tags its pings "hb" so its
    // pongs never collide with a stats/ping rendezvous). Absent when the
    // request had none — plain pings keep their old bytes.
    const std::string ping_id = request->get_string("id");
    if (!ping_id.empty()) pong.field("id", ping_id);
    send(std::move(pong).str());
    return false;
  }
  if (op == "cancel") {
    const std::string id = request->get_string("id");
    std::vector<JobHandle> to_cancel;
    {
      const std::scoped_lock lock(state_mutex_);
      const auto it = sweeps_.find(id);
      if (it != sweeps_.end()) to_cancel = it->second->handles;
    }
    if (to_cancel.empty()) {
      send_error("cancel: unknown sweep id '" + id + "'");
      return false;
    }
    for (auto& handle : to_cancel) handle.cancel();
    return false;
  }
  if (op == "submit") {
    SubmitRequest submit;
    submit.id = request->get_string("id");
    if (submit.id.empty()) submit.id = "job-" + std::to_string(++auto_id_);
    // Drain mode (docs/robustness.md): the server is shutting down —
    // in-flight work finishes, new work is turned away.
    if (options_.draining != nullptr &&
        options_.draining->load(std::memory_order_acquire)) {
      send_error("submit: server is draining; resubmit elsewhere",
                 submit.id);
      return false;
    }
    if (const json::JsonValue* circuits = request->find("circuits")) {
      for (const auto& c : circuits->items())
        if (c.is_string()) submit.circuits.push_back(c.as_string());
    } else if (const json::JsonValue* one = request->find("circuit")) {
      if (one->is_string()) submit.circuits.push_back(one->as_string());
    }
    if (const json::JsonValue* methods = request->find("methods")) {
      submit.methods.clear();
      for (const auto& m : methods->items())
        if (m.is_string()) submit.methods.push_back(m.as_string());
    }
    submit.seed = request->get_u64("seed", 1);
    if (const json::JsonValue* seeds = request->find("seeds")) {
      for (const auto& s : seeds->items()) {
        std::uint64_t value = 0;
        if (!s.as_u64(value)) {
          send_error("submit: \"seeds\" must be an array of unsigned "
                     "64-bit integers",
                     submit.id);
          return false;
        }
        submit.seeds.push_back(value);
      }
    }
    submit.budget = static_cast<std::size_t>(request->get_u64("budget", 0));
    submit.use_cache = request->get_bool("cache", true);
    submit.deadline_ms = static_cast<std::size_t>(
        request->get_u64("deadline_ms", options_.default_deadline_ms));
    // Doubles carry the sign ("priority":-2 is valid — background work).
    // Untrusted input: clamp before the cast (out-of-int-range and NaN
    // would be undefined behavior); 1e6 dwarfs any real priority scheme.
    const double priority = request->get_double("priority", 0.0);
    submit.priority = std::isfinite(priority)
                          ? static_cast<int>(
                                std::clamp(priority, -1.0e6, 1.0e6))
                          : 0;
    if (submit.circuits.empty()) {
      send_error("submit: needs \"circuits\" (or \"circuit\")", submit.id);
      return false;
    }
    if (submit.methods.empty()) {
      send_error("submit: needs at least one method", submit.id);
      return false;
    }
    if (!submit.seeds.empty() &&
        submit.seeds.size() != submit.circuits.size()) {
      send_error("submit: \"seeds\" must have one entry per circuit (" +
                     std::to_string(submit.seeds.size()) + " seeds for " +
                     std::to_string(submit.circuits.size()) + " circuits)",
                 submit.id);
      return false;
    }
    handle_submit(submit);
    return false;
  }
  send_error("unknown op '" + op + "'");
  return false;
}

void JobProtocolSession::handle_submit(const SubmitRequest& request) {
  // Per-session quota: one greedy client cannot monopolize the shared
  // worker pool. Checked before the global admission bound so the error
  // names the narrower limit. The session reads requests serially, so
  // check-then-admit cannot race with another submit of this session;
  // concurrent terminal events only shrink in_flight_.
  if (options_.max_jobs_per_session > 0) {
    std::size_t in_flight = 0;
    {
      const std::scoped_lock lock(state_mutex_);
      in_flight = in_flight_;
    }
    if (in_flight + request.circuits.size() >
        options_.max_jobs_per_session) {
      if (options_.traffic != nullptr)
        options_.traffic->quota_rejections.fetch_add(
            1, std::memory_order_relaxed);
      send_error("submit: session quota exceeded (" +
                     std::to_string(in_flight) + " in flight + " +
                     std::to_string(request.circuits.size()) +
                     " requested > quota " +
                     std::to_string(options_.max_jobs_per_session) +
                     "); wait for running jobs to finish",
                 request.id);
      return;
    }
  }
  // Admission control: reject the whole sweep up front when its fan-out
  // would overflow the queue bound — a partially admitted sweep would be
  // worse than a clean retry-later signal. The reservation is atomic
  // across sessions: concurrent submits cannot jointly overshoot the
  // bound (it is released below, once every shard is queued).
  if (options_.max_queue > 0 &&
      request.circuits.size() > options_.max_queue) {
    // Not transient: a sweep wider than the bound can never be admitted.
    send_error("submit: sweep of " + std::to_string(request.circuits.size()) +
                   " jobs exceeds the queue bound " +
                   std::to_string(options_.max_queue) + "; split the sweep",
               request.id);
    return;
  }
  if (!service_->try_reserve(request.circuits.size(), options_.max_queue)) {
    send_error("submit: queue full (" +
                   std::to_string(service_->queue_depth()) +
                   " queued, bound " + std::to_string(options_.max_queue) +
                   "); retry later",
               request.id);
    return;
  }
  // RAII over the reserved slots: whatever is still held when this frame
  // unwinds — early return, contained error, even an unexpected throw —
  // is handed back, so admission can never leak.
  struct ReservationGuard {
    JobService* service;
    std::size_t held;
    ~ReservationGuard() {
      if (held > 0) service->release_reservation(held);
    }
  } reservation{service_,
                // No bound -> try_reserve took nothing; hold (and later
                // release) nothing, or we would erode reservations other
                // sessions hold on the shared service.
                options_.max_queue > 0 ? request.circuits.size() : 0};

  std::string error;
  std::shared_ptr<Sweep> sweep;
  bool accepted = false;
  try {
    sweep = std::make_shared<Sweep>();
    sweep->id = request.id;
    sweep->remaining = request.circuits.size();
    {
      const std::scoped_lock lock(state_mutex_);
      const auto it = sweeps_.find(request.id);
      if (it != sweeps_.end() && it->second->remaining > 0) {
        send_error("submit: sweep id '" + request.id + "' is still active",
                   request.id);
        return;
      }
      sweeps_[request.id] = sweep;
      // Quota accounting mirrors sweep->remaining exactly: charged whole
      // here, refunded per terminal event (announced shards) or by the
      // write-off below (shards that never reached the queue).
      in_flight_ += request.circuits.size();
    }
    accepted = true;
    send(JsonWriter()
             .field("event", "accepted")
             .field("id", request.id)
             .field("jobs", request.circuits.size())
             .str());

    for (std::size_t shard = 0; shard < request.circuits.size(); ++shard) {
      // A session the backpressure policy disconnected will never deliver
      // results: stop admitting shards. The write-off below retires the
      // ones that never reached the queue (they produced no events).
      if (writer_ != nullptr && writer_->disconnected())
        throw iddq::Error("session disconnected (event queue overflow)");
      JobSpec spec;
      spec.circuit = request.circuits[shard];
      spec.methods = request.methods;
      // Same derivation as BatchRunner: shard-index seeds keep a server
      // sweep byte-identical to `iddqsyn --jobs N` at the same base seed.
      // An explicit "seeds" array overrides it — the seed is then DATA the
      // submitter shipped with the shard, independent of its index here.
      spec.base_seed = request.seeds.empty()
                           ? Rng::mix_seed(request.seed, shard)
                           : request.seeds[shard];
      spec.max_evaluations = request.budget;
      spec.priority = request.priority;
      spec.deadline_ms = request.deadline_ms;
      spec.cache_policy = request.use_cache ? JobSpec::CachePolicy::use
                                            : JobSpec::CachePolicy::bypass;
      JobHandle handle = service_->submit(
          std::move(spec),
          [this, sweep](const JobEvent& event) { on_event(sweep, event); });
      // This shard is on the real queue now: release its promised slot
      // immediately, so a client slow to drain the event stream (send
      // blocks on a full socket) does not pin admission slots that other
      // sessions could use.
      if (reservation.held > 0) {
        service_->release_reservation(1);
        --reservation.held;
      }
      {
        const std::scoped_lock lock(state_mutex_);
        sweep->handles.push_back(handle);
        handles_.push_back(handle);
      }
      // The overflow hook can fire inside submit() above (this shard's
      // own `queued` event posts synchronously) — before the handle was
      // registered, so the hook could not cancel it. Re-check here so no
      // shard of a disconnected session outlives the policy.
      if (writer_ != nullptr && writer_->disconnected()) handle.cancel();
    }
    return;
  } catch (const std::exception& e) {
    // A concurrent shutdown closed intake mid-sweep (iddq::Error), or
    // something like bad_alloc hit: either way the exception must not
    // unwind the session thread — serve_socket runs sessions on bare
    // std::threads.
    error = e.what();
  }
  // Account for the shards that will never run so the sweep still
  // completes, then tell the client. A shard whose `queued` event was
  // seen self-accounts through its sink (JobService::submit finalizes on
  // any post-announce failure); every other shard produced no events and
  // is written off here. The queued events fire synchronously on this
  // thread, so sweep->announced is final by now.
  bool finished = false;
  std::size_t ok = 0;
  std::size_t failed = 0;
  std::size_t cancelled = 0;
  if (accepted) {
    const std::scoped_lock lock(state_mutex_);
    const std::size_t unaccounted =
        request.circuits.size() - sweep->announced;
    if (unaccounted > 0 && sweep->remaining >= unaccounted) {
      sweep->remaining -= unaccounted;
      in_flight_ -= std::min(in_flight_, unaccounted);
      if (sweep->remaining == 0) {
        finished = true;
        ok = sweep->ok;
        failed = sweep->failed;
        cancelled = sweep->cancelled;
      }
    }
  }
  send_error("submit: " + error, request.id);
  if (finished) send_sweep_done(request.id, ok, failed, cancelled);
}

void JobProtocolSession::send_sweep_done(const std::string& id,
                                         std::size_t ok, std::size_t failed,
                                         std::size_t cancelled) {
  send(JsonWriter()
           .field("event", "sweep_done")
           .field("id", id)
           .field("ok", ok)
           .field("failed", failed)
           .field("cancelled", cancelled)
           .str());
}

void JobProtocolSession::on_event(const std::shared_ptr<Sweep>& sweep,
                                  const JobEvent& event) {
  // Progress ticks are the only droppable class; rows and lifecycle
  // transitions must reach the client in order or not at all.
  send(event_json(sweep->id, event), delivery_class(event.kind));
  if (event.kind == JobEvent::Kind::queued) {
    // Ground truth for the error accounting in handle_submit: an
    // announced shard is guaranteed a terminal event (JobService::submit
    // finalizes on any post-announce failure), an unannounced one never
    // produces any.
    const std::scoped_lock lock(state_mutex_);
    ++sweep->announced;
    return;
  }
  if (event.kind != JobEvent::Kind::done &&
      event.kind != JobEvent::Kind::failed &&
      event.kind != JobEvent::Kind::cancelled)
    return;

  bool sweep_finished = false;
  std::size_t ok = 0;
  std::size_t failed = 0;
  std::size_t cancelled = 0;
  {
    const std::scoped_lock lock(state_mutex_);
    if (event.kind == JobEvent::Kind::done) ++sweep->ok;
    if (event.kind == JobEvent::Kind::failed) ++sweep->failed;
    if (event.kind == JobEvent::Kind::cancelled) ++sweep->cancelled;
    if (in_flight_ > 0) --in_flight_;
    if (--sweep->remaining == 0) {
      sweep_finished = true;
      ok = sweep->ok;
      failed = sweep->failed;
      cancelled = sweep->cancelled;
    }
  }
  if (sweep_finished) send_sweep_done(sweep->id, ok, failed, cancelled);
}

void JobProtocolSession::send(const std::string& json,
                              EventDeliveryClass cls) {
  if (writer_ != nullptr) {
    // Non-blocking: a rejected post means the session is disconnected or
    // the peer is gone — either way the stream is over.
    (void)writer_->post(json, cls);
    return;
  }
  const std::scoped_lock lock(write_mutex_);
  (void)channel_->write_line(json);  // a gone peer just stops the stream
}

void JobProtocolSession::send_error(const std::string& message,
                                    const std::string& id) {
  // Errors caused by a specific submit echo its sweep "id" so a relaying
  // front-end (tools/iddqsyn_cluster) can attribute the rejection to a
  // shard and retry it elsewhere; session-level errors carry no id.
  JsonWriter w;
  w.field("event", "error");
  if (!id.empty()) w.field("id", id);
  w.field("message", message);
  send(std::move(w).str());
}

void JobProtocolSession::send_stats() {
  JsonWriter w;
  w.field("event", "stats")
      .field("workers", service_->worker_count())
      .field("submitted", service_->submitted())
      .field("completed", service_->completed())
      .field("failed", service_->failed())
      .field("cancelled", service_->cancelled())
      .field("timeouts", service_->timeouts())
      .field("drained_sessions",
             options_.traffic != nullptr
                 ? options_.traffic->drained_sessions.load(
                       std::memory_order_relaxed)
                 : std::uint64_t{0});
  if (const ResultCache* cache = service_->flow_config().cache;
      cache != nullptr) {
    w.field("cache_hits", cache->hits())
        .field("cache_misses", cache->misses())
        .field("cache_entries", cache->size())
        .field("cache_corrupt_lines", cache->corrupt_lines())
        .field("cache_resident", cache->resident_size())
        .field("cache_evictions", cache->evictions())
        .field("cache_disk_hits", cache->disk_hits());
  }
  if (writer_ != nullptr) {
    const SessionEventWriter::Stats q = writer_->stats();
    JsonWriter qs;
    qs.field("depth", q.depth)
        .field("high_water", q.depth_high_water)
        .field("enqueued", q.enqueued)
        .field("dropped_progress", q.dropped_progress)
        .field("disconnects",
               options_.traffic != nullptr
                   ? options_.traffic->overflow_disconnects.load(
                         std::memory_order_relaxed)
                   : static_cast<std::uint64_t>(q.disconnected ? 1 : 0));
    w.field_raw("queue_stats", std::move(qs).str());
  }
  send(std::move(w).str());
}

void JobProtocolSession::on_overflow_disconnect() {
  if (options_.traffic != nullptr)
    options_.traffic->overflow_disconnects.fetch_add(
        1, std::memory_order_relaxed);
  // Stop consuming requests: the read loop's blocking read aborts (where
  // the channel supports it) and its loop condition re-checks
  // writer_->disconnected() either way.
  channel_->shutdown_read();
  // The client will never see this session's remaining results; cancel
  // its jobs so they stop consuming shared workers. Their terminal events
  // are rejected at the (disconnected) queue, and drain() stays prompt.
  std::vector<JobHandle> to_cancel;
  {
    const std::scoped_lock lock(state_mutex_);
    to_cancel = handles_;
  }
  for (auto& handle : to_cancel) handle.cancel();
}

void JobProtocolSession::drain() {
  std::vector<JobHandle> handles;
  {
    const std::scoped_lock lock(state_mutex_);
    handles = handles_;
  }
  // Bounded drain (docs/robustness.md): once the server is draining, in-
  // flight jobs get --drain-timeout-ms collectively; whatever is still
  // running at the deadline is cancelled (cooperative — it lands within
  // one progress tick, so the unconditional wait below stays prompt).
  if (options_.drain_timeout_ms > 0 && options_.draining != nullptr &&
      options_.draining->load(std::memory_order_acquire)) {
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(options_.drain_timeout_ms);
    for (const auto& handle : handles) {
      const auto now = std::chrono::steady_clock::now();
      const auto left =
          std::chrono::duration_cast<std::chrono::milliseconds>(deadline -
                                                                now);
      if (left.count() <= 0 || !handle.wait_for(left)) {
        for (auto& rest : handles) rest.cancel();
        break;
      }
    }
  }
  for (const auto& handle : handles) (void)handle.wait();
}

}  // namespace iddq::core
