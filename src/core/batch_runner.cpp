#include "core/batch_runner.hpp"

#include <algorithm>
#include <utility>

#include "support/rng.hpp"

namespace iddq::core {

BatchRunner::BatchRunner(const lib::CellLibrary& library,
                         FlowEngineConfig config,
                         const OptimizerRegistry& registry)
    : library_(&library),
      config_(std::move(config)),
      registry_(&registry) {}

void BatchRunner::set_circuit_loader(CircuitLoader loader) {
  loader_ = std::move(loader);
}

std::vector<BatchItem> BatchRunner::run(std::span<const std::string> circuits,
                                        std::span<const std::string> methods,
                                        std::uint64_t base_seed,
                                        std::size_t jobs) const {
  std::vector<BatchItem> items(circuits.size());
  if (circuits.empty()) return items;

  JobService::Config service_config;
  service_config.workers =
      std::max<std::size_t>(1, std::min(jobs, circuits.size()));
  service_config.flow = config_;
  JobService service(*library_, std::move(service_config), *registry_);
  if (loader_) service.set_circuit_loader(loader_);

  const std::vector<std::string> specs(methods.begin(), methods.end());
  std::vector<JobHandle> handles;
  handles.reserve(circuits.size());
  for (std::size_t i = 0; i < circuits.size(); ++i) {
    JobSpec spec;
    spec.circuit = circuits[i];
    spec.methods = specs;
    // The task-index seed invariant: scheduling order never matters.
    spec.base_seed = Rng::mix_seed(base_seed, i);
    handles.push_back(service.submit(std::move(spec)));
  }

  for (std::size_t i = 0; i < circuits.size(); ++i) {
    const JobResult& result = handles[i].wait();
    BatchItem& item = items[i];
    item.circuit = result.circuit;
    item.plan = result.plan;
    item.error = result.error;
    // Historical contract: a failed task reports no rows, even when a
    // prefix of its methods had finished before the error.
    if (result.ok()) item.methods = result.rows;
  }
  return items;
}

}  // namespace iddq::core
