#include "core/batch_runner.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <thread>
#include <utility>

#include "netlist/circuit_loader.hpp"
#include "support/rng.hpp"

namespace iddq::core {

BatchRunner::BatchRunner(const lib::CellLibrary& library,
                         FlowEngineConfig config,
                         const OptimizerRegistry& registry)
    : library_(&library),
      config_(std::move(config)),
      registry_(&registry),
      loader_([](const std::string& spec) {
        return netlist::load_circuit(spec);
      }) {}

void BatchRunner::set_circuit_loader(CircuitLoader loader) {
  loader_ = std::move(loader);
}

std::vector<BatchItem> BatchRunner::run(std::span<const std::string> circuits,
                                        std::span<const std::string> methods,
                                        std::uint64_t base_seed,
                                        std::size_t jobs) const {
  std::vector<BatchItem> items(circuits.size());
  const std::vector<std::string> specs(methods.begin(), methods.end());

  const auto run_task = [&](std::size_t index) {
    BatchItem& item = items[index];
    item.circuit = circuits[index];
    try {
      const netlist::Netlist nl = loader_(circuits[index]);
      FlowEngine engine(nl, *library_, config_, *registry_);
      item.plan = engine.plan();
      item.methods =
          engine.run_methods(specs, Rng::mix_seed(base_seed, index));
    } catch (const std::exception& e) {
      item.error = e.what();
    }
  };

  const std::size_t workers =
      jobs == 0 ? 1 : std::min(jobs, circuits.size());
  if (workers <= 1) {
    for (std::size_t i = 0; i < circuits.size(); ++i) run_task(i);
    return items;
  }

  std::atomic<std::size_t> next{0};
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    pool.emplace_back([&] {
      for (std::size_t i = next.fetch_add(1); i < items.size();
           i = next.fetch_add(1))
        run_task(i);
    });
  }
  for (auto& t : pool) t.join();
  return items;
}

}  // namespace iddq::core
