// End-to-end synthesis flow: the paper-shaped public entry point.
//
//   netlist + cell library
//     -> EvalContext (estimator precomputation)
//     -> size planning (section 4.2)
//     -> evolution strategy (section 4)
//     -> standard-partitioning baseline at the ES module sizes (section 5)
//     -> per-method cost/constraint reports (Table 1 rows)
//
// run_flow is a compatibility wrapper over the registry-driven FlowEngine
// (core/flow_engine.hpp): it runs the registry's "evolution" and "standard"
// methods with the paper's section-5 coupling and keeps the historical
// FlowResult accessors. New code that wants other method sets, explicit
// budgets, or multi-circuit sweeps should use FlowEngine / BatchRunner
// directly.
#pragma once

#include "core/evolution.hpp"
#include "core/flow_engine.hpp"
#include "core/size_planner.hpp"
#include "library/cell_library.hpp"
#include "partition/evaluator.hpp"

namespace iddq::core {

struct FlowConfig {
  elec::SensorSpec sensor;
  part::CostWeights weights;
  EsParams es;
  std::uint32_t rho = 4;  // separation saturation distance
  /// Optional greedy polish of the ES result (off for paper fidelity).
  bool refine_result = false;
};

struct FlowResult {
  SizePlan plan;
  MethodResult evolution;
  MethodResult standard;
  EsResult es_detail;

  /// True when the headline comparison below is meaningful: the evolution
  /// result carries sensor area to compare against. False for degenerate
  /// plans (e.g. a single zero-area module), where the overhead is
  /// reported as 0 instead of inf/NaN.
  [[nodiscard]] bool overhead_comparable() const {
    return evolution.sensor_area > 0.0;
  }

  /// The paper's headline metric: extra BIC-sensor area the standard
  /// baseline needs relative to the evolution result, in percent.
  /// Returns 0 when !overhead_comparable().
  [[nodiscard]] double standard_area_overhead_pct() const {
    if (!overhead_comparable()) return 0.0;
    return (standard.sensor_area / evolution.sensor_area - 1.0) * 100.0;
  }
};

/// Runs the complete flow. `ctx` outlives the call only; results are
/// self-contained.
[[nodiscard]] FlowResult run_flow(const netlist::Netlist& nl,
                                  const lib::CellLibrary& library,
                                  const FlowConfig& config);

}  // namespace iddq::core
