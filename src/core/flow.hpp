// End-to-end synthesis flow: the public entry point of the library.
//
//   netlist + cell library
//     -> EvalContext (estimator precomputation)
//     -> size planning (section 4.2)
//     -> evolution strategy (section 4)
//     -> standard-partitioning baseline at the ES module sizes (section 5)
//     -> per-method cost/constraint reports (Table 1 rows)
#pragma once

#include <string>
#include <vector>

#include "core/evolution.hpp"
#include "core/size_planner.hpp"
#include "library/cell_library.hpp"
#include "partition/evaluator.hpp"

namespace iddq::core {

struct FlowConfig {
  elec::SensorSpec sensor;
  part::CostWeights weights;
  EsParams es;
  std::uint32_t rho = 4;  // separation saturation distance
  /// Optional greedy polish of the ES result (off for paper fidelity).
  bool refine_result = false;
};

/// One partitioning method's outcome on one circuit.
struct MethodResult {
  std::string method;
  part::Partition partition{1, 1};
  part::Costs costs;
  part::Fitness fitness;
  double sensor_area = 0.0;
  double delay_overhead = 0.0;    // c2
  double test_overhead = 0.0;     // c4
  std::size_t module_count = 0;
  std::vector<part::ModuleReport> modules;
};

struct FlowResult {
  SizePlan plan;
  MethodResult evolution;
  MethodResult standard;
  EsResult es_detail;

  /// The paper's headline metric: extra BIC-sensor area the standard
  /// baseline needs relative to the evolution result, in percent.
  [[nodiscard]] double standard_area_overhead_pct() const {
    return (standard.sensor_area / evolution.sensor_area - 1.0) * 100.0;
  }
};

/// Runs the complete flow. `ctx` outlives the call only; results are
/// self-contained.
[[nodiscard]] FlowResult run_flow(const netlist::Netlist& nl,
                                  const lib::CellLibrary& library,
                                  const FlowConfig& config);

/// Evaluates an externally produced partition under the same cost model
/// (used by the figure-2 bench and the examples).
[[nodiscard]] MethodResult evaluate_method(const part::EvalContext& ctx,
                                           std::string method,
                                           const part::Partition& partition);

}  // namespace iddq::core
