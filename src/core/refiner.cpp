#include "core/refiner.hpp"

#include <algorithm>
#include <vector>

#include "core/evolution.hpp"

namespace iddq::core {

RefineResult greedy_refine(part::PartitionEvaluator& eval,
                           std::size_t max_evaluations) {
  RefineResult result;
  const auto& nl = eval.context().nl;
  part::Fitness current = eval.fitness();
  ++result.evaluations;

  bool improved = true;
  while (improved && result.evaluations < max_evaluations) {
    improved = false;
    for (std::uint32_t m = 0;
         m < eval.partition().module_count() &&
         result.evaluations < max_evaluations;
         ++m) {
      if (eval.partition().module_size(m) <= 1) continue;  // keep K fixed
      const auto boundary = EvolutionEngine::boundary_gates(eval, m);
      for (const netlist::GateId g : boundary) {
        if (result.evaluations >= max_evaluations) break;
        if (eval.partition().module_of(g) != m) continue;  // moved already
        if (eval.partition().module_size(m) <= 1) break;
        std::vector<std::uint32_t> targets;
        const auto consider = [&](netlist::GateId f) {
          if (!netlist::is_logic(nl.gate(f).kind)) return;
          const std::uint32_t t = eval.partition().module_of(f);
          if (t != m &&
              std::find(targets.begin(), targets.end(), t) == targets.end())
            targets.push_back(t);
        };
        for (const netlist::GateId f : nl.gate(g).fanins) consider(f);
        for (const netlist::GateId f : nl.gate(g).fanouts) consider(f);
        for (const std::uint32_t target : targets) {
          eval.move_gate(g, target);
          const part::Fitness f = eval.fitness();
          ++result.evaluations;
          if (f < current) {
            current = f;
            ++result.moves_applied;
            improved = true;
            break;  // keep the move; continue with the next boundary gate
          }
          eval.move_gate(g, m);  // revert (K was preserved)
        }
      }
    }
  }
  result.final_fitness = current;
  return result;
}

}  // namespace iddq::core
