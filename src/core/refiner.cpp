#include "core/refiner.hpp"

#include <algorithm>
#include <vector>

#include "core/evolution.hpp"
#include "core/neighborhood.hpp"
#include "support/executor.hpp"

namespace iddq::core {

namespace {

/// One (gate -> target) trial of the scan, in strict serial order.
struct Candidate {
  std::size_t gate_pos = 0;  // index into the boundary list (walk ordering)
  netlist::GateId gate = netlist::kNoGate;
  std::uint32_t target = 0;
  part::Fitness fitness;  // filled by the scoring phase (eager mode only)
};

}  // namespace

RefineResult greedy_refine(part::PartitionEvaluator& eval,
                           std::size_t max_evaluations,
                           support::ExecutorPool* pool) {
  RefineResult result;
  part::Fitness current = eval.fitness();
  ++result.evaluations;

  // Probes are stateless, so every trial of a scan segment scores against
  // the same committed state — which is what makes the scan speculatively
  // parallelizable: with a pool, a window of upcoming candidates is scored
  // eagerly (one private evaluator copy per concurrency slot), then the
  // serial first-improvement walk replays over the scores. Serially the
  // walk probes lazily (zero copies, zero speculation). Both paths visit
  // candidates in the same order with the same scores, so results are
  // byte-identical at any thread count.
  const std::size_t slots =
      pool == nullptr || pool->worker_count() == 0 ? 1 : pool->concurrency();
  std::vector<Candidate> window;
  std::vector<std::uint32_t> targets;

  bool improved = true;
  while (improved && result.evaluations < max_evaluations) {
    improved = false;
    for (std::uint32_t m = 0;
         m < eval.partition().module_count() &&
         result.evaluations < max_evaluations;
         ++m) {
      if (eval.partition().module_size(m) <= 1) continue;  // keep K fixed
      const auto boundary = EvolutionEngine::boundary_gates(eval, m);
      std::size_t pos = 0;
      bool module_done = false;
      while (pos < boundary.size() && !module_done) {
        if (eval.partition().module_size(m) <= 1) break;
        // Collect the next window of candidates against the current state
        // (no commit happens until the walk below decides, so the state is
        // valid for every candidate in the window).
        window.clear();
        std::size_t next_pos = pos;
        std::size_t window_gates = 0;
        const std::size_t max_window_gates = slots <= 1 ? 1 : 4 * slots;
        while (next_pos < boundary.size() && window_gates < max_window_gates) {
          const netlist::GateId g = boundary[next_pos];
          ++next_pos;
          if (eval.partition().module_of(g) != m) continue;  // moved already
          neighbor_modules(eval, g, m, targets);
          if (targets.empty()) continue;
          ++window_gates;
          for (const std::uint32_t target : targets)
            window.push_back({next_pos - 1, g, target, {}});
        }
        if (window.empty()) {
          pos = next_pos;
          continue;
        }
        if (slots > 1) {
          eval.refresh();  // worker copies fan out from a clean state
          const std::size_t per = (window.size() + slots - 1) / slots;
          support::parallel_for_indexed(
              pool, std::min(slots, window.size()), [&](std::size_t s) {
                part::PartitionEvaluator probe = eval;
                const std::size_t end =
                    std::min((s + 1) * per, window.size());
                for (std::size_t c = s * per; c < end; ++c)
                  window[c].fitness =
                      probe.probe_move(window[c].gate, window[c].target)
                          .fitness;
              });
        }
        // First-improvement walk in strict candidate order. The budget is
        // checked when entering a gate, exactly like the sequential scan;
        // scored candidates past the stopping point are discarded.
        std::size_t walk_gate = static_cast<std::size_t>(-1);
        bool committed = false;
        for (const Candidate& cand : window) {
          if (cand.gate_pos != walk_gate) {
            if (result.evaluations >= max_evaluations) {
              module_done = true;
              break;
            }
            walk_gate = cand.gate_pos;
          }
          const part::Fitness f =
              slots > 1 ? cand.fitness
                        : eval.probe_move(cand.gate, cand.target).fitness;
          ++result.evaluations;
          if (f < current) {
            eval.move_gate(cand.gate, cand.target);
            current = f;
            ++result.moves_applied;
            improved = true;
            committed = true;
            pos = cand.gate_pos + 1;  // rescan later gates against the
            break;                    // post-commit state
          }
        }
        if (!committed && !module_done) pos = next_pos;
      }
    }
  }
  result.final_fitness = current;
  return result;
}

}  // namespace iddq::core
