// Shared progress-callback vocabulary for the step-driven local searches.
//
// Split out of the optimizer headers so annealing and tabu (and any
// future step-driven search) can share the alias without including each
// other; core/optimizer.hpp cannot host it because it includes those
// headers (cycle).
#pragma once

#include <cstddef>
#include <functional>

#include "partition/cost_model.hpp"

namespace iddq::core {

/// Mid-run observer for step-driven searches: (steps done, evaluations
/// spent, best fitness so far). Reporting only — the callback cannot
/// alter the search trajectory.
using StepCallback =
    std::function<void(std::size_t, std::size_t, const part::Fitness&)>;

}  // namespace iddq::core
