// SessionEventWriter — the non-blocking event path of a protocol session
// (docs/server.md, "Backpressure").
//
// One writer per connection. Emitting threads (the session's read loop and
// JobService workers streaming events) call post(), which enqueues the
// serialized line and returns immediately; a dedicated writer thread owns
// every channel write. A client that stops reading therefore stalls only
// its own writer thread — never a worker carrying another session's job.
//
// Overflow policy, per EventDeliveryClass (core/job_event.hpp), applied
// when the queue holds `bound` lines (bound 0 = unbounded, never applies):
//  * droppable lines (progress ticks): the oldest queued droppable line is
//    discarded to make room; if none is queued, the incoming tick itself
//    is dropped. Either way post() succeeds and dropped_progress counts it.
//  * must_deliver lines (row / terminal / protocol responses): the queue
//    is beyond saving — delivering this line late but dropping others
//    would corrupt the stream. The queue is cleared, a final protocol
//    `error` line is queued for a best-effort goodbye, the disconnect hook
//    runs (the session aborts its read loop and cancels its jobs), and
//    post() returns false.
//
// Stats are exposed for the `stats` op's queue_stats object. flush()
// blocks until everything queued so far is on the wire (or the session is
// disconnected/the peer vanished) — the session calls it before returning
// from run() so tests can read the channel afterwards. The destructor
// stops the thread, using LineChannel::shutdown_write() to unblock a
// writer stuck sending to a gone-but-undetected peer.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "core/job_event.hpp"
#include "support/transport.hpp"

namespace iddq::core {

class SessionEventWriter {
 public:
  /// Point-in-time counters; returned by value so readers need no lock.
  struct Stats {
    std::size_t depth = 0;             // lines queued right now
    std::size_t depth_high_water = 0;  // max depth ever observed
    std::uint64_t enqueued = 0;        // lines accepted into the queue
    std::uint64_t dropped_progress = 0;
    bool disconnected = false;  // overflow policy tore the session down
  };

  /// `channel` must outlive the writer. `bound` caps queued lines (0 =
  /// unbounded). `on_disconnect` runs (once, without the queue lock, on
  /// the thread whose post() overflowed) when a must_deliver line cannot
  /// be queued; `overflow_error_line` is the protocol `error` JSON queued
  /// as the best-effort last line of a disconnected session.
  SessionEventWriter(support::LineChannel& channel, std::size_t bound,
                     std::function<void()> on_disconnect,
                     std::string overflow_error_line);
  ~SessionEventWriter();

  SessionEventWriter(const SessionEventWriter&) = delete;
  SessionEventWriter& operator=(const SessionEventWriter&) = delete;

  /// Enqueues one serialized line; never blocks on the channel. Returns
  /// false when the line was not accepted: the session is (or just
  /// became) disconnected, or the peer is gone. Droppable lines also
  /// return true when the overflow policy consumed them.
  bool post(std::string line, EventDeliveryClass cls);

  /// True once the overflow policy disconnected the session; the read
  /// loop polls this to stop consuming requests.
  [[nodiscard]] bool disconnected() const;

  /// True once a channel write failed (client hung up). Distinct from
  /// disconnected(): the peer left on its own, no policy fired.
  [[nodiscard]] bool peer_gone() const;

  /// Waits until every line queued so far is written, the session is
  /// disconnected, or the peer is gone. Never blocks indefinitely on a
  /// stalled client after the overflow policy fired.
  void flush();

  [[nodiscard]] Stats stats() const;

 private:
  struct Item {
    std::string text;
    EventDeliveryClass cls;
  };

  void writer_loop();

  support::LineChannel* channel_;
  std::size_t bound_;
  std::function<void()> on_disconnect_;
  std::string overflow_error_line_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;        // wakes the writer thread
  std::condition_variable flush_cv_;  // wakes flush() waiters
  std::deque<Item> queue_;
  bool stopping_ = false;
  bool disconnected_ = false;  // overflow policy fired
  bool peer_gone_ = false;     // a channel write returned false
  bool writing_ = false;       // writer thread is mid-write_line
  Stats stats_;

  std::thread thread_;  // last member: starts after everything above
};

}  // namespace iddq::core
