// Tabu search over partition moves.
//
// Best-of-neighbourhood local search with a recency-based tabu attribute:
// each iteration samples a small candidate set of boundary-gate moves
// (core/neighborhood.hpp — the same neighbourhood as the ES mutation and
// the annealer), evaluates every candidate, and applies the best one whose
// gate is not tabu. A gate that just moved may not move again for `tenure`
// iterations, which lets the search climb out of the local optima that trap
// the greedy refiner; the aspiration criterion overrides the tabu when a
// candidate beats the best objective seen so far. K stays fixed at the
// start partition's value (moves never empty a module).
//
// Fully deterministic at a fixed seed: candidate sampling is the only
// stochastic element and draws from the explicit Rng.
#pragma once

#include <cstdint>

#include "core/step_callback.hpp"
#include "partition/evaluator.hpp"

namespace iddq::support {
class ExecutorPool;
}

namespace iddq::core {

struct TabuParams {
  std::size_t iterations = 400;        // move rounds (best-of-candidates)
  std::size_t candidates = 8;          // sampled neighbourhood per round
  std::size_t tenure = 12;             // rounds a moved gate stays tabu
  std::size_t stall_iterations = 120;  // stop after this many without gain
  double violation_penalty = 1.0e4;
  std::uint64_t seed = 1;
  /// Per-run progress fields (like seed, not hashed into cache keys):
  /// on_round fires every `progress_every` rounds when set (0 disables).
  std::size_t progress_every = 25;
  StepCallback on_round;
  /// Evaluates each round's candidate set in parallel when set (nullptr =
  /// serial). The candidate moves are sampled on the coordinator (all RNG
  /// draws, fixed order); each candidate is then scored against the
  /// round-start state with the copy-free probe_move — serially on the
  /// shared evaluator, or on one private copy per concurrency slot when a
  /// pool is set. Probe scores are bit-identical to the historical
  /// copy + move recipe, so the whole search is byte-identical at any
  /// thread count. Per-run field like seed, excluded from the cache
  /// fingerprint.
  support::ExecutorPool* pool = nullptr;
};

struct TabuResult {
  part::Partition best_partition{1, 1};
  part::Fitness best_fitness;
  part::Costs best_costs;
  std::size_t iterations = 0;   // rounds actually executed
  std::size_t evaluations = 0;  // cost-function evaluations spent
};

[[nodiscard]] TabuResult tabu_search(const part::EvalContext& ctx,
                                     const part::Partition& start,
                                     const TabuParams& params);

}  // namespace iddq::core
