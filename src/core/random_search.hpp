// Random-search baseline: evaluate many independent chain-clustered start
// partitions and keep the best. The weakest of the section-4 alternatives;
// it anchors the low end of the optimizer comparison. The samples are
// independent, so they evaluate in parallel on an ExecutorPool with all
// RNG draws on the coordinator — byte-identical at any thread count.
#pragma once

#include <cstdint>

#include "partition/evaluator.hpp"

namespace iddq::support {
class ExecutorPool;
}

namespace iddq::core {

struct RandomSearchResult {
  part::Partition best_partition{1, 1};
  part::Fitness best_fitness;
  part::Costs best_costs;
  std::size_t evaluations = 0;
};

/// `pool` parallelizes the independent sample evaluations when non-null (a
/// per-run knob like the seed — results are pool-invariant).
[[nodiscard]] RandomSearchResult random_search(
    const part::EvalContext& ctx, std::size_t module_count,
    std::size_t samples, std::uint64_t seed,
    support::ExecutorPool* pool = nullptr);

}  // namespace iddq::core
