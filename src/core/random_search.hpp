// Random-search baseline: evaluate many independent chain-clustered start
// partitions and keep the best. The weakest of the section-4 alternatives;
// it anchors the low end of the optimizer comparison.
#pragma once

#include <cstdint>

#include "partition/evaluator.hpp"

namespace iddq::core {

struct RandomSearchResult {
  part::Partition best_partition{1, 1};
  part::Fitness best_fitness;
  part::Costs best_costs;
  std::size_t evaluations = 0;
};

[[nodiscard]] RandomSearchResult random_search(const part::EvalContext& ctx,
                                               std::size_t module_count,
                                               std::size_t samples,
                                               std::uint64_t seed);

}  // namespace iddq::core
