#include "core/neighborhood.hpp"

#include <algorithm>
#include <vector>

#include "core/evolution.hpp"

namespace iddq::core {

double penalized_objective(part::PartitionEvaluator& eval,
                           double violation_penalty) {
  return eval.costs().total(eval.context().weights) +
         violation_penalty * eval.violation();
}

double probe_objective(part::PartitionEvaluator& eval, const GateMove& move,
                       double violation_penalty) {
  const part::MoveProbe probe = eval.probe_move(move.gate, move.target);
  return probe.costs.total(eval.context().weights) +
         violation_penalty * probe.fitness.violation;
}

void neighbor_modules(const part::PartitionEvaluator& eval, netlist::GateId g,
                      std::uint32_t src, std::vector<std::uint32_t>& targets) {
  targets.clear();
  const auto& nl = eval.context().nl;
  const auto& p = eval.partition();
  const auto consider = [&](netlist::GateId f) {
    if (!netlist::is_logic(nl.gate(f).kind)) return;
    const std::uint32_t m = p.module_of(f);
    if (m != src &&
        std::find(targets.begin(), targets.end(), m) == targets.end())
      targets.push_back(m);
  };
  for (const netlist::GateId f : nl.gate(g).fanins) consider(f);
  for (const netlist::GateId f : nl.gate(g).fanouts) consider(f);
}

GateMove sample_boundary_move(const part::PartitionEvaluator& eval,
                              Rng& rng) {
  const auto& p = eval.partition();
  std::vector<std::uint32_t> targets;
  for (int attempt = 0; attempt < 32; ++attempt) {
    const auto src = static_cast<std::uint32_t>(rng.index(p.module_count()));
    if (p.module_size(src) <= 1) continue;  // would empty the module
    const auto boundary = EvolutionEngine::boundary_gates(eval, src);
    if (boundary.empty()) continue;
    const netlist::GateId g = boundary[rng.index(boundary.size())];
    neighbor_modules(eval, g, src, targets);
    if (targets.empty()) continue;
    return GateMove{g, targets[rng.index(targets.size())]};
  }
  return GateMove{};
}

}  // namespace iddq::core
