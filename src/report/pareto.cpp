#include "report/pareto.hpp"

#include <algorithm>

namespace iddq::report {

bool dominates(const ParetoPoint& a, const ParetoPoint& b) {
  if (a.area_overhead_pct > b.area_overhead_pct) return false;
  if (a.coverage_pct < b.coverage_pct) return false;
  return a.area_overhead_pct < b.area_overhead_pct ||
         a.coverage_pct > b.coverage_pct;
}

std::vector<std::size_t> pareto_front(std::span<const ParetoPoint> points) {
  // Sort index order by (overhead asc, coverage desc, index asc); a sweep
  // keeping the best coverage seen so far then yields the frontier in one
  // pass. Strictly-better-coverage test keeps coordinate duplicates (they
  // do not dominate each other).
  std::vector<std::size_t> order(points.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) {
              if (points[a].area_overhead_pct != points[b].area_overhead_pct)
                return points[a].area_overhead_pct <
                       points[b].area_overhead_pct;
              if (points[a].coverage_pct != points[b].coverage_pct)
                return points[a].coverage_pct > points[b].coverage_pct;
              return a < b;
            });
  std::vector<std::size_t> front;
  bool have_best = false;
  double best_coverage = 0.0;
  double best_overhead = 0.0;
  for (const std::size_t i : order) {
    const ParetoPoint& p = points[i];
    // Equal (overhead, coverage) pairs ride along with the first copy;
    // a point matching only the coverage of a CHEAPER point is dominated.
    const bool duplicate = have_best &&
                           p.area_overhead_pct == best_overhead &&
                           p.coverage_pct == best_coverage;
    if (!have_best || p.coverage_pct > best_coverage || duplicate) {
      front.push_back(i);
      have_best = true;
      if (!duplicate) best_coverage = p.coverage_pct;
      best_overhead = p.area_overhead_pct;
    }
  }
  return front;
}

}  // namespace iddq::report
