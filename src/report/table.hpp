// Plain-text / markdown / CSV table rendering for the benches and examples.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace iddq::report {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Adds a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t column_count() const noexcept {
    return headers_.size();
  }

  /// Column-aligned plain text with a header rule.
  void print(std::ostream& os) const;

  [[nodiscard]] std::string to_markdown() const;
  [[nodiscard]] std::string to_csv() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Engineering notation like the paper's Table 1 ("1.08E+6").
[[nodiscard]] std::string format_eng(double v, int significant = 3);

/// Percentage with one decimal ("30.6%").
[[nodiscard]] std::string format_pct(double fraction_or_pct,
                                     bool already_pct = false);

/// Fixed-decimal format.
[[nodiscard]] std::string format_fixed(double v, int decimals = 2);

}  // namespace iddq::report
