#include "report/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "support/error.hpp"

namespace iddq::report {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  require(!headers_.empty(), "table: need at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
  require(cells.size() == headers_.size(),
          "table: row has " + std::to_string(cells.size()) + " cells, want " +
              std::to_string(headers_.size()));
  rows_.push_back(std::move(cells));
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  const auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      os << row[c];
      for (std::size_t pad = row[c].size(); pad < width[c]; ++pad) os << ' ';
    }
    os << '\n';
  };
  print_row(headers_);
  std::size_t total = 0;
  for (const std::size_t w : width) total += w;
  total += 2 * (width.size() - 1);
  for (std::size_t i = 0; i < total; ++i) os << '-';
  os << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string TextTable::to_markdown() const {
  std::ostringstream os;
  const auto emit = [&](const std::vector<std::string>& row) {
    os << '|';
    for (const auto& cell : row) os << ' ' << cell << " |";
    os << '\n';
  };
  emit(headers_);
  os << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) os << "---|";
  os << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string TextTable::to_csv() const {
  std::ostringstream os;
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) os << ',';
      const bool quote = row[c].find_first_of(",\"\n") != std::string::npos;
      if (!quote) {
        os << row[c];
      } else {
        os << '"';
        for (const char ch : row[c]) {
          if (ch == '"') os << '"';
          os << ch;
        }
        os << '"';
      }
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string format_eng(double v, int significant) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*E", significant - 1, v);
  // Normalise exponent like the paper: 1.08E+06 -> 1.08E+6.
  std::string s(buf);
  const auto e = s.find('E');
  if (e != std::string::npos && e + 2 < s.size()) {
    std::size_t digits = e + 2;
    while (digits + 1 < s.size() && s[digits] == '0') s.erase(digits, 1);
  }
  return s;
}

std::string format_pct(double fraction_or_pct, bool already_pct) {
  const double pct = already_pct ? fraction_or_pct : fraction_or_pct * 100.0;
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.1f%%", pct);
  return buf;
}

std::string format_fixed(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return buf;
}

}  // namespace iddq::report
