// Pareto frontier over (area overhead, fault coverage) — the trade-off
// view of the paper's Table 1 numbers.
//
// Every partitioning method run with --coverage yields one point per
// (method, circuit): the relative sensor-area overhead it pays and the
// measured IDDQ fault coverage it buys. The interesting rows are the
// non-dominated ones — no other point has both lower overhead and higher
// coverage. pareto_front() computes exactly that set; the CLI's --pareto
// mode and bench_table1 --pareto print it (docs/coverage.md).
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace iddq::report {

/// One candidate design point. `area_overhead_pct` is minimized,
/// `coverage_pct` is maximized; `label` tags the method (and whatever else
/// the caller wants to show).
struct ParetoPoint {
  std::string label;
  double area_overhead_pct = 0.0;
  double coverage_pct = 0.0;
};

/// True when `a` dominates `b`: no worse on both axes, strictly better on
/// at least one.
[[nodiscard]] bool dominates(const ParetoPoint& a, const ParetoPoint& b);

/// Indices of the non-dominated points, sorted by ascending area overhead
/// (ties: descending coverage, then input order — deterministic for any
/// input permutation of distinct points). Duplicate coordinates all
/// survive: none strictly improves on the other.
[[nodiscard]] std::vector<std::size_t> pareto_front(
    std::span<const ParetoPoint> points);

}  // namespace iddq::report
