// Netlist summary statistics, used by the generators (profile matching),
// reports, and tests.
#pragma once

#include <array>
#include <cstddef>
#include <iosfwd>

#include "netlist/gate.hpp"
#include "netlist/netlist.hpp"

namespace iddq::netlist {

struct NetlistStats {
  std::size_t inputs = 0;
  std::size_t outputs = 0;
  std::size_t logic_gates = 0;
  std::size_t max_depth = 0;
  double avg_fanin = 0.0;   // over logic gates
  double avg_fanout = 0.0;  // over all gates
  std::size_t max_fanout = 0;
  /// Gate counts per kind, indexed by static_cast<size_t>(GateKind).
  std::array<std::size_t, kGateKindCount> by_kind{};
};

[[nodiscard]] NetlistStats compute_stats(const Netlist& nl);

/// Human-readable one-circuit summary block.
void print_stats(std::ostream& os, const Netlist& nl);

}  // namespace iddq::netlist
