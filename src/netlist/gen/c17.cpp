#include "netlist/gen/c17.hpp"

#include "netlist/builder.hpp"

namespace iddq::netlist::gen {

Netlist make_c17() {
  NetlistBuilder b("c17");
  const GateId i1 = b.add_input("1");
  const GateId i2 = b.add_input("2");
  const GateId i3 = b.add_input("3");
  const GateId i6 = b.add_input("6");
  const GateId i7 = b.add_input("7");
  const GateId g10 = b.add_gate(GateKind::kNand, "10", {i1, i3});
  const GateId g11 = b.add_gate(GateKind::kNand, "11", {i3, i6});
  const GateId g16 = b.add_gate(GateKind::kNand, "16", {i2, g11});
  const GateId g19 = b.add_gate(GateKind::kNand, "19", {g11, i7});
  const GateId g22 = b.add_gate(GateKind::kNand, "22", {g10, g16});
  const GateId g23 = b.add_gate(GateKind::kNand, "23", {g16, g19});
  b.mark_output(g22);
  b.mark_output(g23);
  return std::move(b).build();
}

}  // namespace iddq::netlist::gen
